// Adversary gauntlet: one protocol, every adversary strategy in the
// registry. Demonstrates the adversary framework and the protocol's
// robustness claim ("works under the powerful adaptive rushing adversary"):
// agreement must hold against all of them; only the measured rounds differ.
//
// The gauntlet is enumerated from AdversaryRegistry::list() and filtered by
// the registry's compatibility metadata (e.g. king-killer only targets
// phase-king, so it drops out here) — a newly registered adversary joins the
// gauntlet with no edit to this file.
//
// Usage: adversary_gauntlet [--n=128] [--t=40] [--trials=20] [--threads=N]
#include <cstdio>
#include <iostream>

#include "sim/registry.hpp"
#include "sim/sweep.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    using namespace adba;
    const Cli cli(argc, argv);
    const auto n = static_cast<NodeId>(cli.get_int("n", 128));
    const auto t = static_cast<Count>(cli.get_int("t", (n - 1) / 3));
    const auto trials = static_cast<Count>(cli.get_int("trials", 20));
    sim::init_threads(cli);
    cli.check_unused();

    std::printf("Algorithm 3 on n=%u, t=%u, split inputs, %u trials per adversary.\n", n,
                t, trials);

    sim::SweepGrid grid;
    grid.base.n = n;
    grid.base.t = t;
    grid.base.protocol = sim::ProtocolKind::Ours;
    grid.base.inputs = sim::InputPattern::Split;
    for (const auto* e : sim::AdversaryRegistry::instance().list())
        grid.adversaries.push_back(e->kind);
    grid.filter = [](const sim::Scenario& s) { return sim::compatible(s); };  // drops protocol-specific attackers

    Table table("Adversary gauntlet (ours, split inputs)");
    table.set_header({"adversary", "agree %", "validity", "mean rounds", "p90 rounds",
                      "mean corruptions"});
    for (const auto& o : sim::run_sweep(grid, 0x6A0, trials)) {
        const auto& agg = o.agg;
        const double agree =
            100.0 * (agg.trials - agg.agreement_failures) / agg.trials;
        table.add_row({sim::to_string(o.row.scenario.adversary), Table::num(agree, 1),
                       agg.validity_failures == 0 ? "ok" : "VIOLATED",
                       Table::num(agg.rounds.mean(), 1),
                       Table::num(agg.rounds.quantile(0.9), 1),
                       Table::num(agg.corruptions.mean(), 1)});
    }
    table.print(std::cout);
    std::printf(
        "Reading: the schedule-aware rushing attack (worst-case) is the only one\n"
        "that meaningfully stretches the run — everything else is absorbed by the\n"
        "first committee coin. This is the gap between static and adaptive\n"
        "adversaries that motivates the paper.\n");
    return 0;
}
