// Common-coin demo (paper §3.1, Algorithms 1 & 2).
//
// Measures Definition 2's constants for the one-round coin protocol as the
// adaptive rushing adversary's budget grows past the ½·sqrt(n) threshold of
// Theorem 3 — the "defense perimeter" of the whole agreement protocol.
//
// Usage: coin_demo [--n=256] [--trials=2000] [--threads=N]
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/bounds.hpp"
#include "sim/sweep.hpp"
#include "support/cli.hpp"
#include "support/math.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    using namespace adba;
    const Cli cli(argc, argv);
    const auto n = static_cast<NodeId>(cli.get_int("n", 256));
    const auto trials = static_cast<Count>(cli.get_int("trials", 2000));
    sim::init_threads(cli);
    cli.check_unused();
    const double sqrt_n = std::sqrt(static_cast<double>(n));

    std::printf("Algorithm 1: every node flips ±1, broadcasts, outputs sign of sum.\n");
    std::printf("Adaptive rushing adversary corrupts f nodes AFTER seeing all flips.\n");
    std::printf("Theorem 3: with f <= 0.5*sqrt(n) = %.1f this is a common coin.\n\n",
                0.5 * sqrt_n);

    sim::CoinSweepGrid grid;
    grid.ns = {n};
    grid.f_ratios = {0.0, 0.25, 0.5, 1.0, 1.5, 2.0};

    Table table("Common coin vs adaptive corruption budget (n=" + std::to_string(n) +
                ", " + std::to_string(trials) + " trials)");
    table.set_header({"f", "f/sqrt(n)", "P(common)", "P(1|common)",
                      "paper floor (1/6)", "attack feasible %"});
    for (const auto& o : sim::run_coin_sweep(grid, 0xC01, trials)) {
        const auto& agg = o.agg;
        table.add_row({Table::num(std::uint64_t{o.row.scenario.f}),
                       Table::num(o.row.f_ratio, 2),
                       Table::num(agg.p_common(), 3),
                       Table::num(agg.p_one_given_common(), 3),
                       o.row.f_ratio <= 0.5 ? "holds" : "n/a",
                       Table::num(100.0 * agg.attack_feasible / agg.trials, 1)});
    }
    table.print(std::cout);

    std::printf("Reading: commonness stays a constant up to the theorem's budget and\n"
                "collapses soon after — the anti-concentration margin |S| ~ sqrt(n) is\n"
                "exactly what the adversary must out-spend.\n");

    sim::CoinSweepGrid dgrid;
    dgrid.ns = {n};
    dgrid.ks = {16, 64, 256};  // rows with k > n are skipped by the grid
    const std::vector<double> dratios = {0.0, 0.5, 1.0, 2.0};
    dgrid.f_ratios = dratios;
    const auto doutcomes = sim::run_coin_sweep(dgrid, 0xC02, trials / 2);

    Table dtable("Designated-node variant (Algorithm 2, k flippers of n=" +
                 std::to_string(n) + ")");
    dtable.set_header({"k", "f=0", "f=sqrt(k)/2", "f=sqrt(k)", "f=2*sqrt(k)"});
    for (std::size_t i = 0; i < doutcomes.size(); i += dratios.size()) {
        std::vector<std::string> row{
            Table::num(std::uint64_t{doutcomes[i].row.scenario.designated})};
        for (std::size_t r = 0; r < dratios.size(); ++r)
            row.push_back(Table::num(doutcomes[i + r].agg.p_common(), 3));
        dtable.add_row(std::move(row));
    }
    dtable.print(std::cout);
    std::printf("Corollary 1: the perimeter scales with sqrt(k) of the committee,\n"
                "independent of n — this is why Algorithm 3 can afford small committees.\n");
    return 0;
}
