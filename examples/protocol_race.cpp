// Protocol race: every agreement protocol in the registry at the same
// (n, t), each against its strongest implemented adversary, from a split
// start. A miniature of experiment E3 — run bench_e3_rounds_vs_t for the
// full sweep that regenerates the paper's comparison.
//
// The field is enumerated from ProtocolRegistry::list(), so a protocol
// registered by a future plug-in shows up here with no edit to this file;
// infeasible (n, t) combinations are skipped via the registry's resilience
// metadata rather than hand-rolled predicates.
//
// Usage: protocol_race [--n=128] [--t=30] [--trials=20] [--threads=N]
#include <cstdio>
#include <iostream>

#include "sim/registry.hpp"
#include "sim/sweep.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    using namespace adba;
    const Cli cli(argc, argv);
    const auto n = static_cast<NodeId>(cli.get_int("n", 128));
    const auto t = static_cast<Count>(cli.get_int("t", 30));
    const auto trials = static_cast<Count>(cli.get_int("trials", 20));
    sim::init_threads(cli);
    cli.check_unused();

    const auto entries = sim::ProtocolRegistry::instance().list();

    sim::SweepGrid grid;
    grid.base.n = n;
    grid.base.t = t;
    grid.base.inputs = sim::InputPattern::Split;
    for (const auto* e : entries) grid.protocols.push_back(e->kind);
    grid.adversary_of = sim::strongest_adversary;
    grid.filter = [](const sim::Scenario& s) { return sim::compatible(s); };  // registry resilience + pairing rules
    const auto outcomes = sim::run_sweep(grid, 0xACE, trials);

    std::printf("n=%u, t=%u, split inputs, %u trials per protocol, %u threads.\n", n, t,
                trials, sim::default_threads());
    Table table("Protocol race at (n=" + std::to_string(n) + ", t=" + std::to_string(t) +
                ")");
    table.set_header({"protocol", "adversary", "agree %", "mean rounds", "max rounds",
                      "note"});
    for (const auto* e : entries) {
        const sim::SweepOutcome* o = nullptr;
        for (const auto& candidate : outcomes)
            if (candidate.row.scenario.protocol == e->kind) o = &candidate;
        const std::string adversary = sim::to_string(e->strongest);
        if (!o) {
            table.add_row({e->display, adversary, "-", "-", "-",
                           "skipped: needs " + e->resilience});
            continue;
        }
        const auto& agg = o->agg;
        const double agree =
            100.0 * (agg.trials - agg.agreement_failures) / agg.trials;
        table.add_row({e->display, adversary, Table::num(agree, 1),
                       Table::num(agg.rounds.mean(), 1),
                       Table::num(agg.rounds.max(), 0), e->summary});
    }
    table.print(std::cout);
    return 0;
}
