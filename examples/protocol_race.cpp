// Protocol race: every agreement protocol in the repository at the same
// (n, t), each against its strongest implemented adversary, from a split
// start. A miniature of experiment E3 — run bench_e3_rounds_vs_t for the
// full sweep that regenerates the paper's comparison.
//
// Usage: protocol_race [--n=128] [--t=30] [--trials=20]
#include <cstdio>
#include <iostream>

#include "sim/runner.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    using namespace adba;
    using sim::AdversaryKind;
    using sim::ProtocolKind;
    const Cli cli(argc, argv);
    const auto n = static_cast<NodeId>(cli.get_int("n", 128));
    const auto t = static_cast<Count>(cli.get_int("t", 30));
    const auto trials = static_cast<Count>(cli.get_int("trials", 20));

    struct Entry {
        ProtocolKind protocol;
        AdversaryKind adversary;
        const char* note;
    };
    const Entry entries[] = {
        {ProtocolKind::Ours, AdversaryKind::WorstCase, "the paper (Theorem 2)"},
        {ProtocolKind::OursLasVegas, AdversaryKind::WorstCase, "Las Vegas variant"},
        {ProtocolKind::ChorCoanRushing, AdversaryKind::WorstCase,
         "Chor-Coan, rushing-hardened"},
        {ProtocolKind::ChorCoanClassic, AdversaryKind::WorstCase,
         "Chor-Coan 1985 (log-size groups)"},
        {ProtocolKind::RabinDealer, AdversaryKind::SplitVote,
         "Rabin 1983, trusted dealer coin"},
        {ProtocolKind::PhaseKing, AdversaryKind::KingKiller,
         "deterministic O(t) baseline"},
        {ProtocolKind::BenOr, AdversaryKind::SplitVote,
         "Ben-Or 1983, private coins (t<n/5)"},
        {ProtocolKind::SamplingMajority, AdversaryKind::Balancer,
         "APR 2013 sampling-majority (paper §1.3)"},
    };

    std::printf("n=%u, t=%u, split inputs, %u trials per protocol.\n", n, t, trials);
    Table table("Protocol race at (n=" + std::to_string(n) + ", t=" + std::to_string(t) +
                ")");
    table.set_header({"protocol", "adversary", "agree %", "mean rounds", "max rounds",
                      "note"});
    for (const auto& e : entries) {
        sim::Scenario s;
        s.n = n;
        s.t = t;
        s.protocol = e.protocol;
        s.adversary = e.adversary;
        s.inputs = sim::InputPattern::Split;
        if (e.protocol == ProtocolKind::PhaseKing && 4 * t >= n) {
            table.add_row({sim::to_string(e.protocol), sim::to_string(e.adversary),
                           "-", "-", "-", "skipped: needs t < n/4"});
            continue;
        }
        if (e.protocol == ProtocolKind::BenOr && 5 * t >= n) {
            table.add_row({sim::to_string(e.protocol), sim::to_string(e.adversary),
                           "-", "-", "-", "skipped: needs t < n/5"});
            continue;
        }
        const auto agg = sim::run_trials(s, 0xACE, trials);
        const double agree =
            100.0 * (agg.trials - agg.agreement_failures) / agg.trials;
        table.add_row({sim::to_string(e.protocol), sim::to_string(e.adversary),
                       Table::num(agree, 1), Table::num(agg.rounds.mean(), 1),
                       Table::num(agg.rounds.max(), 0), e.note});
    }
    table.print(std::cout);
    return 0;
}
