// Protocol race: every agreement protocol in the repository at the same
// (n, t), each against its strongest implemented adversary, from a split
// start. A miniature of experiment E3 — run bench_e3_rounds_vs_t for the
// full sweep that regenerates the paper's comparison.
//
// Usage: protocol_race [--n=128] [--t=30] [--trials=20] [--threads=N]
#include <cstdio>
#include <iostream>

#include "sim/sweep.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    using namespace adba;
    using sim::ProtocolKind;
    const Cli cli(argc, argv);
    const auto n = static_cast<NodeId>(cli.get_int("n", 128));
    const auto t = static_cast<Count>(cli.get_int("t", 30));
    const auto trials = static_cast<Count>(cli.get_int("trials", 20));
    sim::init_threads(cli);

    struct Entry {
        ProtocolKind protocol;
        const char* note;
    };
    const Entry entries[] = {
        {ProtocolKind::Ours, "the paper (Theorem 2)"},
        {ProtocolKind::OursLasVegas, "Las Vegas variant"},
        {ProtocolKind::ChorCoanRushing, "Chor-Coan, rushing-hardened"},
        {ProtocolKind::ChorCoanClassic, "Chor-Coan 1985 (log-size groups)"},
        {ProtocolKind::RabinDealer, "Rabin 1983, trusted dealer coin"},
        {ProtocolKind::PhaseKing, "deterministic O(t) baseline"},
        {ProtocolKind::BenOr, "Ben-Or 1983, private coins (t<n/5)"},
        {ProtocolKind::SamplingMajority, "APR 2013 sampling-majority (paper §1.3)"},
    };

    sim::SweepGrid grid;
    grid.base.n = n;
    grid.base.t = t;
    grid.base.inputs = sim::InputPattern::Split;
    for (const auto& e : entries) grid.protocols.push_back(e.protocol);
    grid.adversary_of = sim::strongest_adversary;
    grid.filter = [n](const sim::Scenario& s) {
        if (s.protocol == ProtocolKind::PhaseKing) return 4 * s.t < s.n;
        if (s.protocol == ProtocolKind::BenOr) return 5 * s.t < s.n;
        (void)n;
        return true;
    };
    const auto outcomes = sim::run_sweep(grid, 0xACE, trials);

    std::printf("n=%u, t=%u, split inputs, %u trials per protocol, %u threads.\n", n, t,
                trials, sim::default_threads());
    Table table("Protocol race at (n=" + std::to_string(n) + ", t=" + std::to_string(t) +
                ")");
    table.set_header({"protocol", "adversary", "agree %", "mean rounds", "max rounds",
                      "note"});
    for (const auto& e : entries) {
        const sim::SweepOutcome* o = nullptr;
        for (const auto& candidate : outcomes)
            if (candidate.row.scenario.protocol == e.protocol) o = &candidate;
        const std::string adversary = sim::to_string(sim::strongest_adversary(e.protocol));
        if (!o) {
            const char* why = e.protocol == ProtocolKind::PhaseKing
                                  ? "skipped: needs t < n/4"
                                  : "skipped: needs t < n/5";
            table.add_row({sim::to_string(e.protocol), adversary, "-", "-", "-", why});
            continue;
        }
        const auto& agg = o->agg;
        const double agree =
            100.0 * (agg.trials - agg.agreement_failures) / agg.trials;
        table.add_row({sim::to_string(e.protocol), adversary,
                       Table::num(agree, 1), Table::num(agg.rounds.mean(), 1),
                       Table::num(agg.rounds.max(), 0), e.note});
    }
    table.print(std::cout);
    return 0;
}
