// Quickstart: run Algorithm 3 (Dufoulon-Pandurangan PODC 2025) on a
// 64-node network against the worst-case adaptive rushing adversary.
//
// Shows both API levels:
//   1. the low-level building blocks (params -> nodes -> adversary ->
//      engine), which is what you would use to embed the protocol in your
//      own simulation; and
//   2. the one-call experiment runner used by the benches.
//
// Usage: quickstart [--n=64] [--t=21] [--seed=1]
#include <cstdio>

#include "adversary/worst_case.hpp"
#include "core/agreement.hpp"
#include "net/engine.hpp"
#include "sim/runner.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
    using namespace adba;
    const Cli cli(argc, argv);
    const auto n = static_cast<NodeId>(cli.get_int("n", 64));
    const auto t = static_cast<Count>(cli.get_int("t", (n - 1) / 3));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    cli.check_unused();

    std::printf("== Byzantine agreement under an adaptive rushing adversary ==\n");
    std::printf("n=%u nodes, t=%u tolerated Byzantine (t < n/3), seed=%llu\n\n", n, t,
                static_cast<unsigned long long>(seed));

    // ---- Level 1: explicit wiring -------------------------------------
    // Committee parameters per the paper: c = min(α⌈t²/n⌉log n, 3αt/log n)
    // committees of s = n/c nodes each.
    const auto params = core::AgreementParams::compute(n, t);
    std::printf("committees: %u phases, committee size %u (schedule over node-ID blocks)\n",
                params.phases, params.schedule.block);

    // Every node starts with a worst-case split input: 0,1,0,1,...
    const SeedTree seeds(seed);
    std::vector<Bit> inputs(n);
    for (NodeId v = 0; v < n; ++v) inputs[v] = static_cast<Bit>(v & 1);

    auto nodes = core::make_algorithm3_nodes(
        params, core::AgreementMode::WhpFixedPhases, inputs, seeds);

    // The strongest attack we know for this protocol family: rushing
    // observation of committee coin flips, greedy corruption to split or
    // flip the coin, decided-quorum suppression.
    adv::WorstCaseAdversary adversary({t, t, params.schedule, true});

    net::Engine engine({n, t, core::max_rounds_whp(params), false}, std::move(nodes),
                       adversary);
    const net::RunResult result = engine.run();

    std::printf("\nrun finished: %u rounds (%u phases of 2 rounds + termination)\n",
                result.rounds, result.rounds / 2);
    std::printf("adversary corrupted %llu nodes, ruined %u phase coins\n",
                static_cast<unsigned long long>(result.metrics.corruptions),
                adversary.phases_ruined());
    if (result.agreement()) {
        std::printf("agreement reached: every honest node output %d\n",
                    static_cast<int>(*result.agreed_value()));
    } else {
        std::printf("AGREEMENT FAILED (probability <= 1/poly(n) per Theorem 2)\n");
    }
    std::printf("honest traffic: %llu messages, %llu bits (CONGEST: O(log n)/msg)\n",
                static_cast<unsigned long long>(result.metrics.honest_messages),
                static_cast<unsigned long long>(result.metrics.honest_bits));

    // ---- Level 2: the experiment runner --------------------------------
    // A scenario is a value; here it is parsed from the same string spec the
    // `adba_sim` driver and the sweep layer use (names resolved through the
    // protocol/adversary registries).
    const sim::Scenario s = sim::Scenario::parse(
        "protocol=ours adversary=worst-case inputs=split n=" + std::to_string(n) +
        " t=" + std::to_string(t));
    std::printf("\n== same trial via the one-call runner ==\nscenario: %s\n",
                s.describe().c_str());
    const sim::TrialResult r = sim::run_trial(s, seed);
    std::printf("agreement=%s rounds=%u corruptions=%llu\n",
                r.agreement ? "yes" : "NO", r.rounds,
                static_cast<unsigned long long>(r.metrics.corruptions));
    return r.agreement ? 0 : 1;
}
