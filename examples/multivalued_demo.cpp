// Multi-valued agreement demo: agreeing on a 32-bit configuration word
// (say, a leader id or an epoch hash) under an adaptive rushing adversary,
// using the Turpin-Coan reduction over Algorithm 3.
//
// Usage: multivalued_demo [--n=96] [--t=31] [--trials=12] [--threads=N]
#include <cstdio>
#include <iostream>

#include "sim/multivalued_runner.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    using namespace adba;
    const Cli cli(argc, argv);
    const auto n = static_cast<NodeId>(cli.get_int("n", 96));
    const auto t = static_cast<Count>(cli.get_int("t", (n - 1) / 3));
    const auto trials = static_cast<Count>(cli.get_int("trials", 12));
    sim::init_threads(cli);
    cli.check_unused();

    std::printf("Multi-valued BA (Turpin-Coan 1984 over Algorithm 3), n=%u, t=%u.\n", n,
                t);
    std::printf("Two prelude rounds reduce any 32-bit domain to ONE binary\n"
                "agreement; resilience t < n/3 is preserved.\n");

    struct Case {
        sim::MvInputPattern inputs;
        sim::MvAdversaryKind adversary;
        const char* story;
    };
    const Case cases[] = {
        {sim::MvInputPattern::AllSame, sim::MvAdversaryKind::PreludePlusWorstCase,
         "all propose 0xCAFE: validity forces 0xCAFE"},
        {sim::MvInputPattern::TwoBlocks, sim::MvAdversaryKind::WorstCaseInner,
         "half 0xAAAA / half 0xBBBB: no quorum, consistent fallback"},
        {sim::MvInputPattern::NearQuorum, sim::MvAdversaryKind::PreludePlusWorstCase,
         "60% share a word: the one attackable band — safety holds"},
        {sim::MvInputPattern::Distinct, sim::MvAdversaryKind::Chaos,
         "every input distinct + fuzzing: consistent fallback"},
    };

    Table tab("Multi-valued agreement scenarios");
    tab.set_header({"scenario", "agree %", "validity", "real-value %", "mean rounds"});
    std::string last_spec;
    for (const auto& c : cases) {
        sim::MvScenario s;
        s.n = n;
        s.t = t;
        s.inputs = c.inputs;
        s.adversary = c.adversary;
        last_spec = s.describe();  // round-trips: MvScenario::parse(last_spec) == s
        const auto agg = sim::run_mv_trials(s, 0x3D, trials);
        tab.add_row({c.story,
                     Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                    agg.trials, 1),
                     agg.validity_failures == 0 ? "ok" : "VIOLATED",
                     Table::num(100.0 * agg.decided_real / agg.trials, 1),
                     Table::num(agg.rounds.mean(), 1)});
    }
    tab.print(std::cout);
    std::printf("Every row is a plain scenario spec, e.g.\n"
                "  adba_sim --workload=mv --scenario=\"%s\"\n"
                "See bench_e12_multivalued for the full sweep and the\n"
                "quorum-boundary attack analysis.\n",
                last_spec.c_str());
    return 0;
}
