// One-shot reproduction report: a reduced-scale pass over the headline
// experiments (coin threshold, rounds-vs-t ordering, early termination,
// asymptotic ratio) printed as a single markdown document in ~30 seconds.
// For the full-fidelity tables run the bench binaries; this exists so a
// reviewer can sanity-check the reproduction in one command.
//
// Usage: repro_report [--trials=12] [--threads=N]
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/bounds.hpp"
#include "sim/coin_runner.hpp"
#include "sim/macro.hpp"
#include "sim/runner.hpp"
#include "support/cli.hpp"
#include "support/math.hpp"
#include "support/table.hpp"

using namespace adba;

namespace {

void coin_section(Count trials) {
    Table t("1. Theorem 3 — common coin vs adaptive rushing corruption (n=256)");
    t.set_header({"f/sqrt(n)", "P(common)", "paper"});
    for (double ratio : {0.0, 0.5, 2.0}) {
        const auto f = static_cast<Count>(std::lround(ratio * 16.0));
        const auto agg = sim::run_coin_trials({256, 256, f, adv::CoinAttack::Split, 0},
                                              0x40, trials * 40);
        t.add_row({Table::num(ratio, 2), Table::num(agg.p_common(), 3),
                   ratio <= 0.5 ? ">= 1/6 (Def. 2)" : "collapse expected"});
    }
    t.print(std::cout);
}

void rounds_section(Count trials) {
    Table t("2. Theorem 2 — protocol ordering at n=128, t=42 (worst-case adversary)");
    t.set_header({"protocol", "mean rounds", "agree %"});
    struct Row {
        sim::ProtocolKind p;
        sim::AdversaryKind a;
    };
    for (const Row r : {Row{sim::ProtocolKind::RabinDealer, sim::AdversaryKind::SplitVote},
                        Row{sim::ProtocolKind::Ours, sim::AdversaryKind::WorstCase},
                        Row{sim::ProtocolKind::ChorCoanClassic,
                            sim::AdversaryKind::WorstCase}}) {
        sim::Scenario s;
        s.n = 128;
        s.t = 42;
        s.protocol = r.p;
        s.adversary = r.a;
        s.inputs = sim::InputPattern::Split;
        const auto agg = sim::run_trials(s, 0x12E, trials);
        t.add_row({sim::to_string(r.p), Table::num(agg.rounds.mean(), 1),
                   Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                  agg.trials, 1)});
    }
    t.print(std::cout);
}

void early_section(Count trials) {
    Table t("3. Early termination — rounds vs actual corruptions q (n=128, t=42)");
    t.set_header({"q", "mean rounds"});
    for (Count q : {0u, 10u, 42u}) {
        sim::Scenario s;
        s.n = 128;
        s.t = 42;
        s.q = q;
        s.protocol = sim::ProtocolKind::Ours;
        s.adversary = sim::AdversaryKind::WorstCase;
        s.inputs = sim::InputPattern::Split;
        const auto agg = sim::run_trials(s, 0xE57, trials);
        t.add_row({Table::num(std::uint64_t{q}), Table::num(agg.rounds.mean(), 1)});
    }
    t.print(std::cout);
}

void asymptotic_section(int trials) {
    Table t("4. Separation from Chor-Coan at t = sqrt(n) (macro simulator)");
    t.set_header({"n", "ours/cc round ratio"});
    for (std::uint64_t lg : {14ull, 20ull}) {
        const std::uint64_t n = 1ull << lg;
        const auto tt = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(n)));
        sim::MacroScenario m;
        m.n = n;
        m.t = tt;
        m.q = tt;
        m.schedule = sim::MacroScheduleKind::Ours;
        const double ours =
            sim::run_macro_trials(m, 0xA57, static_cast<Count>(trials)).rounds.sum();
        m.schedule = sim::MacroScheduleKind::ChorCoanRushing;
        const double cc =
            sim::run_macro_trials(m, 0xA57, static_cast<Count>(trials)).rounds.sum();
        t.add_row({Table::num(n), Table::num(ours / cc, 2)});
    }
    t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
    const Cli cli(argc, argv);
    const auto trials = static_cast<Count>(cli.get_int("trials", 12));
    sim::init_threads(cli);
    cli.check_unused();
    std::printf("# adba quick reproduction report\n\n"
                "Reduced-scale pass over the headline claims of\n"
                "Dufoulon-Pandurangan PODC 2025; see EXPERIMENTS.md for the "
                "full tables.\n");
    coin_section(trials);
    rounds_section(trials);
    early_section(trials);
    asymptotic_section(static_cast<int>(trials));
    std::printf("\nExpected shape: (1) constant commonness at the theorem budget,\n"
                "collapse beyond; (2) dealer << ours <= chor-coan-classic; (3) rounds\n"
                "grow with q from a flat 6; (4) ratio well below 1 and falling in n.\n");
    return 0;
}
