// Local-coin ablation (Ben-Or style): the Rabin skeleton with each undecided
// node flipping its own private coin instead of sharing one.
//
// This is the "why common coins matter" control: with u undecided honest
// nodes, a phase is good only if all u private flips land on the decided
// value simultaneously — probability ~2^-u — so from a split start the
// protocol needs expected exponential phases (Ben-Or, PODC 1983 behaviour).
// Used by E8/E9 to show the committee coin is what buys the speedup, and as
// a correctness stressor (safety must hold even when liveness crawls).
#pragma once

#include <memory>
#include <vector>

#include "core/skeleton.hpp"
#include "core/skeleton_batch.hpp"
#include "rand/seed_tree.hpp"

namespace adba::base {

struct LocalCoinParams {
    NodeId n = 0;
    Count t = 0;
    /// Explicit phase budget — there is no useful w.h.p. formula (expected
    /// phases are exponential in the number of undecided nodes).
    Count phases = 1;
};

class LocalCoinNode final : public core::RabinSkeletonNode {
public:
    LocalCoinNode(const LocalCoinParams& params, core::AgreementMode mode, NodeId self,
                  Bit input, Xoshiro256 rng);

    /// Re-arms a pooled node for a fresh trial (constructor contract).
    void reinit(const LocalCoinParams& params, core::AgreementMode mode, NodeId self,
                Bit input, Xoshiro256 rng) {
        RabinSkeletonNode::reinit(
            core::SkeletonConfig{params.n, params.t, params.phases, mode}, self,
            input, rng);
    }

protected:
    CoinSign coin_contribution(Phase) override { return 0; }
    Bit coin_value(Phase, const net::ReceiveView&) override { return rng().bit(); }
};

std::vector<std::unique_ptr<net::HonestNode>> make_local_coin_nodes(
    const LocalCoinParams& params, core::AgreementMode mode,
    const std::vector<Bit>& inputs, const SeedTree& seeds);

/// Re-arms a pool built by make_local_coin_nodes for a new trial (no allocs).
void reinit_local_coin_nodes(const LocalCoinParams& params, core::AgreementMode mode,
                             const std::vector<Bit>& inputs, const SeedTree& seeds,
                             std::vector<std::unique_ptr<net::HonestNode>>& nodes);

/// Native SoA batch form (private coins); bit-identical to the node vector.
std::unique_ptr<net::BatchProtocol> make_local_coin_batch(
    const LocalCoinParams& params, core::AgreementMode mode,
    const std::vector<Bit>& inputs, const SeedTree& seeds);
void reinit_local_coin_batch(const LocalCoinParams& params, core::AgreementMode mode,
                             const std::vector<Bit>& inputs, const SeedTree& seeds,
                             net::BatchProtocol& batch);

}  // namespace adba::base
