#include "baselines/phase_king.hpp"

#include "support/contracts.hpp"

namespace adba::base {

PhaseKingNode::PhaseKingNode(PhaseKingParams params, NodeId self, Bit input) {
    reinit(params, self, input);  // one initialization body for both paths
}

void PhaseKingNode::reinit(PhaseKingParams params, NodeId self, Bit input) {
    ADBA_EXPECTS(params.n > 0);
    ADBA_EXPECTS_MSG(4 * static_cast<std::uint64_t>(params.t) < params.n,
                     "simple phase-king requires t < n/4");
    ADBA_EXPECTS_MSG(params.t + 1 <= params.n, "needs t+1 distinct kings");
    ADBA_EXPECTS(self < params.n);
    ADBA_EXPECTS(input <= 1);
    params_ = params;
    self_ = self;
    val_ = input;
    maj_ = 0;
    mult_ = 0;
    halted_ = false;
}

std::optional<net::Message> PhaseKingNode::round_send(Round r) {
    ADBA_EXPECTS(!halted_);
    const Phase k = r / 2;
    net::Message m;
    m.phase = k;
    if (r % 2 == 0) {
        m.kind = net::MsgKind::PhaseKingSend;
        m.val = val_;
        return m;
    }
    if (self_ == params_.king_of(k)) {
        m.kind = net::MsgKind::PhaseKingRuler;
        m.val = maj_;
        return m;
    }
    return std::nullopt;  // only the king speaks in round 2
}

void PhaseKingNode::round_receive(Round r, const net::ReceiveView& view) {
    ADBA_EXPECTS(!halted_);
    const Phase k = r / 2;
    if (r % 2 == 0) {
        const auto cnt =
            view.val_counts(net::MsgKind::PhaseKingSend, k, /*require_flag=*/false);
        maj_ = cnt[1] > cnt[0] ? Bit{1} : Bit{0};
        mult_ = cnt[maj_];
        return;
    }
    // Round 2: adopt the king's value unless our majority was overwhelming.
    Bit king_val = 0;  // a silent/corrupted king defaults to 0 at every node
    const net::Message* m = view.from(params_.king_of(k));
    if (m != nullptr && m->kind == net::MsgKind::PhaseKingRuler && m->phase == k)
        king_val = m->val & 1;
    if (2 * static_cast<std::uint64_t>(mult_) > params_.n + 2 * static_cast<std::uint64_t>(params_.t)) {
        val_ = maj_;
    } else {
        val_ = king_val;
    }
    if (k + 1 == params_.phases()) halted_ = true;
}

std::vector<std::unique_ptr<net::HonestNode>> make_phase_king_nodes(
    const PhaseKingParams& params, const std::vector<Bit>& inputs) {
    ADBA_EXPECTS(inputs.size() == params.n);
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(params.n);
    for (NodeId v = 0; v < params.n; ++v)
        nodes.push_back(std::make_unique<PhaseKingNode>(params, v, inputs[v]));
    return nodes;
}

void reinit_phase_king_nodes(const PhaseKingParams& params,
                             const std::vector<Bit>& inputs,
                             std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    ADBA_EXPECTS(inputs.size() == params.n);
    net::reinit_node_pool<PhaseKingNode>(
        nodes, params.n,
        [&](PhaseKingNode& nd, NodeId v) { nd.reinit(params, v, inputs[v]); });
}

}  // namespace adba::base
