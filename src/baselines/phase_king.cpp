#include "baselines/phase_king.hpp"

#include "support/contracts.hpp"

namespace adba::base {

PhaseKingNode::PhaseKingNode(PhaseKingParams params, NodeId self, Bit input) {
    reinit(params, self, input);  // one initialization body for both paths
}

void PhaseKingNode::reinit(PhaseKingParams params, NodeId self, Bit input) {
    ADBA_EXPECTS(params.n > 0);
    ADBA_EXPECTS_MSG(4 * static_cast<std::uint64_t>(params.t) < params.n,
                     "simple phase-king requires t < n/4");
    ADBA_EXPECTS_MSG(params.t + 1 <= params.n, "needs t+1 distinct kings");
    ADBA_EXPECTS(self < params.n);
    ADBA_EXPECTS(input <= 1);
    params_ = params;
    self_ = self;
    val_ = input;
    maj_ = 0;
    mult_ = 0;
    halted_ = false;
}

std::optional<net::Message> PhaseKingNode::round_send(Round r) {
    ADBA_EXPECTS(!halted_);
    const Phase k = r / 2;
    net::Message m;
    m.phase = k;
    if (r % 2 == 0) {
        m.kind = net::MsgKind::PhaseKingSend;
        m.val = val_;
        return m;
    }
    if (self_ == params_.king_of(k)) {
        m.kind = net::MsgKind::PhaseKingRuler;
        m.val = maj_;
        return m;
    }
    return std::nullopt;  // only the king speaks in round 2
}

void PhaseKingNode::round_receive(Round r, const net::ReceiveView& view) {
    ADBA_EXPECTS(!halted_);
    const Phase k = r / 2;
    if (r % 2 == 0) {
        const auto cnt =
            view.val_counts(net::MsgKind::PhaseKingSend, k, /*require_flag=*/false);
        maj_ = cnt[1] > cnt[0] ? Bit{1} : Bit{0};
        mult_ = cnt[maj_];
        return;
    }
    // Round 2: adopt the king's value unless our majority was overwhelming.
    Bit king_val = 0;  // a silent/corrupted king defaults to 0 at every node
    const net::Message* m = view.from(params_.king_of(k));
    if (m != nullptr && m->kind == net::MsgKind::PhaseKingRuler && m->phase == k)
        king_val = m->val & 1;
    if (2 * static_cast<std::uint64_t>(mult_) > params_.n + 2 * static_cast<std::uint64_t>(params_.t)) {
        val_ = maj_;
    } else {
        val_ = king_val;
    }
    if (k + 1 == params_.phases()) halted_ = true;
}

std::vector<std::unique_ptr<net::HonestNode>> make_phase_king_nodes(
    const PhaseKingParams& params, const std::vector<Bit>& inputs) {
    ADBA_EXPECTS(inputs.size() == params.n);
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(params.n);
    for (NodeId v = 0; v < params.n; ++v)
        nodes.push_back(std::make_unique<PhaseKingNode>(params, v, inputs[v]));
    return nodes;
}

void reinit_phase_king_nodes(const PhaseKingParams& params,
                             const std::vector<Bit>& inputs,
                             std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    ADBA_EXPECTS(inputs.size() == params.n);
    net::reinit_node_pool<PhaseKingNode>(
        nodes, params.n,
        [&](PhaseKingNode& nd, NodeId v) { nd.reinit(params, v, inputs[v]); });
}

// --------------------------------------------------------- PhaseKingBatch

PhaseKingBatch::PhaseKingBatch(const PhaseKingParams& params,
                               const std::vector<Bit>& inputs) {
    rearm(params, inputs);
}

void PhaseKingBatch::rearm(const PhaseKingParams& params,
                           const std::vector<Bit>& inputs) {
    ADBA_EXPECTS(params.n > 0);
    ADBA_EXPECTS_MSG(4 * static_cast<std::uint64_t>(params.t) < params.n,
                     "simple phase-king requires t < n/4");
    ADBA_EXPECTS_MSG(params.t + 1 <= params.n, "needs t+1 distinct kings");
    ADBA_EXPECTS(inputs.size() == params.n);
    params_ = params;
    const NodeId n = params.n;
    val_.assign(inputs.begin(), inputs.end());
    for (NodeId v = 0; v < n; ++v) ADBA_EXPECTS(val_[v] <= 1);
    maj_.assign(n, 0);
    mult_.assign(n, 0);
    halted_.assign(n, 0);
}

void PhaseKingBatch::send_all(Round r, net::RoundBuffer& buf) {
    send_range(r, buf, 0, params_.n);
}

void PhaseKingBatch::send_range(Round r, net::RoundBuffer& buf, NodeId lo, NodeId hi) {
    const Phase k = r / 2;
    const std::uint8_t* state = buf.state_plane();
    if ((r % 2) == 0) {
        net::Message m;
        m.kind = net::MsgKind::PhaseKingSend;
        m.phase = k;
        for (NodeId v = lo; v < hi; ++v) {
            if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
            m.val = val_[v];
            buf.set_broadcast(v, m);
        }
        return;
    }
    // Only the king speaks in round 2 — and only the shard that holds it.
    const NodeId king = params_.king_of(k);
    if (king < lo || king >= hi) return;
    if ((state[king] & net::RoundBuffer::kByzantine) != 0 || halted_[king]) return;
    net::Message m;
    m.kind = net::MsgKind::PhaseKingRuler;
    m.phase = k;
    m.val = maj_[king];
    buf.set_broadcast(king, m);
}

void PhaseKingBatch::apply_send_round(NodeId v, const std::array<Count, 2>& cnt) {
    maj_[v] = cnt[1] > cnt[0] ? Bit{1} : Bit{0};
    mult_[v] = cnt[maj_[v]];
}

void PhaseKingBatch::apply_king_round(NodeId v, Phase k, const net::Message* m) {
    Bit king_val = 0;  // a silent/corrupted king defaults to 0 at every node
    if (m != nullptr && m->kind == net::MsgKind::PhaseKingRuler && m->phase == k)
        king_val = m->val & 1;
    if (2 * static_cast<std::uint64_t>(mult_[v]) >
        params_.n + 2 * static_cast<std::uint64_t>(params_.t)) {
        val_[v] = maj_[v];
    } else {
        val_[v] = king_val;
    }
    if (k + 1 == params_.phases()) halted_[v] = 1;
}

void PhaseKingBatch::receive_all(Round r, const net::RoundBuffer& buf,
                                 const net::RoundTally& tally) {
    receive_prepare(r, buf, tally);
    receive_range(r, buf, tally, 0, params_.n);
}

void PhaseKingBatch::receive_prepare(Round r, const net::RoundBuffer&,
                                     const net::RoundTally& tally) {
    prep_base_ = {0, 0};
    prep_delta_ = nullptr;
    if ((r % 2) != 0) return;  // the king round needs no shared tallies
    const Phase k = r / 2;
    const net::TallyBucket* b = tally.find(net::MsgKind::PhaseKingSend, k);
    if (b != nullptr) prep_base_ = b->val_cnt;
    prep_delta_ = tally.val_delta_plane(net::MsgKind::PhaseKingSend, k, false);
}

void PhaseKingBatch::receive_range(Round r, const net::RoundBuffer& buf,
                                   const net::RoundTally&, NodeId lo, NodeId hi) {
    const Phase k = r / 2;
    const std::uint8_t* state = buf.state_plane();
    if ((r % 2) == 0) {
        for (NodeId v = lo; v < hi; ++v) {
            if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
            std::array<Count, 2> cnt = prep_base_;
            if (prep_delta_ != nullptr) {
                cnt[0] += prep_delta_[v][0];
                cnt[1] += prep_delta_[v][1];
            }
            apply_send_round(v, cnt);
        }
        return;
    }
    const NodeId king = params_.king_of(k);
    for (NodeId v = lo; v < hi; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
        apply_king_round(v, k, buf.from(v, king));
    }
}

void PhaseKingBatch::receive_sparse_prepare(Round r, const net::RoundBuffer&,
                                            const net::RoundTally&,
                                            const net::SparsePlane& sparse) {
    prep_sparse_query_ = net::SparsePlane::Query{};
    if ((r % 2) != 0) return;  // the king round probes one sender exactly
    prep_sparse_query_ =
        sparse.query(net::MsgKind::PhaseKingSend, r / 2, /*require_flag=*/false);
}

void PhaseKingBatch::receive_sparse_range(Round r, const net::RoundBuffer& buf,
                                          const net::RoundTally&,
                                          const net::SparsePlane& sparse, NodeId lo,
                                          NodeId hi) {
    const Phase k = r / 2;
    const std::uint8_t* state = buf.state_plane();
    if ((r % 2) == 0) {
        for (NodeId v = lo; v < hi; ++v) {
            if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
            apply_send_round(v, sparse.val_estimates(prep_sparse_query_, v));
        }
        return;
    }
    // The king probe is exact at any sampling degree: one sender, one O(1)
    // buffer read — sampling it would save nothing and lose the coordinator.
    const NodeId king = params_.king_of(k);
    for (NodeId v = lo; v < hi; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
        apply_king_round(v, k, buf.from(v, king));
    }
}

void PhaseKingBatch::receive_all(Round r, const net::RoundBuffer& buf,
                                 const net::DeliverySource& src) {
    const Phase k = r / 2;
    const NodeId n = params_.n;
    const std::uint8_t* state = buf.state_plane();
    for (NodeId v = 0; v < n; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
        const net::ReceiveView view(src, v);
        if ((r % 2) == 0)
            apply_send_round(v,
                             view.val_counts(net::MsgKind::PhaseKingSend, k, false));
        else
            apply_king_round(v, k, view.from(params_.king_of(k)));
    }
}

std::unique_ptr<net::BatchProtocol> make_phase_king_batch(
    const PhaseKingParams& params, const std::vector<Bit>& inputs) {
    return std::make_unique<PhaseKingBatch>(params, inputs);
}

void reinit_phase_king_batch(const PhaseKingParams& params,
                             const std::vector<Bit>& inputs,
                             net::BatchProtocol& batch) {
    auto* b = dynamic_cast<PhaseKingBatch*>(&batch);
    ADBA_EXPECTS_MSG(b != nullptr,
                     "batch pool type does not match the requested protocol");
    b->rearm(params, inputs);
}

}  // namespace adba::base
