#include "baselines/phase_king.hpp"

#include "support/contracts.hpp"

namespace adba::base {

PhaseKingNode::PhaseKingNode(PhaseKingParams params, NodeId self, Bit input) {
    reinit(params, self, input);  // one initialization body for both paths
}

void PhaseKingNode::reinit(PhaseKingParams params, NodeId self, Bit input) {
    ADBA_EXPECTS(params.n > 0);
    ADBA_EXPECTS_MSG(4 * static_cast<std::uint64_t>(params.t) < params.n,
                     "simple phase-king requires t < n/4");
    ADBA_EXPECTS_MSG(params.t + 1 <= params.n, "needs t+1 distinct kings");
    ADBA_EXPECTS(self < params.n);
    ADBA_EXPECTS(input <= 1);
    params_ = params;
    self_ = self;
    val_ = input;
    maj_ = 0;
    mult_ = 0;
    halted_ = false;
}

std::optional<net::Message> PhaseKingNode::round_send(Round r) {
    ADBA_EXPECTS(!halted_);
    const Phase k = r / 2;
    net::Message m;
    m.phase = k;
    if (r % 2 == 0) {
        m.kind = net::MsgKind::PhaseKingSend;
        m.val = val_;
        return m;
    }
    if (self_ == params_.king_of(k)) {
        m.kind = net::MsgKind::PhaseKingRuler;
        m.val = maj_;
        return m;
    }
    return std::nullopt;  // only the king speaks in round 2
}

void PhaseKingNode::round_receive(Round r, const net::ReceiveView& view) {
    ADBA_EXPECTS(!halted_);
    const Phase k = r / 2;
    if (r % 2 == 0) {
        const auto cnt =
            view.val_counts(net::MsgKind::PhaseKingSend, k, /*require_flag=*/false);
        maj_ = cnt[1] > cnt[0] ? Bit{1} : Bit{0};
        mult_ = cnt[maj_];
        return;
    }
    // Round 2: adopt the king's value unless our majority was overwhelming.
    Bit king_val = 0;  // a silent/corrupted king defaults to 0 at every node
    const net::Message* m = view.from(params_.king_of(k));
    if (m != nullptr && m->kind == net::MsgKind::PhaseKingRuler && m->phase == k)
        king_val = m->val & 1;
    if (2 * static_cast<std::uint64_t>(mult_) > params_.n + 2 * static_cast<std::uint64_t>(params_.t)) {
        val_ = maj_;
    } else {
        val_ = king_val;
    }
    if (k + 1 == params_.phases()) halted_ = true;
}

std::vector<std::unique_ptr<net::HonestNode>> make_phase_king_nodes(
    const PhaseKingParams& params, const std::vector<Bit>& inputs) {
    ADBA_EXPECTS(inputs.size() == params.n);
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(params.n);
    for (NodeId v = 0; v < params.n; ++v)
        nodes.push_back(std::make_unique<PhaseKingNode>(params, v, inputs[v]));
    return nodes;
}

void reinit_phase_king_nodes(const PhaseKingParams& params,
                             const std::vector<Bit>& inputs,
                             std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    ADBA_EXPECTS(inputs.size() == params.n);
    net::reinit_node_pool<PhaseKingNode>(
        nodes, params.n,
        [&](PhaseKingNode& nd, NodeId v) { nd.reinit(params, v, inputs[v]); });
}

// --------------------------------------------------------- PhaseKingBatch

PhaseKingBatch::PhaseKingBatch(const PhaseKingParams& params,
                               const std::vector<Bit>& inputs) {
    rearm(params, inputs);
}

void PhaseKingBatch::rearm(const PhaseKingParams& params,
                           const std::vector<Bit>& inputs) {
    ADBA_EXPECTS(params.n > 0);
    ADBA_EXPECTS_MSG(4 * static_cast<std::uint64_t>(params.t) < params.n,
                     "simple phase-king requires t < n/4");
    ADBA_EXPECTS_MSG(params.t + 1 <= params.n, "needs t+1 distinct kings");
    ADBA_EXPECTS(inputs.size() == params.n);
    params_ = params;
    const NodeId n = params.n;
    val_.assign(inputs.begin(), inputs.end());
    for (NodeId v = 0; v < n; ++v) ADBA_EXPECTS(val_[v] <= 1);
    maj_.assign(n, 0);
    mult_.assign(n, 0);
    halted_.assign(n, 0);
}

void PhaseKingBatch::send_all(Round r, net::RoundBuffer& buf) {
    send_range(r, buf, 0, params_.n);
}

void PhaseKingBatch::send_range(Round r, net::RoundBuffer& buf, NodeId lo, NodeId hi) {
    const Phase k = r / 2;
    const std::uint8_t* state = buf.state_plane();
    if ((r % 2) == 0) {
        net::Message m;
        m.kind = net::MsgKind::PhaseKingSend;
        m.phase = k;
        for (NodeId v = lo; v < hi; ++v) {
            if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
            m.val = val_[v];
            buf.set_broadcast(v, m);
        }
        return;
    }
    // Only the king speaks in round 2 — and only the shard that holds it.
    const NodeId king = params_.king_of(k);
    if (king < lo || king >= hi) return;
    if ((state[king] & net::RoundBuffer::kByzantine) != 0 || halted_[king]) return;
    net::Message m;
    m.kind = net::MsgKind::PhaseKingRuler;
    m.phase = k;
    m.val = maj_[king];
    buf.set_broadcast(king, m);
}

void PhaseKingBatch::apply_send_round(NodeId v, const std::array<Count, 2>& cnt) {
    maj_[v] = cnt[1] > cnt[0] ? Bit{1} : Bit{0};
    mult_[v] = cnt[maj_[v]];
}

void PhaseKingBatch::apply_king_round(NodeId v, Phase k, const net::Message* m) {
    Bit king_val = 0;  // a silent/corrupted king defaults to 0 at every node
    if (m != nullptr && m->kind == net::MsgKind::PhaseKingRuler && m->phase == k)
        king_val = m->val & 1;
    if (2 * static_cast<std::uint64_t>(mult_[v]) >
        params_.n + 2 * static_cast<std::uint64_t>(params_.t)) {
        val_[v] = maj_[v];
    } else {
        val_[v] = king_val;
    }
    if (k + 1 == params_.phases()) halted_[v] = 1;
}

void PhaseKingBatch::receive_all(Round r, const net::RoundBuffer& buf,
                                 const net::RoundTally& tally) {
    receive_prepare(r, buf, tally);
    receive_range(r, buf, tally, 0, params_.n);
}

void PhaseKingBatch::receive_prepare(Round r, const net::RoundBuffer&,
                                     const net::RoundTally& tally) {
    prep_base_ = {0, 0};
    prep_delta_ = nullptr;
    if ((r % 2) != 0) return;  // the king round needs no shared tallies
    const Phase k = r / 2;
    const net::TallyBucket* b = tally.find(net::MsgKind::PhaseKingSend, k);
    if (b != nullptr) prep_base_ = b->val_cnt;
    prep_delta_ = tally.val_delta_plane(net::MsgKind::PhaseKingSend, k, false);
}

void PhaseKingBatch::receive_range(Round r, const net::RoundBuffer& buf,
                                   const net::RoundTally&, NodeId lo, NodeId hi) {
    const Phase k = r / 2;
    const std::uint8_t* state = buf.state_plane();
    if ((r % 2) == 0) {
        for (NodeId v = lo; v < hi; ++v) {
            if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
            std::array<Count, 2> cnt = prep_base_;
            if (prep_delta_ != nullptr) {
                cnt[0] += prep_delta_[v][0];
                cnt[1] += prep_delta_[v][1];
            }
            apply_send_round(v, cnt);
        }
        return;
    }
    const NodeId king = params_.king_of(k);
    for (NodeId v = lo; v < hi; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
        apply_king_round(v, k, buf.from(v, king));
    }
}

void PhaseKingBatch::receive_sparse_prepare(Round r, const net::RoundBuffer&,
                                            const net::RoundTally&,
                                            const net::SparsePlane& sparse) {
    prep_sparse_query_ = net::SparsePlane::Query{};
    if ((r % 2) != 0) return;  // the king round probes one sender exactly
    prep_sparse_query_ =
        sparse.query(net::MsgKind::PhaseKingSend, r / 2, /*require_flag=*/false);
}

void PhaseKingBatch::receive_sparse_range(Round r, const net::RoundBuffer& buf,
                                          const net::RoundTally&,
                                          const net::SparsePlane& sparse, NodeId lo,
                                          NodeId hi) {
    const Phase k = r / 2;
    const std::uint8_t* state = buf.state_plane();
    if ((r % 2) == 0) {
        for (NodeId v = lo; v < hi; ++v) {
            if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
            apply_send_round(v, sparse.val_estimates(prep_sparse_query_, v));
        }
        return;
    }
    // The king probe is exact at any sampling degree: one sender, one O(1)
    // buffer read — sampling it would save nothing and lose the coordinator.
    const NodeId king = params_.king_of(k);
    for (NodeId v = lo; v < hi; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
        apply_king_round(v, k, buf.from(v, king));
    }
}

void PhaseKingBatch::receive_all(Round r, const net::RoundBuffer& buf,
                                 const net::DeliverySource& src) {
    const Phase k = r / 2;
    const NodeId n = params_.n;
    const std::uint8_t* state = buf.state_plane();
    for (NodeId v = 0; v < n; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
        const net::ReceiveView view(src, v);
        if ((r % 2) == 0)
            apply_send_round(v,
                             view.val_counts(net::MsgKind::PhaseKingSend, k, false));
        else
            apply_king_round(v, k, view.from(params_.king_of(k)));
    }
}

// --------------------------------------------------------- FusedPhaseKing

FusedPhaseKing::FusedPhaseKing(const PhaseKingParams& params) {
    ADBA_EXPECTS(params.n > 0);
    ADBA_EXPECTS_MSG(4 * static_cast<std::uint64_t>(params.t) < params.n,
                     "simple phase-king requires t < n/4");
    ADBA_EXPECTS_MSG(params.t + 1 <= params.n, "needs t+1 distinct kings");
    params_ = params;
}

void FusedPhaseKing::rearm(const std::uint64_t* input_plane,
                           const SeedTree* /*lane_seeds*/) {
    const NodeId n = params_.n;
    val_.assign(input_plane, input_plane + n);
    maj_.assign(n, 0);
    strong_.assign(n, 0);
    decided_.assign(n, 0);
    halted_.assign(n, 0);
    m_maj_.assign(n, 0);
    m_strong_.assign(n, 0);
    m_kv_.assign(n, 0);
}

void FusedPhaseKing::send_round(Round r, net::FusedFrame& frame) {
    const NodeId n = params_.n;
    const Phase k = r / 2;
    frame.phase = k;
    if ((r % 2) == 0) {
        frame.kind = net::MsgKind::PhaseKingSend;
        for (NodeId v = 0; v < n; ++v) {
            frame.sent[v] = ~frame.byz[v] & ~halted_[v];
            frame.val[v] = val_[v];
        }
        return;
    }
    // Only the king speaks in round 2.
    frame.kind = net::MsgKind::PhaseKingRuler;
    const NodeId king = params_.king_of(k);
    frame.sent[king] = ~frame.byz[king] & ~halted_[king];
    frame.val[king] = maj_[king];
}

void FusedPhaseKing::receive_round(Round r, const net::FusedFrame& frame) {
    const NodeId n = params_.n;
    const Phase k = r / 2;

    if ((r % 2) == 0) {
        net::kern::LaneAdder a0, a1;
        for (NodeId v = 0; v < n; ++v) {
            a0.add(frame.sent[v] & ~frame.val[v]);
            a1.add(frame.sent[v] & frame.val[v]);
        }
        Count h0[net::kFusedLanes], h1[net::kFusedLanes];
        a0.counts(h0);
        a1.counts(h1);

        t_maj_.reset(n);
        t_strong_.reset(n);
        for (std::uint64_t lanes = frame.active; lanes != 0; lanes &= lanes - 1) {
            const unsigned j = static_cast<unsigned>(std::countr_zero(lanes));
            const std::uint64_t bit = std::uint64_t{1} << j;
            const auto& rows = frame.rows(j);
            segs_.rebuild(rows, n);
            for (std::size_t i = 0; i < segs_.count(); ++i) {
                const NodeId lo = segs_.lo(i);
                const NodeId hi = segs_.hi(i);
                Count cnt[2] = {h0[j], h1[j]};
                for (const net::FusedRow& row : rows) {
                    const net::Message* m = net::LaneSegments::side(row, lo);
                    if (m != nullptr && m->kind == net::MsgKind::PhaseKingSend &&
                        m->phase == k)
                        ++cnt[m->val & 1];
                }
                const Bit maj = cnt[1] > cnt[0] ? Bit{1} : Bit{0};
                const Count mult = cnt[maj];
                if (maj != 0) t_maj_.mark(lo, hi, bit);
                if (2 * static_cast<std::uint64_t>(mult) >
                    params_.n + 2 * static_cast<std::uint64_t>(params_.t))
                    t_strong_.mark(lo, hi, bit);
            }
        }
        t_maj_.sweep(m_maj_.data(), n);
        t_strong_.sweep(m_strong_.data(), n);
        for (NodeId v = 0; v < n; ++v) {
            const std::uint64_t act = ~frame.byz[v] & ~halted_[v];
            maj_[v] = (maj_[v] & ~act) | (m_maj_[v] & act);
            strong_[v] = (strong_[v] & ~act) | (m_strong_[v] & act);
        }
        return;
    }

    // Round 2: the king's value per lane. Honest kings are lane-uniform
    // (one broadcast plane read); corrupted kings deliver per segment; a
    // silent/corrupted king defaults to 0 at every node.
    const NodeId king = params_.king_of(k);
    t_kv_.reset(n);
    const std::uint64_t honest_kv =
        frame.sent[king] & frame.val[king] & ~frame.byz[king];
    if (honest_kv != 0) t_kv_.mark(0, n, honest_kv & frame.active);
    for (std::uint64_t lanes = frame.active & frame.byz[king]; lanes != 0;
         lanes &= lanes - 1) {
        const unsigned j = static_cast<unsigned>(std::countr_zero(lanes));
        const std::uint64_t bit = std::uint64_t{1} << j;
        for (const net::FusedRow& row : frame.rows(j)) {
            if (row.sender != king) continue;
            const auto kv = [&](const net::Message* m) {
                return m != nullptr && m->kind == net::MsgKind::PhaseKingRuler &&
                       m->phase == k && (m->val & 1) != 0;
            };
            if (row.boundary > 0 && kv(row.has_low ? &row.low : nullptr))
                t_kv_.mark(0, row.boundary, bit);
            if (row.boundary < n && kv(row.has_high ? &row.high : nullptr))
                t_kv_.mark(row.boundary, n, bit);
            break;  // at most one row per (lane, sender, round)
        }
    }
    t_kv_.sweep(m_kv_.data(), n);

    const bool last_phase = k + 1 == params_.phases();
    for (NodeId v = 0; v < n; ++v) {
        const std::uint64_t act = ~frame.byz[v] & ~halted_[v];
        const std::uint64_t nv =
            (strong_[v] & maj_[v]) | (~strong_[v] & m_kv_[v]);
        val_[v] = (val_[v] & ~act) | (nv & act);
        if (last_phase) halted_[v] |= act;
    }
}

std::unique_ptr<net::BatchProtocol> make_phase_king_batch(
    const PhaseKingParams& params, const std::vector<Bit>& inputs) {
    return std::make_unique<PhaseKingBatch>(params, inputs);
}

void reinit_phase_king_batch(const PhaseKingParams& params,
                             const std::vector<Bit>& inputs,
                             net::BatchProtocol& batch) {
    auto* b = dynamic_cast<PhaseKingBatch*>(&batch);
    ADBA_EXPECTS_MSG(b != nullptr,
                     "batch pool type does not match the requested protocol");
    b->rearm(params, inputs);
}

}  // namespace adba::base
