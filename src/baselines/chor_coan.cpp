#include "baselines/chor_coan.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "support/math.hpp"

namespace adba::base {

namespace {
double log2n(NodeId n) { return static_cast<double>(std::max<std::uint32_t>(1, ceil_log2(n))); }

Count clamp_count(double c, NodeId n) {
    return static_cast<Count>(std::clamp(std::ceil(c), 1.0, static_cast<double>(n)));
}
}  // namespace

ChorCoanParams ChorCoanParams::compute_rushing(NodeId n, Count t, const Tuning& tune) {
    ADBA_EXPECTS(n >= 1);
    ADBA_EXPECTS_MSG(3 * static_cast<std::uint64_t>(t) < n, "requires t < n/3");
    const double logn = log2n(n);
    const Count c = std::max(clamp_count(3.0 * tune.alpha * t / logn, n),
                             clamp_count(tune.gamma * logn, n));
    ChorCoanParams p;
    p.n = n;
    p.t = t;
    p.phases = c;
    p.schedule = BlockSchedule::make(n, static_cast<NodeId>(ceil_div(n, c)));
    return p;
}

ChorCoanParams ChorCoanParams::compute_classic(NodeId n, Count t, const Tuning& tune) {
    ADBA_EXPECTS(n >= 1);
    ADBA_EXPECTS_MSG(3 * static_cast<std::uint64_t>(t) < n, "requires t < n/3");
    const double logn = log2n(n);
    const auto g = static_cast<NodeId>(
        std::clamp(std::ceil(tune.beta * logn), 1.0, static_cast<double>(n)));
    // Budget enough phases that the adversary cannot ruin them all: a ruined
    // group costs ~½·sqrt(g) corruptions under rushing, plus the w.h.p. floor.
    const double ruin_cost = 0.5 * std::sqrt(static_cast<double>(g));
    const Count phases = clamp_count(2.0 * t / std::max(1.0, ruin_cost), n) +
                         clamp_count(tune.gamma * logn, n);
    ChorCoanParams p;
    p.n = n;
    p.t = t;
    p.phases = phases;
    p.schedule = BlockSchedule::make(n, g);
    return p;
}

ChorCoanNode::ChorCoanNode(const ChorCoanParams& params, AgreementMode mode, NodeId self,
                           Bit input, Xoshiro256 rng) {
    reinit(params, mode, self, input, rng);
}

void ChorCoanNode::reinit(const ChorCoanParams& params, AgreementMode mode,
                          NodeId self, Bit input, Xoshiro256 rng) {
    RabinSkeletonNode::reinit(
        core::SkeletonConfig{params.n, params.t, params.phases, mode}, self, input,
        rng);
    sched_ = params.schedule;
}

CoinSign ChorCoanNode::coin_contribution(Phase p) {
    return sched_.flips_in_phase(self(), p) ? rng().sign() : CoinSign{0};
}

Bit ChorCoanNode::coin_value(Phase p, const net::ReceiveView& view) {
    const Count k = sched_.committee_of_phase(p);
    const auto [first, last] = sched_.range(k);
    return core::committee_coin_sum(view, p, first, last) >= 0 ? Bit{1} : Bit{0};
}

std::vector<std::unique_ptr<net::HonestNode>> make_chor_coan_nodes(
    const ChorCoanParams& params, AgreementMode mode, const std::vector<Bit>& inputs,
    const SeedTree& seeds) {
    ADBA_EXPECTS(inputs.size() == params.n);
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(params.n);
    for (NodeId v = 0; v < params.n; ++v) {
        nodes.push_back(std::make_unique<ChorCoanNode>(
            params, mode, v, inputs[v], seeds.stream(StreamPurpose::NodeProtocol, v)));
    }
    return nodes;
}

void reinit_chor_coan_nodes(const ChorCoanParams& params, AgreementMode mode,
                            const std::vector<Bit>& inputs, const SeedTree& seeds,
                            std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    ADBA_EXPECTS(inputs.size() == params.n);
    net::reinit_node_pool<ChorCoanNode>(nodes, params.n, [&](ChorCoanNode& nd,
                                                             NodeId v) {
        nd.reinit(params, mode, v, inputs[v],
                  seeds.stream(StreamPurpose::NodeProtocol, v));
    });
}

namespace {

core::BatchCoinSpec chor_coan_coin(const ChorCoanParams& params) {
    core::BatchCoinSpec coin;
    coin.kind = core::BatchCoinSpec::Kind::Committee;
    coin.schedule = params.schedule;
    return coin;
}

}  // namespace

std::unique_ptr<net::BatchProtocol> make_chor_coan_batch(
    const ChorCoanParams& params, AgreementMode mode, const std::vector<Bit>& inputs,
    const SeedTree& seeds) {
    return core::make_skeleton_batch(
        core::SkeletonConfig{params.n, params.t, params.phases, mode},
        chor_coan_coin(params), inputs, seeds);
}

void reinit_chor_coan_batch(const ChorCoanParams& params, AgreementMode mode,
                            const std::vector<Bit>& inputs, const SeedTree& seeds,
                            net::BatchProtocol& batch) {
    core::reinit_skeleton_batch(
        core::SkeletonConfig{params.n, params.t, params.phases, mode},
        chor_coan_coin(params), inputs, seeds, batch);
}

Round max_rounds_whp(const ChorCoanParams& p) { return 2 * (p.phases + 2); }

}  // namespace adba::base
