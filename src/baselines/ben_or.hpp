// Ben-Or's randomized agreement (PODC 1983, [5] in the paper) — the
// protocol that opened the randomized-BA line the paper extends. We port
// the classical two-step structure to the synchronous engine with its
// original thresholds and resilience t < n/5:
//
//   report round : broadcast val; if some b passes the (n+t)/2 quorum,
//                  propose b, else propose ⊥;
//   propose round: if > 2t proposals for b  -> decide b (broadcast one more
//                  phase, then halt — same flush rule as the skeleton);
//                  if > t proposals for b   -> val := b;
//                  else                     -> val := private coin flip.
//
// With private coins a split start needs expected 2^Θ(n) phases — this is
// the historical starting point that Rabin-style shared coins (and the
// paper's committee coins) replace; E8/E11 use it as the "no shared
// randomness" control with provable safety.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/node.hpp"
#include "rand/seed_tree.hpp"
#include "support/types.hpp"

namespace adba::base {

struct BenOrParams {
    NodeId n = 0;
    Count t = 0;       ///< requires 5t < n (the 1983 resilience)
    Count phases = 1;  ///< round budget: 2 rounds per phase
};

class BenOrNode final : public net::HonestNode {
public:
    BenOrNode(BenOrParams params, NodeId self, Bit input, Xoshiro256 rng);

    /// Re-arms a pooled node for a fresh trial (constructor contract).
    void reinit(BenOrParams params, NodeId self, Bit input, Xoshiro256 rng);

    std::optional<net::Message> round_send(Round r) override;
    void round_receive(Round r, const net::ReceiveView& view) override;
    bool halted() const override { return halted_; }
    Bit current_value() const override { return val_; }
    bool current_decided() const override { return decided_; }

private:
    BenOrParams params_;
    NodeId self_ = 0;
    Xoshiro256 rng_;
    Bit val_ = 0;
    Bit proposal_ = 0;
    bool proposing_ = false;  ///< this phase's R2 proposal is non-⊥
    bool decided_ = false;
    bool flushing_ = false;
    bool halted_ = false;
};

std::vector<std::unique_ptr<net::HonestNode>> make_ben_or_nodes(
    const BenOrParams& params, const std::vector<Bit>& inputs, const SeedTree& seeds);

/// Re-arms a pool built by make_ben_or_nodes for a new trial (no allocs).
void reinit_ben_or_nodes(const BenOrParams& params, const std::vector<Bit>& inputs,
                         const SeedTree& seeds,
                         std::vector<std::unique_ptr<net::HonestNode>>& nodes);

}  // namespace adba::base
