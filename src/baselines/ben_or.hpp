// Ben-Or's randomized agreement (PODC 1983, [5] in the paper) — the
// protocol that opened the randomized-BA line the paper extends. We port
// the classical two-step structure to the synchronous engine with its
// original thresholds and resilience t < n/5:
//
//   report round : broadcast val; if some b passes the (n+t)/2 quorum,
//                  propose b, else propose ⊥;
//   propose round: if > 2t proposals for b  -> decide b (broadcast one more
//                  phase, then halt — same flush rule as the skeleton);
//                  if > t proposals for b   -> val := b;
//                  else                     -> val := private coin flip.
//
// With private coins a split start needs expected 2^Θ(n) phases — this is
// the historical starting point that Rabin-style shared coins (and the
// paper's committee coins) replace; E8/E11 use it as the "no shared
// randomness" control with provable safety.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/batch.hpp"
#include "net/fused_plane.hpp"
#include "net/node.hpp"
#include "net/sparse_plane.hpp"
#include "rand/seed_tree.hpp"
#include "support/types.hpp"

namespace adba::base {

struct BenOrParams {
    NodeId n = 0;
    Count t = 0;       ///< requires 5t < n (the 1983 resilience)
    Count phases = 1;  ///< round budget: 2 rounds per phase
};

class BenOrNode final : public net::HonestNode {
public:
    BenOrNode(BenOrParams params, NodeId self, Bit input, Xoshiro256 rng);

    /// Re-arms a pooled node for a fresh trial (constructor contract).
    void reinit(BenOrParams params, NodeId self, Bit input, Xoshiro256 rng);

    std::optional<net::Message> round_send(Round r) override;
    void round_receive(Round r, const net::ReceiveView& view) override;
    bool halted() const override { return halted_; }
    Bit current_value() const override { return val_; }
    bool current_decided() const override { return decided_; }

private:
    BenOrParams params_;
    NodeId self_ = 0;
    Xoshiro256 rng_;
    Bit val_ = 0;
    Bit proposal_ = 0;
    bool proposing_ = false;  ///< this phase's R2 proposal is non-⊥
    bool decided_ = false;
    bool flushing_ = false;
    bool halted_ = false;
};

/// SoA batch form of Ben-Or: per-node state (val / proposal / proposing /
/// decided / flushing / halted, plus private-coin RNG streams) as flat
/// arrays, whole population stepped under one dispatch per beat. The
/// report/propose quorum counts are hoisted out of the per-node loop: the
/// honest tallies are receiver-independent, only Byzantine deltas vary.
/// Bit-identical to BenOrNode (tests/test_batch_plane.cpp).
class BenOrBatch final : public net::BatchProtocol {
public:
    BenOrBatch(const BenOrParams& params, const std::vector<Bit>& inputs,
               const SeedTree& seeds);
    void rearm(const BenOrParams& params, const std::vector<Bit>& inputs,
               const SeedTree& seeds);

    NodeId n() const override { return params_.n; }
    void send_all(Round r, net::RoundBuffer& buf) override;
    void receive_all(Round r, const net::RoundBuffer& buf,
                     const net::RoundTally& tally) override;
    void receive_all(Round r, const net::RoundBuffer& buf,
                     const net::DeliverySource& src) override;
    // Sharded beats: state planes and RNG streams are per-node, the honest
    // quorum counts and Byzantine delta plane are hoisted in
    // receive_prepare, so ranges step race-free (net/batch.hpp contract).
    bool shardable() const override { return true; }
    void send_range(Round r, net::RoundBuffer& buf, NodeId lo, NodeId hi) override;
    void receive_prepare(Round r, const net::RoundBuffer& buf,
                         const net::RoundTally& tally) override;
    void receive_range(Round r, const net::RoundBuffer& buf,
                       const net::RoundTally& tally, NodeId lo, NodeId hi) override;
    // Sparse beats: report/propose quorums from sampled estimates. The
    // "conflicting proposals above t" assertion is a theorem for exact
    // counts only, so it relaxes under sub-dense sampling; dense sampling
    // reproduces the flat integers and keeps it armed.
    bool supports_sparse() const override { return true; }
    void receive_sparse_prepare(Round r, const net::RoundBuffer& buf,
                                const net::RoundTally& tally,
                                const net::SparsePlane& sparse) override;
    void receive_sparse_range(Round r, const net::RoundBuffer& buf,
                              const net::RoundTally& tally,
                              const net::SparsePlane& sparse, NodeId lo,
                              NodeId hi) override;
    const std::uint8_t* halted_plane() const override { return halted_.data(); }
    Bit value(NodeId v) const override { return val_[v]; }
    bool decided(NodeId v) const override { return decided_[v] != 0; }
    Bit output(NodeId v) const override { return val_[v]; }

private:
    void apply_report(NodeId v, const std::array<Count, 2>& cnt);
    /// `checked` arms the conflicting-proposals assertion — exact counts
    /// only; sub-dense sampled estimates can trip it statistically.
    void apply_propose(NodeId v, Phase p, const std::array<Count, 2>& prop,
                       bool checked);

    BenOrParams params_;
    // receive_prepare → receive_range handoff; valid for one beat only.
    std::array<Count, 2> prep_base_{0, 0};
    const std::array<Count, 2>* prep_delta_ = nullptr;
    net::SparsePlane::Query prep_sparse_query_;  ///< sparse beats only
    std::vector<Bit> val_;
    std::vector<Bit> proposal_;
    std::vector<std::uint8_t> proposing_;
    std::vector<std::uint8_t> decided_;
    std::vector<std::uint8_t> flushing_;
    std::vector<std::uint8_t> halted_;
    std::vector<Xoshiro256> rng_;
};

/// 64-lane Ben-Or over the fused trial plane (net/fused_plane.hpp): report
/// and propose quorums become per-(lane, segment) exact counts fed by
/// bit-sliced LaneAdder columns; the private coin draws from the focused
/// (node, lane) stream exactly where the scalar case-3 path would.
/// Bit-identical to BenOrBatch lane by lane.
class FusedBenOr final : public net::FusedProtocol {
public:
    explicit FusedBenOr(const BenOrParams& params);

    NodeId n() const override { return params_.n; }
    void rearm(const std::uint64_t* input_plane, const SeedTree* lane_seeds) override;
    void send_round(Round r, net::FusedFrame& frame) override;
    void receive_round(Round r, const net::FusedFrame& frame) override;
    const std::uint64_t* value_plane() const override { return val_.data(); }
    const std::uint64_t* decided_plane() const override { return decided_.data(); }
    const std::uint64_t* halted_plane() const override { return halted_.data(); }

private:
    BenOrParams params_;
    std::vector<std::uint64_t> val_;
    std::vector<std::uint64_t> proposal_;
    std::vector<std::uint64_t> proposing_;
    std::vector<std::uint64_t> decided_;
    std::vector<std::uint64_t> flushing_;
    std::vector<std::uint64_t> halted_;
    std::vector<Xoshiro256> rng_;  ///< lane-major per node: rng_[v*64+j]
    // Recycled receive scratch.
    net::LaneSegments segs_;
    net::LaneToggles t_fin_, t_val1_, t_coin_;
    std::vector<std::uint64_t> m_fin_, m_val1_, m_coin_;
};

std::vector<std::unique_ptr<net::HonestNode>> make_ben_or_nodes(
    const BenOrParams& params, const std::vector<Bit>& inputs, const SeedTree& seeds);

/// Re-arms a pool built by make_ben_or_nodes for a new trial (no allocs).
void reinit_ben_or_nodes(const BenOrParams& params, const std::vector<Bit>& inputs,
                         const SeedTree& seeds,
                         std::vector<std::unique_ptr<net::HonestNode>>& nodes);

/// Native batch factory / pooled reinit (mirrors make/reinit_ben_or_nodes).
std::unique_ptr<net::BatchProtocol> make_ben_or_batch(const BenOrParams& params,
                                                      const std::vector<Bit>& inputs,
                                                      const SeedTree& seeds);
void reinit_ben_or_batch(const BenOrParams& params, const std::vector<Bit>& inputs,
                         const SeedTree& seeds, net::BatchProtocol& batch);

}  // namespace adba::base
