#include "baselines/ben_or.hpp"

#include "support/contracts.hpp"

namespace adba::base {

BenOrNode::BenOrNode(BenOrParams params, NodeId self, Bit input, Xoshiro256 rng) {
    reinit(params, self, input, rng);  // one initialization body for both paths
}

void BenOrNode::reinit(BenOrParams params, NodeId self, Bit input, Xoshiro256 rng) {
    ADBA_EXPECTS(params.n > 0);
    ADBA_EXPECTS_MSG(5 * static_cast<std::uint64_t>(params.t) < params.n,
                     "Ben-Or 1983 requires t < n/5");
    ADBA_EXPECTS(params.phases >= 1);
    ADBA_EXPECTS(self < params.n);
    ADBA_EXPECTS(input <= 1);
    params_ = params;
    self_ = self;
    rng_ = rng;
    val_ = input;
    proposal_ = 0;
    proposing_ = false;
    decided_ = false;
    flushing_ = false;
    halted_ = false;
}

std::optional<net::Message> BenOrNode::round_send(Round r) {
    ADBA_EXPECTS(!halted_);
    net::Message m;
    m.phase = r / 2;
    if (r % 2 == 0) {
        m.kind = net::MsgKind::BenOrReport;
        m.val = val_;
    } else {
        m.kind = net::MsgKind::BenOrPropose;
        m.val = proposal_;
        m.flag = proposing_ ? 1 : 0;  // flag 0 encodes the ⊥ proposal
        if (flushing_) halted_ = true;
    }
    return m;
}

void BenOrNode::round_receive(Round r, const net::ReceiveView& view) {
    ADBA_EXPECTS(!halted_);
    const Phase p = r / 2;
    if (flushing_) return;  // output fixed; ignoring deliveries
    const Count n = params_.n;
    const Count t = params_.t;

    if (r % 2 == 0) {
        const auto cnt =
            view.val_counts(net::MsgKind::BenOrReport, p, /*require_flag=*/false);
        proposing_ = false;
        for (Bit b : {Bit{0}, Bit{1}}) {
            if (2 * static_cast<std::uint64_t>(cnt[b]) >
                static_cast<std::uint64_t>(n) + t) {
                proposal_ = b;
                proposing_ = true;
            }
        }
        return;
    }

    const auto prop =
        view.val_counts(net::MsgKind::BenOrPropose, p, /*require_flag=*/true);
    // Two honest nodes cannot propose different values (both passed the
    // (n+t)/2 quorum), so at most one value exceeds t from honest senders.
    ADBA_ENSURES_MSG(!(prop[0] > t && prop[1] > t),
                     "conflicting Ben-Or proposals above t");
    bool adopted = false;
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (prop[b] > 2 * t) {
            val_ = b;
            decided_ = true;
            // Broadcast one more full phase advertising the decision (so
            // peers' proposal tallies see it), then halt.
            flushing_ = true;
            proposal_ = val_;
            proposing_ = true;
            return;
        }
    }
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (prop[b] > t) {
            val_ = b;
            adopted = true;
        }
    }
    if (!adopted) val_ = rng_.bit();  // private coin — the pre-shared-coin world
    if (p + 1 >= params_.phases) halted_ = true;
}

std::vector<std::unique_ptr<net::HonestNode>> make_ben_or_nodes(
    const BenOrParams& params, const std::vector<Bit>& inputs, const SeedTree& seeds) {
    ADBA_EXPECTS(inputs.size() == params.n);
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(params.n);
    for (NodeId v = 0; v < params.n; ++v) {
        nodes.push_back(std::make_unique<BenOrNode>(
            params, v, inputs[v], seeds.stream(StreamPurpose::NodeProtocol, v)));
    }
    return nodes;
}

void reinit_ben_or_nodes(const BenOrParams& params, const std::vector<Bit>& inputs,
                         const SeedTree& seeds,
                         std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    ADBA_EXPECTS(inputs.size() == params.n);
    net::reinit_node_pool<BenOrNode>(nodes, params.n, [&](BenOrNode& nd, NodeId v) {
        nd.reinit(params, v, inputs[v], seeds.stream(StreamPurpose::NodeProtocol, v));
    });
}

// ------------------------------------------------------------- BenOrBatch

BenOrBatch::BenOrBatch(const BenOrParams& params, const std::vector<Bit>& inputs,
                       const SeedTree& seeds) {
    rearm(params, inputs, seeds);
}

void BenOrBatch::rearm(const BenOrParams& params, const std::vector<Bit>& inputs,
                       const SeedTree& seeds) {
    ADBA_EXPECTS(params.n > 0);
    ADBA_EXPECTS_MSG(5 * static_cast<std::uint64_t>(params.t) < params.n,
                     "Ben-Or 1983 requires t < n/5");
    ADBA_EXPECTS(params.phases >= 1);
    ADBA_EXPECTS(inputs.size() == params.n);
    params_ = params;
    const NodeId n = params.n;
    val_.assign(inputs.begin(), inputs.end());
    for (NodeId v = 0; v < n; ++v) ADBA_EXPECTS(val_[v] <= 1);
    proposal_.assign(n, 0);
    proposing_.assign(n, 0);
    decided_.assign(n, 0);
    flushing_.assign(n, 0);
    halted_.assign(n, 0);
    rng_.clear();
    rng_.reserve(n);
    for (NodeId v = 0; v < n; ++v)
        rng_.push_back(seeds.stream(StreamPurpose::NodeProtocol, v));
}

void BenOrBatch::send_all(Round r, net::RoundBuffer& buf) {
    send_range(r, buf, 0, params_.n);
}

void BenOrBatch::send_range(Round r, net::RoundBuffer& buf, NodeId lo, NodeId hi) {
    const std::uint8_t* state = buf.state_plane();
    const bool round2 = (r % 2) != 0;
    net::Message m;
    m.phase = r / 2;
    m.kind = round2 ? net::MsgKind::BenOrPropose : net::MsgKind::BenOrReport;
    for (NodeId v = lo; v < hi; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
        if (round2) {
            m.val = proposal_[v];
            m.flag = proposing_[v] ? 1 : 0;  // flag 0 encodes the ⊥ proposal
            if (flushing_[v]) halted_[v] = 1;
        } else {
            m.val = val_[v];
            m.flag = 0;
        }
        buf.set_broadcast(v, m);
    }
}

void BenOrBatch::apply_report(NodeId v, const std::array<Count, 2>& cnt) {
    proposing_[v] = 0;
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (2 * static_cast<std::uint64_t>(cnt[b]) >
            static_cast<std::uint64_t>(params_.n) + params_.t) {
            proposal_[v] = b;
            proposing_[v] = 1;
        }
    }
}

void BenOrBatch::apply_propose(NodeId v, Phase p, const std::array<Count, 2>& prop,
                               bool checked) {
    const Count t = params_.t;
    // Two honest nodes cannot propose different values (both passed the
    // (n+t)/2 quorum), so at most one value exceeds t from honest senders.
    if (checked) {
        ADBA_ENSURES_MSG(!(prop[0] > t && prop[1] > t),
                         "conflicting Ben-Or proposals above t");
    }
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (prop[b] > 2 * t) {
            val_[v] = b;
            decided_[v] = 1;
            flushing_[v] = 1;
            proposal_[v] = val_[v];
            proposing_[v] = 1;
            return;
        }
    }
    bool adopted = false;
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (prop[b] > t) {
            val_[v] = b;
            adopted = true;
        }
    }
    if (!adopted) val_[v] = rng_[v].bit();  // private coin
    if (p + 1 >= params_.phases) halted_[v] = 1;
}

void BenOrBatch::receive_all(Round r, const net::RoundBuffer& buf,
                             const net::RoundTally& tally) {
    receive_prepare(r, buf, tally);
    receive_range(r, buf, tally, 0, params_.n);
}

void BenOrBatch::receive_prepare(Round r, const net::RoundBuffer&,
                                 const net::RoundTally& tally) {
    const Phase p = r / 2;
    const bool round2 = (r % 2) != 0;
    const net::MsgKind kind =
        round2 ? net::MsgKind::BenOrPropose : net::MsgKind::BenOrReport;
    // Honest quorum counts once per round; only Byzantine deltas vary.
    const net::TallyBucket* b = tally.find(kind, p);
    prep_base_ = {0, 0};
    if (b != nullptr) prep_base_ = round2 ? b->val_flag_cnt : b->val_cnt;
    prep_delta_ = tally.val_delta_plane(kind, p, round2);
}

void BenOrBatch::receive_range(Round r, const net::RoundBuffer& buf,
                               const net::RoundTally&, NodeId lo, NodeId hi) {
    const Phase p = r / 2;
    const std::uint8_t* state = buf.state_plane();
    const bool round2 = (r % 2) != 0;
    for (NodeId v = lo; v < hi; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v] ||
            flushing_[v])
            continue;
        std::array<Count, 2> cnt = prep_base_;
        if (prep_delta_ != nullptr) {
            cnt[0] += prep_delta_[v][0];
            cnt[1] += prep_delta_[v][1];
        }
        if (round2)
            apply_propose(v, p, cnt, /*checked=*/true);
        else
            apply_report(v, cnt);
    }
}

void BenOrBatch::receive_sparse_prepare(Round r, const net::RoundBuffer&,
                                        const net::RoundTally&,
                                        const net::SparsePlane& sparse) {
    const Phase p = r / 2;
    const bool round2 = (r % 2) != 0;
    const net::MsgKind kind =
        round2 ? net::MsgKind::BenOrPropose : net::MsgKind::BenOrReport;
    prep_sparse_query_ = sparse.query(kind, p, /*require_flag=*/round2);
}

void BenOrBatch::receive_sparse_range(Round r, const net::RoundBuffer& buf,
                                      const net::RoundTally&,
                                      const net::SparsePlane& sparse, NodeId lo,
                                      NodeId hi) {
    const Phase p = r / 2;
    const std::uint8_t* state = buf.state_plane();
    const bool round2 = (r % 2) != 0;
    for (NodeId v = lo; v < hi; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v] ||
            flushing_[v])
            continue;
        const std::array<Count, 2> cnt = sparse.val_estimates(prep_sparse_query_, v);
        if (round2)
            apply_propose(v, p, cnt, /*checked=*/sparse.dense());
        else
            apply_report(v, cnt);
    }
}

void BenOrBatch::receive_all(Round r, const net::RoundBuffer& buf,
                             const net::DeliverySource& src) {
    const Phase p = r / 2;
    const NodeId n = params_.n;
    const std::uint8_t* state = buf.state_plane();
    for (NodeId v = 0; v < n; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v] ||
            flushing_[v])
            continue;
        const net::ReceiveView view(src, v);
        if ((r % 2) == 0)
            apply_report(v, view.val_counts(net::MsgKind::BenOrReport, p, false));
        else
            apply_propose(v, p, view.val_counts(net::MsgKind::BenOrPropose, p, true),
                          /*checked=*/true);
    }
}

// ------------------------------------------------------------- FusedBenOr

FusedBenOr::FusedBenOr(const BenOrParams& params) {
    ADBA_EXPECTS(params.n > 0);
    ADBA_EXPECTS_MSG(5 * static_cast<std::uint64_t>(params.t) < params.n,
                     "Ben-Or 1983 requires t < n/5");
    ADBA_EXPECTS(params.phases >= 1);
    params_ = params;
}

void FusedBenOr::rearm(const std::uint64_t* input_plane, const SeedTree* lane_seeds) {
    const NodeId n = params_.n;
    val_.assign(input_plane, input_plane + n);
    proposal_.assign(n, 0);
    proposing_.assign(n, 0);
    decided_.assign(n, 0);
    flushing_.assign(n, 0);
    halted_.assign(n, 0);
    m_fin_.assign(n, 0);
    m_val1_.assign(n, 0);
    m_coin_.assign(n, 0);
    rng_.clear();
    rng_.reserve(static_cast<std::size_t>(n) * net::kFusedLanes);
    for (NodeId v = 0; v < n; ++v)
        for (unsigned j = 0; j < net::kFusedLanes; ++j)
            rng_.push_back(lane_seeds[j].stream(StreamPurpose::NodeProtocol, v));
}

void FusedBenOr::send_round(Round r, net::FusedFrame& frame) {
    const NodeId n = params_.n;
    const bool round2 = (r % 2) != 0;
    frame.kind = round2 ? net::MsgKind::BenOrPropose : net::MsgKind::BenOrReport;
    frame.phase = r / 2;
    for (NodeId v = 0; v < n; ++v) {
        const std::uint64_t act = ~frame.byz[v] & ~halted_[v];
        frame.sent[v] = act;
        if (round2) {
            frame.val[v] = proposal_[v];
            frame.flag[v] = proposing_[v];  // flag 0 encodes the ⊥ proposal
            halted_[v] |= act & flushing_[v];
        } else {
            frame.val[v] = val_[v];
            frame.flag[v] = 0;
        }
    }
}

void FusedBenOr::receive_round(Round r, const net::FusedFrame& frame) {
    const NodeId n = params_.n;
    const Phase p = r / 2;
    const bool round2 = (r % 2) != 0;
    const net::MsgKind kind =
        round2 ? net::MsgKind::BenOrPropose : net::MsgKind::BenOrReport;
    const Count t = params_.t;

    net::kern::LaneAdder a0, a1;
    for (NodeId v = 0; v < n; ++v) {
        const std::uint64_t present =
            round2 ? frame.sent[v] & frame.flag[v] : frame.sent[v];
        a0.add(present & ~frame.val[v]);
        a1.add(present & frame.val[v]);
    }
    Count h0[net::kFusedLanes], h1[net::kFusedLanes];
    a0.counts(h0);
    a1.counts(h1);

    t_fin_.reset(n);
    t_val1_.reset(n);
    t_coin_.reset(n);

    for (std::uint64_t lanes = frame.active; lanes != 0; lanes &= lanes - 1) {
        const unsigned j = static_cast<unsigned>(std::countr_zero(lanes));
        const std::uint64_t bit = std::uint64_t{1} << j;
        const auto& rows = frame.rows(j);
        segs_.rebuild(rows, n);
        for (std::size_t i = 0; i < segs_.count(); ++i) {
            const NodeId lo = segs_.lo(i);
            const NodeId hi = segs_.hi(i);
            Count cnt[2] = {h0[j], h1[j]};
            for (const net::FusedRow& row : rows) {
                const net::Message* m = net::LaneSegments::side(row, lo);
                if (m == nullptr) continue;
                if (m->kind == kind && m->phase == p && (!round2 || m->flag != 0))
                    ++cnt[m->val & 1];
            }

            if (!round2) {
                // Report round: t_fin_ doubles as the "proposing" mark,
                // t_val1_ as "proposal = 1"; at most one value can pass the
                // (n+t)/2 quorum (counts total at most n).
                for (Bit b : {Bit{0}, Bit{1}}) {
                    if (2 * static_cast<std::uint64_t>(cnt[b]) >
                        static_cast<std::uint64_t>(n) + t) {
                        t_fin_.mark(lo, hi, bit);
                        if (b != 0) t_val1_.mark(lo, hi, bit);
                    }
                }
                continue;
            }

            ADBA_ENSURES_MSG(!(cnt[0] > t && cnt[1] > t),
                             "conflicting Ben-Or proposals above t");
            if (cnt[0] > 2 * t || cnt[1] > 2 * t) {
                t_fin_.mark(lo, hi, bit);
                if (cnt[1] > 2 * t && !(cnt[0] > 2 * t)) t_val1_.mark(lo, hi, bit);
                continue;
            }
            bool adopted = false;
            Bit vb = 0;
            for (Bit b : {Bit{0}, Bit{1}}) {
                if (cnt[b] > t) {
                    vb = b;
                    adopted = true;
                }
            }
            if (adopted) {
                if (vb != 0) t_val1_.mark(lo, hi, bit);
            } else {
                t_coin_.mark(lo, hi, bit);  // private per-cell draw at write
            }
        }
    }

    t_fin_.sweep(m_fin_.data(), n);
    t_val1_.sweep(m_val1_.data(), n);
    t_coin_.sweep(m_coin_.data(), n);

    const bool last_phase = p + 1 >= params_.phases;
    for (NodeId v = 0; v < n; ++v) {
        const std::uint64_t act = ~frame.byz[v] & ~halted_[v] & ~flushing_[v];
        if (!round2) {
            const std::uint64_t prop = m_fin_[v] & act;
            proposing_[v] = (proposing_[v] & ~act) | prop;
            proposal_[v] = (proposal_[v] & ~prop) | (m_val1_[v] & act);
            continue;
        }
        std::uint64_t v1 = m_val1_[v];
        std::uint64_t cm = m_coin_[v] & act;
        if (cm != 0) {
            Xoshiro256* streams =
                &rng_[static_cast<std::size_t>(v) * net::kFusedLanes];
            for (; cm != 0; cm &= cm - 1) {
                const unsigned j = static_cast<unsigned>(std::countr_zero(cm));
                if (streams[j].bit() != 0) v1 |= std::uint64_t{1} << j;
            }
        }
        val_[v] = (val_[v] & ~act) | (v1 & act);
        const std::uint64_t fin = m_fin_[v] & act;
        decided_[v] |= fin;
        flushing_[v] |= fin;
        proposing_[v] |= fin;
        proposal_[v] = (proposal_[v] & ~fin) | (m_val1_[v] & fin);
        if (last_phase) halted_[v] |= act & ~fin;
    }
}

std::unique_ptr<net::BatchProtocol> make_ben_or_batch(const BenOrParams& params,
                                                      const std::vector<Bit>& inputs,
                                                      const SeedTree& seeds) {
    return std::make_unique<BenOrBatch>(params, inputs, seeds);
}

void reinit_ben_or_batch(const BenOrParams& params, const std::vector<Bit>& inputs,
                         const SeedTree& seeds, net::BatchProtocol& batch) {
    auto* b = dynamic_cast<BenOrBatch*>(&batch);
    ADBA_EXPECTS_MSG(b != nullptr,
                     "batch pool type does not match the requested protocol");
    b->rearm(params, inputs, seeds);
}

}  // namespace adba::base
