#include "baselines/ben_or.hpp"

#include "support/contracts.hpp"

namespace adba::base {

BenOrNode::BenOrNode(BenOrParams params, NodeId self, Bit input, Xoshiro256 rng) {
    reinit(params, self, input, rng);  // one initialization body for both paths
}

void BenOrNode::reinit(BenOrParams params, NodeId self, Bit input, Xoshiro256 rng) {
    ADBA_EXPECTS(params.n > 0);
    ADBA_EXPECTS_MSG(5 * static_cast<std::uint64_t>(params.t) < params.n,
                     "Ben-Or 1983 requires t < n/5");
    ADBA_EXPECTS(params.phases >= 1);
    ADBA_EXPECTS(self < params.n);
    ADBA_EXPECTS(input <= 1);
    params_ = params;
    self_ = self;
    rng_ = rng;
    val_ = input;
    proposal_ = 0;
    proposing_ = false;
    decided_ = false;
    flushing_ = false;
    halted_ = false;
}

std::optional<net::Message> BenOrNode::round_send(Round r) {
    ADBA_EXPECTS(!halted_);
    net::Message m;
    m.phase = r / 2;
    if (r % 2 == 0) {
        m.kind = net::MsgKind::BenOrReport;
        m.val = val_;
    } else {
        m.kind = net::MsgKind::BenOrPropose;
        m.val = proposal_;
        m.flag = proposing_ ? 1 : 0;  // flag 0 encodes the ⊥ proposal
        if (flushing_) halted_ = true;
    }
    return m;
}

void BenOrNode::round_receive(Round r, const net::ReceiveView& view) {
    ADBA_EXPECTS(!halted_);
    const Phase p = r / 2;
    if (flushing_) return;  // output fixed; ignoring deliveries
    const Count n = params_.n;
    const Count t = params_.t;

    if (r % 2 == 0) {
        const auto cnt =
            view.val_counts(net::MsgKind::BenOrReport, p, /*require_flag=*/false);
        proposing_ = false;
        for (Bit b : {Bit{0}, Bit{1}}) {
            if (2 * static_cast<std::uint64_t>(cnt[b]) >
                static_cast<std::uint64_t>(n) + t) {
                proposal_ = b;
                proposing_ = true;
            }
        }
        return;
    }

    const auto prop =
        view.val_counts(net::MsgKind::BenOrPropose, p, /*require_flag=*/true);
    // Two honest nodes cannot propose different values (both passed the
    // (n+t)/2 quorum), so at most one value exceeds t from honest senders.
    ADBA_ENSURES_MSG(!(prop[0] > t && prop[1] > t),
                     "conflicting Ben-Or proposals above t");
    bool adopted = false;
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (prop[b] > 2 * t) {
            val_ = b;
            decided_ = true;
            // Broadcast one more full phase advertising the decision (so
            // peers' proposal tallies see it), then halt.
            flushing_ = true;
            proposal_ = val_;
            proposing_ = true;
            return;
        }
    }
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (prop[b] > t) {
            val_ = b;
            adopted = true;
        }
    }
    if (!adopted) val_ = rng_.bit();  // private coin — the pre-shared-coin world
    if (p + 1 >= params_.phases) halted_ = true;
}

std::vector<std::unique_ptr<net::HonestNode>> make_ben_or_nodes(
    const BenOrParams& params, const std::vector<Bit>& inputs, const SeedTree& seeds) {
    ADBA_EXPECTS(inputs.size() == params.n);
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(params.n);
    for (NodeId v = 0; v < params.n; ++v) {
        nodes.push_back(std::make_unique<BenOrNode>(
            params, v, inputs[v], seeds.stream(StreamPurpose::NodeProtocol, v)));
    }
    return nodes;
}

void reinit_ben_or_nodes(const BenOrParams& params, const std::vector<Bit>& inputs,
                         const SeedTree& seeds,
                         std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    ADBA_EXPECTS(inputs.size() == params.n);
    net::reinit_node_pool<BenOrNode>(nodes, params.n, [&](BenOrNode& nd, NodeId v) {
        nd.reinit(params, v, inputs[v], seeds.stream(StreamPurpose::NodeProtocol, v));
    });
}

}  // namespace adba::base
