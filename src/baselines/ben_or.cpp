#include "baselines/ben_or.hpp"

#include "support/contracts.hpp"

namespace adba::base {

BenOrNode::BenOrNode(BenOrParams params, NodeId self, Bit input, Xoshiro256 rng) {
    reinit(params, self, input, rng);  // one initialization body for both paths
}

void BenOrNode::reinit(BenOrParams params, NodeId self, Bit input, Xoshiro256 rng) {
    ADBA_EXPECTS(params.n > 0);
    ADBA_EXPECTS_MSG(5 * static_cast<std::uint64_t>(params.t) < params.n,
                     "Ben-Or 1983 requires t < n/5");
    ADBA_EXPECTS(params.phases >= 1);
    ADBA_EXPECTS(self < params.n);
    ADBA_EXPECTS(input <= 1);
    params_ = params;
    self_ = self;
    rng_ = rng;
    val_ = input;
    proposal_ = 0;
    proposing_ = false;
    decided_ = false;
    flushing_ = false;
    halted_ = false;
}

std::optional<net::Message> BenOrNode::round_send(Round r) {
    ADBA_EXPECTS(!halted_);
    net::Message m;
    m.phase = r / 2;
    if (r % 2 == 0) {
        m.kind = net::MsgKind::BenOrReport;
        m.val = val_;
    } else {
        m.kind = net::MsgKind::BenOrPropose;
        m.val = proposal_;
        m.flag = proposing_ ? 1 : 0;  // flag 0 encodes the ⊥ proposal
        if (flushing_) halted_ = true;
    }
    return m;
}

void BenOrNode::round_receive(Round r, const net::ReceiveView& view) {
    ADBA_EXPECTS(!halted_);
    const Phase p = r / 2;
    if (flushing_) return;  // output fixed; ignoring deliveries
    const Count n = params_.n;
    const Count t = params_.t;

    if (r % 2 == 0) {
        const auto cnt =
            view.val_counts(net::MsgKind::BenOrReport, p, /*require_flag=*/false);
        proposing_ = false;
        for (Bit b : {Bit{0}, Bit{1}}) {
            if (2 * static_cast<std::uint64_t>(cnt[b]) >
                static_cast<std::uint64_t>(n) + t) {
                proposal_ = b;
                proposing_ = true;
            }
        }
        return;
    }

    const auto prop =
        view.val_counts(net::MsgKind::BenOrPropose, p, /*require_flag=*/true);
    // Two honest nodes cannot propose different values (both passed the
    // (n+t)/2 quorum), so at most one value exceeds t from honest senders.
    ADBA_ENSURES_MSG(!(prop[0] > t && prop[1] > t),
                     "conflicting Ben-Or proposals above t");
    bool adopted = false;
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (prop[b] > 2 * t) {
            val_ = b;
            decided_ = true;
            // Broadcast one more full phase advertising the decision (so
            // peers' proposal tallies see it), then halt.
            flushing_ = true;
            proposal_ = val_;
            proposing_ = true;
            return;
        }
    }
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (prop[b] > t) {
            val_ = b;
            adopted = true;
        }
    }
    if (!adopted) val_ = rng_.bit();  // private coin — the pre-shared-coin world
    if (p + 1 >= params_.phases) halted_ = true;
}

std::vector<std::unique_ptr<net::HonestNode>> make_ben_or_nodes(
    const BenOrParams& params, const std::vector<Bit>& inputs, const SeedTree& seeds) {
    ADBA_EXPECTS(inputs.size() == params.n);
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(params.n);
    for (NodeId v = 0; v < params.n; ++v) {
        nodes.push_back(std::make_unique<BenOrNode>(
            params, v, inputs[v], seeds.stream(StreamPurpose::NodeProtocol, v)));
    }
    return nodes;
}

void reinit_ben_or_nodes(const BenOrParams& params, const std::vector<Bit>& inputs,
                         const SeedTree& seeds,
                         std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    ADBA_EXPECTS(inputs.size() == params.n);
    net::reinit_node_pool<BenOrNode>(nodes, params.n, [&](BenOrNode& nd, NodeId v) {
        nd.reinit(params, v, inputs[v], seeds.stream(StreamPurpose::NodeProtocol, v));
    });
}

// ------------------------------------------------------------- BenOrBatch

BenOrBatch::BenOrBatch(const BenOrParams& params, const std::vector<Bit>& inputs,
                       const SeedTree& seeds) {
    rearm(params, inputs, seeds);
}

void BenOrBatch::rearm(const BenOrParams& params, const std::vector<Bit>& inputs,
                       const SeedTree& seeds) {
    ADBA_EXPECTS(params.n > 0);
    ADBA_EXPECTS_MSG(5 * static_cast<std::uint64_t>(params.t) < params.n,
                     "Ben-Or 1983 requires t < n/5");
    ADBA_EXPECTS(params.phases >= 1);
    ADBA_EXPECTS(inputs.size() == params.n);
    params_ = params;
    const NodeId n = params.n;
    val_.assign(inputs.begin(), inputs.end());
    for (NodeId v = 0; v < n; ++v) ADBA_EXPECTS(val_[v] <= 1);
    proposal_.assign(n, 0);
    proposing_.assign(n, 0);
    decided_.assign(n, 0);
    flushing_.assign(n, 0);
    halted_.assign(n, 0);
    rng_.clear();
    rng_.reserve(n);
    for (NodeId v = 0; v < n; ++v)
        rng_.push_back(seeds.stream(StreamPurpose::NodeProtocol, v));
}

void BenOrBatch::send_all(Round r, net::RoundBuffer& buf) {
    send_range(r, buf, 0, params_.n);
}

void BenOrBatch::send_range(Round r, net::RoundBuffer& buf, NodeId lo, NodeId hi) {
    const std::uint8_t* state = buf.state_plane();
    const bool round2 = (r % 2) != 0;
    net::Message m;
    m.phase = r / 2;
    m.kind = round2 ? net::MsgKind::BenOrPropose : net::MsgKind::BenOrReport;
    for (NodeId v = lo; v < hi; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
        if (round2) {
            m.val = proposal_[v];
            m.flag = proposing_[v] ? 1 : 0;  // flag 0 encodes the ⊥ proposal
            if (flushing_[v]) halted_[v] = 1;
        } else {
            m.val = val_[v];
            m.flag = 0;
        }
        buf.set_broadcast(v, m);
    }
}

void BenOrBatch::apply_report(NodeId v, const std::array<Count, 2>& cnt) {
    proposing_[v] = 0;
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (2 * static_cast<std::uint64_t>(cnt[b]) >
            static_cast<std::uint64_t>(params_.n) + params_.t) {
            proposal_[v] = b;
            proposing_[v] = 1;
        }
    }
}

void BenOrBatch::apply_propose(NodeId v, Phase p, const std::array<Count, 2>& prop,
                               bool checked) {
    const Count t = params_.t;
    // Two honest nodes cannot propose different values (both passed the
    // (n+t)/2 quorum), so at most one value exceeds t from honest senders.
    if (checked) {
        ADBA_ENSURES_MSG(!(prop[0] > t && prop[1] > t),
                         "conflicting Ben-Or proposals above t");
    }
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (prop[b] > 2 * t) {
            val_[v] = b;
            decided_[v] = 1;
            flushing_[v] = 1;
            proposal_[v] = val_[v];
            proposing_[v] = 1;
            return;
        }
    }
    bool adopted = false;
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (prop[b] > t) {
            val_[v] = b;
            adopted = true;
        }
    }
    if (!adopted) val_[v] = rng_[v].bit();  // private coin
    if (p + 1 >= params_.phases) halted_[v] = 1;
}

void BenOrBatch::receive_all(Round r, const net::RoundBuffer& buf,
                             const net::RoundTally& tally) {
    receive_prepare(r, buf, tally);
    receive_range(r, buf, tally, 0, params_.n);
}

void BenOrBatch::receive_prepare(Round r, const net::RoundBuffer&,
                                 const net::RoundTally& tally) {
    const Phase p = r / 2;
    const bool round2 = (r % 2) != 0;
    const net::MsgKind kind =
        round2 ? net::MsgKind::BenOrPropose : net::MsgKind::BenOrReport;
    // Honest quorum counts once per round; only Byzantine deltas vary.
    const net::TallyBucket* b = tally.find(kind, p);
    prep_base_ = {0, 0};
    if (b != nullptr) prep_base_ = round2 ? b->val_flag_cnt : b->val_cnt;
    prep_delta_ = tally.val_delta_plane(kind, p, round2);
}

void BenOrBatch::receive_range(Round r, const net::RoundBuffer& buf,
                               const net::RoundTally&, NodeId lo, NodeId hi) {
    const Phase p = r / 2;
    const std::uint8_t* state = buf.state_plane();
    const bool round2 = (r % 2) != 0;
    for (NodeId v = lo; v < hi; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v] ||
            flushing_[v])
            continue;
        std::array<Count, 2> cnt = prep_base_;
        if (prep_delta_ != nullptr) {
            cnt[0] += prep_delta_[v][0];
            cnt[1] += prep_delta_[v][1];
        }
        if (round2)
            apply_propose(v, p, cnt, /*checked=*/true);
        else
            apply_report(v, cnt);
    }
}

void BenOrBatch::receive_sparse_prepare(Round r, const net::RoundBuffer&,
                                        const net::RoundTally&,
                                        const net::SparsePlane& sparse) {
    const Phase p = r / 2;
    const bool round2 = (r % 2) != 0;
    const net::MsgKind kind =
        round2 ? net::MsgKind::BenOrPropose : net::MsgKind::BenOrReport;
    prep_sparse_query_ = sparse.query(kind, p, /*require_flag=*/round2);
}

void BenOrBatch::receive_sparse_range(Round r, const net::RoundBuffer& buf,
                                      const net::RoundTally&,
                                      const net::SparsePlane& sparse, NodeId lo,
                                      NodeId hi) {
    const Phase p = r / 2;
    const std::uint8_t* state = buf.state_plane();
    const bool round2 = (r % 2) != 0;
    for (NodeId v = lo; v < hi; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v] ||
            flushing_[v])
            continue;
        const std::array<Count, 2> cnt = sparse.val_estimates(prep_sparse_query_, v);
        if (round2)
            apply_propose(v, p, cnt, /*checked=*/sparse.dense());
        else
            apply_report(v, cnt);
    }
}

void BenOrBatch::receive_all(Round r, const net::RoundBuffer& buf,
                             const net::DeliverySource& src) {
    const Phase p = r / 2;
    const NodeId n = params_.n;
    const std::uint8_t* state = buf.state_plane();
    for (NodeId v = 0; v < n; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v] ||
            flushing_[v])
            continue;
        const net::ReceiveView view(src, v);
        if ((r % 2) == 0)
            apply_report(v, view.val_counts(net::MsgKind::BenOrReport, p, false));
        else
            apply_propose(v, p, view.val_counts(net::MsgKind::BenOrPropose, p, true),
                          /*checked=*/true);
    }
}

std::unique_ptr<net::BatchProtocol> make_ben_or_batch(const BenOrParams& params,
                                                      const std::vector<Bit>& inputs,
                                                      const SeedTree& seeds) {
    return std::make_unique<BenOrBatch>(params, inputs, seeds);
}

void reinit_ben_or_batch(const BenOrParams& params, const std::vector<Bit>& inputs,
                         const SeedTree& seeds, net::BatchProtocol& batch) {
    auto* b = dynamic_cast<BenOrBatch*>(&batch);
    ADBA_EXPECTS_MSG(b != nullptr,
                     "batch pool type does not match the requested protocol");
    b->rearm(params, inputs, seeds);
}

}  // namespace adba::base
