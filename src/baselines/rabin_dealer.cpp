#include "baselines/rabin_dealer.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "support/math.hpp"

namespace adba::base {

RabinDealerParams RabinDealerParams::compute(NodeId n, Count t, std::uint64_t dealer_seed,
                                             double gamma) {
    ADBA_EXPECTS(n >= 1);
    ADBA_EXPECTS_MSG(3 * static_cast<std::uint64_t>(t) < n, "requires t < n/3");
    const double logn = static_cast<double>(std::max<std::uint32_t>(1, ceil_log2(n)));
    RabinDealerParams p;
    p.n = n;
    p.t = t;
    p.phases = static_cast<Count>(std::max(1.0, std::ceil(gamma * logn))) + 1;
    p.dealer_seed = dealer_seed;
    return p;
}

RabinDealerNode::RabinDealerNode(const RabinDealerParams& params, core::AgreementMode mode,
                                 NodeId self, Bit input, Xoshiro256 rng) {
    reinit(params, mode, self, input, rng);
}

void RabinDealerNode::reinit(const RabinDealerParams& params, core::AgreementMode mode,
                             NodeId self, Bit input, Xoshiro256 rng) {
    RabinSkeletonNode::reinit(
        core::SkeletonConfig{params.n, params.t, params.phases, mode}, self, input,
        rng);
    dealer_seed_ = params.dealer_seed;
}

Bit RabinDealerNode::dealer_coin(std::uint64_t dealer_seed, Phase p) {
    return static_cast<Bit>(mix64(dealer_seed ^ (0x51a3c0ffee1dULL + p)) & 1);
}

Bit RabinDealerNode::coin_value(Phase p, const net::ReceiveView&) {
    return dealer_coin(dealer_seed_, p);
}

std::vector<std::unique_ptr<net::HonestNode>> make_rabin_dealer_nodes(
    const RabinDealerParams& params, core::AgreementMode mode,
    const std::vector<Bit>& inputs, const SeedTree& seeds) {
    ADBA_EXPECTS(inputs.size() == params.n);
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(params.n);
    for (NodeId v = 0; v < params.n; ++v) {
        nodes.push_back(std::make_unique<RabinDealerNode>(
            params, mode, v, inputs[v], seeds.stream(StreamPurpose::NodeProtocol, v)));
    }
    return nodes;
}

void reinit_rabin_dealer_nodes(const RabinDealerParams& params,
                               core::AgreementMode mode,
                               const std::vector<Bit>& inputs, const SeedTree& seeds,
                               std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    ADBA_EXPECTS(inputs.size() == params.n);
    net::reinit_node_pool<RabinDealerNode>(nodes, params.n, [&](RabinDealerNode& nd,
                                                                NodeId v) {
        nd.reinit(params, mode, v, inputs[v],
                  seeds.stream(StreamPurpose::NodeProtocol, v));
    });
}

namespace {

core::BatchCoinSpec dealer_coin_spec(const RabinDealerParams& params) {
    core::BatchCoinSpec coin;
    coin.kind = core::BatchCoinSpec::Kind::Dealer;
    coin.dealer = [seed = params.dealer_seed](Phase p) {
        return RabinDealerNode::dealer_coin(seed, p);
    };
    return coin;
}

}  // namespace

std::unique_ptr<net::BatchProtocol> make_rabin_dealer_batch(
    const RabinDealerParams& params, core::AgreementMode mode,
    const std::vector<Bit>& inputs, const SeedTree& seeds) {
    return core::make_skeleton_batch(
        core::SkeletonConfig{params.n, params.t, params.phases, mode},
        dealer_coin_spec(params), inputs, seeds);
}

void reinit_rabin_dealer_batch(const RabinDealerParams& params,
                               core::AgreementMode mode,
                               const std::vector<Bit>& inputs, const SeedTree& seeds,
                               net::BatchProtocol& batch) {
    core::reinit_skeleton_batch(
        core::SkeletonConfig{params.n, params.t, params.phases, mode},
        dealer_coin_spec(params), inputs, seeds, batch);
}

Round max_rounds_whp(const RabinDealerParams& p) { return 2 * (p.phases + 2); }

}  // namespace adba::base
