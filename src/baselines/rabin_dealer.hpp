// Rabin's randomized agreement (FOCS 1983) with a trusted external dealer —
// the idealized shared-coin reference (paper §1.2: "Rabin's protocol assumes
// a shared (common) coin available to all nodes (say, given by a trusted
// external dealer)").
//
// The dealer is modeled as a public function of (dealer seed, phase) that
// every node evaluates locally — a perfect common coin, by construction
// unbiased and identical at all nodes. The dealer's phase-p coin is treated
// as revealed only in round 2 of phase p (a non-rushing dealer): the
// adversary strategies in this repository do not act on it before honest
// nodes adopt it. Each phase is good with probability >= 1/2, so expected
// O(1) phases — the floor any committee scheme is compared against.
#pragma once

#include <memory>
#include <vector>

#include "core/skeleton.hpp"
#include "core/skeleton_batch.hpp"
#include "rand/seed_tree.hpp"

namespace adba::base {

struct RabinDealerParams {
    NodeId n = 0;
    Count t = 0;
    Count phases = 1;          ///< w.h.p. budget: failure prob <= 2^-phases
    std::uint64_t dealer_seed = 0;

    /// phases = ⌈γ·log2 n⌉ + 1 gives failure probability <= 2/n^γ.
    static RabinDealerParams compute(NodeId n, Count t, std::uint64_t dealer_seed,
                                     double gamma = 2.0);
};

class RabinDealerNode final : public core::RabinSkeletonNode {
public:
    RabinDealerNode(const RabinDealerParams& params, core::AgreementMode mode,
                    NodeId self, Bit input, Xoshiro256 rng);

    /// Re-arms a pooled node for a fresh trial (constructor contract; the
    /// dealer seed is per-trial, so it is re-latched here).
    void reinit(const RabinDealerParams& params, core::AgreementMode mode,
                NodeId self, Bit input, Xoshiro256 rng);

    /// The dealer's public coin for phase p (identical at every node).
    static Bit dealer_coin(std::uint64_t dealer_seed, Phase p);

protected:
    CoinSign coin_contribution(Phase) override { return 0; }
    Bit coin_value(Phase p, const net::ReceiveView& view) override;

private:
    std::uint64_t dealer_seed_ = 0;
};

std::vector<std::unique_ptr<net::HonestNode>> make_rabin_dealer_nodes(
    const RabinDealerParams& params, core::AgreementMode mode,
    const std::vector<Bit>& inputs, const SeedTree& seeds);

/// Re-arms a pool built by make_rabin_dealer_nodes for a new trial.
void reinit_rabin_dealer_nodes(const RabinDealerParams& params,
                               core::AgreementMode mode,
                               const std::vector<Bit>& inputs, const SeedTree& seeds,
                               std::vector<std::unique_ptr<net::HonestNode>>& nodes);

/// Native SoA batch form (dealer coin); bit-identical to the node vector.
std::unique_ptr<net::BatchProtocol> make_rabin_dealer_batch(
    const RabinDealerParams& params, core::AgreementMode mode,
    const std::vector<Bit>& inputs, const SeedTree& seeds);
void reinit_rabin_dealer_batch(const RabinDealerParams& params,
                               core::AgreementMode mode,
                               const std::vector<Bit>& inputs, const SeedTree& seeds,
                               net::BatchProtocol& batch);

Round max_rounds_whp(const RabinDealerParams& p);

}  // namespace adba::base
