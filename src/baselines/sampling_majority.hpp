// Sampling-majority agreement (Augustine-Pandurangan-Robinson, PODC 2013 —
// discussed in the paper's §1.3): in each round every node samples the
// values of two uniformly random nodes and re-sets its value to the
// majority of {own, sample1, sample2}. Converges to a common value in
// polylog(n) rounds when the Byzantine count is O(sqrt(n)/polylog n).
//
// The paper points out that this protocol and its own common coin both rest
// on anti-concentration: the random-walk drift of the value split is
// Θ(sqrt(n)) per round, so an adversary below the sqrt(n) scale cannot hold
// the population balanced — the same sqrt(n) frontier as Theorem 3.
// Experiment E11 measures that frontier directly.
//
// Model mapping: APR sample by pulling from random nodes; on a complete
// full-information network this is equivalent to everyone broadcasting its
// value and each receiver *choosing* two random senders to read — which is
// how we implement it (a Byzantine sender still controls, per receiver,
// the value that receiver samples; a rushing adversary still corrupts after
// seeing the round's broadcasts). Silent senders (crashed) are resampled as
// the receiver's own value.
//
// Termination: the primitive has no self-detection (APR wrap it in
// almost-everywhere-to-everywhere boosting, out of scope here); nodes run a
// fixed budget of R rounds and output their value. Tests and E11 measure
// the first all-agree round.
#pragma once

#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "net/node.hpp"
#include "rand/seed_tree.hpp"
#include "support/types.hpp"

namespace adba::base {

struct SamplingMajorityParams {
    NodeId n = 0;
    Count t = 0;       ///< tolerated Byzantine (guarantees need t = O(sqrt n / polylog n))
    Count rounds = 1;  ///< fixed round budget R

    /// R = ceil(kappa * log2(n)^2) — the APR polylog convergence budget.
    static SamplingMajorityParams compute(NodeId n, Count t, double kappa = 4.0);
};

class SamplingMajorityNode final : public net::HonestNode {
public:
    SamplingMajorityNode(SamplingMajorityParams params, NodeId self, Bit input,
                         Xoshiro256 rng);

    /// Re-arms a pooled node for a fresh trial (constructor contract).
    void reinit(SamplingMajorityParams params, NodeId self, Bit input,
                Xoshiro256 rng);

    std::optional<net::Message> round_send(Round r) override;
    void round_receive(Round r, const net::ReceiveView& view) override;
    bool halted() const override { return halted_; }
    Bit current_value() const override { return val_; }

private:
    SamplingMajorityParams params_;
    NodeId self_ = 0;
    Xoshiro256 rng_;
    Bit val_ = 0;
    bool halted_ = false;
};

std::vector<std::unique_ptr<net::HonestNode>> make_sampling_majority_nodes(
    const SamplingMajorityParams& params, const std::vector<Bit>& inputs,
    const SeedTree& seeds);

/// Re-arms a pool built by make_sampling_majority_nodes for a new trial.
void reinit_sampling_majority_nodes(
    const SamplingMajorityParams& params, const std::vector<Bit>& inputs,
    const SeedTree& seeds, std::vector<std::unique_ptr<net::HonestNode>>& nodes);

}  // namespace adba::base
