// Phase-King deterministic Byzantine agreement (Berman-Garay-Perry style),
// the O(t)-round deterministic comparator for E3/E4.
//
// The paper cites t+1-round deterministic protocols [9, 13] as the
// pre-randomization state of the art; we implement the classical simple
// phase-king variant with constant-size messages:
//   t+1 phases, king of phase k is node k; two rounds per phase:
//     round 1: all broadcast val; v records (maj_v, mult_v);
//     round 2: the king broadcasts maj_king; v keeps maj_v if
//              mult_v > n/2 + t, otherwise adopts the king's value.
// Resilience t < n/4 (the simple variant's bound — DESIGN.md §7 discusses
// why this suffices as the deterministic *shape* comparator; the t < n/3
// deterministic protocols of Garay-Moses are substantially more intricate
// and add nothing to the measured comparison).
//
// Against our adaptive rushing adversary the worst case is exactly the
// classical one: corrupt each king as its phase arrives; after t ruined
// phases the budget is gone and the t+1st king finishes the job —
// deterministically 2(t+1) rounds, the O(t) line in E3.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/node.hpp"
#include "rand/seed_tree.hpp"
#include "support/types.hpp"

namespace adba::base {

struct PhaseKingParams {
    NodeId n = 0;
    Count t = 0;  ///< requires 4t < n

    Count phases() const { return t + 1; }
    Round total_rounds() const { return 2 * phases(); }
    /// King (coordinator) of phase k.
    NodeId king_of(Phase k) const { return static_cast<NodeId>(k); }
};

class PhaseKingNode final : public net::HonestNode {
public:
    PhaseKingNode(PhaseKingParams params, NodeId self, Bit input);

    /// Re-arms a pooled node for a fresh trial (constructor contract).
    void reinit(PhaseKingParams params, NodeId self, Bit input);

    std::optional<net::Message> round_send(Round r) override;
    void round_receive(Round r, const net::ReceiveView& view) override;
    bool halted() const override { return halted_; }
    Bit current_value() const override { return val_; }

private:
    PhaseKingParams params_;
    NodeId self_ = 0;
    Bit val_ = 0;
    Bit maj_ = 0;
    Count mult_ = 0;
    bool halted_ = false;
};

std::vector<std::unique_ptr<net::HonestNode>> make_phase_king_nodes(
    const PhaseKingParams& params, const std::vector<Bit>& inputs);

/// Re-arms a pool built by make_phase_king_nodes for a new trial (no allocs).
void reinit_phase_king_nodes(const PhaseKingParams& params,
                             const std::vector<Bit>& inputs,
                             std::vector<std::unique_ptr<net::HonestNode>>& nodes);

}  // namespace adba::base
