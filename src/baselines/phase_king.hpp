// Phase-King deterministic Byzantine agreement (Berman-Garay-Perry style),
// the O(t)-round deterministic comparator for E3/E4.
//
// The paper cites t+1-round deterministic protocols [9, 13] as the
// pre-randomization state of the art; we implement the classical simple
// phase-king variant with constant-size messages:
//   t+1 phases, king of phase k is node k; two rounds per phase:
//     round 1: all broadcast val; v records (maj_v, mult_v);
//     round 2: the king broadcasts maj_king; v keeps maj_v if
//              mult_v > n/2 + t, otherwise adopts the king's value.
// Resilience t < n/4 (the simple variant's bound — DESIGN.md §7 discusses
// why this suffices as the deterministic *shape* comparator; the t < n/3
// deterministic protocols of Garay-Moses are substantially more intricate
// and add nothing to the measured comparison).
//
// Against our adaptive rushing adversary the worst case is exactly the
// classical one: corrupt each king as its phase arrives; after t ruined
// phases the budget is gone and the t+1st king finishes the job —
// deterministically 2(t+1) rounds, the O(t) line in E3.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/batch.hpp"
#include "net/fused_plane.hpp"
#include "net/node.hpp"
#include "net/sparse_plane.hpp"
#include "rand/seed_tree.hpp"
#include "support/types.hpp"

namespace adba::base {

struct PhaseKingParams {
    NodeId n = 0;
    Count t = 0;  ///< requires 4t < n

    Count phases() const { return t + 1; }
    Round total_rounds() const { return 2 * phases(); }
    /// King (coordinator) of phase k.
    NodeId king_of(Phase k) const { return static_cast<NodeId>(k); }
};

class PhaseKingNode final : public net::HonestNode {
public:
    PhaseKingNode(PhaseKingParams params, NodeId self, Bit input);

    /// Re-arms a pooled node for a fresh trial (constructor contract).
    void reinit(PhaseKingParams params, NodeId self, Bit input);

    std::optional<net::Message> round_send(Round r) override;
    void round_receive(Round r, const net::ReceiveView& view) override;
    bool halted() const override { return halted_; }
    Bit current_value() const override { return val_; }

private:
    PhaseKingParams params_;
    NodeId self_ = 0;
    Bit val_ = 0;
    Bit maj_ = 0;
    Count mult_ = 0;
    bool halted_ = false;
};

/// SoA batch form of Phase-King: val / maj / mult planes, one dispatch per
/// beat. Round-1 majorities hoist the shared honest tally; the round-2 king
/// probe is one buffer load per receiver. Bit-identical to PhaseKingNode.
class PhaseKingBatch final : public net::BatchProtocol {
public:
    PhaseKingBatch(const PhaseKingParams& params, const std::vector<Bit>& inputs);
    void rearm(const PhaseKingParams& params, const std::vector<Bit>& inputs);

    NodeId n() const override { return params_.n; }
    void send_all(Round r, net::RoundBuffer& buf) override;
    void receive_all(Round r, const net::RoundBuffer& buf,
                     const net::RoundTally& tally) override;
    void receive_all(Round r, const net::RoundBuffer& buf,
                     const net::DeliverySource& src) override;
    // Sharded beats: no RNG at all, per-node planes only; the round-2 king
    // broadcast fires exactly once — from the shard whose range holds the
    // king. The king probe (buf.from) is a const read, safe from any shard.
    bool shardable() const override { return true; }
    void send_range(Round r, net::RoundBuffer& buf, NodeId lo, NodeId hi) override;
    void receive_prepare(Round r, const net::RoundBuffer& buf,
                         const net::RoundTally& tally) override;
    void receive_range(Round r, const net::RoundBuffer& buf,
                       const net::RoundTally& tally, NodeId lo, NodeId hi) override;
    // Sparse beats: round-1 majorities from sampled estimates; the round-2
    // king probe is a single-sender read and stays exact at any degree
    // (the one-coordinator analogue of the committee exact island). No
    // threshold assertion exists here, so no relaxation is needed.
    bool supports_sparse() const override { return true; }
    void receive_sparse_prepare(Round r, const net::RoundBuffer& buf,
                                const net::RoundTally& tally,
                                const net::SparsePlane& sparse) override;
    void receive_sparse_range(Round r, const net::RoundBuffer& buf,
                              const net::RoundTally& tally,
                              const net::SparsePlane& sparse, NodeId lo,
                              NodeId hi) override;
    const std::uint8_t* halted_plane() const override { return halted_.data(); }
    Bit value(NodeId v) const override { return val_[v]; }
    bool decided(NodeId /*v*/) const override { return false; }
    Bit output(NodeId v) const override { return val_[v]; }

private:
    void apply_send_round(NodeId v, const std::array<Count, 2>& cnt);
    void apply_king_round(NodeId v, Phase k, const net::Message* king_msg);

    PhaseKingParams params_;
    // receive_prepare → receive_range handoff; valid for one beat only.
    std::array<Count, 2> prep_base_{0, 0};
    const std::array<Count, 2>* prep_delta_ = nullptr;
    net::SparsePlane::Query prep_sparse_query_;  ///< sparse beats only
    std::vector<Bit> val_;
    std::vector<Bit> maj_;
    std::vector<Count> mult_;
    std::vector<std::uint8_t> halted_;
};

/// 64-lane Phase-King over the fused trial plane: round-1 majorities from
/// bit-sliced LaneAdder counts per (lane, segment); the round-2 king probe
/// is lane-uniform for honest kings (one plane read) and per-(lane,
/// segment) for corrupted ones. mult_ never materializes — only the
/// "2·mult > n + 2t" predicate survives round 1, stored as the strong_
/// plane. No RNG at all. Bit-identical to PhaseKingBatch lane by lane.
class FusedPhaseKing final : public net::FusedProtocol {
public:
    explicit FusedPhaseKing(const PhaseKingParams& params);

    NodeId n() const override { return params_.n; }
    void rearm(const std::uint64_t* input_plane, const SeedTree* lane_seeds) override;
    void send_round(Round r, net::FusedFrame& frame) override;
    void receive_round(Round r, const net::FusedFrame& frame) override;
    const std::uint64_t* value_plane() const override { return val_.data(); }
    const std::uint64_t* decided_plane() const override { return decided_.data(); }
    const std::uint64_t* halted_plane() const override { return halted_.data(); }

private:
    PhaseKingParams params_;
    std::vector<std::uint64_t> val_;
    std::vector<std::uint64_t> maj_;
    std::vector<std::uint64_t> strong_;  ///< 2·mult > n + 2t, per (node, lane)
    std::vector<std::uint64_t> decided_; ///< all-zero (phase-king never decides)
    std::vector<std::uint64_t> halted_;
    // Recycled receive scratch.
    net::LaneSegments segs_;
    net::LaneToggles t_maj_, t_strong_, t_kv_;
    std::vector<std::uint64_t> m_maj_, m_strong_, m_kv_;
};

std::vector<std::unique_ptr<net::HonestNode>> make_phase_king_nodes(
    const PhaseKingParams& params, const std::vector<Bit>& inputs);

/// Re-arms a pool built by make_phase_king_nodes for a new trial (no allocs).
void reinit_phase_king_nodes(const PhaseKingParams& params,
                             const std::vector<Bit>& inputs,
                             std::vector<std::unique_ptr<net::HonestNode>>& nodes);

/// Native batch factory / pooled reinit (mirrors make/reinit_phase_king_nodes).
std::unique_ptr<net::BatchProtocol> make_phase_king_batch(
    const PhaseKingParams& params, const std::vector<Bit>& inputs);
void reinit_phase_king_batch(const PhaseKingParams& params,
                             const std::vector<Bit>& inputs,
                             net::BatchProtocol& batch);

}  // namespace adba::base
