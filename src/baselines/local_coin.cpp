#include "baselines/local_coin.hpp"

#include "support/contracts.hpp"

namespace adba::base {

LocalCoinNode::LocalCoinNode(const LocalCoinParams& params, core::AgreementMode mode,
                             NodeId self, Bit input, Xoshiro256 rng) {
    reinit(params, mode, self, input, rng);
}

std::vector<std::unique_ptr<net::HonestNode>> make_local_coin_nodes(
    const LocalCoinParams& params, core::AgreementMode mode,
    const std::vector<Bit>& inputs, const SeedTree& seeds) {
    ADBA_EXPECTS(inputs.size() == params.n);
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(params.n);
    for (NodeId v = 0; v < params.n; ++v) {
        nodes.push_back(std::make_unique<LocalCoinNode>(
            params, mode, v, inputs[v], seeds.stream(StreamPurpose::NodeProtocol, v)));
    }
    return nodes;
}

void reinit_local_coin_nodes(const LocalCoinParams& params, core::AgreementMode mode,
                             const std::vector<Bit>& inputs, const SeedTree& seeds,
                             std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    ADBA_EXPECTS(inputs.size() == params.n);
    net::reinit_node_pool<LocalCoinNode>(nodes, params.n, [&](LocalCoinNode& nd,
                                                              NodeId v) {
        nd.reinit(params, mode, v, inputs[v],
                  seeds.stream(StreamPurpose::NodeProtocol, v));
    });
}

std::unique_ptr<net::BatchProtocol> make_local_coin_batch(
    const LocalCoinParams& params, core::AgreementMode mode,
    const std::vector<Bit>& inputs, const SeedTree& seeds) {
    core::BatchCoinSpec coin;
    coin.kind = core::BatchCoinSpec::Kind::Local;
    return core::make_skeleton_batch(
        core::SkeletonConfig{params.n, params.t, params.phases, mode},
        std::move(coin), inputs, seeds);
}

void reinit_local_coin_batch(const LocalCoinParams& params, core::AgreementMode mode,
                             const std::vector<Bit>& inputs, const SeedTree& seeds,
                             net::BatchProtocol& batch) {
    core::BatchCoinSpec coin;
    coin.kind = core::BatchCoinSpec::Kind::Local;
    core::reinit_skeleton_batch(
        core::SkeletonConfig{params.n, params.t, params.phases, mode},
        std::move(coin), inputs, seeds, batch);
}

}  // namespace adba::base
