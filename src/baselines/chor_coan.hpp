// Chor-Coan (IEEE TSE 1985) baselines — the 40-year bound the paper beats.
//
// Chor-Coan is the same Rabin-style vote/threshold/coin loop, with the
// common coin produced by *groups* of nodes taking turns. We provide two
// faithful-to-purpose variants (DESIGN.md §5):
//
//  * Rushing  — the strengthened version the paper's footnote 3 sketches
//    ("easy to make Chor and Coan's protocol work under a rushing adaptive
//    adversary, using an idea similar to our protocol"): exactly the
//    regime-2 schedule of Algorithm 3, c = 3α·t/log n committees of size
//    n/c, coin = sign of the committee sum. This is the apples-to-apples
//    comparator for E3/E4: the ONLY difference from Algorithm 3 is the
//    committee count (no ⌈t²/n⌉·log n term), so measured gaps isolate the
//    paper's contribution.
//
//  * Classic  — the historical shape: fixed groups of g = β·log2 n nodes,
//    phase i served by group i mod (n/g). Under the *rushing* adversary the
//    ruin cost of a group is only ~½·sqrt(g), so measured rounds degrade
//    toward Θ(t/sqrt(log n)) — an instructive measured finding reported in
//    EXPERIMENTS.md (the 1985 analysis assumed a non-rushing adversary).
#pragma once

#include <memory>
#include <vector>

#include "core/params.hpp"
#include "core/skeleton.hpp"
#include "core/skeleton_batch.hpp"
#include "rand/seed_tree.hpp"

namespace adba::base {

using core::AgreementMode;
using core::BlockSchedule;
using core::Tuning;

/// Resolved parameters for a Chor-Coan instance.
struct ChorCoanParams {
    NodeId n = 0;
    Count t = 0;
    Count phases = 1;
    BlockSchedule schedule;

    /// Rushing-hardened variant: c = max(⌈3α·t/log n⌉, ⌈γ·log n⌉)
    /// committees of size ⌈n/c⌉.
    static ChorCoanParams compute_rushing(NodeId n, Count t, const Tuning& tune = {});

    /// Classic variant: groups of size g = ⌈β·log2 n⌉; phase budget sized
    /// for the rushing ruin cost ½·sqrt(g) so w.h.p. termination still
    /// holds in our (harder) model: phases = ⌈2t/(½√g)⌉ + ⌈γ·log n⌉.
    static ChorCoanParams compute_classic(NodeId n, Count t, const Tuning& tune = {});
};

/// One Chor-Coan node (either variant; behaviour differs only via params).
class ChorCoanNode final : public core::RabinSkeletonNode {
public:
    ChorCoanNode(const ChorCoanParams& params, AgreementMode mode, NodeId self,
                 Bit input, Xoshiro256 rng);

    /// Re-arms a pooled node for a fresh trial (constructor contract).
    void reinit(const ChorCoanParams& params, AgreementMode mode, NodeId self,
                Bit input, Xoshiro256 rng);

    const BlockSchedule& schedule() const { return sched_; }

protected:
    CoinSign coin_contribution(Phase p) override;
    Bit coin_value(Phase p, const net::ReceiveView& view) override;

private:
    BlockSchedule sched_;
};

std::vector<std::unique_ptr<net::HonestNode>> make_chor_coan_nodes(
    const ChorCoanParams& params, AgreementMode mode, const std::vector<Bit>& inputs,
    const SeedTree& seeds);

/// Re-arms a pool built by make_chor_coan_nodes for a new trial (no allocs).
void reinit_chor_coan_nodes(const ChorCoanParams& params, AgreementMode mode,
                            const std::vector<Bit>& inputs, const SeedTree& seeds,
                            std::vector<std::unique_ptr<net::HonestNode>>& nodes);

/// Native SoA batch form (committee coin over the variant's schedule);
/// bit-identical to the node vector, one dispatch per engine beat.
std::unique_ptr<net::BatchProtocol> make_chor_coan_batch(
    const ChorCoanParams& params, AgreementMode mode, const std::vector<Bit>& inputs,
    const SeedTree& seeds);
void reinit_chor_coan_batch(const ChorCoanParams& params, AgreementMode mode,
                            const std::vector<Bit>& inputs, const SeedTree& seeds,
                            net::BatchProtocol& batch);

/// The paper's round budget analogue for this baseline.
Round max_rounds_whp(const ChorCoanParams& p);

}  // namespace adba::base
