#include "baselines/sampling_majority.hpp"

#include <algorithm>

#include "support/contracts.hpp"
#include "support/math.hpp"

namespace adba::base {

SamplingMajorityParams SamplingMajorityParams::compute(NodeId n, Count t, double kappa) {
    ADBA_EXPECTS(n >= 2);
    ADBA_EXPECTS_MSG(3 * static_cast<std::uint64_t>(t) < n, "requires t < n/3");
    ADBA_EXPECTS(kappa > 0.0);
    const double logn = static_cast<double>(std::max<std::uint32_t>(1, ceil_log2(n)));
    SamplingMajorityParams p;
    p.n = n;
    p.t = t;
    p.rounds = static_cast<Count>(std::max(1.0, std::ceil(kappa * logn * logn)));
    return p;
}

SamplingMajorityNode::SamplingMajorityNode(SamplingMajorityParams params, NodeId self,
                                           Bit input, Xoshiro256 rng) {
    reinit(params, self, input, rng);  // one initialization body for both paths
}

void SamplingMajorityNode::reinit(SamplingMajorityParams params, NodeId self,
                                  Bit input, Xoshiro256 rng) {
    ADBA_EXPECTS(params.n >= 2);
    ADBA_EXPECTS(self < params.n);
    ADBA_EXPECTS(input <= 1);
    params_ = params;
    self_ = self;
    rng_ = rng;
    val_ = input;
    halted_ = false;
}

std::optional<net::Message> SamplingMajorityNode::round_send(Round r) {
    ADBA_EXPECTS(!halted_);
    net::Message m;
    m.kind = net::MsgKind::Vote1;  // single-message-kind protocol
    m.phase = r;
    m.val = val_;
    return m;
}

void SamplingMajorityNode::round_receive(Round r, const net::ReceiveView& view) {
    ADBA_EXPECTS(!halted_);
    if (r + 1 >= params_.rounds) {
        // Decision round: output the majority over ALL received values — the
        // simplified almost-everywhere-to-everywhere step (APR boost). Once
        // sampling has driven the population to a (1 - o(1)) majority, the
        // <= t Byzantine equivocations cannot swing a full tally; without
        // convergence the outputs split, correctly exposing the stall.
        const auto cnt =
            view.val_counts(net::MsgKind::Vote1, r, /*require_flag=*/false);
        val_ = cnt[1] >= cnt[0] ? Bit{1} : Bit{0};
        halted_ = true;
        return;
    }
    // Two independent uniform samples (with replacement, self allowed — APR
    // sample uniformly from all nodes).
    Bit sample[2];
    for (Bit& s : sample) {
        const auto u = static_cast<NodeId>(rng_.below(params_.n));
        const net::Message* m = view.from(u);
        // A silent sender (halted/crashed/withholding Byzantine) yields no
        // value; the sampler falls back on its own value.
        s = (m != nullptr && m->kind == net::MsgKind::Vote1 && m->phase == r)
                ? static_cast<Bit>(m->val & 1)
                : val_;
    }
    const int ones = static_cast<int>(val_) + sample[0] + sample[1];
    val_ = ones >= 2 ? Bit{1} : Bit{0};
}

std::vector<std::unique_ptr<net::HonestNode>> make_sampling_majority_nodes(
    const SamplingMajorityParams& params, const std::vector<Bit>& inputs,
    const SeedTree& seeds) {
    ADBA_EXPECTS(inputs.size() == params.n);
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(params.n);
    for (NodeId v = 0; v < params.n; ++v) {
        nodes.push_back(std::make_unique<SamplingMajorityNode>(
            params, v, inputs[v], seeds.stream(StreamPurpose::NodeProtocol, v)));
    }
    return nodes;
}

void reinit_sampling_majority_nodes(
    const SamplingMajorityParams& params, const std::vector<Bit>& inputs,
    const SeedTree& seeds, std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    ADBA_EXPECTS(inputs.size() == params.n);
    net::reinit_node_pool<SamplingMajorityNode>(
        nodes, params.n, [&](SamplingMajorityNode& nd, NodeId v) {
            nd.reinit(params, v, inputs[v],
                      seeds.stream(StreamPurpose::NodeProtocol, v));
        });
}

}  // namespace adba::base
