#include "sim/sweep.hpp"

#include <cmath>
#include <optional>

#include "sim/registry.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace adba::sim {

namespace {

using detail::GridAxis;
using detail::GridValue;

/// Independent axis helper: a fixed value list (or the base value when the
/// list is empty — not swept), each choice setting one field and labeling
/// via `label_of` (empty result = silent). Pass `swept` explicitly when the
/// not-swept case still supplies a one-element value list (the q axis).
template <typename Row, typename T, typename Set, typename Label>
GridAxis<Row> fixed_axis(const std::vector<T>& values, T base_value, Set set,
                         Label label_of,
                         std::optional<bool> swept_override = std::nullopt) {
    const bool swept = swept_override.value_or(!values.empty());
    std::vector<GridValue<Row>> choices;
    for (const T& v : values.empty() ? std::vector<T>{base_value} : values)
        choices.push_back({[set, v](Row& r) { set(r, v); }, label_of(v)});
    return {[choices](const Row&) { return choices; }, swept};
}

/// Runs each row's trials at its stable seed, in enumeration order — the one
/// sweep loop behind run_sweep / run_coin_sweep / run_mv_sweep.
template <typename Outcome, typename Row, typename Runner>
std::vector<Outcome> run_rows(const std::vector<Row>& rows, std::uint64_t base_seed,
                              Count trials, const ExecutorConfig& exec,
                              const Runner& runner) {
    std::vector<Outcome> out;
    out.reserve(rows.size());
    for (const Row& row : rows)
        out.push_back(
            Outcome{row, runner(row.scenario, row_seed(base_seed, row.index), trials,
                                exec)});
    return out;
}

}  // namespace

std::uint64_t row_seed(std::uint64_t base_seed, std::size_t row_index) {
    return mix64(base_seed ^ mix64(0x5157454550ULL + row_index));  // "SWEEP"
}

AdversaryKind strongest_adversary(ProtocolKind protocol) {
    return ProtocolRegistry::instance().at(protocol).strongest;
}

std::vector<SweepRow> SweepGrid::rows() const {
    using Row = SweepRow;
    std::vector<GridAxis<Row>> axes;

    axes.push_back(fixed_axis<Row>(
        ns, base.n, [](Row& r, NodeId n) { r.scenario.n = n; },
        [](NodeId n) { return "n=" + std::to_string(n); }));

    // t axis: derived per n when t_of_n is set, a fixed list otherwise.
    if (t_of_n) {
        const auto derive = t_of_n;
        axes.push_back({[derive](const Row& row) {
                            const Count t = derive(row.scenario.n);
                            return std::vector<GridValue<Row>>{
                                {[t](Row& r) { r.scenario.t = t; },
                                 "t=" + std::to_string(t)}};
                        },
                        true});
    } else {
        axes.push_back(fixed_axis<Row>(
            ts, base.t, [](Row& r, Count t) { r.scenario.t = t; },
            [](Count t) { return "t=" + std::to_string(t); }));
    }

    // q axis: empty = inherit base.q once (silently).
    std::vector<std::optional<Count>> q_values;
    if (qs.empty()) {
        q_values.push_back(base.q);
    } else {
        for (const Count q : qs) q_values.emplace_back(q);
    }
    axes.push_back(fixed_axis<Row>(
        q_values, base.q, [](Row& r, std::optional<Count> q) { r.scenario.q = q; },
        [](std::optional<Count> q) {
            return q ? "q=" + std::to_string(*q) : std::string();
        },
        /*swept=*/!qs.empty()));

    axes.push_back(fixed_axis<Row>(
        protocols, base.protocol,
        [](Row& r, ProtocolKind p) { r.scenario.protocol = p; },
        [](ProtocolKind p) { return to_string(p); }));

    // adversary axis: derived per protocol when adversary_of is set.
    if (adversary_of) {
        const auto derive = adversary_of;
        axes.push_back({[derive](const Row& row) {
                            const AdversaryKind a = derive(row.scenario.protocol);
                            return std::vector<GridValue<Row>>{
                                {[a](Row& r) { r.scenario.adversary = a; },
                                 to_string(a)}};
                        },
                        true});
    } else {
        axes.push_back(fixed_axis<Row>(
            adversaries, base.adversary,
            [](Row& r, AdversaryKind a) { r.scenario.adversary = a; },
            [](AdversaryKind a) { return to_string(a); }));
    }

    axes.push_back(fixed_axis<Row>(
        inputs, base.inputs, [](Row& r, InputPattern i) { r.scenario.inputs = i; },
        [](InputPattern i) { return to_string(i); }));

    axes.push_back(fixed_axis<Row>(
        tunings, base.tuning,
        [](Row& r, const core::Tuning& u) { r.scenario.tuning = u; },
        [](const core::Tuning& u) {
            return "alpha=" + Table::num(u.alpha, 1) + ",gamma=" +
                   Table::num(u.gamma, 1);
        }));

    Row base_row;
    base_row.scenario = base;
    const auto& keep = filter;
    return detail::enumerate_grid(base_row, axes, [&keep](const Row& r) {
        return !keep || keep(r.scenario);
    });
}

std::vector<SweepOutcome> run_sweep(const SweepGrid& grid, std::uint64_t base_seed,
                                    Count trials, const ExecutorConfig& exec) {
    return run_rows<SweepOutcome>(
        grid.rows(), base_seed, trials, exec,
        [](const Scenario& s, std::uint64_t seed, Count n, const ExecutorConfig& e) {
            return run_trials(s, seed, n, e);
        });
}

std::vector<CoinSweepRow> CoinSweepGrid::rows() const {
    using Row = CoinSweepRow;
    ADBA_EXPECTS_MSG(!ns.empty(), "coin sweep needs at least one network size");
    ADBA_EXPECTS_MSG(!f_ratios.empty() || !fs.empty(),
                     "coin sweep needs a budget axis (f_ratios or fs)");
    ADBA_EXPECTS_MSG(f_ratios.empty() || fs.empty(),
                     "give the budget either as ratios or explicit values, not both");

    std::vector<GridAxis<Row>> axes;
    axes.push_back(fixed_axis<Row>(
        ns, NodeId{0}, [](Row& r, NodeId n) { r.scenario.n = n; },
        [](NodeId n) { return "n=" + std::to_string(n); }));

    // k axis: empty = all n nodes flip (Algorithm 1) — derived from n.
    const std::vector<NodeId>& ks_ref = ks;
    axes.push_back({[&ks_ref](const Row& row) {
                        std::vector<GridValue<Row>> choices;
                        const std::vector<NodeId> k_values =
                            ks_ref.empty() ? std::vector<NodeId>{row.scenario.n}
                                           : ks_ref;
                        for (const NodeId k : k_values)
                            choices.push_back(
                                {[k](Row& r) { r.scenario.designated = k; },
                                 "k=" + std::to_string(k)});
                        return choices;
                    },
                    true});

    // Budget axis: ratios scale with sqrt(k) of the committee the k axis
    // chose; explicit budgets are used verbatim (f_ratio back-derived).
    const std::vector<double>& ratios_ref = f_ratios;
    const std::vector<Count>& fs_ref = fs;
    axes.push_back({[&ratios_ref, &fs_ref](const Row& row) {
                        const double sqrt_k =
                            std::sqrt(static_cast<double>(row.scenario.designated));
                        std::vector<GridValue<Row>> choices;
                        if (ratios_ref.empty()) {
                            for (const Count f : fs_ref) {
                                const double ratio = sqrt_k > 0.0 ? f / sqrt_k : 0.0;
                                choices.push_back({[f, ratio](Row& r) {
                                                       r.scenario.f = f;
                                                       r.f_ratio = ratio;
                                                   },
                                                   "f=" + std::to_string(f)});
                            }
                        } else {
                            for (const double ratio : ratios_ref) {
                                const auto f = static_cast<Count>(
                                    std::lround(ratio * sqrt_k));
                                choices.push_back({[f, ratio](Row& r) {
                                                       r.scenario.f = f;
                                                       r.f_ratio = ratio;
                                                   },
                                                   "f=" + std::to_string(f)});
                            }
                        }
                        return choices;
                    },
                    true});

    Row base_row;
    base_row.scenario.attack = attack;
    base_row.scenario.forced_bit = forced_bit;
    // k > n rows are skipped, but their index slots are consumed.
    return detail::enumerate_grid(base_row, axes, [](const Row& r) {
        return r.scenario.designated <= r.scenario.n;
    });
}

std::vector<CoinSweepOutcome> run_coin_sweep(const CoinSweepGrid& grid,
                                             std::uint64_t base_seed, Count trials,
                                             const ExecutorConfig& exec) {
    return run_rows<CoinSweepOutcome>(
        grid.rows(), base_seed, trials, exec,
        [](const CoinScenario& s, std::uint64_t seed, Count n,
           const ExecutorConfig& e) { return run_coin_trials(s, seed, n, e); });
}

std::vector<MvSweepRow> MvSweepGrid::rows() const {
    using Row = MvSweepRow;
    std::vector<GridAxis<Row>> axes;
    axes.push_back(fixed_axis<Row>(
        inputs, base.inputs, [](Row& r, MvInputPattern i) { r.scenario.inputs = i; },
        [](MvInputPattern i) { return to_string(i); }));
    axes.push_back(fixed_axis<Row>(
        adversaries, base.adversary,
        [](Row& r, MvAdversaryKind a) { r.scenario.adversary = a; },
        [](MvAdversaryKind a) { return to_string(a); }));

    Row base_row;
    base_row.scenario = base;
    return detail::enumerate_grid(base_row, axes, [](const Row&) { return true; });
}

std::vector<MvSweepOutcome> run_mv_sweep(const MvSweepGrid& grid,
                                         std::uint64_t base_seed, Count trials,
                                         const ExecutorConfig& exec) {
    return run_rows<MvSweepOutcome>(
        grid.rows(), base_seed, trials, exec,
        [](const MvScenario& s, std::uint64_t seed, Count n, const ExecutorConfig& e) {
            return run_mv_trials(s, seed, n, e);
        });
}

}  // namespace adba::sim
