#include "sim/sweep.hpp"

#include <cmath>
#include <optional>

#include "sim/registry.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace adba::sim {

namespace {

// Axis values with their "was this axis actually swept?" flag, so labels
// only mention what varies (or what a bench explicitly pinned per-grid).
template <typename T>
struct Axis {
    std::vector<T> values;
    bool swept;
};

template <typename T>
Axis<T> resolve(const std::vector<T>& axis, T base_value) {
    if (axis.empty()) return {{base_value}, false};
    return {axis, true};
}

}  // namespace

std::uint64_t row_seed(std::uint64_t base_seed, std::size_t row_index) {
    return mix64(base_seed ^ mix64(0x5157454550ULL + row_index));  // "SWEEP"
}

AdversaryKind strongest_adversary(ProtocolKind protocol) {
    return ProtocolRegistry::instance().at(protocol).strongest;
}

std::vector<SweepRow> SweepGrid::rows() const {
    const Axis<NodeId> axis_n = resolve(ns, base.n);
    Axis<Count> axis_t = resolve(ts, base.t);
    if (t_of_n) axis_t = {{}, true};  // derived per n below
    const Axis<ProtocolKind> axis_p = resolve(protocols, base.protocol);
    Axis<AdversaryKind> axis_a = resolve(adversaries, base.adversary);
    if (adversary_of) axis_a = {{}, true};  // derived per protocol below
    const Axis<InputPattern> axis_i = resolve(inputs, base.inputs);
    const Axis<core::Tuning> axis_u = resolve(tunings, base.tuning);

    // q axis: empty = inherit base.q once.
    std::vector<std::optional<Count>> q_values;
    const bool q_swept = !qs.empty();
    if (q_swept) {
        for (const Count q : qs) q_values.emplace_back(q);
    } else {
        q_values.emplace_back(base.q);
    }

    std::vector<SweepRow> out;
    std::size_t index = 0;
    for (const NodeId n : axis_n.values) {
        std::vector<Count> t_values = axis_t.values;
        if (t_of_n) t_values = {t_of_n(n)};
        for (const Count t : t_values) {
            for (const auto& q : q_values) {
                for (const ProtocolKind protocol : axis_p.values) {
                    std::vector<AdversaryKind> a_values = axis_a.values;
                    if (adversary_of) a_values = {adversary_of(protocol)};
                    for (const AdversaryKind adversary : a_values) {
                        for (const InputPattern input : axis_i.values) {
                            for (const core::Tuning& tuning : axis_u.values) {
                                SweepRow row;
                                row.scenario = base;
                                row.scenario.n = n;
                                row.scenario.t = t;
                                row.scenario.q = q;
                                row.scenario.protocol = protocol;
                                row.scenario.adversary = adversary;
                                row.scenario.inputs = input;
                                row.scenario.tuning = tuning;
                                row.index = index++;

                                std::string label;
                                auto append = [&label](const std::string& part) {
                                    if (!label.empty()) label += ' ';
                                    label += part;
                                };
                                if (axis_n.swept) append("n=" + std::to_string(n));
                                if (axis_t.swept) append("t=" + std::to_string(t));
                                if (q_swept && q) append("q=" + std::to_string(*q));
                                if (axis_p.swept) append(to_string(protocol));
                                if (axis_a.swept) append(to_string(adversary));
                                if (axis_i.swept) append(to_string(input));
                                if (axis_u.swept)
                                    append("alpha=" + Table::num(tuning.alpha, 1) +
                                           ",gamma=" + Table::num(tuning.gamma, 1));
                                row.label = label;

                                if (filter && !filter(row.scenario)) continue;
                                out.push_back(std::move(row));
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

std::vector<SweepOutcome> run_sweep(const SweepGrid& grid, std::uint64_t base_seed,
                                    Count trials, const ExecutorConfig& exec) {
    std::vector<SweepOutcome> out;
    for (const SweepRow& row : grid.rows()) {
        Aggregate agg = run_trials(row.scenario, row_seed(base_seed, row.index),
                                   trials, exec);
        out.push_back(SweepOutcome{row, std::move(agg)});
    }
    return out;
}

std::vector<CoinSweepRow> CoinSweepGrid::rows() const {
    ADBA_EXPECTS_MSG(!ns.empty(), "coin sweep needs at least one network size");
    ADBA_EXPECTS_MSG(!f_ratios.empty() || !fs.empty(),
                     "coin sweep needs a budget axis (f_ratios or fs)");
    ADBA_EXPECTS_MSG(f_ratios.empty() || fs.empty(),
                     "give the budget either as ratios or explicit values, not both");
    std::vector<CoinSweepRow> out;
    std::size_t index = 0;
    for (const NodeId n : ns) {
        const std::vector<NodeId> k_values = ks.empty() ? std::vector<NodeId>{n} : ks;
        for (const NodeId k : k_values) {
            const double sqrt_k = std::sqrt(static_cast<double>(k));
            const std::size_t budgets = f_ratios.empty() ? fs.size() : f_ratios.size();
            for (std::size_t b = 0; b < budgets; ++b) {
                const std::size_t row_index = index++;
                if (k > n) continue;  // skipped, but the index slot is consumed
                CoinSweepRow row;
                if (f_ratios.empty()) {
                    row.scenario.f = fs[b];
                    row.f_ratio = sqrt_k > 0.0 ? fs[b] / sqrt_k : 0.0;
                } else {
                    row.f_ratio = f_ratios[b];
                    row.scenario.f =
                        static_cast<Count>(std::lround(f_ratios[b] * sqrt_k));
                }
                row.scenario.n = n;
                row.scenario.designated = k;
                row.scenario.attack = attack;
                row.scenario.forced_bit = forced_bit;
                row.index = row_index;
                row.label = "n=" + std::to_string(n) + " k=" + std::to_string(k) +
                            " f=" + std::to_string(row.scenario.f);
                out.push_back(std::move(row));
            }
        }
    }
    return out;
}

std::vector<CoinSweepOutcome> run_coin_sweep(const CoinSweepGrid& grid,
                                             std::uint64_t base_seed, Count trials,
                                             const ExecutorConfig& exec) {
    std::vector<CoinSweepOutcome> out;
    for (const CoinSweepRow& row : grid.rows()) {
        CoinAggregate agg = run_coin_trials(row.scenario,
                                            row_seed(base_seed, row.index), trials,
                                            exec);
        out.push_back(CoinSweepOutcome{row, agg});
    }
    return out;
}

std::vector<MvSweepRow> MvSweepGrid::rows() const {
    const Axis<MvInputPattern> axis_i = resolve(inputs, base.inputs);
    const Axis<MvAdversaryKind> axis_a = resolve(adversaries, base.adversary);
    std::vector<MvSweepRow> out;
    std::size_t index = 0;
    for (const MvInputPattern input : axis_i.values) {
        for (const MvAdversaryKind adversary : axis_a.values) {
            MvSweepRow row;
            row.scenario = base;
            row.scenario.inputs = input;
            row.scenario.adversary = adversary;
            row.index = index++;
            std::string label;
            if (axis_i.swept) label += to_string(input);
            if (axis_a.swept) {
                if (!label.empty()) label += ' ';
                label += to_string(adversary);
            }
            row.label = std::move(label);
            out.push_back(std::move(row));
        }
    }
    return out;
}

std::vector<MvSweepOutcome> run_mv_sweep(const MvSweepGrid& grid,
                                         std::uint64_t base_seed, Count trials,
                                         const ExecutorConfig& exec) {
    std::vector<MvSweepOutcome> out;
    for (const MvSweepRow& row : grid.rows()) {
        MvAggregate agg = run_mv_trials(row.scenario, row_seed(base_seed, row.index),
                                        trials, exec);
        out.push_back(MvSweepOutcome{row, std::move(agg)});
    }
    return out;
}

}  // namespace adba::sim
