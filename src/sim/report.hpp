// Uniform CSV schema for workload aggregates.
//
// Every bench used to hand-format its own CSV rows; now all four workload
// aggregates (binary, coin, mv, macro) route through ONE schema helper, so
// a sweep's --csv_dir output has the same columns no matter which bench
// produced it: `label` followed by the workload's csv_header() columns
// (declared on the workload trait next to accumulate(), defined in the
// workload's .cpp). Display tables keep their bespoke bench-specific
// columns; this is the machine-readable face.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/macro.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

namespace adba::sim {

/// One row per sweep outcome; columns = label + the workload schema.
Table sweep_csv_table(const std::string& title,
                      const std::vector<SweepOutcome>& outcomes);
Table sweep_csv_table(const std::string& title,
                      const std::vector<CoinSweepOutcome>& outcomes);
Table sweep_csv_table(const std::string& title,
                      const std::vector<MvSweepOutcome>& outcomes);

/// (label, aggregate) form for benches that loop without a sweep grid
/// (e.g. E4's macro regime tables).
Table csv_table(const std::string& title,
                const std::vector<std::pair<std::string, Aggregate>>& rows);
Table csv_table(const std::string& title,
                const std::vector<std::pair<std::string, CoinAggregate>>& rows);
Table csv_table(const std::string& title,
                const std::vector<std::pair<std::string, MvAggregate>>& rows);
Table csv_table(const std::string& title,
                const std::vector<std::pair<std::string, MacroAggregate>>& rows);

}  // namespace adba::sim
