#include "sim/macro.hpp"

#include <vector>

#include "baselines/chor_coan.hpp"
#include "rand/rng.hpp"
#include "support/contracts.hpp"

namespace adba::sim {

namespace {

core::BlockSchedule schedule_for(const MacroScenario& s, Count& phases_out) {
    const auto n = static_cast<NodeId>(s.n);
    const auto t = static_cast<Count>(s.t);
    switch (s.schedule) {
        case MacroScheduleKind::Ours: {
            const auto p = core::AgreementParams::compute(n, t, s.tuning);
            phases_out = p.phases;
            return p.schedule;
        }
        case MacroScheduleKind::ChorCoanRushing: {
            const auto p = base::ChorCoanParams::compute_rushing(n, t, s.tuning);
            phases_out = p.phases;
            return p.schedule;
        }
        case MacroScheduleKind::ChorCoanClassic: {
            const auto p = base::ChorCoanParams::compute_classic(n, t, s.tuning);
            phases_out = p.phases;
            return p.schedule;
        }
    }
    ADBA_ENSURES_MSG(false, "unreachable schedule kind");
    return {};
}

/// Once-per-sweep product of a MacroScenario: the committee schedule and
/// phase budget are seed-independent, so trial loops compute them once.
struct MacroPlan {
    core::BlockSchedule sched;
    Count phases = 0;

    explicit MacroPlan(const MacroScenario& s) {
        ADBA_EXPECTS(s.n >= 4 && s.n <= 0xFFFFFFFFULL);
        ADBA_EXPECTS_MSG(3 * s.t < s.n, "requires t < n/3");
        ADBA_EXPECTS(s.q <= s.t);
        sched = schedule_for(s, phases);
    }
};

MacroResult run_macro_trial(const MacroScenario& s, const MacroPlan& plan,
                            std::uint64_t seed) {
    const Count phases = plan.phases;
    const core::BlockSchedule& sched = plan.sched;

    Xoshiro256 rng(mix64(seed ^ 0x6d6163726f2d3031ULL));
    std::vector<std::uint32_t> byz_in(sched.num_blocks, 0);  // corrupted per committee
    std::uint64_t used = 0;

    MacroResult out;
    out.phase_budget = phases;
    out.committee_size = sched.block;

    for (Phase p = 0; p < phases; ++p) {
        const Count k = sched.committee_of_phase(p);
        const NodeId csize = sched.size(k);
        ADBA_ENSURES(byz_in[k] <= csize);
        const std::uint32_t honest_members = csize - byz_in[k];

        // Round 2's committee flips (split inputs keep round 1 quorum-free;
        // see header).
        std::int64_t sum = 0;
        for (std::uint32_t i = 0; i < honest_members; ++i) sum += rng.sign();
        std::uint64_t pos = (static_cast<std::uint64_t>(honest_members) +
                             static_cast<std::uint64_t>(sum)) / 2;
        std::uint64_t neg = honest_members - pos;

        // Adversary's greedy SPLIT ruin: corrupt majority-sign flippers
        // until the equivocation margin covers the surviving sum.
        std::int64_t m = byz_in[k];
        std::uint64_t cost = 0;
        bool feasible = true;
        while (!(sum >= -m && sum <= m - 1)) {
            if (sum >= 0 && pos > 0) {
                --pos;
                --sum;
            } else if (sum < 0 && neg > 0) {
                --neg;
                ++sum;
            } else {
                feasible = false;
                break;
            }
            ++m;
            ++cost;
        }

        if (feasible && used + cost <= s.q) {
            used += cost;
            byz_in[k] += static_cast<std::uint32_t>(cost);
            out.phases_run = p + 1;
            continue;  // phase ruined; honest values re-split balanced
        }

        // Good phase p: the common coin unifies every honest value. Phase
        // p+1 decides and finishes (quorum blocking costs t-used+1 > q-used,
        // never affordable); the flush phase p+2 completes termination. The
        // micro engine counts 2(p+3) rounds for this ending.
        out.phases_run = p + 1;
        out.rounds = 2 * (static_cast<std::uint64_t>(p) + 3);
        out.agreement = true;
        out.corruptions = used;
        return out;
    }

    // Phase budget exhausted with every phase ruined: the honest values are
    // still split — the w.h.p. failure event.
    out.phases_run = phases;
    out.rounds = 2 * static_cast<std::uint64_t>(phases);
    out.agreement = false;
    out.corruptions = used;
    return out;
}

}  // namespace

MacroResult run_macro_trial(const MacroScenario& s, std::uint64_t seed) {
    return run_macro_trial(s, MacroPlan(s), seed);
}

void MacroAggregate::merge(const MacroAggregate& other) {
    trials += other.trials;
    agreement_failures += other.agreement_failures;
    rounds.merge(other.rounds);
    phases.merge(other.phases);
    corruptions.merge(other.corruptions);
}

MacroAggregate run_macro_trials(const MacroScenario& s, std::uint64_t base_seed,
                                Count trials, const ExecutorConfig& exec) {
    const MacroPlan plan(s);  // schedule + phase budget once per sweep
    return parallel_reduce<MacroAggregate>(trials, exec, [&](Count begin, Count end) {
        MacroAggregate part;
        part.trials = end - begin;
        part.rounds.reserve(end - begin);
        for (Count i = begin; i < end; ++i) {
            const MacroResult r =
                run_macro_trial(s, plan, mix64(base_seed + 0x9e3779b97f4a7c15ULL * i));
            part.rounds.add(static_cast<double>(r.rounds));
            part.phases.add(static_cast<double>(r.phases_run));
            part.corruptions.add(static_cast<double>(r.corruptions));
            if (!r.agreement) ++part.agreement_failures;
        }
        return part;
    });
}

std::string to_string(MacroScheduleKind k) {
    switch (k) {
        case MacroScheduleKind::Ours: return "ours(macro)";
        case MacroScheduleKind::ChorCoanRushing: return "cc-rushing(macro)";
        case MacroScheduleKind::ChorCoanClassic: return "cc-classic(macro)";
    }
    return "?";
}

}  // namespace adba::sim
