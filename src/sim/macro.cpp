#include "sim/macro.hpp"

#include <vector>

#include "baselines/chor_coan.hpp"
#include "rand/rng.hpp"
#include "sim/checkpoint.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace adba::sim {

namespace {

core::BlockSchedule schedule_for(const MacroScenario& s, Count& phases_out) {
    const auto n = static_cast<NodeId>(s.n);
    const auto t = static_cast<Count>(s.t);
    switch (s.schedule) {
        case MacroScheduleKind::Ours: {
            const auto p = core::AgreementParams::compute(n, t, s.tuning);
            phases_out = p.phases;
            return p.schedule;
        }
        case MacroScheduleKind::ChorCoanRushing: {
            const auto p = base::ChorCoanParams::compute_rushing(n, t, s.tuning);
            phases_out = p.phases;
            return p.schedule;
        }
        case MacroScheduleKind::ChorCoanClassic: {
            const auto p = base::ChorCoanParams::compute_classic(n, t, s.tuning);
            phases_out = p.phases;
            return p.schedule;
        }
    }
    ADBA_ENSURES_MSG(false, "unreachable schedule kind");
    return {};
}

}  // namespace

/// Once-per-sweep product of a MacroScenario: the committee schedule and
/// phase budget are seed-independent, so trial loops compute them once.
struct MacroWorkload::Plan {
    MacroScenario scenario;
    core::BlockSchedule sched;
    Count phases = 0;

    explicit Plan(const MacroScenario& s) : scenario(s) {
        if (const auto why = why_incompatible(s)) throw ContractViolation(*why);
        sched = schedule_for(s, phases);
    }
};

/// Macro trials need no pooled engine state; the arena exists to satisfy
/// the kernel contract and to pin the plan reference.
class MacroWorkload::Arena {
public:
    explicit Arena(const Plan& plan) : plan_(plan) {}

    MacroResult run(std::uint64_t seed) const {
        const MacroScenario& s = plan_.scenario;
        const Count phases = plan_.phases;
        const core::BlockSchedule& sched = plan_.sched;

        Xoshiro256 rng(mix64(seed ^ 0x6d6163726f2d3031ULL));
        std::vector<std::uint32_t> byz_in(sched.num_blocks, 0);  // corrupted per committee
        std::uint64_t used = 0;

        MacroResult out;
        out.phase_budget = phases;
        out.committee_size = sched.block;

        for (Phase p = 0; p < phases; ++p) {
            const Count k = sched.committee_of_phase(p);
            const NodeId csize = sched.size(k);
            ADBA_ENSURES(byz_in[k] <= csize);
            const std::uint32_t honest_members = csize - byz_in[k];

            // Round 2's committee flips (split inputs keep round 1
            // quorum-free; see header).
            std::int64_t sum = 0;
            for (std::uint32_t i = 0; i < honest_members; ++i) sum += rng.sign();
            std::uint64_t pos = (static_cast<std::uint64_t>(honest_members) +
                                 static_cast<std::uint64_t>(sum)) / 2;
            std::uint64_t neg = honest_members - pos;

            // Adversary's greedy SPLIT ruin: corrupt majority-sign flippers
            // until the equivocation margin covers the surviving sum.
            std::int64_t m = byz_in[k];
            std::uint64_t cost = 0;
            bool feasible = true;
            while (!(sum >= -m && sum <= m - 1)) {
                if (sum >= 0 && pos > 0) {
                    --pos;
                    --sum;
                } else if (sum < 0 && neg > 0) {
                    --neg;
                    ++sum;
                } else {
                    feasible = false;
                    break;
                }
                ++m;
                ++cost;
            }

            if (feasible && used + cost <= s.q) {
                used += cost;
                byz_in[k] += static_cast<std::uint32_t>(cost);
                out.phases_run = p + 1;
                continue;  // phase ruined; honest values re-split balanced
            }

            // Good phase p: the common coin unifies every honest value.
            // Phase p+1 decides and finishes (quorum blocking costs
            // t-used+1 > q-used, never affordable); the flush phase p+2
            // completes termination. The micro engine counts 2(p+3) rounds
            // for this ending.
            out.phases_run = p + 1;
            out.rounds = 2 * (static_cast<std::uint64_t>(p) + 3);
            out.agreement = true;
            out.corruptions = used;
            return out;
        }

        // Phase budget exhausted with every phase ruined: the honest values
        // are still split — the w.h.p. failure event, the macro analogue of
        // hitting the engine's round cap.
        out.phases_run = phases;
        out.rounds = 2 * static_cast<std::uint64_t>(phases);
        out.agreement = false;
        out.corruptions = used;
        out.outcome = TrialOutcome::RoundCapExhausted;
        return out;
    }

private:
    const Plan& plan_;
};

MacroWorkload::Plan MacroWorkload::make_plan(const MacroScenario& s) {
    return Plan(s);
}

void MacroWorkload::accumulate(MacroAggregate& agg, const MacroResult& r) {
    if (r.outcome == TrialOutcome::Faulted) {
        // Injected permanent fault: the trial produced no schedule walk, so
        // only the taxonomy counter moves (see Aggregate in runner.hpp).
        ++agg.faulted;
        return;
    }
    if (r.outcome == TrialOutcome::RoundCapExhausted) ++agg.cap_exhausted;
    agg.rounds.add(static_cast<double>(r.rounds));
    agg.phases.add(static_cast<double>(r.phases_run));
    agg.corruptions.add(static_cast<double>(r.corruptions));
    if (!r.agreement) ++agg.agreement_failures;
}

std::vector<std::string> MacroWorkload::csv_header() {
    return {"trials",      "agree_pct",  "exhausted",       "faulted",
            "rounds_mean", "rounds_p90", "rounds_max",      "phases_mean",
            "corruptions_mean"};
}

std::vector<std::string> MacroWorkload::csv_row(const MacroAggregate& agg) {
    const Count ran = agg.trials - agg.faulted;
    const double ok = ran == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(ran -
                                                        agg.agreement_failures) /
                                static_cast<double>(ran);
    const bool have = !agg.rounds.empty();
    return {Table::num(static_cast<std::uint64_t>(agg.trials)),
            Table::num(ok, 2),
            Table::num(static_cast<std::uint64_t>(agg.cap_exhausted)),
            Table::num(static_cast<std::uint64_t>(agg.faulted)),
            Table::num(have ? agg.rounds.mean() : 0.0, 3),
            Table::num(have ? agg.rounds.quantile(0.9) : 0.0, 3),
            Table::num(have ? agg.rounds.max() : 0.0, 0),
            Table::num(have ? agg.phases.mean() : 0.0, 3),
            Table::num(have ? agg.corruptions.mean() : 0.0, 3)};
}

std::string MacroWorkload::checkpoint_scope(const Plan& plan) {
    const MacroScenario& s = plan.scenario;
    return "n=" + std::to_string(s.n) + " t=" + std::to_string(s.t) +
           " q=" + std::to_string(s.q) + " schedule=" + to_string(s.schedule) +
           " alpha=" + std::to_string(s.tuning.alpha) +
           " gamma=" + std::to_string(s.tuning.gamma) +
           " beta=" + std::to_string(s.tuning.beta);
}

void MacroWorkload::checkpoint_encode(const MacroAggregate& agg, std::string& out) {
    BinWriter w(out);
    w.u32(agg.trials);
    w.u32(agg.agreement_failures);
    w.u32(agg.cap_exhausted);
    w.u32(agg.faulted);
    w.doubles(agg.rounds.values());
    w.doubles(agg.phases.values());
    w.doubles(agg.corruptions.values());
}

void MacroWorkload::checkpoint_decode(std::string_view bytes, MacroAggregate& agg) {
    BinReader r(bytes);
    agg.trials = r.u32();
    agg.agreement_failures = r.u32();
    agg.cap_exhausted = r.u32();
    agg.faulted = r.u32();
    std::vector<double> xs;
    r.doubles(xs);
    for (double x : xs) agg.rounds.add(x);
    xs.clear();
    r.doubles(xs);
    for (double x : xs) agg.phases.add(x);
    xs.clear();
    r.doubles(xs);
    for (double x : xs) agg.corruptions.add(x);
    ADBA_EXPECTS_MSG(r.exhausted(), "macro checkpoint payload has trailing bytes");
}

MacroResult run_macro_trial(const MacroScenario& s, std::uint64_t seed) {
    return run_one_trial<MacroWorkload>(MacroWorkload::make_plan(s), seed);
}

void MacroAggregate::merge(const MacroAggregate& other) {
    trials += other.trials;
    agreement_failures += other.agreement_failures;
    cap_exhausted += other.cap_exhausted;
    faulted += other.faulted;
    rounds.merge(other.rounds);
    phases.merge(other.phases);
    corruptions.merge(other.corruptions);
}

MacroAggregate run_macro_trials(const MacroScenario& s, std::uint64_t base_seed,
                                Count trials, const ExecutorConfig& exec) {
    return run_trials<MacroWorkload>(s, base_seed, trials, exec);
}

std::string to_string(MacroScheduleKind k) {
    switch (k) {
        case MacroScheduleKind::Ours: return "ours(macro)";
        case MacroScheduleKind::ChorCoanRushing: return "cc-rushing(macro)";
        case MacroScheduleKind::ChorCoanClassic: return "cc-classic(macro)";
    }
    return "?";
}

std::optional<std::string> why_incompatible(const MacroScenario& s) {
    if (s.n < 4 || s.n > 0xFFFFFFFFULL)
        return "macro scenario needs 4 <= n <= 4294967295 (2^32 - 1) (got n=" +
               std::to_string(s.n) + ")";
    if (3 * s.t >= s.n)
        return "macro schedules require t < n/3 (got n=" + std::to_string(s.n) +
               ", t=" + std::to_string(s.t) + ")";
    if (s.q > s.t)
        return "actual corruptions q must not exceed the budget t (q=" +
               std::to_string(s.q) + ", t=" + std::to_string(s.t) + ")";
    return std::nullopt;
}

bool compatible(const MacroScenario& s) { return !why_incompatible(s).has_value(); }

MacroScheduleKind parse_macro_schedule(const std::string& name) {
    if (name == "ours" || name == "ours(macro)" || name == "alg3")
        return MacroScheduleKind::Ours;
    if (name == "cc-rushing" || name == "cc-rushing(macro)" ||
        name == "chor-coan-rushing")
        return MacroScheduleKind::ChorCoanRushing;
    if (name == "cc-classic" || name == "cc-classic(macro)" ||
        name == "chor-coan-classic")
        return MacroScheduleKind::ChorCoanClassic;
    throw ContractViolation("unknown macro schedule '" + name +
                            "'; known: ours, cc-rushing, cc-classic");
}

}  // namespace adba::sim
