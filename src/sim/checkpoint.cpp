#include "sim/checkpoint.hpp"

#include <bit>
#include <cstring>
#include <filesystem>

#include "support/contracts.hpp"

namespace adba::sim {

namespace {

constexpr char kMagic[8] = {'A', 'D', 'B', 'A', 'C', 'K', 'P', '1'};
constexpr std::uint32_t kRecordMagic = 0x41434b52;  // "RKCA"

std::uint64_t fnv1a(std::string_view bytes) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

// Reader over a fully slurped journal; all reads are bounds-checked and
// report failure instead of throwing, because a torn tail is an expected
// state, not an error.
struct FileReader {
    std::string_view in;
    std::size_t pos = 0;

    bool bytes(void* dst, std::size_t len) {
        if (in.size() - pos < len) return false;
        std::memcpy(dst, in.data() + pos, len);
        pos += len;
        return true;
    }
    bool u32(std::uint32_t& v) { return bytes(&v, sizeof v); }
    bool u64(std::uint64_t& v) { return bytes(&v, sizeof v); }
    bool str(std::string& s) {
        std::uint32_t len = 0;
        if (!u32(len) || in.size() - pos < len) return false;
        s.assign(in.data() + pos, len);
        pos += len;
        return true;
    }
};

void append_u32(std::string& out, std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void append_u64(std::string& out, std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void append_str(std::string& out, const std::string& s) {
    append_u32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

std::string encode_header(const CheckpointMeta& meta) {
    std::string h;
    h.append(kMagic, sizeof kMagic);
    append_u64(h, meta.base_seed);
    append_u64(h, meta.seed_stride);
    append_u32(h, meta.trials);
    append_u32(h, meta.chunk);
    append_str(h, meta.workload);
    append_str(h, meta.scope);
    return h;
}

std::string slurp(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ADBA_EXPECTS_MSG(f != nullptr, "cannot open checkpoint journal '" + path +
                                       "' for resume");
    std::string data;
    char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, got);
    std::fclose(f);
    return data;
}

void describe_mismatch(std::string& why, const char* field, const std::string& have,
                       const std::string& want) {
    if (have == want) return;
    why += std::string(why.empty() ? "" : "; ") + field + " was " + have +
           ", this run wants " + want;
}

}  // namespace

ChunkJournal::ChunkJournal(std::string path, const CheckpointMeta& meta, bool resume)
    : path_(std::move(path)) {
    ADBA_EXPECTS_MSG(!path_.empty(), "checkpoint journal path must be non-empty");
    ADBA_EXPECTS_MSG(meta.chunk > 0, "checkpoint meta needs a resolved chunk size");

    const bool exists = std::filesystem::exists(path_);
    if (resume && exists && std::filesystem::file_size(path_) > 0) {
        const std::string data = slurp(path_);
        FileReader r{data};

        char magic[sizeof kMagic];
        ADBA_EXPECTS_MSG(r.bytes(magic, sizeof magic) &&
                             std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                         "'" + path_ +
                             "' is not an adba checkpoint journal (bad magic); "
                             "refusing to resume — delete it or drop --resume to "
                             "start fresh");

        CheckpointMeta have;
        const bool header_ok = r.u64(have.base_seed) && r.u64(have.seed_stride) &&
                               r.u32(have.trials) && r.u32(have.chunk) &&
                               r.str(have.workload) && r.str(have.scope);
        ADBA_EXPECTS_MSG(header_ok, "checkpoint journal '" + path_ +
                                        "' has a truncated header; delete it or "
                                        "drop --resume to start fresh");
        if (have != meta) {
            std::string why;
            describe_mismatch(why, "workload", have.workload, meta.workload);
            describe_mismatch(why, "base_seed", std::to_string(have.base_seed),
                              std::to_string(meta.base_seed));
            describe_mismatch(why, "seed_stride", std::to_string(have.seed_stride),
                              std::to_string(meta.seed_stride));
            describe_mismatch(why, "trials", std::to_string(have.trials),
                              std::to_string(meta.trials));
            describe_mismatch(why, "chunk", std::to_string(have.chunk),
                              std::to_string(meta.chunk));
            describe_mismatch(why, "scenario", have.scope, meta.scope);
            throw ContractViolation(
                "checkpoint journal '" + path_ + "' belongs to a different sweep (" +
                why +
                "); partial aggregates are only mergeable into the identical "
                "sweep — rerun with the journal's parameters, or delete the "
                "journal / drop --resume to start fresh");
        }

        // Replay complete records; stop at the first torn one and truncate
        // the file back to the last durable byte.
        std::size_t good_end = r.pos;
        while (true) {
            FileReader probe = r;
            std::uint32_t magic32 = 0, ci = 0, len = 0;
            std::uint64_t sum = 0;
            if (!probe.u32(magic32) || magic32 != kRecordMagic || !probe.u32(ci) ||
                !probe.u32(len) || !probe.u64(sum) || data.size() - probe.pos < len)
                break;
            const std::string_view payload(data.data() + probe.pos, len);
            probe.pos += len;
            if (fnv1a(payload) != sum) break;
            completed_.emplace_back(ci, std::string(payload));
            r = probe;
            good_end = r.pos;
        }
        if (good_end != data.size())
            std::filesystem::resize_file(path_, good_end);

        out_ = std::fopen(path_.c_str(), "ab");
        ADBA_EXPECTS_MSG(out_ != nullptr,
                         "cannot reopen checkpoint journal '" + path_ + "' for append");
        return;
    }

    // Fresh journal (also the resume-from-nothing case).
    out_ = std::fopen(path_.c_str(), "wb");
    ADBA_EXPECTS_MSG(out_ != nullptr,
                     "cannot create checkpoint journal '" + path_ + "'");
    const std::string header = encode_header(meta);
    const std::size_t wrote = std::fwrite(header.data(), 1, header.size(), out_);
    ADBA_EXPECTS_MSG(wrote == header.size() && std::fflush(out_) == 0,
                     "short write creating checkpoint journal '" + path_ + "'");
}

ChunkJournal::~ChunkJournal() {
    if (out_) std::fclose(out_);
}

void ChunkJournal::append(std::size_t chunk_index, const std::string& payload) {
    std::string rec;
    rec.reserve(payload.size() + 20);
    append_u32(rec, kRecordMagic);
    append_u32(rec, static_cast<std::uint32_t>(chunk_index));
    append_u32(rec, static_cast<std::uint32_t>(payload.size()));
    append_u64(rec, fnv1a(payload));
    rec.append(payload);

    const std::lock_guard<std::mutex> lock(mu_);
    const std::size_t wrote = std::fwrite(rec.data(), 1, rec.size(), out_);
    ADBA_EXPECTS_MSG(wrote == rec.size() && std::fflush(out_) == 0,
                     "short write appending to checkpoint journal '" + path_ + "'");
}

// ------------------------------------------------------- payload primitives

void BinWriter::u32(std::uint32_t v) { append_u32(out_, v); }
void BinWriter::u64(std::uint64_t v) { append_u64(out_, v); }
void BinWriter::f64(double v) { append_u64(out_, std::bit_cast<std::uint64_t>(v)); }

void BinWriter::doubles(const std::vector<double>& xs) {
    u64(xs.size());
    for (double x : xs) f64(x);
}

std::uint32_t BinReader::u32() {
    std::uint32_t v = 0;
    ADBA_EXPECTS_MSG(in_.size() - pos_ >= sizeof v,
                     "checkpoint payload truncated (u32)");
    std::memcpy(&v, in_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
}

std::uint64_t BinReader::u64() {
    std::uint64_t v = 0;
    ADBA_EXPECTS_MSG(in_.size() - pos_ >= sizeof v,
                     "checkpoint payload truncated (u64)");
    std::memcpy(&v, in_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
}

double BinReader::f64() { return std::bit_cast<double>(u64()); }

void BinReader::doubles(std::vector<double>& xs) {
    const std::uint64_t count = u64();
    ADBA_EXPECTS_MSG(count <= (in_.size() - pos_) / sizeof(double),
                     "checkpoint payload truncated (sample block)");
    xs.reserve(xs.size() + static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) xs.push_back(f64());
}

}  // namespace adba::sim
