#include "sim/workload.hpp"

#include <algorithm>
#include <cctype>

#include "support/cli.hpp"
#include "support/contracts.hpp"

namespace adba::sim {

namespace {

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

}  // namespace

const std::vector<WorkloadInfo>& workloads() {
    static const std::vector<WorkloadInfo> table = {
        {"binary",
         {"bin", "engine"},
         "Scenario",
         "SweepGrid",
         "full-fidelity engine trials: any registered protocol x adversary"},
        {"coin",
         {"common-coin"},
         "CoinScenario",
         "CoinSweepGrid",
         "standalone common-coin trials (Algorithm 1/2 vs coin-ruin)"},
        {"mv",
         {"multivalued", "multi-valued", "turpin-coan"},
         "MvScenario",
         "MvSweepGrid",
         "multi-valued agreement (Turpin-Coan reduction over Algorithm 3)"},
        {"macro",
         {"asymptotic"},
         "MacroScenario",
         "-",
         "macro asymptotic simulator, O(committee) per phase up to n=2^20"},
    };
    return table;
}

const WorkloadInfo* find_workload(const std::string& name_or_alias) {
    const std::string key = lower(name_or_alias);
    for (const WorkloadInfo& w : workloads()) {
        if (w.name == key) return &w;
        for (const auto& alias : w.aliases)
            if (lower(alias) == key) return &w;
    }
    return nullptr;
}

const WorkloadInfo& workload_at(const std::string& name_or_alias) {
    if (const WorkloadInfo* w = find_workload(name_or_alias)) return *w;
    std::string known;
    std::vector<std::string> candidates;
    for (const WorkloadInfo& w : workloads()) {
        known += (known.empty() ? "" : ", ") + w.name;
        candidates.push_back(w.name);
        candidates.insert(candidates.end(), w.aliases.begin(), w.aliases.end());
    }
    std::string msg = "unknown workload '" + name_or_alias + "'";
    const std::string best = closest_match(lower(name_or_alias), candidates);
    if (!best.empty()) msg += " (did you mean '" + best + "'?)";
    throw ContractViolation(msg + "; known workloads: " + known +
                            " (aliases accepted; see `adba_sim --list`)");
}

}  // namespace adba::sim
