// Initial input assignment patterns for agreement trials.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rand/seed_tree.hpp"
#include "support/types.hpp"

namespace adba::sim {

enum class InputPattern : std::uint8_t {
    AllZero,  ///< validity probe: every node starts 0
    AllOne,   ///< validity probe: every node starts 1
    Split,    ///< worst case: alternating by ID (maximally balanced)
    Random,   ///< i.i.d. fair bits from the trial's input stream
};

std::vector<Bit> make_inputs(InputPattern pattern, NodeId n, const SeedTree& seeds);

/// In-place variant for pooled trial loops: fills `out` (resized to n) with
/// exactly the same values the allocating overload returns.
void make_inputs(InputPattern pattern, NodeId n, const SeedTree& seeds,
                 std::vector<Bit>& out);

/// True iff every node holds the same input (validity clause applies).
bool unanimous(const std::vector<Bit>& inputs);

std::string to_string(InputPattern pattern);

}  // namespace adba::sim
