// The workload-generic Monte-Carlo trial kernel.
//
// Every trial stack in this repository — binary engine trials, standalone
// common-coin trials, multi-valued (Turpin-Coan) trials, and the macro
// asymptotic simulator — is the same machine: validate a scenario once,
// split [0, trials) into executor chunks, run each chunk's trials in index
// order through a pooled per-chunk arena with index-derived seeds, and merge
// the partial aggregates in chunk order so the result is bit-identical at
// any thread count. This header owns that machine ONCE; the four stacks are
// thin workload definitions on top of it (see src/sim/README.md for the
// full contract and how to add a fifth workload).
//
// A workload W provides:
//
//   typename W::Scenario   pure-value scenario (equality-comparable)
//   typename W::Result     outcome of one trial
//   typename W::Aggregate  merge()-able aggregate with a `Count trials` field
//   typename W::Plan       once-per-sweep resolved product of a scenario
//                          (registry entries, derived parameters, round caps)
//   typename W::Arena      per-chunk pooled trial state; constructed from a
//                          Plan, `Result run(std::uint64_t seed)` must be a
//                          pure function of (plan, seed) — re-armed state
//                          included (the thread-invariance tests are the
//                          canary for stale pool state)
//   W::kSeedStride         per-trial seed stride: trial i runs at
//                          mix64(base_seed + kSeedStride * i). Frozen per
//                          workload — changing it silently re-randomizes
//                          every recorded experiment.
//   W::make_plan(scenario) validation + hoisting, called once per run/sweep
//   W::accumulate(agg, r)  folds one trial result into a chunk partial
//   W::reserve(agg, n)     optional pre-sizing of sample buffers
//
// plus reporting metadata used by the uniform CSV schema (sim/report.hpp):
//   W::kName, W::csv_header(), W::csv_row(agg).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "rand/rng.hpp"
#include "sim/executor.hpp"
#include "support/types.hpp"

namespace adba::sim {

/// Runs one trial through a fresh arena; the one-shot (non-pooled) path.
/// Bit-identical to what a pooled arena produces for the same (plan, seed).
template <typename W>
typename W::Result run_one_trial(const typename W::Plan& plan, std::uint64_t seed) {
    typename W::Arena arena(plan);
    return arena.run(seed);
}

/// THE Monte-Carlo executor loop. Per-trial seeds depend only on
/// (base_seed, trial index), chunk boundaries depend only on (trials,
/// chunk), chunks run their trials in index order through one pooled arena,
/// and partials merge in chunk-index order — so the aggregate is
/// bit-identical at any thread count, including serial. This is the only
/// pooled-arena chunk loop in src/sim/; workloads must not grow their own.
template <typename W>
typename W::Aggregate run_trials(const typename W::Plan& plan, std::uint64_t base_seed,
                                 Count trials, const ExecutorConfig& exec = {}) {
    return parallel_reduce<typename W::Aggregate>(
        trials, exec, [&](Count begin, Count end) {
            typename W::Aggregate part;
            part.trials = end - begin;
            if constexpr (requires { W::reserve(part, Count{}); })
                W::reserve(part, end - begin);
            typename W::Arena arena(plan);
            for (Count i = begin; i < end; ++i)
                W::accumulate(part, arena.run(mix64(base_seed + W::kSeedStride * i)));
            return part;
        });
}

/// Scenario-level convenience: validate/hoist once, then run the kernel.
/// (Constrained away when the workload's scenario doubles as its plan —
/// the plan overload above then takes the scenario directly.)
template <typename W>
    requires(!std::is_same_v<typename W::Plan, typename W::Scenario>)
typename W::Aggregate run_trials(const typename W::Scenario& s, std::uint64_t base_seed,
                                 Count trials, const ExecutorConfig& exec = {}) {
    const typename W::Plan plan = W::make_plan(s);
    return run_trials<W>(plan, base_seed, trials, exec);
}

// ------------------------------------------------------- workload directory

/// Metadata for one registered workload — the `adba_sim --workload=` axis
/// and the capability table in README.md.
struct WorkloadInfo {
    std::string name;  ///< canonical CLI key: binary, coin, mv, macro
    std::vector<std::string> aliases;
    std::string scenario;   ///< scenario type, e.g. "Scenario"
    std::string grid;       ///< sweep grid type, or "-" when none
    std::string summary;    ///< one-line note for capability tables
};

/// The four built-in workloads, in kernel-registration order.
const std::vector<WorkloadInfo>& workloads();

/// Lookup by canonical name or alias (case-insensitive); nullptr if unknown.
const WorkloadInfo* find_workload(const std::string& name_or_alias);

/// Like find_workload but throws ContractViolation with the known-name list
/// and a did-you-mean suggestion for near misses.
const WorkloadInfo& workload_at(const std::string& name_or_alias);

}  // namespace adba::sim
