// The workload-generic Monte-Carlo trial kernel.
//
// Every trial stack in this repository — binary engine trials, standalone
// common-coin trials, multi-valued (Turpin-Coan) trials, and the macro
// asymptotic simulator — is the same machine: validate a scenario once,
// split [0, trials) into executor chunks, run each chunk's trials in index
// order through a pooled per-chunk arena with index-derived seeds, and merge
// the partial aggregates in chunk order so the result is bit-identical at
// any thread count. This header owns that machine ONCE; the four stacks are
// thin workload definitions on top of it (see src/sim/README.md for the
// full contract and how to add a fifth workload).
//
// A workload W provides:
//
//   typename W::Scenario   pure-value scenario (equality-comparable)
//   typename W::Result     outcome of one trial
//   typename W::Aggregate  merge()-able aggregate with a `Count trials` field
//   typename W::Plan       once-per-sweep resolved product of a scenario
//                          (registry entries, derived parameters, round caps)
//   typename W::Arena      per-chunk pooled trial state; constructed from a
//                          Plan, `Result run(std::uint64_t seed)` must be a
//                          pure function of (plan, seed) — re-armed state
//                          included (the thread-invariance tests are the
//                          canary for stale pool state)
//   W::kSeedStride         per-trial seed stride: trial i runs at
//                          mix64(base_seed + kSeedStride * i). Frozen per
//                          workload — changing it silently re-randomizes
//                          every recorded experiment.
//   W::make_plan(scenario) validation + hoisting, called once per run/sweep
//   W::accumulate(agg, r)  folds one trial result into a chunk partial
//   W::reserve(agg, n)     optional pre-sizing of sample buffers
//
// plus reporting metadata used by the uniform CSV schema (sim/report.hpp):
//   W::kName, W::csv_header(), W::csv_row(agg),
//
// plus the checkpoint hooks (chunk-granular resume, sim/checkpoint.hpp):
//   W::checkpoint_scope(plan)        plan fingerprint pinned in the journal
//                                    header (a resume under a different
//                                    scenario must be refused, not merged)
//   W::checkpoint_encode(agg, out)   byte-exact chunk-partial serialization
//   W::checkpoint_decode(bytes, agg) inverse; decode(encode(a)) == a to the
//                                    bit, Samples order included
//
// Resilience contract: every W::Result carries a TrialOutcome. The kernel
// below recovers injected harness faults (sim/faults.hpp) by retrying the
// failed CHUNK through a fresh arena — never by reusing an arena whose
// Engine::run unwound mid-round, which would leave pooled protocol state
// half-armed — and degrades the final attempt to serial execution.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "rand/rng.hpp"
#include "sim/checkpoint.hpp"
#include "sim/executor.hpp"
#include "sim/faults.hpp"
#include "support/contracts.hpp"
#include "support/types.hpp"

namespace adba::sim {

/// Runs one trial through a fresh arena; the one-shot (non-pooled) path.
/// Bit-identical to what a pooled arena produces for the same (plan, seed).
template <typename W>
typename W::Result run_one_trial(const typename W::Plan& plan, std::uint64_t seed) {
    typename W::Arena arena(plan);
    return arena.run(seed);
}

/// Runs one chunk's trials through a pooled arena, recovering injected
/// harness faults (sim/faults.hpp): an InjectedFault thrown anywhere in the
/// attempt — arena construction, a ShardPool shard task, the engine's beats
/// — abandons the whole attempt (the unwound arena may hold half-armed
/// pooled state, so it is never reused) and retries through a FRESH arena,
/// with bounded backoff, up to FaultConfig::max_attempts times. If every
/// regular attempt faults, one final attempt runs degraded: transient
/// injection suppressed and beats forced serial (plan_intra_shards -> 1).
/// Transient faults therefore never change the aggregate; permanent
/// per-trial faults (FaultInjector::trial_faulted, keyed by trial index)
/// consume exactly the same trials on every path and are folded in as
/// value-initialized results with TrialOutcome::Faulted. Any non-injected
/// exception propagates unchanged.
template <typename W>
typename W::Aggregate run_resilient_chunk(const typename W::Plan& plan,
                                          std::uint64_t base_seed,
                                          std::size_t chunk_index, Count begin,
                                          Count end) {
    auto attempt_chunk = [&](std::uint32_t attempt) {
        const ScopedChunkAttempt salt(attempt);
        FaultInjector* inj = FaultInjector::active();
        if (inj) inj->on_chunk_arena(chunk_index);
        typename W::Aggregate part;
        part.trials = end - begin;
        if constexpr (requires { W::reserve(part, Count{}); })
            W::reserve(part, end - begin);
        typename W::Arena arena(plan);
        Count i = begin;
        // Fused fast path: arenas that expose fused_active()/run_fused()
        // (the binary stack under `fused=true`) co-execute 64 trials per
        // word-parallel block, in index order, with the SAME index-derived
        // seeds the scalar loop below would use — so the chunk partial is
        // bit-identical either way and chunk identity (checkpoint/resume,
        // thread invariance) is untouched. The trailing `trials % 64`
        // remainder runs scalar. Disabled under an armed fault injector:
        // per-trial fault identity and chunk-retry recovery are defined on
        // the scalar path only.
        if constexpr (requires { arena.fused_active(); }) {
            if (!inj && arena.fused_active()) {
                std::uint64_t lane_seeds[64];
                typename W::Result lane_out[64];
                while (end - i >= 64) {
                    for (unsigned j = 0; j < 64; ++j)
                        lane_seeds[j] = mix64(base_seed + W::kSeedStride * (i + j));
                    arena.run_fused(lane_seeds, lane_out);
                    for (unsigned j = 0; j < 64; ++j) W::accumulate(part, lane_out[j]);
                    i += 64;
                }
            }
        }
        for (; i < end; ++i) {
            if (inj && inj->trial_faulted(i)) {
                typename W::Result faulted{};
                faulted.outcome = TrialOutcome::Faulted;
                W::accumulate(part, faulted);
                continue;
            }
            W::accumulate(part, arena.run(mix64(base_seed + W::kSeedStride * i)));
        }
        return part;
    };

    FaultInjector* inj = FaultInjector::active();
    const std::uint32_t max_attempts = inj ? inj->config().max_attempts : 1;
    for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
        try {
            return attempt_chunk(attempt);
        } catch (const InjectedFault&) {
            if (attempt + 1 >= max_attempts) break;
            inj->note_retry(attempt);
        }
    }
    // Every regular attempt faulted: last-resort degraded attempt. With
    // transient sites suppressed it cannot throw InjectedFault again, so
    // recovery terminates in a defined state by construction.
    inj->note_degraded();
    const ScopedDegradedChunk degraded;
    return attempt_chunk(max_attempts);
}

/// Checkpointed variant of the kernel loop: completed chunk partials are
/// journaled as they finish and recovered on --resume instead of re-run.
/// ALWAYS routes through detail::for_each_chunk — the parallel_reduce
/// serial fast path would collapse chunk boundaries and break the
/// journal's thread-count-invariant chunk identity.
template <typename W>
typename W::Aggregate run_journaled(const typename W::Plan& plan,
                                    std::uint64_t base_seed, Count trials,
                                    const ExecutorConfig& exec) {
    const Count chunk = exec.chunk ? exec.chunk : detail::auto_chunk(trials);
    const unsigned threads = exec.threads ? exec.threads : default_threads();
    CheckpointMeta meta;
    meta.workload = W::kName;
    meta.base_seed = base_seed;
    meta.seed_stride = W::kSeedStride;
    meta.trials = trials;
    meta.chunk = chunk;
    meta.scope = W::checkpoint_scope(plan);
    ChunkJournal journal(exec.checkpoint, meta, exec.resume);

    if (trials == 0) return typename W::Aggregate{};
    const std::size_t num_chunks =
        (static_cast<std::size_t>(trials) + chunk - 1) / chunk;
    std::vector<std::optional<typename W::Aggregate>> partials(num_chunks);
    for (const auto& [ci, payload] : journal.completed()) {
        ADBA_EXPECTS_MSG(ci < num_chunks,
                         "checkpoint journal record for chunk " + std::to_string(ci) +
                             " is beyond this sweep's " + std::to_string(num_chunks) +
                             " chunks");
        typename W::Aggregate agg;
        W::checkpoint_decode(payload, agg);
        const Count begin = static_cast<Count>(ci) * chunk;
        const Count end = std::min<Count>(trials, begin + chunk);
        ADBA_EXPECTS_MSG(agg.trials == end - begin,
                         "checkpoint journal chunk " + std::to_string(ci) +
                             " records " + std::to_string(agg.trials) +
                             " trials, expected " + std::to_string(end - begin));
        partials[ci].emplace(std::move(agg));
    }

    detail::for_each_chunk(
        trials, chunk, threads, [&](std::size_t ci, Count begin, Count end) {
            if (partials[ci]) return;  // recovered from the journal
            typename W::Aggregate part =
                run_resilient_chunk<W>(plan, base_seed, ci, begin, end);
            std::string payload;
            W::checkpoint_encode(part, payload);
            journal.append(ci, payload);
            partials[ci].emplace(std::move(part));
        });

    typename W::Aggregate out = std::move(*partials.front());
    for (std::size_t ci = 1; ci < num_chunks; ++ci) out.merge(*partials[ci]);
    return out;
}

/// THE Monte-Carlo executor loop. Per-trial seeds depend only on
/// (base_seed, trial index), chunk boundaries depend only on (trials,
/// chunk), chunks run their trials in index order through one pooled arena,
/// and partials merge in chunk-index order — so the aggregate is
/// bit-identical at any thread count, including serial. This is the only
/// pooled-arena chunk loop in src/sim/; workloads must not grow their own.
/// With ExecutorConfig::checkpoint set it becomes resumable (run_journaled);
/// either way each chunk runs under the fault-recovery contract of
/// run_resilient_chunk.
template <typename W>
typename W::Aggregate run_trials(const typename W::Plan& plan, std::uint64_t base_seed,
                                 Count trials, const ExecutorConfig& exec = {}) {
    if (!exec.checkpoint.empty())
        return run_journaled<W>(plan, base_seed, trials, exec);
    const Count chunk = exec.chunk ? exec.chunk : detail::auto_chunk(trials);
    return parallel_reduce<typename W::Aggregate>(
        trials, exec, [&](Count begin, Count end) {
            return run_resilient_chunk<W>(plan, base_seed, begin / chunk, begin, end);
        });
}

/// Scenario-level convenience: validate/hoist once, then run the kernel.
/// (Constrained away when the workload's scenario doubles as its plan —
/// the plan overload above then takes the scenario directly.)
template <typename W>
    requires(!std::is_same_v<typename W::Plan, typename W::Scenario>)
typename W::Aggregate run_trials(const typename W::Scenario& s, std::uint64_t base_seed,
                                 Count trials, const ExecutorConfig& exec = {}) {
    const typename W::Plan plan = W::make_plan(s);
    return run_trials<W>(plan, base_seed, trials, exec);
}

// ------------------------------------------------------- workload directory

/// Metadata for one registered workload — the `adba_sim --workload=` axis
/// and the capability table in README.md.
struct WorkloadInfo {
    std::string name;  ///< canonical CLI key: binary, coin, mv, macro
    std::vector<std::string> aliases;
    std::string scenario;   ///< scenario type, e.g. "Scenario"
    std::string grid;       ///< sweep grid type, or "-" when none
    std::string summary;    ///< one-line note for capability tables
};

/// The four built-in workloads, in kernel-registration order.
const std::vector<WorkloadInfo>& workloads();

/// Lookup by canonical name or alias (case-insensitive); nullptr if unknown.
const WorkloadInfo* find_workload(const std::string& name_or_alias);

/// Like find_workload but throws ContractViolation with the known-name list
/// and a did-you-mean suggestion for near misses.
const WorkloadInfo& workload_at(const std::string& name_or_alias);

}  // namespace adba::sim
