// Open protocol/adversary registries: the scenario layer's extension point.
//
// Every agreement protocol and every adversary strategy self-describes here
// with a capability descriptor — canonical name + aliases, resilience
// predicate `supports(n, t)`, strongest known adversary, schedule hook,
// default phase/round budgets, compatibility constraints — plus the factory
// that builds it for a trial. Runners, sweeps, benches, and the `adba_sim`
// driver select entries by string key, so adding a (protocol x adversary)
// combination is ONE registration call in one translation unit instead of a
// new enum value threaded through four switch statements.
//
// The built-in entries are registered by the registry constructors in
// registry.cpp (linker-safe for a static library). A plug-in translation
// unit extends the system with
//
//     static const auto& my_proto = adba::sim::ProtocolRegistry::instance().add({...});
//
// provided the object file is linked into the binary.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/fused_plane.hpp"
#include "sim/multivalued_runner.hpp"
#include "sim/runner.hpp"

namespace adba::sim {

/// What a protocol factory hands the engine: the node set (per-node form)
/// OR the native batch plane (batch form), plus the budgets and (optional)
/// committee schedule the adversary factories consume. Exactly one of
/// `nodes`/`batch` is populated, depending on which factory built it.
struct ProtocolBundle {
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    std::unique_ptr<net::BatchProtocol> batch;
    Round default_max_rounds = 0;
    Count phases = 0;
    std::optional<core::BlockSchedule> schedule;
};

/// Phase/round budgets a scenario would run with, computable without
/// building the node set (for `adba_sim` and capability listings).
struct BudgetHint {
    Count phases = 0;
    Round max_rounds = 0;
};

/// Capability descriptor + factory for one agreement protocol.
struct ProtocolEntry {
    ProtocolKind kind{};
    std::string name;     ///< canonical CLI key, e.g. "chor-coan-rushing"
    std::string display;  ///< table label, e.g. "chor-coan(rushing)"
    std::vector<std::string> aliases;
    std::string summary;     ///< one-line note for capability tables
    std::string resilience;  ///< human-readable bound, e.g. "t < n/4"

    /// Resilience predicate: can this protocol be instantiated at (n, t)?
    std::function<bool(NodeId, Count)> supports;

    /// The strongest implemented attack against this protocol.
    AdversaryKind strongest = AdversaryKind::None;

    /// Builds the node set for one trial.
    std::function<ProtocolBundle(const Scenario&, const std::vector<Bit>&,
                                 const SeedTree&)>
        make_nodes;

    /// Trial-reuse fast path: re-arms `bundle.nodes` (produced by an earlier
    /// make_nodes for the SAME scenario) for a new trial's inputs/seeds with
    /// zero allocation. Null = no pooling; the runner falls back to
    /// make_nodes each trial. Bundle metadata (phases, schedule, round
    /// budget) is scenario-only and stays valid across trials.
    std::function<void(const Scenario&, const std::vector<Bit>&, const SeedTree&,
                       ProtocolBundle&)>
        reinit_nodes;

    /// Committee schedule hook; null for protocols without one (their
    /// scenarios are incompatible with schedule-aware adversaries).
    std::function<core::BlockSchedule(const Scenario&)> schedule_of;

    /// Default phase/round budgets at the scenario's parameters.
    std::function<BudgetHint(const Scenario&)> budgets;

    /// Native SoA batch factory: fills a bundle whose `batch` steps the
    /// whole population under one dispatch per beat (bit-identical to
    /// make_nodes + the PerNodeBatch adapter, pinned by the equivalence
    /// suite). Null = no native batch; runners fall back to per-node.
    std::function<ProtocolBundle(const Scenario&, const std::vector<Bit>&,
                                 const SeedTree&)>
        make_batch;

    /// Trial-reuse fast path for the batch form (same contract as
    /// reinit_nodes, re-arming `bundle.batch` in place).
    std::function<void(const Scenario&, const std::vector<Bit>&, const SeedTree&,
                       ProtocolBundle&)>
        reinit_batch;

    /// The native batch answers its receive beat from sampled per-receiver
    /// counts (net/sparse_plane.hpp; scenario key `plane=sparse`). Mirrors
    /// BatchProtocol::supports_sparse for capability listings and the
    /// feasibility rules; implies make_batch != nullptr.
    bool supports_sparse = false;

    /// Word-parallel fused-plane factory (net/fused_plane.hpp; scenario key
    /// `fused`): builds the 64-lane FusedProtocol for this scenario's
    /// parameters once per arena; the arena re-arms it per block with the
    /// lane SeedTrees. Null = the protocol has no fused form (`fused=true`
    /// scenarios are rejected by why_incompatible). Lane j of a fused block
    /// is bit-identical to the scalar trial at lane j's index — the scalar
    /// path stays the oracle, as with `batch=` / `simd=` / `plane=`.
    std::function<std::unique_ptr<net::FusedProtocol>(const Scenario&)> make_fused;
};

/// Capability descriptor + factory for one adversary strategy.
struct AdversaryEntry {
    AdversaryKind kind{};
    std::string name;
    std::string display;
    std::vector<std::string> aliases;
    std::string summary;

    std::string adaptive = "no";  ///< "yes"/"no"/"-": corrupts based on the run
    std::string rushing = "no";   ///< "yes"/"no"/"-": acts after seeing a round

    /// Needs the protocol to expose a committee schedule (schedule-aware).
    bool needs_schedule = false;
    /// Only meaningful against one specific protocol (e.g. KingKiller).
    std::optional<ProtocolKind> requires_protocol;

    std::function<std::unique_ptr<net::Adversary>(const Scenario&,
                                                  const ProtocolBundle&,
                                                  const SeedTree&)>
        make_adversary;

    /// The strategy works against the fused plane's lane-masked
    /// RoundControl bridge (corrupt/split_as only, one pattern per sender
    /// per round, no deliver_as). False for strategies that need per-cell
    /// delivery or full-information transcripts; why_incompatible explains
    /// the rejection for `fused=true` scenarios.
    bool supports_fused = false;
};

/// Adversary strategies for the multi-valued (Turpin-Coan) stack.
struct MvAdversaryEntry {
    MvAdversaryKind kind{};
    std::string name;
    std::string display;
    std::vector<std::string> aliases;
    std::string summary;

    std::function<std::unique_ptr<net::Adversary>(const MvScenario&,
                                                  const core::MultiValuedParams&,
                                                  const SeedTree&)>
        make_adversary;
};

namespace detail {

/// Shared registry machinery: entries in registration order with stable
/// addresses, looked up by enum kind or by (case-insensitive) name/alias.
template <typename Entry, typename Kind>
class RegistryBase {
public:
    /// Registers an entry; throws ContractViolation on a name/alias clash.
    const Entry& add(Entry entry);

    /// Lookup by enum kind; throws when the kind was never registered.
    const Entry& at(Kind kind) const;
    /// Lookup by canonical name or alias; throws with the known-name list.
    const Entry& at(const std::string& name_or_alias) const;
    /// Like at(name) but returns nullptr instead of throwing.
    const Entry* find(const std::string& name_or_alias) const;

    /// All entries, in registration order (built-ins follow enum order).
    std::vector<const Entry*> list() const;

    /// Comma-separated canonical names, for error messages and usage text.
    std::string known_names() const;

protected:
    RegistryBase(std::string what) : what_(std::move(what)) {}

private:
    std::string what_;  ///< "protocol" / "adversary" — for error messages
    std::deque<Entry> entries_;
    std::map<std::string, const Entry*> by_name_;
};

}  // namespace detail

class ProtocolRegistry : public detail::RegistryBase<ProtocolEntry, ProtocolKind> {
public:
    static ProtocolRegistry& instance();

private:
    ProtocolRegistry();  ///< registers the built-in protocols
};

class AdversaryRegistry : public detail::RegistryBase<AdversaryEntry, AdversaryKind> {
public:
    static AdversaryRegistry& instance();

private:
    AdversaryRegistry();  ///< registers the built-in adversaries
};

class MvAdversaryRegistry
    : public detail::RegistryBase<MvAdversaryEntry, MvAdversaryKind> {
public:
    static MvAdversaryRegistry& instance();

private:
    MvAdversaryRegistry();
};

/// The registry entries a scenario resolves to once validated, plus the
/// validated scenario itself — the once-per-sweep product trial loops
/// capture so per-trial work never repeats validation or registry lookups.
struct ScenarioPlan {
    Scenario scenario;
    const ProtocolEntry* protocol = nullptr;
    const AdversaryEntry* adversary = nullptr;
};

/// The multi-valued analogue of ScenarioPlan: resolved mv-adversary entry
/// plus the (seed-independent) Turpin-Coan parameters and round cap, hoisted
/// once per sweep by validate(MvScenario).
struct MvScenarioPlan {
    MvScenario scenario;
    core::MultiValuedParams params;
    Round cap = 0;
    const MvAdversaryEntry* adversary = nullptr;
};

/// THE feasibility/compatibility rule set — the one place the repository
/// states them. Returns an actionable message when the scenario cannot run:
/// protocol resilience violated (`supports(n, t)` false), q > t, adversary
/// needs a committee schedule the protocol lacks, or the adversary targets a
/// different protocol.
std::optional<std::string> why_incompatible(const Scenario& s);

/// Multi-valued feasibility: the Turpin-Coan reduction needs t < n/3 and
/// q must not exceed the budget t.
std::optional<std::string> why_incompatible(const MvScenario& s);

/// True iff validate(s) would succeed. Sweep filters use this.
bool compatible(const Scenario& s);
bool compatible(const MvScenario& s);

/// Resolves and checks the scenario; throws ContractViolation with the
/// why_incompatible message on failure.
ScenarioPlan validate(const Scenario& s);

/// Resolves and checks the multi-valued scenario, hoisting the Turpin-Coan
/// parameters and round cap into the plan.
MvScenarioPlan validate(const MvScenario& s);

/// Name <-> enum helpers for the remaining scenario axes (throw with the
/// accepted-name list on unknown input).
InputPattern parse_input_pattern(const std::string& name);
MvInputPattern parse_mv_input_pattern(const std::string& name);

/// Delivery-plane key: "flat" -> false, "sparse" -> true; anything else
/// throws with the accepted values and a did-you-mean suggestion.
bool parse_plane_name(const std::string& name);

/// Sparse sample-stream key: "chain" (the frozen v1 derivation) or
/// "counter" (the batched v2 default); anything else throws with the
/// accepted values and a did-you-mean suggestion.
net::SparseStream parse_sparse_stream_name(const std::string& name);

/// Graceful degradation on resource limits (sim/faults.hpp owns the budget
/// value): estimates the scenario's per-trial arena footprint against the
/// process-wide memory budget. Within budget (or budget off): no change,
/// nullopt. Over budget on the flat plane with a sparse-capable
/// configuration (protocol supports_sparse, batch=on, simd=on,
/// reference=off): flips `s.sparse_plane = true` and returns the one-line
/// warning to print. Otherwise throws ContractViolation with an actionable
/// message (raise --mem_budget_mb / ADBA_MEM_BUDGET_MB, shrink n, or pick a
/// sparse-capable protocol) instead of letting the sweep OOM.
std::optional<std::string> apply_memory_budget(Scenario& s);

/// Multi-valued budget check: the Turpin-Coan stack has no sparse fallback,
/// so an over-budget plan is rejected (ContractViolation) — never adjusted.
void enforce_memory_budget(const MvScenario& s);

}  // namespace adba::sim
