// Macro-scale simulator for the asymptotic experiments (E4).
//
// The full-fidelity engine delivers n^2 messages per round, capping
// practical n at a few thousand — but the paper's headline separation
// (t^2 log n / n vs t / log n) only opens up numerically around n >= 2^16
// (DESIGN.md §2, substitution 3). This module simulates the SAME protocol
// semantics restricted to the regime the worst-case adversary actually
// induces from split inputs:
//
//   * no honest node ever passes a vote quorum while the adversary keeps
//     coins split, so every phase is: flip committee coins -> adversary
//     greedily corrupts majority-sign flippers until the equivocation
//     margin covers the honest sum (cost per ruined phase ~ ½ sqrt(s)) ->
//     split values re-balanced;
//   * the first un-ruinable phase produces a common coin, after which
//     quorum blocking is unaffordable (Lemma 2) and the run terminates two
//     phases later (Lemma 4).
//
// Per-phase work is O(committee size) instead of O(n^2) per round, reaching
// n = 2^20 comfortably. A calibration test asserts macro and micro agree on
// mean rounds at overlapping sizes.
#pragma once

#include <cstdint>
#include <string>

#include "core/params.hpp"
#include "sim/executor.hpp"
#include "support/stats.hpp"
#include "support/types.hpp"

namespace adba::sim {

enum class MacroScheduleKind : std::uint8_t { Ours, ChorCoanRushing, ChorCoanClassic };

struct MacroScenario {
    std::uint64_t n = 0;
    std::uint64_t t = 0;       ///< protocol budget (threshold parameter)
    std::uint64_t q = 0;       ///< actual adversary corruption cap
    MacroScheduleKind schedule = MacroScheduleKind::Ours;
    core::Tuning tuning;
};

struct MacroResult {
    std::uint64_t rounds = 0;
    std::uint64_t phases_run = 0;
    std::uint64_t corruptions = 0;
    bool agreement = false;
    std::uint64_t phase_budget = 0;
    std::uint64_t committee_size = 0;
};

MacroResult run_macro_trial(const MacroScenario& s, std::uint64_t seed);

/// Aggregate over macro trials — the macro analogue of sim::Aggregate, so
/// the asymptotic benches go through the same executor as the engine ones.
struct MacroAggregate {
    Count trials = 0;
    Count agreement_failures = 0;
    Samples rounds;
    Samples phases;
    Samples corruptions;

    /// Merge in chunk-index order (see Aggregate::merge).
    void merge(const MacroAggregate& other);
};

/// Parallel over the executor; per-trial seeds depend only on
/// (base_seed, index), so results are bit-identical at any thread count.
MacroAggregate run_macro_trials(const MacroScenario& s, std::uint64_t base_seed,
                                Count trials, const ExecutorConfig& exec = {});

std::string to_string(MacroScheduleKind k);

}  // namespace adba::sim
