// Macro-scale simulator for the asymptotic experiments (E4).
//
// The full-fidelity engine delivers n^2 messages per round, capping
// practical n at a few thousand — but the paper's headline separation
// (t^2 log n / n vs t / log n) only opens up numerically around n >= 2^16
// (DESIGN.md §2, substitution 3). This module simulates the SAME protocol
// semantics restricted to the regime the worst-case adversary actually
// induces from split inputs:
//
//   * no honest node ever passes a vote quorum while the adversary keeps
//     coins split, so every phase is: flip committee coins -> adversary
//     greedily corrupts majority-sign flippers until the equivocation
//     margin covers the honest sum (cost per ruined phase ~ ½ sqrt(s)) ->
//     split values re-balanced;
//   * the first un-ruinable phase produces a common coin, after which
//     quorum blocking is unaffordable (Lemma 2) and the run terminates two
//     phases later (Lemma 4).
//
// Per-phase work is O(committee size) instead of O(n^2) per round, reaching
// n = 2^20 comfortably. A calibration test asserts macro and micro agree on
// mean rounds at overlapping sizes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/params.hpp"
#include "sim/executor.hpp"
#include "sim/workload.hpp"
#include "support/stats.hpp"
#include "support/types.hpp"

namespace adba::sim {

enum class MacroScheduleKind : std::uint8_t { Ours, ChorCoanRushing, ChorCoanClassic };

struct MacroScenario {
    std::uint64_t n = 0;
    std::uint64_t t = 0;       ///< protocol budget (threshold parameter)
    std::uint64_t q = 0;       ///< actual adversary corruption cap
    MacroScheduleKind schedule = MacroScheduleKind::Ours;
    core::Tuning tuning;
};

struct MacroResult {
    std::uint64_t rounds = 0;
    std::uint64_t phases_run = 0;
    std::uint64_t corruptions = 0;
    bool agreement = false;
    std::uint64_t phase_budget = 0;
    std::uint64_t committee_size = 0;
    /// Decided when a phase produced the common coin within the budget;
    /// RoundCapExhausted when the phase budget ran dry (the macro analogue
    /// of hitting max_rounds); Faulted set by the trial kernel only.
    TrialOutcome outcome = TrialOutcome::Decided;
};

MacroResult run_macro_trial(const MacroScenario& s, std::uint64_t seed);

/// Aggregate over macro trials — the macro analogue of sim::Aggregate, so
/// the asymptotic benches go through the same executor as the engine ones.
struct MacroAggregate {
    Count trials = 0;
    Count agreement_failures = 0;
    /// Outcome taxonomy counters (see Aggregate in runner.hpp). The macro
    /// simulator has no watchdog (its trials are microseconds), so only
    /// budget exhaustion and injected faults occur.
    Count cap_exhausted = 0;
    Count faulted = 0;
    Samples rounds;
    Samples phases;
    Samples corruptions;

    /// Merge in chunk-index order (see Aggregate::merge).
    void merge(const MacroAggregate& other);
};

/// Macro workload: the asymptotic simulator as a workload.hpp trait. The
/// plan hoists the (seed-independent) committee schedule and phase budget.
struct MacroWorkload {
    using Scenario = MacroScenario;
    using Result = MacroResult;
    using Aggregate = MacroAggregate;
    struct Plan;   ///< schedule + phase budget, hoisted once (macro.cpp)
    class Arena;   ///< stateless beyond the plan reference (macro.cpp)
    static constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ULL;
    static constexpr const char* kName = "macro";

    static Plan make_plan(const Scenario& s);
    static void accumulate(Aggregate& agg, const Result& r);
    static void reserve(Aggregate& agg, Count trials) { agg.rounds.reserve(trials); }

    static std::vector<std::string> csv_header();
    static std::vector<std::string> csv_row(const Aggregate& agg);

    // Checkpoint hooks (sim/checkpoint.hpp). The scenario has no describe()
    // form, so the scope fingerprint is assembled field by field.
    static std::string checkpoint_scope(const Plan& plan);
    static void checkpoint_encode(const Aggregate& agg, std::string& out);
    static void checkpoint_decode(std::string_view bytes, Aggregate& agg);
};

/// Runs on the workload-generic kernel; per-trial seeds depend only on
/// (base_seed, index), so results are bit-identical at any thread count.
MacroAggregate run_macro_trials(const MacroScenario& s, std::uint64_t base_seed,
                                Count trials, const ExecutorConfig& exec = {});

std::string to_string(MacroScheduleKind k);

/// Name -> enum for the macro schedule axis (adba_sim --workload=macro);
/// accepts the to_string forms and bare ours / cc-rushing / cc-classic.
MacroScheduleKind parse_macro_schedule(const std::string& name);

/// Macro feasibility: 4 <= n <= 2^32 - 1, t < n/3, q <= t. Returns an
/// actionable message; make_plan throws it as a ContractViolation.
std::optional<std::string> why_incompatible(const MacroScenario& s);
bool compatible(const MacroScenario& s);

}  // namespace adba::sim
