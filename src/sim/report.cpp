#include "sim/report.hpp"

namespace adba::sim {

namespace {

/// The one schema: label column + the workload's columns, one row per
/// entry. `label_of`/`agg_of` read each entry in place — no aggregate
/// copies at CSV-write time.
template <typename W, typename Rows, typename LabelOf, typename AggOf>
Table build_table(const std::string& title, const Rows& rows, LabelOf label_of,
                  AggOf agg_of) {
    Table t(title);
    std::vector<std::string> header{"label"};
    const std::vector<std::string> cols = W::csv_header();
    header.insert(header.end(), cols.begin(), cols.end());
    t.set_header(std::move(header));
    for (const auto& entry : rows) {
        std::vector<std::string> row{label_of(entry)};
        const std::vector<std::string> vals = W::csv_row(agg_of(entry));
        row.insert(row.end(), vals.begin(), vals.end());
        t.add_row(std::move(row));
    }
    return t;
}

template <typename W, typename Outcome>
Table outcome_table(const std::string& title, const std::vector<Outcome>& outcomes) {
    return build_table<W>(
        title, outcomes, [](const Outcome& o) { return o.row.label; },
        [](const Outcome& o) -> const auto& { return o.agg; });
}

template <typename W>
Table pair_table(const std::string& title,
                 const std::vector<std::pair<std::string,
                                             typename W::Aggregate>>& rows) {
    using Pair = std::pair<std::string, typename W::Aggregate>;
    return build_table<W>(
        title, rows, [](const Pair& p) { return p.first; },
        [](const Pair& p) -> const auto& { return p.second; });
}

}  // namespace

Table sweep_csv_table(const std::string& title,
                      const std::vector<SweepOutcome>& outcomes) {
    return outcome_table<BinaryWorkload>(title, outcomes);
}

Table sweep_csv_table(const std::string& title,
                      const std::vector<CoinSweepOutcome>& outcomes) {
    return outcome_table<CoinWorkload>(title, outcomes);
}

Table sweep_csv_table(const std::string& title,
                      const std::vector<MvSweepOutcome>& outcomes) {
    return outcome_table<MvWorkload>(title, outcomes);
}

Table csv_table(const std::string& title,
                const std::vector<std::pair<std::string, Aggregate>>& rows) {
    return pair_table<BinaryWorkload>(title, rows);
}

Table csv_table(const std::string& title,
                const std::vector<std::pair<std::string, CoinAggregate>>& rows) {
    return pair_table<CoinWorkload>(title, rows);
}

Table csv_table(const std::string& title,
                const std::vector<std::pair<std::string, MvAggregate>>& rows) {
    return pair_table<MvWorkload>(title, rows);
}

Table csv_table(const std::string& title,
                const std::vector<std::pair<std::string, MacroAggregate>>& rows) {
    return pair_table<MacroWorkload>(title, rows);
}

}  // namespace adba::sim
