#include "sim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/faults.hpp"
#include "support/contracts.hpp"

namespace adba::sim {

namespace {
std::atomic<unsigned> g_default_threads{0};  // 0 = follow the hardware
std::atomic<int> g_default_intra{-1};        // -1 = consult ADBA_INTRA_THREADS
std::atomic<bool> g_intra_clamp_warned{false};
}  // namespace

unsigned hardware_threads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned default_threads() {
    const unsigned v = g_default_threads.load(std::memory_order_relaxed);
    return v ? v : hardware_threads();
}

void set_default_threads(unsigned threads) {
    g_default_threads.store(threads, std::memory_order_relaxed);
}

unsigned init_threads(const Cli& cli) {
    const std::int64_t raw =
        cli.get_int("threads", static_cast<std::int64_t>(hardware_threads()));
    ADBA_EXPECTS_MSG(raw >= 0, "--threads must be non-negative, got " +
                                   std::to_string(raw));
    auto threads = static_cast<unsigned>(raw);
    if (threads == 0) threads = 1;
    set_default_threads(threads);
    return threads;
}

unsigned default_intra_threads() {
    int v = g_default_intra.load(std::memory_order_relaxed);
    if (v < 0) {
        int from_env = 0;
        if (const char* e = std::getenv("ADBA_INTRA_THREADS"))
            from_env = std::max(0, std::atoi(e));
        g_default_intra.store(from_env, std::memory_order_relaxed);
        v = from_env;
    }
    return static_cast<unsigned>(v);
}

void set_default_intra_threads(unsigned shards) {
    g_default_intra.store(static_cast<int>(shards), std::memory_order_relaxed);
}

unsigned init_intra_threads(const Cli& cli) {
    const std::int64_t raw = cli.get_int(
        "intra_threads", static_cast<std::int64_t>(default_intra_threads()));
    ADBA_EXPECTS_MSG(raw >= 0, "--intra_threads must be non-negative, got " +
                                   std::to_string(raw));
    const auto shards = static_cast<unsigned>(raw);
    set_default_intra_threads(shards);
    return shards;
}

unsigned intra_worker_cap(unsigned pool_width) {
    return std::max(1u, hardware_threads() / std::max(1u, pool_width));
}

unsigned plan_intra_shards(Count requested, NodeId n) {
    // A degraded chunk (the trial kernel's last recovery attempt after
    // repeated injected faults) must not re-enter the concurrency layer it
    // is recovering from: force serial beats regardless of policy.
    if (in_degraded_chunk()) return 1;
    // Scenario files accept any Count, so an absurd request (billions of
    // logical shards) must not reach ShardPool, where every beat's claim
    // loop iterates shards_ times per thread. Anything past one shard per
    // plane word is empty ranges; the hardware multiple keeps the ceiling
    // above every sane explicit request (tests pin small verbatim values).
    const auto clamp_shards = [n](Count s) {
        const Count cap = std::max<Count>(
            static_cast<Count>(net::kern::word_count(n)),
            Count{8} * hardware_threads());
        return static_cast<unsigned>(std::min(s, cap));
    };
    if (requested > 0) return clamp_shards(requested);
    const unsigned dflt = default_intra_threads();
    if (dflt > 0) return clamp_shards(dflt);
    // Auto policy: sharding pays only when one trial is large (the barrier
    // costs microseconds per beat) and the trial pool leaves hardware idle
    // (cross-trial parallelism is embarrassingly parallel and always wins
    // when there are enough trials to feed it).
    if (n < 2048) return 1;
    const unsigned cap = intra_worker_cap(default_threads());
    if (cap <= 1) return 1;
    return std::min(8u, cap);
}

// -------------------------------------------------------------- ShardPool

ShardPool::ShardPool(unsigned shards, unsigned pool_width)
    : shards_(std::max(1u, shards)) {
    const unsigned cap = intra_worker_cap(pool_width);
    const unsigned threads = std::min(shards_, cap);
    if (threads < shards_ && cap < shards_ &&
        !g_intra_clamp_warned.exchange(true, std::memory_order_relaxed)) {
        std::fprintf(stderr,
                     "[adba] intra_threads clamped: %u shards share %u worker(s) "
                     "(pool %u x hardware %u)\n",
                     shards_, threads, pool_width, hardware_threads());
    }
    workers_.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ShardPool::~ShardPool() {
    {
        const std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ShardPool::drain(const std::function<void(unsigned, NodeId, NodeId)>& fn,
                      NodeId n) {
    while (true) {
        const unsigned s = next_shard_.fetch_add(1, std::memory_order_relaxed);
        if (s >= shards_) return;
        try {
            if (FaultInjector* inj = FaultInjector::active()) inj->on_shard_task(s);
            const auto [lo, hi] = net::kern::shard_node_range(n, s, shards_);
            fn(s, lo, hi);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mu_);
            if (!error_) error_ = std::current_exception();
        }
        {
            const std::lock_guard<std::mutex> lock(mu_);
            if (--remaining_ == 0) done_cv_.notify_all();
        }
    }
}

void ShardPool::worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
        const std::function<void(unsigned, NodeId, NodeId)>* job = nullptr;
        NodeId n = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            // A generation can complete (all shards drained by the other
            // participants) and disarm job_ before a notified worker ever
            // acquires the mutex. generation_ != seen alone would let that
            // stale worker bind the null job_ — or, once the next dispatch
            // has re-armed the cursor, consume a shard of a generation it
            // never saw. Requiring an armed job keeps it parked until the
            // next run_shards publishes job_ and generation_ together.
            work_cv_.wait(lock,
                          [&] { return stop_ || (generation_ != seen && job_ != nullptr); });
            if (stop_) return;
            seen = generation_;
            job = job_;
            n = n_;
            ++active_;
        }
        drain(*job, n);
        {
            const std::lock_guard<std::mutex> lock(mu_);
            // Quiescence: the caller returns only once no worker can touch
            // next_shard_ again, so the next dispatch's cursor reset never
            // races a stale fetch_add from this generation.
            if (--active_ == 0) done_cv_.notify_all();
        }
    }
}

void ShardPool::run_shards(NodeId n,
                           const std::function<void(unsigned, NodeId, NodeId)>& fn) {
    {
        const std::lock_guard<std::mutex> lock(mu_);
        job_ = &fn;
        n_ = n;
        remaining_ = shards_;
        error_ = nullptr;
        next_shard_.store(0, std::memory_order_relaxed);
        ++generation_;
    }
    work_cv_.notify_all();
    drain(fn, n);  // the calling thread participates
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [&] { return remaining_ == 0 && active_ == 0; });
        job_ = nullptr;
        err = error_;
        error_ = nullptr;
    }
    if (err) std::rethrow_exception(err);
}

namespace detail {

Count auto_chunk(Count trials) {
    // ~64 work units total keeps the pool balanced even when per-trial cost
    // varies (early termination vs budget-bound runs) without measurable
    // dispatch overhead; engine trials cost milliseconds each.
    return std::clamp<Count>(trials / 64, 1, 1024);
}

void for_each_chunk(Count trials, Count chunk, unsigned threads,
                    const std::function<void(std::size_t, Count, Count)>& body) {
    const std::size_t num_chunks =
        (static_cast<std::size_t>(trials) + chunk - 1) / chunk;
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto worker = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            const std::size_t ci = cursor.fetch_add(1, std::memory_order_relaxed);
            if (ci >= num_chunks) return;
            const Count begin = static_cast<Count>(ci) * chunk;
            const Count end = std::min<Count>(trials, begin + chunk);
            try {
                body(ci, begin, end);
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock(error_mu);
                    if (!first_error) first_error = std::current_exception();
                }
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    const unsigned pool = static_cast<unsigned>(
        std::min<std::size_t>(threads, num_chunks));
    std::vector<std::thread> workers;
    workers.reserve(pool > 0 ? pool - 1 : 0);
    for (unsigned i = 1; i < pool; ++i) workers.emplace_back(worker);
    worker();  // the calling thread participates
    for (auto& w : workers) w.join();
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

}  // namespace adba::sim
