#include "sim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "support/contracts.hpp"

namespace adba::sim {

namespace {
std::atomic<unsigned> g_default_threads{0};  // 0 = follow the hardware
}  // namespace

unsigned hardware_threads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned default_threads() {
    const unsigned v = g_default_threads.load(std::memory_order_relaxed);
    return v ? v : hardware_threads();
}

void set_default_threads(unsigned threads) {
    g_default_threads.store(threads, std::memory_order_relaxed);
}

unsigned init_threads(const Cli& cli) {
    const std::int64_t raw =
        cli.get_int("threads", static_cast<std::int64_t>(hardware_threads()));
    ADBA_EXPECTS_MSG(raw >= 0, "--threads must be non-negative, got " +
                                   std::to_string(raw));
    auto threads = static_cast<unsigned>(raw);
    if (threads == 0) threads = 1;
    set_default_threads(threads);
    return threads;
}

namespace detail {

Count auto_chunk(Count trials) {
    // ~64 work units total keeps the pool balanced even when per-trial cost
    // varies (early termination vs budget-bound runs) without measurable
    // dispatch overhead; engine trials cost milliseconds each.
    return std::clamp<Count>(trials / 64, 1, 1024);
}

void for_each_chunk(Count trials, Count chunk, unsigned threads,
                    const std::function<void(std::size_t, Count, Count)>& body) {
    const std::size_t num_chunks =
        (static_cast<std::size_t>(trials) + chunk - 1) / chunk;
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto worker = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            const std::size_t ci = cursor.fetch_add(1, std::memory_order_relaxed);
            if (ci >= num_chunks) return;
            const Count begin = static_cast<Count>(ci) * chunk;
            const Count end = std::min<Count>(trials, begin + chunk);
            try {
                body(ci, begin, end);
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock(error_mu);
                    if (!first_error) first_error = std::current_exception();
                }
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    const unsigned pool = static_cast<unsigned>(
        std::min<std::size_t>(threads, num_chunks));
    std::vector<std::thread> workers;
    workers.reserve(pool > 0 ? pool - 1 : 0);
    for (unsigned i = 1; i < pool; ++i) workers.emplace_back(worker);
    worker();  // the calling thread participates
    for (auto& w : workers) w.join();
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

}  // namespace adba::sim
