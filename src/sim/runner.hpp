// Trial runner: wires a protocol, an adversary, and an input pattern into
// the engine and aggregates outcomes over seeds. Every experiment binary and
// most tests go through this layer, so a scenario is a pure value and a
// trial a pure function of (scenario, seed).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/params.hpp"
#include "net/engine.hpp"
#include "sim/executor.hpp"
#include "sim/inputs.hpp"
#include "sim/workload.hpp"
#include "support/stats.hpp"
#include "support/types.hpp"

namespace adba::sim {

enum class ProtocolKind : std::uint8_t {
    Ours,              ///< Algorithm 3, w.h.p. fixed phases (Theorem 2)
    OursLasVegas,      ///< Algorithm 3, Las Vegas variant (§3.2)
    ChorCoanRushing,   ///< rushing-hardened Chor-Coan (footnote 3 comparator)
    ChorCoanClassic,   ///< historic Θ(log n)-group Chor-Coan
    RabinDealer,       ///< trusted-dealer shared coin (ideal reference)
    LocalCoin,         ///< skeleton with private coins (ablation)
    BenOr,             ///< Ben-Or 1983 proper (t < n/5, private coins)
    PhaseKing,         ///< deterministic 2(t+1)-round baseline (t < n/4)
    SamplingMajority,  ///< APR 2013 sampling-majority drift protocol (§1.3)
};

enum class AdversaryKind : std::uint8_t {
    None,
    Static,             ///< static random set, split-vote behaviour
    SplitVote,          ///< static set, threshold-straddling equivocation
    Chaos,              ///< random corruptions, fuzzed messages
    CrashRandom,        ///< adaptive random crash faults
    CrashTargetedCoin,  ///< BJBO-style adaptive crash attack on the coin
    WorstCase,          ///< schedule-aware rushing attack (the paper's model)
    KingKiller,         ///< adaptive king corruption (Phase-King only)
    Balancer,           ///< drift-cancelling attack (sampling-majority, E11)
};

struct Scenario {
    NodeId n = 0;
    Count t = 0;            ///< protocol fault tolerance / engine budget
    std::optional<Count> q; ///< actual corruptions cap (default: t)
    ProtocolKind protocol = ProtocolKind::Ours;
    AdversaryKind adversary = AdversaryKind::WorstCase;
    InputPattern inputs = InputPattern::Split;
    core::Tuning tuning;
    Count local_coin_phases = 64;      ///< phase budget for LocalCoin / BenOr
    double sampling_kappa = 4.0;       ///< SamplingMajority round budget knob
    Round max_rounds_override = 0;     ///< 0 = protocol-derived default
    bool record_transcript = false;
    /// Drive the engine's reference delivery path (virtual dispatch,
    /// per-sender tally loops) instead of the flat plane. Semantics are
    /// identical — the equivalence tests pin this — but markedly slower;
    /// exists for oracle comparisons and debugging.
    bool reference_delivery = false;
    /// Step the protocol through its native SoA batch plane when the
    /// registry entry provides one (scenario key `batch`, CLI `--batch`).
    /// `batch=false` forces the per-node adapter — the reference protocol
    /// stepping the native batches are pinned against. Orthogonal to
    /// `reference`, which selects the delivery probing path.
    bool use_batch = true;
    /// Allow intra-trial sharding of the engine beats (scenario key `shard`,
    /// CLI `--shard`). Effective only for native batches (they are the
    /// shardable ones) and when the policy resolves to >1 shard; `shard=off`
    /// pins the serial whole-population beats — the stepping oracle for the
    /// sharded path.
    bool use_shard = true;
    /// Build round tallies with the word-packed popcount kernels (scenario
    /// key `simd`, CLI `--simd`); `simd=off` keeps the scalar byte-plane
    /// build — the tally oracle the packed kernels are pinned against.
    bool use_simd = true;
    /// Intra-trial logical shard count (scenario key `intra_threads`).
    /// 0 = policy default: the process-wide `--intra_threads` /
    /// ADBA_INTRA_THREADS setting, else the auto heuristic
    /// (plan_intra_shards). Any value yields bit-identical results; only
    /// wall-clock changes.
    Count intra_threads = 0;
    /// Answer receive beats from the sampled sparse delivery plane
    /// (net/sparse_plane.hpp; scenario key `plane=flat|sparse`, CLI
    /// `--plane`). Requires a sparse-capable native batch, `batch=on`,
    /// `simd=on`, and `reference=off` — why_incompatible states the rule.
    /// With `sample_degree >= n` the sparse plane is bit-identical to flat
    /// (the dense oracle mode the equivalence tests pin).
    bool sparse_plane = false;
    /// Per-receiver sampled senders per broadcast under `plane=sparse`
    /// (scenario key `sample_degree`). 0 = the plane's built-in default
    /// (net::kDefaultSampleDegree); ignored under `plane=flat`.
    Count sample_degree = 0;
    /// Topology-stream selector under `plane=sparse` (scenario key
    /// `sparse_seed`, CLI `--sparse_seed`): the SeedTree child index of the
    /// SparseTopology stream, so a recorded sparse experiment can vary its
    /// sampled topology independently of every other randomness source.
    /// 0 (the default) reproduces the pre-key stream exactly.
    std::uint64_t sparse_seed = 0;
    /// Frozen sample-derivation version under `plane=sparse` (scenario key
    /// `sparse_stream=chain|counter`; net/sparse_kernels.hpp). Counter is
    /// the batched default; chain replays PR-7-era recorded experiments.
    net::SparseStream sparse_stream = net::SparseStream::Counter;
    /// Co-execute 64 trials per machine word through the fused trial plane
    /// (net/fused_plane.hpp; scenario key `fused`, CLI `--fused`). Requires
    /// a fused-capable protocol and adversary (registry capability flags),
    /// `batch=on`, `plane=flat`, `reference=off`, no transcript, and
    /// `watchdog_ms=0` — why_incompatible states each rule. Aggregates are
    /// bit-identical to the scalar path at any thread count; trial chunks
    /// split into whole 64-lane blocks plus a scalar remainder, so
    /// checkpoint/resume identity is preserved.
    bool use_fused = false;
    /// Per-trial wall-clock watchdog in milliseconds (scenario key
    /// `watchdog_ms`, CLI `--watchdog_ms`); 0 = off. Guards the Las Vegas
    /// variants' unbounded round tail: a trial past the deadline stops with
    /// TrialOutcome::WatchdogTimeout instead of spinning toward the
    /// registry's generous round cap. Wall-clock dependent by design, so
    /// armed sweeps are NOT bit-reproducible — leave it off for recorded
    /// experiments.
    std::uint32_t watchdog_ms = 0;

    /// Builds a scenario from a `key=value ...` spec string, resolving
    /// protocol/adversary/input names through the registries (registry.hpp).
    /// Keys: protocol, adversary, inputs, n, t, q, alpha, gamma, beta,
    /// phases, kappa, max_rounds, transcript, reference, batch, shard,
    /// simd, intra_threads, plane, sample_degree, sparse_seed,
    /// sparse_stream, fused, watchdog_ms. Unknown keys or names throw
    /// ContractViolation with the accepted alternatives.
    static Scenario parse(const std::string& spec);

    /// Canonical spec string; `Scenario::parse(s.describe()) == s`.
    std::string describe() const;

    friend bool operator==(const Scenario&, const Scenario&) = default;
};

struct TrialResult {
    bool agreement = false;
    std::optional<Bit> agreed_value;
    /// Validity check: inputs unanimous -> output must equal that input.
    bool validity_applicable = false;
    bool validity_ok = true;
    bool all_halted = false;
    Round rounds = 0;
    /// How the trial ended (support/types.hpp). Engine-reported for real
    /// runs; the trial kernel sets Faulted for trials consumed by an
    /// injected permanent fault, whose other fields are value-initialized
    /// and excluded from every sample/ratio by accumulate().
    TrialOutcome outcome = TrialOutcome::Decided;
    net::Metrics metrics;
    Count phases_configured = 0;  ///< protocol phase budget actually used
};

struct ScenarioPlan;  // resolved registry entries; defined in sim/registry.hpp

/// Runs one trial; pure function of (scenario, seed).
TrialResult run_trial(const Scenario& s, std::uint64_t seed);

/// Runs one trial against a pre-validated plan — no registry lookups or
/// feasibility checks on the hot path. Bit-identical to run_trial(s, seed).
TrialResult run_trial(const ScenarioPlan& plan, std::uint64_t seed);

/// Aggregate over `trials` seeds derived from base_seed.
struct Aggregate {
    Samples rounds;
    Samples messages;
    Samples bits;
    Samples corruptions;
    Count trials = 0;
    Count agreement_failures = 0;
    Count validity_failures = 0;
    Count not_halted = 0;
    /// Outcome taxonomy counters (support/types.hpp). Every non-Decided
    /// trial lands in exactly one of these; `trials` counts all of them, so
    /// decided = trials - cap_exhausted - watchdog_timeouts - faulted.
    /// Exhausted/timed-out trials still contribute rounds/messages samples
    /// (their cost is real and their non-agreement is already counted);
    /// faulted trials ran nothing and contribute only their count.
    Count cap_exhausted = 0;
    Count watchdog_timeouts = 0;
    Count faulted = 0;

    /// Folds a later index range's partial in (order matters: merge partials
    /// in chunk-index order for serial-identical Samples buffers).
    void merge(const Aggregate& other);
};

/// Binary-engine workload: the full-fidelity (protocol x adversary) trial
/// stack as a workload.hpp trait. run_trials(Scenario, ...) below is the
/// untemplated face of run_trials<BinaryWorkload>.
struct BinaryWorkload {
    using Scenario = sim::Scenario;
    using Result = TrialResult;
    using Aggregate = sim::Aggregate;
    using Plan = ScenarioPlan;
    class Arena;  ///< pooled engine + node set + input buffer (runner.cpp)
    static constexpr std::uint64_t kSeedStride = 0x100000001b3ULL;
    static constexpr const char* kName = "binary";

    /// validate(s) + apply_memory_budget(s), once per sweep. Under an active
    /// memory budget (sim/faults.hpp) an over-budget flat plan auto-falls
    /// back to the sparse plane (one stderr warning) or is rejected with an
    /// actionable ContractViolation — never an OOM kill mid-sweep.
    static Plan make_plan(const Scenario& s);
    static void accumulate(Aggregate& agg, const Result& r);
    static void reserve(Aggregate& agg, Count trials) { agg.rounds.reserve(trials); }

    static std::vector<std::string> csv_header();
    static std::vector<std::string> csv_row(const Aggregate& agg);

    // Checkpoint hooks (sim/checkpoint.hpp): the journal header pins the
    // full canonical scenario string, and chunk partials round-trip through
    // a byte-exact encoding (raw IEEE bits, Samples order preserved).
    static std::string checkpoint_scope(const Plan& plan);
    static void checkpoint_encode(const Aggregate& agg, std::string& out);
    static void checkpoint_decode(std::string_view bytes, Aggregate& agg);
};

/// Runs on the workload-generic kernel (sim/workload.hpp): the scenario is
/// validated ONCE and each executor chunk runs its trials through a pooled
/// arena (one engine + one node set + one input buffer, re-armed per trial),
/// so the Monte-Carlo loop does no per-trial allocation or registry work.
/// Bit-identical to calling run_trial(s, seed) per index, at any thread
/// count including the serial `exec.threads = 1`.
Aggregate run_trials(const Scenario& s, std::uint64_t base_seed, Count trials,
                     const ExecutorConfig& exec = {});

std::string to_string(ProtocolKind k);
std::string to_string(AdversaryKind k);

/// The committee/group schedule the given scenario's protocol uses (for
/// schedule-aware adversaries); nullopt for protocols without one.
std::optional<core::BlockSchedule> schedule_of(const Scenario& s);

}  // namespace adba::sim
