#include "sim/faults.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "rand/rng.hpp"
#include "support/cli.hpp"
#include "support/contracts.hpp"

namespace adba::sim {

namespace {

// Thread-local recovery state set by the trial kernel (workload.hpp).
thread_local std::uint32_t t_chunk_attempt = 0;
thread_local bool t_degraded_chunk = false;

// The armed process-wide injector. A plain owning pointer swapped only by
// arm()/disarm(), which the contract forbids calling concurrently with
// running trials; sites read it through active() on every visit.
std::unique_ptr<FaultInjector> g_injector;

// Site tags folded into the decision hash so distinct fault kinds at the
// same indices draw independent coins.
enum : std::uint64_t {
    kSiteShardDeath = 0x51,
    kSiteStall = 0x52,
    kSiteAlloc = 0x53,
    kSiteBeat = 0x54,
    kSiteTrial = 0x55,
};

void split_tokens(const std::string& spec, std::vector<std::string>& out) {
    std::string cur;
    for (char c : spec) {
        if (c == ' ' || c == '\t' || c == '\n' || c == ',') {
            if (!cur.empty()) out.push_back(std::move(cur)), cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty()) out.push_back(std::move(cur));
}

double parse_rate(const std::string& key, const std::string& v) {
    std::size_t pos = 0;
    double r = 0.0;
    try {
        r = std::stod(v, &pos);
    } catch (const std::exception&) {
        pos = std::string::npos;
    }
    ADBA_EXPECTS_MSG(pos == v.size() && r >= 0.0 && r <= 1.0,
                     "fault key '" + key + "' wants a rate in [0,1], got '" + v + "'");
    return r;
}

std::uint64_t parse_u64_value(const std::string& key, const std::string& v) {
    std::size_t pos = 0;
    unsigned long long r = 0;
    try {
        r = std::stoull(v, &pos);
    } catch (const std::exception&) {
        pos = std::string::npos;
    }
    ADBA_EXPECTS_MSG(pos == v.size(),
                     "fault key '" + key + "' wants an unsigned integer, got '" + v + "'");
    return static_cast<std::uint64_t>(r);
}

std::int64_t parse_i64_value(const std::string& key, const std::string& v) {
    std::size_t pos = 0;
    long long r = 0;
    try {
        r = std::stoll(v, &pos);
    } catch (const std::exception&) {
        pos = std::string::npos;
    }
    ADBA_EXPECTS_MSG(pos == v.size(),
                     "fault key '" + key + "' wants an integer, got '" + v + "'");
    return static_cast<std::int64_t>(r);
}

void append_rate(std::ostringstream& os, const char* key, double rate) {
    // Round-trippable rate formatting: max_digits10 keeps parse(describe())
    // exact for every representable double.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", rate);
    os << ' ' << key << '=' << buf;
}

}  // namespace

FaultConfig FaultConfig::parse(const std::string& spec) {
    FaultConfig c;
    std::vector<std::string> tokens;
    split_tokens(spec, tokens);
    for (const std::string& tok : tokens) {
        auto eq = tok.find('=');
        ADBA_EXPECTS_MSG(eq != std::string::npos && eq > 0,
                         "fault spec token '" + tok + "' is not key=value");
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        if (key == "seed") {
            c.seed = parse_u64_value(key, val);
        } else if (key == "shard_death") {
            c.shard_death = parse_rate(key, val);
        } else if (key == "shard_death_shard") {
            c.shard_death_shard = parse_i64_value(key, val);
        } else if (key == "stall_rate") {
            c.stall_rate = parse_rate(key, val);
        } else if (key == "stall_ms") {
            c.stall_ms = static_cast<std::uint32_t>(parse_u64_value(key, val));
        } else if (key == "alloc_rate") {
            c.alloc_rate = parse_rate(key, val);
        } else if (key == "trial_rate") {
            c.trial_rate = parse_rate(key, val);
        } else if (key == "beat_delay_rate") {
            c.beat_delay_rate = parse_rate(key, val);
        } else if (key == "beat_delay_ms") {
            c.beat_delay_ms = static_cast<std::uint32_t>(parse_u64_value(key, val));
        } else if (key == "max_attempts") {
            c.max_attempts = static_cast<std::uint32_t>(parse_u64_value(key, val));
            ADBA_EXPECTS_MSG(c.max_attempts >= 1, "max_attempts must be >= 1");
        } else {
            ADBA_EXPECTS_MSG(false,
                             "unknown fault key '" + key +
                                 "' (known: seed shard_death shard_death_shard "
                                 "stall_rate stall_ms alloc_rate trial_rate "
                                 "beat_delay_rate beat_delay_ms max_attempts)");
        }
    }
    return c;
}

std::string FaultConfig::describe() const {
    std::ostringstream os;
    os << "seed=" << seed;
    if (shard_death > 0.0) append_rate(os, "shard_death", shard_death);
    if (shard_death_shard >= 0) os << " shard_death_shard=" << shard_death_shard;
    if (stall_rate > 0.0) append_rate(os, "stall_rate", stall_rate);
    if (stall_ms != 0) os << " stall_ms=" << stall_ms;
    if (alloc_rate > 0.0) append_rate(os, "alloc_rate", alloc_rate);
    if (trial_rate > 0.0) append_rate(os, "trial_rate", trial_rate);
    if (beat_delay_rate > 0.0) append_rate(os, "beat_delay_rate", beat_delay_rate);
    if (beat_delay_ms != 0) os << " beat_delay_ms=" << beat_delay_ms;
    if (max_attempts != 3) os << " max_attempts=" << max_attempts;
    return os.str();
}

void FaultInjector::arm(const FaultConfig& cfg) {
    g_injector.reset(new FaultInjector(cfg));
}

void FaultInjector::disarm() { g_injector.reset(); }

FaultInjector* FaultInjector::active() { return g_injector.get(); }

bool FaultInjector::decide(double rate, std::uint64_t site, std::uint64_t a,
                           std::uint64_t b) const {
    if (rate <= 0.0) return false;
    if (rate >= 1.0) return true;
    std::uint64_t h = mix64(cfg_.seed ^ mix64(site * 0x9e3779b97f4a7c15ULL ^ a) ^
                            mix64(b + 0x2545f4914f6cdd1dULL));
    // 53 uniform mantissa bits -> [0, 1).
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < rate;
}

void FaultInjector::on_shard_task(unsigned shard) {
    if (t_degraded_chunk) return;
    const std::uint64_t attempt = t_chunk_attempt;
    if (cfg_.stall_rate > 0.0 &&
        decide(cfg_.stall_rate, kSiteStall, shard, attempt)) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.stall_ms));
    }
    if (cfg_.shard_death > 0.0 &&
        (cfg_.shard_death_shard < 0 ||
         cfg_.shard_death_shard == static_cast<std::int64_t>(shard)) &&
        decide(cfg_.shard_death, kSiteShardDeath, shard, attempt)) {
        shard_deaths_.fetch_add(1, std::memory_order_relaxed);
        throw InjectedFault(InjectedFault::Site::ShardTask,
                            "injected worker death in shard " + std::to_string(shard));
    }
}

void FaultInjector::on_chunk_arena(std::size_t chunk_index) {
    if (t_degraded_chunk) return;
    if (cfg_.alloc_rate > 0.0 &&
        decide(cfg_.alloc_rate, kSiteAlloc, chunk_index, t_chunk_attempt)) {
        alloc_failures_.fetch_add(1, std::memory_order_relaxed);
        throw InjectedFault(
            InjectedFault::Site::ChunkArena,
            "injected arena allocation failure in chunk " + std::to_string(chunk_index));
    }
}

void FaultInjector::on_beat(Round round) {
    if (t_degraded_chunk) return;
    if (cfg_.beat_delay_rate > 0.0 &&
        decide(cfg_.beat_delay_rate, kSiteBeat, round, t_chunk_attempt)) {
        beat_delays_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.beat_delay_ms));
    }
}

bool FaultInjector::trial_faulted(Count index) {
    // Deliberately NOT suppressed in degraded chunks and NOT attempt-salted:
    // a permanent fault consumes the same trials under any recovery path,
    // which is what keeps armed aggregates thread-count invariant.
    if (cfg_.trial_rate <= 0.0) return false;
    if (!decide(cfg_.trial_rate, kSiteTrial, index, 0)) return false;
    trial_faults_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void FaultInjector::note_retry(std::uint32_t attempt) {
    chunk_retries_.fetch_add(1, std::memory_order_relaxed);
    // Bounded exponential backoff: 1ms, 2ms, 4ms, ... capped at 16ms — enough
    // to let a transient (a stalled sibling, a momentary allocation spike)
    // clear without turning recovery into a second watchdog problem.
    const std::uint32_t ms = 1u << std::min(attempt, 4u);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void FaultInjector::note_degraded() {
    degraded_chunks_.fetch_add(1, std::memory_order_relaxed);
}

FaultStats FaultInjector::stats() {
    FaultStats s;
    if (const FaultInjector* inj = g_injector.get()) {
        s.shard_deaths = inj->shard_deaths_.load(std::memory_order_relaxed);
        s.stalls = inj->stalls_.load(std::memory_order_relaxed);
        s.alloc_failures = inj->alloc_failures_.load(std::memory_order_relaxed);
        s.beat_delays = inj->beat_delays_.load(std::memory_order_relaxed);
        s.trial_faults = inj->trial_faults_.load(std::memory_order_relaxed);
        s.chunk_retries = inj->chunk_retries_.load(std::memory_order_relaxed);
        s.degraded_chunks = inj->degraded_chunks_.load(std::memory_order_relaxed);
    }
    return s;
}

std::string FaultInjector::stats_line() {
    const FaultStats s = stats();
    std::ostringstream os;
    os << "faults: " << s.shard_deaths << " shard-deaths, " << s.stalls
       << " stalls, " << s.alloc_failures << " alloc-failures, " << s.beat_delays
       << " beat-delays, " << s.trial_faults << " trial-faults, "
       << s.chunk_retries << " chunk-retries, " << s.degraded_chunks
       << " degraded-chunks";
    return os.str();
}

bool init_faults(const Cli& cli) {
    const std::string spec = cli.get("faults", "");
    if (spec.empty()) {
        FaultInjector::disarm();
        return false;
    }
    FaultInjector::arm(FaultConfig::parse(spec));
    return true;
}

ScopedChunkAttempt::ScopedChunkAttempt(std::uint32_t attempt)
    : previous_(t_chunk_attempt) {
    t_chunk_attempt = attempt;
}

ScopedChunkAttempt::~ScopedChunkAttempt() { t_chunk_attempt = previous_; }

ScopedDegradedChunk::ScopedDegradedChunk() { t_degraded_chunk = true; }

ScopedDegradedChunk::~ScopedDegradedChunk() { t_degraded_chunk = false; }

bool in_degraded_chunk() { return t_degraded_chunk; }

// ------------------------------------------------------------ memory budget

namespace {

std::uint64_t g_mem_budget_mb = ~0ULL;  // ~0 = "not resolved yet"

std::uint64_t env_mem_budget_mb() {
    if (const char* env = std::getenv("ADBA_MEM_BUDGET_MB")) {
        char* end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end && *end == '\0') return static_cast<std::uint64_t>(v);
        std::fprintf(stderr,
                     "adba: ignoring unparsable ADBA_MEM_BUDGET_MB='%s'\n", env);
    }
    return 0;
}

}  // namespace

std::uint64_t default_mem_budget_mb() {
    if (g_mem_budget_mb == ~0ULL) g_mem_budget_mb = env_mem_budget_mb();
    return g_mem_budget_mb;
}

void set_default_mem_budget_mb(std::uint64_t mb) { g_mem_budget_mb = mb; }

std::uint64_t init_mem_budget(const Cli& cli) {
    const std::int64_t mb = cli.get_int("mem_budget_mb", -1);
    if (mb >= 0) set_default_mem_budget_mb(static_cast<std::uint64_t>(mb));
    return default_mem_budget_mb();
}

std::uint64_t estimate_trial_arena_bytes(NodeId n, bool sparse_plane) {
    const std::uint64_t N = n;
    // Both modes carry the per-node protocol/engine state planes (state
    // bytes, halted/honesty bitplanes, outputs, tally delta caches, metrics
    // scratch) — modelled together as a flat per-node overhead.
    constexpr std::uint64_t kPerNodeCommon = 8;
    // Flat mode additionally owns the n-cell Message broadcast plane, the
    // packed tally planes and the dense Byzantine delta rows (~sizeof(Message)
    // + packed words + caches ≈ 56 B/node, rounded up — a deliberately
    // conservative model so the budget trips BEFORE the allocator does).
    constexpr std::uint64_t kPerNodeFlat = 56;
    // Sparse mode replaces the Message cells with ~3 bit planes plus a 2-bit
    // code plane per versioned stream and per-receiver sampled views
    // (~16 B/node conservative).
    constexpr std::uint64_t kPerNodeSparse = 16;
    constexpr std::uint64_t kFixed = 1ULL << 20;  // pools, vectors, slack
    return kFixed + N * (kPerNodeCommon + (sparse_plane ? kPerNodeSparse : kPerNodeFlat));
}

}  // namespace adba::sim
