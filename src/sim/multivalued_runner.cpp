#include "sim/multivalued_runner.hpp"

#include <memory>
#include <vector>

#include "net/engine.hpp"
#include "rand/seed_tree.hpp"
#include "sim/checkpoint.hpp"
#include "sim/faults.hpp"
#include "sim/registry.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace adba::sim {

namespace {

void make_mv_inputs(MvInputPattern pattern, NodeId n, const SeedTree& seeds,
                    std::vector<net::Word>& inputs) {
    inputs.assign(n, 0);
    switch (pattern) {
        case MvInputPattern::AllSame:
            inputs.assign(n, 0xCAFE);
            break;
        case MvInputPattern::TwoBlocks:
            for (NodeId v = 0; v < n; ++v) inputs[v] = v < n / 2 ? 0xAAAA : 0xBBBB;
            break;
        case MvInputPattern::Distinct:
            for (NodeId v = 0; v < n; ++v) inputs[v] = 0x1000u + v;
            break;
        case MvInputPattern::RandomTiny: {
            auto rng = seeds.stream(StreamPurpose::InputAssignment);
            for (NodeId v = 0; v < n; ++v)
                inputs[v] = static_cast<net::Word>(rng.below(4));
            break;
        }
        case MvInputPattern::NearQuorum: {
            const auto share = static_cast<NodeId>((6 * static_cast<std::uint64_t>(n) + 9) / 10);
            for (NodeId v = 0; v < n; ++v)
                inputs[v] = v < share ? 0xAAAA : 0x2000u + v;
            break;
        }
    }
}

}  // namespace

/// Per-chunk reusable mv-trial state (pooled Turpin-Coan nodes + engine);
/// run() is bit-identical to the one-shot run_mv_trial path.
class MvWorkload::Arena {
public:
    explicit Arena(const MvScenarioPlan& plan) : plan_(plan) {}

    MvTrialResult run(std::uint64_t seed) {
        const MvScenario& s = plan_.scenario;
        const SeedTree seeds(seed);
        make_mv_inputs(s.inputs, s.n, seeds, inputs_);
        const auto& inputs = inputs_;

        if (nodes_.empty()) {
            nodes_ = core::make_turpin_coan_nodes(plan_.params, inputs, seeds);
        } else {
            core::reinit_turpin_coan_nodes(plan_.params, inputs, seeds, nodes_);
        }
        raw_.clear();
        raw_.reserve(s.n);
        for (const auto& p : nodes_)
            raw_.push_back(static_cast<const core::TurpinCoanNode*>(p.get()));
        const auto& raw = raw_;

        auto adversary = plan_.adversary->make_adversary(s, plan_.params, seeds);
        net::EngineConfig cfg;
        cfg.n = s.n;
        cfg.budget = s.t;
        cfg.max_rounds = plan_.cap;
        cfg.reference_delivery = s.reference_delivery;
        cfg.simd_tally = s.use_simd;
        cfg.watchdog_ms = s.watchdog_ms;
        if (FaultInjector* inj = FaultInjector::active();
            inj && inj->config().beat_delay_rate > 0.0)
            cfg.beat_probe = [inj](Round r) { inj->on_beat(r); };
        if (engine_) {
            engine_->reset(cfg, std::move(nodes_), *adversary);
        } else {
            engine_.emplace(cfg, std::move(nodes_), *adversary);
        }
        const net::RunResult run = engine_->run();
        nodes_ = engine_->take_nodes();

        MvTrialResult res;
        res.rounds = run.rounds;
        res.all_halted = run.all_halted;
        res.outcome = run.outcome;
        res.agreement = true;
        std::optional<net::Word> seen;
        bool any_real = false;
        for (NodeId v = 0; v < s.n; ++v) {
            if (!run.honest[v]) continue;
            const net::Word w = raw[v]->output_word();
            any_real = any_real || raw[v]->decided_real_value();
            if (!seen) {
                seen = w;
            } else if (*seen != w) {
                res.agreement = false;
            }
        }
        res.agreed_word = res.agreement ? seen : std::nullopt;
        res.decided_real = any_real;

        bool unanimous = true;
        for (const auto w : inputs) unanimous = unanimous && w == inputs.front();
        res.validity_applicable = unanimous;
        res.validity_ok = !unanimous || (res.agreement && res.agreed_word &&
                                         *res.agreed_word == inputs.front());
        return res;
    }

private:
    const MvScenarioPlan& plan_;
    std::vector<net::Word> inputs_;
    std::vector<const core::TurpinCoanNode*> raw_;
    std::vector<std::unique_ptr<net::HonestNode>> nodes_;
    std::optional<net::Engine> engine_;
};

MvScenarioPlan MvWorkload::make_plan(const MvScenario& s) {
    enforce_memory_budget(s);
    return validate(s);
}

void MvWorkload::accumulate(MvAggregate& agg, const MvTrialResult& r) {
    if (r.outcome == TrialOutcome::Faulted) {
        ++agg.faulted;
        return;
    }
    if (!r.agreement) ++agg.agreement_failures;
    if (!r.validity_ok) ++agg.validity_failures;
    if (!r.all_halted) ++agg.not_halted;
    if (r.decided_real) ++agg.decided_real;
    switch (r.outcome) {
        case TrialOutcome::Decided:
            ADBA_ENSURES_MSG(r.all_halted,
                             "a Decided mv trial must have all-halted; an "
                             "exhausted trial may never be counted as decided");
            break;
        case TrialOutcome::RoundCapExhausted:
            ++agg.cap_exhausted;
            break;
        case TrialOutcome::WatchdogTimeout:
            ++agg.watchdog_timeouts;
            break;
        case TrialOutcome::Faulted:
            break;  // unreachable: early-returned above
    }
    agg.rounds.add(static_cast<double>(r.rounds));
}

std::vector<std::string> MvWorkload::csv_header() {
    return {"trials",     "agree_pct", "validity_failures", "not_halted",
            "exhausted",  "watchdog",  "faulted",           "real_value_pct",
            "rounds_mean", "rounds_p90", "rounds_max"};
}

std::vector<std::string> MvWorkload::csv_row(const MvAggregate& agg) {
    const Count ran = agg.trials - agg.faulted;
    const auto pct = [&](Count c) {
        return ran == 0 ? 0.0
                        : 100.0 * static_cast<double>(c) / static_cast<double>(ran);
    };
    const bool have = !agg.rounds.empty();
    return {Table::num(static_cast<std::uint64_t>(agg.trials)),
            Table::num(pct(ran - agg.agreement_failures), 2),
            Table::num(static_cast<std::uint64_t>(agg.validity_failures)),
            Table::num(static_cast<std::uint64_t>(agg.not_halted)),
            Table::num(static_cast<std::uint64_t>(agg.cap_exhausted)),
            Table::num(static_cast<std::uint64_t>(agg.watchdog_timeouts)),
            Table::num(static_cast<std::uint64_t>(agg.faulted)),
            Table::num(pct(agg.decided_real), 2),
            Table::num(have ? agg.rounds.mean() : 0.0, 3),
            Table::num(have ? agg.rounds.quantile(0.9) : 0.0, 3),
            Table::num(have ? agg.rounds.max() : 0.0, 0)};
}

std::string MvWorkload::checkpoint_scope(const MvScenarioPlan& plan) {
    return plan.scenario.describe();
}

void MvWorkload::checkpoint_encode(const MvAggregate& agg, std::string& out) {
    BinWriter w(out);
    w.u32(agg.trials);
    w.u32(agg.agreement_failures);
    w.u32(agg.validity_failures);
    w.u32(agg.not_halted);
    w.u32(agg.decided_real);
    w.u32(agg.cap_exhausted);
    w.u32(agg.watchdog_timeouts);
    w.u32(agg.faulted);
    w.doubles(agg.rounds.values());
}

void MvWorkload::checkpoint_decode(std::string_view bytes, MvAggregate& agg) {
    BinReader r(bytes);
    agg.trials = r.u32();
    agg.agreement_failures = r.u32();
    agg.validity_failures = r.u32();
    agg.not_halted = r.u32();
    agg.decided_real = r.u32();
    agg.cap_exhausted = r.u32();
    agg.watchdog_timeouts = r.u32();
    agg.faulted = r.u32();
    std::vector<double> xs;
    r.doubles(xs);
    for (double x : xs) agg.rounds.add(x);
    ADBA_EXPECTS_MSG(r.exhausted(), "mv checkpoint payload has trailing bytes");
}

MvTrialResult run_mv_trial(const MvScenarioPlan& plan, std::uint64_t seed) {
    return run_one_trial<MvWorkload>(plan, seed);
}

MvTrialResult run_mv_trial(const MvScenario& s, std::uint64_t seed) {
    return run_one_trial<MvWorkload>(MvWorkload::make_plan(s), seed);
}

void MvAggregate::merge(const MvAggregate& other) {
    trials += other.trials;
    agreement_failures += other.agreement_failures;
    validity_failures += other.validity_failures;
    not_halted += other.not_halted;
    decided_real += other.decided_real;
    cap_exhausted += other.cap_exhausted;
    watchdog_timeouts += other.watchdog_timeouts;
    faulted += other.faulted;
    rounds.merge(other.rounds);
}

MvAggregate run_mv_trials(const MvScenario& s, std::uint64_t base_seed, Count trials,
                          const ExecutorConfig& exec) {
    return run_trials<MvWorkload>(s, base_seed, trials, exec);
}

std::string to_string(MvInputPattern p) {
    switch (p) {
        case MvInputPattern::AllSame: return "all-same";
        case MvInputPattern::TwoBlocks: return "two-blocks";
        case MvInputPattern::Distinct: return "all-distinct";
        case MvInputPattern::RandomTiny: return "random(4)";
        case MvInputPattern::NearQuorum: return "near-quorum(60%)";
    }
    return "?";
}

std::string to_string(MvAdversaryKind a) {
    return MvAdversaryRegistry::instance().at(a).display;
}

}  // namespace adba::sim
