#include "sim/runner.hpp"

#include <memory>
#include <vector>

#include "sim/registry.hpp"
#include "support/contracts.hpp"

// All protocol/adversary construction goes through the registries in
// registry.cpp — this file only wires a validated scenario into the engine.
// Adding a protocol or adversary is a registry entry, not a switch edit here.

namespace adba::sim {

std::optional<core::BlockSchedule> schedule_of(const Scenario& s) {
    const ProtocolEntry& e = ProtocolRegistry::instance().at(s.protocol);
    if (!e.schedule_of) return std::nullopt;
    return e.schedule_of(s);
}

TrialResult run_trial(const Scenario& s, std::uint64_t seed) {
    ADBA_EXPECTS(s.n > 0);
    const ScenarioPlan plan = validate(s);
    const SeedTree seeds(seed);
    const std::vector<Bit> inputs = make_inputs(s.inputs, s.n, seeds);

    ProtocolBundle bundle = plan.protocol->make_nodes(s, inputs, seeds);
    auto adversary = plan.adversary->make_adversary(s, bundle, seeds);

    net::EngineConfig cfg;
    cfg.n = s.n;
    cfg.budget = s.t;
    cfg.max_rounds =
        s.max_rounds_override ? s.max_rounds_override : bundle.default_max_rounds;
    cfg.record_transcript = s.record_transcript;

    net::Engine engine(cfg, std::move(bundle.nodes), *adversary);
    const net::RunResult run = engine.run();

    TrialResult res;
    res.agreement = run.agreement();
    res.agreed_value = run.agreed_value();
    res.validity_applicable = unanimous(inputs);
    res.validity_ok = !res.validity_applicable ||
                      (res.agreement && res.agreed_value &&
                       *res.agreed_value == inputs.front());
    res.all_halted = run.all_halted;
    res.rounds = run.rounds;
    res.metrics = run.metrics;
    res.phases_configured = bundle.phases;
    return res;
}

void Aggregate::merge(const Aggregate& other) {
    rounds.merge(other.rounds);
    messages.merge(other.messages);
    bits.merge(other.bits);
    corruptions.merge(other.corruptions);
    trials += other.trials;
    agreement_failures += other.agreement_failures;
    validity_failures += other.validity_failures;
    not_halted += other.not_halted;
}

Aggregate run_trials(const Scenario& s, std::uint64_t base_seed, Count trials,
                     const ExecutorConfig& exec) {
    return parallel_reduce<Aggregate>(trials, exec, [&](Count begin, Count end) {
        Aggregate part;
        part.trials = end - begin;
        part.rounds.reserve(end - begin);
        for (Count i = begin; i < end; ++i) {
            const TrialResult r = run_trial(s, mix64(base_seed + 0x100000001b3ULL * i));
            part.rounds.add(static_cast<double>(r.rounds));
            part.messages.add(static_cast<double>(r.metrics.honest_messages));
            part.bits.add(static_cast<double>(r.metrics.honest_bits));
            part.corruptions.add(static_cast<double>(r.metrics.corruptions));
            if (!r.agreement) ++part.agreement_failures;
            if (!r.validity_ok) ++part.validity_failures;
            if (!r.all_halted) ++part.not_halted;
        }
        return part;
    });
}

std::string to_string(ProtocolKind k) { return ProtocolRegistry::instance().at(k).display; }

std::string to_string(AdversaryKind k) {
    return AdversaryRegistry::instance().at(k).display;
}

}  // namespace adba::sim
