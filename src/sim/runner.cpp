#include "sim/runner.hpp"

#include <cstdio>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/fused_plane.hpp"
#include "sim/checkpoint.hpp"
#include "sim/faults.hpp"
#include "sim/registry.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

// All protocol/adversary construction goes through the registries in
// registry.cpp — this file only wires a validated scenario into the engine.
// Adding a protocol or adversary is a registry entry, not a switch edit here.
//
// The Monte-Carlo machinery itself (executor chunking, index-derived seeds,
// pooled per-chunk arenas, in-order merge) lives in the workload-generic
// kernel (sim/workload.hpp); this file defines only the BinaryWorkload
// binding: the arena that re-arms one engine + one node set + one input
// buffer per trial (ProtocolEntry::reinit_nodes + Engine::reset), so a warm
// trial performs no allocation beyond what the adversary strategy needs.

namespace adba::sim {

std::optional<core::BlockSchedule> schedule_of(const Scenario& s) {
    const ProtocolEntry& e = ProtocolRegistry::instance().at(s.protocol);
    if (!e.schedule_of) return std::nullopt;
    return e.schedule_of(s);
}

/// Per-chunk reusable trial state: pooled nodes, engine, and input buffer.
/// run() is bit-identical to the one-shot run_trial path; the executor's
/// thread-invariance tests double as the canary for stale pool state.
class BinaryWorkload::Arena {
public:
    explicit Arena(const ScenarioPlan& plan) : plan_(plan) {
        ADBA_EXPECTS(plan_.scenario.n > 0);
    }

    TrialResult run(std::uint64_t seed) {
        const Scenario& s = plan_.scenario;
        const SeedTree seeds(seed);
        make_inputs(s.inputs, s.n, seeds, inputs_);

        // Native batch plane when the scenario wants it and the protocol
        // ships one; otherwise the per-node path (wrapped in the engine's
        // pooled PerNodeBatch adapter). Both are bit-identical by contract.
        const bool batched = s.use_batch && plan_.protocol->make_batch != nullptr;
        if (!have_bundle_) {
            bundle_ = batched ? plan_.protocol->make_batch(s, inputs_, seeds)
                              : plan_.protocol->make_nodes(s, inputs_, seeds);
            have_bundle_ = true;
        } else if (batched) {
            if (plan_.protocol->reinit_batch) {
                plan_.protocol->reinit_batch(s, inputs_, seeds, bundle_);
            } else {
                bundle_.batch = plan_.protocol->make_batch(s, inputs_, seeds).batch;
            }
        } else if (plan_.protocol->reinit_nodes) {
            plan_.protocol->reinit_nodes(s, inputs_, seeds, bundle_);
        } else {
            // No pooling support: rebuild the node set, keep the metadata.
            bundle_.nodes = plan_.protocol->make_nodes(s, inputs_, seeds).nodes;
        }
        auto adversary = plan_.adversary->make_adversary(s, bundle_, seeds);

        net::EngineConfig cfg;
        cfg.n = s.n;
        cfg.budget = s.t;
        cfg.max_rounds =
            s.max_rounds_override ? s.max_rounds_override : bundle_.default_max_rounds;
        cfg.record_transcript = s.record_transcript;
        cfg.reference_delivery = s.reference_delivery;
        cfg.simd_tally = s.use_simd;
        if (s.sparse_plane) {
            cfg.plane = net::PlaneMode::Sparse;
            cfg.sample_degree = s.sample_degree;
            // The scenario's sparse_seed selects the SparseTopology child
            // index, so topology streams vary under the seed tree's
            // independence guarantees; the default index 0 is exactly the
            // pre-key stream (recorded sparse runs replay unchanged).
            cfg.sparse_seed =
                seeds.seed(StreamPurpose::SparseTopology, s.sparse_seed);
            cfg.sparse_stream = s.sparse_stream;
        }
        cfg.watchdog_ms = s.watchdog_ms;
        // Resilience seam: only pay the per-round std::function call when an
        // armed injector actually wants beat delays.
        if (FaultInjector* inj = FaultInjector::active();
            inj && inj->config().beat_delay_rate > 0.0)
            cfg.beat_probe = [inj](Round r) { inj->on_beat(r); };
        // Intra-trial sharding: resolve the scenario's request through the
        // nested-parallelism policy once and keep one pool per arena (its
        // workers persist across trials; rebuilding per trial would pay
        // thread spawns on the hot path).
        if (s.use_shard && batched) {
            const unsigned shards = plan_intra_shards(s.intra_threads, s.n);
            if (shards > 1) {
                if (!shard_pool_ || shard_count_ != shards) {
                    shard_pool_ =
                        std::make_unique<ShardPool>(shards, default_threads());
                    shard_count_ = shards;
                }
                cfg.intra = shard_pool_.get();
            }
        }

        if (batched) {
            if (engine_) {
                engine_->reset(cfg, std::move(bundle_.batch), *adversary);
            } else {
                engine_.emplace(cfg, std::move(bundle_.batch), *adversary);
            }
        } else if (engine_) {
            engine_->reset(cfg, std::move(bundle_.nodes), *adversary);
        } else {
            engine_.emplace(cfg, std::move(bundle_.nodes), *adversary);
        }
        const net::RunResult run = engine_->run();
        if (batched)
            bundle_.batch = engine_->take_batch();
        else
            bundle_.nodes = engine_->take_nodes();

        TrialResult res;
        res.agreement = run.agreement();
        res.agreed_value = run.agreed_value();
        res.validity_applicable = unanimous(inputs_);
        res.validity_ok = !res.validity_applicable ||
                          (res.agreement && res.agreed_value &&
                           *res.agreed_value == inputs_.front());
        res.all_halted = run.all_halted;
        res.rounds = run.rounds;
        res.outcome = run.outcome;
        res.metrics = run.metrics;
        res.phases_configured = bundle_.phases;
        return res;
    }

    /// True when this scenario's trial chunks run through the fused plane
    /// (validate() already guaranteed the protocol and adversary support it,
    /// so the scenario flag is the whole decision).
    bool fused_active() const { return plan_.scenario.use_fused; }

    /// Runs 64 consecutive trials as one fused block. trial_seeds[j] is the
    /// index-derived seed of lane j's trial — the exact value the scalar
    /// path would pass to run() — and out[j] receives a TrialResult
    /// bit-identical to run(trial_seeds[j]).
    void run_fused(const std::uint64_t* trial_seeds, TrialResult* out) {
        const Scenario& s = plan_.scenario;
        const NodeId n = s.n;
        if (!fused_proto_) {
            fused_proto_ = plan_.protocol->make_fused(s);
            const BudgetHint hint = plan_.protocol->budgets(s);
            fused_meta_.phases = hint.phases;
            fused_meta_.default_max_rounds = hint.max_rounds;
            if (plan_.protocol->schedule_of)
                fused_meta_.schedule = plan_.protocol->schedule_of(s);
        }

        lane_seeds_.clear();
        lane_seeds_.reserve(net::kFusedLanes);
        fused_inputs_.assign(n, 0);
        std::uint64_t unan = 0, front = 0;
        net::Adversary* advs[net::kFusedLanes];
        for (unsigned j = 0; j < net::kFusedLanes; ++j) {
            lane_seeds_.emplace_back(trial_seeds[j]);
            make_inputs(s.inputs, n, lane_seeds_.back(), inputs_);
            for (NodeId v = 0; v < n; ++v)
                fused_inputs_[v] |= std::uint64_t{inputs_[v] & 1u} << j;
            if (unanimous(inputs_)) unan |= std::uint64_t{1} << j;
            front |= std::uint64_t{inputs_.front() & 1u} << j;
            fused_advs_[j] =
                plan_.adversary->make_adversary(s, fused_meta_, lane_seeds_.back());
            advs[j] = fused_advs_[j].get();
        }
        fused_proto_->rearm(fused_inputs_.data(), lane_seeds_.data());

        const Round max_rounds = s.max_rounds_override
                                     ? s.max_rounds_override
                                     : fused_meta_.default_max_rounds;
        net::FusedLaneResult lanes[net::kFusedLanes];
        fused_block_.run(*fused_proto_, advs, s.t, max_rounds, lanes);

        // Per-lane agreement over the surviving honest outputs — exactly
        // RunResult::agreement(): honest = never corrupted, output = the
        // protocol's value plane.
        const std::uint64_t* byz = fused_block_.byz_plane();
        const std::uint64_t* val = fused_proto_->value_plane();
        std::uint64_t any0 = 0, any1 = 0;
        for (NodeId v = 0; v < n; ++v) {
            any0 |= ~byz[v] & ~val[v];
            any1 |= ~byz[v] & val[v];
        }
        for (unsigned j = 0; j < net::kFusedLanes; ++j) {
            const std::uint64_t bit = std::uint64_t{1} << j;
            TrialResult& res = out[j];
            res = TrialResult{};
            res.agreement = (any0 & any1 & bit) == 0;
            if (res.agreement)
                res.agreed_value = static_cast<Bit>((any1 & bit) != 0 ? 1 : 0);
            res.validity_applicable = (unan & bit) != 0;
            res.validity_ok =
                !res.validity_applicable ||
                (res.agreement && res.agreed_value &&
                 *res.agreed_value == static_cast<Bit>((front & bit) != 0 ? 1 : 0));
            res.all_halted = lanes[j].all_halted;
            res.rounds = lanes[j].rounds;
            res.outcome = lanes[j].outcome;
            res.metrics = lanes[j].metrics;
            res.phases_configured = fused_meta_.phases;
            fused_advs_[j].reset();
        }
    }

private:
    const ScenarioPlan& plan_;
    std::vector<Bit> inputs_;
    ProtocolBundle bundle_;
    bool have_bundle_ = false;
    std::optional<net::Engine> engine_;
    std::unique_ptr<ShardPool> shard_pool_;  ///< persists across trials
    unsigned shard_count_ = 0;
    // Fused-plane state (fused=true scenarios only): the 64-lane protocol is
    // built once per arena and re-armed per block; the metadata bundle only
    // carries phases/schedule/round budget for the adversary factories.
    std::unique_ptr<net::FusedProtocol> fused_proto_;
    net::FusedBlock fused_block_;
    ProtocolBundle fused_meta_;
    std::vector<std::uint64_t> fused_inputs_;
    std::vector<SeedTree> lane_seeds_;
    std::unique_ptr<net::Adversary> fused_advs_[net::kFusedLanes];
};

ScenarioPlan BinaryWorkload::make_plan(const Scenario& s) {
    ADBA_EXPECTS(s.n > 0);
    // Graceful degradation: under an active memory budget an over-budget
    // flat plan flips to the sparse plane (or is rejected with an actionable
    // message) BEFORE any allocation happens.
    Scenario adjusted = s;
    if (const auto warning = apply_memory_budget(adjusted))
        std::fprintf(stderr, "%s\n", warning->c_str());
    return validate(adjusted);
}

void BinaryWorkload::accumulate(Aggregate& agg, const TrialResult& r) {
    if (r.outcome == TrialOutcome::Faulted) {
        // The trial never ran; nothing but its existence may enter the
        // aggregate (a value-initialized result would poison every sample
        // and read as an agreement failure).
        ++agg.faulted;
        return;
    }
    agg.rounds.add(static_cast<double>(r.rounds));
    agg.messages.add(static_cast<double>(r.metrics.honest_messages));
    agg.bits.add(static_cast<double>(r.metrics.honest_bits));
    agg.corruptions.add(static_cast<double>(r.metrics.corruptions));
    if (!r.agreement) ++agg.agreement_failures;
    if (!r.validity_ok) ++agg.validity_failures;
    if (!r.all_halted) ++agg.not_halted;
    switch (r.outcome) {
        case TrialOutcome::Decided:
            ADBA_ENSURES_MSG(r.all_halted,
                             "a Decided binary trial must have all-halted; an "
                             "exhausted trial may never be counted as decided");
            break;
        case TrialOutcome::RoundCapExhausted:
            ++agg.cap_exhausted;
            break;
        case TrialOutcome::WatchdogTimeout:
            ++agg.watchdog_timeouts;
            break;
        case TrialOutcome::Faulted:
            break;  // unreachable: early-returned above
    }
}

std::vector<std::string> BinaryWorkload::csv_header() {
    return {"trials",     "agree_pct",        "validity_failures",
            "not_halted", "exhausted",        "watchdog",
            "faulted",    "rounds_mean",      "rounds_p90",
            "rounds_max", "msgs_mean",        "bits_mean",
            "corruptions_mean"};
}

std::vector<std::string> BinaryWorkload::csv_row(const Aggregate& agg) {
    // agree_pct is over trials that actually RAN: a faulted trial carries no
    // agreement information, and an all-faulted aggregate has no samples at
    // all (the Samples accessors assert non-empty, hence the guards).
    const Count ran = agg.trials - agg.faulted;
    const double ok =
        ran == 0 ? 0.0
                 : 100.0 * static_cast<double>(ran - agg.agreement_failures) /
                       static_cast<double>(ran);
    const bool have = !agg.rounds.empty();
    return {Table::num(static_cast<std::uint64_t>(agg.trials)),
            Table::num(ok, 2),
            Table::num(static_cast<std::uint64_t>(agg.validity_failures)),
            Table::num(static_cast<std::uint64_t>(agg.not_halted)),
            Table::num(static_cast<std::uint64_t>(agg.cap_exhausted)),
            Table::num(static_cast<std::uint64_t>(agg.watchdog_timeouts)),
            Table::num(static_cast<std::uint64_t>(agg.faulted)),
            Table::num(have ? agg.rounds.mean() : 0.0, 3),
            Table::num(have ? agg.rounds.quantile(0.9) : 0.0, 3),
            Table::num(have ? agg.rounds.max() : 0.0, 0),
            Table::num(have ? agg.messages.mean() : 0.0, 1),
            Table::num(have ? agg.bits.mean() : 0.0, 1),
            Table::num(have ? agg.corruptions.mean() : 0.0, 3)};
}

std::string BinaryWorkload::checkpoint_scope(const Plan& plan) {
    return plan.scenario.describe();
}

void BinaryWorkload::checkpoint_encode(const Aggregate& agg, std::string& out) {
    BinWriter w(out);
    w.u32(agg.trials);
    w.u32(agg.agreement_failures);
    w.u32(agg.validity_failures);
    w.u32(agg.not_halted);
    w.u32(agg.cap_exhausted);
    w.u32(agg.watchdog_timeouts);
    w.u32(agg.faulted);
    w.doubles(agg.rounds.values());
    w.doubles(agg.messages.values());
    w.doubles(agg.bits.values());
    w.doubles(agg.corruptions.values());
}

void BinaryWorkload::checkpoint_decode(std::string_view bytes, Aggregate& agg) {
    BinReader r(bytes);
    agg.trials = r.u32();
    agg.agreement_failures = r.u32();
    agg.validity_failures = r.u32();
    agg.not_halted = r.u32();
    agg.cap_exhausted = r.u32();
    agg.watchdog_timeouts = r.u32();
    agg.faulted = r.u32();
    std::vector<double> xs;
    r.doubles(xs);
    for (double x : xs) agg.rounds.add(x);
    xs.clear();
    r.doubles(xs);
    for (double x : xs) agg.messages.add(x);
    xs.clear();
    r.doubles(xs);
    for (double x : xs) agg.bits.add(x);
    xs.clear();
    r.doubles(xs);
    for (double x : xs) agg.corruptions.add(x);
    ADBA_EXPECTS_MSG(r.exhausted(),
                     "binary checkpoint payload has trailing bytes");
}

TrialResult run_trial(const ScenarioPlan& plan, std::uint64_t seed) {
    return run_one_trial<BinaryWorkload>(plan, seed);
}

TrialResult run_trial(const Scenario& s, std::uint64_t seed) {
    return run_one_trial<BinaryWorkload>(BinaryWorkload::make_plan(s), seed);
}

void Aggregate::merge(const Aggregate& other) {
    rounds.merge(other.rounds);
    messages.merge(other.messages);
    bits.merge(other.bits);
    corruptions.merge(other.corruptions);
    trials += other.trials;
    agreement_failures += other.agreement_failures;
    validity_failures += other.validity_failures;
    not_halted += other.not_halted;
    cap_exhausted += other.cap_exhausted;
    watchdog_timeouts += other.watchdog_timeouts;
    faulted += other.faulted;
}

Aggregate run_trials(const Scenario& s, std::uint64_t base_seed, Count trials,
                     const ExecutorConfig& exec) {
    return run_trials<BinaryWorkload>(s, base_seed, trials, exec);
}

std::string to_string(ProtocolKind k) { return ProtocolRegistry::instance().at(k).display; }

std::string to_string(AdversaryKind k) {
    return AdversaryRegistry::instance().at(k).display;
}

}  // namespace adba::sim
