#include "sim/runner.hpp"

#include <memory>
#include <vector>

#include "adversary/balancer.hpp"
#include "adversary/chaos.hpp"
#include "adversary/crash.hpp"
#include "adversary/king_killer.hpp"
#include "adversary/split_vote.hpp"
#include "adversary/static_adversary.hpp"
#include "adversary/worst_case.hpp"
#include "baselines/ben_or.hpp"
#include "baselines/chor_coan.hpp"
#include "baselines/local_coin.hpp"
#include "baselines/phase_king.hpp"
#include "baselines/rabin_dealer.hpp"
#include "baselines/sampling_majority.hpp"
#include "core/agreement.hpp"
#include "support/contracts.hpp"

namespace adba::sim {

namespace {

struct ProtocolBundle {
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    Round default_max_rounds = 0;
    Count phases = 0;
    std::optional<core::BlockSchedule> schedule;
};

ProtocolBundle build_protocol(const Scenario& s, const std::vector<Bit>& inputs,
                              const SeedTree& seeds) {
    ProtocolBundle b;
    switch (s.protocol) {
        case ProtocolKind::Ours:
        case ProtocolKind::OursLasVegas: {
            const auto params = core::AgreementParams::compute(s.n, s.t, s.tuning);
            const auto mode = s.protocol == ProtocolKind::Ours
                                  ? core::AgreementMode::WhpFixedPhases
                                  : core::AgreementMode::LasVegas;
            b.nodes = core::make_algorithm3_nodes(params, mode, inputs, seeds);
            b.phases = params.phases;
            b.schedule = params.schedule;
            b.default_max_rounds = mode == core::AgreementMode::LasVegas
                                       ? 32 * core::max_rounds_whp(params) + 256
                                       : core::max_rounds_whp(params);
            break;
        }
        case ProtocolKind::ChorCoanRushing:
        case ProtocolKind::ChorCoanClassic: {
            const auto params = s.protocol == ProtocolKind::ChorCoanRushing
                                    ? base::ChorCoanParams::compute_rushing(s.n, s.t, s.tuning)
                                    : base::ChorCoanParams::compute_classic(s.n, s.t, s.tuning);
            b.nodes = base::make_chor_coan_nodes(params, core::AgreementMode::WhpFixedPhases,
                                                 inputs, seeds);
            b.phases = params.phases;
            b.schedule = params.schedule;
            b.default_max_rounds = base::max_rounds_whp(params);
            break;
        }
        case ProtocolKind::RabinDealer: {
            const auto params = base::RabinDealerParams::compute(
                s.n, s.t, seeds.seed(StreamPurpose::DealerCoin), s.tuning.gamma);
            b.nodes = base::make_rabin_dealer_nodes(params, core::AgreementMode::WhpFixedPhases,
                                                    inputs, seeds);
            b.phases = params.phases;
            b.default_max_rounds = base::max_rounds_whp(params);
            break;
        }
        case ProtocolKind::LocalCoin: {
            const base::LocalCoinParams params{s.n, s.t, s.local_coin_phases};
            b.nodes = base::make_local_coin_nodes(params, core::AgreementMode::WhpFixedPhases,
                                                  inputs, seeds);
            b.phases = params.phases;
            b.default_max_rounds = 2 * (params.phases + 2);
            break;
        }
        case ProtocolKind::BenOr: {
            const base::BenOrParams params{s.n, s.t, s.local_coin_phases};
            b.nodes = base::make_ben_or_nodes(params, inputs, seeds);
            b.phases = params.phases;
            b.default_max_rounds = 2 * (params.phases + 2);
            break;
        }
        case ProtocolKind::PhaseKing: {
            const base::PhaseKingParams params{s.n, s.t};
            b.nodes = base::make_phase_king_nodes(params, inputs);
            b.phases = params.phases();
            b.default_max_rounds = params.total_rounds() + 2;
            break;
        }
        case ProtocolKind::SamplingMajority: {
            const auto params =
                base::SamplingMajorityParams::compute(s.n, s.t, s.sampling_kappa);
            b.nodes = base::make_sampling_majority_nodes(params, inputs, seeds);
            b.phases = params.rounds;
            b.default_max_rounds = params.rounds + 1;
            break;
        }
    }
    return b;
}

std::unique_ptr<net::Adversary> build_adversary(const Scenario& s,
                                                const ProtocolBundle& bundle,
                                                const SeedTree& seeds) {
    const Count q = s.q.value_or(s.t);
    ADBA_EXPECTS_MSG(q <= s.t, "actual corruptions q must not exceed the budget t");
    auto rng = seeds.stream(StreamPurpose::Adversary);
    switch (s.adversary) {
        case AdversaryKind::None:
            return std::make_unique<net::NullAdversary>();
        case AdversaryKind::Static:
            return std::make_unique<adv::StaticAdversary>(q, adv::StaticBehavior::SplitVotes,
                                                          rng);
        case AdversaryKind::SplitVote:
            return std::make_unique<adv::SplitVoteAdversary>(q, rng);
        case AdversaryKind::Chaos:
            return std::make_unique<adv::ChaosAdversary>(adv::ChaosConfig{q, 0.25, 0.7}, rng);
        case AdversaryKind::CrashRandom:
            return std::make_unique<adv::CrashAdversary>(
                adv::CrashConfig{q, adv::CrashMode::Random, 0.15, std::nullopt}, rng);
        case AdversaryKind::CrashTargetedCoin: {
            ADBA_EXPECTS_MSG(bundle.schedule.has_value(),
                             "targeted-coin crash needs a committee protocol");
            return std::make_unique<adv::CrashAdversary>(
                adv::CrashConfig{q, adv::CrashMode::TargetedCoin, 0.0, bundle.schedule},
                rng);
        }
        case AdversaryKind::WorstCase: {
            ADBA_EXPECTS_MSG(bundle.schedule.has_value(),
                             "worst-case adversary needs a committee protocol");
            return std::make_unique<adv::WorstCaseAdversary>(
                adv::WorstCaseConfig{s.t, q, *bundle.schedule, true});
        }
        case AdversaryKind::KingKiller: {
            ADBA_EXPECTS_MSG(s.protocol == ProtocolKind::PhaseKing,
                             "king-killer targets Phase-King");
            return std::make_unique<adv::KingKillerAdversary>(
                base::PhaseKingParams{s.n, s.t}, q);
        }
        case AdversaryKind::Balancer:
            return std::make_unique<adv::MajorityBalancerAdversary>(
                adv::BalancerConfig{q, 0});
    }
    ADBA_ENSURES_MSG(false, "unreachable adversary kind");
    return nullptr;
}

}  // namespace

std::optional<core::BlockSchedule> schedule_of(const Scenario& s) {
    switch (s.protocol) {
        case ProtocolKind::Ours:
        case ProtocolKind::OursLasVegas:
            return core::AgreementParams::compute(s.n, s.t, s.tuning).schedule;
        case ProtocolKind::ChorCoanRushing:
            return base::ChorCoanParams::compute_rushing(s.n, s.t, s.tuning).schedule;
        case ProtocolKind::ChorCoanClassic:
            return base::ChorCoanParams::compute_classic(s.n, s.t, s.tuning).schedule;
        default:
            return std::nullopt;
    }
}

TrialResult run_trial(const Scenario& s, std::uint64_t seed) {
    ADBA_EXPECTS(s.n > 0);
    const SeedTree seeds(seed);
    const std::vector<Bit> inputs = make_inputs(s.inputs, s.n, seeds);

    ProtocolBundle bundle = build_protocol(s, inputs, seeds);
    auto adversary = build_adversary(s, bundle, seeds);

    net::EngineConfig cfg;
    cfg.n = s.n;
    cfg.budget = s.t;
    cfg.max_rounds =
        s.max_rounds_override ? s.max_rounds_override : bundle.default_max_rounds;
    cfg.record_transcript = s.record_transcript;

    net::Engine engine(cfg, std::move(bundle.nodes), *adversary);
    const net::RunResult run = engine.run();

    TrialResult res;
    res.agreement = run.agreement();
    res.agreed_value = run.agreed_value();
    res.validity_applicable = unanimous(inputs);
    res.validity_ok = !res.validity_applicable ||
                      (res.agreement && res.agreed_value &&
                       *res.agreed_value == inputs.front());
    res.all_halted = run.all_halted;
    res.rounds = run.rounds;
    res.metrics = run.metrics;
    res.phases_configured = bundle.phases;
    return res;
}

void Aggregate::merge(const Aggregate& other) {
    rounds.merge(other.rounds);
    messages.merge(other.messages);
    bits.merge(other.bits);
    corruptions.merge(other.corruptions);
    trials += other.trials;
    agreement_failures += other.agreement_failures;
    validity_failures += other.validity_failures;
    not_halted += other.not_halted;
}

Aggregate run_trials(const Scenario& s, std::uint64_t base_seed, Count trials,
                     const ExecutorConfig& exec) {
    return parallel_reduce<Aggregate>(trials, exec, [&](Count begin, Count end) {
        Aggregate part;
        part.trials = end - begin;
        part.rounds.reserve(end - begin);
        for (Count i = begin; i < end; ++i) {
            const TrialResult r = run_trial(s, mix64(base_seed + 0x100000001b3ULL * i));
            part.rounds.add(static_cast<double>(r.rounds));
            part.messages.add(static_cast<double>(r.metrics.honest_messages));
            part.bits.add(static_cast<double>(r.metrics.honest_bits));
            part.corruptions.add(static_cast<double>(r.metrics.corruptions));
            if (!r.agreement) ++part.agreement_failures;
            if (!r.validity_ok) ++part.validity_failures;
            if (!r.all_halted) ++part.not_halted;
        }
        return part;
    });
}

std::string to_string(ProtocolKind k) {
    switch (k) {
        case ProtocolKind::Ours: return "ours(alg3)";
        case ProtocolKind::OursLasVegas: return "ours(las-vegas)";
        case ProtocolKind::ChorCoanRushing: return "chor-coan(rushing)";
        case ProtocolKind::ChorCoanClassic: return "chor-coan(classic)";
        case ProtocolKind::RabinDealer: return "rabin(dealer)";
        case ProtocolKind::LocalCoin: return "local-coin";
        case ProtocolKind::BenOr: return "ben-or(1983)";
        case ProtocolKind::PhaseKing: return "phase-king";
        case ProtocolKind::SamplingMajority: return "sampling-majority";
    }
    return "?";
}

std::string to_string(AdversaryKind k) {
    switch (k) {
        case AdversaryKind::None: return "none";
        case AdversaryKind::Static: return "static";
        case AdversaryKind::SplitVote: return "split-vote";
        case AdversaryKind::Chaos: return "chaos";
        case AdversaryKind::CrashRandom: return "crash(random)";
        case AdversaryKind::CrashTargetedCoin: return "crash(targeted)";
        case AdversaryKind::WorstCase: return "worst-case";
        case AdversaryKind::KingKiller: return "king-killer";
        case AdversaryKind::Balancer: return "balancer";
    }
    return "?";
}

}  // namespace adba::sim
