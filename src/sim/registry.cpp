#include "sim/registry.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "adversary/balancer.hpp"
#include "adversary/chaos.hpp"
#include "adversary/composite.hpp"
#include "adversary/crash.hpp"
#include "adversary/king_killer.hpp"
#include "adversary/split_vote.hpp"
#include "adversary/static_adversary.hpp"
#include "adversary/tc_prelude.hpp"
#include "adversary/worst_case.hpp"
#include "baselines/ben_or.hpp"
#include "baselines/chor_coan.hpp"
#include "baselines/local_coin.hpp"
#include "baselines/phase_king.hpp"
#include "baselines/rabin_dealer.hpp"
#include "baselines/sampling_majority.hpp"
#include "core/agreement.hpp"
#include "core/skeleton_fused.hpp"
#include "sim/faults.hpp"
#include "support/cli.hpp"
#include "support/contracts.hpp"

namespace adba::sim {

namespace {

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

std::string fmt_double(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);  // exact round trip via parse
    return buf;
}

bool third_resilient(NodeId n, Count t) { return 3 * static_cast<std::uint64_t>(t) < n; }

}  // namespace

// --------------------------------------------------------- registry machinery

namespace detail {

template <typename Entry, typename Kind>
const Entry& RegistryBase<Entry, Kind>::add(Entry entry) {
    // Validate every key BEFORE mutating, so a rejected plug-in leaves the
    // registry exactly as it was.
    auto check = [&](const std::string& key) {
        const auto it = by_name_.find(lower(key));
        if (it != by_name_.end())
            throw ContractViolation("duplicate " + what_ + " name '" + key +
                                    "' (already registered as '" + it->second->name +
                                    "')");
    };
    check(entry.name);
    for (const auto& alias : entry.aliases) check(alias);

    entries_.push_back(std::move(entry));
    const Entry& stored = entries_.back();
    by_name_[lower(stored.name)] = &stored;
    for (const auto& alias : stored.aliases) by_name_[lower(alias)] = &stored;
    return stored;
}

template <typename Entry, typename Kind>
const Entry& RegistryBase<Entry, Kind>::at(Kind kind) const {
    for (const Entry& e : entries_)
        if (e.kind == kind) return e;
    throw ContractViolation("unregistered " + what_ + " kind #" +
                            std::to_string(static_cast<int>(kind)) +
                            "; known: " + known_names());
}

template <typename Entry, typename Kind>
const Entry* RegistryBase<Entry, Kind>::find(const std::string& name_or_alias) const {
    const auto it = by_name_.find(lower(name_or_alias));
    return it == by_name_.end() ? nullptr : it->second;
}

template <typename Entry, typename Kind>
const Entry& RegistryBase<Entry, Kind>::at(const std::string& name_or_alias) const {
    if (const Entry* e = find(name_or_alias)) return *e;
    throw ContractViolation("unknown " + what_ + " '" + name_or_alias +
                            "'; known " + what_ + "s: " + known_names() +
                            " (aliases accepted; see `adba_sim --list`)");
}

template <typename Entry, typename Kind>
std::vector<const Entry*> RegistryBase<Entry, Kind>::list() const {
    std::vector<const Entry*> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(&e);
    return out;
}

template <typename Entry, typename Kind>
std::string RegistryBase<Entry, Kind>::known_names() const {
    std::string out;
    for (const Entry& e : entries_) {
        if (!out.empty()) out += ", ";
        out += e.name;
    }
    return out;
}

template class RegistryBase<ProtocolEntry, ProtocolKind>;
template class RegistryBase<AdversaryEntry, AdversaryKind>;
template class RegistryBase<MvAdversaryEntry, MvAdversaryKind>;

}  // namespace detail

// ---------------------------------------------------------- built-in protocols

ProtocolRegistry& ProtocolRegistry::instance() {
    static ProtocolRegistry reg;
    return reg;
}

ProtocolRegistry::ProtocolRegistry() : RegistryBase("protocol") {
    // Algorithm 3 (the paper), w.h.p. fixed-phase and Las Vegas modes.
    const auto alg3_nodes = [](const Scenario& s, const std::vector<Bit>& inputs,
                               const SeedTree& seeds, core::AgreementMode mode) {
        ProtocolBundle b;
        const auto params = core::AgreementParams::compute(s.n, s.t, s.tuning);
        b.nodes = core::make_algorithm3_nodes(params, mode, inputs, seeds);
        b.phases = params.phases;
        b.schedule = params.schedule;
        b.default_max_rounds = mode == core::AgreementMode::LasVegas
                                   ? 32 * core::max_rounds_whp(params) + 256
                                   : core::max_rounds_whp(params);
        return b;
    };
    const auto alg3_reinit = [](const Scenario& s, const std::vector<Bit>& inputs,
                                const SeedTree& seeds, core::AgreementMode mode,
                                ProtocolBundle& b) {
        const auto params = core::AgreementParams::compute(s.n, s.t, s.tuning);
        core::reinit_algorithm3_nodes(params, mode, inputs, seeds, b.nodes);
    };
    const auto alg3_schedule = [](const Scenario& s) {
        return core::AgreementParams::compute(s.n, s.t, s.tuning).schedule;
    };
    const auto alg3_batch = [](const Scenario& s, const std::vector<Bit>& inputs,
                               const SeedTree& seeds, core::AgreementMode mode) {
        ProtocolBundle b;
        const auto params = core::AgreementParams::compute(s.n, s.t, s.tuning);
        b.batch = core::make_algorithm3_batch(params, mode, inputs, seeds);
        b.phases = params.phases;
        b.schedule = params.schedule;
        b.default_max_rounds = mode == core::AgreementMode::LasVegas
                                   ? 32 * core::max_rounds_whp(params) + 256
                                   : core::max_rounds_whp(params);
        return b;
    };
    const auto alg3_batch_reinit = [](const Scenario& s, const std::vector<Bit>& inputs,
                                      const SeedTree& seeds, core::AgreementMode mode,
                                      ProtocolBundle& b) {
        const auto params = core::AgreementParams::compute(s.n, s.t, s.tuning);
        core::reinit_algorithm3_batch(params, mode, inputs, seeds, *b.batch);
    };
    const auto alg3_fused =
        [](const Scenario& s,
           core::AgreementMode mode) -> std::unique_ptr<net::FusedProtocol> {
        const auto params = core::AgreementParams::compute(s.n, s.t, s.tuning);
        return std::make_unique<core::FusedSkeleton>(
            core::SkeletonConfig{s.n, s.t, params.phases, mode},
            core::FusedCoinSpec{core::FusedCoinSpec::Kind::Committee, params.schedule,
                                nullptr});
    };

    add({ProtocolKind::Ours,
         "ours",
         "ours(alg3)",
         {"alg3", "ours(alg3)", "dufoulon-pandurangan"},
         "Algorithm 3, w.h.p. fixed phases (Theorem 2)",
         "t < n/3",
         third_resilient,
         AdversaryKind::WorstCase,
         [alg3_nodes](const Scenario& s, const std::vector<Bit>& in, const SeedTree& sd) {
             return alg3_nodes(s, in, sd, core::AgreementMode::WhpFixedPhases);
         },
         [alg3_reinit](const Scenario& s, const std::vector<Bit>& in,
                       const SeedTree& sd, ProtocolBundle& b) {
             alg3_reinit(s, in, sd, core::AgreementMode::WhpFixedPhases, b);
         },
         alg3_schedule,
         [](const Scenario& s) {
             const auto p = core::AgreementParams::compute(s.n, s.t, s.tuning);
             return BudgetHint{p.phases, core::max_rounds_whp(p)};
         },
         [alg3_batch](const Scenario& s, const std::vector<Bit>& in, const SeedTree& sd) {
             return alg3_batch(s, in, sd, core::AgreementMode::WhpFixedPhases);
         },
         [alg3_batch_reinit](const Scenario& s, const std::vector<Bit>& in,
                             const SeedTree& sd, ProtocolBundle& b) {
             alg3_batch_reinit(s, in, sd, core::AgreementMode::WhpFixedPhases, b);
         },
         /*supports_sparse=*/true,
         [alg3_fused](const Scenario& s) {
             return alg3_fused(s, core::AgreementMode::WhpFixedPhases);
         }});

    add({ProtocolKind::OursLasVegas,
         "ours-las-vegas",
         "ours(las-vegas)",
         {"ours(las-vegas)", "las-vegas", "alg3-lv"},
         "Algorithm 3, Las Vegas variant (paper §3.2)",
         "t < n/3",
         third_resilient,
         AdversaryKind::WorstCase,
         [alg3_nodes](const Scenario& s, const std::vector<Bit>& in, const SeedTree& sd) {
             return alg3_nodes(s, in, sd, core::AgreementMode::LasVegas);
         },
         [alg3_reinit](const Scenario& s, const std::vector<Bit>& in,
                       const SeedTree& sd, ProtocolBundle& b) {
             alg3_reinit(s, in, sd, core::AgreementMode::LasVegas, b);
         },
         alg3_schedule,
         [](const Scenario& s) {
             const auto p = core::AgreementParams::compute(s.n, s.t, s.tuning);
             return BudgetHint{p.phases, 32 * core::max_rounds_whp(p) + 256};
         },
         [alg3_batch](const Scenario& s, const std::vector<Bit>& in, const SeedTree& sd) {
             return alg3_batch(s, in, sd, core::AgreementMode::LasVegas);
         },
         [alg3_batch_reinit](const Scenario& s, const std::vector<Bit>& in,
                             const SeedTree& sd, ProtocolBundle& b) {
             alg3_batch_reinit(s, in, sd, core::AgreementMode::LasVegas, b);
         },
         /*supports_sparse=*/true,
         [alg3_fused](const Scenario& s) {
             return alg3_fused(s, core::AgreementMode::LasVegas);
         }});

    const auto chor_coan_nodes = [](const Scenario& s, const std::vector<Bit>& inputs,
                                    const SeedTree& seeds, bool rushing) {
        ProtocolBundle b;
        const auto params = rushing
                                ? base::ChorCoanParams::compute_rushing(s.n, s.t, s.tuning)
                                : base::ChorCoanParams::compute_classic(s.n, s.t, s.tuning);
        b.nodes = base::make_chor_coan_nodes(params, core::AgreementMode::WhpFixedPhases,
                                             inputs, seeds);
        b.phases = params.phases;
        b.schedule = params.schedule;
        b.default_max_rounds = base::max_rounds_whp(params);
        return b;
    };
    const auto chor_coan_reinit = [](const Scenario& s, const std::vector<Bit>& inputs,
                                     const SeedTree& seeds, bool rushing,
                                     ProtocolBundle& b) {
        const auto params = rushing
                                ? base::ChorCoanParams::compute_rushing(s.n, s.t, s.tuning)
                                : base::ChorCoanParams::compute_classic(s.n, s.t, s.tuning);
        base::reinit_chor_coan_nodes(params, core::AgreementMode::WhpFixedPhases,
                                     inputs, seeds, b.nodes);
    };
    const auto chor_coan_batch = [](const Scenario& s, const std::vector<Bit>& inputs,
                                    const SeedTree& seeds, bool rushing) {
        ProtocolBundle b;
        const auto params = rushing
                                ? base::ChorCoanParams::compute_rushing(s.n, s.t, s.tuning)
                                : base::ChorCoanParams::compute_classic(s.n, s.t, s.tuning);
        b.batch = base::make_chor_coan_batch(params, core::AgreementMode::WhpFixedPhases,
                                             inputs, seeds);
        b.phases = params.phases;
        b.schedule = params.schedule;
        b.default_max_rounds = base::max_rounds_whp(params);
        return b;
    };
    const auto chor_coan_batch_reinit = [](const Scenario& s,
                                           const std::vector<Bit>& inputs,
                                           const SeedTree& seeds, bool rushing,
                                           ProtocolBundle& b) {
        const auto params = rushing
                                ? base::ChorCoanParams::compute_rushing(s.n, s.t, s.tuning)
                                : base::ChorCoanParams::compute_classic(s.n, s.t, s.tuning);
        base::reinit_chor_coan_batch(params, core::AgreementMode::WhpFixedPhases,
                                     inputs, seeds, *b.batch);
    };
    const auto chor_coan_fused =
        [](const Scenario& s, bool rushing) -> std::unique_ptr<net::FusedProtocol> {
        const auto params = rushing
                                ? base::ChorCoanParams::compute_rushing(s.n, s.t, s.tuning)
                                : base::ChorCoanParams::compute_classic(s.n, s.t, s.tuning);
        return std::make_unique<core::FusedSkeleton>(
            core::SkeletonConfig{s.n, s.t, params.phases,
                                 core::AgreementMode::WhpFixedPhases},
            core::FusedCoinSpec{core::FusedCoinSpec::Kind::Committee, params.schedule,
                                nullptr});
    };

    add({ProtocolKind::ChorCoanRushing,
         "chor-coan-rushing",
         "chor-coan(rushing)",
         {"chor-coan(rushing)", "cc-rushing"},
         "rushing-hardened Chor-Coan (footnote-3 comparator)",
         "t < n/3",
         third_resilient,
         AdversaryKind::WorstCase,
         [chor_coan_nodes](const Scenario& s, const std::vector<Bit>& in,
                           const SeedTree& sd) { return chor_coan_nodes(s, in, sd, true); },
         [chor_coan_reinit](const Scenario& s, const std::vector<Bit>& in,
                            const SeedTree& sd, ProtocolBundle& b) {
             chor_coan_reinit(s, in, sd, true, b);
         },
         [](const Scenario& s) {
             return base::ChorCoanParams::compute_rushing(s.n, s.t, s.tuning).schedule;
         },
         [](const Scenario& s) {
             const auto p = base::ChorCoanParams::compute_rushing(s.n, s.t, s.tuning);
             return BudgetHint{p.phases, base::max_rounds_whp(p)};
         },
         [chor_coan_batch](const Scenario& s, const std::vector<Bit>& in,
                           const SeedTree& sd) { return chor_coan_batch(s, in, sd, true); },
         [chor_coan_batch_reinit](const Scenario& s, const std::vector<Bit>& in,
                                  const SeedTree& sd, ProtocolBundle& b) {
             chor_coan_batch_reinit(s, in, sd, true, b);
         },
         /*supports_sparse=*/true,
         [chor_coan_fused](const Scenario& s) { return chor_coan_fused(s, true); }});

    add({ProtocolKind::ChorCoanClassic,
         "chor-coan-classic",
         "chor-coan(classic)",
         {"chor-coan(classic)", "cc-classic", "chor-coan"},
         "historic Chor-Coan 1985, Θ(log n)-size groups",
         "t < n/3",
         third_resilient,
         AdversaryKind::WorstCase,
         [chor_coan_nodes](const Scenario& s, const std::vector<Bit>& in,
                           const SeedTree& sd) { return chor_coan_nodes(s, in, sd, false); },
         [chor_coan_reinit](const Scenario& s, const std::vector<Bit>& in,
                            const SeedTree& sd, ProtocolBundle& b) {
             chor_coan_reinit(s, in, sd, false, b);
         },
         [](const Scenario& s) {
             return base::ChorCoanParams::compute_classic(s.n, s.t, s.tuning).schedule;
         },
         [](const Scenario& s) {
             const auto p = base::ChorCoanParams::compute_classic(s.n, s.t, s.tuning);
             return BudgetHint{p.phases, base::max_rounds_whp(p)};
         },
         [chor_coan_batch](const Scenario& s, const std::vector<Bit>& in,
                           const SeedTree& sd) { return chor_coan_batch(s, in, sd, false); },
         [chor_coan_batch_reinit](const Scenario& s, const std::vector<Bit>& in,
                                  const SeedTree& sd, ProtocolBundle& b) {
             chor_coan_batch_reinit(s, in, sd, false, b);
         },
         /*supports_sparse=*/true,
         [chor_coan_fused](const Scenario& s) { return chor_coan_fused(s, false); }});

    add({ProtocolKind::RabinDealer,
         "rabin-dealer",
         "rabin(dealer)",
         {"rabin(dealer)", "rabin"},
         "Rabin 1983, trusted-dealer shared coin (ideal reference)",
         "t < n/3",
         third_resilient,
         AdversaryKind::SplitVote,
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds) {
             ProtocolBundle b;
             const auto params = base::RabinDealerParams::compute(
                 s.n, s.t, seeds.seed(StreamPurpose::DealerCoin), s.tuning.gamma);
             b.nodes = base::make_rabin_dealer_nodes(
                 params, core::AgreementMode::WhpFixedPhases, inputs, seeds);
             b.phases = params.phases;
             b.default_max_rounds = base::max_rounds_whp(params);
             return b;
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds,
            ProtocolBundle& b) {
             // The dealer seed is per-trial; recompute params with it.
             const auto params = base::RabinDealerParams::compute(
                 s.n, s.t, seeds.seed(StreamPurpose::DealerCoin), s.tuning.gamma);
             base::reinit_rabin_dealer_nodes(params, core::AgreementMode::WhpFixedPhases,
                                             inputs, seeds, b.nodes);
         },
         nullptr,
         [](const Scenario& s) {
             const auto p = base::RabinDealerParams::compute(s.n, s.t, 0, s.tuning.gamma);
             return BudgetHint{p.phases, base::max_rounds_whp(p)};
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds) {
             ProtocolBundle b;
             const auto params = base::RabinDealerParams::compute(
                 s.n, s.t, seeds.seed(StreamPurpose::DealerCoin), s.tuning.gamma);
             b.batch = base::make_rabin_dealer_batch(
                 params, core::AgreementMode::WhpFixedPhases, inputs, seeds);
             b.phases = params.phases;
             b.default_max_rounds = base::max_rounds_whp(params);
             return b;
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds,
            ProtocolBundle& b) {
             // The dealer seed is per-trial; recompute params with it.
             const auto params = base::RabinDealerParams::compute(
                 s.n, s.t, seeds.seed(StreamPurpose::DealerCoin), s.tuning.gamma);
             base::reinit_rabin_dealer_batch(params, core::AgreementMode::WhpFixedPhases,
                                             inputs, seeds, *b.batch);
         },
         /*supports_sparse=*/true,
         // Per-lane dealer seeds come from each lane's DealerCoin stream at
         // rearm time (skeleton_fused.cpp), so the phase budget — which is
         // dealer-seed-independent — is the only params field used here.
         [](const Scenario& s) -> std::unique_ptr<net::FusedProtocol> {
             const auto p = base::RabinDealerParams::compute(s.n, s.t, 0, s.tuning.gamma);
             return std::make_unique<core::FusedSkeleton>(
                 core::SkeletonConfig{s.n, s.t, p.phases,
                                      core::AgreementMode::WhpFixedPhases},
                 core::FusedCoinSpec{core::FusedCoinSpec::Kind::Dealer,
                                     {},
                                     &base::RabinDealerNode::dealer_coin});
         }});

    add({ProtocolKind::LocalCoin,
         "local-coin",
         "local-coin",
         {},
         "skeleton with private coins (ablation; exponential rounds)",
         "t < n/3",
         third_resilient,
         AdversaryKind::SplitVote,
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds) {
             ProtocolBundle b;
             const base::LocalCoinParams params{s.n, s.t, s.local_coin_phases};
             b.nodes = base::make_local_coin_nodes(
                 params, core::AgreementMode::WhpFixedPhases, inputs, seeds);
             b.phases = params.phases;
             b.default_max_rounds = 2 * (params.phases + 2);
             return b;
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds,
            ProtocolBundle& b) {
             const base::LocalCoinParams params{s.n, s.t, s.local_coin_phases};
             base::reinit_local_coin_nodes(params, core::AgreementMode::WhpFixedPhases,
                                           inputs, seeds, b.nodes);
         },
         nullptr,
         [](const Scenario& s) {
             return BudgetHint{s.local_coin_phases,
                               static_cast<Round>(2 * (s.local_coin_phases + 2))};
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds) {
             ProtocolBundle b;
             const base::LocalCoinParams params{s.n, s.t, s.local_coin_phases};
             b.batch = base::make_local_coin_batch(
                 params, core::AgreementMode::WhpFixedPhases, inputs, seeds);
             b.phases = params.phases;
             b.default_max_rounds = 2 * (params.phases + 2);
             return b;
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds,
            ProtocolBundle& b) {
             const base::LocalCoinParams params{s.n, s.t, s.local_coin_phases};
             base::reinit_local_coin_batch(params, core::AgreementMode::WhpFixedPhases,
                                           inputs, seeds, *b.batch);
         },
         /*supports_sparse=*/true,
         [](const Scenario& s) -> std::unique_ptr<net::FusedProtocol> {
             return std::make_unique<core::FusedSkeleton>(
                 core::SkeletonConfig{s.n, s.t, s.local_coin_phases,
                                      core::AgreementMode::WhpFixedPhases},
                 core::FusedCoinSpec{core::FusedCoinSpec::Kind::Local, {}, nullptr});
         }});

    add({ProtocolKind::BenOr,
         "ben-or",
         "ben-or(1983)",
         {"ben-or(1983)", "benor"},
         "Ben-Or 1983 proper, private coins",
         "t < n/5",
         [](NodeId n, Count t) { return 5 * static_cast<std::uint64_t>(t) < n; },
         AdversaryKind::SplitVote,
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds) {
             ProtocolBundle b;
             const base::BenOrParams params{s.n, s.t, s.local_coin_phases};
             b.nodes = base::make_ben_or_nodes(params, inputs, seeds);
             b.phases = params.phases;
             b.default_max_rounds = 2 * (params.phases + 2);
             return b;
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds,
            ProtocolBundle& b) {
             const base::BenOrParams params{s.n, s.t, s.local_coin_phases};
             base::reinit_ben_or_nodes(params, inputs, seeds, b.nodes);
         },
         nullptr,
         [](const Scenario& s) {
             return BudgetHint{s.local_coin_phases,
                               static_cast<Round>(2 * (s.local_coin_phases + 2))};
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds) {
             ProtocolBundle b;
             const base::BenOrParams params{s.n, s.t, s.local_coin_phases};
             b.batch = base::make_ben_or_batch(params, inputs, seeds);
             b.phases = params.phases;
             b.default_max_rounds = 2 * (params.phases + 2);
             return b;
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds,
            ProtocolBundle& b) {
             const base::BenOrParams params{s.n, s.t, s.local_coin_phases};
             base::reinit_ben_or_batch(params, inputs, seeds, *b.batch);
         },
         /*supports_sparse=*/true,
         [](const Scenario& s) -> std::unique_ptr<net::FusedProtocol> {
             return std::make_unique<base::FusedBenOr>(
                 base::BenOrParams{s.n, s.t, s.local_coin_phases});
         }});

    add({ProtocolKind::PhaseKing,
         "phase-king",
         "phase-king",
         {"phaseking", "king"},
         "deterministic 2(t+1)-round baseline",
         "t < n/4",
         [](NodeId n, Count t) { return 4 * static_cast<std::uint64_t>(t) < n; },
         AdversaryKind::KingKiller,
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree&) {
             ProtocolBundle b;
             const base::PhaseKingParams params{s.n, s.t};
             b.nodes = base::make_phase_king_nodes(params, inputs);
             b.phases = params.phases();
             b.default_max_rounds = params.total_rounds() + 2;
             return b;
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree&,
            ProtocolBundle& b) {
             base::reinit_phase_king_nodes(base::PhaseKingParams{s.n, s.t}, inputs,
                                           b.nodes);
         },
         nullptr,
         [](const Scenario& s) {
             const base::PhaseKingParams p{s.n, s.t};
             return BudgetHint{p.phases(), static_cast<Round>(p.total_rounds() + 2)};
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree&) {
             ProtocolBundle b;
             const base::PhaseKingParams params{s.n, s.t};
             b.batch = base::make_phase_king_batch(params, inputs);
             b.phases = params.phases();
             b.default_max_rounds = params.total_rounds() + 2;
             return b;
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree&,
            ProtocolBundle& b) {
             base::reinit_phase_king_batch(base::PhaseKingParams{s.n, s.t}, inputs,
                                           *b.batch);
         },
         /*supports_sparse=*/true,
         [](const Scenario& s) -> std::unique_ptr<net::FusedProtocol> {
             return std::make_unique<base::FusedPhaseKing>(
                 base::PhaseKingParams{s.n, s.t});
         }});

    add({ProtocolKind::SamplingMajority,
         "sampling-majority",
         "sampling-majority",
         {"sampling", "apr"},
         "APR 2013 sampling-majority drift protocol (paper §1.3)",
         "t < n/3, n >= 2",
         [](NodeId n, Count t) { return n >= 2 && third_resilient(n, t); },
         AdversaryKind::Balancer,
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds) {
             ProtocolBundle b;
             const auto params =
                 base::SamplingMajorityParams::compute(s.n, s.t, s.sampling_kappa);
             b.nodes = base::make_sampling_majority_nodes(params, inputs, seeds);
             b.phases = params.rounds;
             b.default_max_rounds = params.rounds + 1;
             return b;
         },
         [](const Scenario& s, const std::vector<Bit>& inputs, const SeedTree& seeds,
            ProtocolBundle& b) {
             const auto params =
                 base::SamplingMajorityParams::compute(s.n, s.t, s.sampling_kappa);
             base::reinit_sampling_majority_nodes(params, inputs, seeds, b.nodes);
         },
         nullptr,
         [](const Scenario& s) {
             const auto p = base::SamplingMajorityParams::compute(s.n, s.t, s.sampling_kappa);
             return BudgetHint{p.rounds, static_cast<Round>(p.rounds + 1)};
         },
         // No native batch: sampling-majority's receive is per-receiver
         // randomized (two random senders per node), so batching would only
         // save the dispatch; it rides the PerNodeBatch adapter.
         nullptr,
         nullptr});
}

// --------------------------------------------------------- built-in adversaries

AdversaryRegistry& AdversaryRegistry::instance() {
    static AdversaryRegistry reg;
    return reg;
}

AdversaryRegistry::AdversaryRegistry() : RegistryBase("adversary") {
    const auto q_of = [](const Scenario& s) { return s.q.value_or(s.t); };

    add({AdversaryKind::None,
         "none",
         "none",
         {"null"},
         "no corruptions (honest baseline)",
         "-",
         "-",
         false,
         std::nullopt,
         [](const Scenario&, const ProtocolBundle&, const SeedTree&) {
             return std::make_unique<net::NullAdversary>();
         },
         /*supports_fused=*/true});

    add({AdversaryKind::Static,
         "static",
         "static",
         {},
         "static random corrupt set, split-vote behaviour",
         "no",
         "no",
         false,
         std::nullopt,
         [q_of](const Scenario& s, const ProtocolBundle&, const SeedTree& seeds)
             -> std::unique_ptr<net::Adversary> {
             return std::make_unique<adv::StaticAdversary>(
                 q_of(s), adv::StaticBehavior::SplitVotes,
                 seeds.stream(StreamPurpose::Adversary));
         },
         /*supports_fused=*/true});

    add({AdversaryKind::SplitVote,
         "split-vote",
         "split-vote",
         {"splitvote"},
         "static set, threshold-straddling equivocation",
         "no",
         "no",
         false,
         std::nullopt,
         [q_of](const Scenario& s, const ProtocolBundle&, const SeedTree& seeds)
             -> std::unique_ptr<net::Adversary> {
             return std::make_unique<adv::SplitVoteAdversary>(
                 q_of(s), seeds.stream(StreamPurpose::Adversary));
         },
         /*supports_fused=*/true});

    add({AdversaryKind::Chaos,
         "chaos",
         "chaos",
         {},
         "random adaptive corruptions, fuzzed messages",
         "yes",
         "no",
         false,
         std::nullopt,
         [q_of](const Scenario& s, const ProtocolBundle&, const SeedTree& seeds)
             -> std::unique_ptr<net::Adversary> {
             return std::make_unique<adv::ChaosAdversary>(
                 adv::ChaosConfig{q_of(s), 0.25, 0.7},
                 seeds.stream(StreamPurpose::Adversary));
         }});

    add({AdversaryKind::CrashRandom,
         "crash-random",
         "crash(random)",
         {"crash(random)", "crash"},
         "adaptive random crash faults",
         "yes",
         "yes",
         false,
         std::nullopt,
         [q_of](const Scenario& s, const ProtocolBundle&, const SeedTree& seeds)
             -> std::unique_ptr<net::Adversary> {
             return std::make_unique<adv::CrashAdversary>(
                 adv::CrashConfig{q_of(s), adv::CrashMode::Random, 0.15, std::nullopt},
                 seeds.stream(StreamPurpose::Adversary));
         },
         /*supports_fused=*/true});

    add({AdversaryKind::CrashTargetedCoin,
         "crash-targeted-coin",
         "crash(targeted)",
         {"crash(targeted)", "crash-targeted"},
         "BJBO-style adaptive crash attack on the committee coin",
         "yes",
         "yes",
         true,
         std::nullopt,
         [q_of](const Scenario& s, const ProtocolBundle& bundle, const SeedTree& seeds)
             -> std::unique_ptr<net::Adversary> {
             return std::make_unique<adv::CrashAdversary>(
                 adv::CrashConfig{q_of(s), adv::CrashMode::TargetedCoin, 0.0,
                                  bundle.schedule},
                 seeds.stream(StreamPurpose::Adversary));
         },
         /*supports_fused=*/true});

    add({AdversaryKind::WorstCase,
         "worst-case",
         "worst-case",
         {"worstcase", "rushing"},
         "schedule-aware rushing attack (the paper's model)",
         "yes",
         "yes",
         true,
         std::nullopt,
         [q_of](const Scenario& s, const ProtocolBundle& bundle, const SeedTree&)
             -> std::unique_ptr<net::Adversary> {
             return std::make_unique<adv::WorstCaseAdversary>(
                 adv::WorstCaseConfig{s.t, q_of(s), *bundle.schedule, true});
         }});

    add({AdversaryKind::KingKiller,
         "king-killer",
         "king-killer",
         {"kingkiller"},
         "adaptive king corruption (Phase-King only)",
         "yes",
         "no",
         false,
         ProtocolKind::PhaseKing,
         [q_of](const Scenario& s, const ProtocolBundle&, const SeedTree&)
             -> std::unique_ptr<net::Adversary> {
             return std::make_unique<adv::KingKillerAdversary>(
                 base::PhaseKingParams{s.n, s.t}, q_of(s));
         }});

    add({AdversaryKind::Balancer,
         "balancer",
         "balancer",
         {"majority-balancer"},
         "drift-cancelling attack on sampling/majority protocols (E11)",
         "yes",
         "yes",
         false,
         std::nullopt,
         [q_of](const Scenario& s, const ProtocolBundle&, const SeedTree&)
             -> std::unique_ptr<net::Adversary> {
             return std::make_unique<adv::MajorityBalancerAdversary>(
                 adv::BalancerConfig{q_of(s), 0});
         }});
}

// ------------------------------------------------- built-in mv adversaries

MvAdversaryRegistry& MvAdversaryRegistry::instance() {
    static MvAdversaryRegistry reg;
    return reg;
}

MvAdversaryRegistry::MvAdversaryRegistry() : RegistryBase("mv-adversary") {
    // Actual corruption cap: like the binary stack, `q` (default t) bounds
    // what the adversary spends while the engine budget stays t.
    const auto q_of = [](const MvScenario& s) { return s.q.value_or(s.t); };

    add({MvAdversaryKind::None,
         "none",
         "none",
         {"null"},
         "no corruptions",
         [](const MvScenario&, const core::MultiValuedParams&, const SeedTree&) {
             return std::make_unique<net::NullAdversary>();
         }});

    add({MvAdversaryKind::Chaos,
         "chaos",
         "chaos",
         {},
         "fuzzed garbage incl. Turpin-Coan message kinds",
         [q_of](const MvScenario& s, const core::MultiValuedParams&,
                const SeedTree& seeds) -> std::unique_ptr<net::Adversary> {
             return std::make_unique<adv::ChaosAdversary>(
                 adv::ChaosConfig{q_of(s), 0.3, 0.7},
                 seeds.stream(StreamPurpose::Adversary));
         }});

    add({MvAdversaryKind::WorstCaseInner,
         "worst-case-inner",
         "worst-case(inner)",
         {"worst-case(inner)", "inner"},
         "full budget on the embedded Algorithm 3",
         [q_of](const MvScenario& s, const core::MultiValuedParams& params,
                const SeedTree&) -> std::unique_ptr<net::Adversary> {
             return std::make_unique<adv::WorstCaseAdversary>(adv::WorstCaseConfig{
                 s.t, q_of(s), params.binary.schedule, true, /*round_offset=*/2});
         }});

    add({MvAdversaryKind::PreludePlusWorstCase,
         "prelude+worst-case",
         "prelude+worst-case",
         {"prelude-plus-worst-case", "prelude"},
         "half budget equivocating the prelude, half on the inner protocol",
         [q_of](const MvScenario& s, const core::MultiValuedParams& params,
                const SeedTree& seeds) -> std::unique_ptr<net::Adversary> {
             const Count half = q_of(s) / 2;
             auto prelude = std::make_unique<adv::TcPreludeAdversary>(
                 half, seeds.stream(StreamPurpose::Adversary));
             auto inner = std::make_unique<adv::WorstCaseAdversary>(adv::WorstCaseConfig{
                 s.t, q_of(s) - half, params.binary.schedule, true, /*round_offset=*/2});
             return std::make_unique<adv::SwitchAdversary>(std::move(prelude),
                                                           std::move(inner), 2);
         }});
}

// ------------------------------------------------------ compatibility checks

std::optional<std::string> why_incompatible(const Scenario& s) {
    const ProtocolEntry& p = ProtocolRegistry::instance().at(s.protocol);
    const AdversaryEntry& a = AdversaryRegistry::instance().at(s.adversary);

    if (!p.supports(s.n, s.t))
        return "protocol '" + p.name + "' requires " + p.resilience + " (got n=" +
               std::to_string(s.n) + ", t=" + std::to_string(s.t) +
               "); lower t or pick another protocol (see `adba_sim --list`)";

    const Count q = s.q.value_or(s.t);
    if (q > s.t)
        return "actual corruptions q must not exceed the budget t (q=" +
               std::to_string(q) + ", t=" + std::to_string(s.t) + ")";

    if (a.needs_schedule && !p.schedule_of) {
        std::string with;
        for (const ProtocolEntry* e : ProtocolRegistry::instance().list())
            if (e->schedule_of) with += (with.empty() ? "" : ", ") + e->name;
        return "adversary '" + a.name + "' needs a committee-schedule protocol; '" +
               p.name + "' has none (compatible protocols: " + with + ")";
    }

    if (a.requires_protocol && *a.requires_protocol != p.kind) {
        const std::string target =
            ProtocolRegistry::instance().at(*a.requires_protocol).name;
        return "adversary '" + a.name + "' targets protocol '" + target +
               "' only (scenario has '" + p.name + "')";
    }

    if (s.sparse_plane) {
        if (!p.supports_sparse) {
            std::string with;
            for (const ProtocolEntry* e : ProtocolRegistry::instance().list())
                if (e->supports_sparse) with += (with.empty() ? "" : ", ") + e->name;
            return "plane=sparse needs a sparse-capable native batch; protocol '" +
                   p.name + "' has none (sparse-capable protocols: " + with + ")";
        }
        if (!s.use_batch)
            return "plane=sparse answers receive beats through the native batch "
                   "plane and cannot combine with batch=false; drop one of the two";
        if (s.reference_delivery)
            return "plane=sparse has no reference-delivery form; drop "
                   "reference=true (use plane=flat for oracle comparisons)";
        if (!s.use_simd)
            return "plane=sparse reads the word-packed tally planes and cannot "
                   "combine with simd=false; drop one of the two";
    }

    if (s.use_fused) {
        if (!p.make_fused) {
            std::string with;
            for (const ProtocolEntry* e : ProtocolRegistry::instance().list())
                if (e->make_fused) with += (with.empty() ? "" : ", ") + e->name;
            return "fused=true needs a fused-capable protocol; '" + p.name +
                   "' has no 64-lane form (fused-capable protocols: " + with + ")";
        }
        if (!a.supports_fused) {
            std::string with;
            for (const AdversaryEntry* e : AdversaryRegistry::instance().list())
                if (e->supports_fused) with += (with.empty() ? "" : ", ") + e->name;
            return "adversary '" + a.name +
                   "' does not act through the fused plane's lane-masked "
                   "split_as bridge; drop fused=true or pick one of: " +
                   with;
        }
        if (s.sparse_plane)
            return "fused=true co-executes 64 trials on the flat bit planes and "
                   "cannot combine with plane=sparse; drop one of the two";
        if (s.reference_delivery)
            return "fused=true has no reference-delivery form; drop "
                   "reference=true (use fused=false for oracle comparisons)";
        if (s.record_transcript)
            return "fused=true does not record per-trial transcripts (64 trials "
                   "share each beat); drop transcript=true or fused=true";
        if (!s.use_batch)
            return "fused=true is the word-parallel form of the native batch "
                   "plane and cannot combine with batch=false; drop one of the "
                   "two";
        if (s.watchdog_ms != 0)
            return "fused=true shares wall-clock across 64 co-executing trials, "
                   "so a per-trial watchdog is undefined; drop watchdog_ms or "
                   "fused=true";
    }

    return std::nullopt;
}

bool compatible(const Scenario& s) { return !why_incompatible(s).has_value(); }

ScenarioPlan validate(const Scenario& s) {
    if (const auto why = why_incompatible(s)) throw ContractViolation(*why);
    return {s, &ProtocolRegistry::instance().at(s.protocol),
            &AdversaryRegistry::instance().at(s.adversary)};
}

std::optional<std::string> why_incompatible(const MvScenario& s) {
    if (s.n == 0) return "multi-valued scenario needs n > 0";
    if (3 * static_cast<std::uint64_t>(s.t) >= s.n)
        return "the Turpin-Coan reduction requires t < n/3 (got n=" +
               std::to_string(s.n) + ", t=" + std::to_string(s.t) + ")";
    const Count q = s.q.value_or(s.t);
    if (q > s.t)
        return "actual corruptions q must not exceed the budget t (q=" +
               std::to_string(q) + ", t=" + std::to_string(s.t) + ")";
    if (s.sparse_plane)
        return "the multi-valued stack has no sparse delivery plane yet (the "
               "Turpin-Coan word histograms do not fit the bit-plane sampling); "
               "use plane=flat";
    return std::nullopt;
}

bool compatible(const MvScenario& s) { return !why_incompatible(s).has_value(); }

MvScenarioPlan validate(const MvScenario& s) {
    if (const auto why = why_incompatible(s)) throw ContractViolation(*why);
    MvScenarioPlan plan;
    plan.scenario = s;
    const auto mode = s.las_vegas ? core::AgreementMode::LasVegas
                                  : core::AgreementMode::WhpFixedPhases;
    plan.params = core::MultiValuedParams::compute(s.n, s.t, s.tuning, s.fallback, mode);
    plan.cap = s.las_vegas ? 32 * core::max_rounds_whp(plan.params) + 256
                           : core::max_rounds_whp(plan.params);
    plan.adversary = &MvAdversaryRegistry::instance().at(s.adversary);
    return plan;
}

// -------------------------------------------------------- input-name tables

InputPattern parse_input_pattern(const std::string& name) {
    const std::string k = lower(name);
    if (k == "all-zero" || k == "zeros") return InputPattern::AllZero;
    if (k == "all-one" || k == "ones") return InputPattern::AllOne;
    if (k == "split") return InputPattern::Split;
    if (k == "random") return InputPattern::Random;
    throw ContractViolation("unknown input pattern '" + name +
                            "'; known: all-zero, all-one, split, random");
}

MvInputPattern parse_mv_input_pattern(const std::string& name) {
    const std::string k = lower(name);
    if (k == "all-same") return MvInputPattern::AllSame;
    if (k == "two-blocks") return MvInputPattern::TwoBlocks;
    if (k == "all-distinct" || k == "distinct") return MvInputPattern::Distinct;
    if (k == "random" || k == "random(4)" || k == "random-tiny")
        return MvInputPattern::RandomTiny;
    if (k == "near-quorum" || k == "near-quorum(60%)") return MvInputPattern::NearQuorum;
    throw ContractViolation(
        "unknown multi-valued input pattern '" + name +
        "'; known: all-same, two-blocks, all-distinct, random, near-quorum");
}

bool parse_plane_name(const std::string& name) {
    const std::string k = lower(name);
    if (k == "flat") return false;
    if (k == "sparse") return true;
    std::string msg = "unknown delivery plane '" + name + "'; known: flat, sparse";
    const std::string suggestion = closest_match(k, {"flat", "sparse"});
    if (!suggestion.empty()) msg += " (did you mean '" + suggestion + "'?)";
    throw ContractViolation(msg);
}

net::SparseStream parse_sparse_stream_name(const std::string& name) {
    const std::string k = lower(name);
    if (k == "chain") return net::SparseStream::Chain;
    if (k == "counter") return net::SparseStream::Counter;
    std::string msg =
        "unknown sparse sample stream '" + name + "'; known: chain, counter";
    const std::string suggestion = closest_match(k, {"chain", "counter"});
    if (!suggestion.empty()) msg += " (did you mean '" + suggestion + "'?)";
    throw ContractViolation(msg);
}

// ------------------------------------------------- Scenario parse / describe

std::string Scenario::describe() const {
    static const Scenario defaults;
    std::string out = "protocol=" + ProtocolRegistry::instance().at(protocol).name +
                      " adversary=" + AdversaryRegistry::instance().at(adversary).name +
                      " inputs=" + to_string(inputs) + " n=" + std::to_string(n) +
                      " t=" + std::to_string(t);
    if (q) out += " q=" + std::to_string(*q);
    if (tuning.alpha != defaults.tuning.alpha)
        out += " alpha=" + fmt_double(tuning.alpha);
    if (tuning.gamma != defaults.tuning.gamma)
        out += " gamma=" + fmt_double(tuning.gamma);
    if (tuning.beta != defaults.tuning.beta) out += " beta=" + fmt_double(tuning.beta);
    if (local_coin_phases != defaults.local_coin_phases)
        out += " phases=" + std::to_string(local_coin_phases);
    if (sampling_kappa != defaults.sampling_kappa)
        out += " kappa=" + fmt_double(sampling_kappa);
    if (max_rounds_override != defaults.max_rounds_override)
        out += " max_rounds=" + std::to_string(max_rounds_override);
    if (record_transcript) out += " transcript=true";
    if (reference_delivery) out += " reference=true";
    if (!use_batch) out += " batch=false";
    if (!use_shard) out += " shard=false";
    if (!use_simd) out += " simd=false";
    if (intra_threads != defaults.intra_threads)
        out += " intra_threads=" + std::to_string(intra_threads);
    if (sparse_plane) out += " plane=sparse";
    if (sample_degree != defaults.sample_degree)
        out += " sample_degree=" + std::to_string(sample_degree);
    if (sparse_seed != defaults.sparse_seed)
        out += " sparse_seed=" + std::to_string(sparse_seed);
    if (sparse_stream != defaults.sparse_stream)
        out += std::string(" sparse_stream=") +
               (sparse_stream == net::SparseStream::Chain ? "chain" : "counter");
    if (use_fused) out += " fused=true";
    if (watchdog_ms != defaults.watchdog_ms)
        out += " watchdog_ms=" + std::to_string(watchdog_ms);
    return out;
}

namespace {

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
    try {
        std::size_t pos = 0;
        const unsigned long long v = std::stoull(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
        return v;
    } catch (const ContractViolation&) {
        throw;
    } catch (...) {
        throw ContractViolation("scenario key '" + key +
                                "' expects a non-negative integer, got '" + value + "'");
    }
}

bool parse_onoff(const std::string& value) {
    return value == "true" || value == "1" || value == "yes" || value == "on";
}

/// THE spec tokenizer: splits a `key=value ...` string (tolerating trailing
/// ','/';' per token) and hands lowercased keys to `apply`. Shared by
/// Scenario::parse and MvScenario::parse so separator/error semantics can
/// never diverge between the stacks.
template <typename Apply>
void for_each_spec_token(const std::string& spec, const Apply& apply) {
    std::istringstream in(spec);
    std::string token;
    while (in >> token) {
        while (!token.empty() && (token.back() == ',' || token.back() == ';'))
            token.pop_back();
        if (token.empty()) continue;
        const auto eq = token.find('=');
        if (eq == std::string::npos)
            throw ContractViolation("scenario token '" + token +
                                    "' is not of the form key=value");
        apply(lower(token.substr(0, eq)), token.substr(eq + 1));
    }
}

double parse_f64(const std::string& key, const std::string& value) {
    try {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
        return v;
    } catch (const ContractViolation&) {
        throw;
    } catch (...) {
        throw ContractViolation("scenario key '" + key + "' expects a number, got '" +
                                value + "'");
    }
}

}  // namespace

Scenario Scenario::parse(const std::string& spec) {
    Scenario s;
    for_each_spec_token(spec, [&s](const std::string& key, const std::string& value) {
        if (key == "protocol") {
            s.protocol = ProtocolRegistry::instance().at(value).kind;
        } else if (key == "adversary") {
            s.adversary = AdversaryRegistry::instance().at(value).kind;
        } else if (key == "inputs") {
            s.inputs = parse_input_pattern(value);
        } else if (key == "n") {
            s.n = static_cast<NodeId>(parse_u64(key, value));
        } else if (key == "t") {
            s.t = static_cast<Count>(parse_u64(key, value));
        } else if (key == "q") {
            s.q = static_cast<Count>(parse_u64(key, value));
        } else if (key == "alpha") {
            s.tuning.alpha = parse_f64(key, value);
        } else if (key == "gamma") {
            s.tuning.gamma = parse_f64(key, value);
        } else if (key == "beta") {
            s.tuning.beta = parse_f64(key, value);
        } else if (key == "phases") {
            s.local_coin_phases = static_cast<Count>(parse_u64(key, value));
        } else if (key == "kappa") {
            s.sampling_kappa = parse_f64(key, value);
        } else if (key == "max_rounds") {
            s.max_rounds_override = static_cast<Round>(parse_u64(key, value));
        } else if (key == "transcript") {
            s.record_transcript = parse_onoff(value);
        } else if (key == "reference") {
            s.reference_delivery = parse_onoff(value);
        } else if (key == "batch") {
            s.use_batch = parse_onoff(value);
        } else if (key == "shard") {
            s.use_shard = parse_onoff(value);
        } else if (key == "simd") {
            s.use_simd = parse_onoff(value);
        } else if (key == "intra_threads") {
            s.intra_threads = static_cast<Count>(parse_u64(key, value));
        } else if (key == "plane") {
            s.sparse_plane = parse_plane_name(value);
        } else if (key == "sample_degree") {
            s.sample_degree = static_cast<Count>(parse_u64(key, value));
        } else if (key == "sparse_seed") {
            s.sparse_seed = parse_u64(key, value);
        } else if (key == "sparse_stream") {
            s.sparse_stream = parse_sparse_stream_name(value);
        } else if (key == "fused") {
            s.use_fused = parse_onoff(value);
        } else if (key == "watchdog_ms") {
            s.watchdog_ms = static_cast<std::uint32_t>(parse_u64(key, value));
        } else {
            throw ContractViolation(
                "unknown scenario key '" + key +
                "'; valid keys: protocol, adversary, inputs, n, t, q, alpha, gamma, "
                "beta, phases, kappa, max_rounds, transcript, reference, batch, "
                "shard, simd, intra_threads, plane, sample_degree, sparse_seed, "
                "sparse_stream, fused, watchdog_ms");
        }
    });
    return s;
}

// --------------------------------------------- MvScenario parse / describe

std::string MvScenario::describe() const {
    static const MvScenario defaults;
    std::string out = "adversary=" + MvAdversaryRegistry::instance().at(adversary).name +
                      " inputs=" + to_string(inputs) + " n=" + std::to_string(n) +
                      " t=" + std::to_string(t);
    if (q) out += " q=" + std::to_string(*q);
    if (tuning.alpha != defaults.tuning.alpha)
        out += " alpha=" + fmt_double(tuning.alpha);
    if (tuning.gamma != defaults.tuning.gamma)
        out += " gamma=" + fmt_double(tuning.gamma);
    if (tuning.beta != defaults.tuning.beta) out += " beta=" + fmt_double(tuning.beta);
    if (fallback != defaults.fallback) out += " fallback=" + std::to_string(fallback);
    if (las_vegas) out += " las_vegas=true";
    if (reference_delivery) out += " reference=true";
    if (!use_batch) out += " batch=false";
    if (!use_simd) out += " simd=false";
    if (sparse_plane) out += " plane=sparse";
    if (sample_degree != defaults.sample_degree)
        out += " sample_degree=" + std::to_string(sample_degree);
    if (watchdog_ms != defaults.watchdog_ms)
        out += " watchdog_ms=" + std::to_string(watchdog_ms);
    return out;
}

MvScenario MvScenario::parse(const std::string& spec) {
    MvScenario s;
    for_each_spec_token(spec, [&s](const std::string& key, const std::string& value) {
        if (key == "adversary") {
            s.adversary = MvAdversaryRegistry::instance().at(value).kind;
        } else if (key == "inputs") {
            s.inputs = parse_mv_input_pattern(value);
        } else if (key == "n") {
            s.n = static_cast<NodeId>(parse_u64(key, value));
        } else if (key == "t") {
            s.t = static_cast<Count>(parse_u64(key, value));
        } else if (key == "q") {
            s.q = static_cast<Count>(parse_u64(key, value));
        } else if (key == "alpha") {
            s.tuning.alpha = parse_f64(key, value);
        } else if (key == "gamma") {
            s.tuning.gamma = parse_f64(key, value);
        } else if (key == "beta") {
            s.tuning.beta = parse_f64(key, value);
        } else if (key == "fallback") {
            s.fallback = static_cast<net::Word>(parse_u64(key, value));
        } else if (key == "las_vegas") {
            s.las_vegas = parse_onoff(value);
        } else if (key == "reference") {
            s.reference_delivery = parse_onoff(value);
        } else if (key == "batch") {
            s.use_batch = parse_onoff(value);
        } else if (key == "simd") {
            s.use_simd = parse_onoff(value);
        } else if (key == "plane") {
            s.sparse_plane = parse_plane_name(value);
        } else if (key == "sample_degree") {
            s.sample_degree = static_cast<Count>(parse_u64(key, value));
        } else if (key == "watchdog_ms") {
            s.watchdog_ms = static_cast<std::uint32_t>(parse_u64(key, value));
        } else {
            throw ContractViolation(
                "unknown multi-valued scenario key '" + key +
                "'; valid keys: adversary, inputs, n, t, q, alpha, gamma, beta, "
                "fallback, las_vegas, reference, batch, simd, plane, sample_degree, "
                "watchdog_ms");
        }
    });
    return s;
}

// ----------------------------------------------------------- memory budget

namespace {

std::string mb_string(std::uint64_t bytes) {
    // Ceiling in MiB so "needs ~X MiB" never understates.
    return std::to_string((bytes + (1ULL << 20) - 1) >> 20) + " MiB";
}

}  // namespace

std::optional<std::string> apply_memory_budget(Scenario& s) {
    const std::uint64_t budget_mb = default_mem_budget_mb();
    if (budget_mb == 0) return std::nullopt;
    const std::uint64_t budget = budget_mb << 20;

    const std::uint64_t flat = estimate_trial_arena_bytes(s.n, s.sparse_plane);
    if (flat <= budget) return std::nullopt;

    const ProtocolEntry& p = ProtocolRegistry::instance().at(s.protocol);
    const bool can_fall_back = !s.sparse_plane && p.supports_sparse && s.use_batch &&
                               s.use_simd && !s.reference_delivery && !s.use_fused;
    if (can_fall_back) {
        const std::uint64_t sparse = estimate_trial_arena_bytes(s.n, true);
        if (sparse <= budget) {
            s.sparse_plane = true;
            return "[adba] memory budget: flat plane at n=" + std::to_string(s.n) +
                   " needs ~" + mb_string(flat) + " > budget " +
                   std::to_string(budget_mb) +
                   " MiB; falling back to plane=sparse (~" + mb_string(sparse) +
                   "); results are sampled estimates, not exact tallies";
        }
    }

    throw ContractViolation(
        "scenario at n=" + std::to_string(s.n) + " needs ~" + mb_string(flat) +
        " per trial arena, over the memory budget of " + std::to_string(budget_mb) +
        " MiB" +
        (can_fall_back ? " (even the sparse plane would not fit)"
         : s.sparse_plane
             ? ""
             : " and cannot fall back to the sparse plane under this "
               "configuration (needs a sparse-capable protocol with batch=on, "
               "simd=on, reference=off)") +
        "; raise --mem_budget_mb / ADBA_MEM_BUDGET_MB, lower n, or pick a "
        "sparse-capable protocol");
}

void enforce_memory_budget(const MvScenario& s) {
    const std::uint64_t budget_mb = default_mem_budget_mb();
    if (budget_mb == 0) return;
    const std::uint64_t need = estimate_trial_arena_bytes(s.n, false);
    if (need <= (budget_mb << 20)) return;
    throw ContractViolation(
        "multi-valued scenario at n=" + std::to_string(s.n) + " needs ~" +
        mb_string(need) + " per trial arena, over the memory budget of " +
        std::to_string(budget_mb) +
        " MiB; the Turpin-Coan stack has no sparse fallback — raise "
        "--mem_budget_mb / ADBA_MEM_BUDGET_MB or lower n");
}

}  // namespace adba::sim
