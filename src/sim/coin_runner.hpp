// Harness for the standalone common-coin experiments (E1/E2): runs
// Algorithm 1/2 against the rushing coin-ruin adversary and estimates
// Definition 2's constants (δ = P(common), ε-band of P(bit=0 | common)).
#pragma once

#include <cstdint>

#include "adversary/coin_ruin.hpp"
#include "sim/executor.hpp"
#include "support/types.hpp"

namespace adba::sim {

struct CoinScenario {
    NodeId n = 0;
    NodeId designated = 0;  ///< k flippers (== n for Algorithm 1)
    Count f = 0;            ///< adaptive corruption budget
    adv::CoinAttack attack = adv::CoinAttack::Split;
    Bit forced_bit = 0;
};

struct CoinTrial {
    bool common = false;
    Bit value = 0;          ///< the common bit, when common
    bool attack_feasible = false;
};

CoinTrial run_coin_trial(const CoinScenario& s, std::uint64_t seed);

struct CoinAggregate {
    Count trials = 0;
    Count common = 0;
    Count common_ones = 0;   ///< common with value 1
    Count attack_feasible = 0;

    double p_common() const;
    /// P(bit = 1 | common); Definition 2(B) wants this in [ε, 1-ε].
    double p_one_given_common() const;

    /// Order-independent (pure counters), kept symmetric with Aggregate.
    void merge(const CoinAggregate& other);
};

/// Parallel over the executor; bit-identical at any thread count (per-trial
/// seeds are an index-only function of base_seed).
CoinAggregate run_coin_trials(const CoinScenario& s, std::uint64_t base_seed,
                              Count trials, const ExecutorConfig& exec = {});

}  // namespace adba::sim
