// Harness for the standalone common-coin experiments (E1/E2): runs
// Algorithm 1/2 against the rushing coin-ruin adversary and estimates
// Definition 2's constants (δ = P(common), ε-band of P(bit=0 | common)).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "adversary/coin_ruin.hpp"
#include "sim/executor.hpp"
#include "sim/workload.hpp"
#include "support/types.hpp"

namespace adba::sim {

struct CoinScenario {
    NodeId n = 0;
    NodeId designated = 0;  ///< k flippers (== n for Algorithm 1)
    Count f = 0;            ///< adaptive corruption budget
    adv::CoinAttack attack = adv::CoinAttack::Split;
    Bit forced_bit = 0;

    friend bool operator==(const CoinScenario&, const CoinScenario&) = default;
};

struct CoinTrial {
    bool common = false;
    Bit value = 0;          ///< the common bit, when common
    bool attack_feasible = false;
    /// Coin trials run exactly one round and the nodes self-halt, so the
    /// engine always reports Decided; Faulted is set by the trial kernel
    /// for injected permanent faults (sim/faults.hpp).
    TrialOutcome outcome = TrialOutcome::Decided;
};

CoinTrial run_coin_trial(const CoinScenario& s, std::uint64_t seed);

struct CoinAggregate {
    Count trials = 0;
    Count common = 0;
    Count common_ones = 0;   ///< common with value 1
    Count attack_feasible = 0;
    /// Trials consumed by an injected permanent fault; excluded from every
    /// probability estimate's denominator.
    Count faulted = 0;

    double p_common() const;
    /// P(bit = 1 | common); Definition 2(B) wants this in [ε, 1-ε].
    double p_one_given_common() const;

    /// Order-independent (pure counters), kept symmetric with Aggregate.
    void merge(const CoinAggregate& other);
};

/// Common-coin workload: the standalone Algorithm 1/2 trial stack as a
/// workload.hpp trait. The scenario doubles as the plan — there is nothing
/// to hoist beyond the value itself.
struct CoinWorkload {
    using Scenario = CoinScenario;
    using Result = CoinTrial;
    using Aggregate = CoinAggregate;
    using Plan = CoinScenario;
    class Arena;  ///< pooled coin nodes + engine (coin_runner.cpp)
    static constexpr std::uint64_t kSeedStride = 0x9e3779b1ULL;
    static constexpr const char* kName = "coin";

    static Plan make_plan(const Scenario& s) { return s; }
    static void accumulate(Aggregate& agg, const Result& r);

    static std::vector<std::string> csv_header();
    static std::vector<std::string> csv_row(const Aggregate& agg);

    // Checkpoint hooks (sim/checkpoint.hpp). The scenario has no describe()
    // form, so the scope fingerprint is assembled field by field.
    static std::string checkpoint_scope(const Plan& plan);
    static void checkpoint_encode(const Aggregate& agg, std::string& out);
    static void checkpoint_decode(std::string_view bytes, Aggregate& agg);
};

/// Runs on the workload-generic kernel (sim/workload.hpp); bit-identical at
/// any thread count (per-trial seeds are an index-only function of
/// base_seed). Throws ContractViolation with the why_incompatible message
/// on an infeasible scenario.
CoinAggregate run_coin_trials(const CoinScenario& s, std::uint64_t base_seed,
                              Count trials, const ExecutorConfig& exec = {});

/// Coin feasibility: needs n > 0 and 1 <= k <= n flippers. Returns an
/// actionable message (the adba_sim/driver-facing counterpart of the
/// arena's precondition asserts), nullopt when the scenario can run.
std::optional<std::string> why_incompatible(const CoinScenario& s);
bool compatible(const CoinScenario& s);

/// Name <-> enum helpers for the coin-attack axis (adba_sim --workload=coin).
adv::CoinAttack parse_coin_attack(const std::string& name);
std::string to_string(adv::CoinAttack attack);

}  // namespace adba::sim
