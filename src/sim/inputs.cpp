#include "sim/inputs.hpp"

#include "support/contracts.hpp"

namespace adba::sim {

void make_inputs(InputPattern pattern, NodeId n, const SeedTree& seeds,
                 std::vector<Bit>& out) {
    ADBA_EXPECTS(n > 0);
    out.assign(n, 0);
    switch (pattern) {
        case InputPattern::AllZero:
            break;
        case InputPattern::AllOne:
            out.assign(n, 1);
            break;
        case InputPattern::Split:
            for (NodeId v = 0; v < n; ++v) out[v] = static_cast<Bit>(v & 1);
            break;
        case InputPattern::Random: {
            auto rng = seeds.stream(StreamPurpose::InputAssignment);
            for (NodeId v = 0; v < n; ++v) out[v] = rng.bit();
            break;
        }
    }
}

std::vector<Bit> make_inputs(InputPattern pattern, NodeId n, const SeedTree& seeds) {
    std::vector<Bit> inputs;
    make_inputs(pattern, n, seeds, inputs);
    return inputs;
}

bool unanimous(const std::vector<Bit>& inputs) {
    for (Bit b : inputs)
        if (b != inputs.front()) return false;
    return true;
}

std::string to_string(InputPattern pattern) {
    switch (pattern) {
        case InputPattern::AllZero: return "all-zero";
        case InputPattern::AllOne: return "all-one";
        case InputPattern::Split: return "split";
        case InputPattern::Random: return "random";
    }
    return "?";
}

}  // namespace adba::sim
