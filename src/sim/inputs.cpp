#include "sim/inputs.hpp"

#include "support/contracts.hpp"

namespace adba::sim {

std::vector<Bit> make_inputs(InputPattern pattern, NodeId n, const SeedTree& seeds) {
    ADBA_EXPECTS(n > 0);
    std::vector<Bit> inputs(n, 0);
    switch (pattern) {
        case InputPattern::AllZero:
            break;
        case InputPattern::AllOne:
            inputs.assign(n, 1);
            break;
        case InputPattern::Split:
            for (NodeId v = 0; v < n; ++v) inputs[v] = static_cast<Bit>(v & 1);
            break;
        case InputPattern::Random: {
            auto rng = seeds.stream(StreamPurpose::InputAssignment);
            for (NodeId v = 0; v < n; ++v) inputs[v] = rng.bit();
            break;
        }
    }
    return inputs;
}

bool unanimous(const std::vector<Bit>& inputs) {
    for (Bit b : inputs)
        if (b != inputs.front()) return false;
    return true;
}

std::string to_string(InputPattern pattern) {
    switch (pattern) {
        case InputPattern::AllZero: return "all-zero";
        case InputPattern::AllOne: return "all-one";
        case InputPattern::Split: return "split";
        case InputPattern::Random: return "random";
    }
    return "?";
}

}  // namespace adba::sim
