#include "sim/coin_runner.hpp"

#include <optional>
#include <utility>

#include "core/common_coin.hpp"
#include "net/engine.hpp"
#include "rand/seed_tree.hpp"
#include "sim/checkpoint.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace adba::sim {

/// Per-chunk reusable coin-trial state (pooled nodes + engine); run() is
/// bit-identical to the one-shot run_coin_trial path.
class CoinWorkload::Arena {
public:
    explicit Arena(const CoinScenario& s) : s_(s) {
        ADBA_EXPECTS(s.designated >= 1 && s.designated <= s.n);
    }

    CoinTrial run(std::uint64_t seed) {
        const SeedTree seeds(seed);
        const core::CoinConfig cfg{s_.n, s_.designated};
        if (nodes_.empty()) {
            nodes_ = core::make_coin_nodes(cfg, seeds);
        } else {
            core::reinit_coin_nodes(cfg, seeds, nodes_);
        }

        adv::CoinRuinAdversary adversary(
            adv::CoinRuinConfig{s_.designated, s_.f, s_.attack, s_.forced_bit});

        net::EngineConfig ecfg;
        ecfg.n = s_.n;
        ecfg.budget = s_.f;
        ecfg.max_rounds = 1;
        if (engine_) {
            engine_->reset(ecfg, std::move(nodes_), adversary);
        } else {
            engine_.emplace(ecfg, std::move(nodes_), adversary);
        }
        const net::RunResult run = engine_->run();
        nodes_ = engine_->take_nodes();

        CoinTrial out;
        out.common = run.agreement();
        if (out.common) {
            if (const auto v = run.agreed_value()) out.value = *v;
        }
        out.attack_feasible = adversary.attack_feasible();
        // Coin nodes self-halt after their single round, so the engine can
        // only report Decided here; carry it anyway so the taxonomy flows
        // through this workload like every other.
        out.outcome = run.outcome;
        return out;
    }

private:
    CoinScenario s_;
    std::vector<std::unique_ptr<net::HonestNode>> nodes_;
    std::optional<net::Engine> engine_;
};

void CoinWorkload::accumulate(CoinAggregate& agg, const CoinTrial& r) {
    if (r.outcome == TrialOutcome::Faulted) {
        ++agg.faulted;
        return;
    }
    if (r.common) {
        ++agg.common;
        if (r.value == 1) ++agg.common_ones;
    }
    if (r.attack_feasible) ++agg.attack_feasible;
}

std::vector<std::string> CoinWorkload::csv_header() {
    return {"trials", "faulted", "p_common", "p_one_given_common",
            "attack_feasible_pct"};
}

std::vector<std::string> CoinWorkload::csv_row(const CoinAggregate& agg) {
    const Count ran = agg.trials - agg.faulted;
    const double feasible =
        ran == 0 ? 0.0
                 : 100.0 * static_cast<double>(agg.attack_feasible) /
                       static_cast<double>(ran);
    return {Table::num(static_cast<std::uint64_t>(agg.trials)),
            Table::num(static_cast<std::uint64_t>(agg.faulted)),
            Table::num(agg.p_common(), 4), Table::num(agg.p_one_given_common(), 4),
            Table::num(feasible, 2)};
}

std::string CoinWorkload::checkpoint_scope(const CoinScenario& plan) {
    return "n=" + std::to_string(plan.n) + " k=" + std::to_string(plan.designated) +
           " f=" + std::to_string(plan.f) + " attack=" + to_string(plan.attack) +
           " forced_bit=" + std::to_string(static_cast<int>(plan.forced_bit));
}

void CoinWorkload::checkpoint_encode(const CoinAggregate& agg, std::string& out) {
    BinWriter w(out);
    w.u32(agg.trials);
    w.u32(agg.common);
    w.u32(agg.common_ones);
    w.u32(agg.attack_feasible);
    w.u32(agg.faulted);
}

void CoinWorkload::checkpoint_decode(std::string_view bytes, CoinAggregate& agg) {
    BinReader r(bytes);
    agg.trials = r.u32();
    agg.common = r.u32();
    agg.common_ones = r.u32();
    agg.attack_feasible = r.u32();
    agg.faulted = r.u32();
    ADBA_EXPECTS_MSG(r.exhausted(), "coin checkpoint payload has trailing bytes");
}

std::optional<std::string> why_incompatible(const CoinScenario& s) {
    if (s.n == 0) return std::string("coin scenario needs n > 0");
    if (s.designated < 1 || s.designated > s.n)
        return "coin scenario needs 1 <= k <= n designated flippers (got k=" +
               std::to_string(s.designated) + ", n=" + std::to_string(s.n) +
               "); drop k to default to n (Algorithm 1)";
    return std::nullopt;
}

bool compatible(const CoinScenario& s) { return !why_incompatible(s).has_value(); }

CoinTrial run_coin_trial(const CoinScenario& s, std::uint64_t seed) {
    if (const auto why = why_incompatible(s)) throw ContractViolation(*why);
    return run_one_trial<CoinWorkload>(s, seed);
}

void CoinAggregate::merge(const CoinAggregate& other) {
    trials += other.trials;
    common += other.common;
    common_ones += other.common_ones;
    attack_feasible += other.attack_feasible;
    faulted += other.faulted;
}

CoinAggregate run_coin_trials(const CoinScenario& s, std::uint64_t base_seed,
                              Count trials, const ExecutorConfig& exec) {
    if (const auto why = why_incompatible(s)) throw ContractViolation(*why);
    return run_trials<CoinWorkload>(s, base_seed, trials, exec);
}

double CoinAggregate::p_common() const {
    const Count ran = trials - faulted;  // faulted trials flipped no coin
    return ran == 0 ? 0.0 : static_cast<double>(common) / ran;
}

double CoinAggregate::p_one_given_common() const {
    return common == 0 ? 0.0 : static_cast<double>(common_ones) / common;
}

adv::CoinAttack parse_coin_attack(const std::string& name) {
    if (name == "split") return adv::CoinAttack::Split;
    if (name == "force-bit" || name == "forcebit" || name == "force")
        return adv::CoinAttack::ForceBit;
    throw ContractViolation("unknown coin attack '" + name +
                            "'; known: split, force-bit");
}

std::string to_string(adv::CoinAttack attack) {
    switch (attack) {
        case adv::CoinAttack::Split: return "split";
        case adv::CoinAttack::ForceBit: return "force-bit";
    }
    return "?";
}

}  // namespace adba::sim
