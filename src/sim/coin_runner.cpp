#include "sim/coin_runner.hpp"

#include <optional>
#include <utility>

#include "core/common_coin.hpp"
#include "net/engine.hpp"
#include "rand/seed_tree.hpp"
#include "support/contracts.hpp"

namespace adba::sim {

namespace {

/// Per-chunk reusable coin-trial state (pooled nodes + engine); run() is
/// bit-identical to the one-shot run_coin_trial path.
class CoinArena {
public:
    explicit CoinArena(const CoinScenario& s) : s_(s) {
        ADBA_EXPECTS(s.designated >= 1 && s.designated <= s.n);
    }

    CoinTrial run(std::uint64_t seed) {
        const SeedTree seeds(seed);
        const core::CoinConfig cfg{s_.n, s_.designated};
        if (nodes_.empty()) {
            nodes_ = core::make_coin_nodes(cfg, seeds);
        } else {
            core::reinit_coin_nodes(cfg, seeds, nodes_);
        }

        adv::CoinRuinAdversary adversary(
            adv::CoinRuinConfig{s_.designated, s_.f, s_.attack, s_.forced_bit});

        net::EngineConfig ecfg;
        ecfg.n = s_.n;
        ecfg.budget = s_.f;
        ecfg.max_rounds = 1;
        if (engine_) {
            engine_->reset(ecfg, std::move(nodes_), adversary);
        } else {
            engine_.emplace(ecfg, std::move(nodes_), adversary);
        }
        const net::RunResult run = engine_->run();
        nodes_ = engine_->take_nodes();

        CoinTrial out;
        out.common = run.agreement();
        if (out.common) {
            if (const auto v = run.agreed_value()) out.value = *v;
        }
        out.attack_feasible = adversary.attack_feasible();
        return out;
    }

private:
    CoinScenario s_;
    std::vector<std::unique_ptr<net::HonestNode>> nodes_;
    std::optional<net::Engine> engine_;
};

}  // namespace

CoinTrial run_coin_trial(const CoinScenario& s, std::uint64_t seed) {
    CoinArena arena(s);
    return arena.run(seed);
}

void CoinAggregate::merge(const CoinAggregate& other) {
    trials += other.trials;
    common += other.common;
    common_ones += other.common_ones;
    attack_feasible += other.attack_feasible;
}

CoinAggregate run_coin_trials(const CoinScenario& s, std::uint64_t base_seed,
                              Count trials, const ExecutorConfig& exec) {
    return parallel_reduce<CoinAggregate>(trials, exec, [&](Count begin, Count end) {
        CoinAggregate part;
        part.trials = end - begin;
        CoinArena arena(s);
        for (Count i = begin; i < end; ++i) {
            const CoinTrial t = arena.run(mix64(base_seed + 0x9e3779b1ULL * i));
            if (t.common) {
                ++part.common;
                if (t.value == 1) ++part.common_ones;
            }
            if (t.attack_feasible) ++part.attack_feasible;
        }
        return part;
    });
}

double CoinAggregate::p_common() const {
    return trials == 0 ? 0.0 : static_cast<double>(common) / trials;
}

double CoinAggregate::p_one_given_common() const {
    return common == 0 ? 0.0 : static_cast<double>(common_ones) / common;
}

}  // namespace adba::sim
