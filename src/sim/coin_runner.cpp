#include "sim/coin_runner.hpp"

#include "core/common_coin.hpp"
#include "net/engine.hpp"
#include "rand/seed_tree.hpp"
#include "support/contracts.hpp"

namespace adba::sim {

CoinTrial run_coin_trial(const CoinScenario& s, std::uint64_t seed) {
    ADBA_EXPECTS(s.designated >= 1 && s.designated <= s.n);
    const SeedTree seeds(seed);
    const core::CoinConfig cfg{s.n, s.designated};
    auto nodes = core::make_coin_nodes(cfg, seeds);

    adv::CoinRuinAdversary adversary(
        adv::CoinRuinConfig{s.designated, s.f, s.attack, s.forced_bit});

    net::EngineConfig ecfg;
    ecfg.n = s.n;
    ecfg.budget = s.f;
    ecfg.max_rounds = 1;
    net::Engine engine(ecfg, std::move(nodes), adversary);
    const net::RunResult run = engine.run();

    CoinTrial out;
    out.common = run.agreement();
    if (out.common) {
        if (const auto v = run.agreed_value()) out.value = *v;
    }
    out.attack_feasible = adversary.attack_feasible();
    return out;
}

void CoinAggregate::merge(const CoinAggregate& other) {
    trials += other.trials;
    common += other.common;
    common_ones += other.common_ones;
    attack_feasible += other.attack_feasible;
}

CoinAggregate run_coin_trials(const CoinScenario& s, std::uint64_t base_seed,
                              Count trials, const ExecutorConfig& exec) {
    return parallel_reduce<CoinAggregate>(trials, exec, [&](Count begin, Count end) {
        CoinAggregate part;
        part.trials = end - begin;
        for (Count i = begin; i < end; ++i) {
            const CoinTrial t = run_coin_trial(s, mix64(base_seed + 0x9e3779b1ULL * i));
            if (t.common) {
                ++part.common;
                if (t.value == 1) ++part.common_ones;
            }
            if (t.attack_feasible) ++part.attack_feasible;
        }
        return part;
    });
}

double CoinAggregate::p_common() const {
    return trials == 0 ? 0.0 : static_cast<double>(common) / trials;
}

double CoinAggregate::p_one_given_common() const {
    return common == 0 ? 0.0 : static_cast<double>(common_ones) / common;
}

}  // namespace adba::sim
