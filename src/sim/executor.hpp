// Parallel Monte-Carlo executor: chunked work distribution over a pool of
// worker threads, with deterministic, thread-count-invariant aggregation.
//
// Design rules that make parallel aggregates BIT-IDENTICAL to a serial run:
//  * per-trial seeds are derived from (base_seed, trial index) exactly as the
//    serial runners always did — never from the executing thread;
//  * the trial range [0, trials) is split into fixed chunks whose boundaries
//    depend only on (trials, chunk) — never on the thread count;
//  * each chunk produces a partial aggregate by running its trials in index
//    order, and partials are merged in chunk-index order, so every Samples
//    buffer ends up in exactly the serial observation order.
// Any thread count (including 1) therefore yields the same aggregate, which
// the executor tests enforce.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/tally_kernels.hpp"
#include "support/cli.hpp"
#include "support/types.hpp"

namespace adba::sim {

/// Per-call executor knobs. The zero defaults resolve to the process-wide
/// thread default (settable from `--threads`) and an automatic chunk size.
/// New fields append (callers brace-init the first two positionally).
struct ExecutorConfig {
    unsigned threads = 0;  ///< 0 = default_threads()
    Count chunk = 0;       ///< trials per work unit; 0 = auto_chunk(trials)
    /// Chunk-granular checkpoint journal (`--checkpoint=path`); empty = off.
    /// Completed chunk aggregates are appended to this write-ahead file as
    /// they finish, so a killed sweep resumes without redoing them.
    std::string checkpoint;
    /// Resume from an existing `checkpoint` journal (`--resume`): completed
    /// chunks are loaded instead of re-run; the merged result is bit-identical
    /// to an uninterrupted run at any thread count. Without this flag an
    /// existing journal is truncated and the sweep starts fresh.
    bool resume = false;
};

/// std::thread::hardware_concurrency(), clamped to at least 1.
unsigned hardware_threads();

/// Process-wide default thread count used when ExecutorConfig::threads is 0.
/// Starts at hardware_threads(); bench binaries override it from --threads.
unsigned default_threads();
void set_default_threads(unsigned threads);

/// Applies `--threads` (default: hardware concurrency, explicit 0 clamped to
/// serial) as the process-wide default and returns the resolved count. The
/// one entry point bench binaries and examples share for the flag.
unsigned init_threads(const Cli& cli);

// ---- intra-trial sharding (nested-parallelism policy) ----
//
// Two independent axes: LOGICAL shards fix the node-range boundaries (part
// of the deterministic merge contract — any shard count is bit-identical,
// tests/test_intra_shard.cpp), OS WORKERS are however many threads actually
// execute them. Workers are clamped so the trial pool times the intra pool
// never oversubscribes the machine: a ShardPool built under a `pool_width`-
// wide trial pool gets at most max(1, hardware/pool_width) threads, and on
// a saturated pool the shards simply run serially on the calling thread.

/// Process-wide default intra-trial shard count. 0 = auto policy (shard
/// only when n is large and the trial pool leaves hardware headroom).
/// Seeded lazily from the ADBA_INTRA_THREADS environment variable;
/// `--intra_threads` / set_default_intra_threads override it.
unsigned default_intra_threads();
void set_default_intra_threads(unsigned shards);

/// Applies `--intra_threads` as the process-wide default and returns the
/// resolved count (0 = auto). Companion of init_threads.
unsigned init_intra_threads(const Cli& cli);

/// Worker budget left for intra-trial sharding once `pool_width` trial
/// workers are running: max(1, hardware_threads() / max(1, pool_width)).
unsigned intra_worker_cap(unsigned pool_width);

/// Resolves a scenario's intra_threads request to a logical shard count.
/// `requested` > 0 wins; else a non-zero process default wins; else auto:
/// 1 (no sharding) unless n >= 2048 AND the trial pool leaves idle
/// hardware, in which case min(8, intra_worker_cap(default_threads())).
/// Explicit values are clamped to max(word_count(n), 8 * hardware) —
/// shards past one per plane word are empty ranges, and the ShardPool
/// claim loop iterates the logical count per dispatch.
unsigned plan_intra_shards(Count requested, NodeId n);

/// Persistent worker pool behind net::IntraDispatcher: the engine's beats
/// fan out over `shards` word-aligned node ranges per dispatch, with a full
/// quiescence barrier on return (no worker still touches pool state after
/// run_shards returns, so back-to-back beats never race). The calling
/// thread participates, so a pool clamped to one worker degrades to a
/// serial loop — same results, no threads.
class ShardPool final : public net::IntraDispatcher {
public:
    /// `shards` logical ranges, executed by min(shards, intra_worker_cap(
    /// pool_width)) threads. Emits a one-line stderr warning (once per
    /// process) when the clamp bites.
    ShardPool(unsigned shards, unsigned pool_width);
    ~ShardPool() override;
    ShardPool(const ShardPool&) = delete;
    ShardPool& operator=(const ShardPool&) = delete;

    unsigned shards() const override { return shards_; }
    /// Threads executing a dispatch, calling thread included.
    unsigned workers() const { return static_cast<unsigned>(workers_.size()) + 1; }
    void run_shards(NodeId n,
                    const std::function<void(unsigned, NodeId, NodeId)>& fn) override;

private:
    void worker_loop();
    /// Claims and runs shards until the cursor runs dry; returns whether
    /// every claimed shard completed without throwing.
    void drain(const std::function<void(unsigned, NodeId, NodeId)>& fn, NodeId n);

    const unsigned shards_;
    std::mutex mu_;
    std::condition_variable work_cv_;  ///< workers wait for a new generation
    std::condition_variable done_cv_;  ///< caller waits for quiescence
    std::uint64_t generation_ = 0;     ///< bumps once per run_shards
    unsigned remaining_ = 0;           ///< shards not yet completed
    unsigned active_ = 0;              ///< workers inside a claim loop
    bool stop_ = false;
    NodeId n_ = 0;
    const std::function<void(unsigned, NodeId, NodeId)>* job_ = nullptr;
    std::exception_ptr error_;
    std::atomic<unsigned> next_shard_{0};
    std::vector<std::thread> workers_;
};

namespace detail {

/// Chunk size heuristic: small enough to load-balance a pool, large enough
/// to amortize dispatch. Depends only on the trial count (determinism rule).
Count auto_chunk(Count trials);

/// Runs body(chunk_index, begin, end) for the consecutive chunks covering
/// [0, trials). Worker threads claim chunks off a shared atomic cursor; the
/// first exception thrown by any chunk is rethrown on the calling thread
/// after all workers join.
void for_each_chunk(Count trials, Count chunk, unsigned threads,
                    const std::function<void(std::size_t, Count, Count)>& body);

}  // namespace detail

/// Runs `per_chunk(begin, end)` over [0, trials) and merges the partial
/// aggregates in chunk-index order via `Agg::merge`. `per_chunk` must be a
/// pure function of its index range (thread-safe by construction).
template <typename Agg, typename PerChunk>
Agg parallel_reduce(Count trials, const ExecutorConfig& cfg, PerChunk&& per_chunk) {
    if (trials == 0) return Agg{};
    const unsigned threads = cfg.threads ? cfg.threads : default_threads();
    const Count chunk = cfg.chunk ? cfg.chunk : detail::auto_chunk(trials);
    if (threads <= 1 || trials <= chunk) return per_chunk(Count{0}, trials);

    const std::size_t num_chunks = (trials + chunk - 1) / chunk;
    std::vector<std::optional<Agg>> partials(num_chunks);
    detail::for_each_chunk(trials, chunk, threads,
                           [&](std::size_t ci, Count begin, Count end) {
                               partials[ci].emplace(per_chunk(begin, end));
                           });
    Agg out = std::move(*partials.front());
    for (std::size_t ci = 1; ci < num_chunks; ++ci) out.merge(*partials[ci]);
    return out;
}

}  // namespace adba::sim
