// Parallel Monte-Carlo executor: chunked work distribution over a pool of
// worker threads, with deterministic, thread-count-invariant aggregation.
//
// Design rules that make parallel aggregates BIT-IDENTICAL to a serial run:
//  * per-trial seeds are derived from (base_seed, trial index) exactly as the
//    serial runners always did — never from the executing thread;
//  * the trial range [0, trials) is split into fixed chunks whose boundaries
//    depend only on (trials, chunk) — never on the thread count;
//  * each chunk produces a partial aggregate by running its trials in index
//    order, and partials are merged in chunk-index order, so every Samples
//    buffer ends up in exactly the serial observation order.
// Any thread count (including 1) therefore yields the same aggregate, which
// the executor tests enforce.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "support/cli.hpp"
#include "support/types.hpp"

namespace adba::sim {

/// Per-call executor knobs. The zero defaults resolve to the process-wide
/// thread default (settable from `--threads`) and an automatic chunk size.
struct ExecutorConfig {
    unsigned threads = 0;  ///< 0 = default_threads()
    Count chunk = 0;       ///< trials per work unit; 0 = auto_chunk(trials)
};

/// std::thread::hardware_concurrency(), clamped to at least 1.
unsigned hardware_threads();

/// Process-wide default thread count used when ExecutorConfig::threads is 0.
/// Starts at hardware_threads(); bench binaries override it from --threads.
unsigned default_threads();
void set_default_threads(unsigned threads);

/// Applies `--threads` (default: hardware concurrency, explicit 0 clamped to
/// serial) as the process-wide default and returns the resolved count. The
/// one entry point bench binaries and examples share for the flag.
unsigned init_threads(const Cli& cli);

namespace detail {

/// Chunk size heuristic: small enough to load-balance a pool, large enough
/// to amortize dispatch. Depends only on the trial count (determinism rule).
Count auto_chunk(Count trials);

/// Runs body(chunk_index, begin, end) for the consecutive chunks covering
/// [0, trials). Worker threads claim chunks off a shared atomic cursor; the
/// first exception thrown by any chunk is rethrown on the calling thread
/// after all workers join.
void for_each_chunk(Count trials, Count chunk, unsigned threads,
                    const std::function<void(std::size_t, Count, Count)>& body);

}  // namespace detail

/// Runs `per_chunk(begin, end)` over [0, trials) and merges the partial
/// aggregates in chunk-index order via `Agg::merge`. `per_chunk` must be a
/// pure function of its index range (thread-safe by construction).
template <typename Agg, typename PerChunk>
Agg parallel_reduce(Count trials, const ExecutorConfig& cfg, PerChunk&& per_chunk) {
    if (trials == 0) return Agg{};
    const unsigned threads = cfg.threads ? cfg.threads : default_threads();
    const Count chunk = cfg.chunk ? cfg.chunk : detail::auto_chunk(trials);
    if (threads <= 1 || trials <= chunk) return per_chunk(Count{0}, trials);

    const std::size_t num_chunks = (trials + chunk - 1) / chunk;
    std::vector<std::optional<Agg>> partials(num_chunks);
    detail::for_each_chunk(trials, chunk, threads,
                           [&](std::size_t ci, Count begin, Count end) {
                               partials[ci].emplace(per_chunk(begin, end));
                           });
    Agg out = std::move(*partials.front());
    for (std::size_t ci = 1; ci < num_chunks; ++ci) out.merge(*partials[ci]);
    return out;
}

}  // namespace adba::sim
