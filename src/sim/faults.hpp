// Run-resilience seam: deterministic harness-fault injection plus the
// process-wide resource budget the executor degrades against.
//
// The fault model covers the HARNESS, not the protocol (the adversary
// already owns protocol-level faults): ShardPool worker tasks that die or
// stall, arena pooling that fails to allocate at chunk start, and
// artificial per-round beat delays. Every decision is a pure function of
// (injector seed, site, stable indices — shard, chunk, trial, round,
// attempt), never of thread identity or visit order, so an armed injector
// preserves the repository's bit-exactness discipline: transient faults
// (shard death/stall, arena allocation, beat delay) are retried or degraded
// away by the trial kernel and leave aggregates bit-identical to an unarmed
// run; permanent per-trial faults are keyed by trial INDEX and therefore
// fault the same trials at any thread count.
//
// Recovery contract (implemented by sim/workload.hpp): a chunk whose
// attempt throws InjectedFault is retried with bounded backoff through a
// fresh arena up to FaultConfig::max_attempts times; if every attempt
// fails, one final attempt runs DEGRADED — transient injection suppressed
// and engine beats forced serial (plan_intra_shards resolves to 1) — so an
// injected fault always ends in a defined state: retried, degraded-to-
// serial, or a cleanly reported TrialOutcome::Faulted. Never a hang, never
// a corrupted aggregate.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "support/types.hpp"

namespace adba {
class Cli;
}

namespace adba::sim {

/// Scenario/CLI-selectable fault plan (`--faults="key=value ..."`).
/// Rates are probabilities in [0, 1]; 1 fires at every eligible site.
struct FaultConfig {
    std::uint64_t seed = 1;        ///< key `seed`: injector decision seed
    double shard_death = 0.0;      ///< key `shard_death`: P(shard task throws)
    std::int64_t shard_death_shard = -1;  ///< key `shard_death_shard`:
                                          ///< -1 = any shard, else only this
                                          ///< logical shard index dies
    double stall_rate = 0.0;       ///< key `stall_rate`: P(shard task stalls)
    std::uint32_t stall_ms = 0;    ///< key `stall_ms`: stall length
    double alloc_rate = 0.0;       ///< key `alloc_rate`: P(chunk arena
                                   ///< construction fails)
    double trial_rate = 0.0;       ///< key `trial_rate`: P(trial is consumed
                                   ///< by a permanent fault) — keyed by trial
                                   ///< index, reported as TrialOutcome::Faulted
    double beat_delay_rate = 0.0;  ///< key `beat_delay_rate`: P(round beat
                                   ///< sleeps beat_delay_ms)
    std::uint32_t beat_delay_ms = 0;  ///< key `beat_delay_ms`
    std::uint32_t max_attempts = 3;   ///< key `max_attempts`: regular chunk
                                      ///< attempts before the degraded one

    /// True when any transient (chunk-retryable) fault is armed.
    bool any_transient() const {
        return shard_death > 0.0 || stall_rate > 0.0 || alloc_rate > 0.0 ||
               beat_delay_rate > 0.0;
    }

    /// Builds a config from a `key=value ...` spec (same tokenizer semantics
    /// as Scenario::parse); unknown keys throw ContractViolation with the
    /// accepted list. `FaultConfig::parse(c.describe()) == c`.
    static FaultConfig parse(const std::string& spec);
    std::string describe() const;

    friend bool operator==(const FaultConfig&, const FaultConfig&) = default;
};

/// The exception injected fault sites throw. Transient by construction —
/// the trial kernel retries the enclosing chunk; anything else escaping a
/// chunk is a real error and propagates unchanged.
class InjectedFault : public std::runtime_error {
public:
    enum class Site : std::uint8_t { ShardTask, ChunkArena };
    InjectedFault(Site site, const std::string& what)
        : std::runtime_error(what), site_(site) {}
    Site site() const { return site_; }

private:
    Site site_;
};

/// Monotonic injection/recovery counters (process-wide, approximate under
/// chunk retries — retried trials re-roll their sites).
struct FaultStats {
    std::uint64_t shard_deaths = 0;
    std::uint64_t stalls = 0;
    std::uint64_t alloc_failures = 0;
    std::uint64_t beat_delays = 0;
    std::uint64_t trial_faults = 0;
    std::uint64_t chunk_retries = 0;
    std::uint64_t degraded_chunks = 0;
};

/// Process-wide injector. Disarmed by default (every site is a no-op);
/// armed via arm()/ScopedFaultInjection (tests) or init_faults (CLI).
class FaultInjector {
public:
    /// Arms the process-wide injector; replaces any previous config and
    /// zeroes the stats. Not safe concurrently with running trials.
    static void arm(const FaultConfig& cfg);
    static void disarm();
    /// The armed injector, or nullptr. Suppression (degraded chunks) is
    /// handled inside the transient sites, not here — trial_faulted stays
    /// visible so permanent faults survive degradation deterministically.
    static FaultInjector* active();

    // ---- sites ----
    /// ShardPool::drain, before running a claimed shard task. May throw
    /// InjectedFault (worker death) or sleep (stall). No-op in a degraded
    /// chunk.
    void on_shard_task(unsigned shard);
    /// Trial kernel, before constructing/reusing a chunk arena. May throw
    /// InjectedFault (allocation failure). No-op in a degraded chunk.
    void on_chunk_arena(std::size_t chunk_index);
    /// Engine beat probe (EngineConfig::beat_probe). May sleep. No-op in a
    /// degraded chunk.
    void on_beat(Round round);
    /// Whether trial `index` is consumed by a permanent fault. Pure in the
    /// trial index — identical at any thread count, attempt, or chunking.
    bool trial_faulted(Count index);

    void note_retry(std::uint32_t attempt);  ///< counts + bounded backoff sleep
    void note_degraded();

    const FaultConfig& config() const { return cfg_; }
    static FaultStats stats();
    /// One printable summary line for drivers, e.g.
    /// "faults: 3 shard-deaths, 2 retries, 1 degraded chunk".
    static std::string stats_line();

private:
    explicit FaultInjector(const FaultConfig& cfg) : cfg_(cfg) {}
    bool decide(double rate, std::uint64_t site, std::uint64_t a,
                std::uint64_t b) const;

    FaultConfig cfg_;
    std::atomic<std::uint64_t> shard_deaths_{0};
    std::atomic<std::uint64_t> stalls_{0};
    std::atomic<std::uint64_t> alloc_failures_{0};
    std::atomic<std::uint64_t> beat_delays_{0};
    std::atomic<std::uint64_t> trial_faults_{0};
    std::atomic<std::uint64_t> chunk_retries_{0};
    std::atomic<std::uint64_t> degraded_chunks_{0};
};

/// RAII arm/disarm for tests.
class ScopedFaultInjection {
public:
    explicit ScopedFaultInjection(const FaultConfig& cfg) { FaultInjector::arm(cfg); }
    ~ScopedFaultInjection() { FaultInjector::disarm(); }
    ScopedFaultInjection(const ScopedFaultInjection&) = delete;
    ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

/// Applies `--faults="..."` as the process-wide injector (absent/empty =
/// disarmed). Returns whether an injector was armed. Companion of
/// init_threads for driver binaries.
bool init_faults(const Cli& cli);

// ---- per-chunk recovery scopes (thread-local; used by the trial kernel) --

/// Marks the current thread as running chunk attempt `attempt`; the
/// injector salts transient decisions with it so a probabilistic fault
/// re-rolls on retry instead of failing the chunk forever.
class ScopedChunkAttempt {
public:
    explicit ScopedChunkAttempt(std::uint32_t attempt);
    ~ScopedChunkAttempt();
    ScopedChunkAttempt(const ScopedChunkAttempt&) = delete;
    ScopedChunkAttempt& operator=(const ScopedChunkAttempt&) = delete;

private:
    std::uint32_t previous_;
};

/// Degraded-chunk scope: suppresses every transient site on this thread and
/// forces plan_intra_shards to 1 (serial beats, no ShardPool), so the final
/// recovery attempt cannot re-fault and cannot hang on injected worker
/// deaths. Permanent per-trial faults stay visible (determinism).
class ScopedDegradedChunk {
public:
    ScopedDegradedChunk();
    ~ScopedDegradedChunk();
    ScopedDegradedChunk(const ScopedDegradedChunk&) = delete;
    ScopedDegradedChunk& operator=(const ScopedDegradedChunk&) = delete;
};

/// True while a ScopedDegradedChunk is live on this thread; read by
/// plan_intra_shards (executor.cpp) to force serial beats.
bool in_degraded_chunk();

// ------------------------------------------------- memory budget (graceful
// degradation on resource limits instead of an OOM kill)

/// Process-wide per-trial-arena memory budget in MiB; 0 = unlimited.
/// Lazily seeded from ADBA_MEM_BUDGET_MB; --mem_budget_mb / the setter
/// override it.
std::uint64_t default_mem_budget_mb();
void set_default_mem_budget_mb(std::uint64_t mb);

/// Applies `--mem_budget_mb` as the process-wide budget and returns the
/// resolved value (0 = unlimited). Companion of init_threads.
std::uint64_t init_mem_budget(const Cli& cli);

/// Conservative per-trial arena estimate for the binary engine stack, in
/// bytes. Flat mode owns the n Message broadcast cells, the byte state
/// planes, the packed tally planes and the per-receiver Byzantine delta
/// caches; sparse mode's receive path reads bit planes and a 2-bit code
/// plane instead of Message cells. Deliberately per-ARENA (one pooled
/// engine): multiply by your trial-worker count for a whole-sweep bound.
std::uint64_t estimate_trial_arena_bytes(NodeId n, bool sparse_plane);

/// RAII budget override for tests.
class ScopedMemBudget {
public:
    explicit ScopedMemBudget(std::uint64_t mb)
        : previous_(default_mem_budget_mb()) {
        set_default_mem_budget_mb(mb);
    }
    ~ScopedMemBudget() { set_default_mem_budget_mb(previous_); }
    ScopedMemBudget(const ScopedMemBudget&) = delete;
    ScopedMemBudget& operator=(const ScopedMemBudget&) = delete;

private:
    std::uint64_t previous_;
};

}  // namespace adba::sim
