// Trial runner for the multi-valued (Turpin-Coan over Algorithm 3) stack.
// Separate from the binary runner because inputs, outputs, and agreement
// evaluation are over words, not bits — but it is the same Monte-Carlo
// machine, so it rides the workload-generic kernel (sim/workload.hpp) and
// has full scenario parity with the binary stack: parse/describe
// round-tripping, a hoisted plan, the `q` corruption cap, and the
// `reference`/`batch` engine toggles.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/multivalued.hpp"
#include "sim/executor.hpp"
#include "sim/workload.hpp"
#include "support/stats.hpp"
#include "support/types.hpp"

namespace adba::sim {

enum class MvInputPattern : std::uint8_t {
    AllSame,    ///< every node inputs the same word (validity probe)
    TwoBlocks,  ///< half input word A, half word B
    Distinct,   ///< every node inputs its own id (maximal fragmentation)
    RandomTiny, ///< i.i.d. uniform over a 4-word domain
    NearQuorum, ///< 60% share a word — inside the adversary's quorum-boundary
                ///< band (h_w < n-t <= h_w + t), the only regime where the
                ///< Turpin-Coan prelude can be split
};

enum class MvAdversaryKind : std::uint8_t {
    None,
    Chaos,                 ///< fuzzed garbage incl. TC kinds
    WorstCaseInner,        ///< full budget on the embedded Algorithm 3
    PreludePlusWorstCase,  ///< half budget equivocating the prelude, half inner
};

struct MvScenario {
    NodeId n = 0;
    Count t = 0;            ///< protocol fault tolerance / engine budget
    std::optional<Count> q; ///< actual corruptions cap (default: t)
    MvInputPattern inputs = MvInputPattern::TwoBlocks;
    MvAdversaryKind adversary = MvAdversaryKind::WorstCaseInner;
    core::Tuning tuning;
    net::Word fallback = 0;
    bool las_vegas = false;  ///< inner protocol in Las Vegas mode
    /// Drive the engine's reference delivery path (virtual per-sender
    /// probing) instead of the flat plane — the same oracle toggle the
    /// binary scenario carries (`reference=true`).
    bool reference_delivery = false;
    /// Scenario key `batch`. The Turpin-Coan node set ships no native SoA
    /// batch yet, so both settings step through the pooled PerNodeBatch
    /// adapter today; the key is carried (and round-tripped) so specs stay
    /// portable with the binary stack and forward-compatible with a native
    /// mv batch.
    bool use_batch = true;
    /// Build round tallies with the word-packed popcount kernels (scenario
    /// key `simd`); `simd=off` keeps the scalar byte-plane build — the
    /// oracle toggle shared with the binary stack. The mv word histograms
    /// are the word-sliced packed path this exercises.
    bool use_simd = true;
    /// Scenario key `plane`. The Turpin-Coan stack has no sparse batch
    /// (per-word histograms don't fit the bit-plane sampling), so only
    /// `plane=flat` validates today; the key is parsed for spec parity with
    /// the binary stack and why_incompatible rejects `plane=sparse` with an
    /// actionable message.
    bool sparse_plane = false;
    /// Scenario key `sample_degree`; carried and round-tripped for spec
    /// parity, meaningful only once an mv sparse batch exists.
    Count sample_degree = 0;
    /// Per-trial wall-clock watchdog in ms (scenario key `watchdog_ms`);
    /// 0 = off. Same semantics as the binary scenario's key — the guard for
    /// `las_vegas=true` inner protocols whose round cap is generous by
    /// design. Wall-clock dependent, so armed sweeps are not
    /// bit-reproducible.
    std::uint32_t watchdog_ms = 0;

    /// Builds a scenario from a `key=value ...` spec string, resolving
    /// adversary/input names through MvAdversaryRegistry. Keys: adversary,
    /// inputs, n, t, q, alpha, gamma, beta, fallback, las_vegas, reference,
    /// batch, simd, plane, sample_degree, watchdog_ms. Unknown keys or
    /// names throw ContractViolation with the accepted alternatives.
    static MvScenario parse(const std::string& spec);

    /// Canonical spec string; `MvScenario::parse(s.describe()) == s`.
    std::string describe() const;

    friend bool operator==(const MvScenario&, const MvScenario&) = default;
};

struct MvTrialResult {
    bool agreement = false;
    std::optional<net::Word> agreed_word;
    bool validity_applicable = false;
    bool validity_ok = true;
    bool all_halted = false;
    bool decided_real = false;  ///< binary outcome 1 (a proposed word won)
    Round rounds = 0;
    /// How the trial ended (support/types.hpp); engine-reported, with
    /// Faulted set by the trial kernel for injected permanent faults.
    TrialOutcome outcome = TrialOutcome::Decided;
};

struct MvScenarioPlan;  // resolved mv registry entry + hoisted parameters
                        // (sim/registry.hpp); product of validate(MvScenario)

MvTrialResult run_mv_trial(const MvScenario& s, std::uint64_t seed);

/// Runs one trial against a pre-validated plan — no registry lookups or
/// parameter recomputation on the hot path. Bit-identical to
/// run_mv_trial(s, seed).
MvTrialResult run_mv_trial(const MvScenarioPlan& plan, std::uint64_t seed);

struct MvAggregate {
    Count trials = 0;
    Count agreement_failures = 0;
    Count validity_failures = 0;
    Count not_halted = 0;
    Count decided_real = 0;
    /// Outcome taxonomy counters (see Aggregate in runner.hpp for the
    /// accounting rules — faulted trials contribute nothing but their count).
    Count cap_exhausted = 0;
    Count watchdog_timeouts = 0;
    Count faulted = 0;
    Samples rounds;

    /// Merge in chunk-index order (see Aggregate::merge).
    void merge(const MvAggregate& other);
};

/// Multi-valued workload: the Turpin-Coan trial stack as a workload.hpp
/// trait.
struct MvWorkload {
    using Scenario = MvScenario;
    using Result = MvTrialResult;
    using Aggregate = MvAggregate;
    using Plan = MvScenarioPlan;
    class Arena;  ///< pooled Turpin-Coan nodes + engine (multivalued_runner.cpp)
    static constexpr std::uint64_t kSeedStride = 0x9e37ULL;
    static constexpr const char* kName = "mv";

    /// validate(s) + enforce_memory_budget(s) (no sparse fallback exists for
    /// the mv stack, so an over-budget plan is rejected, never adjusted).
    static Plan make_plan(const Scenario& s);
    static void accumulate(Aggregate& agg, const Result& r);
    static void reserve(Aggregate& agg, Count trials) { agg.rounds.reserve(trials); }

    static std::vector<std::string> csv_header();
    static std::vector<std::string> csv_row(const Aggregate& agg);

    // Checkpoint hooks (sim/checkpoint.hpp).
    static std::string checkpoint_scope(const Plan& plan);
    static void checkpoint_encode(const Aggregate& agg, std::string& out);
    static void checkpoint_decode(std::string_view bytes, Aggregate& agg);
};

/// Runs on the workload-generic kernel; bit-identical at any thread count.
MvAggregate run_mv_trials(const MvScenario& s, std::uint64_t base_seed, Count trials,
                          const ExecutorConfig& exec = {});

std::string to_string(MvInputPattern p);
std::string to_string(MvAdversaryKind a);

}  // namespace adba::sim
