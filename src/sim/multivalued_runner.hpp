// Trial runner for the multi-valued (Turpin-Coan over Algorithm 3) stack.
// Separate from the binary runner because inputs, outputs, and agreement
// evaluation are over words, not bits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/multivalued.hpp"
#include "sim/executor.hpp"
#include "support/stats.hpp"
#include "support/types.hpp"

namespace adba::sim {

enum class MvInputPattern : std::uint8_t {
    AllSame,    ///< every node inputs the same word (validity probe)
    TwoBlocks,  ///< half input word A, half word B
    Distinct,   ///< every node inputs its own id (maximal fragmentation)
    RandomTiny, ///< i.i.d. uniform over a 4-word domain
    NearQuorum, ///< 60% share a word — inside the adversary's quorum-boundary
                ///< band (h_w < n-t <= h_w + t), the only regime where the
                ///< Turpin-Coan prelude can be split
};

enum class MvAdversaryKind : std::uint8_t {
    None,
    Chaos,                 ///< fuzzed garbage incl. TC kinds
    WorstCaseInner,        ///< full budget on the embedded Algorithm 3
    PreludePlusWorstCase,  ///< half budget equivocating the prelude, half inner
};

struct MvScenario {
    NodeId n = 0;
    Count t = 0;
    MvInputPattern inputs = MvInputPattern::TwoBlocks;
    MvAdversaryKind adversary = MvAdversaryKind::WorstCaseInner;
    core::Tuning tuning;
    net::Word fallback = 0;
    bool las_vegas = false;  ///< inner protocol in Las Vegas mode
};

struct MvTrialResult {
    bool agreement = false;
    std::optional<net::Word> agreed_word;
    bool validity_applicable = false;
    bool validity_ok = true;
    bool all_halted = false;
    bool decided_real = false;  ///< binary outcome 1 (a proposed word won)
    Round rounds = 0;
};

MvTrialResult run_mv_trial(const MvScenario& s, std::uint64_t seed);

struct MvAggregate {
    Count trials = 0;
    Count agreement_failures = 0;
    Count validity_failures = 0;
    Count not_halted = 0;
    Count decided_real = 0;
    Samples rounds;

    /// Merge in chunk-index order (see Aggregate::merge).
    void merge(const MvAggregate& other);
};

/// Parallel over the executor; bit-identical at any thread count.
MvAggregate run_mv_trials(const MvScenario& s, std::uint64_t base_seed, Count trials,
                          const ExecutorConfig& exec = {});

std::string to_string(MvInputPattern p);
std::string to_string(MvAdversaryKind a);

}  // namespace adba::sim
