// Chunk-granular checkpoint journal for long Monte-Carlo sweeps.
//
// The executor's determinism rules make chunk aggregates the natural
// checkpoint unit: chunk boundaries depend only on (trials, chunk), per-trial
// seeds only on the trial index, and the final aggregate is the in-order
// merge of chunk partials. So a journal of completed (chunk_index, encoded
// partial) records — plus enough metadata to refuse a mismatched resume —
// is sufficient to reproduce the uninterrupted aggregate BIT-IDENTICALLY at
// any thread count: load the recorded partials, run only the missing chunks,
// merge everything in chunk-index order.
//
// File format (little-endian, the only byte order the toolchain targets):
//   header:  "ADBACKP1" | u64 base_seed | u64 seed_stride | u32 trials
//            | u32 chunk | u32 len + workload name | u32 len + scope string
//   record:  u32 0x41434b52 ("RKCA") | u32 chunk_index | u32 payload_len
//            | u64 fnv1a(payload) | payload bytes
// Records are appended with a single buffered write + flush per chunk. A
// crash mid-append leaves at most one torn tail record, which load()
// detects (short read or checksum mismatch) and truncates away — the
// write-ahead property: a record is either durably complete or ignored.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace adba::sim {

/// Identity of a sweep, pinned in the journal header. A resume whose meta
/// differs in ANY field throws: partial aggregates from a different
/// scenario, seed, chunking, or stride are not mergeable.
struct CheckpointMeta {
    std::string workload;       ///< W::kName
    std::uint64_t base_seed = 0;
    std::uint64_t seed_stride = 0;  ///< W::kSeedStride
    std::uint32_t trials = 0;
    std::uint32_t chunk = 0;        ///< resolved (nonzero) chunk size
    std::string scope;              ///< workload-specific plan fingerprint
                                    ///< (W::checkpoint_scope)

    friend bool operator==(const CheckpointMeta&, const CheckpointMeta&) = default;
};

/// Append-only journal of completed chunk aggregates. Thread-safe append
/// (the executor's workers finish chunks concurrently); load happens before
/// workers start.
class ChunkJournal {
public:
    /// Opens `path`. resume=false truncates and writes a fresh header.
    /// resume=true replays an existing journal: a missing or empty file
    /// starts fresh; a valid header must match `meta` exactly (actionable
    /// ContractViolation otherwise); complete records are collected and a
    /// torn tail is truncated off before reopening for append.
    ChunkJournal(std::string path, const CheckpointMeta& meta, bool resume);
    ~ChunkJournal();
    ChunkJournal(const ChunkJournal&) = delete;
    ChunkJournal& operator=(const ChunkJournal&) = delete;

    /// Chunk records recovered by a resuming open, in file order. Duplicate
    /// chunk indices keep the LAST record (a re-run chunk supersedes).
    const std::vector<std::pair<std::size_t, std::string>>& completed() const {
        return completed_;
    }

    /// Durably appends one completed chunk's encoded partial aggregate.
    void append(std::size_t chunk_index, const std::string& payload);

private:
    std::string path_;
    std::FILE* out_ = nullptr;
    std::mutex mu_;
    std::vector<std::pair<std::size_t, std::string>> completed_;
};

// ---- byte-exact payload encoding helpers (used by the workload traits'
// checkpoint_encode/checkpoint_decode; doubles are moved as raw IEEE bits so
// decoded Samples merge bit-identically) ----

class BinWriter {
public:
    explicit BinWriter(std::string& out) : out_(out) {}
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v);
    /// u64 count + raw double bits for each value, preserving order.
    void doubles(const std::vector<double>& xs);

private:
    std::string& out_;
};

class BinReader {
public:
    explicit BinReader(std::string_view in) : in_(in) {}
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    void doubles(std::vector<double>& xs);
    /// Whole payload consumed — decode must end exactly at the payload end.
    bool exhausted() const { return pos_ == in_.size(); }

private:
    std::string_view in_;
    std::size_t pos_ = 0;
};

}  // namespace adba::sim
