// Declarative scenario sweeps: a grid over Scenario axes (and the coin /
// multi-valued analogues) that yields labeled scenario rows in a fixed
// enumeration order and feeds them through the workload-generic kernel.
//
// This replaces the copy-pasted nested loops of the bench binaries: a bench
// states WHICH axes it sweeps; enumeration order, labeling, per-row seeding,
// and parallel trial execution live here. Row seeds are derived from
// (base_seed, row index in the FULL cross product), so adding a filter or
// reading only part of the outcomes never shifts another row's randomness.
//
// All three typed grids (SweepGrid, CoinSweepGrid, MvSweepGrid) are thin
// axis declarations over ONE generic enumerator (detail::enumerate_grid):
// an axis yields its value choices from the partially-built row — which is
// how derived axes (t_of_n, adversary_of, ratio budgets that scale with the
// committee) read what outer axes already set — and each choice mutates the
// row and contributes a label part when the axis is swept.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/coin_runner.hpp"
#include "sim/executor.hpp"
#include "sim/multivalued_runner.hpp"
#include "sim/runner.hpp"

namespace adba::sim {

/// Deterministic per-row seed: avalanche of the base seed and the row's
/// position in the unfiltered cross product.
std::uint64_t row_seed(std::uint64_t base_seed, std::size_t row_index);

namespace detail {

/// One value choice of a grid axis: mutates the row (scenario fields and/or
/// row metadata like CoinSweepRow::f_ratio) and contributes a label part
/// (empty = nothing to say, e.g. an unset optional).
template <typename Row>
struct GridValue {
    std::function<void(Row&)> set;
    std::string label;
};

/// One axis: yields the choices for a row given everything outer axes
/// already set. `swept` controls whether the choices' labels are appended.
template <typename Row>
struct GridAxis {
    std::function<std::vector<GridValue<Row>>(const Row&)> values;
    bool swept = true;
};

/// THE grid enumerator: fixed-order cross product over `axes` (axis 0
/// outermost) with stable indices. Every leaf of the FULL product consumes
/// an index slot; rows for which `keep` returns false are dropped without
/// shifting any other row's index (and thus seed). Swept axes append their
/// label parts in axis order, space-separated.
template <typename Row, typename Filter>
std::vector<Row> enumerate_grid(const Row& base,
                                const std::vector<GridAxis<Row>>& axes,
                                const Filter& keep) {
    std::vector<Row> out;
    std::size_t index = 0;
    auto rec = [&](auto&& self, std::size_t depth, const Row& row) -> void {
        if (depth == axes.size()) {
            Row leaf = row;
            leaf.index = index++;
            if (!keep(leaf)) return;
            out.push_back(std::move(leaf));
            return;
        }
        for (const GridValue<Row>& v : axes[depth].values(row)) {
            Row next = row;
            if (v.set) v.set(next);
            if (axes[depth].swept && !v.label.empty()) {
                if (!next.label.empty()) next.label += ' ';
                next.label += v.label;
            }
            self(self, depth + 1, next);
        }
    };
    rec(rec, 0, base);
    return out;
}

}  // namespace detail

// ------------------------------------------------------------ engine sweeps

struct SweepRow {
    Scenario scenario;
    std::string label;      ///< swept-axis values, e.g. "n=256 t=16 ours(alg3)"
    std::size_t index = 0;  ///< position in the full (unfiltered) enumeration
};

/// Cross product over Scenario axes. Empty axes pin the base scenario's
/// value; `t_of_n` / `adversary_of` derive one axis from another (e.g. each
/// protocol against its strongest adversary). Enumeration order is fixed:
/// n (outermost) -> t -> q -> protocol -> adversary -> inputs -> tuning.
struct SweepGrid {
    Scenario base;

    std::vector<NodeId> ns;
    std::vector<Count> ts;
    std::function<Count(NodeId)> t_of_n;  ///< overrides ts when set
    std::vector<Count> qs;                ///< actual-corruption axis
    std::vector<ProtocolKind> protocols;
    std::vector<AdversaryKind> adversaries;
    std::function<AdversaryKind(ProtocolKind)> adversary_of;  ///< overrides adversaries
    std::vector<InputPattern> inputs;
    std::vector<core::Tuning> tunings;

    /// Rows for which this returns false are dropped (their index — and thus
    /// every other row's seed — is unaffected).
    std::function<bool(const Scenario&)> filter;

    std::vector<SweepRow> rows() const;
};

struct SweepOutcome {
    SweepRow row;
    Aggregate agg;
};

/// Runs `trials` per row on the executor; rows execute in enumeration order.
std::vector<SweepOutcome> run_sweep(const SweepGrid& grid, std::uint64_t base_seed,
                                    Count trials, const ExecutorConfig& exec = {});

/// The strongest implemented adversary for each protocol, read from the
/// protocol registry's capability metadata (registry.hpp).
AdversaryKind strongest_adversary(ProtocolKind protocol);

// -------------------------------------------------------------- coin sweeps

struct CoinSweepRow {
    CoinScenario scenario;
    std::string label;
    double f_ratio = 0.0;   ///< f / sqrt(k) when the ratio axis produced f
    std::size_t index = 0;  ///< position in the full enumeration
};

/// Grid over the common-coin experiments: network size n, committee size k
/// (empty = all n nodes flip), and the corruption budget, given either as
/// f = round(ratio * sqrt(k)) — the paper's natural parameterization — or as
/// explicit budgets. Rows with k > n are skipped. Enumeration order:
/// n -> k -> budget.
struct CoinSweepGrid {
    std::vector<NodeId> ns;
    std::vector<NodeId> ks;        ///< empty = {n} (Algorithm 1)
    std::vector<double> f_ratios;  ///< f = lround(ratio * sqrt(k))
    std::vector<Count> fs;         ///< explicit budgets; used when f_ratios empty
    adv::CoinAttack attack = adv::CoinAttack::Split;
    Bit forced_bit = 0;

    std::vector<CoinSweepRow> rows() const;
};

struct CoinSweepOutcome {
    CoinSweepRow row;
    CoinAggregate agg;
};

std::vector<CoinSweepOutcome> run_coin_sweep(const CoinSweepGrid& grid,
                                             std::uint64_t base_seed, Count trials,
                                             const ExecutorConfig& exec = {});

// ------------------------------------------------------- multi-valued sweeps

struct MvSweepRow {
    MvScenario scenario;
    std::string label;
    std::size_t index = 0;
};

/// Grid over the multi-valued runner's axes: input pattern (outer) x
/// adversary (inner); empty axes pin the base scenario's value.
struct MvSweepGrid {
    MvScenario base;
    std::vector<MvInputPattern> inputs;
    std::vector<MvAdversaryKind> adversaries;

    std::vector<MvSweepRow> rows() const;
};

struct MvSweepOutcome {
    MvSweepRow row;
    MvAggregate agg;
};

std::vector<MvSweepOutcome> run_mv_sweep(const MvSweepGrid& grid,
                                         std::uint64_t base_seed, Count trials,
                                         const ExecutorConfig& exec = {});

}  // namespace adba::sim
