// Declarative scenario sweeps: a grid over Scenario axes (and the coin /
// multi-valued analogues) that yields labeled scenario rows in a fixed
// enumeration order and feeds them through the parallel executor.
//
// This replaces the copy-pasted nested loops of the bench binaries: a bench
// states WHICH axes it sweeps; enumeration order, labeling, per-row seeding,
// and parallel trial execution live here. Row seeds are derived from
// (base_seed, row index in the FULL cross product), so adding a filter or
// reading only part of the outcomes never shifts another row's randomness.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/coin_runner.hpp"
#include "sim/executor.hpp"
#include "sim/multivalued_runner.hpp"
#include "sim/runner.hpp"

namespace adba::sim {

/// Deterministic per-row seed: avalanche of the base seed and the row's
/// position in the unfiltered cross product.
std::uint64_t row_seed(std::uint64_t base_seed, std::size_t row_index);

// ------------------------------------------------------------ engine sweeps

struct SweepRow {
    Scenario scenario;
    std::string label;      ///< swept-axis values, e.g. "n=256 t=16 ours(alg3)"
    std::size_t index = 0;  ///< position in the full (unfiltered) enumeration
};

/// Cross product over Scenario axes. Empty axes pin the base scenario's
/// value; `t_of_n` / `adversary_of` derive one axis from another (e.g. each
/// protocol against its strongest adversary). Enumeration order is fixed:
/// n (outermost) -> t -> q -> protocol -> adversary -> inputs -> tuning.
struct SweepGrid {
    Scenario base;

    std::vector<NodeId> ns;
    std::vector<Count> ts;
    std::function<Count(NodeId)> t_of_n;  ///< overrides ts when set
    std::vector<Count> qs;                ///< actual-corruption axis
    std::vector<ProtocolKind> protocols;
    std::vector<AdversaryKind> adversaries;
    std::function<AdversaryKind(ProtocolKind)> adversary_of;  ///< overrides adversaries
    std::vector<InputPattern> inputs;
    std::vector<core::Tuning> tunings;

    /// Rows for which this returns false are dropped (their index — and thus
    /// every other row's seed — is unaffected).
    std::function<bool(const Scenario&)> filter;

    std::vector<SweepRow> rows() const;
};

struct SweepOutcome {
    SweepRow row;
    Aggregate agg;
};

/// Runs `trials` per row on the executor; rows execute in enumeration order.
std::vector<SweepOutcome> run_sweep(const SweepGrid& grid, std::uint64_t base_seed,
                                    Count trials, const ExecutorConfig& exec = {});

/// The strongest implemented adversary for each protocol, read from the
/// protocol registry's capability metadata (registry.hpp).
AdversaryKind strongest_adversary(ProtocolKind protocol);

// -------------------------------------------------------------- coin sweeps

struct CoinSweepRow {
    CoinScenario scenario;
    std::string label;
    double f_ratio = 0.0;   ///< f / sqrt(k) when the ratio axis produced f
    std::size_t index = 0;  ///< position in the full enumeration
};

/// Grid over the common-coin experiments: network size n, committee size k
/// (empty = all n nodes flip), and the corruption budget, given either as
/// f = round(ratio * sqrt(k)) — the paper's natural parameterization — or as
/// explicit budgets. Rows with k > n are skipped. Enumeration order:
/// n -> k -> budget.
struct CoinSweepGrid {
    std::vector<NodeId> ns;
    std::vector<NodeId> ks;        ///< empty = {n} (Algorithm 1)
    std::vector<double> f_ratios;  ///< f = lround(ratio * sqrt(k))
    std::vector<Count> fs;         ///< explicit budgets; used when f_ratios empty
    adv::CoinAttack attack = adv::CoinAttack::Split;
    Bit forced_bit = 0;

    std::vector<CoinSweepRow> rows() const;
};

struct CoinSweepOutcome {
    CoinSweepRow row;
    CoinAggregate agg;
};

std::vector<CoinSweepOutcome> run_coin_sweep(const CoinSweepGrid& grid,
                                             std::uint64_t base_seed, Count trials,
                                             const ExecutorConfig& exec = {});

// ------------------------------------------------------- multi-valued sweeps

struct MvSweepRow {
    MvScenario scenario;
    std::string label;
    std::size_t index = 0;
};

/// Grid over the multi-valued runner's axes: input pattern (outer) x
/// adversary (inner); empty axes pin the base scenario's value.
struct MvSweepGrid {
    MvScenario base;
    std::vector<MvInputPattern> inputs;
    std::vector<MvAdversaryKind> adversaries;

    std::vector<MvSweepRow> rows() const;
};

struct MvSweepOutcome {
    MvSweepRow row;
    MvAggregate agg;
};

std::vector<MvSweepOutcome> run_mv_sweep(const MvSweepGrid& grid,
                                         std::uint64_t base_seed, Count trials,
                                         const ExecutorConfig& exec = {});

}  // namespace adba::sim
