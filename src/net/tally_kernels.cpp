#include "net/tally_kernels.hpp"

#include <algorithm>

#include "net/round_buffer.hpp"
#include "support/contracts.hpp"

namespace adba::net::kern {

void pack_shard(const RoundBuffer& buf, NodeId lo, NodeId hi,
                PackedPlanes& planes, PackShard& shard) {
    ADBA_EXPECTS(lo % kWordBits == 0);
    shard.word_lo = lo / kWordBits;
    shard.word_hi = (static_cast<std::size_t>(hi) + kWordBits - 1) / kWordBits;
    shard.buckets_in_use = 0;
    const std::size_t span = shard.word_hi - shard.word_lo;
    const std::uint8_t* state = buf.state_plane();
    const Message* honest = buf.honest_plane();
    PackShardBucket* last = nullptr;
    // Word-at-a-time: each 64-sender block accumulates its attribute bits
    // in registers and stores each plane word exactly once — no per-sender
    // read-modify-write traffic and no plane pre-zeroing. The attribute
    // planes are filled branchlessly and unconditionally: every consumer
    // ANDs them against a bucket's exact `match` plane, so bits packed from
    // stale cells of silent/Byzantine senders are never observed, and the
    // loop carries no data-dependent branches on payload bits (which the
    // mispredictor chokes on for random votes/coins).
    for (std::size_t w = shard.word_lo; w < shard.word_hi; ++w) {
        const auto v0 = static_cast<NodeId>(w * kWordBits);
        const NodeId v1 = std::min<NodeId>(hi, v0 + static_cast<NodeId>(kWordBits));
        std::uint64_t val = 0;
        std::uint64_t flag = 0;
        std::uint64_t pos = 0;
        std::uint64_t neg = 0;
        std::uint64_t byz = 0;
        for (NodeId v = v0; v < v1; ++v) {
            const Message& m = honest[v];
            const std::uint64_t bit = std::uint64_t{1} << (v - v0);
            val |= bit & (0 - std::uint64_t{m.val & 1u});
            flag |= bit & (0 - std::uint64_t{m.flag != 0});
            pos |= bit & (0 - std::uint64_t{m.coin > 0});
            neg |= bit & (0 - std::uint64_t{m.coin < 0});
            byz |= bit & (0 - std::uint64_t{
                              (state[v] & RoundBuffer::kByzantine) != 0});
            if (state[v] != RoundBuffer::kPresent) continue;
            // Exact membership plane. Lockstep protocols have 1-2 live
            // (kind, phase) signatures per round, so runs of senders land
            // in the same bucket and the linear scan is flat.
            PackShardBucket* b = last;
            if (b == nullptr || b->kind != m.kind || b->phase != m.phase) {
                b = nullptr;
                for (std::size_t i = 0; i < shard.buckets_in_use; ++i) {
                    if (shard.buckets[i].kind == m.kind &&
                        shard.buckets[i].phase == m.phase) {
                        b = &shard.buckets[i];
                        break;
                    }
                }
                if (b == nullptr) {
                    if (shard.buckets.size() <= shard.buckets_in_use)
                        shard.buckets.resize(shard.buckets_in_use + 1);
                    b = &shard.buckets[shard.buckets_in_use++];
                    b->kind = m.kind;
                    b->phase = m.phase;
                    b->match.assign(span, 0);  // recycled; zeroed per round
                }
                last = b;
            }
            b->match[w - shard.word_lo] |= bit;
        }
        planes.val[w] = val;
        planes.flag[w] = flag;
        planes.coin_pos[w] = pos;
        planes.coin_neg[w] = neg;
        planes.byz[w] = byz;
    }
}

}  // namespace adba::net::kern
