#include "net/round_buffer.hpp"

#include <algorithm>

namespace adba::net {

// -------------------------------------------------------------- RoundBuffer

void RoundBuffer::reset(NodeId n) {
    ADBA_EXPECTS(n > 0);
    n_ = n;
    honest_.resize(n);
    state_.assign(n, 0);
    byz_row_of_.assign(n, -1);
    row_sender_.clear();
    row_mode_.clear();
    row_slot_.clear();
    rows_in_use_ = 0;
    slots_in_use_ = 0;
}

void RoundBuffer::begin_round() {
    for (NodeId v = 0; v < n_; ++v) state_[v] &= kByzantine;
    std::fill(byz_row_of_.begin(), byz_row_of_.end(), -1);
    row_sender_.clear();
    row_mode_.clear();
    row_slot_.clear();
    rows_in_use_ = 0;
    slots_in_use_ = 0;
}

std::optional<Message> RoundBuffer::corrupt(NodeId v) {
    ADBA_EXPECTS(v < n_);
    std::optional<Message> discarded;
    if (state_[v] == kPresent) discarded = honest_[v];
    state_[v] = kByzantine;
    return discarded;
}

std::int32_t RoundBuffer::ensure_row(NodeId v) {
    std::int32_t row = byz_row_of_[v];
    if (row >= 0) return row;
    if (row_pattern_.size() <= rows_in_use_) row_pattern_.resize(rows_in_use_ + 1);
    row = static_cast<std::int32_t>(rows_in_use_);
    byz_row_of_[v] = row;
    row_sender_.push_back(v);
    row_mode_.push_back(kRowDense);
    row_slot_.push_back(-1);  // dense cells assigned only when needed
    ++rows_in_use_;
    return row;
}

void RoundBuffer::assign_dense_slot(std::size_t row) {
    const std::size_t slot = slots_in_use_++;
    if ((slot + 1) * n_ > byz_msgs_.size()) {
        byz_msgs_.resize((slot + 1) * n_);
        byz_present_.resize((slot + 1) * n_);
    }
    row_slot_[row] = static_cast<std::int32_t>(slot);
    std::fill_n(byz_present_.begin() + static_cast<std::ptrdiff_t>(slot * n_), n_,
                std::uint8_t{0});
}

void RoundBuffer::densify(std::size_t row) {
    if (row_mode_[row] == kRowDense) return;
    const RowPattern p = row_pattern_[row];
    assign_dense_slot(row);
    const std::size_t base = static_cast<std::size_t>(row_slot_[row]) * n_;
    for (NodeId to = 0; to < n_; ++to) {
        const int side = to < p.boundary ? 0 : 1;
        byz_present_[base + to] = p.present[side];
        if (p.present[side]) byz_msgs_[base + to] = p.msg[side];
    }
    row_mode_[row] = kRowDense;
}

bool RoundBuffer::deliver(NodeId byz_from, NodeId to, const Message& m) {
    ADBA_EXPECTS(byz_from < n_ && to < n_);
    const std::int32_t prior = byz_row_of_[byz_from];
    const std::size_t row = static_cast<std::size_t>(ensure_row(byz_from));
    if (prior < 0) {
        assign_dense_slot(row);  // fresh dense row: clear its cells once
    } else {
        densify(row);
    }
    const std::size_t off = static_cast<std::size_t>(row_slot_[row]) * n_ + to;
    const bool fresh = byz_present_[off] == 0;
    byz_present_[off] = 1;
    byz_msgs_[off] = m;
    return fresh;
}

Count RoundBuffer::apply_pattern(NodeId byz_from, const Message* low,
                                 const Message* high, NodeId boundary) {
    ADBA_EXPECTS(byz_from < n_ && boundary <= n_);
    const std::int32_t prior = byz_row_of_[byz_from];
    const std::size_t row = static_cast<std::size_t>(ensure_row(byz_from));
    if (prior < 0) {
        row_mode_[row] = kRowPattern;
        RowPattern& p = row_pattern_[row];
        p.boundary = boundary;
        p.present[0] = low != nullptr ? 1 : 0;
        p.present[1] = high != nullptr ? 1 : 0;
        if (low) p.msg[0] = *low;
        if (high) p.msg[1] = *high;
        Count fresh = 0;
        if (low) fresh += boundary;
        if (high) fresh += n_ - boundary;
        return fresh;
    }
    // Merge with earlier deliveries from the same sender: materialize and
    // overwrite cellwise, counting newly covered slots.
    densify(row);
    const std::size_t base = static_cast<std::size_t>(row_slot_[row]) * n_;
    Count fresh = 0;
    for (NodeId to = 0; to < n_; ++to) {
        const Message* m = to < boundary ? low : high;
        if (m == nullptr) continue;
        if (byz_present_[base + to] == 0) ++fresh;
        byz_present_[base + to] = 1;
        byz_msgs_[base + to] = *m;
    }
    return fresh;
}

// --------------------------------------------------------------- RoundTally

void RoundTally::rebuild(const RoundBuffer& buf, bool packed, IntraDispatcher* intra) {
    buf_ = &buf;
    buckets_in_use_ = 0;  // recycle bucket storage; no per-round allocation
    val_caches_in_use_ = 0;
    coin_caches_in_use_ = 0;
    packed_ = packed;
    if (packed)
        rebuild_packed(buf, intra);
    else
        rebuild_scalar(buf);
}

/// Finds or creates the (kind, phase) bucket for the current round; in
/// packed mode (words > 0) a fresh bucket gets a zeroed full-width match
/// plane. Creation order IS the serial discovery order: scalar rebuild
/// discovers by ascending sender, packed rebuild merges shard-local
/// buckets in shard-index order, and shard s covers lower senders than
/// shard s+1, so first occurrences arrive in the same order.
TallyBucket& RoundTally::bucket_for(MsgKind kind, Phase phase, std::size_t words) {
    for (std::size_t i = 0; i < buckets_in_use_; ++i)
        if (buckets_[i].kind == kind && buckets_[i].phase == phase)
            return buckets_[i];
    if (buckets_.size() <= buckets_in_use_) buckets_.resize(buckets_in_use_ + 1);
    TallyBucket& b = buckets_[buckets_in_use_++];
    b.kind = kind;
    b.phase = phase;
    b.val_cnt = {0, 0};
    b.val_flag_cnt = {0, 0};
    b.total = 0;
    b.have_coin_prefix = false;  // lazy storage keeps its capacity
    b.have_words = false;
    if (words > 0) b.match.assign(words, 0);
    return b;
}

void RoundTally::rebuild_scalar(const RoundBuffer& buf) {
    const NodeId n = buf.n();
    const std::uint8_t* state = buf.state_plane();
    const Message* honest = buf.honest_plane();
    for (NodeId v = 0; v < n; ++v) {
        if (state[v] != RoundBuffer::kPresent) continue;
        const Message& m = honest[v];
        TallyBucket& b = bucket_for(m.kind, m.phase, 0);
        ++b.total;
        ++b.val_cnt[m.val & 1];
        if (m.flag != 0) ++b.val_flag_cnt[m.val & 1];
    }
}

void RoundTally::rebuild_packed(const RoundBuffer& buf, IntraDispatcher* intra) {
    const NodeId n = buf.n();
    const std::size_t words = kern::word_count(n);
    planes_.ensure(words);
    const unsigned shards = intra != nullptr ? intra->shards() : 1;
    if (pack_shards_.size() < shards) pack_shards_.resize(shards);

    // Pack pass: every shard fills its own word span of the attribute
    // planes and its own local bucket matches — disjoint writes, barrier
    // on return.
    kern::run_sharded(intra, n, [&](unsigned s, NodeId lo, NodeId hi) {
        kern::pack_shard(buf, lo, hi, planes_, pack_shards_[s]);
    });

    // Serial merge in shard-index order (see bucket_for on ordering).
    // Shard word spans are disjoint, so copies never overlap.
    for (unsigned s = 0; s < shards; ++s) {
        const kern::PackShard& sh = pack_shards_[s];
        for (std::size_t i = 0; i < sh.buckets_in_use; ++i) {
            const kern::PackShardBucket& lb = sh.buckets[i];
            TallyBucket& b = bucket_for(lb.kind, lb.phase, words);
            std::copy(lb.match.begin(), lb.match.end(),
                      b.match.begin() + static_cast<std::ptrdiff_t>(sh.word_lo));
        }
    }

    // Count reduction: popcounts over full-width planes. Exact integers —
    // val_cnt[0] falls out of total because val & 1 is binary.
    for (std::size_t i = 0; i < buckets_in_use_; ++i) {
        TallyBucket& b = buckets_[i];
        b.total = kern::popcount_words(b.match.data(), words);
        b.val_cnt[1] = kern::popcount_and(b.match.data(), planes_.val.data(), words);
        b.val_cnt[0] = b.total - b.val_cnt[1];
        const Count flag_total =
            kern::popcount_and(b.match.data(), planes_.flag.data(), words);
        b.val_flag_cnt[1] = kern::popcount_and3(b.match.data(), planes_.flag.data(),
                                                planes_.val.data(), words);
        b.val_flag_cnt[0] = flag_total - b.val_flag_cnt[1];
    }
}

const TallyBucket* RoundTally::find(MsgKind kind, Phase phase) const {
    for (std::size_t i = 0; i < buckets_in_use_; ++i)
        if (buckets_[i].kind == kind && buckets_[i].phase == phase)
            return &buckets_[i];
    return nullptr;
}

const std::vector<std::int64_t>& RoundTally::coin_prefix(const TallyBucket& b) const {
    if (!b.have_coin_prefix) {
        const NodeId n = buf_->n();
        b.coin_prefix.assign(n + 1, 0);
        const std::uint8_t* state = buf_->state_plane();
        const Message* honest = buf_->honest_plane();
        for (NodeId u = 0; u < n; ++u) {
            std::int64_t d = 0;
            if (state[u] == RoundBuffer::kPresent) {
                const Message& m = honest[u];
                if (m.kind == b.kind && m.phase == b.phase) {
                    if (m.coin > 0)
                        d = 1;
                    else if (m.coin < 0)
                        d = -1;
                }
            }
            b.coin_prefix[u + 1] = b.coin_prefix[u] + d;
        }
        b.have_coin_prefix = true;
    }
    return b.coin_prefix;
}

std::int64_t RoundTally::coin_range_sum(const TallyBucket& b, NodeId first,
                                        NodeId last) const {
    if (packed_)
        return kern::coin_sum_range(planes_.coin_pos.data(), planes_.coin_neg.data(),
                                    b.match.data(), first, last);
    const auto& prefix = coin_prefix(b);
    return prefix[last] - prefix[first];
}

namespace {

/// Sorts a raw (word, 1)-pair list and merges duplicates in place: the
/// flat-vector replacement for inserting into a std::map. Capacity is the
/// caller's; a recycled vector makes this allocation-free once warm.
void sort_aggregate(WordHistogram& h) {
    std::sort(h.begin(), h.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t out = 0;
    for (std::size_t i = 0; i < h.size();) {
        std::size_t j = i;
        Count total = 0;
        while (j < h.size() && h[j].first == h[i].first) total += h[j++].second;
        h[out++] = {h[i].first, total};
        i = j;
    }
    h.resize(out);
}

}  // namespace

const WordHistogram& RoundTally::word_counts(const TallyBucket& b,
                                             bool require_flag) const {
    if (!b.have_words) {
        b.words.clear();
        b.words_flag.clear();
        const NodeId n = buf_->n();
        const Message* honest = buf_->honest_plane();
        if (packed_) {
            // Word-sliced collection: iterate set bits of the bucket's
            // match plane (ctz per live sender) instead of branching on
            // every sender's state/kind/phase bytes. Same senders in the
            // same ascending order — identical histograms.
            const std::size_t words = kern::word_count(n);
            kern::for_each_set_bit(b.match.data(), words, [&](NodeId u) {
                const Message& m = honest[u];
                b.words.emplace_back(m.word, Count{1});
                if (m.flag != 0) b.words_flag.emplace_back(m.word, Count{1});
            });
        } else {
            const std::uint8_t* state = buf_->state_plane();
            for (NodeId u = 0; u < n; ++u) {
                if (state[u] != RoundBuffer::kPresent) continue;
                const Message& m = honest[u];
                if (m.kind != b.kind || m.phase != b.phase) continue;
                b.words.emplace_back(m.word, Count{1});
                if (m.flag != 0) b.words_flag.emplace_back(m.word, Count{1});
            }
        }
        sort_aggregate(b.words);
        sort_aggregate(b.words_flag);
        b.have_words = true;
    }
    return require_flag ? b.words_flag : b.words;
}

const std::array<Count, 2>* RoundTally::val_delta_plane(MsgKind kind, Phase phase,
                                                        bool require_flag) const {
    const std::size_t rows = buf_->rows_in_use();
    if (rows == 0) return nullptr;
    for (std::size_t c = 0; c < val_caches_in_use_; ++c) {
        const ValCache& vc = val_caches_[c];
        if (vc.kind == kind && vc.phase == phase && vc.flag == require_flag)
            return vc.delta.data();
    }
    // Build the per-receiver delta array once for this query signature:
    // pattern rows contribute piecewise-constant runs as a DIFFERENCE SWEEP
    // (+1 at the run start, -1 past its end, prefix-summed once at the end)
    // so k pattern rows cost O(n + k), not O(n * k) — with t split-voting
    // Byzantine senders the latter was the dominant large-n term. Dense
    // rows are probed cellwise after the sweep resolves.
    if (val_caches_.size() <= val_caches_in_use_)
        val_caches_.resize(val_caches_in_use_ + 1);
    ValCache& vc = val_caches_[val_caches_in_use_++];
    vc.kind = kind;
    vc.phase = phase;
    vc.flag = require_flag;
    const NodeId n = buf_->n();
    vc.delta.assign(n, {Count{0}, Count{0}});
    const auto matches = [&](const Message& m) {
        return m.kind == kind && m.phase == phase && (!require_flag || m.flag != 0);
    };
    bool any_pattern = false;
    for (std::size_t r = 0; r < rows; ++r) {
        if (buf_->row_mode(r) != RoundBuffer::kRowPattern) continue;
        const RoundBuffer::RowPattern& p = buf_->row_pattern(r);
        for (int side = 0; side < 2; ++side) {
            if (!p.present[side] || !matches(p.msg[side])) continue;
            const NodeId lo = side == 0 ? 0 : p.boundary;
            const NodeId hi = side == 0 ? p.boundary : n;
            if (lo >= hi) continue;
            const int idx = p.msg[side].val & 1;
            // Unsigned wraparound in the -1 marker is intentional: the
            // prefix sum below restores the true (non-negative) counts.
            ++vc.delta[lo][idx];
            if (hi < n) --vc.delta[hi][idx];
            any_pattern = true;
        }
    }
    if (any_pattern) {
        for (NodeId v = 1; v < n; ++v) {
            vc.delta[v][0] += vc.delta[v - 1][0];
            vc.delta[v][1] += vc.delta[v - 1][1];
        }
    }
    for (std::size_t r = 0; r < rows; ++r) {
        if (buf_->row_mode(r) == RoundBuffer::kRowPattern) continue;
        for (NodeId v = 0; v < n; ++v) {
            const Message* m = buf_->row_delivery(r, v);
            if (m != nullptr && matches(*m)) ++vc.delta[v][m->val & 1];
        }
    }
    return vc.delta.data();
}

const std::array<Count, 2>* RoundTally::val_deltas(MsgKind kind, Phase phase,
                                                   bool require_flag,
                                                   NodeId receiver) const {
    const auto* plane = val_delta_plane(kind, phase, require_flag);
    return plane == nullptr ? nullptr : plane + receiver;
}

const std::int64_t* RoundTally::coin_delta_plane(MsgKind kind, Phase phase,
                                                 bool check_phase, NodeId first,
                                                 NodeId last) const {
    const std::size_t rows = buf_->rows_in_use();
    if (rows == 0) return nullptr;
    for (std::size_t c = 0; c < coin_caches_in_use_; ++c) {
        const CoinCache& cc = coin_caches_[c];
        if (cc.kind == kind && cc.phase == phase && cc.check_phase == check_phase &&
            cc.first == first && cc.last == last)
            return cc.delta.data();
    }
    if (coin_caches_.size() <= coin_caches_in_use_)
        coin_caches_.resize(coin_caches_in_use_ + 1);
    CoinCache& cc = coin_caches_[coin_caches_in_use_++];
    cc.kind = kind;
    cc.phase = phase;
    cc.check_phase = check_phase;
    cc.first = first;
    cc.last = last;
    const NodeId n = buf_->n();
    cc.delta.assign(n, 0);
    const auto sign_of = [&](const Message& m) -> std::int64_t {
        if (m.kind != kind || (check_phase && m.phase != phase)) return 0;
        if (m.coin > 0) return 1;
        if (m.coin < 0) return -1;
        return 0;
    };
    // Pattern rows as a difference sweep (O(1) per side, one prefix pass),
    // dense rows probed cellwise — same shape as val_delta_plane.
    bool any_pattern = false;
    for (std::size_t r = 0; r < rows; ++r) {
        const NodeId u = buf_->row_sender(r);
        if (u < first || u >= last) continue;
        if (buf_->row_mode(r) != RoundBuffer::kRowPattern) continue;
        const RoundBuffer::RowPattern& p = buf_->row_pattern(r);
        for (int side = 0; side < 2; ++side) {
            if (!p.present[side]) continue;
            const std::int64_t d = sign_of(p.msg[side]);
            if (d == 0) continue;
            const NodeId lo = side == 0 ? 0 : p.boundary;
            const NodeId hi = side == 0 ? p.boundary : n;
            if (lo >= hi) continue;
            cc.delta[lo] += d;
            if (hi < n) cc.delta[hi] -= d;
            any_pattern = true;
        }
    }
    if (any_pattern)
        for (NodeId v = 1; v < n; ++v) cc.delta[v] += cc.delta[v - 1];
    for (std::size_t r = 0; r < rows; ++r) {
        const NodeId u = buf_->row_sender(r);
        if (u < first || u >= last) continue;
        if (buf_->row_mode(r) == RoundBuffer::kRowPattern) continue;
        for (NodeId v = 0; v < n; ++v) {
            const Message* m = buf_->row_delivery(r, v);
            if (m != nullptr) cc.delta[v] += sign_of(*m);
        }
    }
    return cc.delta.data();
}

std::int64_t RoundTally::coin_delta(MsgKind kind, Phase phase, bool check_phase,
                                    NodeId first, NodeId last,
                                    NodeId receiver) const {
    const std::int64_t* plane = coin_delta_plane(kind, phase, check_phase, first, last);
    return plane == nullptr ? 0 : plane[receiver];
}

const WordHistogram& RoundTally::byz_word_deltas(MsgKind kind, bool require_flag,
                                                 NodeId receiver) const {
    WordHistogram& out = byz_words_scratch_;
    out.clear();  // capacity survives: no per-query allocation once warm
    const std::size_t rows = buf_->rows_in_use();
    for (std::size_t r = 0; r < rows; ++r) {
        const Message* m = buf_->row_delivery(r, receiver);
        if (m != nullptr && m->kind == kind && (!require_flag || m->flag != 0))
            out.emplace_back(m->word, Count{1});
    }
    sort_aggregate(out);
    return out;
}

// -------------------------------------------------------------- ReceiveView

std::array<Count, 2> ReceiveView::val_counts(MsgKind kind, Phase phase,
                                             bool require_flag) const {
    if (buf_ == nullptr) {
        // Adapter backend: the executable spec — a plain per-sender loop.
        std::array<Count, 2> cnt{0, 0};
        for (NodeId u = 0; u < n_; ++u) {
            const Message* m = from(u);
            if (m != nullptr && m->kind == kind && m->phase == phase &&
                (!require_flag || m->flag != 0))
                ++cnt[m->val & 1];
        }
        return cnt;
    }
    std::array<Count, 2> cnt{0, 0};
    if (const TallyBucket* b = tally_->find(kind, phase))
        cnt = require_flag ? b->val_flag_cnt : b->val_cnt;
    if (const auto* d = tally_->val_deltas(kind, phase, require_flag, recv_)) {
        cnt[0] += (*d)[0];
        cnt[1] += (*d)[1];
    }
    return cnt;
}

std::int64_t ReceiveView::coin_sum(MsgKind kind, Phase phase, bool check_phase,
                                   NodeId first, NodeId last) const {
    ADBA_EXPECTS(first <= last && last <= n_);
    if (buf_ == nullptr) {
        std::int64_t sum = 0;
        for (NodeId u = first; u < last; ++u) {
            const Message* m = from(u);
            if (m == nullptr || m->kind != kind ||
                (check_phase && m->phase != phase))
                continue;
            if (m->coin > 0)
                ++sum;
            else if (m->coin < 0)
                --sum;
        }
        return sum;
    }
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < tally_->bucket_count(); ++i) {
        const TallyBucket& b = tally_->bucket(i);
        if (b.kind != kind || (check_phase && b.phase != phase)) continue;
        sum += tally_->coin_range_sum(b, first, last);
    }
    sum += tally_->coin_delta(kind, phase, check_phase, first, last, recv_);
    return sum;
}

namespace {

/// Shared word-query walk: invokes consider(word, count) over the combined
/// (honest + Byzantine-delta) histogram in ascending word order. Both inputs
/// are sorted unique-word vectors (WordHistogram invariant).
template <typename Fn>
void walk_word_histogram(const WordHistogram& honest, const WordHistogram& byz,
                         Fn&& consider) {
    auto hit = honest.begin();
    auto bit = byz.begin();
    while (hit != honest.end() || bit != byz.end()) {
        if (bit == byz.end() || (hit != honest.end() && hit->first < bit->first)) {
            consider(hit->first, hit->second);
            ++hit;
        } else if (hit == honest.end() || bit->first < hit->first) {
            consider(bit->first, bit->second);
            ++bit;
        } else {
            consider(hit->first, hit->second + bit->second);
            ++hit;
            ++bit;
        }
    }
}

const WordHistogram kEmptyWords;

}  // namespace

template <typename Fn>
void ReceiveView::walk_words(MsgKind kind, bool require_flag, Fn&& consider) const {
    if (buf_ == nullptr) {
        // Adapter backend: the executable spec — a plain per-sender tally
        // (test/oracle path only; it may allocate).
        WordHistogram tally;
        for (NodeId u = 0; u < n_; ++u) {
            const Message* m = from(u);
            if (m != nullptr && m->kind == kind && (!require_flag || m->flag != 0))
                tally.emplace_back(m->word, Count{1});
        }
        sort_aggregate(tally);
        walk_word_histogram(tally, kEmptyWords, consider);
        return;
    }
    // Honest messages of one kind share one (kind, phase) bucket in any real
    // round (nodes move in lockstep); merge buckets defensively anyway.
    const WordHistogram* honest = &kEmptyWords;
    WordHistogram merged;
    bool first_bucket = true;
    for (std::size_t i = 0; i < tally_->bucket_count(); ++i) {
        const TallyBucket& b = tally_->bucket(i);
        if (b.kind != kind) continue;
        const auto& counts = tally_->word_counts(b, require_flag);
        if (first_bucket) {
            honest = &counts;
            first_bucket = false;
        } else {
            // Defensive multi-bucket merge; never hit by lockstep protocols.
            if (honest != &merged)
                merged.insert(merged.end(), honest->begin(), honest->end());
            merged.insert(merged.end(), counts.begin(), counts.end());
            sort_aggregate(merged);
            honest = &merged;
        }
    }
    walk_word_histogram(*honest, tally_->byz_word_deltas(kind, require_flag, recv_),
                        consider);
}

std::optional<Word> ReceiveView::quorum_word(MsgKind kind, bool require_flag,
                                             Count quorum) const {
    ADBA_EXPECTS(quorum >= 1);
    std::optional<Word> found;
    walk_words(kind, require_flag, [&](Word w, Count cnt) {
        if (cnt < quorum) return;
        // Two quorums cannot coexist (they would intersect in an honest
        // double-voter).
        ADBA_ENSURES_MSG(!found.has_value(), "two word quorums");
        found = w;
    });
    return found;
}

std::optional<std::pair<Word, Count>> ReceiveView::plurality_word(
    MsgKind kind, bool require_flag) const {
    std::optional<std::pair<Word, Count>> best;
    walk_words(kind, require_flag, [&](Word w, Count cnt) {
        // Strict > on an ascending walk: ties break to the smallest word.
        if (cnt > 0 && (!best || cnt > best->second)) best = {w, cnt};
    });
    return best;
}

}  // namespace adba::net
