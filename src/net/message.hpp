// Wire message representation for all protocols in the repository.
//
// Every protocol here is a full-broadcast-per-round protocol on a complete
// network (paper §1.1), so a round's traffic is one message per live sender.
// A single compact struct covers all protocols; each protocol interprets the
// generic fields (val / flag / coin) per its own message grammar.
//
// CONGEST accounting: the paper assumes O(log n) bits per edge per round.
// All messages here fit: constant payload + a phase counter bounded by the
// number of phases c <= n.
#pragma once

#include <cstdint>

#include "support/math.hpp"
#include "support/types.hpp"

namespace adba::net {

/// Discriminates the protocol-level meaning of a message.
enum class MsgKind : std::uint8_t {
    None = 0,       ///< placeholder; never sent
    Vote1,          ///< Algorithm 3 round 1 of a phase: (phase, val, decided)
    Vote2,          ///< Algorithm 3 round 2: (phase, val, decided, coin if committee member)
    Coin,           ///< standalone coin flip broadcast (Algorithm 1 / 2 run alone)
    PhaseKingSend,  ///< Phase-King value broadcast rounds
    PhaseKingRuler, ///< Phase-King king broadcast round
    BenOrReport,    ///< Ben-Or round 1 (report value)
    BenOrPropose,   ///< Ben-Or round 2 (propose value or '?')
    TCValue,        ///< Turpin-Coan prelude round 1: multi-valued input word
    TCEcho,         ///< Turpin-Coan prelude round 2: quorum'd word or ⊥ (flag=0)
};

/// A multi-valued agreement payload (Turpin-Coan extension); the binary
/// protocols leave it 0.
using Word = std::uint32_t;

/// One broadcastable protocol message. Sender identity is supplied by the
/// delivery layer (the receiver always knows the sender, paper §1.1).
struct Message {
    MsgKind kind = MsgKind::None;
    Bit val = 0;            ///< binary payload (vote / proposal value)
    std::uint8_t flag = 0;  ///< boolean payload (Alg. 3 "decided"; Ben-Or/TC "⊥" marker)
    CoinSign coin = 0;      ///< ±1 coin contribution; 0 = no contribution
    Phase phase = 0;        ///< phase number for phase-structured protocols
    Word word = 0;          ///< multi-valued payload (TCValue / TCEcho only)

    friend bool operator==(const Message&, const Message&) = default;
};

/// Size of a message on the wire in bits, for CONGEST accounting:
/// 4 (kind) + 1 (val) + 1 (flag) + 2 (coin) + phase counter of
/// ceil(log2(n+1)) bits (phases are bounded by c <= n), plus the word
/// payload for the multi-valued prelude kinds (a domain value of up to 32
/// bits; still O(log n) for polynomial domains).
inline std::uint64_t wire_bits(const Message& m, NodeId n) {
    const std::uint64_t base = 8 + ceil_log2(static_cast<std::uint64_t>(n) + 1);
    if (m.kind == MsgKind::TCValue || m.kind == MsgKind::TCEcho)
        return base + 8 * sizeof(Word);
    return base;
}

}  // namespace adba::net
