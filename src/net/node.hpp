// Interface implemented by every honest protocol node.
//
// The engine drives nodes with a strict two-beat cadence per round:
//   1. round_send(r)    — compute and emit this round's broadcast (random
//                         choices for round r are drawn here);
//   2. round_receive(r) — observe the delivered messages and update state.
// Between the two beats the adversary observes every honest broadcast
// (rushing, §1.1) and may corrupt nodes and substitute per-recipient
// Byzantine messages.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "net/round_buffer.hpp"
#include "support/contracts.hpp"
#include "support/types.hpp"

namespace adba::net {

// ReceiveView (the receiver's window onto one round, a concrete final class
// with non-virtual from() plus the shared tally queries) lives in
// net/round_buffer.hpp with the flat delivery plane backing it. Scripted
// tests that used to subclass ReceiveView implement DeliverySource instead
// and hand the engine-independent adapter constructor a receiver id.

/// An honest protocol participant. Implementations are pure state machines;
/// all randomness comes from the per-node stream handed to the constructor.
class HonestNode {
public:
    virtual ~HonestNode() = default;

    /// Emits this round's broadcast; nullopt = silent this round.
    /// Called only while the node is honest and not halted.
    virtual std::optional<Message> round_send(Round r) = 0;

    /// Consumes this round's deliveries.
    virtual void round_receive(Round r, const ReceiveView& view) = 0;

    /// True once the node has terminated the protocol (it stays silent and
    /// its output() is final). Halting is irreversible.
    virtual bool halted() const = 0;

    /// The node's current agreement value (final once halted). Also serves
    /// as full-information introspection for adversaries: the model lets
    /// Byzantine nodes know the entire honest state (§1.1).
    virtual Bit current_value() const = 0;

    /// Current "decided" flag (Algorithm 3 bookkeeping); false where the
    /// protocol has no such notion. Introspection for adversaries/tests.
    virtual bool current_decided() const { return false; }

    /// Final output bit (valid when the engine stops; equals current_value
    /// for all protocols here).
    virtual Bit output() const { return current_value(); }
};

/// Shared loop behind every protocol's reinit_*_nodes: checks the pool was
/// built for this node type and size, then re-arms each node in id order via
/// `per_node(node, v)`. Trial runners use this to reuse node sets across
/// Monte-Carlo trials with zero allocation.
template <typename Node, typename Fn>
void reinit_node_pool(std::vector<std::unique_ptr<HonestNode>>& nodes, NodeId n,
                      Fn&& per_node) {
    ADBA_EXPECTS(nodes.size() == n);
    ADBA_EXPECTS_MSG(dynamic_cast<Node*>(nodes.front().get()) != nullptr,
                     "node pool type does not match the requested protocol");
    for (NodeId v = 0; v < n; ++v) per_node(*static_cast<Node*>(nodes[v].get()), v);
}

}  // namespace adba::net
