// Interface implemented by every honest protocol node.
//
// The engine drives nodes with a strict two-beat cadence per round:
//   1. round_send(r)    — compute and emit this round's broadcast (random
//                         choices for round r are drawn here);
//   2. round_receive(r) — observe the delivered messages and update state.
// Between the two beats the adversary observes every honest broadcast
// (rushing, §1.1) and may corrupt nodes and substitute per-recipient
// Byzantine messages.
#pragma once

#include <optional>

#include "net/message.hpp"
#include "support/types.hpp"

namespace adba::net {

/// Receiver-specific view of one round's deliveries.
class ReceiveView {
public:
    virtual ~ReceiveView() = default;

    /// Message delivered from `sender` to this receiver this round, or
    /// nullptr for silence (halted, crashed, or adversarially withheld).
    /// `from(self)` returns the node's own broadcast (a node counts its own
    /// value in the paper's tallies).
    virtual const Message* from(NodeId sender) const = 0;

    /// Network size; senders are 0..n()-1.
    virtual NodeId n() const = 0;

    /// The receiving node's own id.
    virtual NodeId receiver() const = 0;
};

/// An honest protocol participant. Implementations are pure state machines;
/// all randomness comes from the per-node stream handed to the constructor.
class HonestNode {
public:
    virtual ~HonestNode() = default;

    /// Emits this round's broadcast; nullopt = silent this round.
    /// Called only while the node is honest and not halted.
    virtual std::optional<Message> round_send(Round r) = 0;

    /// Consumes this round's deliveries.
    virtual void round_receive(Round r, const ReceiveView& view) = 0;

    /// True once the node has terminated the protocol (it stays silent and
    /// its output() is final). Halting is irreversible.
    virtual bool halted() const = 0;

    /// The node's current agreement value (final once halted). Also serves
    /// as full-information introspection for adversaries: the model lets
    /// Byzantine nodes know the entire honest state (§1.1).
    virtual Bit current_value() const = 0;

    /// Current "decided" flag (Algorithm 3 bookkeeping); false where the
    /// protocol has no such notion. Introspection for adversaries/tests.
    virtual bool current_decided() const { return false; }

    /// Final output bit (valid when the engine stops; equals current_value
    /// for all protocols here).
    virtual Bit output() const { return current_value(); }
};

}  // namespace adba::net
