#include "net/sparse_plane.hpp"

#include "net/tally_kernels.hpp"
#include "support/contracts.hpp"

namespace adba::net {

void SparsePlane::reset(NodeId n, Count requested_degree, std::uint64_t seed,
                        SparseStream stream) {
    ADBA_EXPECTS(n > 0);
    n_ = n;
    seed_ = seed;
    stream_ = stream;
    const Count want = requested_degree == 0 ? kDefaultSampleDegree : requested_degree;
    dense_ = want >= n;
    degree_ = dense_ ? n : static_cast<NodeId>(want);
    round_ = 0;
    buf_ = nullptr;
    tally_ = nullptr;
    state_ = nullptr;
    byz_ = nullptr;
    // The per-query code plane: 2 code words per 64-sender source word.
    // Dense mode never probes through it, so keep it empty there (and keep
    // memory_bytes() an honest zero).
    code_.clear();
    code_.shrink_to_fit();
    if (!dense_)
        code_.resize(2 * ((static_cast<std::size_t>(n_) + kern::kWordBits - 1) /
                          kern::kWordBits));
}

void SparsePlane::begin_round(Round r, const RoundBuffer& buf,
                              const RoundTally& tally) {
    ADBA_EXPECTS_MSG(buf.n() == n_, "SparsePlane bound to a different population");
    ADBA_EXPECTS_MSG(tally.packed(),
                     "sparse mode reads the word-packed tally planes (simd=on)");
    round_ = r;
    buf_ = &buf;
    tally_ = &tally;
    state_ = buf.state_plane();
    byz_ = tally.packed_planes().byz.data();
}

SparsePlane::Query SparsePlane::query(MsgKind kind, Phase phase,
                                      bool require_flag) const {
    // The per-beat resolution point: every precondition and pointer chase
    // the per-receiver walk would otherwise repeat n times lives here.
    ADBA_EXPECTS_MSG(tally_ != nullptr && buf_ != nullptr,
                     "query before begin_round");
    Query q;
    q.kind = kind;
    q.phase = phase;
    q.require_flag = require_flag;
    if (const TallyBucket* b = tally_->find(kind, phase)) {
        const kern::PackedPlanes& planes = tally_->packed_planes();
        q.match = b->match.data();
        q.val = planes.val.data();
        q.flag = planes.flag.data();
    }
    if (!dense_) {
        // Fold the query's planes into the 2-bit code plane the batched
        // probe kernel gathers from — one O(n/64) pass per beat, amortized
        // against the n*degree probes that read it. The buffer is plane-
        // owned: building it here is what invalidates earlier Query
        // handles (see the header contract).
        kern::SparseProbeCtx ctx;
        ctx.byz = byz_;
        ctx.match = q.match;
        ctx.val = q.val;
        ctx.flag = q.flag;
        ctx.require_flag = require_flag;
        kern::sparse_build_code_plane(ctx, code_.size() / 2, code_.data());
        q.code = code_.data();
    }
    return q;
}

void SparsePlane::probe(const Query& q, NodeId receiver, NodeId sender,
                        std::array<Count, 2>& c) const {
    const std::uint8_t st = state_[sender];
    if ((st & RoundBuffer::kByzantine) != 0) {
        // Adversarial edge: the O(1) pattern/dense row probe, so sampled
        // edges see exactly the equivocation the flat plane would deliver.
        if (const Message* m = buf_->from(receiver, sender)) {
            if (m->kind == q.kind && m->phase == q.phase &&
                (!q.require_flag || m->flag != 0))
                ++c[m->val & 1];
        }
        return;
    }
    if (q.match == nullptr) return;  // no honest broadcast in this bucket
    const std::size_t w = sender / kern::kWordBits;
    const std::uint64_t bit = std::uint64_t{1} << (sender % kern::kWordBits);
    // The attribute planes are unmasked (tally_kernels.hpp): the match bit
    // gates them, so stale val/flag bits of silent senders are never read.
    if ((q.match[w] & bit) == 0) return;
    if (q.require_flag && (q.flag[w] & bit) == 0) return;
    ++c[(q.val[w] & bit) != 0 ? 1 : 0];
}

std::array<Count, 2> SparsePlane::raw_counts(const Query& q, NodeId receiver) const {
    std::array<Count, 2> c{0, 0};
    if (dense_) {
        // Dense exact walk: per-sender probes over the whole population —
        // an independent re-derivation of the flat tally's integers, which
        // is what pins sparse == flat at small n. No sampling, so the
        // stream version cannot matter here (pinned by test anyway).
        for (NodeId u = 0; u < n_; ++u) probe(q, receiver, u, c);
        return c;
    }
    // Batched with-replacement draws keyed by (stream, seed, round,
    // receiver, i): 64-lane index blocks, one gathered 2-bit code read per
    // honest lane, exact pattern-row walks for the (rare) Byzantine lanes
    // (net/sparse_kernels.hpp).
    kern::sparse_count_receiver(
        stream_, seed_, round_, receiver, n_, degree_, q.code, c,
        [&](NodeId sender) {
            if (const Message* m = buf_->from(receiver, sender)) {
                if (m->kind == q.kind && m->phase == q.phase &&
                    (!q.require_flag || m->flag != 0))
                    ++c[m->val & 1];
            }
        });
    return c;
}

std::array<Count, 2> SparsePlane::val_estimates(const Query& q,
                                                NodeId receiver) const {
    const std::array<Count, 2> c = raw_counts(q, receiver);
    if (dense_) return c;
    return {scale(c[0]), scale(c[1])};
}

}  // namespace adba::net
