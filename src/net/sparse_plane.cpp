#include "net/sparse_plane.hpp"

#include "net/tally_kernels.hpp"
#include "support/contracts.hpp"

namespace adba::net {

namespace {

// splitmix64 finalizer. FROZEN: the sample derivation below is part of the
// replayability contract — changing it re-randomizes every recorded sparse
// experiment, exactly like reordering a SeedTree stream would.
inline std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

void SparsePlane::reset(NodeId n, Count requested_degree, std::uint64_t seed) {
    ADBA_EXPECTS(n > 0);
    n_ = n;
    seed_ = seed;
    const Count want = requested_degree == 0 ? kDefaultSampleDegree : requested_degree;
    dense_ = want >= n;
    degree_ = dense_ ? n : static_cast<NodeId>(want);
    round_ = 0;
    buf_ = nullptr;
    tally_ = nullptr;
    state_ = nullptr;
}

void SparsePlane::begin_round(Round r, const RoundBuffer& buf,
                              const RoundTally& tally) {
    ADBA_EXPECTS_MSG(buf.n() == n_, "SparsePlane bound to a different population");
    ADBA_EXPECTS_MSG(tally.packed(),
                     "sparse mode reads the word-packed tally planes (simd=on)");
    round_ = r;
    buf_ = &buf;
    tally_ = &tally;
    state_ = buf.state_plane();
}

SparsePlane::Query SparsePlane::query(MsgKind kind, Phase phase,
                                      bool require_flag) const {
    ADBA_EXPECTS_MSG(tally_ != nullptr, "query before begin_round");
    Query q;
    q.kind = kind;
    q.phase = phase;
    q.require_flag = require_flag;
    if (const TallyBucket* b = tally_->find(kind, phase)) {
        const kern::PackedPlanes& planes = tally_->packed_planes();
        q.match = b->match.data();
        q.val = planes.val.data();
        q.flag = planes.flag.data();
    }
    return q;
}

void SparsePlane::probe(const Query& q, NodeId receiver, NodeId sender,
                        std::array<Count, 2>& c) const {
    const std::uint8_t st = state_[sender];
    if ((st & RoundBuffer::kByzantine) != 0) {
        // Adversarial edge: the O(1) pattern/dense row probe, so sampled
        // edges see exactly the equivocation the flat plane would deliver.
        if (const Message* m = buf_->from(receiver, sender)) {
            if (m->kind == q.kind && m->phase == q.phase &&
                (!q.require_flag || m->flag != 0))
                ++c[m->val & 1];
        }
        return;
    }
    if (q.match == nullptr) return;  // no honest broadcast in this bucket
    const std::size_t w = sender / kern::kWordBits;
    const std::uint64_t bit = std::uint64_t{1} << (sender % kern::kWordBits);
    // The attribute planes are unmasked (tally_kernels.hpp): the match bit
    // gates them, so stale val/flag bits of silent senders are never read.
    if ((q.match[w] & bit) == 0) return;
    if (q.require_flag && (q.flag[w] & bit) == 0) return;
    ++c[(q.val[w] & bit) != 0 ? 1 : 0];
}

std::array<Count, 2> SparsePlane::raw_counts(const Query& q, NodeId receiver) const {
    ADBA_EXPECTS_MSG(buf_ != nullptr, "raw_counts before begin_round");
    std::array<Count, 2> c{0, 0};
    if (dense_) {
        // Dense exact walk: per-sender probes over the whole population —
        // an independent re-derivation of the flat tally's integers, which
        // is what pins sparse == flat at small n.
        for (NodeId u = 0; u < n_; ++u) probe(q, receiver, u, c);
        return c;
    }
    // With-replacement draws keyed by (seed, round, receiver, i). Round and
    // receiver pack into one 64-bit lane, so every (round, receiver) pair
    // owns a distinct stream regardless of execution order.
    std::uint64_t h =
        mix(seed_ ^ ((static_cast<std::uint64_t>(round_) << 32) | receiver));
    for (NodeId i = 0; i < degree_; ++i) {
        h = mix(h);
        probe(q, receiver, static_cast<NodeId>(h % n_), c);
    }
    return c;
}

std::array<Count, 2> SparsePlane::val_estimates(const Query& q,
                                                NodeId receiver) const {
    const std::array<Count, 2> c = raw_counts(q, receiver);
    if (dense_) return c;
    return {scale(c[0]), scale(c[1])};
}

}  // namespace adba::net
