#include "net/fused_plane.hpp"

#include <algorithm>
#include <bit>

#include "support/contracts.hpp"

namespace adba::net {

// ---------------------------------------------------------------- FusedFrame

void FusedFrame::throw_duplicate_row() {
    throw ContractViolation(
        "fused plane: duplicate Byzantine pattern for one (lane, sender, "
        "round); supported fused adversaries pattern a sender at most once "
        "per round (adversaries that re-pattern must declare "
        "supports_fused=false)");
}

// --------------------------------------------------------- FusedLaneControl

void FusedLaneControl::rearm(FusedFrame* frame, FusedProtocol* proto, Count budget) {
    frame_ = frame;
    proto_ = proto;
    budget_ = budget;
    round_ = 0;
    lane_ = 0;
    std::fill(std::begin(used_), std::end(used_), Count{0});
    std::fill(std::begin(byz_msgs_), std::end(byz_msgs_), std::uint64_t{0});
}

bool FusedLaneControl::is_honest(NodeId v) const {
    ADBA_EXPECTS(v < frame_->n());
    return (frame_->byz[v] & lane_bit()) == 0;
}

bool FusedLaneControl::is_halted(NodeId v) const {
    ADBA_EXPECTS(v < frame_->n());
    return (frame_->byz[v] & lane_bit()) == 0 &&
           (proto_->halted_plane()[v] & lane_bit()) != 0;
}

std::optional<Message> FusedLaneControl::message_of(NodeId v) const {
    const std::uint64_t bit = lane_bit();
    if ((frame_->sent[v] & bit) == 0) return std::nullopt;
    Message m;
    m.kind = frame_->kind;
    m.phase = frame_->phase;
    m.val = (frame_->val[v] & bit) != 0 ? 1 : 0;
    m.flag = (frame_->flag[v] & bit) != 0 ? 1 : 0;
    m.coin = (frame_->coinp[v] & bit) != 0   ? CoinSign{1}
             : (frame_->coinn[v] & bit) != 0 ? CoinSign{-1}
                                             : CoinSign{0};
    return m;
}

const Message* FusedLaneControl::intended_broadcast(NodeId v) const {
    ADBA_EXPECTS(v < frame_->n());
    ADBA_EXPECTS_MSG(is_honest(v), "only honest nodes have intended broadcasts");
    const auto m = message_of(v);
    if (!m) return nullptr;
    scratch_ = *m;
    return &scratch_;
}

Bit FusedLaneControl::current_value(NodeId v) const {
    ADBA_EXPECTS(v < frame_->n());
    ADBA_EXPECTS_MSG(is_honest(v), "introspection is defined for honest nodes");
    return (proto_->value_plane()[v] & lane_bit()) != 0 ? 1 : 0;
}

bool FusedLaneControl::current_decided(NodeId v) const {
    ADBA_EXPECTS(v < frame_->n());
    ADBA_EXPECTS_MSG(is_honest(v), "introspection is defined for honest nodes");
    return (proto_->decided_plane()[v] & lane_bit()) != 0;
}

std::optional<Message> FusedLaneControl::corrupt(NodeId v) {
    ADBA_EXPECTS(v < frame_->n());
    const std::uint64_t bit = lane_bit();
    ADBA_EXPECTS_MSG((frame_->byz[v] & bit) == 0,
                     "cannot corrupt an already-Byzantine node");
    ADBA_EXPECTS_MSG((proto_->halted_plane()[v] & bit) == 0,
                     "cannot corrupt a node that already terminated");
    ADBA_EXPECTS_MSG(used_[lane_] < budget_, "corruption budget exhausted");
    ++used_[lane_];
    auto discarded = message_of(v);  // before the sent bit is cleared
    frame_->byz[v] |= bit;
    frame_->sent[v] &= ~bit;  // attribute bits stay; consumers mask with sent
    return discarded;
}

void FusedLaneControl::deliver_as(NodeId, NodeId, const Message&) {
    throw ContractViolation(
        "the fused plane delivers Byzantine messages as split_as patterns "
        "only; per-cell deliver_as has no lane form (adversaries that need it "
        "must declare supports_fused=false)");
}

void FusedLaneControl::split_as(NodeId byz_from, const std::optional<Message>& low,
                                const std::optional<Message>& high, NodeId boundary) {
    const NodeId n = frame_->n();
    ADBA_EXPECTS(byz_from < n && boundary <= n);
    ADBA_EXPECTS_MSG((frame_->byz[byz_from] & lane_bit()) != 0,
                     "split_as requires a corrupted sender");
    FusedRow& row = frame_->add_row(lane_, byz_from);
    row.boundary = boundary;
    row.has_low = low.has_value();
    row.has_high = high.has_value();
    if (low) row.low = *low;
    if (high) row.high = *high;
    // Newly covered delivery slots of a fresh pattern row — exactly what
    // RoundBuffer::apply_pattern reports for a just-corrupted sender (the
    // add_row duplicate guard keeps "fresh" unconditional).
    std::uint64_t covered = 0;
    if (low) covered += boundary;
    if (high) covered += n - boundary;
    byz_msgs_[lane_] += covered;
}

// ---------------------------------------------------------------- FusedBlock

void FusedBlock::run(FusedProtocol& proto, Adversary* const* advs, Count budget,
                     Round max_rounds, FusedLaneResult* out) {
    const NodeId n = proto.n();
    ADBA_EXPECTS(n > 0);
    ADBA_EXPECTS(max_rounds > 0);
    frame_.reset(n);
    ctl_.rearm(&frame_, &proto, budget);
    for (unsigned j = 0; j < kFusedLanes; ++j) advs[j]->on_start(n, budget);

    std::uint64_t active = ~std::uint64_t{0};
    std::uint64_t decided = 0;
    Round rounds[kFusedLanes] = {};
    std::uint64_t msgs[kFusedLanes] = {};
    std::uint64_t bits[kFusedLanes] = {};

    kern::LaneAdder a_sent, a_flush, a_halt;
    Count sent_cnt[kFusedLanes], flush_cnt[kFusedLanes], halt_cnt[kFusedLanes];

    for (Round r = 0; r < max_rounds && active != 0; ++r) {
        frame_.active = active;
        frame_.begin_round(MsgKind::None, 0);

        // Beat 1: honest sends (the protocol fills the broadcast planes and
        // applies its flush-halts).
        proto.send_round(r, frame_);

        // Beat 2: each live lane's rushing adversary observes and acts.
        // Retired lanes' adversaries are never invoked again — their scalar
        // twins' runs already ended.
        ctl_.set_round(r);
        for (std::uint64_t lanes = active; lanes != 0; lanes &= lanes - 1) {
            const unsigned j = static_cast<unsigned>(std::countr_zero(lanes));
            ctl_.set_lane(j);
            advs[j]->act(ctl_);
        }

        // Honest traffic accounting in closed form per lane. Scalar charges
        // each broadcast for n-1 receivers minus the honest-halted ones,
        // putting the sender's own halted slot back when it flush-halted
        // this round:   sum(fanout) = S*(n-1-H) + SH
        // with S = live broadcasts, H = honest halted, SH = halted senders —
        // all read AFTER corruptions, exactly like Engine::account_sends.
        const std::uint64_t* halted = proto.halted_plane();
        a_sent.reset();
        a_flush.reset();
        a_halt.reset();
        for (NodeId v = 0; v < n; ++v) {
            const std::uint64_t s = frame_.sent[v];
            a_sent.add(s);
            a_flush.add(s & halted[v]);
            a_halt.add(~frame_.byz[v] & halted[v]);
        }
        a_sent.counts(sent_cnt);
        a_flush.counts(flush_cnt);
        a_halt.counts(halt_cnt);
        Message probe;
        probe.kind = frame_.kind;
        probe.phase = frame_.phase;
        const std::uint64_t wb = wire_bits(probe, n);
        for (std::uint64_t lanes = active; lanes != 0; lanes &= lanes - 1) {
            const unsigned j = static_cast<unsigned>(std::countr_zero(lanes));
            // Unsigned wrap-safe: the sum is the exact nonnegative total.
            const std::uint64_t fan =
                static_cast<std::uint64_t>(sent_cnt[j]) *
                    (static_cast<std::uint64_t>(n) - 1 - halt_cnt[j]) +
                flush_cnt[j];
            msgs[j] += fan;
            bits[j] += fan * wb;
        }

        // Beat 3: deliveries.
        proto.receive_round(r, frame_);

        // All-halted sweep, all lanes at once: lane j is live while any node
        // is neither Byzantine nor halted in it.
        const std::uint64_t* halted2 = proto.halted_plane();
        std::uint64_t live_any = 0;
        for (NodeId v = 0; v < n; ++v) live_any |= ~frame_.byz[v] & ~halted2[v];
        const std::uint64_t retired = active & ~live_any;
        for (std::uint64_t lanes = retired; lanes != 0; lanes &= lanes - 1) {
            const unsigned j = static_cast<unsigned>(std::countr_zero(lanes));
            rounds[j] = r + 1;  // count this round as executed
        }
        decided |= retired;
        active &= live_any;
    }

    for (unsigned j = 0; j < kFusedLanes; ++j) {
        FusedLaneResult& res = out[j];
        const bool lane_decided = (decided >> j & 1) != 0;
        res.all_halted = lane_decided;
        res.rounds = lane_decided ? rounds[j] : max_rounds;
        res.outcome =
            lane_decided ? TrialOutcome::Decided : TrialOutcome::RoundCapExhausted;
        res.metrics = Metrics{};
        res.metrics.honest_messages = msgs[j];
        res.metrics.honest_bits = bits[j];
        res.metrics.byzantine_messages = ctl_.byzantine_messages(j);
        res.metrics.corruptions = ctl_.corruptions(j);
        res.metrics.rounds = res.rounds;
        ADBA_ENSURES_MSG(ctl_.corruptions(j) <= budget, "budget accounting overflow");
    }
}

// -------------------------------------------------------------- LaneSegments

void LaneSegments::rebuild(const std::vector<FusedRow>& rows, NodeId n) {
    // Sorted-insert with dedupe instead of sort+unique: row counts are small
    // (≤ the corruption budget) and the supported adversaries split every
    // sender at ONE shared boundary, so almost every insert is a single
    // compare against the last interior cut. This runs every (lane, round) —
    // it is the hot path of fused receive under Byzantine pressure.
    cuts_.clear();
    cuts_.push_back(0);
    for (const FusedRow& row : rows) {
        const NodeId b = row.boundary;
        if (b == 0 || b >= n) continue;
        std::size_t i = cuts_.size();
        while (i > 1 && cuts_[i - 1] > b) --i;
        if (cuts_[i - 1] == b) continue;
        cuts_.insert(cuts_.begin() + static_cast<std::ptrdiff_t>(i), b);
    }
    cuts_.push_back(n);
}

}  // namespace adba::net
