// Sparse delivery plane: sampled per-receiver sender subsets over the
// round's bit-packed planes — the fifth data-plane layer (see README.md).
//
// The flat receive path answers every receiver's tally query exactly, from
// the full sender population. King-Saia (arXiv:1002.4561) shows Õ(√n) bits
// per processor suffice against an adaptive adversary, and the paper's own
// committees are polylog(n)-sized: a receiver does not need to hear all n
// senders to estimate a quorum. SparsePlane makes that physical. In sparse
// mode (EngineConfig::plane == PlaneMode::Sparse, scenario key
// `plane=sparse`) each live receiver v probes only `degree` sampled sender
// edges per round and scales the sampled counts to population estimates;
// the committee coin and the Phase-King king probe stay exact (those
// senders are few enough to hear in full — the King-Saia shape).
//
// What a sampled edge (u -> v) reads:
//  * honest present u — the round's word-packed tally planes: the
//    (kind, phase) bucket match bit, the val bit, the flag bit. Three bit
//    planes of n/8 bytes each instead of 16-byte Message cells, so the
//    whole read set of a million-node round is a few hundred kilobytes.
//    Sparse mode therefore requires the packed tally (`simd=on`).
//  * Byzantine u — RoundBuffer::from(v, u): the O(1) pattern-row probe, so
//    adversarial equivocation (split_as / broadcast_as) gates sampled
//    edges exactly as it gates flat ones. Membership itself is a single
//    bit of the packed honesty plane (PackedPlanes::byz).
//
// Sampling is index-derived and replayable: draw i of receiver v in round
// r depends only on (sparse_stream, sparse_seed, r, v, i) — never on
// threads, shards, or visit order — so sparse runs obey the repository's
// bit-exactness discipline (any thread/shard count, same integers). The
// derivation is VERSIONED (net/sparse_kernels.hpp, scenario key
// `sparse_stream=`): the counter stream is the fast default, the v1 chain
// stays selectable forever because recorded experiments replay only under
// the stream that produced them.
//
// The probe loop itself is batched (sparse_kernels.hpp): query() folds the
// round's honesty/match/val/flag planes into a per-query 2-bit code plane,
// indices derive in 64-lane blocks, honest lanes count branchlessly from
// ONE gathered code read each, and only Byzantine-sampled lanes take the
// exact pattern-row walk.
//
// Oracle relationship: with degree >= n the plane switches to a dense
// exact walk over ALL senders — an independent code path that must produce
// the very integers the flat tally produces, which pins sparse == flat
// bit-identically across the registry cross product at small n, for BOTH
// stream versions (the dense walk draws nothing, so the stream tag is
// irrelevant there — tests/test_sparse_plane.cpp pins it anyway). Below n,
// counts become estimates est = round(cnt * n / degree) and protocol
// lemmas that are theorems under exact counts become approximations —
// batches run their relaxed (assert-free) threshold forms there.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "net/round_buffer.hpp"
#include "net/sparse_kernels.hpp"
#include "support/types.hpp"

namespace adba::net {

/// Sampled senders per receiver per round when the scenario does not pin
/// `sample_degree`. Constant-degree is the cheapest useful default; for
/// fidelity at large n choose degree = Θ(√n) (King-Saia) explicitly.
inline constexpr NodeId kDefaultSampleDegree = 64;

class SparsePlane {
public:
    /// Re-arms the plane for a trial. `requested_degree` 0 selects
    /// kDefaultSampleDegree; any request >= n selects the dense exact walk.
    /// `stream` picks the frozen index-derivation version (sparse_kernels).
    void reset(NodeId n, Count requested_degree, std::uint64_t seed,
               SparseStream stream = SparseStream::Counter);

    /// Binds the plane to the current round's delivery state. The tally
    /// must have been rebuilt in packed mode for this round.
    void begin_round(Round r, const RoundBuffer& buf, const RoundTally& tally);

    NodeId n() const { return n_; }
    /// Edges probed per receiver per round (== n in dense mode).
    NodeId degree() const { return degree_; }
    /// True when every sender is observed and counts are exact (no scaling).
    bool dense() const { return dense_; }
    /// The frozen sample-derivation version this trial replays under.
    SparseStream stream() const { return stream_; }

    /// Heap bytes owned by the plane itself. The design owns NO per-edge or
    /// per-receiver storage — samples are re-derived from the seed (the
    /// batch kernels use a fixed 64-lane stack buffer). The only allocation
    /// is the per-query 2-bit code plane: 2 bits per SENDER (O(n/4) bytes,
    /// sub-dense mode only), independent of degree and receiver count; the
    /// O(n·degree) fuzz bound in tests guards against a future regression
    /// toward materialized per-edge sample tables.
    std::size_t memory_bytes() const {
        return code_.capacity() * sizeof(std::uint64_t);
    }

    /// One round's hoisted query handle: the (kind, phase) bucket's match
    /// plane plus the shared attribute planes, resolved once per beat
    /// (receive_sparse_prepare) so the per-receiver walk re-resolves
    /// nothing — no tally lookup, no precondition test, no plane pointer
    /// chase per receiver. In sub-dense mode query() also folds those
    /// planes into the plane-owned 2-bit code plane (`code`, one gathered
    /// read per probe — sparse_kernels.hpp); the buffer is shared, so AT
    /// MOST ONE Query may be live at a time: calling query() again
    /// invalidates every earlier handle. Every sparse batch already hoists
    /// exactly one query per beat, which is the shape this contract pins.
    /// `match == nullptr` means no honest broadcast landed in the bucket
    /// this round; Byzantine edges still count.
    struct Query {
        MsgKind kind{};
        Phase phase = 0;
        bool require_flag = false;
        const std::uint64_t* match = nullptr;
        const std::uint64_t* val = nullptr;
        const std::uint64_t* flag = nullptr;
        const std::uint64_t* code = nullptr;  ///< sub-dense only
    };
    Query query(MsgKind kind, Phase phase, bool require_flag) const;

    /// Raw sampled (or dense-exact) counts by val & 1 over receiver v's
    /// sender edges for this round.
    std::array<Count, 2> raw_counts(const Query& q, NodeId receiver) const;

    /// Population estimates: raw counts in dense mode, otherwise
    /// scale(raw) per value — the numbers a batch feeds its unchanged
    /// quorum thresholds.
    std::array<Count, 2> val_estimates(const Query& q, NodeId receiver) const;

    /// round(sampled * n / degree), the unbiased-to-rounding estimator.
    Count scale(Count sampled) const {
        if (dense_) return sampled;
        return static_cast<Count>((static_cast<std::uint64_t>(sampled) * n_ +
                                   degree_ / 2) /
                                  degree_);
    }

private:
    void probe(const Query& q, NodeId receiver, NodeId sender,
               std::array<Count, 2>& c) const;

    NodeId n_ = 0;
    NodeId degree_ = 0;
    bool dense_ = false;
    SparseStream stream_ = SparseStream::Counter;
    std::uint64_t seed_ = 0;
    Round round_ = 0;
    const RoundBuffer* buf_ = nullptr;
    const RoundTally* tally_ = nullptr;
    const std::uint8_t* state_ = nullptr;  ///< buf_'s presence/honesty plane
    const std::uint64_t* byz_ = nullptr;   ///< packed honesty word plane
    /// Per-query code plane backing store (2 words out per source word in,
    /// sub-dense only). Owned by the plane, rebuilt by query() — hence the
    /// single-live-Query contract documented above. mutable because
    /// query() is morally const: it publishes round state, mutating only
    /// this scratch buffer.
    mutable std::vector<std::uint64_t> code_;
};

}  // namespace adba::net
