// Word-packed tally kernels + the intra-trial shard seam.
//
// The scalar RoundTally build walks the round's uint8_t state plane and
// Message[] once per round — a byte-granular sweep whose throughput is
// bounded by issue width, not memory bandwidth. This header packs the
// binary per-sender attributes of a round (presence-in-bucket, val bit,
// decided flag, coin sign) into uint64_t bit planes so that every
// histogram / coin-sum query collapses to popcount-over-words: 64 senders
// per instruction, streaming through (n/8)-byte planes instead of
// 16-byte Messages. The scalar byte-plane code in round_buffer.cpp stays
// as the reference oracle (scenario key `simd=off`); the equivalence
// tests pin the two bit-identical — every count here is an exact integer,
// so "vectorized" never means "approximate".
//
// Two pieces live here:
//
//  * IntraDispatcher — the engine-side seam for intra-trial parallelism.
//    An implementation (sim::ShardPool) runs fn(shard, lo, hi) over
//    word-aligned node ranges covering [0, n). Ranges depend only on
//    (n, shards()), NEVER on how many OS threads execute them, so results
//    are invariant to the worker count — the same bit-exactness discipline
//    the cross-trial executor enforces. Word alignment makes concurrent
//    packed-plane writes race-free: two shards never touch the same word.
//
//  * kern::* — the packing pass (shardable: each shard packs its own word
//    span and discovers its own (kind, phase) buckets; RoundTally merges
//    shard-local buckets in shard order, which preserves the serial
//    ascending-first-occurrence bucket order) and the popcount reduction
//    kernels RoundTally and ReceiveView call.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "support/types.hpp"

namespace adba::net {

class RoundBuffer;

/// Runs a beat callback over word-aligned node ranges. The engine uses one
/// dispatcher per trial for the send beat, the tally pack and the receive
/// beat (EngineConfig::intra); a null dispatcher means serial beats.
///
/// Contract: run_shards(n, fn) invokes fn(s, lo, hi) exactly once for each
/// shard s in [0, shards()) with the ranges of kern::shard_node_range, and
/// returns only after every invocation completed (barrier per beat). The
/// callback must confine its writes to [lo, hi) state (node ranges are
/// 64-aligned, so per-word packed writes are disjoint too).
class IntraDispatcher {
public:
    virtual ~IntraDispatcher() = default;

    /// Logical shard count per dispatch. Results must not depend on it
    /// (tests pin shard-count invariance); only wall-clock should.
    virtual unsigned shards() const = 0;
    virtual void run_shards(
        NodeId n, const std::function<void(unsigned, NodeId, NodeId)>& fn) = 0;
};

namespace kern {

inline constexpr NodeId kWordBits = 64;

/// Number of uint64_t words covering n one-bit-per-sender lanes.
inline std::size_t word_count(NodeId n) {
    return (static_cast<std::size_t>(n) + kWordBits - 1) / kWordBits;
}

/// Node range [lo, hi) of shard s of `shards` over n nodes. Ranges tile
/// [0, n), are 64-aligned at every interior boundary, and depend only on
/// (n, s, shards) — the determinism contract of IntraDispatcher.
inline std::pair<NodeId, NodeId> shard_node_range(NodeId n, unsigned s,
                                                  unsigned shards) {
    const std::size_t words = word_count(n);
    const std::size_t w_lo = words * s / shards;
    const std::size_t w_hi = words * (s + 1) / shards;
    const auto clamp = [n](std::size_t w) {
        const std::size_t v = w * kWordBits;
        return v < n ? static_cast<NodeId>(v) : n;
    };
    return {clamp(w_lo), clamp(w_hi)};
}

/// Runs fn(shard, lo, hi) through `intra` when present, else serially as
/// one full-range shard — the single-call form every sharded beat uses.
template <typename Fn>
void run_sharded(IntraDispatcher* intra, NodeId n, Fn&& fn) {
    if (intra != nullptr) {
        intra->run_shards(n, fn);
    } else {
        fn(0u, NodeId{0}, n);
    }
}

/// Round-wide packed attribute planes over senders (bit v of word v/64).
/// The attribute planes are UNMASKED: pack_shard fills them branchlessly
/// for every sender slot, including absent/Byzantine ones, so they carry
/// garbage bits from stale cells. Only a bucket's match plane encodes
/// presence — every consumer must AND an attribute plane with a match
/// plane before popcounting; never popcount an attribute plane alone.
/// Storage is recycled across rounds.
struct PackedPlanes {
    std::vector<std::uint64_t> val;       ///< broadcast present and (val & 1)
    std::vector<std::uint64_t> flag;      ///< present and flag != 0
    std::vector<std::uint64_t> coin_pos;  ///< present and coin > 0
    std::vector<std::uint64_t> coin_neg;  ///< present and coin < 0
    /// Honesty membership: bit set iff the sender is Byzantine. Unlike the
    /// attribute planes above this one is EXACT (state-derived, not payload-
    /// derived) — the sparse probe kernels read it alone, with no match
    /// gating, to split sampled edges into honest vs Byzantine at one bit
    /// per sender (8x denser than the uint8_t state plane).
    std::vector<std::uint64_t> byz;

    void ensure(std::size_t words) {
        if (val.size() < words) {
            val.resize(words);
            flag.resize(words);
            coin_pos.resize(words);
            coin_neg.resize(words);
            byz.resize(words);
        }
    }
};

/// One shard's locally-discovered (kind, phase) bucket: match bits over the
/// shard's own word span only (offset by PackShard::word_lo).
struct PackShardBucket {
    MsgKind kind{};
    Phase phase = 0;
    std::vector<std::uint64_t> match;
};

/// Recycled per-shard pack scratch; filled by pack_shard, merged serially
/// by RoundTally::rebuild in shard-index order.
struct PackShard {
    std::size_t word_lo = 0;
    std::size_t word_hi = 0;
    std::vector<PackShardBucket> buckets;
    std::size_t buckets_in_use = 0;
};

/// Packs senders [lo, hi) of `buf` into the global attribute planes (this
/// shard's word span only — disjoint from every other shard's writes) and
/// the shard-local bucket match planes. [lo, hi) must come from
/// shard_node_range.
void pack_shard(const RoundBuffer& buf, NodeId lo, NodeId hi,
                PackedPlanes& planes, PackShard& shard);

// ---- popcount reduction kernels -----------------------------------------

inline Count popcount_words(const std::uint64_t* a, std::size_t words) {
    Count c = 0;
    for (std::size_t w = 0; w < words; ++w) c += static_cast<Count>(std::popcount(a[w]));
    return c;
}

inline Count popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
    Count c = 0;
    for (std::size_t w = 0; w < words; ++w)
        c += static_cast<Count>(std::popcount(a[w] & b[w]));
    return c;
}

inline Count popcount_and3(const std::uint64_t* a, const std::uint64_t* b,
                           const std::uint64_t* c3, std::size_t words) {
    Count c = 0;
    for (std::size_t w = 0; w < words; ++w)
        c += static_cast<Count>(std::popcount(a[w] & b[w] & c3[w]));
    return c;
}

/// Sanitized ±1 coin sum over bucket-matching senders in [first, last):
/// masked popcounts over the (coin_pos, coin_neg) planes — the packed
/// equivalent of TallyBucket::coin_prefix[last] - coin_prefix[first].
inline std::int64_t coin_sum_range(const std::uint64_t* pos,
                                   const std::uint64_t* neg,
                                   const std::uint64_t* match, NodeId first,
                                   NodeId last) {
    if (first >= last) return 0;
    const std::size_t w0 = first / kWordBits;
    const std::size_t w1 = (static_cast<std::size_t>(last) - 1) / kWordBits;
    std::int64_t sum = 0;
    for (std::size_t w = w0; w <= w1; ++w) {
        std::uint64_t m = match[w];
        if (w == w0) m &= ~std::uint64_t{0} << (first % kWordBits);
        if (w == w1) {
            const unsigned r = last - static_cast<NodeId>(w * kWordBits);
            if (r < kWordBits) m &= (std::uint64_t{1} << r) - 1;
        }
        sum += std::popcount(pos[w] & m);
        sum -= std::popcount(neg[w] & m);
    }
    return sum;
}

/// Invokes fn(sender) for every set bit in `words`, ascending — the
/// word-sliced iteration behind the packed mv word histograms (ctz per
/// live sender instead of a byte-plane branch per sender).
template <typename Fn>
void for_each_set_bit(const std::uint64_t* words, std::size_t word_count, Fn&& fn) {
    for (std::size_t w = 0; w < word_count; ++w) {
        std::uint64_t bits = words[w];
        while (bits != 0) {
            const unsigned i = static_cast<unsigned>(std::countr_zero(bits));
            fn(static_cast<NodeId>(w * kWordBits + i));
            bits &= bits - 1;
        }
    }
}

/// Bit-sliced 64-lane column accumulator — the carry-save adder tree of
/// the fused trial plane (net/fused_plane.hpp). The popcount kernels above
/// count bits ACROSS a word (64 senders of ONE trial); the fused plane
/// needs the transpose: 64 independent per-lane counts where lane j of
/// every added word belongs to trial j. LaneAdder keeps the running counts
/// bit-sliced — planes_[k] holds bit k of all 64 lane counts — so add(x)
/// is a ripple-carry over at most log2(count) words (amortized ~2 word ops
/// per add: the carry chain terminates as soon as a plane has no carry),
/// never 64 scalar increments.
class LaneAdder {
public:
    /// log2 ceiling of the largest supported addend count (2^32 adds).
    static constexpr unsigned kMaxPlanes = 32;

    /// Adds 1 to lane j's count for every set bit j of x.
    void add(std::uint64_t x) {
        for (unsigned k = 0; k < used_; ++k) {
            const std::uint64_t carry = planes_[k] & x;
            planes_[k] ^= x;
            x = carry;
            if (x == 0) return;
        }
        planes_[used_++] = x;
    }

    /// Lane j's accumulated count.
    Count lane(unsigned j) const {
        Count c = 0;
        for (unsigned k = 0; k < used_; ++k)
            c |= static_cast<Count>((planes_[k] >> j) & 1) << k;
        return c;
    }

    /// Writes all 64 lane counts to out[0..63].
    void counts(Count* out) const {
        for (unsigned j = 0; j < 64; ++j) out[j] = 0;
        for (unsigned k = 0; k < used_; ++k) {
            std::uint64_t bits = planes_[k];
            while (bits != 0) {
                const unsigned j = static_cast<unsigned>(std::countr_zero(bits));
                out[j] |= Count{1} << k;
                bits &= bits - 1;
            }
        }
    }

    /// O(1): forget the counts without touching the plane array.
    void reset() { used_ = 0; }

private:
    std::uint64_t planes_[kMaxPlanes] = {};
    unsigned used_ = 0;
};

}  // namespace kern
}  // namespace adba::net
