// Optional round-by-round execution record.
//
// Tests use transcripts to check the paper's lemma-level invariants (e.g.
// Lemma 3: within any phase, no two honest nodes pass the n-t threshold with
// different values), and adversaries may consult them as the full-information
// model permits. Recording is opt-in: it costs O(n) per round.
#pragma once

#include <optional>
#include <vector>

#include "net/message.hpp"
#include "support/types.hpp"

namespace adba::net {

/// What one node did in one round, as visible on the wire.
struct SendRecord {
    /// The broadcast an honest node emitted (nullopt = silent/halted).
    std::optional<Message> broadcast;
    /// True if the node was honest when sending this round.
    bool honest = false;
};

/// One round of history.
struct RoundRecord {
    Round round = 0;
    std::vector<SendRecord> sends;        ///< indexed by NodeId
    std::vector<NodeId> new_corruptions;  ///< nodes corrupted during this round
};

/// Full execution history of a run.
class Transcript {
public:
    void begin_round(Round r, NodeId n);
    void record_send(NodeId v, const std::optional<Message>& m, bool honest);
    void record_corruption(NodeId v);

    const std::vector<RoundRecord>& rounds() const { return rounds_; }
    const RoundRecord& round(Round r) const;
    bool empty() const { return rounds_.empty(); }

private:
    std::vector<RoundRecord> rounds_;
};

}  // namespace adba::net
