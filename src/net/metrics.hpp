// Communication accounting for the simulator.
//
// The paper reports message complexity O(min(n t^2 log n, n^2 t / log n))
// (§1.2, §4); experiment E6 regenerates that comparison from these counters.
// Only honest traffic is charged to the protocol (Byzantine nodes may send
// arbitrarily much; that is the adversary's budget, not the algorithm's).
#pragma once

#include <cstdint>

namespace adba::net {

struct Metrics {
    /// Point-to-point messages sent by honest nodes (a broadcast to n-1
    /// neighbors counts n-1; self-delivery is local and free).
    std::uint64_t honest_messages = 0;
    /// Total bits of honest traffic under CONGEST encoding (wire_bits).
    std::uint64_t honest_bits = 0;
    /// Messages delivered on behalf of Byzantine senders.
    std::uint64_t byzantine_messages = 0;
    /// Rounds actually executed.
    std::uint64_t rounds = 0;
    /// Nodes corrupted over the run.
    std::uint64_t corruptions = 0;
};

}  // namespace adba::net
