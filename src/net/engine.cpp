#include "net/engine.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace adba::net {

// ---------------------------------------------------------------- RunResult

bool RunResult::agreement() const {
    std::optional<Bit> seen;
    for (NodeId v = 0; v < outputs.size(); ++v) {
        if (!honest[v]) continue;
        if (!seen) {
            seen = outputs[v];
        } else if (*seen != outputs[v]) {
            return false;
        }
    }
    return true;
}

std::optional<Bit> RunResult::agreed_value() const {
    if (!agreement()) return std::nullopt;
    for (NodeId v = 0; v < outputs.size(); ++v)
        if (honest[v]) return outputs[v];
    return std::nullopt;  // no honest node survived (cannot happen for t < n/3)
}

Count RunResult::honest_count() const {
    return static_cast<Count>(std::count(honest.begin(), honest.end(), true));
}

// ------------------------------------------------------------- RoundControl

Round RoundControl::round() const { return e_.round_; }
NodeId RoundControl::n() const { return e_.cfg_.n; }
Count RoundControl::budget_left() const { return e_.cfg_.budget - e_.budget_used_; }
bool RoundControl::is_honest(NodeId v) const {
    ADBA_EXPECTS(v < e_.cfg_.n);
    return e_.is_honest(v);
}
bool RoundControl::is_halted(NodeId v) const {
    ADBA_EXPECTS(v < e_.cfg_.n);
    return e_.is_halted(v);
}
const Message* RoundControl::intended_broadcast(NodeId v) const {
    ADBA_EXPECTS(v < e_.cfg_.n);
    ADBA_EXPECTS_MSG(e_.is_honest(v), "only honest nodes have intended broadcasts");
    return e_.buf_.broadcast(v);
}
const HonestNode& RoundControl::node_state(NodeId v) const {
    ADBA_EXPECTS(v < e_.cfg_.n);
    ADBA_EXPECTS_MSG(e_.is_honest(v), "introspection is defined for honest nodes");
    return *e_.nodes_[v];
}
std::optional<Message> RoundControl::corrupt(NodeId v) { return e_.do_corrupt(v); }
void RoundControl::deliver_as(NodeId byz_from, NodeId to, const Message& m) {
    e_.do_deliver(byz_from, to, m);
}
void RoundControl::broadcast_as(NodeId byz_from, const Message& m) {
    split_as(byz_from, m, std::nullopt, e_.cfg_.n);
}
void RoundControl::split_as(NodeId byz_from, const std::optional<Message>& low,
                            const std::optional<Message>& high, NodeId boundary) {
    ADBA_EXPECTS(byz_from < e_.cfg_.n && boundary <= e_.cfg_.n);
    ADBA_EXPECTS_MSG(!e_.buf_.is_honest(byz_from),
                     "split_as requires a corrupted sender");
    e_.metrics_.byzantine_messages += e_.buf_.apply_pattern(
        byz_from, low ? &*low : nullptr, high ? &*high : nullptr, boundary);
}

// ------------------------------------------------------------------- Engine

Engine::Engine(EngineConfig cfg, std::vector<std::unique_ptr<HonestNode>> nodes,
               Adversary& adversary) {
    reset(cfg, std::move(nodes), adversary);
}

void Engine::reset(EngineConfig cfg, std::vector<std::unique_ptr<HonestNode>> nodes,
                   Adversary& adversary) {
    cfg_ = cfg;
    nodes_ = std::move(nodes);
    adversary_ = &adversary;
    ADBA_EXPECTS(cfg_.n > 0);
    ADBA_EXPECTS(nodes_.size() == cfg_.n);
    ADBA_EXPECTS(cfg_.max_rounds > 0);
    for (const auto& p : nodes_) ADBA_EXPECTS(p != nullptr);
    round_ = 0;
    budget_used_ = 0;
    buf_.reset(cfg_.n);
    honest_mask_.assign(cfg_.n, true);
    metrics_ = Metrics{};
    transcript_.reset();
    if (cfg_.record_transcript) transcript_.emplace();
    observer_ = nullptr;  // a run-A observer must not fire on run B's state
    ran_ = false;
}

std::vector<std::unique_ptr<HonestNode>> Engine::take_nodes() {
    return std::move(nodes_);
}

bool Engine::is_halted(NodeId v) const {
    return buf_.is_honest(v) && nodes_[v]->halted();
}

std::optional<Message> Engine::do_corrupt(NodeId v) {
    ADBA_EXPECTS(v < cfg_.n);
    ADBA_EXPECTS_MSG(buf_.is_honest(v), "cannot corrupt an already-Byzantine node");
    ADBA_EXPECTS_MSG(!nodes_[v]->halted(), "cannot corrupt a node that already terminated");
    ADBA_EXPECTS_MSG(budget_used_ < cfg_.budget, "corruption budget exhausted");
    ++budget_used_;
    ++metrics_.corruptions;
    honest_mask_[v] = false;
    if (transcript_) transcript_->record_corruption(v);
    return buf_.corrupt(v);
}

void Engine::do_deliver(NodeId byz_from, NodeId to, const Message& m) {
    ADBA_EXPECTS(byz_from < cfg_.n && to < cfg_.n);
    ADBA_EXPECTS_MSG(!buf_.is_honest(byz_from), "deliver_as requires a corrupted sender");
    if (buf_.deliver(byz_from, to, m)) ++metrics_.byzantine_messages;
}

void Engine::account_sends() {
    // Accounting + transcript reflect post-corruption reality: a node
    // corrupted this round never got its broadcast onto the wire. Honest
    // receivers that already terminated have left the protocol, so a
    // broadcast is charged only for the receivers that still take delivery
    // (Byzantine receivers stay on the wire — the sender cannot know them).
    NodeId halted_receivers = 0;
    for (NodeId v = 0; v < cfg_.n; ++v)
        if (buf_.is_honest(v) && nodes_[v]->halted()) ++halted_receivers;
    for (NodeId v = 0; v < cfg_.n; ++v) {
        if (buf_.is_honest(v)) {
            const Message* m = buf_.broadcast(v);
            if (transcript_)
                transcript_->record_send(
                    v, m ? std::optional<Message>(*m) : std::nullopt, true);
            if (m) {
                // A finish-flushing sender that halted during this round's
                // send is itself a halted receiver; its own exclusion is
                // already the "- 1", so put it back.
                const std::uint64_t excluded =
                    static_cast<std::uint64_t>(halted_receivers) -
                    (nodes_[v]->halted() ? 1 : 0);
                const std::uint64_t fanout =
                    static_cast<std::uint64_t>(cfg_.n) - 1 - excluded;
                metrics_.honest_messages += fanout;
                metrics_.honest_bits += fanout * wire_bits(*m, cfg_.n);
            }
        } else if (transcript_) {
            transcript_->record_send(v, std::nullopt, false);
        }
    }
}

void Engine::run_receives() {
    if (cfg_.reference_delivery) {
        const RoundBufferSource src(buf_);
        for (NodeId v = 0; v < cfg_.n; ++v) {
            if (!buf_.is_honest(v) || nodes_[v]->halted()) continue;
            const ReceiveView view(src, v);
            nodes_[v]->round_receive(round_, view);
        }
        return;
    }
    tally_.rebuild(buf_);
    for (NodeId v = 0; v < cfg_.n; ++v) {
        if (!buf_.is_honest(v) || nodes_[v]->halted()) continue;
        const ReceiveView view(buf_, tally_, v);
        nodes_[v]->round_receive(round_, view);
    }
}

RunResult Engine::run() {
    ADBA_EXPECTS_MSG(!ran_, "Engine::run is single-shot (reset() rearms)");
    ran_ = true;

    adversary_->on_start(cfg_.n, cfg_.budget);

    bool all_halted = false;
    for (round_ = 0; round_ < cfg_.max_rounds; ++round_) {
        if (transcript_) transcript_->begin_round(round_, cfg_.n);
        buf_.begin_round();

        // Beat 1: honest sends (randomness for this round is drawn here).
        for (NodeId v = 0; v < cfg_.n; ++v) {
            if (buf_.is_honest(v) && !nodes_[v]->halted()) {
                if (const auto m = nodes_[v]->round_send(round_))
                    buf_.set_broadcast(v, *m);
            }
        }

        // Beat 2: the rushing adversary observes and acts.
        {
            RoundControl ctl(*this);
            adversary_->act(ctl);
        }

        account_sends();

        // Beat 3: deliveries.
        run_receives();

        metrics_.rounds = round_ + 1;
        if (observer_) observer_(round_, nodes_, honest_mask_);

        all_halted = true;
        for (NodeId v = 0; v < cfg_.n; ++v) {
            if (buf_.is_honest(v) && !nodes_[v]->halted()) {
                all_halted = false;
                break;
            }
        }
        if (all_halted) {
            ++round_;  // count this round as executed
            break;
        }
    }

    RunResult res;
    res.outputs.resize(cfg_.n, 0);
    res.honest = honest_mask_;
    res.halted.assign(cfg_.n, false);
    for (NodeId v = 0; v < cfg_.n; ++v) {
        if (buf_.is_honest(v)) {
            res.outputs[v] = nodes_[v]->output();
            res.halted[v] = nodes_[v]->halted();
        }
    }
    res.rounds = std::min(round_, cfg_.max_rounds);
    res.all_halted = all_halted;
    res.metrics = metrics_;
    res.transcript = std::move(transcript_);

    // Pooled arenas destroy the per-trial adversary right after run();
    // drop the pointer so the idle engine never holds a dangling reference.
    adversary_ = nullptr;

    ADBA_ENSURES_MSG(budget_used_ <= cfg_.budget, "budget accounting overflow");
    return res;
}

}  // namespace adba::net
