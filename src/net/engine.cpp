#include "net/engine.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace adba::net {

// ---------------------------------------------------------------- RunResult

bool RunResult::agreement() const {
    std::optional<Bit> seen;
    for (NodeId v = 0; v < outputs.size(); ++v) {
        if (!honest[v]) continue;
        if (!seen) {
            seen = outputs[v];
        } else if (*seen != outputs[v]) {
            return false;
        }
    }
    return true;
}

std::optional<Bit> RunResult::agreed_value() const {
    if (!agreement()) return std::nullopt;
    for (NodeId v = 0; v < outputs.size(); ++v)
        if (honest[v]) return outputs[v];
    return std::nullopt;  // no honest node survived (cannot happen for t < n/3)
}

Count RunResult::honest_count() const {
    return static_cast<Count>(std::count(honest.begin(), honest.end(), true));
}

// ------------------------------------------------------------- RoundControl

Round RoundControl::round() const { return e_.round_; }
NodeId RoundControl::n() const { return e_.cfg_.n; }
Count RoundControl::budget_left() const { return e_.cfg_.budget - e_.budget_used_; }
bool RoundControl::is_honest(NodeId v) const {
    ADBA_EXPECTS(v < e_.cfg_.n);
    return e_.is_honest(v);
}
bool RoundControl::is_halted(NodeId v) const {
    ADBA_EXPECTS(v < e_.cfg_.n);
    return e_.is_halted(v);
}
const std::optional<Message>& RoundControl::intended_broadcast(NodeId v) const {
    ADBA_EXPECTS(v < e_.cfg_.n);
    ADBA_EXPECTS_MSG(e_.is_honest(v), "only honest nodes have intended broadcasts");
    return e_.out_[v];
}
const HonestNode& RoundControl::node_state(NodeId v) const {
    ADBA_EXPECTS(v < e_.cfg_.n);
    ADBA_EXPECTS_MSG(e_.is_honest(v), "introspection is defined for honest nodes");
    return *e_.nodes_[v];
}
std::optional<Message> RoundControl::corrupt(NodeId v) { return e_.do_corrupt(v); }
void RoundControl::deliver_as(NodeId byz_from, NodeId to, const Message& m) {
    e_.do_deliver(byz_from, to, m);
}
void RoundControl::broadcast_as(NodeId byz_from, const Message& m) {
    for (NodeId to = 0; to < e_.cfg_.n; ++to) e_.do_deliver(byz_from, to, m);
}

// ------------------------------------------------------------------- Engine

Engine::Engine(EngineConfig cfg, std::vector<std::unique_ptr<HonestNode>> nodes,
               Adversary& adversary)
    : cfg_(cfg), nodes_(std::move(nodes)), adversary_(adversary) {
    ADBA_EXPECTS(cfg_.n > 0);
    ADBA_EXPECTS(nodes_.size() == cfg_.n);
    ADBA_EXPECTS(cfg_.max_rounds > 0);
    for (const auto& p : nodes_) ADBA_EXPECTS(p != nullptr);
    honest_.assign(cfg_.n, true);
    out_.resize(cfg_.n);
    byz_row_index_.assign(cfg_.n, -1);
    if (cfg_.record_transcript) transcript_.emplace();
}

bool Engine::is_halted(NodeId v) const { return honest_[v] && nodes_[v]->halted(); }

std::optional<Message> Engine::do_corrupt(NodeId v) {
    ADBA_EXPECTS(v < cfg_.n);
    ADBA_EXPECTS_MSG(honest_[v], "cannot corrupt an already-Byzantine node");
    ADBA_EXPECTS_MSG(!nodes_[v]->halted(), "cannot corrupt a node that already terminated");
    ADBA_EXPECTS_MSG(budget_used_ < cfg_.budget, "corruption budget exhausted");
    ++budget_used_;
    ++metrics_.corruptions;
    honest_[v] = false;
    std::optional<Message> discarded = std::move(out_[v]);
    out_[v].reset();
    if (transcript_) transcript_->record_corruption(v);
    return discarded;
}

void Engine::do_deliver(NodeId byz_from, NodeId to, const Message& m) {
    ADBA_EXPECTS(byz_from < cfg_.n && to < cfg_.n);
    ADBA_EXPECTS_MSG(!honest_[byz_from], "deliver_as requires a corrupted sender");
    auto& row = byz_row(byz_from);
    if (!row[to]) ++metrics_.byzantine_messages;
    row[to] = m;
}

std::vector<std::optional<Message>>& Engine::byz_row(NodeId v) {
    if (byz_row_index_[v] < 0) {
        if (byz_rows_in_use_ == byz_rows_.size()) byz_rows_.emplace_back(cfg_.n);
        auto& row = byz_rows_[byz_rows_in_use_];
        row.assign(cfg_.n, std::nullopt);
        byz_row_index_[v] = static_cast<std::int32_t>(byz_rows_in_use_);
        ++byz_rows_in_use_;
    }
    return byz_rows_[static_cast<std::size_t>(byz_row_index_[v])];
}

namespace {

/// Receiver-specific delivery lookup backed by the engine's round buffers.
class EngineView final : public ReceiveView {
public:
    EngineView(NodeId n, NodeId recv, const std::vector<bool>& honest,
               const std::vector<std::optional<Message>>& out,
               const std::vector<std::int32_t>& byz_row_index,
               const std::vector<std::vector<std::optional<Message>>>& byz_rows)
        : n_(n), recv_(recv), honest_(honest), out_(out), byz_row_index_(byz_row_index),
          byz_rows_(byz_rows) {}

    const Message* from(NodeId sender) const override {
        ADBA_EXPECTS(sender < n_);
        if (honest_[sender]) {
            const auto& m = out_[sender];
            return m ? &*m : nullptr;
        }
        const std::int32_t row = byz_row_index_[sender];
        if (row < 0) return nullptr;
        const auto& m = byz_rows_[static_cast<std::size_t>(row)][recv_];
        return m ? &*m : nullptr;
    }

    NodeId n() const override { return n_; }
    NodeId receiver() const override { return recv_; }

private:
    NodeId n_;
    NodeId recv_;
    const std::vector<bool>& honest_;
    const std::vector<std::optional<Message>>& out_;
    const std::vector<std::int32_t>& byz_row_index_;
    const std::vector<std::vector<std::optional<Message>>>& byz_rows_;
};

}  // namespace

RunResult Engine::run() {
    ADBA_EXPECTS_MSG(!ran_, "Engine::run is single-shot");
    ran_ = true;

    adversary_.on_start(cfg_.n, cfg_.budget);

    bool all_halted = false;
    for (round_ = 0; round_ < cfg_.max_rounds; ++round_) {
        if (transcript_) transcript_->begin_round(round_, cfg_.n);

        // Beat 1: honest sends (randomness for this round is drawn here).
        for (NodeId v = 0; v < cfg_.n; ++v) {
            if (honest_[v] && !nodes_[v]->halted()) {
                out_[v] = nodes_[v]->round_send(round_);
            } else {
                out_[v].reset();
            }
        }

        // Beat 2: the rushing adversary observes and acts.
        std::fill(byz_row_index_.begin(), byz_row_index_.end(), -1);
        byz_rows_in_use_ = 0;
        {
            RoundControl ctl(*this);
            adversary_.act(ctl);
        }

        // Accounting + transcript reflect post-corruption reality: a node
        // corrupted this round never got its broadcast onto the wire.
        for (NodeId v = 0; v < cfg_.n; ++v) {
            if (honest_[v]) {
                if (transcript_) transcript_->record_send(v, out_[v], true);
                if (out_[v]) {
                    const auto fanout = static_cast<std::uint64_t>(cfg_.n) - 1;
                    metrics_.honest_messages += fanout;
                    metrics_.honest_bits += fanout * wire_bits(*out_[v], cfg_.n);
                }
            } else if (transcript_) {
                transcript_->record_send(v, std::nullopt, false);
            }
        }

        // Beat 3: deliveries.
        for (NodeId v = 0; v < cfg_.n; ++v) {
            if (!honest_[v] || nodes_[v]->halted()) continue;
            EngineView view(cfg_.n, v, honest_, out_, byz_row_index_, byz_rows_);
            nodes_[v]->round_receive(round_, view);
        }

        metrics_.rounds = round_ + 1;
        if (observer_) observer_(round_, nodes_, honest_);

        all_halted = true;
        for (NodeId v = 0; v < cfg_.n; ++v) {
            if (honest_[v] && !nodes_[v]->halted()) {
                all_halted = false;
                break;
            }
        }
        if (all_halted) {
            ++round_;  // count this round as executed
            break;
        }
    }

    RunResult res;
    res.outputs.resize(cfg_.n, 0);
    res.honest = honest_;
    res.halted.assign(cfg_.n, false);
    for (NodeId v = 0; v < cfg_.n; ++v) {
        if (honest_[v]) {
            res.outputs[v] = nodes_[v]->output();
            res.halted[v] = nodes_[v]->halted();
        }
    }
    res.rounds = std::min(round_, cfg_.max_rounds);
    res.all_halted = all_halted;
    res.metrics = metrics_;
    res.transcript = std::move(transcript_);

    ADBA_ENSURES_MSG(budget_used_ <= cfg_.budget, "budget accounting overflow");
    return res;
}

}  // namespace adba::net
