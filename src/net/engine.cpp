#include "net/engine.hpp"

#include <algorithm>
#include <chrono>

#include "support/contracts.hpp"

namespace adba::net {

// ---------------------------------------------------------------- RunResult

bool RunResult::agreement() const {
    std::optional<Bit> seen;
    for (NodeId v = 0; v < outputs.size(); ++v) {
        if (!honest[v]) continue;
        if (!seen) {
            seen = outputs[v];
        } else if (*seen != outputs[v]) {
            return false;
        }
    }
    return true;
}

std::optional<Bit> RunResult::agreed_value() const {
    if (!agreement()) return std::nullopt;
    for (NodeId v = 0; v < outputs.size(); ++v)
        if (honest[v]) return outputs[v];
    return std::nullopt;  // no honest node survived (cannot happen for t < n/3)
}

Count RunResult::honest_count() const {
    return static_cast<Count>(std::count(honest.begin(), honest.end(), true));
}

// ------------------------------------------------------------- Engine::Ctl

/// The engine-backed RoundControl: one per-trial execution over the flat /
/// sparse delivery planes. (The fused plane provides its own lane-masked
/// implementation in net/fused_plane.cpp.)
class Engine::Ctl final : public RoundControl {
public:
    explicit Ctl(Engine& e) : e_(e) {}

    Round round() const override { return e_.round_; }
    NodeId n() const override { return e_.cfg_.n; }
    Count budget_left() const override { return e_.cfg_.budget - e_.budget_used_; }
    bool is_honest(NodeId v) const override {
        ADBA_EXPECTS(v < e_.cfg_.n);
        return e_.is_honest(v);
    }
    bool is_halted(NodeId v) const override {
        ADBA_EXPECTS(v < e_.cfg_.n);
        return e_.is_halted(v);
    }
    const Message* intended_broadcast(NodeId v) const override {
        ADBA_EXPECTS(v < e_.cfg_.n);
        ADBA_EXPECTS_MSG(e_.is_honest(v), "only honest nodes have intended broadcasts");
        return e_.buf_.broadcast(v);
    }
    Bit current_value(NodeId v) const override {
        ADBA_EXPECTS(v < e_.cfg_.n);
        ADBA_EXPECTS_MSG(e_.is_honest(v), "introspection is defined for honest nodes");
        return e_.batch_->value(v);
    }
    bool current_decided(NodeId v) const override {
        ADBA_EXPECTS(v < e_.cfg_.n);
        ADBA_EXPECTS_MSG(e_.is_honest(v), "introspection is defined for honest nodes");
        return e_.batch_->decided(v);
    }
    std::optional<Message> corrupt(NodeId v) override { return e_.do_corrupt(v); }
    void deliver_as(NodeId byz_from, NodeId to, const Message& m) override {
        e_.do_deliver(byz_from, to, m);
    }
    void split_as(NodeId byz_from, const std::optional<Message>& low,
                  const std::optional<Message>& high, NodeId boundary) override {
        ADBA_EXPECTS(byz_from < e_.cfg_.n && boundary <= e_.cfg_.n);
        ADBA_EXPECTS_MSG(!e_.buf_.is_honest(byz_from),
                         "split_as requires a corrupted sender");
        e_.metrics_.byzantine_messages += e_.buf_.apply_pattern(
            byz_from, low ? &*low : nullptr, high ? &*high : nullptr, boundary);
    }

private:
    Engine& e_;
};

// ------------------------------------------------------------------- Engine

Engine::Engine(EngineConfig cfg, std::vector<std::unique_ptr<HonestNode>> nodes,
               Adversary& adversary) {
    reset(cfg, std::move(nodes), adversary);
}

Engine::Engine(EngineConfig cfg, std::unique_ptr<BatchProtocol> batch,
               Adversary& adversary) {
    reset(cfg, std::move(batch), adversary);
}

void Engine::reset(EngineConfig cfg, std::vector<std::unique_ptr<HonestNode>> nodes,
                   Adversary& adversary) {
    ADBA_EXPECTS(nodes.size() == cfg.n);
    for (const auto& p : nodes) ADBA_EXPECTS(p != nullptr);
    if (adapter_ != nullptr) {
        adapter_->rearm(std::move(nodes));  // pooled adapter: no allocation
    } else {
        auto adapter = std::make_unique<PerNodeBatch>(std::move(nodes));
        adapter_ = adapter.get();
        batch_ = std::move(adapter);
    }
    common_reset(cfg, adversary);
}

void Engine::reset(EngineConfig cfg, std::unique_ptr<BatchProtocol> batch,
                   Adversary& adversary) {
    ADBA_EXPECTS(batch != nullptr);
    ADBA_EXPECTS(batch->n() == cfg.n);
    batch_ = std::move(batch);
    adapter_ = nullptr;
    common_reset(cfg, adversary);
}

void Engine::common_reset(EngineConfig cfg, Adversary& adversary) {
    cfg_ = cfg;
    adversary_ = &adversary;
    ADBA_EXPECTS(cfg_.n > 0);
    ADBA_EXPECTS(cfg_.max_rounds > 0);
    if (cfg_.plane == PlaneMode::Sparse) {
        ADBA_EXPECTS_MSG(batch_->supports_sparse(),
                         "plane=sparse requires a sparse-capable batch");
        ADBA_EXPECTS_MSG(!cfg_.reference_delivery,
                         "plane=sparse has no reference-delivery form");
        ADBA_EXPECTS_MSG(cfg_.simd_tally,
                         "plane=sparse reads the word-packed tally planes");
        sparse_.reset(cfg_.n, cfg_.sample_degree, cfg_.sparse_seed,
                      cfg_.sparse_stream);
    }
    round_ = 0;
    budget_used_ = 0;
    buf_.reset(cfg_.n);
    honest_mask_.assign(cfg_.n, true);
    metrics_ = Metrics{};
    transcript_.reset();
    if (cfg_.record_transcript) transcript_.emplace();
    observer_ = nullptr;  // a run-A observer must not fire on run B's state
    ran_ = false;
}

std::vector<std::unique_ptr<HonestNode>> Engine::take_nodes() {
    ADBA_EXPECTS_MSG(adapter_ != nullptr,
                     "take_nodes requires the per-node engine form (see take_batch)");
    return adapter_->take_nodes();
}

std::unique_ptr<BatchProtocol> Engine::take_batch() {
    adapter_ = nullptr;
    return std::move(batch_);
}

bool Engine::is_halted(NodeId v) const {
    return buf_.is_honest(v) && batch_->halted_plane()[v] != 0;
}

std::optional<Message> Engine::do_corrupt(NodeId v) {
    ADBA_EXPECTS(v < cfg_.n);
    ADBA_EXPECTS_MSG(buf_.is_honest(v), "cannot corrupt an already-Byzantine node");
    ADBA_EXPECTS_MSG(batch_->halted_plane()[v] == 0,
                     "cannot corrupt a node that already terminated");
    ADBA_EXPECTS_MSG(budget_used_ < cfg_.budget, "corruption budget exhausted");
    ++budget_used_;
    ++metrics_.corruptions;
    honest_mask_[v] = false;
    if (transcript_) transcript_->record_corruption(v);
    return buf_.corrupt(v);
}

void Engine::do_deliver(NodeId byz_from, NodeId to, const Message& m) {
    ADBA_EXPECTS(byz_from < cfg_.n && to < cfg_.n);
    ADBA_EXPECTS_MSG(!buf_.is_honest(byz_from), "deliver_as requires a corrupted sender");
    if (buf_.deliver(byz_from, to, m)) ++metrics_.byzantine_messages;
}

void Engine::account_sends() {
    // Accounting + transcript reflect post-corruption reality: a node
    // corrupted this round never got its broadcast onto the wire. Honest
    // receivers that already terminated have left the protocol, so a
    // broadcast is charged only for the receivers that still take delivery
    // (Byzantine receivers stay on the wire — the sender cannot know them).
    const std::uint8_t* halted = batch_->halted_plane();
    NodeId halted_receivers = 0;
    for (NodeId v = 0; v < cfg_.n; ++v)
        if (buf_.is_honest(v) && halted[v]) ++halted_receivers;
    // Sparse sub-dense delivery is receiver-driven: each live receiver pulls
    // `degree` sampled sender edges, so a broadcast is charged for at most
    // that many receivers. Dense sampling keeps the exact flat accounting
    // (min never binds), preserving bit-identical aggregates.
    const bool sampled =
        cfg_.plane == PlaneMode::Sparse && !sparse_.dense();
    for (NodeId v = 0; v < cfg_.n; ++v) {
        if (buf_.is_honest(v)) {
            const Message* m = buf_.broadcast(v);
            if (transcript_)
                transcript_->record_send(
                    v, m ? std::optional<Message>(*m) : std::nullopt, true);
            if (m) {
                // A finish-flushing sender that halted during this round's
                // send is itself a halted receiver; its own exclusion is
                // already the "- 1", so put it back.
                const std::uint64_t excluded =
                    static_cast<std::uint64_t>(halted_receivers) -
                    (halted[v] ? 1 : 0);
                std::uint64_t fanout =
                    static_cast<std::uint64_t>(cfg_.n) - 1 - excluded;
                if (sampled) fanout = std::min<std::uint64_t>(fanout, sparse_.degree());
                metrics_.honest_messages += fanout;
                metrics_.honest_bits += fanout * wire_bits(*m, cfg_.n);
            }
        } else if (transcript_) {
            transcript_->record_send(v, std::nullopt, false);
        }
    }
}

IntraDispatcher* Engine::shard_dispatcher() const {
    if (cfg_.intra == nullptr || cfg_.reference_delivery) return nullptr;
    return batch_->shardable() ? cfg_.intra : nullptr;
}

void Engine::run_receives() {
    if (cfg_.reference_delivery) {
        const RoundBufferSource src(buf_);
        batch_->receive_all(round_, buf_, src);
        return;
    }
    // Packed tally builds shard regardless of the protocol (the pack pass
    // is protocol-agnostic); the scalar build stays serial — it is the
    // byte-plane oracle.
    tally_.rebuild(buf_, cfg_.simd_tally, cfg_.simd_tally ? cfg_.intra : nullptr);
    if (cfg_.plane == PlaneMode::Sparse) {
        // Sparse receive beat: same prepare/range split as the flat sharded
        // path — exact islands (committee coin, king probe) hoist or read
        // from the tally, the per-receiver walk probes sampled edges only.
        sparse_.begin_round(round_, buf_, tally_);
        batch_->receive_sparse_prepare(round_, buf_, tally_, sparse_);
        if (IntraDispatcher* d = shard_dispatcher()) {
            d->run_shards(cfg_.n, [&](unsigned, NodeId lo, NodeId hi) {
                batch_->receive_sparse_range(round_, buf_, tally_, sparse_, lo, hi);
            });
        } else {
            batch_->receive_sparse_range(round_, buf_, tally_, sparse_, 0, cfg_.n);
        }
        return;
    }
    if (IntraDispatcher* d = shard_dispatcher()) {
        batch_->receive_prepare(round_, buf_, tally_);
        d->run_shards(cfg_.n, [&](unsigned, NodeId lo, NodeId hi) {
            batch_->receive_range(round_, buf_, tally_, lo, hi);
        });
        return;
    }
    batch_->receive_all(round_, buf_, tally_);
}

RunResult Engine::run() {
    ADBA_EXPECTS_MSG(!ran_, "Engine::run is single-shot (reset() rearms)");
    ran_ = true;

    adversary_->on_start(cfg_.n, cfg_.budget);

    // Watchdog deadline, armed once per run; the clock is only consulted
    // when configured, so unwatched trials pay nothing.
    const auto deadline =
        cfg_.watchdog_ms
            ? std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(cfg_.watchdog_ms)
            : std::chrono::steady_clock::time_point{};

    bool all_halted = false;
    bool timed_out = false;
    for (round_ = 0; round_ < cfg_.max_rounds; ++round_) {
        if (cfg_.beat_probe) cfg_.beat_probe(round_);
        if (transcript_) transcript_->begin_round(round_, cfg_.n);
        buf_.begin_round();

        // Beat 1: honest sends (randomness for this round is drawn here).
        // One dispatch for the whole population, or one per shard when an
        // intra-trial dispatcher is armed (per-node RNG streams are index-
        // seeded, so the draw order inside a shard matches the serial one).
        if (IntraDispatcher* d = shard_dispatcher()) {
            d->run_shards(cfg_.n, [&](unsigned, NodeId lo, NodeId hi) {
                batch_->send_range(round_, buf_, lo, hi);
            });
        } else {
            batch_->send_all(round_, buf_);
        }

        // Beat 2: the rushing adversary observes and acts.
        {
            Ctl ctl(*this);
            adversary_->act(ctl);
        }

        account_sends();

        // Beat 3: deliveries — again one dispatch.
        run_receives();

        metrics_.rounds = round_ + 1;
        if (observer_) {
            const auto* nodes = batch_->nodes();
            ADBA_EXPECTS_MSG(nodes != nullptr,
                             "round observers require a per-node protocol");
            observer_(round_, *nodes, honest_mask_);
        }

        // All-halted check over the contiguous bitplanes: a node is live
        // iff it is honest (buffer state plane) and not halted (batch).
        const std::uint8_t* state = buf_.state_plane();
        const std::uint8_t* halted = batch_->halted_plane();
        all_halted = true;
        for (NodeId v = 0; v < cfg_.n; ++v) {
            if ((state[v] & RoundBuffer::kByzantine) == 0 && halted[v] == 0) {
                all_halted = false;
                break;
            }
        }
        if (all_halted) {
            ++round_;  // count this round as executed
            break;
        }
        if (cfg_.watchdog_ms && std::chrono::steady_clock::now() >= deadline) {
            timed_out = true;
            ++round_;  // this round completed before the guard fired
            break;
        }
    }

    RunResult res;
    res.outputs.resize(cfg_.n, 0);
    res.honest = honest_mask_;
    res.halted.assign(cfg_.n, false);
    const std::uint8_t* halted = batch_->halted_plane();
    for (NodeId v = 0; v < cfg_.n; ++v) {
        if (buf_.is_honest(v)) {
            res.outputs[v] = batch_->output(v);
            res.halted[v] = halted[v] != 0;
        }
    }
    // Honest termination report: the executed round count verbatim (a run
    // that burned its whole cap used to be clamped into looking like a
    // decided one) plus the explicit outcome taxonomy.
    res.rounds = round_;
    res.all_halted = all_halted;
    res.outcome = all_halted  ? TrialOutcome::Decided
                  : timed_out ? TrialOutcome::WatchdogTimeout
                              : TrialOutcome::RoundCapExhausted;
    ADBA_ENSURES_MSG(res.outcome == TrialOutcome::Decided || !res.all_halted,
                     "a non-decided outcome must never read as all-halted");
    res.metrics = metrics_;
    res.transcript = std::move(transcript_);

    // Pooled arenas destroy the per-trial adversary right after run();
    // drop the pointer so the idle engine never holds a dangling reference.
    adversary_ = nullptr;

    ADBA_ENSURES_MSG(budget_used_ <= cfg_.budget, "budget accounting overflow");
    return res;
}

}  // namespace adba::net
