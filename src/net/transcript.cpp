#include "net/transcript.hpp"

#include "support/contracts.hpp"

namespace adba::net {

void Transcript::begin_round(Round r, NodeId n) {
    ADBA_EXPECTS(rounds_.size() == r);
    RoundRecord rec;
    rec.round = r;
    rec.sends.resize(n);
    rounds_.push_back(std::move(rec));
}

void Transcript::record_send(NodeId v, const std::optional<Message>& m, bool honest) {
    ADBA_EXPECTS(!rounds_.empty());
    auto& rec = rounds_.back();
    ADBA_EXPECTS(v < rec.sends.size());
    rec.sends[v] = SendRecord{m, honest};
}

void Transcript::record_corruption(NodeId v) {
    ADBA_EXPECTS(!rounds_.empty());
    rounds_.back().new_corruptions.push_back(v);
}

const RoundRecord& Transcript::round(Round r) const {
    ADBA_EXPECTS(r < rounds_.size());
    return rounds_[r];
}

}  // namespace adba::net
