// The fused trial plane: 64 independent Monte-Carlo trials per machine word.
//
// Every optimization below this layer (flat plane, SoA batches, packed
// tallies, sparse probes) accelerates ONE trial; below n≈256 the per-trial
// fixed costs (engine dispatch, tally rebuild, arena touch) dominate and
// ns/node-round stops improving. Binary protocols carry exactly one bit of
// value state per node, so this layer turns the bit-slicing trick of
// tally_kernels 90°: bit j of every plane word belongs to TRIAL j, and one
// word op steps node v of 64 independent trials at once.
//
//   FusedFrame       — one round's delivery state, bit-sliced: the honest
//                      broadcast planes (sent/val/flag/coin±, one uint64_t
//                      per NODE, bit j = lane j) plus per-lane Byzantine
//                      pattern rows. The lane analogue of RoundBuffer.
//   FusedLaneControl — the lane-masked RoundControl bridge: one unmodified
//                      scalar Adversary instance runs per lane, seeing only
//                      its lane's bits. Contract failures carry the exact
//                      Engine::Ctl messages so fused ≡ scalar extends to
//                      error behaviour.
//   FusedProtocol    — the protocol interface of this plane: word-parallel
//                      send/receive over a FusedFrame (implementations:
//                      core/skeleton_fused, baselines ben_or / phase_king).
//   FusedBlock       — the driver: Engine::run's beat order (sends →
//                      adversary → accounting → receives → halt sweep) for
//                      64 lanes, with GPU-warp-style divergence: lanes that
//                      decide early drop out of the active mask and accrue
//                      nothing; the block retires when the mask is empty or
//                      the shared round cap fires.
//
// Determinism contract: per-lane seeds come from the same index-derived
// SeedTree chain as scalar trials, every (node, lane) RNG stream is private,
// and every count is exact — fused aggregates are bit-identical to 64
// scalar runs of the same trial indices. The scalar path stays the oracle,
// exactly as `reference=` / `batch=` / `simd=` already do.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/engine.hpp"
#include "net/message.hpp"
#include "net/metrics.hpp"
#include "net/tally_kernels.hpp"
#include "rand/seed_tree.hpp"
#include "support/types.hpp"

namespace adba::net {

/// Trials co-executed per block: one per bit of the plane word.
inline constexpr unsigned kFusedLanes = 64;

/// One Byzantine split_as pattern from one lane's adversary: `low` to
/// receivers below `boundary`, `high` to the rest (absent side = silence).
/// The piecewise-constant shape is what makes fused receive cheap: every
/// threshold decision is evaluated once per (lane, boundary segment), not
/// once per receiver.
struct FusedRow {
    NodeId sender = 0;
    NodeId boundary = 0;
    bool has_low = false;
    bool has_high = false;
    Message low;
    Message high;
};

/// One round's bit-sliced delivery state. Attribute planes are UNMASKED
/// (same discipline as kern::PackedPlanes): consumers must AND with `sent`
/// before counting. `byz` persists across rounds; everything else is
/// cleared by begin_round().
class FusedFrame {
public:
    void reset(NodeId n) {
        n_ = n;
        sent.assign(n, 0);
        val.assign(n, 0);
        flag.assign(n, 0);
        coinp.assign(n, 0);
        coinn.assign(n, 0);
        byz.assign(n, 0);
        patterned_.assign(n, 0);
        for (auto& r : rows_) r.clear();
        active = ~std::uint64_t{0};
        kind = MsgKind::None;
        phase = 0;
    }

    void begin_round(MsgKind round_kind, Phase round_phase) {
        kind = round_kind;
        phase = round_phase;
        std::fill(sent.begin(), sent.end(), 0);
        std::fill(val.begin(), val.end(), 0);
        std::fill(flag.begin(), flag.end(), 0);
        std::fill(coinp.begin(), coinp.end(), 0);
        std::fill(coinn.begin(), coinn.end(), 0);
        std::fill(patterned_.begin(), patterned_.end(), 0);
        for (auto& r : rows_) r.clear();
    }

    NodeId n() const { return n_; }

    /// Lane j's Byzantine pattern rows this round (cleared per round).
    const std::vector<FusedRow>& rows(unsigned lane) const { return rows_[lane]; }

    /// Records a pattern row for (lane, sender) and returns a reference for
    /// the caller to fill in place (sender is already set). At most one row
    /// per (lane, sender, round): every supported fused adversary patterns a
    /// sender once per round, so a duplicate is a bridge bug, not a
    /// behaviour to merge — fail loudly instead of silently diverging from
    /// the scalar densify path. Inline: this sits on the per-(lane, sender,
    /// round) hot path of every Byzantine fused round.
    FusedRow& add_row(unsigned lane, NodeId sender) {
        const std::uint64_t bit = std::uint64_t{1} << lane;
        if ((patterned_[sender] & bit) != 0) throw_duplicate_row();
        patterned_[sender] |= bit;
        FusedRow& row = rows_[lane].emplace_back();
        row.sender = sender;
        return row;
    }

    /// Lane-uniform header of this round's honest broadcasts: every live
    /// sender's message shares (kind, phase) in the supported protocols.
    MsgKind kind = MsgKind::None;
    Phase phase = 0;

    /// Lanes still running (bit j set = lane j live). Maintained by
    /// FusedBlock; protocols may skip evaluation for retired lanes (their
    /// per-node activity masks are all-zero anyway, so this is purely a
    /// shortcut, never a semantic).
    std::uint64_t active = ~std::uint64_t{0};

    // One word per NODE, bit j = trial j.
    std::vector<std::uint64_t> sent;   ///< live honest broadcast present
    std::vector<std::uint64_t> val;    ///< broadcast val & 1 (unmasked)
    std::vector<std::uint64_t> flag;   ///< broadcast flag != 0 (unmasked)
    std::vector<std::uint64_t> coinp;  ///< broadcast coin > 0 (unmasked)
    std::vector<std::uint64_t> coinn;  ///< broadcast coin < 0 (unmasked)
    std::vector<std::uint64_t> byz;    ///< corrupted (persistent)

private:
    [[noreturn]] static void throw_duplicate_row();

    NodeId n_ = 0;
    std::vector<std::uint64_t> patterned_;  ///< per-round duplicate-row guard
    std::vector<FusedRow> rows_[kFusedLanes];
};

/// A word-parallel protocol over the fused plane. Implementations mirror
/// their scalar batch twin EXACTLY — same round cadence, same thresholds,
/// same RNG draw sites per (node, lane) stream — so that lane j of every
/// plane replays the scalar trial seeded with lane j's seed bit for bit.
///
/// Plane layout: one uint64_t per node, bit j = lane j. `value_plane` is
/// also the output plane (every fused-capable protocol outputs its current
/// value, the scalar BatchProtocol::output contract for this family).
class FusedProtocol {
public:
    virtual ~FusedProtocol() = default;

    virtual NodeId n() const = 0;

    /// Re-arms all 64 lanes for a fresh block: bit j of input_plane[v] is
    /// lane j's input for node v; lane_seeds[j] is lane j's trial SeedTree
    /// (the same tree the scalar trial at that index would use).
    virtual void rearm(const std::uint64_t* input_plane, const SeedTree* lane_seeds) = 0;

    /// Beat 1: compute this round's broadcast planes into `frame` (which
    /// has been begin_round-cleared) and apply send-beat state flips
    /// (flush-halts). Must set frame.kind / frame.phase.
    virtual void send_round(Round r, FusedFrame& frame) = 0;

    /// Beat 3: consume the round — honest planes + per-lane Byzantine rows.
    virtual void receive_round(Round r, const FusedFrame& frame) = 0;

    virtual const std::uint64_t* value_plane() const = 0;
    virtual const std::uint64_t* decided_plane() const = 0;
    virtual const std::uint64_t* halted_plane() const = 0;
};

/// The lane-masked RoundControl: presents ONE lane's view of the fused
/// planes to an unmodified scalar Adversary. Mutations (corrupt, split_as)
/// touch only the focused lane's bit / row list. EXPECTS messages match
/// Engine::Ctl verbatim — the contract surface is part of the equivalence.
class FusedLaneControl final : public RoundControl {
public:
    /// `frame` and `proto` must outlive the control; budget is per lane.
    void rearm(FusedFrame* frame, FusedProtocol* proto, Count budget);

    void set_round(Round r) { round_ = r; }
    void set_lane(unsigned lane) { lane_ = lane; }

    Count corruptions(unsigned lane) const { return used_[lane]; }
    std::uint64_t byzantine_messages(unsigned lane) const { return byz_msgs_[lane]; }

    // ---- RoundControl ----
    Round round() const override { return round_; }
    NodeId n() const override { return frame_->n(); }
    Count budget_left() const override { return budget_ - used_[lane_]; }
    bool is_honest(NodeId v) const override;
    bool is_halted(NodeId v) const override;
    const Message* intended_broadcast(NodeId v) const override;
    Bit current_value(NodeId v) const override;
    bool current_decided(NodeId v) const override;
    std::optional<Message> corrupt(NodeId v) override;
    void deliver_as(NodeId byz_from, NodeId to, const Message& m) override;
    void split_as(NodeId byz_from, const std::optional<Message>& low,
                  const std::optional<Message>& high, NodeId boundary) override;

private:
    std::uint64_t lane_bit() const { return std::uint64_t{1} << lane_; }
    /// Reconstructs the focused lane's honest broadcast of node v from the
    /// frame planes (exact for every supported protocol: binary kinds carry
    /// no word payload). nullopt = silent (no sent bit).
    std::optional<Message> message_of(NodeId v) const;

    FusedFrame* frame_ = nullptr;
    FusedProtocol* proto_ = nullptr;
    Count budget_ = 0;
    Round round_ = 0;
    unsigned lane_ = 0;
    Count used_[kFusedLanes] = {};
    std::uint64_t byz_msgs_[kFusedLanes] = {};
    mutable Message scratch_;  ///< storage behind intended_broadcast
};

/// Per-lane result of a fused block — the scalar RunResult fields the
/// Monte-Carlo runner consumes, minus the per-node vectors (read those off
/// the planes: FusedBlock::byz_plane + FusedProtocol::value_plane).
struct FusedLaneResult {
    Round rounds = 0;
    bool all_halted = false;
    TrialOutcome outcome = TrialOutcome::Decided;
    Metrics metrics;
};

/// Drives one 64-lane block: Engine::run's beat order, word-parallel.
/// No watchdog (fused scenarios require watchdog_ms == 0) and no
/// transcript — both are validation-rejected upstream.
class FusedBlock {
public:
    /// `proto` must already be rearm()-ed for this block; advs[j] is lane
    /// j's adversary (on_start is called here). Results land in out[0..63].
    void run(FusedProtocol& proto, Adversary* const* advs, Count budget,
             Round max_rounds, FusedLaneResult* out);

    /// Corruption plane of the finished block (bit j of word v = node v
    /// Byzantine in lane j).
    const std::uint64_t* byz_plane() const { return frame_.byz.data(); }

private:
    FusedFrame frame_;
    FusedLaneControl ctl_;
};

// ---- shared word-parallel helpers for FusedProtocol implementations ----

/// The receiver segmentation a lane's pattern rows induce: sorted unique
/// boundaries cut [0, n) into intervals on which every Byzantine delivery
/// (hence every exact count, hence every threshold decision) is constant.
class LaneSegments {
public:
    void rebuild(const std::vector<FusedRow>& rows, NodeId n);
    std::size_t count() const { return cuts_.size() - 1; }
    NodeId lo(std::size_t i) const { return cuts_[i]; }
    NodeId hi(std::size_t i) const { return cuts_[i + 1]; }

    /// The side of `row` a whole segment starting at `seg_lo` sees (segments
    /// never straddle a boundary): low below, high at-or-above.
    static const Message* side(const FusedRow& row, NodeId seg_lo) {
        if (seg_lo < row.boundary) return row.has_low ? &row.low : nullptr;
        return row.has_high ? &row.high : nullptr;
    }

private:
    std::vector<NodeId> cuts_;
};

/// 64-lane interval-write composer: per-(lane, [a,b)) writes accumulate as
/// XOR toggles, one O(n) prefix-XOR sweep materializes all lanes' write
/// masks at once. Disjoint intervals per lane (LaneSegments guarantees
/// this) make XOR exact.
class LaneToggles {
public:
    void reset(NodeId n) { t_.assign(static_cast<std::size_t>(n) + 1, 0); }
    void mark(NodeId a, NodeId b, std::uint64_t lane_mask) {
        t_[a] ^= lane_mask;
        t_[b] ^= lane_mask;
    }
    /// Prefix-XOR sweep: out[v] = mask of lanes whose marked interval
    /// covers v. `out` must hold n words; sweep leaves the toggles intact.
    void sweep(std::uint64_t* out, NodeId n) const {
        std::uint64_t acc = 0;
        for (NodeId v = 0; v < n; ++v) {
            acc ^= t_[v];
            out[v] = acc;
        }
    }

private:
    std::vector<std::uint64_t> t_;
};

}  // namespace adba::net
