// Flat per-round delivery state: the simulator's hot data plane.
//
// Every protocol here is a full-broadcast-per-round protocol on a complete
// network (paper §1.1), so the inner loop of every experiment is
// rounds × n receivers × n senders. This header keeps that loop cache-flat:
//
//  * RoundBuffer — one contiguous `Message[]` for the round's honest
//    broadcasts plus a `uint8_t` presence/honesty plane (never `vector<bool>`
//    on the hot path), and Byzantine delivery rows allocated on demand. The
//    per-(receiver, sender) probe is a byte load plus at most one
//    bounds-checked array load — no virtual dispatch, no optional unwrap.
//    A row is either Dense (n per-receiver cells) or a Pattern (threshold
//    equivocation: one message below a receiver boundary, another above),
//    so the classic split/broadcast attacks cost O(1) per sender per round
//    instead of O(n).
//
//  * RoundTally — the engine-level shared tally service. Honest broadcasts
//    are receiver-independent, so their (kind, phase) histogram is computed
//    ONCE per round in O(n); Byzantine-row deltas are aggregated once per
//    query signature into per-receiver arrays (O(n + rows) for pattern
//    rows, O(n) per dense row), dropping honest-path receives from O(n²)
//    per round to O(n).
//
//  * ReceiveView — the receiver's window onto one round, now a concrete
//    `final` class (non-virtual `from()`, bulk `for_each_delivery`, and the
//    tally queries). Polymorphism survives only behind DeliverySource, a thin
//    virtual adapter used by scripted tests and by the engine's reference
//    delivery path, which the equivalence suite pins the flat plane against.
//
//  The tally has two equivalent build modes (engine toggle
//  EngineConfig::simd_tally, scenario key `simd=`): the scalar byte-plane
//  sweep above (the reference oracle) and a word-packed mode
//  (net/tally_kernels.hpp) where presence/val/flag/coin collapse to
//  uint64_t bit planes, counts become popcounts-over-words, and the pack
//  pass itself shards across an IntraDispatcher's word-aligned node
//  ranges. Both modes produce bit-identical query results.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "net/tally_kernels.hpp"
#include "support/contracts.hpp"
#include "support/types.hpp"

namespace adba::net {

/// Thin virtual adapter for delivery lookups. Only scripted tests and the
/// reference (oracle) engine path pay this vtable; the flat path never does.
class DeliverySource {
public:
    virtual ~DeliverySource() = default;

    /// Message delivered from `sender` to `receiver` this round, or nullptr.
    virtual const Message* delivery(NodeId receiver, NodeId sender) const = 0;
    virtual NodeId n() const = 0;
};

/// Contiguous storage for one round of deliveries (reused across rounds and,
/// via Engine::reset, across trials — no per-round allocation once warm).
class RoundBuffer {
public:
    /// Per-sender state byte: bit 0 = broadcast present, bit 1 = Byzantine.
    static constexpr std::uint8_t kPresent = 1;
    static constexpr std::uint8_t kByzantine = 2;

    /// Byzantine row representations.
    static constexpr std::uint8_t kRowDense = 0;    ///< n per-receiver cells
    static constexpr std::uint8_t kRowPattern = 1;  ///< threshold split

    /// Threshold-equivocation row: msg[0] to receivers < boundary, msg[1]
    /// to the rest; present[side] == 0 means silence for that side.
    struct RowPattern {
        Message msg[2];
        std::uint8_t present[2] = {0, 0};
        NodeId boundary = 0;
    };

    /// Sizes for a run of n nodes; everyone honest, no rows, nothing present.
    void reset(NodeId n);
    /// Clears the presence plane and recycles the Byzantine rows; corruption
    /// marks survive (corruption is permanent, §1.1).
    void begin_round();

    NodeId n() const { return n_; }
    bool is_honest(NodeId v) const { return (state_[v] & kByzantine) == 0; }

    // ---- beat 1: honest sends ----
    void set_broadcast(NodeId v, const Message& m) {
        honest_[v] = m;
        state_[v] = kPresent;
    }
    /// Honest sender v's broadcast this round (nullptr = silent/halted).
    const Message* broadcast(NodeId v) const {
        return state_[v] == kPresent ? &honest_[v] : nullptr;
    }

    // ---- beat 2: adversary actions ----
    /// Moves v to the Byzantine set forever; returns the discarded broadcast.
    std::optional<Message> corrupt(NodeId v);
    /// Records m as (byz_from -> to); returns true when the slot was empty.
    bool deliver(NodeId byz_from, NodeId to, const Message& m);
    /// O(1) threshold equivocation: `low` (if non-null) to receivers below
    /// `boundary`, `high` (if non-null) to the rest. Returns the number of
    /// previously-empty slots now covered (for message accounting). Falls
    /// back to a dense merge when the sender already delivered this round.
    Count apply_pattern(NodeId byz_from, const Message* low, const Message* high,
                        NodeId boundary);

    // ---- beat 3: receiver probes (the hot path) ----
    const Message* from(NodeId receiver, NodeId sender) const {
        const std::uint8_t st = state_[sender];
        if (st == kPresent) return &honest_[sender];
        if (st == 0) return nullptr;
        const std::int32_t row = byz_row_of_[sender];
        if (row < 0) return nullptr;
        return row_delivery(static_cast<std::size_t>(row), receiver);
    }

    // ---- tally-building access ----
    std::size_t rows_in_use() const { return rows_in_use_; }
    NodeId row_sender(std::size_t row) const { return row_sender_[row]; }
    std::uint8_t row_mode(std::size_t row) const { return row_mode_[row]; }
    const RowPattern& row_pattern(std::size_t row) const { return row_pattern_[row]; }
    const Message* row_delivery(std::size_t row, NodeId receiver) const {
        if (row_mode_[row] == kRowDense) {
            const std::size_t off =
                static_cast<std::size_t>(row_slot_[row]) * n_ + receiver;
            return byz_present_[off] ? &byz_msgs_[off] : nullptr;
        }
        const RowPattern& p = row_pattern_[row];
        const int side = receiver < p.boundary ? 0 : 1;
        return p.present[side] ? &p.msg[side] : nullptr;
    }
    const std::uint8_t* state_plane() const { return state_.data(); }
    const Message* honest_plane() const { return honest_.data(); }

private:
    std::int32_t ensure_row(NodeId v);
    /// Assigns (and clears) a dense cell block for `row`. Dense storage is
    /// allocated per *densified* row, not per row: a round of t pattern
    /// rows (every split/broadcast attack) costs O(t) bookkeeping, not an
    /// O(t * n) cell arena.
    void assign_dense_slot(std::size_t row);
    /// Materializes a pattern row into dense cells (merge path).
    void densify(std::size_t row);

    NodeId n_ = 0;
    std::vector<Message> honest_;        ///< [n] honest broadcasts
    std::vector<std::uint8_t> state_;    ///< [n] presence/honesty plane
    std::vector<std::int32_t> byz_row_of_;  ///< [n] sender -> row, or -1
    std::vector<NodeId> row_sender_;     ///< [rows] row -> sender
    std::vector<std::uint8_t> row_mode_; ///< [rows] kRowDense / kRowPattern
    std::vector<std::int32_t> row_slot_; ///< [rows] dense slot index, or -1
    std::vector<RowPattern> row_pattern_;  ///< [rows] pattern payloads
    std::vector<Message> byz_msgs_;      ///< [slots * n] dense delivery cells
    std::vector<std::uint8_t> byz_present_;  ///< [slots * n]
    std::size_t rows_in_use_ = 0;
    std::size_t slots_in_use_ = 0;
};

/// Adapts a RoundBuffer behind the virtual DeliverySource interface — the
/// engine's reference delivery path (per-probe vtable dispatch, per-sender
/// tally loops) that the flat path must match bit for bit.
class RoundBufferSource final : public DeliverySource {
public:
    explicit RoundBufferSource(const RoundBuffer& buf) : buf_(buf) {}
    const Message* delivery(NodeId receiver, NodeId sender) const override {
        return buf_.from(receiver, sender);
    }
    NodeId n() const override { return buf_.n(); }

private:
    const RoundBuffer& buf_;
};

/// Sorted (word, count) histogram — the recycled flat replacement for the
/// old std::map word tallies. Entries are unique words in ascending order;
/// clear() keeps capacity, so a warm engine builds these with zero
/// allocation per round.
using WordHistogram = std::vector<std::pair<Word, Count>>;

/// One (kind, phase) bucket of the round's honest-broadcast histogram.
/// val/flag counts are filled eagerly; coin prefix sums and word histograms
/// are built lazily on the round's first query that needs them.
struct TallyBucket {
    MsgKind kind{};
    Phase phase = 0;
    std::array<Count, 2> val_cnt{};       ///< by val & 1
    std::array<Count, 2> val_flag_cnt{};  ///< by val & 1, flag != 0 only
    Count total = 0;

    /// Packed-mode match plane: bit v set iff present sender v's broadcast
    /// landed in this bucket. Filled eagerly by the packed rebuild (unused
    /// and unsized in scalar mode); every packed query ANDs against it.
    std::vector<std::uint64_t> match;

    mutable bool have_coin_prefix = false;
    /// coin_prefix[u] = sum of sanitized ±1 coins of honest senders < u
    /// whose broadcast matched this bucket; size n+1.
    mutable std::vector<std::int64_t> coin_prefix;
    mutable bool have_words = false;
    mutable WordHistogram words;       ///< all matching messages
    mutable WordHistogram words_flag;  ///< flag != 0 only
};

/// Engine-level shared tallies over one round. rebuild() runs once per round
/// in O(n); buckets and the per-receiver Byzantine delta caches are shared
/// by every receiver's ReceiveView for that round, so each receive query is
/// O(1) after the first receiver pays the O(n + rows) aggregation.
class RoundTally {
public:
    /// Scalar rebuild — the byte-plane reference oracle.
    void rebuild(const RoundBuffer& buf) { rebuild(buf, false, nullptr); }
    /// Full form: `packed` selects the word-packed popcount build
    /// (tally_kernels.hpp); `intra` shards the pack pass over word-aligned
    /// node ranges (packed mode only; ignored when scalar). Query results
    /// are bit-identical across all (packed, intra) combinations.
    void rebuild(const RoundBuffer& buf, bool packed, IntraDispatcher* intra);
    /// True when the current round was built in packed mode.
    bool packed() const { return packed_; }
    /// The round's shared word-packed attribute planes (packed mode only).
    /// UNMASKED — consumers must gate every bit through a bucket's match
    /// plane (tally_kernels.hpp contract). The sparse delivery plane reads
    /// these directly for its per-edge honest-sender probes.
    const kern::PackedPlanes& packed_planes() const {
        ADBA_EXPECTS_MSG(packed_, "packed_planes requires a packed rebuild");
        return planes_;
    }

    const TallyBucket* find(MsgKind kind, Phase phase) const;
    /// Live buckets for the current round, in discovery order. Bucket
    /// storage (coin prefixes, word maps) is recycled across rounds, so a
    /// warm engine's tally service allocates nothing per round.
    std::size_t bucket_count() const { return buckets_in_use_; }
    const TallyBucket& bucket(std::size_t i) const { return buckets_[i]; }

    /// Lazy builders (per round, shared across receivers).
    const std::vector<std::int64_t>& coin_prefix(const TallyBucket& b) const;
    const WordHistogram& word_counts(const TallyBucket& b, bool require_flag) const;

    /// Sanitized ±1 coin sum of bucket-matching honest senders in
    /// [first, last): masked popcounts over the packed coin planes, or the
    /// lazy prefix difference in scalar mode — one query API, two builds,
    /// identical integers.
    std::int64_t coin_range_sum(const TallyBucket& b, NodeId first,
                                NodeId last) const;

    /// Whole per-receiver Byzantine val-count delta plane for one query
    /// signature (array of size n, indexed by receiver); nullptr when the
    /// round has no Byzantine rows. Built once per signature with a
    /// difference sweep over pattern rows — O(n + rows), not O(n * rows).
    /// Batch protocols hoist this out of their receive loop.
    const std::array<Count, 2>* val_delta_plane(MsgKind kind, Phase phase,
                                                bool require_flag) const;
    /// Per-receiver Byzantine val-count deltas for one query signature;
    /// nullptr when the round has no Byzantine rows.
    const std::array<Count, 2>* val_deltas(MsgKind kind, Phase phase,
                                           bool require_flag, NodeId receiver) const;
    /// Whole per-receiver Byzantine coin-sum delta plane over senders in
    /// [first, last); nullptr when the round has no Byzantine rows.
    const std::int64_t* coin_delta_plane(MsgKind kind, Phase phase, bool check_phase,
                                         NodeId first, NodeId last) const;
    /// Per-receiver Byzantine coin-sum delta over senders in [first, last).
    std::int64_t coin_delta(MsgKind kind, Phase phase, bool check_phase,
                            NodeId first, NodeId last, NodeId receiver) const;

    /// Byzantine-row word deltas delivered to `receiver` for `kind` (any
    /// phase), as a sorted histogram in recycled scratch storage — valid
    /// until the next call. No per-query allocation once warm.
    const WordHistogram& byz_word_deltas(MsgKind kind, bool require_flag,
                                         NodeId receiver) const;

private:
    struct ValCache {
        MsgKind kind{};
        Phase phase = 0;
        bool flag = false;
        std::vector<std::array<Count, 2>> delta;  ///< [n]
    };
    struct CoinCache {
        MsgKind kind{};
        Phase phase = 0;
        bool check_phase = false;
        NodeId first = 0;
        NodeId last = 0;
        std::vector<std::int64_t> delta;  ///< [n]
    };

    void rebuild_scalar(const RoundBuffer& buf);
    void rebuild_packed(const RoundBuffer& buf, IntraDispatcher* intra);
    TallyBucket& bucket_for(MsgKind kind, Phase phase, std::size_t words);

    const RoundBuffer* buf_ = nullptr;
    bool packed_ = false;
    kern::PackedPlanes planes_;            ///< packed mode; recycled
    std::vector<kern::PackShard> pack_shards_;  ///< per-shard pack scratch
    // Buckets and query caches: entries are reused across rounds (vectors
    // and maps keep their storage); *_in_use_ marks how many are live for
    // the current round.
    std::vector<TallyBucket> buckets_;
    std::size_t buckets_in_use_ = 0;
    mutable std::vector<ValCache> val_caches_;
    mutable std::size_t val_caches_in_use_ = 0;
    mutable std::vector<CoinCache> coin_caches_;
    mutable std::size_t coin_caches_in_use_ = 0;
    mutable WordHistogram byz_words_scratch_;  ///< recycled by byz_word_deltas
};

/// Receiver-specific view of one round's deliveries — concrete and final so
/// the per-(receiver, sender) probe devirtualizes and inlines.
///
/// Two backends share exactly one semantics:
///  * flat     — RoundBuffer probe + RoundTally-backed O(1) queries;
///  * adapter  — a DeliverySource (scripted test or the engine's reference
///               path); every tally query falls back to the plain per-sender
///               loop over from(), which doubles as the executable spec the
///               flat implementations are tested against.
class ReceiveView final {
public:
    ReceiveView(const RoundBuffer& buf, const RoundTally& tally, NodeId receiver)
        : buf_(&buf), tally_(&tally), n_(buf.n()), recv_(receiver) {}
    ReceiveView(const DeliverySource& src, NodeId receiver)
        : src_(&src), n_(src.n()), recv_(receiver) {}

    /// Message delivered from `sender` to this receiver this round, or
    /// nullptr for silence (halted, crashed, or adversarially withheld).
    /// `from(self)` returns the node's own broadcast (a node counts its own
    /// value in the paper's tallies).
    const Message* from(NodeId sender) const {
        ADBA_EXPECTS(sender < n_);
        if (buf_) return buf_->from(recv_, sender);
        return src_->delivery(recv_, sender);
    }

    /// Network size; senders are 0..n()-1.
    NodeId n() const { return n_; }
    /// The receiving node's own id.
    NodeId receiver() const { return recv_; }

    /// Span-style bulk iteration: invokes fn(sender, const Message&) for
    /// every non-silent delivery to this receiver, in sender order.
    template <typename Fn>
    void for_each_delivery(Fn&& fn) const {
        if (buf_ == nullptr) {
            for (NodeId u = 0; u < n_; ++u)
                if (const Message* m = src_->delivery(recv_, u)) fn(u, *m);
            return;
        }
        const std::uint8_t* state = buf_->state_plane();
        const Message* honest = buf_->honest_plane();
        for (NodeId u = 0; u < n_; ++u) {
            const std::uint8_t st = state[u];
            if (st == RoundBuffer::kPresent) {
                fn(u, honest[u]);
            } else if (st != 0) {
                if (const Message* m = buf_->from(recv_, u)) fn(u, *m);
            }
        }
    }

    // ---- tally service (shared honest histogram + per-receiver deltas) ----

    /// Counts, by val & 1, of deliveries matching (kind, phase) and, when
    /// `require_flag`, flag != 0 — the quorum probe every voting protocol
    /// reduces its receive step to.
    std::array<Count, 2> val_counts(MsgKind kind, Phase phase,
                                    bool require_flag) const;

    /// Sum of sanitized ±1 coin fields over deliveries from senders in
    /// [first, last) matching `kind` (and `phase`, when `check_phase`).
    /// Byzantine coin fields are clamped to ±1 (paper §3.2).
    std::int64_t coin_sum(MsgKind kind, Phase phase, bool check_phase,
                          NodeId first, NodeId last) const;

    /// The word (if any) whose delivery tally reaches `quorum` among
    /// messages of `kind` (flag != 0 when `require_flag`). Enforces the
    /// n-t uniqueness contract: two distinct quorum words throw.
    std::optional<Word> quorum_word(MsgKind kind, bool require_flag,
                                    Count quorum) const;

    /// The most frequent word among messages of `kind` (flag != 0 when
    /// `require_flag`) with its multiplicity; ties break to the smallest
    /// word; nullopt when no message matches.
    std::optional<std::pair<Word, Count>> plurality_word(MsgKind kind,
                                                         bool require_flag) const;

private:
    /// Shared walk behind quorum_word/plurality_word: invokes
    /// consider(word, count) over the combined delivery histogram in
    /// ascending word order (defined in round_buffer.cpp).
    template <typename Fn>
    void walk_words(MsgKind kind, bool require_flag, Fn&& consider) const;

    const RoundBuffer* buf_ = nullptr;
    const RoundTally* tally_ = nullptr;
    const DeliverySource* src_ = nullptr;
    NodeId n_ = 0;
    NodeId recv_ = 0;
};

}  // namespace adba::net
