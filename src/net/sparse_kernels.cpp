#include "net/sparse_kernels.hpp"

#if defined(__x86_64__)
// GCC 12's avx512 headers trip -Wmaybe-uninitialized on their own
// _mm512_undefined_* helpers; the kernel below never reads uninitialized
// lanes (every gather is masked with a zero source).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#endif

namespace adba::net::kern {
namespace {

/// Spreads the low 32 bits of x onto the even bit positions of a 64-bit
/// word (the standard Morton expansion, 5 mask-shift rounds).
inline std::uint64_t spread_even(std::uint64_t x) {
    x &= 0xFFFFFFFFULL;
    x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
    x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
    x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
    x = (x | (x << 2)) & 0x3333333333333333ULL;
    x = (x | (x << 1)) & 0x5555555555555555ULL;
    return x;
}

/// Interleaves two 32-sender bit halves into one code word: sender j's
/// code is lo bit at position 2j, hi bit at 2j+1.
inline std::uint64_t interleave(std::uint64_t lo, std::uint64_t hi) {
    return spread_even(lo) | (spread_even(hi) << 1);
}

/// Counts one derived block against the code plane: one gathered 2-bit
/// read per lane. b0/b1 are the code's two bits — val-0 lanes carry b0
/// alone, val-1 lanes b1 alone, Byzantine lanes both — so the block sums
/// Sigma b0 / Sigma b1 and subtracts the Byzantine lane count from each
/// (cheaper than per-lane andn), returning the Byzantine mask for the
/// caller's exact walk.
std::uint64_t code_count_block(const std::uint64_t* code, const NodeId* idx,
                               NodeId k, std::array<Count, 2>& c) {
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
    std::uint64_t byz_mask = 0;
    for (NodeId j = 0; j < k; ++j) {
        const NodeId u = idx[j];
        const std::uint64_t cw = code[u / 32] >> (u % 32 * 2);
        const std::uint64_t b0 = cw & 1u;
        const std::uint64_t b1 = cw >> 1 & 1u;
        s0 += b0;
        s1 += b1;
        byz_mask |= (b0 & b1) << j;
    }
    const Count nb = static_cast<Count>(__builtin_popcountll(byz_mask));
    c[0] += static_cast<Count>(s0) - nb;
    c[1] += static_cast<Count>(s1) - nb;
    return byz_mask;
}

/// Portable counter-stream block: the derivation of sparse_fill_indices
/// fused with code_count_block (with a prefetch between derive and count).
std::uint64_t counter_block_scalar(std::uint64_t h, NodeId n, NodeId i0,
                                   NodeId k, const std::uint64_t* code,
                                   NodeId* idx, std::array<Count, 2>& c) {
    for (NodeId j = 0; j < k; ++j) {
        const NodeId u = sparse_reduce(sparse_mix(h ^ (i0 + j)), n);
        idx[j] = u;
        __builtin_prefetch(&code[u / 32]);
    }
    return code_count_block(code, idx, k, c);
}

#if defined(__x86_64__)
/// AVX-512 counter-stream block in three passes over the <=64 lanes:
/// (1) derive — 8 independent splitmix64 lanes per iteration (vpmullq
/// does the finalizer's two multiplies 8-wide) and the Lemire reduction
/// as 32x32->64 half products (u = (x_hi*n + (x_lo*n >> 32)) >> 32 —
/// exactly (x*n) >> 64 for 32-bit n), stored to idx; (2) prefetch every
/// sampled code line, so the L2 latency of a large-n plane overlaps the
/// remaining derivation instead of serializing the gathers (this is what
/// keeps ns/probe flat from L1-resident n to 2^20); (3) count — ONE
/// masked vpgatherqq per 8 probes into the 2-bit code plane. Produces
/// bit-identical integers to counter_block_scalar — dispatch is never a
/// stream version.
__attribute__((target("avx512f,avx512dq,avx512vl")))
std::uint64_t counter_block_avx512(std::uint64_t h, NodeId n, NodeId i0,
                                   NodeId k, const std::uint64_t* code,
                                   NodeId* idx, std::array<Count, 2>& c) {
    const __m512i hv = _mm512_set1_epi64(static_cast<long long>(h));
    const __m512i nv = _mm512_set1_epi64(static_cast<long long>(n));
    const __m512i add = _mm512_set1_epi64(
        static_cast<long long>(0x9e3779b97f4a7c15ULL));
    const __m512i mul1 = _mm512_set1_epi64(
        static_cast<long long>(0xbf58476d1ce4e5b9ULL));
    const __m512i mul2 = _mm512_set1_epi64(
        static_cast<long long>(0x94d049bb133111ebULL));
    const __m512i lane = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
    for (NodeId j = 0; j < k; j += 8) {
        const NodeId rem = k - j;
        const __mmask8 m =
            rem >= 8 ? static_cast<__mmask8>(0xFF)
                     : static_cast<__mmask8>((1u << rem) - 1u);
        // x = sparse_mix(h ^ (i0 + j + lane))
        __m512i x = _mm512_add_epi64(
            _mm512_set1_epi64(static_cast<long long>(
                static_cast<std::uint64_t>(i0 + j))),
            lane);
        x = _mm512_xor_si512(hv, x);
        x = _mm512_add_epi64(x, add);
        x = _mm512_mullo_epi64(
            _mm512_xor_si512(x, _mm512_srli_epi64(x, 30)), mul1);
        x = _mm512_mullo_epi64(
            _mm512_xor_si512(x, _mm512_srli_epi64(x, 27)), mul2);
        x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
        // u = sparse_reduce(x, n)
        const __m512i lo = _mm512_mul_epu32(x, nv);
        const __m512i hi = _mm512_mul_epu32(_mm512_srli_epi64(x, 32), nv);
        const __m512i u = _mm512_srli_epi64(
            _mm512_add_epi64(hi, _mm512_srli_epi64(lo, 32)), 32);
        _mm512_mask_cvtepi64_storeu_epi32(idx + j, m, u);
    }
    for (NodeId j = 0; j < k; ++j) __builtin_prefetch(&code[idx[j] / 32]);
    const __m512i one = _mm512_set1_epi64(1);
    const __m512i three = _mm512_set1_epi64(3);
    const __m512i thirty_one = _mm512_set1_epi64(31);
    __m512i s0 = _mm512_setzero_si512();
    __m512i s1 = _mm512_setzero_si512();
    std::uint64_t byz_mask = 0;
    for (NodeId j = 0; j < k; j += 8) {
        const NodeId rem = k - j;
        const __mmask8 m =
            rem >= 8 ? static_cast<__mmask8>(0xFF)
                     : static_cast<__mmask8>((1u << rem) - 1u);
        const __m512i u = _mm512_cvtepu32_epi64(
            _mm256_maskz_loadu_epi32(m, idx + j));
        // cw = code[u / 32] >> (u % 32 * 2); inactive lanes gather 0 (skip)
        __m512i cw = _mm512_mask_i64gather_epi64(
            _mm512_setzero_si512(), m, _mm512_srli_epi64(u, 5), code, 8);
        cw = _mm512_srlv_epi64(
            cw, _mm512_slli_epi64(_mm512_and_si512(u, thirty_one), 1));
        s0 = _mm512_add_epi64(s0, _mm512_and_si512(cw, one));
        s1 = _mm512_add_epi64(
            s1, _mm512_and_si512(_mm512_srli_epi64(cw, 1), one));
        const __mmask8 bm = _mm512_cmpeq_epi64_mask(
            _mm512_and_si512(cw, three), three);
        byz_mask |= static_cast<std::uint64_t>(bm) << j;
    }
    const Count nb = static_cast<Count>(__builtin_popcountll(byz_mask));
    c[0] += static_cast<Count>(_mm512_reduce_add_epi64(s0)) - nb;
    c[1] += static_cast<Count>(_mm512_reduce_add_epi64(s1)) - nb;
    return byz_mask;
}
#endif  // __x86_64__

using CounterBlockFn = std::uint64_t (*)(std::uint64_t, NodeId, NodeId,
                                         NodeId, const std::uint64_t*,
                                         NodeId*, std::array<Count, 2>&);

CounterBlockFn resolve_counter_block() {
#if defined(__x86_64__)
    if (__builtin_cpu_supports("avx512f") != 0 &&
        __builtin_cpu_supports("avx512dq") != 0 &&
        __builtin_cpu_supports("avx512vl") != 0)
        return &counter_block_avx512;
#endif
    return &counter_block_scalar;
}

/// Resolved once at load: the build carries no -march, so the AVX-512
/// kernel is compiled behind a target attribute and chosen only when the
/// host CPU reports the features.
const CounterBlockFn g_counter_block = resolve_counter_block();

}  // namespace

std::uint64_t sparse_probe_block(SparseStream stream, std::uint64_t& h,
                                 NodeId n, NodeId i0, NodeId k,
                                 const std::uint64_t* code, NodeId* idx,
                                 std::array<Count, 2>& c) {
    if (stream == SparseStream::Counter)
        return g_counter_block(h, n, i0, k, code, idx, c);
    // Chain: the serial v1 derivation cannot pipeline (each draw waits on
    // the previous), so it keeps the scalar fill; the count side still
    // reads the code plane.
    h = sparse_fill_indices(SparseStream::Chain, h, n, i0, k, idx);
    return code_count_block(code, idx, k, c);
}

void sparse_build_code_plane(const SparseProbeCtx& ctx, std::size_t words,
                             std::uint64_t* code) {
    // Per 64-sender source word: classify every sender once, then Morton-
    // interleave the two classification bits into two 32-sender code
    // words. Codes: 1 = count val 0, 2 = count val 1, 3 = Byzantine,
    // 0 = skip — so lo = val0 | byz, hi = val1 | byz. The attribute
    // planes are unmasked (tally_kernels.hpp): the match bit gates them
    // here, and the byz bits (which the pack loop sets regardless of
    // bucket) override via code 3, so stale val/flag bits of silent or
    // corrupted senders never reach a count.
    for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t byz = ctx.byz[w];
        std::uint64_t ok = 0;
        std::uint64_t val = 0;
        if (ctx.match != nullptr) {
            ok = ctx.match[w] & ~byz;
            if (ctx.require_flag) ok &= ctx.flag[w];
            val = ctx.val[w];
        }
        const std::uint64_t lo = (ok & ~val) | byz;
        const std::uint64_t hi = (ok & val) | byz;
        code[2 * w] = interleave(lo & 0xFFFFFFFFULL, hi & 0xFFFFFFFFULL);
        code[2 * w + 1] = interleave(lo >> 32, hi >> 32);
    }
}

std::uint64_t sparse_fill_indices(SparseStream stream, std::uint64_t h,
                                  NodeId n, NodeId i0, NodeId k, NodeId* out) {
    if (stream == SparseStream::Chain) {
        // v1 (FROZEN): the serial splitmix64 chain with `% n` — byte-for-
        // byte the PR 7 derivation, so recorded chain-stream experiments
        // replay exactly. The chain state threads through the return value.
        for (NodeId j = 0; j < k; ++j) {
            h = sparse_mix(h);
            out[j] = static_cast<NodeId>(h % n);
        }
        return h;
    }
    // v2 (FROZEN): counter mode. Lanes are independent — mix(h ^ i) has no
    // loop-carried dependency, so the block's ~3-multiply mix latencies
    // overlap — and the Lemire mulhi replaces the division. h is the MIXED
    // per-receiver base (sparse_mixed_base): XORing the counter into the
    // raw base would let a low-bit seed/receiver change merely permute the
    // lane set instead of redrawing it. The counter enters the mix whole;
    // splitmix64's finalizer avalanches adjacent counters into decorrelated
    // full-width hashes (it is exactly the splitmix64 generator's shape:
    // counter in, hash out).
    for (NodeId j = 0; j < k; ++j)
        out[j] = sparse_reduce(sparse_mix(h ^ (i0 + j)), n);
    return h;
}

}  // namespace adba::net::kern

#if defined(__x86_64__)
#pragma GCC diagnostic pop
#endif
