// Batch node plane: whole-protocol stepping with ONE virtual dispatch per
// engine beat instead of one per node.
//
// The engine's round cadence (sends -> adversary -> deliveries) used to walk
// a vector<unique_ptr<HonestNode>> and pay a virtual call plus a pointer
// chase per node per beat; at large n that dispatch-and-cache-miss tax —
// not algorithmic work — dominated the round loop. BatchProtocol inverts
// the loop: the protocol implementation owns ALL per-node state and the
// engine calls
//
//   send_all(r, buf)              — every live honest node broadcasts,
//   receive_all(r, buf, tally)    — every live honest node consumes the
//                                   round (flat delivery plane + shared
//                                   tallies), or
//   receive_all(r, src)           — the same over the virtual DeliverySource
//                                   oracle (EngineConfig::reference_delivery),
//
// and reads `halted_plane()` / `value(v)` / `decided(v)` for gating, message
// accounting, adversary introspection, and result assembly.
//
// Two families implement the interface:
//  * PerNodeBatch — the generic adapter over any HonestNode vector. Every
//    protocol works unchanged through it, and it is the reference oracle the
//    native batches are pinned against (the same role reference_delivery
//    plays for the delivery plane).
//  * native SoA batches (core/skeleton_batch.hpp, baselines/ben_or.hpp,
//    baselines/phase_king.hpp) — per-node state as flat arrays, shared
//    tally queries hoisted out of the per-node loop. Selected by the
//    registry's make_batch hooks; scenario key `batch=false` (CLI
//    `--batch=off`) falls back to the adapter.
//
// One step further along the same axis, net/fused_plane.hpp batches across
// TRIALS instead of nodes: 64 Monte-Carlo trials co-execute bit-sliced in
// one machine word per node (scenario key `fused`). The fused plane has its
// own protocol interface (FusedProtocol) because its state layout is a
// transpose of this one's; a native batch remains the per-trial oracle the
// fused lanes are pinned against, just as PerNodeBatch is this plane's.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/node.hpp"
#include "net/round_buffer.hpp"
#include "support/types.hpp"

namespace adba::net {

class SparsePlane;

/// Steps one protocol's whole node population; the engine's only handle on
/// honest protocol state. Implementations must preserve per-node semantics
/// exactly: iterate nodes in ascending id, skip Byzantine (RoundBuffer state
/// plane) and halted nodes, and draw per-node randomness in the same order
/// a per-node engine loop would.
class BatchProtocol {
public:
    virtual ~BatchProtocol() = default;

    virtual NodeId n() const = 0;

    /// Beat 1: every live honest node computes its round-r broadcast into
    /// `buf` (set_broadcast). Nodes that halt at send time (finish-flush
    /// protocols) must flip their halted_plane() bit here.
    virtual void send_all(Round r, RoundBuffer& buf) = 0;

    /// Beat 3, flat path: every live honest node consumes the round through
    /// the shared tally service. Implementations hoist receiver-independent
    /// queries (honest histograms, delta planes) out of the per-node loop.
    virtual void receive_all(Round r, const RoundBuffer& buf,
                             const RoundTally& tally) = 0;

    /// Beat 3, oracle path: the same semantics over the virtual
    /// DeliverySource adapter (the engine's reference_delivery mode) —
    /// per-node ReceiveView queries, the executable spec of the flat
    /// receive_all. `buf` supplies the honesty plane only; deliveries go
    /// through `src`.
    virtual void receive_all(Round r, const RoundBuffer& buf,
                             const DeliverySource& src) = 0;

    // ---- intra-trial sharding (EngineConfig::intra) ----
    //
    // A shardable batch lets the engine split each beat into disjoint
    // word-aligned node ranges executed concurrently (IntraDispatcher,
    // net/tally_kernels.hpp), with a barrier per beat:
    //
    //   send beat    : send_range(r, buf, lo, hi) per shard;
    //   receive beat : receive_prepare(r, buf, tally) once, serially —
    //                  ALL shared tally queries (find, delta planes, coin
    //                  sums) must be hoisted here, because the tally's
    //                  lazy caches are not safe to build concurrently —
    //                  then receive_range(r, buf, tally, lo, hi) per
    //                  shard, touching only per-node state in [lo, hi).
    //
    // Per-node writes (value planes, halted bits, set_broadcast, per-node
    // RNG draws) are disjoint across ranges, so sharded execution is
    // race-free and bit-identical to send_all/receive_all at ANY shard
    // count — tests/test_intra_shard.cpp pins this. A Dealer-style shared
    // coin hook must be pure (thread-safe) for its batch to be shardable.

    /// True when this batch implements the range protocol above. The
    /// default (and PerNodeBatch, whose nodes build lazy per-view tallies)
    /// is non-shardable; the engine then runs whole-population beats.
    virtual bool shardable() const { return false; }
    /// Send beat over senders [lo, hi); shardable batches only.
    virtual void send_range(Round r, RoundBuffer& buf, NodeId lo, NodeId hi);
    /// Serial pre-pass of the receive beat: hoist shared tally state.
    virtual void receive_prepare(Round r, const RoundBuffer& buf,
                                 const RoundTally& tally);
    /// Receive beat over receivers [lo, hi); shardable batches only.
    virtual void receive_range(Round r, const RoundBuffer& buf,
                               const RoundTally& tally, NodeId lo, NodeId hi);

    // ---- sparse delivery plane (EngineConfig::plane == PlaneMode::Sparse) --
    //
    // A sparse-capable batch answers its receive-beat tally queries from
    // sampled per-receiver counts (net/sparse_plane.hpp) instead of exact
    // population tallies, with the same prepare/range split as the sharded
    // flat beat: receive_sparse_prepare hoists the round's SparsePlane
    // query handle plus any EXACT island (the committee coin range, which
    // every receiver still hears in full), then receive_sparse_range steps
    // receivers [lo, hi) on estimated counts. Under dense sampling
    // (degree >= n) the estimates are the flat integers, so the sparse path
    // is pinned bit-identical to the flat one; below n, threshold lemmas
    // that are theorems for exact counts may fail statistically, so range
    // implementations must run their relaxed (assert-free) forms there.

    /// True when this batch implements the sparse receive protocol. Mirrors
    /// the registry's `supports_sparse` capability flag.
    virtual bool supports_sparse() const { return false; }
    /// Serial pre-pass of the sparse receive beat.
    virtual void receive_sparse_prepare(Round r, const RoundBuffer& buf,
                                        const RoundTally& tally,
                                        const SparsePlane& sparse);
    /// Sparse receive beat over receivers [lo, hi).
    virtual void receive_sparse_range(Round r, const RoundBuffer& buf,
                                      const RoundTally& tally,
                                      const SparsePlane& sparse, NodeId lo,
                                      NodeId hi);

    /// Contiguous halted bitplane, one byte per node (1 = halted). Valid
    /// between beats; updated only inside send_all / receive_all.
    virtual const std::uint8_t* halted_plane() const = 0;

    /// Full-information introspection (RoundControl, result assembly).
    virtual Bit value(NodeId v) const = 0;
    virtual bool decided(NodeId v) const = 0;
    virtual Bit output(NodeId v) const = 0;

    /// The underlying per-node objects, when this batch has them (adapter);
    /// nullptr for native SoA batches. Round observers require them.
    virtual const std::vector<std::unique_ptr<HonestNode>>* nodes() const {
        return nullptr;
    }
};

/// Generic adapter: drives any HonestNode vector behind the batch
/// interface. One virtual call per node per beat survives inside — this is
/// the compatibility / oracle path, not the fast one.
class PerNodeBatch final : public BatchProtocol {
public:
    PerNodeBatch() = default;
    explicit PerNodeBatch(std::vector<std::unique_ptr<HonestNode>> nodes) {
        rearm(std::move(nodes));
    }

    /// Re-arms the adapter around a (possibly new) node set; the halted
    /// plane is refreshed from the nodes.
    void rearm(std::vector<std::unique_ptr<HonestNode>> nodes);
    /// Moves the node set back out (to a caller-owned pool); the adapter is
    /// unusable until the next rearm().
    std::vector<std::unique_ptr<HonestNode>> take_nodes();

    NodeId n() const override { return static_cast<NodeId>(nodes_.size()); }
    void send_all(Round r, RoundBuffer& buf) override;
    void receive_all(Round r, const RoundBuffer& buf, const RoundTally& tally) override;
    void receive_all(Round r, const RoundBuffer& buf, const DeliverySource& src) override;
    const std::uint8_t* halted_plane() const override { return halted_.data(); }
    Bit value(NodeId v) const override { return nodes_[v]->current_value(); }
    bool decided(NodeId v) const override { return nodes_[v]->current_decided(); }
    Bit output(NodeId v) const override { return nodes_[v]->output(); }
    const std::vector<std::unique_ptr<HonestNode>>* nodes() const override {
        return &nodes_;
    }

private:
    template <typename MakeView>
    void receive_impl(Round r, const std::uint8_t* state, MakeView&& make_view);

    std::vector<std::unique_ptr<HonestNode>> nodes_;
    std::vector<std::uint8_t> halted_;
};

}  // namespace adba::net
