// Batched sparse probe kernels — the sixth data-plane layer (README.md).
//
// SparsePlane's job is answering "how many of receiver v's sampled senders
// broadcast (kind, phase, val)" n times per round. PR 7 answered it with a
// scalar per-probe loop: a serially-dependent splitmix64 chain (every draw
// waits ~3 multiply latencies on the previous one), a 64-bit `h % n`
// division, and a random byte load from the n-byte state plane per probe —
// ~5 ns/probe at n=2^20 and growing with n. This header is the sparse
// analogue of tally_kernels.hpp: the same counts, derived and counted in
// independent 64-probe blocks at memory bandwidth.
//
// Three ideas, mirroring the issue's shape:
//
//  * Counter-based derivation (SparseStream::Counter, the default). Draw i
//    of receiver v in round r is mix(base ^ i) with
//    base = mix(seed ^ ((r << 32) | v)) — every lane is independent, so the
//    64 mixes of a block pipeline instead of serializing. The inner mix of
//    base is load-bearing: without it a low-bit seed or receiver change
//    would merely permute the counter lanes (seed^1 ^ i = seed ^ (i^1))
//    instead of redrawing them. The modulo becomes a Lemire multiply-shift
//    reduction (one mulhi), which is uniform enough for sampling
//    (bias <= n / 2^64) and is pinned by a chi-square test at
//    non-power-of-two n.
//  * The v1 chain (SparseStream::Chain) stays bit-for-bit selectable:
//    sample derivation is part of the replayability contract — recorded
//    sparse experiments replay only under the stream version that produced
//    them — so streams are VERSIONED, never edited. Both derivations below
//    are frozen; a future change must add a third enumerator.
//  * One load per probe: the per-query CODE PLANE. A receiver's probe of
//    sender u needs exactly four facts — Byzantine? in the bucket? flag
//    ok? which val? — which collapse to 2 bits per sender once the query
//    is fixed: 0 = not counted, 1 = count val 0, 2 = count val 1,
//    3 = Byzantine (take the exact pattern-row walk). query() folds the
//    packed honesty word plane (PackedPlanes::byz, 8x denser than the
//    uint8_t state plane) and the bucket match/val/flag planes into one
//    interleaved 2-bit plane, O(n/64) word ops once per beat; the
//    per-probe hot loop then makes a SINGLE gathered load (n=2^20 keeps
//    the whole plane in 256 KiB of L2) with software prefetch across the
//    block, and only the (rare) Byzantine lanes leave it, via a caller
//    callback.
//
// Determinism: counts depend only on (stream, seed, round, receiver, i) and
// the round's planes — never on block size, threads, or shards.
#pragma once

#include <array>
#include <cstdint>

#include "support/types.hpp"

namespace adba::net {

/// Version tag of the (seed, round, receiver, i) -> sender index stream.
/// Scenario key `sparse_stream=chain|counter`; part of the replayability
/// contract (see file comment — derivations are frozen per enumerator).
enum class SparseStream : std::uint8_t {
    Chain,    ///< v1 (PR 7): serial splitmix64 chain, `h % n` reduction
    Counter,  ///< v2: independent mix(base ^ i) lanes, Lemire reduction
};

namespace kern {

/// splitmix64 finalizer. FROZEN: both sample streams are built from it.
inline std::uint64_t sparse_mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Per-(round, receiver) stream base. Round and receiver pack into one
/// 64-bit lane, so every pair owns a distinct stream regardless of
/// execution order. Shared verbatim by both stream versions.
inline std::uint64_t sparse_stream_base(std::uint64_t seed, Round round,
                                        NodeId receiver) {
    return seed ^ ((static_cast<std::uint64_t>(round) << 32) | receiver);
}

/// Lemire multiply-shift reduction of a full-width hash onto [0, n):
/// high 64 bits of h * n. One mulhi instead of a 64-bit division.
inline NodeId sparse_reduce(std::uint64_t h, NodeId n) {
    return static_cast<NodeId>(
        (static_cast<unsigned __int128>(h) * n) >> 64);
}

/// Probes per derivation/count block. One block's Byzantine lanes fit a
/// uint64 mask, and 64 indices of stack buffer keep the kernel itself
/// allocation-free (the plane's only heap is the O(n/4)-byte code plane).
inline constexpr NodeId kSparseBlock = 64;

/// Fills out[0..k) with draws i0..i0+k-1 of the receiver's round stream.
/// `h` starts as sparse_mixed_base() for the first block; thread the
/// return value into subsequent blocks. For Chain it is the serial chain
/// state (mutates per draw); for Counter it is the mixed per-receiver base
/// (returned unchanged — lanes derive from h ^ i). k <= kSparseBlock.
std::uint64_t sparse_fill_indices(SparseStream stream, std::uint64_t h,
                                  NodeId n, NodeId i0, NodeId k, NodeId* out);

/// Mixed per-(seed, round, receiver) stream state both versions start
/// from: the v1 chain's pre-loop hash, and the v2 counter's base (the
/// avalanche decouples low seed/receiver bits from the counter lanes).
inline std::uint64_t sparse_mixed_base(std::uint64_t base) {
    return sparse_mix(base);
}

/// Per-sender probe codes, 2 bits each, 32 senders per word (LSB-first:
/// sender u occupies bits [2*(u%32), 2*(u%32)+1] of word u/32).
enum : std::uint64_t {
    kSparseCodeSkip = 0,   ///< silent, out-of-bucket, or flag-filtered
    kSparseCodeVal0 = 1,   ///< honest, in bucket, val == 0
    kSparseCodeVal1 = 2,   ///< honest, in bucket, val == 1
    kSparseCodeByz = 3,    ///< Byzantine sender: exact pattern-row walk
};

/// One query's resolved plane inputs, hoisted once per beat
/// (SparsePlane::query): the build inputs of the 2-bit code plane.
struct SparseProbeCtx {
    const std::uint64_t* byz = nullptr;    ///< honesty word plane (required)
    const std::uint64_t* match = nullptr;  ///< bucket membership (null = none)
    const std::uint64_t* val = nullptr;    ///< packed val bits (unmasked)
    const std::uint64_t* flag = nullptr;   ///< packed flag bits (unmasked)
    bool require_flag = false;
};

/// Folds the query's bit planes into the interleaved 2-bit code plane:
/// reads `words` source words (64 senders each), writes 2*words code
/// words. O(n/64) word ops once per beat — amortized to nothing against
/// the n*degree probes that read it.
void sparse_build_code_plane(const SparseProbeCtx& ctx, std::size_t words,
                             std::uint64_t* code);

/// One <= kSparseBlock-probe block of the per-receiver walk: derives draws
/// i0..i0+k-1 into idx[0..k), counts honest lanes from the code plane into
/// c, and returns the Byzantine lane mask (bit j set => idx[j] sampled a
/// Byzantine sender; the caller walks those exactly). For Chain, `h` is
/// the serial chain state and advances; for Counter it is the mixed base
/// and is left unchanged (lanes derive from h ^ i). The counter path
/// dispatches once at load time to an AVX-512 kernel when the CPU has one
/// (8 splitmix64 lanes per vpmullq pair, Lemire via 32x32 halves, one
/// vpgatherqq per 8 probes); the scalar fallback computes the identical
/// integers — dispatch is a speed choice, never a stream version.
std::uint64_t sparse_probe_block(SparseStream stream, std::uint64_t& h,
                                 NodeId n, NodeId i0, NodeId k,
                                 const std::uint64_t* code, NodeId* idx,
                                 std::array<Count, 2>& c);

/// Batched sampled counts by val for one receiver: derives `degree` indices
/// in kSparseBlock chunks, counts lanes branchlessly with one gathered
/// 2-bit code read per probe (sparse_probe_block), and hands each
/// Byzantine-sampled sender to `byz_probe(sender)` (the exact pattern-row
/// walk; it must bump the caller's counters itself — almost always empty:
/// Byzantine sample density q/n is tiny in the regimes the plane targets).
/// Count increments commute, so the result is a pure function of the probe
/// multiset — which is why batching is not a stream version: stream ==
/// Chain reproduces the scalar v1 loop's counts exactly.
template <typename ByzProbe>
void sparse_count_receiver(SparseStream stream, std::uint64_t seed,
                           Round round, NodeId receiver, NodeId n,
                           NodeId degree, const std::uint64_t* code,
                           std::array<Count, 2>& c, ByzProbe&& byz_probe) {
    std::uint64_t h =
        sparse_mixed_base(sparse_stream_base(seed, round, receiver));
    NodeId idx[kSparseBlock];
    for (NodeId i0 = 0; i0 < degree; i0 += kSparseBlock) {
        const NodeId k = degree - i0 < kSparseBlock ? degree - i0 : kSparseBlock;
        std::uint64_t byz_mask =
            sparse_probe_block(stream, h, n, i0, k, code, idx, c);
        while (byz_mask != 0) {
            const unsigned j = static_cast<unsigned>(__builtin_ctzll(byz_mask));
            byz_probe(idx[j]);
            byz_mask &= byz_mask - 1;
        }
    }
}

}  // namespace kern
}  // namespace adba::net
