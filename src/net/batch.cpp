#include "net/batch.hpp"

#include "support/contracts.hpp"

namespace adba::net {

void BatchProtocol::send_range(Round, RoundBuffer&, NodeId, NodeId) {
    ADBA_EXPECTS_MSG(false, "send_range called on a non-shardable batch");
}

void BatchProtocol::receive_prepare(Round, const RoundBuffer&, const RoundTally&) {}

void BatchProtocol::receive_range(Round, const RoundBuffer&, const RoundTally&,
                                  NodeId, NodeId) {
    ADBA_EXPECTS_MSG(false, "receive_range called on a non-shardable batch");
}

void BatchProtocol::receive_sparse_prepare(Round, const RoundBuffer&,
                                           const RoundTally&, const SparsePlane&) {}

void BatchProtocol::receive_sparse_range(Round, const RoundBuffer&,
                                         const RoundTally&, const SparsePlane&,
                                         NodeId, NodeId) {
    ADBA_EXPECTS_MSG(false,
                     "receive_sparse_range called on a batch without sparse support");
}

void PerNodeBatch::rearm(std::vector<std::unique_ptr<HonestNode>> nodes) {
    nodes_ = std::move(nodes);
    for (const auto& p : nodes_) ADBA_EXPECTS(p != nullptr);
    halted_.assign(nodes_.size(), 0);
    for (NodeId v = 0; v < nodes_.size(); ++v)
        halted_[v] = nodes_[v]->halted() ? 1 : 0;
}

std::vector<std::unique_ptr<HonestNode>> PerNodeBatch::take_nodes() {
    return std::move(nodes_);
}

void PerNodeBatch::send_all(Round r, RoundBuffer& buf) {
    const std::uint8_t* state = buf.state_plane();
    const NodeId n = this->n();
    for (NodeId v = 0; v < n; ++v) {
        if ((state[v] & RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
        if (const auto m = nodes_[v]->round_send(r)) buf.set_broadcast(v, *m);
        // Finish-flush protocols halt at send time; latch it for the beat's
        // accounting and the all-halted check.
        if (nodes_[v]->halted()) halted_[v] = 1;
    }
}

template <typename MakeView>
void PerNodeBatch::receive_impl(Round r, const std::uint8_t* state,
                                MakeView&& make_view) {
    const NodeId n = this->n();
    for (NodeId v = 0; v < n; ++v) {
        if ((state[v] & RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
        const ReceiveView view = make_view(v);
        nodes_[v]->round_receive(r, view);
        if (nodes_[v]->halted()) halted_[v] = 1;
    }
}

void PerNodeBatch::receive_all(Round r, const RoundBuffer& buf,
                               const RoundTally& tally) {
    receive_impl(r, buf.state_plane(),
                 [&](NodeId v) { return ReceiveView(buf, tally, v); });
}

void PerNodeBatch::receive_all(Round r, const RoundBuffer& buf,
                               const DeliverySource& src) {
    receive_impl(r, buf.state_plane(), [&](NodeId v) { return ReceiveView(src, v); });
}

}  // namespace adba::net
