// Synchronous complete-network simulator with a first-class adaptive
// rushing Byzantine adversary (the paper's model, §1.1).
//
// Round cadence:
//   1. every live honest node computes its broadcast (drawing this round's
//      randomness);
//   2. the adversary observes ALL of those broadcasts (rushing = it sees the
//      current round's random choices), may adaptively corrupt nodes
//      (discarding their broadcast and taking over their identity), and
//      chooses per-recipient messages for every Byzantine node
//      (equivocation is allowed: different receivers may get different
//      messages, or silence);
//   3. deliveries: each live honest node receives, from each sender, either
//      the sender's honest broadcast (delivered verbatim and attributed —
//      the channel authenticates senders, §1.1) or the adversary's choice.
//
// Corruption is permanent and budgeted: at most `budget` (= t) corruptions
// per run, enforced by contract. Halted nodes have left the protocol and
// cannot be corrupted (their output already stands).
//
// Data plane, three layers (see also src/net/batch.hpp):
//   RoundBuffer    — flat per-round delivery state (contiguous Message[] +
//                    uint8_t presence/honesty plane, net/round_buffer.hpp);
//   RoundTally     — engine-level shared tallies: honest histogram once per
//                    round, Byzantine delta planes once per query signature;
//   BatchProtocol  — whole-protocol stepping: ONE virtual dispatch per beat
//                    per round (send_all / receive_all), with halted state
//                    as a contiguous bitplane. Per-node HonestNode vectors
//                    ride through the PerNodeBatch adapter unchanged.
// EngineConfig::reference_delivery re-routes every delivery probe through
// the virtual DeliverySource adapter with per-sender tally loops: the slow
// oracle the equivalence tests pin the flat path against.
//
// Engines are reusable: reset() rearms a finished engine for another run
// and take_nodes()/take_batch() return the protocol state to the caller's
// pool, so Monte-Carlo runners keep one engine + one protocol instance per
// worker and stop paying per-trial allocation.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/batch.hpp"
#include "net/message.hpp"
#include "net/metrics.hpp"
#include "net/node.hpp"
#include "net/round_buffer.hpp"
#include "net/sparse_plane.hpp"
#include "net/transcript.hpp"
#include "support/types.hpp"

namespace adba::net {

class Engine;

/// The adversary's handle for one round: observation plus actions.
/// Only valid during Adversary::act; do not retain.
///
/// Abstract so more than one execution plane can host an adversary: the
/// engine's per-trial form (Engine::Ctl, engine.cpp) and the fused trial
/// plane's lane-masked bridge (net/fused_plane.hpp), which runs one
/// adversary instance per bit-sliced lane against that lane's planes only.
class RoundControl {
public:
    virtual ~RoundControl() = default;

    // ---- observation (full information + rushing) ----
    virtual Round round() const = 0;
    virtual NodeId n() const = 0;
    /// Corruptions still available to the adversary.
    virtual Count budget_left() const = 0;
    /// True iff v has never been corrupted.
    virtual bool is_honest(NodeId v) const = 0;
    /// True iff v terminated (honest and permanently silent).
    virtual bool is_halted(NodeId v) const = 0;
    /// Honest v's intended broadcast this round (nullptr = silent).
    virtual const Message* intended_broadcast(NodeId v) const = 0;
    /// Full-information introspection into honest v's state (§1.1): its
    /// current agreement value and "decided" flag (false where the protocol
    /// has no such notion). Backed by the batch plane, so it works for
    /// per-node and SoA protocol implementations alike.
    virtual Bit current_value(NodeId v) const = 0;
    virtual bool current_decided(NodeId v) const = 0;

    // ---- actions ----
    /// Corrupts honest, non-halted v: discards v's broadcast for this round,
    /// moves v to the Byzantine set forever, consumes one budget unit.
    /// Returns the discarded broadcast so crash-style adversaries can
    /// selectively re-deliver it.
    virtual std::optional<Message> corrupt(NodeId v) = 0;
    /// Delivers m from Byzantine node `byz_from` to `to` this round.
    virtual void deliver_as(NodeId byz_from, NodeId to, const Message& m) = 0;
    /// Delivers m from `byz_from` to every node. O(1): stored as a pattern
    /// row, not n cell writes.
    void broadcast_as(NodeId byz_from, const Message& m) {
        split_as(byz_from, m, std::nullopt, n());
    }
    /// Threshold equivocation in O(1): delivers `low` to receivers below
    /// `boundary` and `high` to the rest (nullopt = silence for that side).
    /// The classic split attacks (split-vote, coin ruin, king killing,
    /// crash prefixes) are all this shape.
    virtual void split_as(NodeId byz_from, const std::optional<Message>& low,
                          const std::optional<Message>& high, NodeId boundary) = 0;
    // Silence is the default behaviour of a Byzantine sender.

protected:
    RoundControl() = default;
};

/// Adversary strategy interface. Implementations live in src/adversary.
class Adversary {
public:
    virtual ~Adversary() = default;

    /// Called once before round 0.
    virtual void on_start(NodeId /*n*/, Count /*budget*/) {}

    /// Called once per round, between honest sends and deliveries.
    virtual void act(RoundControl& ctl) = 0;
};

/// A do-nothing adversary (no corruptions); the honest-execution baseline.
class NullAdversary final : public Adversary {
public:
    void act(RoundControl&) override {}
};

/// Which delivery plane answers the receive beat's tally queries.
enum class PlaneMode : std::uint8_t {
    Flat,    ///< exact full-population tallies (RoundTally)
    Sparse,  ///< sampled per-receiver sender subsets (net/sparse_plane.hpp)
};

struct EngineConfig {
    NodeId n = 0;
    Count budget = 0;        ///< adversary's corruption budget t
    Round max_rounds = 0;    ///< hard stop if the protocol does not self-halt
    bool record_transcript = false;
    /// Route deliveries through the virtual DeliverySource adapter with
    /// per-sender tally loops — the reference path the flat plane is pinned
    /// against. Semantics identical, markedly slower.
    bool reference_delivery = false;
    /// Build the round tally with the word-packed popcount kernels
    /// (net/tally_kernels.hpp). `false` keeps the scalar byte-plane build —
    /// the oracle the packed path is pinned against (scenario key `simd=`).
    bool simd_tally = true;
    /// Sparse delivery mode: live receivers probe only `sample_degree`
    /// sampled sender edges per round and scale counts to estimates
    /// (degree >= n: dense exact walk, bit-identical to flat). Requires a
    /// packed tally (simd_tally), a sparse-capable batch
    /// (BatchProtocol::supports_sparse) and !reference_delivery.
    PlaneMode plane = PlaneMode::Flat;
    /// Sampled senders per receiver per round; 0 = kDefaultSampleDegree.
    Count sample_degree = 0;
    /// Seed of the replayable edge-sample streams (SeedTree purpose
    /// SparseTopology); only read in sparse mode.
    std::uint64_t sparse_seed = 0;
    /// Frozen index-derivation version of the sample streams (scenario key
    /// `sparse_stream=chain|counter`; see net/sparse_kernels.hpp). Part of
    /// the replayability contract: recorded sparse experiments replay only
    /// under the stream version that produced them. Only read in sparse
    /// mode.
    SparseStream sparse_stream = SparseStream::Counter;
    /// Intra-trial shard dispatcher (owned by the caller, e.g. the arena's
    /// sim::ShardPool; must outlive run()). When set, the send beat, the
    /// packed tally build, and the receive beat split into the dispatcher's
    /// word-aligned node ranges — provided the batch is shardable() and the
    /// engine is not in reference_delivery mode. Null = serial beats.
    IntraDispatcher* intra = nullptr;
    /// Per-trial wall-clock watchdog in milliseconds; 0 = off. When a round
    /// completes past the deadline with live honest nodes, the run stops
    /// with TrialOutcome::WatchdogTimeout instead of spinning toward the
    /// round cap — the guard for Las Vegas protocols whose expected-constant
    /// round count has an unbounded tail (scenario key `watchdog_ms`).
    std::uint32_t watchdog_ms = 0;
    /// Invoked at the top of every round, before honest sends. The
    /// resilience seam (sim/faults.hpp) hangs artificial beat delays here;
    /// null costs one branch per round.
    std::function<void(Round)> beat_probe;
};

/// Outcome of one simulated run.
struct RunResult {
    std::vector<Bit> outputs;      ///< indexed by node; valid where honest[v]
    std::vector<bool> honest;      ///< true = never corrupted
    std::vector<bool> halted;      ///< node self-terminated
    Round rounds = 0;              ///< rounds executed (never clamped)
    bool all_halted = false;       ///< every honest node self-terminated
    /// First-class termination taxonomy: Decided iff all_halted; otherwise
    /// WatchdogTimeout (wall-clock guard fired) or RoundCapExhausted (ran
    /// the full max_rounds with live honest nodes). Engine::run never
    /// reports Faulted — that classification belongs to the trial kernel
    /// (sim/workload.hpp), which owns fault recovery.
    TrialOutcome outcome = TrialOutcome::Decided;
    Metrics metrics;
    std::optional<Transcript> transcript;

    /// All surviving honest nodes output the same bit.
    bool agreement() const;
    /// The common output, if agreement() holds.
    std::optional<Bit> agreed_value() const;
    Count honest_count() const;
};

/// Drives one protocol execution against one adversary.
class Engine {
public:
    /// `nodes.size()` must equal cfg.n; `adversary` must outlive run().
    /// The node vector is wrapped in an engine-pooled PerNodeBatch adapter.
    Engine(EngineConfig cfg, std::vector<std::unique_ptr<HonestNode>> nodes,
           Adversary& adversary);
    /// Batch-plane form: `batch->n()` must equal cfg.n.
    Engine(EngineConfig cfg, std::unique_ptr<BatchProtocol> batch,
           Adversary& adversary);

    /// Rearms a finished (or fresh) engine for another run, reusing every
    /// internal buffer — the trial-reuse path of the Monte-Carlo runners.
    void reset(EngineConfig cfg, std::vector<std::unique_ptr<HonestNode>> nodes,
               Adversary& adversary);
    void reset(EngineConfig cfg, std::unique_ptr<BatchProtocol> batch,
               Adversary& adversary);

    /// Runs rounds until every honest node halts or cfg.max_rounds elapse.
    /// Single-shot per reset().
    RunResult run();

    /// Moves the node set back out (to a caller-owned pool for reinit);
    /// requires the per-node constructor/reset form. The engine keeps its
    /// adapter shell and is unusable until the next reset().
    std::vector<std::unique_ptr<HonestNode>> take_nodes();
    /// Moves the batch back out (batch form of take_nodes).
    std::unique_ptr<BatchProtocol> take_batch();

    /// Test hook: invoked after each round's deliveries with full state
    /// access, for invariant checking (Lemmas 2-4 property tests). Requires
    /// a per-node protocol (the batch must expose nodes()).
    using RoundObserver =
        std::function<void(Round, const std::vector<std::unique_ptr<HonestNode>>&,
                           const std::vector<bool>& honest_mask)>;
    void set_round_observer(RoundObserver obs) { observer_ = std::move(obs); }

private:
    /// The engine-backed RoundControl (defined in engine.cpp); nested, so it
    /// reads the engine's private state directly.
    class Ctl;

    bool is_honest(NodeId v) const { return buf_.is_honest(v); }
    bool is_halted(NodeId v) const;

    void common_reset(EngineConfig cfg, Adversary& adversary);
    /// The dispatcher for protocol beats, or nullptr for serial execution
    /// (no dispatcher configured, batch not shardable, or oracle mode).
    IntraDispatcher* shard_dispatcher() const;
    std::optional<Message> do_corrupt(NodeId v);
    void do_deliver(NodeId byz_from, NodeId to, const Message& m);
    void account_sends();
    void run_receives();

    EngineConfig cfg_;
    std::unique_ptr<BatchProtocol> batch_;
    PerNodeBatch* adapter_ = nullptr;  ///< set when batch_ is the pooled adapter
    Adversary* adversary_ = nullptr;

    Round round_ = 0;
    Count budget_used_ = 0;
    RoundBuffer buf_;      ///< flat per-round delivery state
    RoundTally tally_;     ///< engine-level shared tallies, rebuilt per round
    SparsePlane sparse_;   ///< sampled-edge plane (PlaneMode::Sparse only)
    std::vector<bool> honest_mask_;  ///< mirror of buf_ honesty for observers/results

    Metrics metrics_;
    std::optional<Transcript> transcript_;
    RoundObserver observer_;
    bool ran_ = false;
};

}  // namespace adba::net
