#include "support/table.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/contracts.hpp"

namespace adba {

void Table::set_header(std::vector<std::string> header) {
    ADBA_EXPECTS_MSG(rows_.empty(), "header must be set before rows");
    ADBA_EXPECTS(!header.empty());
    header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
    ADBA_EXPECTS_MSG(row.size() == header_.size(), "row arity must match header");
    rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

std::string Table::to_markdown() const {
    ADBA_EXPECTS_MSG(!header_.empty(), "table needs a header");
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c)
            os << " " << std::setw(static_cast<int>(width[c])) << std::left << row[c] << " |";
        os << "\n";
    };

    std::ostringstream os;
    os << "### " << title_ << "\n\n";
    emit_row(os, header_);
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) os << std::string(width[c] + 2, '-') << "|";
    os << "\n";
    for (const auto& row : rows_) emit_row(os, row);
    return os.str();
}

std::string Table::to_csv() const {
    ADBA_EXPECTS_MSG(!header_.empty(), "table needs a header");
    auto escape = [](const std::string& s) {
        if (s.find_first_of(",\"\n") == std::string::npos) return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"') out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    std::ostringstream os;
    for (std::size_t c = 0; c < header_.size(); ++c)
        os << (c ? "," : "") << escape(header_[c]);
    os << "\n";
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << escape(row[c]);
        os << "\n";
    }
    return os.str();
}

void Table::print(std::ostream& os) const { os << "\n" << to_markdown() << "\n"; }

std::string write_csv(const Table& table, const std::string& dir,
                      const std::string& slug) {
    ADBA_EXPECTS(!dir.empty());
    ADBA_EXPECTS(!slug.empty());
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    ADBA_ENSURES_MSG(!ec, "cannot create csv directory '" + dir + "': " + ec.message());
    const std::string path = (std::filesystem::path(dir) / (slug + ".csv")).string();
    // Crash-atomic: write the full document to a sibling temp file, then
    // rename over the target. A sweep killed mid-write can leave a stale
    // .tmp behind but never a truncated .csv.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        ADBA_ENSURES_MSG(out.is_open(),
                         "cannot open csv file '" + tmp + "' for writing");
        out << table.to_csv();
        out.flush();
        ADBA_ENSURES_MSG(out.good(), "write failed for csv file '" + tmp + "'");
    }
    std::filesystem::rename(tmp, path, ec);
    ADBA_ENSURES_MSG(!ec, "cannot rename '" + tmp + "' over '" + path +
                              "': " + ec.message());
    return path;
}

}  // namespace adba
