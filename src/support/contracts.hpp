// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.5/I.7: state pre- and postconditions; P.7: catch run-time errors early).
//
// Contracts are always on: simulation correctness is the product here, and
// the cost of a predicate test is negligible next to n^2 message delivery.
#pragma once

#include <stdexcept>
#include <string>

namespace adba {

/// Thrown when a precondition, postcondition, or internal invariant fails.
/// Deliberately a distinct type so tests can assert on contract violations.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file, int line,
                                const std::string& msg);
}  // namespace detail

}  // namespace adba

/// Precondition: the caller must guarantee `cond`.
#define ADBA_EXPECTS(cond)                                                              \
    do {                                                                                \
        if (!(cond)) ::adba::detail::contract_fail("Precondition", #cond, __FILE__, __LINE__, ""); \
    } while (false)

/// Precondition with a human-readable explanation.
#define ADBA_EXPECTS_MSG(cond, msg)                                                     \
    do {                                                                                \
        if (!(cond)) ::adba::detail::contract_fail("Precondition", #cond, __FILE__, __LINE__, (msg)); \
    } while (false)

/// Postcondition / invariant: the callee must guarantee `cond`.
#define ADBA_ENSURES(cond)                                                              \
    do {                                                                                \
        if (!(cond)) ::adba::detail::contract_fail("Postcondition", #cond, __FILE__, __LINE__, ""); \
    } while (false)

#define ADBA_ENSURES_MSG(cond, msg)                                                     \
    do {                                                                                \
        if (!(cond)) ::adba::detail::contract_fail("Postcondition", #cond, __FILE__, __LINE__, (msg)); \
    } while (false)
