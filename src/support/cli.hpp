// Minimal command-line flag parsing for examples and bench binaries.
//
// Supports `--name=value` and `--name value` forms plus `--flag` booleans.
// Unrecognized google-benchmark flags (--benchmark_*) are passed through
// untouched so bench binaries can share argv with benchmark::Initialize.
//
// Strict mode: every accessor records which key it was asked for; a binary
// calls `check_unused()` after its last read and gets a loud failure for any
// flag nothing ever queried — so a typo like `--trails=50` aborts the run
// instead of silently proceeding with defaults.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace adba {

/// The closest candidate within edit distance 2 of `key`, or empty when
/// nothing is close — the "did you mean ...?" helper behind Cli strict mode,
/// also used for registry/workload name errors.
std::string closest_match(const std::string& key,
                          const std::vector<std::string>& candidates);

/// Parsed command-line options with typed, defaulted accessors.
class Cli {
public:
    /// Parses argv, consuming recognized `--key[=value]` pairs.
    /// Arguments beginning with `--benchmark` are left for google-benchmark.
    Cli(int argc, char** argv);

    bool has(const std::string& key) const;
    std::string get(const std::string& key, const std::string& fallback) const;
    std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
    double get_double(const std::string& key, double fallback) const;
    /// True for "true"/"1"/"yes"/"on" (so `--batch=on|off` style toggles
    /// work); any other present value is false.
    bool get_bool(const std::string& key, bool fallback) const;

    /// Comma-separated integer list, e.g. `--t=4,8,16`.
    std::vector<std::int64_t> get_int_list(const std::string& key,
                                           std::vector<std::int64_t> fallback) const;

    /// Remaining untouched arguments (argv[0] + benchmark flags + positionals).
    const std::vector<std::string>& passthrough() const { return passthrough_; }

    /// Throws ContractViolation when any parsed `--flag` was never queried by
    /// an accessor, naming the offenders and suggesting the closest known
    /// key. Call after the last flag read (benches do this inside
    /// benchutil::run_benchmark_tail).
    void check_unused() const;

private:
    std::map<std::string, std::string> kv_;
    std::vector<std::string> passthrough_;
    mutable std::set<std::string> queried_;
};

}  // namespace adba
