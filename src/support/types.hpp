// Fundamental vocabulary types shared by every subsystem.
//
// The paper's model: n nodes with globally known unique IDs 0..n-1 (the paper
// uses 1..n; we use 0-based indices and translate committee arithmetic
// accordingly), binary inputs, synchronous rounds.
#pragma once

#include <cstdint>
#include <limits>

namespace adba {

/// Index of a node in the complete network; dense in [0, n).
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Zero-based global round counter maintained by the simulator.
using Round = std::uint32_t;

/// Zero-based phase counter of a phase-structured protocol.
using Phase = std::uint32_t;

/// A binary agreement value. Only 0 and 1 are meaningful.
using Bit = std::uint8_t;

/// A ±1 coin contribution as flipped by Algorithm 1/2 participants.
/// 0 never appears in an honest flip; it is used by the wire encoding to
/// mean "no coin contribution in this message".
using CoinSign = std::int8_t;

/// Number of simulation trials, corruption budgets, etc.
using Count = std::uint32_t;

}  // namespace adba
