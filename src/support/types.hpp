// Fundamental vocabulary types shared by every subsystem.
//
// The paper's model: n nodes with globally known unique IDs 0..n-1 (the paper
// uses 1..n; we use 0-based indices and translate committee arithmetic
// accordingly), binary inputs, synchronous rounds.
#pragma once

#include <cstdint>
#include <limits>

namespace adba {

/// Index of a node in the complete network; dense in [0, n).
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Zero-based global round counter maintained by the simulator.
using Round = std::uint32_t;

/// Zero-based phase counter of a phase-structured protocol.
using Phase = std::uint32_t;

/// A binary agreement value. Only 0 and 1 are meaningful.
using Bit = std::uint8_t;

/// A ±1 coin contribution as flipped by Algorithm 1/2 participants.
/// 0 never appears in an honest flip; it is used by the wire encoding to
/// mean "no coin contribution in this message".
using CoinSign = std::int8_t;

/// Number of simulation trials, corruption budgets, etc.
using Count = std::uint32_t;

/// How one simulated trial ended — the first-class alternative to inferring
/// termination from round counts. Every layer that touches a trial result
/// (Engine::run, the four workload traits, aggregate merges, the CSV schema)
/// carries this verbatim, so a run that hit its round cap or watchdog can
/// never be mistaken for one that decided.
enum class TrialOutcome : std::uint8_t {
    Decided,           ///< every honest node self-terminated (or the
                       ///< protocol's fixed round budget IS its full length)
    RoundCapExhausted, ///< hit max_rounds with live honest nodes — the
                       ///< w.h.p. failure tail, reported, never clamped away
    WatchdogTimeout,   ///< exceeded the per-trial wall-clock watchdog
                       ///< (EngineConfig::watchdog_ms; Las Vegas tail guard)
    Faulted,           ///< an injected/unrecoverable harness fault consumed
                       ///< the trial; its metrics are absent from samples
};

inline const char* to_string(TrialOutcome o) {
    switch (o) {
        case TrialOutcome::Decided: return "decided";
        case TrialOutcome::RoundCapExhausted: return "round-cap-exhausted";
        case TrialOutcome::WatchdogTimeout: return "watchdog-timeout";
        case TrialOutcome::Faulted: return "faulted";
    }
    return "?";
}

}  // namespace adba
