// Descriptive statistics over simulation trial outcomes.
//
// Two flavors:
//  * RunningStats — O(1) memory Welford accumulator (mean / stddev / extrema)
//    for hot loops that never need quantiles.
//  * Samples      — stores every observation; adds exact quantiles. Used by
//    the experiment harness where trial counts are modest.
#pragma once

#include <cstddef>
#include <vector>

namespace adba {

/// Welford single-pass accumulator: numerically stable mean and variance.
class RunningStats {
public:
    void add(double x);

    /// Folds another accumulator in (Chan et al. pairwise combine). The
    /// result summarizes the union of both observation streams. Note: only
    /// numerically close to a single serial stream, not bit-identical — the
    /// executor's exactness guarantee covers Samples-based aggregates; route
    /// any RunningStats through Samples first if bit-exactness matters.
    void merge(const RunningStats& other);

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }
    /// Unbiased sample variance; 0 for fewer than two observations.
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Stored-sample statistics with exact empirical quantiles.
class Samples {
public:
    void add(double x);
    void reserve(std::size_t n) { xs_.reserve(n); }

    /// Appends another sample set, preserving its current storage order.
    /// Merging per-chunk partials in chunk-index order therefore rebuilds
    /// exactly the observation sequence a single serial pass would have
    /// produced — the keystone of the executor's bit-identical aggregates.
    /// Caveat: quantile()/min()/max() lazily SORT the buffer, so querying a
    /// partial before merging it silently replaces insertion order with
    /// sorted order; inside executor chunk functions, only add() to partials.
    void merge(const Samples& other);

    std::size_t count() const { return xs_.size(); }
    bool empty() const { return xs_.empty(); }
    double mean() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const;
    /// Empirical quantile, q in [0,1], by the nearest-rank method.
    double quantile(double q) const;
    double median() const { return quantile(0.5); }

    const std::vector<double>& values() const { return xs_; }

private:
    /// Sorts the sample buffer if dirty (quantiles need order).
    void ensure_sorted() const;

    mutable std::vector<double> xs_;
    mutable bool sorted_ = true;
};

}  // namespace adba
