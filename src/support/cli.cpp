#include "support/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "support/contracts.hpp"

namespace adba {

Cli::Cli(int argc, char** argv) {
    if (argc > 0) passthrough_.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--benchmark", 0) == 0 || arg.rfind("--", 0) != 0) {
            passthrough_.push_back(std::move(arg));
            continue;
        }
        std::string body = arg.substr(2);
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            kv_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            kv_[body] = argv[++i];
        } else {
            kv_[body] = "true";  // bare boolean flag
        }
    }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    return std::stoll(it->second);
}

double Cli::get_double(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    return std::stod(it->second);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& key,
                                            std::vector<std::int64_t> fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    std::vector<std::int64_t> out;
    const std::string& s = it->second;
    std::size_t pos = 0;
    while (pos < s.size()) {
        auto comma = s.find(',', pos);
        if (comma == std::string::npos) comma = s.size();
        out.push_back(std::stoll(s.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    ADBA_ENSURES_MSG(!out.empty(), "empty list for --" + key);
    return out;
}

}  // namespace adba
