#include "support/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "support/contracts.hpp"

namespace adba {

namespace {

// Edit distance for "--trails -> did you mean --trials?" suggestions.
std::size_t levenshtein(const std::string& a, const std::string& b) {
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

}  // namespace

std::string closest_match(const std::string& key,
                          const std::vector<std::string>& candidates) {
    std::string best;
    std::size_t best_dist = 3;  // only suggest close matches
    for (const auto& candidate : candidates) {
        const std::size_t d = levenshtein(key, candidate);
        if (d < best_dist) {
            best_dist = d;
            best = candidate;
        }
    }
    return best;
}

Cli::Cli(int argc, char** argv) {
    if (argc > 0) passthrough_.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--benchmark", 0) == 0 || arg.rfind("--", 0) != 0) {
            passthrough_.push_back(std::move(arg));
            continue;
        }
        std::string body = arg.substr(2);
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            kv_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            kv_[body] = argv[++i];
        } else {
            kv_[body] = "true";  // bare boolean flag
        }
    }
}

bool Cli::has(const std::string& key) const {
    queried_.insert(key);
    return kv_.count(key) > 0;
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
    queried_.insert(key);
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
    queried_.insert(key);
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    return std::stoll(it->second);
}

double Cli::get_double(const std::string& key, double fallback) const {
    queried_.insert(key);
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    return std::stod(it->second);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
    queried_.insert(key);
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes" ||
           it->second == "on";
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& key,
                                            std::vector<std::int64_t> fallback) const {
    queried_.insert(key);
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    std::vector<std::int64_t> out;
    const std::string& s = it->second;
    std::size_t pos = 0;
    while (pos < s.size()) {
        auto comma = s.find(',', pos);
        if (comma == std::string::npos) comma = s.size();
        out.push_back(std::stoll(s.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    ADBA_ENSURES_MSG(!out.empty(), "empty list for --" + key);
    return out;
}

void Cli::check_unused() const {
    std::string msg;
    for (const auto& [key, value] : kv_) {
        if (queried_.count(key)) continue;
        if (!msg.empty()) msg += "; ";
        msg += "unrecognized flag --" + key;
        const std::string best = closest_match(
            key, std::vector<std::string>(queried_.begin(), queried_.end()));
        if (!best.empty()) msg += " (did you mean --" + best + "?)";
    }
    if (msg.empty()) return;
    std::string known;
    for (const auto& key : queried_) known += (known.empty() ? "--" : ", --") + key;
    throw ContractViolation(msg + ". Recognized flags: " +
                            (known.empty() ? "(none)" : known));
}

}  // namespace adba
