// Small integer/real math helpers used by committee sizing and the
// closed-form bound curves. Header-only; all constexpr-friendly.
#pragma once

#include <cmath>
#include <cstdint>

#include "support/contracts.hpp"

namespace adba {

/// ceil(a / b) for positive integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
    return (a + b - 1) / b;
}

/// ceil(log2(x)) for x >= 1; returns 0 for x == 1.
constexpr std::uint32_t ceil_log2(std::uint64_t x) {
    std::uint32_t r = 0;
    std::uint64_t p = 1;
    while (p < x) {
        p <<= 1;
        ++r;
    }
    return r;
}

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t floor_log2(std::uint64_t x) {
    std::uint32_t r = 0;
    while (x >>= 1) ++r;
    return r;
}

/// Integer square root: floor(sqrt(x)).
constexpr std::uint64_t isqrt(std::uint64_t x) {
    if (x < 2) return x;
    std::uint64_t lo = 1, hi = x;
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo + 1) / 2;
        if (mid <= x / mid)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

/// log2 of a real quantity, guarded for the n=1 edge (log2(1)=0 would divide
/// by zero in the t/log n bound); clamps to >= 1.
inline double safe_log2(double x) {
    ADBA_EXPECTS(x >= 1.0);
    const double l = std::log2(x);
    return l < 1.0 ? 1.0 : l;
}

}  // namespace adba
