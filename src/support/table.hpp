// Plain-text table rendering for experiment output.
//
// Every bench binary prints its reproduction table through this class so the
// repository's tables share one format (aligned columns, optional CSV dump),
// making EXPERIMENTS.md's paper-vs-measured comparison mechanical.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace adba {

/// Column-aligned table with a title; renders as GitHub-flavored Markdown
/// (also valid aligned plain text) or CSV.
class Table {
public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /// Sets the header row. Must be called before any add_row.
    void set_header(std::vector<std::string> header);

    /// Appends a data row; must have the same arity as the header.
    void add_row(std::vector<std::string> row);

    /// Formats a double with the given precision (fixed notation).
    static std::string num(double v, int precision = 2);
    /// Formats an integer-valued count.
    static std::string num(std::uint64_t v);

    std::size_t rows() const { return rows_.size(); }
    const std::string& title() const { return title_; }

    /// Renders as an aligned Markdown table.
    std::string to_markdown() const;
    /// Renders as CSV (no title line).
    std::string to_csv() const;
    /// Prints Markdown rendering to the stream, surrounded by blank lines.
    void print(std::ostream& os) const;

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Writes `table.to_csv()` to `<dir>/<slug>.csv`, creating `dir` (including
/// parents) when absent. Returns the written path. Throws ContractViolation
/// when the directory or the file cannot be created — a reproduction table
/// must never be dropped silently.
std::string write_csv(const Table& table, const std::string& dir,
                      const std::string& slug);

}  // namespace adba
