#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace adba {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n = static_cast<double>(n_ + other.n_);
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / n;
    mean_ += delta * static_cast<double>(other.n_) / n;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
    ADBA_EXPECTS(n_ > 0);
    return min_;
}

double RunningStats::max() const {
    ADBA_EXPECTS(n_ > 0);
    return max_;
}

void Samples::add(double x) {
    xs_.push_back(x);
    sorted_ = xs_.size() <= 1;
}

void Samples::merge(const Samples& other) {
    if (other.xs_.empty()) return;
    xs_.insert(xs_.end(), other.xs_.begin(), other.xs_.end());
    sorted_ = xs_.size() <= 1;
}

void Samples::ensure_sorted() const {
    if (!sorted_) {
        std::sort(xs_.begin(), xs_.end());
        sorted_ = true;
    }
}

double Samples::mean() const {
    ADBA_EXPECTS(!xs_.empty());
    double s = 0.0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
}

double Samples::stddev() const {
    if (xs_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double x : xs_) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double Samples::min() const {
    ADBA_EXPECTS(!xs_.empty());
    ensure_sorted();
    return xs_.front();
}

double Samples::max() const {
    ADBA_EXPECTS(!xs_.empty());
    ensure_sorted();
    return xs_.back();
}

double Samples::sum() const {
    double s = 0.0;
    for (double x : xs_) s += x;
    return s;
}

double Samples::quantile(double q) const {
    ADBA_EXPECTS(!xs_.empty());
    ADBA_EXPECTS(q >= 0.0 && q <= 1.0);
    ensure_sorted();
    if (xs_.size() == 1) return xs_.front();
    const double rank = q * static_cast<double>(xs_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= xs_.size()) return xs_.back();
    return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

}  // namespace adba
