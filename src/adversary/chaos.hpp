// Randomized fuzzing adversary: corrupts at random moments and delivers
// per-recipient random (possibly ill-formed) messages.
//
// Not a strong attack — its job is failure injection: the engine and every
// protocol's receive path must tolerate arbitrary kinds, stale phases, and
// nonsense coin values without violating safety invariants or contracts.
#pragma once

#include <vector>

#include "net/engine.hpp"
#include "rand/rng.hpp"

namespace adba::adv {

struct ChaosConfig {
    Count max_corruptions = 0;   ///< self-cap (<= engine budget)
    double corrupt_prob = 0.2;   ///< per-round probability of one new corruption
    double deliver_prob = 0.7;   ///< per (byz, receiver) probability of a message
};

class ChaosAdversary final : public net::Adversary {
public:
    ChaosAdversary(ChaosConfig cfg, Xoshiro256 rng) : cfg_(cfg), rng_(rng) {}

    void act(net::RoundControl& ctl) override;

private:
    ChaosConfig cfg_;
    Xoshiro256 rng_;
    std::vector<NodeId> corrupted_;
};

}  // namespace adba::adv
