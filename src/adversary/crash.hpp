// Adaptive crash adversary — the Bar-Joseph-Ben-Or fault model (their
// Ω(t/sqrt(n log n)) lower bound, Theorem 1, holds already for adaptive
// rushing CRASH faults).
//
// A crash is a restricted corruption: the victim's intended broadcast is
// delivered to a prefix of receivers ("it crashed mid-broadcast"), then the
// node is silent forever. Implemented on top of the Byzantine corruption
// primitive by re-delivering the discarded honest message to the chosen
// prefix and never speaking again.
//
// Two modes:
//  * Random       — crash uniformly random victims at random rounds
//    (background failure injection);
//  * TargetedCoin — the BJBO-flavored adaptive attack on committee coins:
//    after seeing the current committee's flips, crash majority-sign
//    flippers to drag the honest sum toward the adversary's goal; use one
//    final partial (prefix) delivery to make receivers straddle the sign
//    boundary, splitting the coin with crash faults alone.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "net/engine.hpp"
#include "rand/rng.hpp"

namespace adba::adv {

enum class CrashMode : std::uint8_t { Random, TargetedCoin };

struct CrashConfig {
    Count max_crashes = 0;     ///< self-cap (<= engine budget)
    CrashMode mode = CrashMode::Random;
    double crash_prob = 0.15;  ///< Random mode: per-round crash probability
    /// TargetedCoin mode: the committee schedule of the protocol under
    /// attack (public information — derived from IDs).
    std::optional<core::BlockSchedule> schedule;
};

class CrashAdversary final : public net::Adversary {
public:
    CrashAdversary(CrashConfig cfg, Xoshiro256 rng) : cfg_(cfg), rng_(rng) {}

    void act(net::RoundControl& ctl) override;

    Count crashes_used() const { return crashes_; }

private:
    void act_random(net::RoundControl& ctl);
    void act_targeted(net::RoundControl& ctl);
    /// Crash v, delivering its broadcast to receivers [0, prefix).
    void crash_prefix(net::RoundControl& ctl, NodeId v, NodeId prefix);

    CrashConfig cfg_;
    Xoshiro256 rng_;
    Count crashes_ = 0;
};

}  // namespace adba::adv
