#include "adversary/balancer.hpp"

#include <algorithm>

namespace adba::adv {

void MajorityBalancerAdversary::act(net::RoundControl& ctl) {
    const NodeId n = ctl.n();

    // Observe the round's honest broadcasts (rushing).
    Count tally[2] = {0, 0};
    std::vector<NodeId> side[2];
    for (NodeId v = 0; v < n; ++v) {
        if (!ctl.is_honest(v) || ctl.is_halted(v)) continue;
        const auto& m = ctl.intended_broadcast(v);
        if (!m) continue;
        const Bit b = m->val & 1;
        ++tally[b];
        side[b].push_back(v);
    }

    // Cancel the drift: corrupt majority-side nodes until balanced (their
    // broadcasts vanish from the sample pool this round and forever).
    Count spent_this_round = 0;
    while (tally[0] != tally[1]) {
        if (used_ >= cfg_.max_corruptions || ctl.budget_left() == 0) break;
        if (cfg_.per_round_cap != 0 && spent_this_round >= cfg_.per_round_cap) break;
        const Bit maj = tally[1] > tally[0] ? Bit{1} : Bit{0};
        if (side[maj].empty()) break;
        ctl.corrupt(side[maj].back());
        corrupted_.push_back(side[maj].back());
        side[maj].pop_back();
        --tally[maj];
        ++used_;
        ++spent_this_round;
    }

    // All Byzantine identities broadcast the minority value.
    const Bit minority = tally[0] <= tally[1] ? Bit{0} : Bit{1};
    net::Message m;
    m.kind = net::MsgKind::Vote1;
    m.phase = ctl.round();
    m.val = minority;
    for (NodeId v : corrupted_) ctl.broadcast_as(v, m);
}

}  // namespace adba::adv
