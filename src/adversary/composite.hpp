// Adversary combinators.
//
// SwitchAdversary chains two strategies over time: A acts for rounds
// [0, switch_round), B from switch_round on. The corruption budget is the
// engine's single shared pool, so corruptions A spends are gone for B —
// exactly the economics a real adaptive adversary faces. Nodes corrupted by
// A remain Byzantine under B (B rediscovers them through RoundControl).
#pragma once

#include <memory>

#include "net/engine.hpp"
#include "support/contracts.hpp"

namespace adba::adv {

class SwitchAdversary final : public net::Adversary {
public:
    SwitchAdversary(std::unique_ptr<net::Adversary> first,
                    std::unique_ptr<net::Adversary> second, Round switch_round)
        : first_(std::move(first)), second_(std::move(second)),
          switch_round_(switch_round) {
        ADBA_EXPECTS(first_ != nullptr && second_ != nullptr);
    }

    void on_start(NodeId n, Count budget) override {
        first_->on_start(n, budget);
        second_->on_start(n, budget);
    }

    void act(net::RoundControl& ctl) override {
        if (ctl.round() < switch_round_)
            first_->act(ctl);
        else
            second_->act(ctl);
    }

private:
    std::unique_ptr<net::Adversary> first_;
    std::unique_ptr<net::Adversary> second_;
    Round switch_round_;
};

}  // namespace adba::adv
