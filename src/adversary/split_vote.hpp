// Split-vote adversary: protocol-agnostic equivocation that tries to keep
// honest tallies straddling the decision thresholds.
//
// Corrupts its allotment up front (like a static adversary) and then, every
// round, sends value 0 to one half of the receivers and value 1 to the
// other, with matching coin equivocation in round-2 slots. Weaker than the
// schedule-aware WorstCaseAdversary (it wastes no corruptions on coins) but
// attacks any vote-threshold protocol, including Phase-King rounds.
#pragma once

#include <vector>

#include "net/engine.hpp"
#include "rand/rng.hpp"

namespace adba::adv {

class SplitVoteAdversary final : public net::Adversary {
public:
    SplitVoteAdversary(Count q, Xoshiro256 rng) : q_(q), rng_(rng) {}

    void on_start(NodeId n, Count budget) override;
    void act(net::RoundControl& ctl) override;

private:
    Count q_;
    Xoshiro256 rng_;
    std::vector<NodeId> corrupted_;
};

}  // namespace adba::adv
