// Worst-case adaptive rushing adversary against the Rabin-skeleton
// protocols (Algorithm 3 and the Chor-Coan baselines).
//
// This is the strategy the paper's analysis quantifies over. Per phase:
//
//  Round 1 (votes): if some value's honest tally reaches the n-t quorum and
//  the margin is affordable, corrupt just enough of that bloc — preferring
//  current-committee members, whose corpses double as coin equivocators —
//  to block the quorum (delays Lemma 2's lock-in). Otherwise stay silent:
//  Byzantine votes can only help honest tallies cross thresholds.
//
//  Round 2 (decided + coin): rushing — the adversary reads every honest
//  round-2 broadcast, including the committee's ±1 flips, before acting.
//   1. If more than t honest nodes are decided, corrupt (d - t) of them so
//      no receiver can reach the t+1 / n-t decided thresholds (prevents
//      Case 1/Case 2 convergence).
//   2. Ruin the committee coin, choosing the cheaper of:
//       * SPLIT — corrupt majority-sign flippers until the surviving honest
//         sum S' sits within the Byzantine equivocation margin
//         (-M <= S' <= M-1), then deliver all-(+1) coins to half the
//         receivers and all-(-1) to the rest: receivers straddle the >=0
//         rule and adopt different values (chosen balanced, keeping future
//         phases cheap to ruin);
//       * OPPOSITE — when some honest nodes are decided on b_i, push every
//         receiver's sum to the 1-b_i side (free whenever the honest flips
//         already landed against b_i).
//      Each corruption moves the margin by 2 (removes a flip AND adds an
//      equivocator) — so ruining a phase costs about |S|/2 ~ ½·sqrt(s)
//      corruptions, which is precisely the counting argument behind
//      Theorem 2: budget t ruins ~2t/sqrt(s) phases and no more.
//   3. If the phase cannot be ruined within budget, spend nothing.
//
// The strategy self-caps at `max_corruptions` (the q < t of Theorem 2's
// early-termination clause) independent of the engine budget.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "net/engine.hpp"
#include "support/types.hpp"

namespace adba::adv {

struct WorstCaseConfig {
    Count t = 0;                ///< protocol threshold parameter
    Count max_corruptions = 0;  ///< actual corruption cap q (<= engine budget)
    core::BlockSchedule schedule;
    bool block_round1_quorums = true;
    /// Engine round at which the phase-structured protocol starts (e.g. 2
    /// when wrapped by the Turpin-Coan prelude). Rounds before the offset
    /// are ignored.
    Round round_offset = 0;
};

class WorstCaseAdversary final : public net::Adversary {
public:
    explicit WorstCaseAdversary(WorstCaseConfig cfg) : cfg_(cfg) {}

    void act(net::RoundControl& ctl) override;

    Count corruptions_used() const { return used_; }
    /// Number of phases whose coin this adversary successfully ruined.
    Count phases_ruined() const { return ruined_; }

private:
    void act_round1(net::RoundControl& ctl, Phase p);
    void act_round2(net::RoundControl& ctl, Phase p);
    Count remaining(const net::RoundControl& ctl) const;
    void corrupt_tracked(net::RoundControl& ctl, NodeId v);

    WorstCaseConfig cfg_;
    Count used_ = 0;
    Count ruined_ = 0;
};

}  // namespace adba::adv
