#include "adversary/crash.hpp"

#include <vector>

#include "support/contracts.hpp"

namespace adba::adv {

void CrashAdversary::act(net::RoundControl& ctl) {
    if (cfg_.mode == CrashMode::Random)
        act_random(ctl);
    else
        act_targeted(ctl);
}

void CrashAdversary::crash_prefix(net::RoundControl& ctl, NodeId v, NodeId prefix) {
    ADBA_EXPECTS(crashes_ < cfg_.max_crashes);
    ADBA_EXPECTS(ctl.budget_left() > 0);
    const std::optional<net::Message> intended = ctl.corrupt(v);
    ++crashes_;
    if (intended && prefix > 0)
        ctl.split_as(v, intended, std::nullopt, prefix);  // mid-broadcast cut
    // Silent forever after (crash adversaries never re-deliver).
}

void CrashAdversary::act_random(net::RoundControl& ctl) {
    if (crashes_ >= cfg_.max_crashes || ctl.budget_left() == 0) return;
    if (!rng_.bernoulli(cfg_.crash_prob)) return;
    const NodeId n = ctl.n();
    std::vector<NodeId> candidates;
    for (NodeId v = 0; v < n; ++v)
        if (ctl.is_honest(v) && !ctl.is_halted(v)) candidates.push_back(v);
    if (candidates.empty()) return;
    const NodeId victim = candidates[rng_.below(candidates.size())];
    const auto prefix = static_cast<NodeId>(rng_.below(n + 1));
    crash_prefix(ctl, victim, prefix);
}

void CrashAdversary::act_targeted(net::RoundControl& ctl) {
    ADBA_EXPECTS_MSG(cfg_.schedule.has_value(), "TargetedCoin mode needs a schedule");
    if ((ctl.round() % 2) != 1) return;  // flips fly in round 2 of each phase
    const Phase p = ctl.round() / 2;
    const auto& sched = *cfg_.schedule;
    const auto [first, last] = sched.range(sched.committee_of_phase(p));

    // Honest committee flip sum and the flippers by sign.
    std::int64_t sum = 0;
    std::vector<NodeId> pos, neg;
    for (NodeId u = first; u < last; ++u) {
        if (!ctl.is_honest(u) || ctl.is_halted(u)) continue;
        const auto& m = ctl.intended_broadcast(u);
        if (!m || m->coin == 0) continue;
        if (m->coin > 0) {
            ++sum;
            pos.push_back(u);
        } else {
            --sum;
            neg.push_back(u);
        }
    }

    auto budget = [&] {
        const Count left = cfg_.max_crashes - crashes_;
        return std::min<Count>(left, ctl.budget_left());
    };

    // Split the coin with crash faults alone by straddling the >=0 tie rule.
    // For S >= 0: crash S+1 of the +1 flippers, the LAST one mid-broadcast
    // (delivered to a prefix only). Survivors sum to S - (S+1) = -1; prefix
    // receivers also get the partial +1 and see 0 (coin 1), everyone else
    // sees -1 (coin 0). For S < 0 symmetrically: |S| crashes of -1 flippers
    // with the last partial (survivors sum to 0 -> coin 1; prefix receivers
    // see -1 -> coin 0). Best effort when flippers or budget run short.
    auto& side = sum >= 0 ? pos : neg;
    const auto needed = static_cast<std::uint64_t>(sum >= 0 ? sum + 1 : -sum);
    // Crash-only limitation: a committee whose flips cannot be dragged
    // across the >=0 tie boundary (e.g. unanimous +1 with too few flippers)
    // is crash-immune; spend nothing on a doomed phase.
    if (needed > side.size() || needed > budget()) return;
    for (std::uint64_t k = 0; k < needed; ++k) {
        const bool final_crash = k + 1 == needed;
        crash_prefix(ctl, side.back(), final_crash ? ctl.n() / 2 : 0);
        side.pop_back();
    }
}

}  // namespace adba::adv
