#include "adversary/split_vote.hpp"

#include <numeric>

#include "support/contracts.hpp"

namespace adba::adv {

void SplitVoteAdversary::on_start(NodeId n, Count budget) {
    ADBA_EXPECTS_MSG(q_ <= budget, "split-vote corrupt set exceeds engine budget");
    std::vector<NodeId> ids(n);
    std::iota(ids.begin(), ids.end(), NodeId{0});
    for (Count i = 0; i < q_; ++i) {
        const auto j = i + static_cast<NodeId>(rng_.below(n - i));
        std::swap(ids[i], ids[j]);
    }
    corrupted_.assign(ids.begin(), ids.begin() + q_);
}

void SplitVoteAdversary::act(net::RoundControl& ctl) {
    if (ctl.round() == 0) {
        for (NodeId v : corrupted_) ctl.corrupt(v);
    }
    const Phase p = ctl.round() / 2;
    const bool round2 = (ctl.round() % 2) == 1;
    const NodeId half = ctl.n() / 2;
    net::Message low;  // side 0 below the boundary
    low.kind = round2 ? net::MsgKind::Vote2 : net::MsgKind::Vote1;
    low.phase = p;
    low.val = 0;
    low.coin = round2 ? CoinSign{-1} : CoinSign{0};
    net::Message high = low;  // side 1 at and above it
    high.val = 1;
    high.coin = round2 ? CoinSign{1} : CoinSign{0};
    for (NodeId v : corrupted_) ctl.split_as(v, low, high, half);
}

}  // namespace adba::adv
