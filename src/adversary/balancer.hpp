// Majority-balancer adversary for sampling/drift protocols (E11).
//
// Against sampling-majority the adversary's only lever is holding the
// honest value split at 50/50: once a clear majority forms, sampling
// amplifies it exponentially. The random-walk drift of the split is
// Θ(sqrt(n)) per round, so the balancer must spend ~sqrt(n) corruptions per
// round to cancel it (corrupting majority-side nodes after seeing the
// round's broadcasts — rushing) — a budget of q sustains ~q/sqrt(n) rounds
// of deadlock. This is the same sqrt(n) economics as the committee-coin
// attack, and the Bar-Joseph-Ben-Or lower-bound mechanism in miniature.
//
// Byzantine senders additionally broadcast the current minority value, so
// any sampler that happens to pick one of them is pulled toward balance.
#pragma once

#include <vector>

#include "net/engine.hpp"
#include "support/types.hpp"

namespace adba::adv {

struct BalancerConfig {
    Count max_corruptions = 0;  ///< total corruption budget q
    /// Upper bound on corruptions per round (0 = unlimited up to budget);
    /// models an adversary pacing its spend.
    Count per_round_cap = 0;
};

class MajorityBalancerAdversary final : public net::Adversary {
public:
    explicit MajorityBalancerAdversary(BalancerConfig cfg) : cfg_(cfg) {}

    void act(net::RoundControl& ctl) override;

    Count corruptions_used() const { return used_; }

private:
    BalancerConfig cfg_;
    Count used_ = 0;
    std::vector<NodeId> corrupted_;
};

}  // namespace adba::adv
