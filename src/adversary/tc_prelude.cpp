#include "adversary/tc_prelude.hpp"

#include <map>

namespace adba::adv {

void TcPreludeAdversary::act(net::RoundControl& ctl) {
    const NodeId n = ctl.n();
    const Count quorum = n - budget_;  // n - t: the prelude's threshold

    if (ctl.round() == 0) {
        // Rushing: read the honest word distribution first, then corrupt.
        std::map<net::Word, Count> tally;
        for (NodeId v = 0; v < n; ++v) {
            if (!ctl.is_honest(v)) continue;
            const auto& m = ctl.intended_broadcast(v);
            if (m && m->kind == net::MsgKind::TCValue) ++tally[m->word];
        }
        plurality_ = 0;
        Count best = 0;
        for (const auto& [word, cnt] : tally) {
            if (cnt > best) {
                best = cnt;
                plurality_ = word;
            }
        }
        // Corrupt nodes OUTSIDE the plurality bloc first: the attack needs
        // the honest plurality count intact to push receivers over the
        // quorum.
        auto holds_plurality = [&](NodeId v) {
            const auto& m = ctl.intended_broadcast(v);
            return m && m->kind == net::MsgKind::TCValue && m->word == plurality_;
        };
        for (int pass = 0; pass < 2; ++pass) {
            for (NodeId v = 0; v < n && corrupted_.size() < q_; ++v) {
                if (!ctl.is_honest(v) || ctl.budget_left() == 0) continue;
                if ((pass == 0) == holds_plurality(v)) continue;
                ctl.corrupt(v);
                corrupted_.push_back(v);
            }
        }
        const auto q_live = static_cast<Count>(corrupted_.size());
        // Recount the honest plurality bloc post-corruption.
        Count p_live = 0;
        for (NodeId v = 0; v < n; ++v)
            if (ctl.is_honest(v) && holds_plurality(v)) ++p_live;

        // Boundary split: feasible iff the plurality bloc is inside the
        // adversary's reach of the quorum (p < quorum <= p + q). Target
        // EXACTLY quorum-1 honest receivers: they see p+q >= quorum and echo
        // the plurality word; the rest see p < quorum and echo ⊥. That puts
        // the honest echo count at quorum-1 — one short — so round 1's
        // forged echoes decide, per receiver, which side of the binary
        // threshold it lands on.
        split_armed_ = p_live < quorum && p_live + q_live >= quorum && quorum >= 1;
        echo_targets_.clear();
        if (split_armed_) {
            for (NodeId v = 0; v < n && echo_targets_.size() < quorum - 1; ++v)
                if (ctl.is_honest(v)) echo_targets_.push_back(v);
        }
        std::vector<bool> is_target(n, false);
        for (NodeId v : echo_targets_) is_target[v] = true;

        for (NodeId b : corrupted_) {
            for (NodeId to = 0; to < n; ++to) {
                net::Message m;
                m.kind = net::MsgKind::TCValue;
                m.word = (split_armed_ && is_target[to]) ? plurality_
                                                         : 0x5A5A0000u + to;
                ctl.deliver_as(b, to, m);
            }
        }
        return;
    }

    if (ctl.round() == 1) {
        // The quorum-1 honest echoers broadcast the plurality word to all.
        // Forge additional echoes toward every OTHER honest receiver so the
        // binary inputs split roughly in half.
        bool push = true;
        for (NodeId b : corrupted_) {
            for (NodeId to = 0; to < n; ++to) {
                net::Message m;
                m.kind = net::MsgKind::TCEcho;
                m.word = plurality_;
                if (split_armed_) {
                    m.flag = (to % 2 == 0) ? 1 : 0;  // alternate: half pushed
                } else {
                    m.flag = push ? 1 : 0;
                }
                ctl.deliver_as(b, to, m);
            }
            push = !push;
        }
        return;
    }
    // Prelude over; a composed second-stage adversary takes it from here.
}

}  // namespace adba::adv
