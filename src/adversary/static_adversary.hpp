// Static Byzantine adversary: chooses its corrupt set before the execution
// (the weaker model of Goldwasser-Pavlov-Vaikuntanathan etc., paper §1).
//
// Used as an ablation point in E8: the gap between static and adaptive
// measured rounds is the paper's whole motivation.
#pragma once

#include <cstdint>
#include <vector>

#include "net/engine.hpp"
#include "rand/rng.hpp"

namespace adba::adv {

/// What the statically corrupted nodes do each round.
enum class StaticBehavior : std::uint8_t {
    Silent,      ///< send nothing (fail-stop from round 0)
    Garbage,     ///< broadcast uniformly random well-formed-ish messages
    SplitVotes,  ///< equivocate: val=0 to low-ID receivers, val=1 to the rest
};

class StaticAdversary final : public net::Adversary {
public:
    /// Corrupts `q` nodes chosen uniformly at round 0 (q <= engine budget).
    StaticAdversary(Count q, StaticBehavior behavior, Xoshiro256 rng);

    void on_start(NodeId n, Count budget) override;
    void act(net::RoundControl& ctl) override;

    const std::vector<NodeId>& corrupted() const { return corrupted_; }

private:
    Count q_;
    StaticBehavior behavior_;
    Xoshiro256 rng_;
    std::vector<NodeId> corrupted_;
    std::vector<NodeId> ids_;  ///< on_start scratch — fused blocks restart often
};

}  // namespace adba::adv
