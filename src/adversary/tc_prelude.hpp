// Attack on the Turpin-Coan prelude (core/multivalued.hpp): corrupt a slice
// of the budget immediately and equivocate word values and echoes, trying
// to drive different honest nodes to different x* candidates or to split
// the derived binary inputs. Compose with WorstCaseAdversary (offset 2) via
// SwitchAdversary to attack the full multi-valued stack.
#pragma once

#include <vector>

#include "net/engine.hpp"
#include "rand/rng.hpp"
#include "support/types.hpp"

namespace adba::adv {

class TcPreludeAdversary final : public net::Adversary {
public:
    /// Corrupts q nodes in round 0 (before any delivery) and equivocates
    /// through the two prelude rounds; silent afterwards.
    TcPreludeAdversary(Count q, Xoshiro256 rng) : q_(q), rng_(rng) {}

    void on_start(NodeId, Count budget) override { budget_ = budget; }
    void act(net::RoundControl& ctl) override;

    /// True when round 0 found the quorum-boundary band and armed the
    /// binary-input split (exposed for tests/benches).
    bool split_armed() const { return split_armed_; }

private:
    Count q_;
    Xoshiro256 rng_;
    Count budget_ = 0;  ///< engine budget t (fixes the n-t quorum)
    std::vector<NodeId> corrupted_;
    std::vector<NodeId> echo_targets_;  ///< receivers pushed over the quorum
    net::Word plurality_ = 0;  ///< honest plurality word observed in round 0
    bool split_armed_ = false;
};

}  // namespace adba::adv
