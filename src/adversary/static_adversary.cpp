#include "adversary/static_adversary.hpp"

#include <algorithm>
#include <numeric>

#include "support/contracts.hpp"

namespace adba::adv {

StaticAdversary::StaticAdversary(Count q, StaticBehavior behavior, Xoshiro256 rng)
    : q_(q), behavior_(behavior), rng_(rng) {}

void StaticAdversary::on_start(NodeId n, Count budget) {
    ADBA_EXPECTS_MSG(q_ <= budget, "static corrupt set exceeds engine budget");
    // Uniform sample without replacement (partial Fisher-Yates). The draw
    // sequence is part of the recorded-experiment contract — the scratch
    // reuse below must never change which rng_ values are consumed.
    ids_.resize(n);
    std::iota(ids_.begin(), ids_.end(), NodeId{0});
    for (Count i = 0; i < q_; ++i) {
        const auto j = i + static_cast<NodeId>(rng_.below(n - i));
        std::swap(ids_[i], ids_[j]);
    }
    corrupted_.assign(ids_.begin(), ids_.begin() + q_);
    std::sort(corrupted_.begin(), corrupted_.end());
}

void StaticAdversary::act(net::RoundControl& ctl) {
    if (ctl.round() == 0) {
        for (NodeId v : corrupted_) ctl.corrupt(v);
    }
    switch (behavior_) {
        case StaticBehavior::Silent:
            break;
        case StaticBehavior::Garbage:
            for (NodeId v : corrupted_) {
                net::Message m;
                m.kind = static_cast<net::MsgKind>(1 + rng_.below(7));
                m.val = rng_.bit();
                m.flag = rng_.bit();
                m.coin = rng_.sign();
                m.phase = ctl.round() / 2;
                ctl.broadcast_as(v, m);
            }
            break;
        case StaticBehavior::SplitVotes: {
            const Phase p = ctl.round() / 2;
            const bool round2 = (ctl.round() % 2) == 1;
            net::Message low;  // val 0 (coin -1 in round 2) below the boundary
            low.kind = round2 ? net::MsgKind::Vote2 : net::MsgKind::Vote1;
            low.phase = p;
            low.val = 0;
            low.coin = round2 ? CoinSign{-1} : CoinSign{0};
            net::Message high = low;  // val 1 (coin +1) at and above it
            high.val = 1;
            high.coin = round2 ? CoinSign{1} : CoinSign{0};
            const NodeId half = ctl.n() / 2;
            for (NodeId v : corrupted_) ctl.split_as(v, low, high, half);
            break;
        }
    }
}

}  // namespace adba::adv
