#include "adversary/coin_ruin.hpp"

#include <vector>

#include "support/contracts.hpp"

namespace adba::adv {

void CoinRuinAdversary::act(net::RoundControl& ctl) {
    if (ctl.round() != 0) return;  // the coin protocols are one round long

    // Observe the designated flips (rushing: current-round randomness).
    std::int64_t sum = 0;
    std::vector<NodeId> pos, neg;
    for (NodeId u = 0; u < cfg_.designated; ++u) {
        if (!ctl.is_honest(u)) continue;
        const auto& m = ctl.intended_broadcast(u);
        if (!m || m->kind != net::MsgKind::Coin || m->coin == 0) continue;
        if (m->coin > 0) {
            ++sum;
            pos.push_back(u);
        } else {
            --sum;
            neg.push_back(u);
        }
    }

    const Count budget = std::min<Count>(cfg_.max_corruptions, ctl.budget_left());
    std::vector<NodeId> taken;  // corrupted designated flippers (coin slots)

    auto corrupt_from = [&](std::vector<NodeId>& pool, std::int64_t delta) {
        ctl.corrupt(pool.back());
        taken.push_back(pool.back());
        pool.pop_back();
        sum += delta;
    };

    if (cfg_.attack == CoinAttack::Split) {
        // Goal: sum' in [-M, M-1] where M = #Byzantine designated slots, so
        // equivocation can land receivers on both sides of the >=0 rule.
        // Each corruption of a majority-sign flipper moves sum' 1 toward 0
        // and grows M by 1 (net margin gain 2 per corruption).
        while (taken.size() < budget) {
            const auto m_byz = static_cast<std::int64_t>(taken.size());
            if (sum >= -m_byz && sum <= m_byz - 1) break;  // already feasible
            if (sum >= 0 && !pos.empty())
                corrupt_from(pos, -1);
            else if (sum < 0 && !neg.empty())
                corrupt_from(neg, +1);
            else
                break;  // no flippers left on the needed side
        }
        const auto m_byz = static_cast<std::int64_t>(taken.size());
        feasible_ = sum >= -m_byz && sum <= m_byz - 1;
        // Equivocate: half the receivers get all-(+1) Byzantine coins, the
        // other half all-(-1); best effort even when infeasible.
        net::Message plus;
        plus.kind = net::MsgKind::Coin;
        plus.coin = 1;
        net::Message minus = plus;
        minus.coin = -1;
        const NodeId half = ctl.n() / 2;
        for (NodeId v : taken) ctl.split_as(v, plus, minus, half);
        return;
    }

    // ForceBit: push every receiver's sum to the target side.
    // Target 1 needs sum' + M >= 0 (all Byzantine send +1);
    // target 0 needs sum' - M <= -1 (all send -1).
    const bool want_one = cfg_.forced_bit == 1;
    while (taken.size() < budget) {
        const auto m_byz = static_cast<std::int64_t>(taken.size());
        if (want_one ? (sum + m_byz >= 0) : (sum - m_byz <= -1)) break;
        if (want_one && !neg.empty())
            corrupt_from(neg, +1);
        else if (!want_one && !pos.empty())
            corrupt_from(pos, -1);
        else
            break;
    }
    const auto m_byz = static_cast<std::int64_t>(taken.size());
    feasible_ = want_one ? (sum + m_byz >= 0) : (sum - m_byz <= -1);
    for (NodeId v : taken) {
        net::Message m;
        m.kind = net::MsgKind::Coin;
        m.coin = want_one ? CoinSign{1} : CoinSign{-1};
        ctl.broadcast_as(v, m);
    }
}

}  // namespace adba::adv
