#include "adversary/worst_case.hpp"

#include <algorithm>
#include <limits>

#include "support/contracts.hpp"

namespace adba::adv {

namespace {
constexpr Count kInfeasible = std::numeric_limits<Count>::max();
}

Count WorstCaseAdversary::remaining(const net::RoundControl& ctl) const {
    return std::min<Count>(ctl.budget_left(), cfg_.max_corruptions - used_);
}

void WorstCaseAdversary::corrupt_tracked(net::RoundControl& ctl, NodeId v) {
    ctl.corrupt(v);
    ++used_;
}

void WorstCaseAdversary::act(net::RoundControl& ctl) {
    if (ctl.round() < cfg_.round_offset) return;  // prelude rounds: not ours
    const Round r = ctl.round() - cfg_.round_offset;
    const Phase p = r / 2;
    if ((r % 2) == 0)
        act_round1(ctl, p);
    else
        act_round2(ctl, p);
}

void WorstCaseAdversary::act_round1(net::RoundControl& ctl, Phase p) {
    if (!cfg_.block_round1_quorums) return;
    const NodeId n = ctl.n();
    const Count quorum = n - cfg_.t;

    Count tally[2] = {0, 0};
    for (NodeId v = 0; v < n; ++v) {
        if (!ctl.is_honest(v) || ctl.is_halted(v)) continue;
        const auto& m = ctl.intended_broadcast(v);
        if (m && m->kind == net::MsgKind::Vote1 && m->phase == p) ++tally[m->val & 1];
    }

    for (Bit b : {Bit{0}, Bit{1}}) {
        if (tally[b] < quorum) continue;
        const Count need = tally[b] - quorum + 1;
        if (need > remaining(ctl)) return;  // cannot block; let it lock in
        // Corrupt `need` nodes of the quorum bloc, preferring members of the
        // current committee (their corpses become coin equivocators in
        // round 2 of this phase).
        std::vector<NodeId> committee_first, rest;
        for (NodeId v = 0; v < n && committee_first.size() + rest.size() <
                                        static_cast<std::size_t>(tally[b]);
             ++v) {
            if (!ctl.is_honest(v) || ctl.is_halted(v)) continue;
            const auto& m = ctl.intended_broadcast(v);
            if (!(m && m->kind == net::MsgKind::Vote1 && m->phase == p && (m->val & 1) == b))
                continue;
            if (cfg_.schedule.flips_in_phase(v, p))
                committee_first.push_back(v);
            else
                rest.push_back(v);
        }
        Count done = 0;
        for (NodeId v : committee_first) {
            if (done == need) break;
            corrupt_tracked(ctl, v);
            ++done;
        }
        for (NodeId v : rest) {
            if (done == need) break;
            corrupt_tracked(ctl, v);
            ++done;
        }
        return;  // at most one value can hold an n-t quorum
    }
}

void WorstCaseAdversary::act_round2(net::RoundControl& ctl, Phase p) {
    const NodeId n = ctl.n();
    const auto [first, last] = cfg_.schedule.range(cfg_.schedule.committee_of_phase(p));
    const auto in_committee = [&](NodeId v) { return v >= first && v < last; };

    // ---- observe (full information + rushing) ----
    Count d = 0;
    Bit b_i = 0;
    std::vector<NodeId> decided_out, decided_in;  // decided honest, by membership
    for (NodeId v = 0; v < n; ++v) {
        if (!ctl.is_honest(v) || ctl.is_halted(v)) continue;
        if (ctl.current_decided(v)) {
            ++d;
            b_i = ctl.current_value(v);
            (in_committee(v) ? decided_in : decided_out).push_back(v);
        }
    }

    std::int64_t sum = 0;
    std::vector<NodeId> pos, neg;  // honest committee flippers by sign
    Count m_byz = 0;
    for (NodeId u = first; u < last; ++u) {
        if (!ctl.is_honest(u)) {
            ++m_byz;
            continue;
        }
        if (ctl.is_halted(u)) continue;
        const auto& m = ctl.intended_broadcast(u);
        if (!m || m->kind != net::MsgKind::Vote2 || m->coin == 0) continue;
        if (m->coin > 0) {
            ++sum;
            pos.push_back(u);
        } else {
            --sum;
            neg.push_back(u);
        }
    }

    // ---- plan: decided reduction ----
    const Count need_reduce = d > cfg_.t ? d - cfg_.t : 0;
    // Victims outside the committee leave the flip sum untouched; committee
    // victims both lose their flip and join the equivocator pool.
    std::vector<NodeId> victims(decided_out.begin(), decided_out.end());
    victims.insert(victims.end(), decided_in.begin(), decided_in.end());
    if (need_reduce > victims.size()) return;  // cannot even see all decided (impossible)
    victims.resize(need_reduce);

    std::int64_t plan_sum = sum;
    std::int64_t plan_m = m_byz;
    auto plan_pos = pos, plan_neg = neg;
    for (NodeId v : victims) {
        if (!in_committee(v)) continue;
        ++plan_m;
        // Remove the victim's flip from the plan.
        if (auto it = std::find(plan_pos.begin(), plan_pos.end(), v); it != plan_pos.end()) {
            plan_pos.erase(it);
            --plan_sum;
        } else if (auto it2 = std::find(plan_neg.begin(), plan_neg.end(), v);
                   it2 != plan_neg.end()) {
            plan_neg.erase(it2);
            ++plan_sum;
        }
    }

    // ---- plan: coin ruin cost (SPLIT and OPPOSITE) ----
    // Greedy over majority-sign flippers; each corruption shifts the margin
    // by 2. Returns corruption count or kInfeasible.
    const auto split_cost = [&]() -> Count {
        std::int64_t s = plan_sum, m = plan_m;
        std::size_t avail_pos = plan_pos.size(), avail_neg = plan_neg.size();
        Count k = 0;
        while (!(s >= -m && s <= m - 1)) {
            if (s >= 0 && avail_pos > 0) {
                --avail_pos;
                --s;
            } else if (s < 0 && avail_neg > 0) {
                --avail_neg;
                ++s;
            } else {
                return kInfeasible;
            }
            ++m;
            ++k;
        }
        return k;
    };
    const auto opposite_cost = [&](Bit target) -> Count {
        std::int64_t s = plan_sum, m = plan_m;
        std::size_t avail_pos = plan_pos.size(), avail_neg = plan_neg.size();
        Count k = 0;
        // target 1: all receivers must see s' + m >= 0; target 0: s' - m <= -1.
        while (target == 1 ? (s + m < 0) : (s - m > -1)) {
            if (target == 1 && avail_neg > 0) {
                --avail_neg;
                ++s;
            } else if (target == 0 && avail_pos > 0) {
                --avail_pos;
                --s;
            } else {
                return kInfeasible;
            }
            ++m;
            ++k;
        }
        return k;
    };

    const Count c_split = split_cost();
    const Count d_visible = d - need_reduce;
    const Count c_opp =
        d_visible >= 1 ? opposite_cost(b_i ? Bit{0} : Bit{1}) : kInfeasible;

    const bool use_split = c_split <= c_opp;
    const Count coin_cost = use_split ? c_split : c_opp;
    if (coin_cost == kInfeasible) return;
    const std::uint64_t total =
        static_cast<std::uint64_t>(need_reduce) + coin_cost;
    if (total > remaining(ctl)) return;  // unaffordable: spend nothing

    // ---- execute ----
    for (NodeId v : victims) corrupt_tracked(ctl, v);
    {
        // Replicate the planning greedy exactly, corrupting for real.
        std::int64_t s = plan_sum;
        std::size_t ip = 0, in = 0;
        for (Count k = 0; k < coin_cost; ++k) {
            if (use_split) {
                if (s >= 0) {
                    corrupt_tracked(ctl, plan_pos[ip++]);
                    --s;
                } else {
                    corrupt_tracked(ctl, plan_neg[in++]);
                    ++s;
                }
            } else if (b_i == 0) {  // forcing 1: drain -1 flippers
                corrupt_tracked(ctl, plan_neg[in++]);
                ++s;
            } else {  // forcing 0: drain +1 flippers
                corrupt_tracked(ctl, plan_pos[ip++]);
                --s;
            }
        }
    }
    ++ruined_;

    // ---- deliveries from every Byzantine committee member ----
    std::vector<NodeId> byz_members;
    for (NodeId u = first; u < last; ++u)
        if (!ctl.is_honest(u)) byz_members.push_back(u);
    if (byz_members.empty()) return;  // natural ruin, nothing to push

    if (use_split) {
        // Balanced target assignment over live honest receivers so the next
        // phase's tallies stay far from every threshold.
        std::vector<Bit> target(n, 0);
        Bit next = 0;
        for (NodeId v = 0; v < n; ++v) {
            if (ctl.is_honest(v) && !ctl.is_halted(v)) {
                target[v] = next;
                next = next ? Bit{0} : Bit{1};
            }
        }
        for (NodeId u : byz_members) {
            for (NodeId to = 0; to < n; ++to) {
                net::Message m;
                m.kind = net::MsgKind::Vote2;
                m.phase = p;
                m.val = 0;
                m.flag = 0;
                m.coin = target[to] ? CoinSign{1} : CoinSign{-1};
                ctl.deliver_as(u, to, m);
            }
        }
    } else {
        const CoinSign push = b_i == 0 ? CoinSign{1} : CoinSign{-1};
        net::Message m;
        m.kind = net::MsgKind::Vote2;
        m.phase = p;
        m.val = 0;
        m.flag = 0;
        m.coin = push;
        for (NodeId u : byz_members) ctl.broadcast_as(u, m);
    }
}

}  // namespace adba::adv
