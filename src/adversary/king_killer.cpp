#include "adversary/king_killer.hpp"

namespace adba::adv {

void KingKillerAdversary::act(net::RoundControl& ctl) {
    const Phase k = ctl.round() / 2;
    const bool king_round = (ctl.round() % 2) == 1;
    const NodeId n = ctl.n();

    if (king_round) {
        const NodeId king = params_.king_of(k);
        if (ctl.is_honest(king) && !ctl.is_halted(king) && used_ < cap_ &&
            ctl.budget_left() > 0) {
            ctl.corrupt(king);  // after seeing its ruling — rushing
            corrupted_.push_back(king);
            ++used_;
        }
        // A Byzantine king rules 0 for half the receivers and 1 for the rest.
        if (!ctl.is_honest(king)) {
            net::Message low;
            low.kind = net::MsgKind::PhaseKingRuler;
            low.phase = k;
            low.val = 0;
            net::Message high = low;
            high.val = 1;
            ctl.split_as(king, low, high, n / 2);
        }
        return;
    }

    // Value round: ex-kings vote both ways to keep tallies off the
    // n/2 + t persistence threshold.
    net::Message low;
    low.kind = net::MsgKind::PhaseKingSend;
    low.phase = k;
    low.val = 0;
    net::Message high = low;
    high.val = 1;
    for (NodeId v : corrupted_) ctl.split_as(v, low, high, n / 2);
}

}  // namespace adba::adv
