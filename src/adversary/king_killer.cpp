#include "adversary/king_killer.hpp"

namespace adba::adv {

void KingKillerAdversary::act(net::RoundControl& ctl) {
    const Phase k = ctl.round() / 2;
    const bool king_round = (ctl.round() % 2) == 1;
    const NodeId n = ctl.n();

    if (king_round) {
        const NodeId king = params_.king_of(k);
        if (ctl.is_honest(king) && !ctl.is_halted(king) && used_ < cap_ &&
            ctl.budget_left() > 0) {
            ctl.corrupt(king);  // after seeing its ruling — rushing
            corrupted_.push_back(king);
            ++used_;
        }
        // A Byzantine king rules 0 for half the receivers and 1 for the rest.
        if (!ctl.is_honest(king)) {
            for (NodeId to = 0; to < n; ++to) {
                net::Message m;
                m.kind = net::MsgKind::PhaseKingRuler;
                m.phase = k;
                m.val = to < n / 2 ? Bit{0} : Bit{1};
                ctl.deliver_as(king, to, m);
            }
        }
        return;
    }

    // Value round: ex-kings vote both ways to keep tallies off the
    // n/2 + t persistence threshold.
    for (NodeId v : corrupted_) {
        for (NodeId to = 0; to < n; ++to) {
            net::Message m;
            m.kind = net::MsgKind::PhaseKingSend;
            m.phase = k;
            m.val = to < n / 2 ? Bit{0} : Bit{1};
            ctl.deliver_as(v, to, m);
        }
    }
}

}  // namespace adba::adv
