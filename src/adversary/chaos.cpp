#include "adversary/chaos.hpp"

#include <vector>

namespace adba::adv {

void ChaosAdversary::act(net::RoundControl& ctl) {
    const NodeId n = ctl.n();
    if (corrupted_.size() < cfg_.max_corruptions && ctl.budget_left() > 0 &&
        rng_.bernoulli(cfg_.corrupt_prob)) {
        std::vector<NodeId> candidates;
        for (NodeId v = 0; v < n; ++v)
            if (ctl.is_honest(v) && !ctl.is_halted(v)) candidates.push_back(v);
        if (!candidates.empty()) {
            const NodeId victim = candidates[rng_.below(candidates.size())];
            ctl.corrupt(victim);
            corrupted_.push_back(victim);
        }
    }
    for (NodeId v : corrupted_) {
        for (NodeId to = 0; to < n; ++to) {
            if (!rng_.bernoulli(cfg_.deliver_prob)) continue;
            net::Message m;
            m.kind = static_cast<net::MsgKind>(rng_.below(8));  // includes None
            m.val = static_cast<Bit>(rng_.below(2));
            m.flag = static_cast<std::uint8_t>(rng_.below(2));
            m.coin = static_cast<CoinSign>(static_cast<std::int64_t>(rng_.below(5)) - 2);
            // Mostly current phase, sometimes stale/future garbage.
            const Phase p = ctl.round() / 2;
            m.phase = rng_.bernoulli(0.8)
                          ? p
                          : static_cast<Phase>(rng_.below(p + 3));
            ctl.deliver_as(v, to, m);
        }
    }
}

}  // namespace adba::adv
