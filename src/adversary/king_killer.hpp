// Adaptive attack on the Phase-King baseline: corrupt each phase's king the
// moment it speaks (rushing) and equivocate its ruling; use the corrupted
// ex-kings to keep honest value tallies split below the persistence
// threshold. Realizes the classical worst case — 2(t+1) rounds, the last
// king honest by pigeonhole — so E3's deterministic O(t) line is measured,
// not assumed.
#pragma once

#include <vector>

#include "baselines/phase_king.hpp"
#include "net/engine.hpp"

namespace adba::adv {

class KingKillerAdversary final : public net::Adversary {
public:
    /// max_corruptions caps actual king kills (q of the early-termination
    /// experiments); params must match the protocol under attack.
    KingKillerAdversary(base::PhaseKingParams params, Count max_corruptions)
        : params_(params), cap_(max_corruptions) {}

    void act(net::RoundControl& ctl) override;

    Count kings_killed() const { return used_; }

private:
    base::PhaseKingParams params_;
    Count cap_;
    Count used_ = 0;
    std::vector<NodeId> corrupted_;
};

}  // namespace adba::adv
