// Adaptive rushing attack on the standalone common-coin protocols
// (Algorithm 1 / Algorithm 2) — the adversary Theorem 3 is proved against.
//
// In the single flip round the adversary sees every designated node's ±1
// choice (rushing), then:
//  * Split mode    — corrupts majority-sign flippers to shrink the honest
//    sum |S| and equivocates the corrupted coins so that half the receivers
//    compute sum >= 0 (coin 1) and half compute sum < 0 (coin 0), breaking
//    commonness (Definition 2(A));
//  * ForceBit mode — pushes every receiver's sum to the same side, biasing
//    the coin's value (attacks Definition 2(B)).
//
// Both are budget-capped best-effort: with f <= ~½|S| corruptions the
// attack fails — that is exactly Theorem 3's anti-concentration margin, and
// experiments E1/E2 measure the success boundary as f crosses ½·sqrt(k).
#pragma once

#include <cstdint>

#include "net/engine.hpp"
#include "support/types.hpp"

namespace adba::adv {

enum class CoinAttack : std::uint8_t { Split, ForceBit };

struct CoinRuinConfig {
    NodeId designated = 0;  ///< k: flippers are IDs 0..k-1 (public)
    Count max_corruptions = 0;
    CoinAttack attack = CoinAttack::Split;
    Bit forced_bit = 0;     ///< ForceBit target
};

class CoinRuinAdversary final : public net::Adversary {
public:
    explicit CoinRuinAdversary(CoinRuinConfig cfg) : cfg_(cfg) {}

    void act(net::RoundControl& ctl) override;

    /// True if the round-0 attack math deemed the ruin feasible within
    /// budget (used by E1 to compare predicted vs measured success).
    bool attack_feasible() const { return feasible_; }

private:
    CoinRuinConfig cfg_;
    bool feasible_ = false;
};

}  // namespace adba::adv
