#include "core/skeleton.hpp"

#include "support/contracts.hpp"

namespace adba::core {

RabinSkeletonNode::RabinSkeletonNode(SkeletonConfig cfg, NodeId self, Bit input,
                                     Xoshiro256 rng) {
    reinit(cfg, self, input, rng);  // one initialization body for both paths
}

void RabinSkeletonNode::reinit(SkeletonConfig cfg, NodeId self, Bit input,
                               Xoshiro256 rng) {
    ADBA_EXPECTS(cfg.n > 0);
    ADBA_EXPECTS_MSG(3 * static_cast<std::uint64_t>(cfg.t) < cfg.n, "requires t < n/3");
    ADBA_EXPECTS(cfg.phases >= 1);
    ADBA_EXPECTS(self < cfg.n);
    ADBA_EXPECTS(input <= 1);
    cfg_ = cfg;
    self_ = self;
    rng_ = rng;
    val_ = input;
    decided_ = false;
    finish_ = false;
    finish_phase_.reset();
    flushing_ = false;
    halted_ = false;
}

std::optional<net::Message> RabinSkeletonNode::round_send(Round r) {
    ADBA_EXPECTS(!halted_);
    const Phase p = r / 2;
    net::Message m;
    m.phase = p;
    m.val = val_;
    m.flag = decided_ ? 1 : 0;
    if (r % 2 == 0) {
        m.kind = net::MsgKind::Vote1;
    } else {
        m.kind = net::MsgKind::Vote2;
        // Flip regardless of this node's own case: the flip is drawn before
        // any round-2 delivery is seen, so every honest committee member
        // contributes (Corollary 1 counts them all).
        m.coin = coin_contribution(p);
        if (flushing_) {
            // Second flush broadcast done; the node's output is final.
            halted_ = true;
        }
    }
    return m;
}

void RabinSkeletonNode::round_receive(Round r, const net::ReceiveView& view) {
    ADBA_EXPECTS(!halted_);
    const Phase p = r / 2;
    if (flushing_) return;  // output already fixed; ignore deliveries
    if (r % 2 == 0) {
        receive_round1(p, view);
    } else {
        receive_round2(p, view);
        if (finish_) {
            // Broadcast (val, decided=true) through one more full phase,
            // then halt (see header comment on the finish flush).
            flushing_ = true;
        } else if (cfg_.mode == AgreementMode::WhpFixedPhases && p + 1 == cfg_.phases) {
            // Phase budget exhausted: decide on the current val (Theorem 2's
            // w.h.p. guarantee is about exactly this point).
            halted_ = true;
        }
    }
}

void RabinSkeletonNode::receive_round1(Phase p, const net::ReceiveView& view) {
    const Count n = cfg_.n;
    const auto cnt = view.val_counts(net::MsgKind::Vote1, p, /*require_flag=*/false);
    const Count quorum = n - cfg_.t;
    ADBA_ENSURES_MSG(!(cnt[0] >= quorum && cnt[1] >= quorum),
                     "two n-t quorums cannot coexist (t < n/3)");
    if (cnt[0] >= quorum) {
        val_ = 0;
        decided_ = true;
    } else if (cnt[1] >= quorum) {
        val_ = 1;
        decided_ = true;
    } else {
        decided_ = false;
    }
}

void RabinSkeletonNode::receive_round2(Phase p, const net::ReceiveView& view) {
    const Count n = cfg_.n;
    const auto cnt_dec = view.val_counts(net::MsgKind::Vote2, p, /*require_flag=*/true);
    const Count quorum = n - cfg_.t;
    const Count supermin = cfg_.t + 1;
    // Lemma 3: all honest decided nodes share one value, so two disjoint
    // (t+1)-sized decided sets for different values would need two honest
    // nodes decided on different values — impossible.
    ADBA_ENSURES_MSG(!(cnt_dec[0] >= supermin && cnt_dec[1] >= supermin),
                     "Lemma 3 violated: decided quorums for both values");
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (cnt_dec[b] >= quorum) {
            val_ = b;
            decided_ = true;
            finish_ = true;
            finish_phase_ = p;
            return;
        }
    }
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (cnt_dec[b] >= supermin) {
            val_ = b;
            decided_ = true;
            return;
        }
    }
    val_ = coin_value(p, view);
    decided_ = false;
}

std::int64_t committee_coin_sum(const net::ReceiveView& view, Phase p, NodeId first,
                                NodeId last) {
    return view.coin_sum(net::MsgKind::Vote2, p, /*check_phase=*/true, first, last);
}

}  // namespace adba::core
