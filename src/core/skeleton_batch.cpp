#include "core/skeleton_batch.hpp"

#include "support/contracts.hpp"

namespace adba::core {

SkeletonBatch::SkeletonBatch(const SkeletonConfig& cfg, BatchCoinSpec coin,
                             const std::vector<Bit>& inputs, const SeedTree& seeds) {
    rearm(cfg, std::move(coin), inputs, seeds);
}

void SkeletonBatch::rearm(const SkeletonConfig& cfg, BatchCoinSpec coin,
                          const std::vector<Bit>& inputs, const SeedTree& seeds) {
    // Same contracts as RabinSkeletonNode::reinit, checked once for the
    // whole population.
    ADBA_EXPECTS(cfg.n > 0);
    ADBA_EXPECTS_MSG(3 * static_cast<std::uint64_t>(cfg.t) < cfg.n, "requires t < n/3");
    ADBA_EXPECTS(cfg.phases >= 1);
    ADBA_EXPECTS(inputs.size() == cfg.n);
    if (coin.kind == BatchCoinSpec::Kind::Dealer) ADBA_EXPECTS(coin.dealer != nullptr);
    cfg_ = cfg;
    coin_ = std::move(coin);
    const NodeId n = cfg_.n;
    val_.assign(inputs.begin(), inputs.end());
    for (NodeId v = 0; v < n; ++v) ADBA_EXPECTS(val_[v] <= 1);
    decided_.assign(n, 0);
    finish_.assign(n, 0);
    flushing_.assign(n, 0);
    halted_.assign(n, 0);
    // Per-node streams identical to the per-node constructors': stream
    // (NodeProtocol, v), consumed in ascending node order each beat.
    rng_.clear();
    rng_.reserve(n);
    for (NodeId v = 0; v < n; ++v)
        rng_.push_back(seeds.stream(StreamPurpose::NodeProtocol, v));
}

void SkeletonBatch::send_all(Round r, net::RoundBuffer& buf) {
    send_range(r, buf, 0, cfg_.n);
}

void SkeletonBatch::send_range(Round r, net::RoundBuffer& buf, NodeId lo, NodeId hi) {
    const Phase p = r / 2;
    const bool round2 = (r % 2) != 0;
    const std::uint8_t* state = buf.state_plane();

    // Committee membership is an ID range; hoist it out of the node loop
    // (BlockSchedule::flips_in_phase is exactly this range test).
    NodeId flip_first = 0, flip_last = 0;
    if (round2 && coin_.kind == BatchCoinSpec::Kind::Committee) {
        const auto range =
            coin_.schedule.range(coin_.schedule.committee_of_phase(p));
        flip_first = range.first;
        flip_last = range.second;
    }

    net::Message m;
    m.phase = p;
    m.kind = round2 ? net::MsgKind::Vote2 : net::MsgKind::Vote1;
    for (NodeId v = lo; v < hi; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v]) continue;
        m.val = val_[v];
        m.flag = decided_[v] ? 1 : 0;
        m.coin = 0;
        if (round2) {
            // Flip regardless of this node's own case: the flip is drawn
            // before any round-2 delivery is seen (Lemma 5 independence).
            // Stream v is private to v, so a shard draws exactly what the
            // serial sweep would.
            if (v >= flip_first && v < flip_last) m.coin = rng_[v].sign();
            if (flushing_[v]) halted_[v] = 1;  // second flush broadcast done
        }
        buf.set_broadcast(v, m);
    }
}

void SkeletonBatch::apply_round1(NodeId v, const std::array<Count, 2>& cnt) {
    const Count quorum = cfg_.n - cfg_.t;
    ADBA_ENSURES_MSG(!(cnt[0] >= quorum && cnt[1] >= quorum),
                     "two n-t quorums cannot coexist (t < n/3)");
    if (cnt[0] >= quorum) {
        val_[v] = 0;
        decided_[v] = 1;
    } else if (cnt[1] >= quorum) {
        val_[v] = 1;
        decided_[v] = 1;
    } else {
        decided_[v] = 0;
    }
}

template <typename CoinFn>
void SkeletonBatch::apply_round2(NodeId v, const std::array<Count, 2>& cnt_dec,
                                 bool checked, CoinFn&& coin) {
    const Count quorum = cfg_.n - cfg_.t;
    const Count supermin = cfg_.t + 1;
    if (checked) {
        ADBA_ENSURES_MSG(!(cnt_dec[0] >= supermin && cnt_dec[1] >= supermin),
                         "Lemma 3 violated: decided quorums for both values");
    }
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (cnt_dec[b] >= quorum) {
            val_[v] = b;
            decided_[v] = 1;
            finish_[v] = 1;
            return;
        }
    }
    for (Bit b : {Bit{0}, Bit{1}}) {
        if (cnt_dec[b] >= supermin) {
            val_[v] = b;
            decided_[v] = 1;
            return;
        }
    }
    val_[v] = coin();
    decided_[v] = 0;
}

void SkeletonBatch::apply_phase_end(NodeId v, Phase p) {
    if (finish_[v]) {
        // Broadcast (val, decided=true) through one more full phase, then
        // halt (the skeleton's finish flush).
        flushing_[v] = 1;
    } else if (cfg_.mode == AgreementMode::WhpFixedPhases && p + 1 == cfg_.phases) {
        halted_[v] = 1;
    }
}

void SkeletonBatch::receive_all(Round r, const net::RoundBuffer& buf,
                                const net::RoundTally& tally) {
    receive_prepare(r, buf, tally);
    receive_range(r, buf, tally, 0, cfg_.n);
}

void SkeletonBatch::receive_prepare(Round r, const net::RoundBuffer&,
                                    const net::RoundTally& tally) {
    const Phase p = r / 2;
    const bool round2 = (r % 2) != 0;
    const net::MsgKind kind = round2 ? net::MsgKind::Vote2 : net::MsgKind::Vote1;
    const net::TallyBucket* b = tally.find(kind, p);
    prep_base_ = {0, 0};
    if (b != nullptr) prep_base_ = round2 ? b->val_flag_cnt : b->val_cnt;
    prep_delta_ = tally.val_delta_plane(kind, p, /*require_flag=*/round2);
    prep_honest_coin_ = 0;
    prep_coin_delta_ = nullptr;
    if (round2 && coin_.kind == BatchCoinSpec::Kind::Committee) {
        // Eager committee-coin hoist: the tally's lazy caches must not be
        // built from concurrent shards, so prepare pays for them up front
        // even when no node lands in case 3 — a cache build only, not an
        // observable draw (coin values are unchanged).
        const auto range = coin_.schedule.range(coin_.schedule.committee_of_phase(p));
        for (std::size_t i = 0; i < tally.bucket_count(); ++i) {
            const net::TallyBucket& cb = tally.bucket(i);
            if (cb.kind != net::MsgKind::Vote2 || cb.phase != p) continue;
            prep_honest_coin_ += tally.coin_range_sum(cb, range.first, range.second);
        }
        prep_coin_delta_ =
            tally.coin_delta_plane(net::MsgKind::Vote2, p, /*check_phase=*/true,
                                   range.first, range.second);
    }
}

void SkeletonBatch::receive_range(Round r, const net::RoundBuffer& buf,
                                  const net::RoundTally& tally, NodeId lo, NodeId hi) {
    const Phase p = r / 2;
    const std::uint8_t* state = buf.state_plane();
    const auto skip = [&](NodeId v) {
        return (state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v] ||
               flushing_[v];
    };

    if ((r % 2) == 0) {
        // Round 1: one shared honest histogram + one delta plane serve all
        // receivers; the per-node work is two adds and the threshold test.
        for (NodeId v = lo; v < hi; ++v) {
            if (skip(v)) continue;
            std::array<Count, 2> cnt = prep_base_;
            if (prep_delta_ != nullptr) {
                cnt[0] += prep_delta_[v][0];
                cnt[1] += prep_delta_[v][1];
            }
            apply_round1(v, cnt);
        }
        return;
    }

    // Round 2: decided counts the same way; the committee coin's honest
    // contribution is receiver-independent and already hoisted by
    // receive_prepare, so only the Byzantine delta varies per receiver.
    for (NodeId v = lo; v < hi; ++v) {
        if (skip(v)) continue;
        std::array<Count, 2> cnt = prep_base_;
        if (prep_delta_ != nullptr) {
            cnt[0] += prep_delta_[v][0];
            cnt[1] += prep_delta_[v][1];
        }
        apply_round2(v, cnt, /*checked=*/true, [&]() -> Bit {
            switch (coin_.kind) {
                case BatchCoinSpec::Kind::Committee: {
                    const std::int64_t sum =
                        prep_honest_coin_ +
                        (prep_coin_delta_ != nullptr ? prep_coin_delta_[v] : 0);
                    return sum >= 0 ? Bit{1} : Bit{0};
                }
                case BatchCoinSpec::Kind::Dealer:
                    return coin_.dealer(p);
                case BatchCoinSpec::Kind::Local:
                    return rng_[v].bit();
            }
            return Bit{0};  // unreachable: all kinds handled above
        });
        apply_phase_end(v, p);
    }
}

void SkeletonBatch::receive_sparse_prepare(Round r, const net::RoundBuffer&,
                                           const net::RoundTally& tally,
                                           const net::SparsePlane& sparse) {
    const Phase p = r / 2;
    const bool round2 = (r % 2) != 0;
    const net::MsgKind kind = round2 ? net::MsgKind::Vote2 : net::MsgKind::Vote1;
    prep_sparse_query_ = sparse.query(kind, p, /*require_flag=*/round2);
    prep_honest_coin_ = 0;
    prep_coin_delta_ = nullptr;
    if (round2 && coin_.kind == BatchCoinSpec::Kind::Committee) {
        // The committee coin is the sparse plane's exact island: the sender
        // range is the paper's committee, so every receiver hears it in
        // full through the shared tally — the same hoist receive_prepare
        // does, and the same integers at any sampling degree.
        const auto range = coin_.schedule.range(coin_.schedule.committee_of_phase(p));
        for (std::size_t i = 0; i < tally.bucket_count(); ++i) {
            const net::TallyBucket& cb = tally.bucket(i);
            if (cb.kind != net::MsgKind::Vote2 || cb.phase != p) continue;
            prep_honest_coin_ += tally.coin_range_sum(cb, range.first, range.second);
        }
        prep_coin_delta_ =
            tally.coin_delta_plane(net::MsgKind::Vote2, p, /*check_phase=*/true,
                                   range.first, range.second);
    }
}

void SkeletonBatch::receive_sparse_range(Round r, const net::RoundBuffer& buf,
                                         const net::RoundTally&,
                                         const net::SparsePlane& sparse, NodeId lo,
                                         NodeId hi) {
    const Phase p = r / 2;
    const std::uint8_t* state = buf.state_plane();
    const auto skip = [&](NodeId v) {
        return (state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v] ||
               flushing_[v];
    };

    if ((r % 2) == 0) {
        // Round 1: two n-t estimates cannot coexist even under sampling
        // (est0 + est1 <= n + 1 < 2(n-t) for t < n/3), so apply_round1's
        // assertion needs no relaxation.
        for (NodeId v = lo; v < hi; ++v) {
            if (skip(v)) continue;
            apply_round1(v, sparse.val_estimates(prep_sparse_query_, v));
        }
        return;
    }

    for (NodeId v = lo; v < hi; ++v) {
        if (skip(v)) continue;
        const std::array<Count, 2> cnt = sparse.val_estimates(prep_sparse_query_, v);
        apply_round2(v, cnt, /*checked=*/sparse.dense(), [&]() -> Bit {
            switch (coin_.kind) {
                case BatchCoinSpec::Kind::Committee: {
                    const std::int64_t sum =
                        prep_honest_coin_ +
                        (prep_coin_delta_ != nullptr ? prep_coin_delta_[v] : 0);
                    return sum >= 0 ? Bit{1} : Bit{0};
                }
                case BatchCoinSpec::Kind::Dealer:
                    return coin_.dealer(p);
                case BatchCoinSpec::Kind::Local:
                    return rng_[v].bit();
            }
            return Bit{0};  // unreachable: all kinds handled above
        });
        apply_phase_end(v, p);
    }
}

void SkeletonBatch::receive_all(Round r, const net::RoundBuffer& buf,
                                const net::DeliverySource& src) {
    // Oracle path: per-node ReceiveView queries — the executable spec of
    // the vectorized receive above, pinned equal by the equivalence tests.
    const Phase p = r / 2;
    const NodeId n = cfg_.n;
    const std::uint8_t* state = buf.state_plane();
    for (NodeId v = 0; v < n; ++v) {
        if ((state[v] & net::RoundBuffer::kByzantine) != 0 || halted_[v] ||
            flushing_[v])
            continue;
        const net::ReceiveView view(src, v);
        if ((r % 2) == 0) {
            apply_round1(v, view.val_counts(net::MsgKind::Vote1, p, false));
        } else {
            apply_round2(v, view.val_counts(net::MsgKind::Vote2, p, true),
                         /*checked=*/true, [&]() -> Bit {
                             switch (coin_.kind) {
                                 case BatchCoinSpec::Kind::Committee: {
                                     const auto range = coin_.schedule.range(
                                         coin_.schedule.committee_of_phase(p));
                                     return committee_coin_sum(view, p, range.first,
                                                               range.second) >= 0
                                                ? Bit{1}
                                                : Bit{0};
                                 }
                                 case BatchCoinSpec::Kind::Dealer:
                                     return coin_.dealer(p);
                                 case BatchCoinSpec::Kind::Local:
                                     return rng_[v].bit();
                             }
                             return Bit{0};  // unreachable: all kinds handled above
                         });
            apply_phase_end(v, p);
        }
    }
}

std::unique_ptr<net::BatchProtocol> make_skeleton_batch(
    const SkeletonConfig& cfg, BatchCoinSpec coin, const std::vector<Bit>& inputs,
    const SeedTree& seeds) {
    return std::make_unique<SkeletonBatch>(cfg, std::move(coin), inputs, seeds);
}

void reinit_skeleton_batch(const SkeletonConfig& cfg, BatchCoinSpec coin,
                           const std::vector<Bit>& inputs, const SeedTree& seeds,
                           net::BatchProtocol& batch) {
    auto* b = dynamic_cast<SkeletonBatch*>(&batch);
    ADBA_EXPECTS_MSG(b != nullptr,
                     "batch pool type does not match the requested protocol");
    b->rearm(cfg, std::move(coin), inputs, seeds);
}

}  // namespace adba::core
