#include "core/params.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "support/math.hpp"

namespace adba::core {

BlockSchedule BlockSchedule::make(NodeId n, NodeId block_size) {
    ADBA_EXPECTS(n > 0);
    BlockSchedule s;
    s.n = n;
    s.block = std::clamp<NodeId>(block_size, 1, n);
    s.num_blocks = static_cast<Count>(ceil_div(n, s.block));
    ADBA_ENSURES(s.num_blocks >= 1);
    return s;
}

std::pair<NodeId, NodeId> BlockSchedule::range(Count k) const {
    ADBA_EXPECTS(k < num_blocks);
    const NodeId first = static_cast<NodeId>(k) * block;
    const NodeId last = std::min<NodeId>(first + block, n);
    return {first, last};
}

bool BlockSchedule::flips_in_phase(NodeId v, Phase p) const {
    ADBA_EXPECTS(v < n);
    return v / block == committee_of_phase(p);
}

NodeId BlockSchedule::size(Count k) const {
    const auto [first, last] = range(k);
    return last - first;
}

Count raw_committee_count(NodeId n, Count t, double alpha) {
    ADBA_EXPECTS(n >= 1);
    const double logn = static_cast<double>(std::max<std::uint32_t>(1, ceil_log2(n)));
    const double t2_over_n =
        static_cast<double>(ceil_div(static_cast<std::uint64_t>(t) * t, n));
    const double c1 = alpha * t2_over_n * logn;
    const double c2 = 3.0 * alpha * static_cast<double>(t) / logn;
    const double c = std::min(c1, c2);
    return static_cast<Count>(std::clamp(std::ceil(c), 1.0, static_cast<double>(n)));
}

AgreementParams AgreementParams::compute(NodeId n, Count t, const Tuning& tune) {
    ADBA_EXPECTS(n >= 1);
    ADBA_EXPECTS_MSG(3 * static_cast<std::uint64_t>(t) < n, "requires t < n/3");
    ADBA_EXPECTS(tune.alpha >= 1.0);

    const double logn = static_cast<double>(std::max<std::uint32_t>(1, ceil_log2(n)));
    const Count raw = raw_committee_count(n, t, tune.alpha);
    const auto floor_phases =
        static_cast<Count>(std::clamp(std::ceil(tune.gamma * logn), 1.0,
                                      static_cast<double>(n)));
    const Count c = std::max(raw, floor_phases);

    AgreementParams p;
    p.n = n;
    p.t = t;
    p.phases = c;
    p.schedule = BlockSchedule::make(n, static_cast<NodeId>(ceil_div(n, c)));
    ADBA_ENSURES(p.phases >= 1);
    ADBA_ENSURES(p.schedule.block >= 1);
    return p;
}

Round max_rounds_whp(const AgreementParams& p) {
    // c phases of 2 rounds, plus one flush phase if Finish fires in the last
    // phase, plus safety slack of one phase.
    return 2 * (p.phases + 2);
}

}  // namespace adba::core
