// Standalone common-coin protocols (paper §3.1) for direct measurement.
//
// Algorithm 1: every node draws X_v uniform in {-1, +1}, broadcasts it, and
// outputs 1 iff the sum of received values is >= 0. Theorem 3: this is a
// common coin (Definition 2) against an adaptive rushing adversary that
// corrupts up to ½·sqrt(n) nodes *after seeing the flips*.
//
// Algorithm 2: only k designated nodes (here: IDs 0..k-1, known to all)
// flip and broadcast; everyone outputs the sign of the designated sum.
// Corollary 1: common coin while at most ½·sqrt(k) designated nodes are
// Byzantine.
//
// Inside Algorithm 3 the coin is piggybacked on round-2 vote messages; these
// standalone one-round nodes exist so experiments E1/E2 can measure
// Definition 2's (δ, ε) directly.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/node.hpp"
#include "rand/rng.hpp"
#include "rand/seed_tree.hpp"

namespace adba::core {

struct CoinConfig {
    NodeId n = 0;
    /// Number of designated flippers (IDs 0..designated-1). designated == n
    /// is Algorithm 1; designated < n is Algorithm 2.
    NodeId designated = 0;
};

/// One participant of Algorithm 1 / Algorithm 2. Single round, then halts.
class CoinFlipNode final : public net::HonestNode {
public:
    CoinFlipNode(CoinConfig cfg, NodeId self, Xoshiro256 rng);

    /// Re-arms a pooled node for a fresh trial (constructor contract).
    void reinit(CoinConfig cfg, NodeId self, Xoshiro256 rng);

    std::optional<net::Message> round_send(Round r) override;
    void round_receive(Round r, const net::ReceiveView& view) override;
    bool halted() const override { return halted_; }
    Bit current_value() const override { return out_; }

    /// The ±1 value this node flipped (0 if not designated). Exposed for
    /// tests and full-information adversaries.
    CoinSign flipped() const { return flip_; }

private:
    CoinConfig cfg_;
    NodeId self_ = 0;
    Xoshiro256 rng_;
    CoinSign flip_ = 0;
    Bit out_ = 0;
    bool halted_ = false;
};

/// Builds all n participants with independent streams.
std::vector<std::unique_ptr<net::HonestNode>> make_coin_nodes(const CoinConfig& cfg,
                                                              const SeedTree& seeds);

/// Re-arms a pool built by make_coin_nodes for a new trial (no allocs).
void reinit_coin_nodes(const CoinConfig& cfg, const SeedTree& seeds,
                       std::vector<std::unique_ptr<net::HonestNode>>& nodes);

}  // namespace adba::core
