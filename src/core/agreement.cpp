#include "core/agreement.hpp"

#include "support/contracts.hpp"

namespace adba::core {

Algorithm3Node::Algorithm3Node(const AgreementParams& params, AgreementMode mode,
                               NodeId self, Bit input, Xoshiro256 rng) {
    reinit(params, mode, self, input, rng);
}

void Algorithm3Node::reinit(const AgreementParams& params, AgreementMode mode,
                            NodeId self, Bit input, Xoshiro256 rng) {
    RabinSkeletonNode::reinit(SkeletonConfig{params.n, params.t, params.phases, mode},
                              self, input, rng);
    sched_ = params.schedule;
}

CoinSign Algorithm3Node::coin_contribution(Phase p) {
    return sched_.flips_in_phase(self(), p) ? rng().sign() : CoinSign{0};
}

Bit Algorithm3Node::coin_value(Phase p, const net::ReceiveView& view) {
    const Count k = sched_.committee_of_phase(p);
    const auto [first, last] = sched_.range(k);
    return committee_coin_sum(view, p, first, last) >= 0 ? Bit{1} : Bit{0};
}

std::vector<std::unique_ptr<net::HonestNode>> make_algorithm3_nodes(
    const AgreementParams& params, AgreementMode mode, const std::vector<Bit>& inputs,
    const SeedTree& seeds) {
    ADBA_EXPECTS(inputs.size() == params.n);
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(params.n);
    for (NodeId v = 0; v < params.n; ++v) {
        nodes.push_back(std::make_unique<Algorithm3Node>(
            params, mode, v, inputs[v], seeds.stream(StreamPurpose::NodeProtocol, v)));
    }
    return nodes;
}

void reinit_algorithm3_nodes(const AgreementParams& params, AgreementMode mode,
                             const std::vector<Bit>& inputs, const SeedTree& seeds,
                             std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    ADBA_EXPECTS(inputs.size() == params.n);
    net::reinit_node_pool<Algorithm3Node>(nodes, params.n, [&](Algorithm3Node& nd,
                                                               NodeId v) {
        nd.reinit(params, mode, v, inputs[v],
                  seeds.stream(StreamPurpose::NodeProtocol, v));
    });
}

namespace {

BatchCoinSpec alg3_coin(const AgreementParams& params) {
    BatchCoinSpec coin;
    coin.kind = BatchCoinSpec::Kind::Committee;
    coin.schedule = params.schedule;
    return coin;
}

}  // namespace

std::unique_ptr<net::BatchProtocol> make_algorithm3_batch(
    const AgreementParams& params, AgreementMode mode, const std::vector<Bit>& inputs,
    const SeedTree& seeds) {
    return make_skeleton_batch(SkeletonConfig{params.n, params.t, params.phases, mode},
                               alg3_coin(params), inputs, seeds);
}

void reinit_algorithm3_batch(const AgreementParams& params, AgreementMode mode,
                             const std::vector<Bit>& inputs, const SeedTree& seeds,
                             net::BatchProtocol& batch) {
    reinit_skeleton_batch(SkeletonConfig{params.n, params.t, params.phases, mode},
                          alg3_coin(params), inputs, seeds, batch);
}

}  // namespace adba::core
