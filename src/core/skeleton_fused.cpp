#include "core/skeleton_fused.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace adba::core {

using net::kFusedLanes;

FusedSkeleton::FusedSkeleton(const SkeletonConfig& cfg, FusedCoinSpec coin) {
    // Same contracts as SkeletonBatch::rearm, checked once per block set.
    ADBA_EXPECTS(cfg.n > 0);
    ADBA_EXPECTS_MSG(3 * static_cast<std::uint64_t>(cfg.t) < cfg.n, "requires t < n/3");
    ADBA_EXPECTS(cfg.phases >= 1);
    if (coin.kind == FusedCoinSpec::Kind::Dealer) ADBA_EXPECTS(coin.dealer != nullptr);
    cfg_ = cfg;
    coin_ = std::move(coin);
}

void FusedSkeleton::rearm(const std::uint64_t* input_plane, const SeedTree* lane_seeds) {
    const NodeId n = cfg_.n;
    val_.assign(input_plane, input_plane + n);
    decided_.assign(n, 0);
    finish_.assign(n, 0);
    flushing_.assign(n, 0);
    halted_.assign(n, 0);
    m_dec_.assign(n, 0);
    m_val1_.assign(n, 0);
    m_fin_.assign(n, 0);
    m_coin_.assign(n, 0);
    // Per-cell streams identical to the scalar batches': lane j's stream
    // (NodeProtocol, v), consumed only by cell (v, j) — derived lazily at
    // the first draw (see cell_rng), so a block only pays for the cells
    // that actually flip coins.
    rng_.resize(static_cast<std::size_t>(n) * kFusedLanes);
    rng_live_.assign(n, 0);
    for (unsigned j = 0; j < kFusedLanes; ++j) lane_master_[j] = lane_seeds[j].master();
    if (coin_.kind == FusedCoinSpec::Kind::Dealer)
        for (unsigned j = 0; j < kFusedLanes; ++j)
            dealer_seed_[j] = lane_seeds[j].seed(StreamPurpose::DealerCoin);
}

void FusedSkeleton::send_round(Round r, net::FusedFrame& frame) {
    const NodeId n = cfg_.n;
    const Phase p = r / 2;
    const bool round2 = (r % 2) != 0;
    frame.kind = round2 ? net::MsgKind::Vote2 : net::MsgKind::Vote1;
    frame.phase = p;

    NodeId flip_first = 0, flip_last = 0;
    if (round2 && coin_.kind == FusedCoinSpec::Kind::Committee) {
        const auto range = coin_.schedule.range(coin_.schedule.committee_of_phase(p));
        flip_first = range.first;
        flip_last = range.second;
    }

    for (NodeId v = 0; v < n; ++v) {
        const std::uint64_t act = ~frame.byz[v] & ~halted_[v];
        frame.sent[v] = act;
        frame.val[v] = val_[v];
        frame.flag[v] = decided_[v];
        if (!round2) continue;
        if (v >= flip_first && v < flip_last) {
            // The flip is drawn before any round-2 delivery is seen
            // (Lemma 5 independence) for every live lane, flushing or not —
            // exactly the scalar send path's draw set.
            std::uint64_t pos = 0, neg = 0;
            for (std::uint64_t lanes = act; lanes != 0; lanes &= lanes - 1) {
                const unsigned j = static_cast<unsigned>(std::countr_zero(lanes));
                if (cell_rng(v, j).sign() > 0)
                    pos |= std::uint64_t{1} << j;
                else
                    neg |= std::uint64_t{1} << j;
            }
            frame.coinp[v] = pos;
            frame.coinn[v] = neg;
        }
        halted_[v] |= act & flushing_[v];  // second flush broadcast done
    }
}

void FusedSkeleton::receive_round(Round r, const net::FusedFrame& frame) {
    const NodeId n = cfg_.n;
    const Phase p = r / 2;
    const bool round2 = (r % 2) != 0;
    const net::MsgKind kind = round2 ? net::MsgKind::Vote2 : net::MsgKind::Vote1;
    const Count quorum = cfg_.n - cfg_.t;
    const Count supermin = cfg_.t + 1;

    // Honest per-lane counts, bit-sliced: one pass over the planes feeds
    // every lane's histogram (val_cnt round 1, val_flag_cnt round 2).
    net::kern::LaneAdder a0, a1;
    for (NodeId v = 0; v < n; ++v) {
        const std::uint64_t present =
            round2 ? frame.sent[v] & frame.flag[v] : frame.sent[v];
        a0.add(present & ~frame.val[v]);
        a1.add(present & frame.val[v]);
    }
    Count h0[kFusedLanes], h1[kFusedLanes];
    a0.counts(h0);
    a1.counts(h1);

    NodeId flip_first = 0, flip_last = 0;
    std::int64_t hcoin[kFusedLanes] = {};
    const bool committee =
        round2 && coin_.kind == FusedCoinSpec::Kind::Committee;
    if (committee) {
        const auto range = coin_.schedule.range(coin_.schedule.committee_of_phase(p));
        flip_first = range.first;
        flip_last = range.second;
        // Honest committee coin sum per lane (coin planes are nonzero only
        // inside the flip range; mask with sent so corrupted members drop
        // out exactly as the shared tally drops Byzantine senders).
        net::kern::LaneAdder apos, aneg;
        for (NodeId v = flip_first; v < flip_last; ++v) {
            apos.add(frame.sent[v] & frame.coinp[v]);
            aneg.add(frame.sent[v] & frame.coinn[v]);
        }
        Count cp[kFusedLanes], cn[kFusedLanes];
        apos.counts(cp);
        aneg.counts(cn);
        for (unsigned j = 0; j < kFusedLanes; ++j)
            hcoin[j] = static_cast<std::int64_t>(cp[j]) - cn[j];
    }

    t_dec_.reset(n);
    t_val1_.reset(n);
    if (round2) {
        t_fin_.reset(n);
        t_coin_.reset(n);
    }

    for (std::uint64_t lanes = frame.active; lanes != 0; lanes &= lanes - 1) {
        const unsigned j = static_cast<unsigned>(std::countr_zero(lanes));
        const std::uint64_t bit = std::uint64_t{1} << j;
        const auto& rows = frame.rows(j);
        segs_.rebuild(rows, n);
        bool dealer_drawn = false;
        Bit dealer_bit = 0;

        // Incremental count sweep: start from the segment-0 view of every
        // row, record each row's side flip as a delta at its boundary, and
        // fold the deltas in boundary order as the segments advance — the
        // running (c0, c1, cdelta) then equal the old per-segment row scan
        // at every segment, in O(rows log rows + segments) per lane.
        const auto classify = [&](const net::Message* m, const net::FusedRow& row,
                                  std::int16_t& d0, std::int16_t& d1,
                                  std::int16_t& dc) {
            if (m == nullptr) return;
            if (m->kind == kind && m->phase == p && (!round2 || m->flag != 0)) {
                if ((m->val & 1) != 0)
                    ++d1;
                else
                    ++d0;
            }
            if (committee && m->kind == net::MsgKind::Vote2 && m->phase == p &&
                row.sender >= flip_first && row.sender < flip_last)
                dc = static_cast<std::int16_t>(
                    dc + (m->coin > 0 ? 1 : (m->coin < 0 ? -1 : 0)));
        };
        std::int64_t c0 = h0[j], c1 = h1[j], cdelta = 0;
        deltas_.clear();
        for (const net::FusedRow& row : rows) {
            std::int16_t l0 = 0, l1 = 0, lc = 0, g0 = 0, g1 = 0, gc = 0;
            classify(row.has_low ? &row.low : nullptr, row, l0, l1, lc);
            classify(row.has_high ? &row.high : nullptr, row, g0, g1, gc);
            if (row.boundary > 0) {  // segment 0 sees the low side
                c0 += l0;
                c1 += l1;
                cdelta += lc;
                if (row.boundary < n && (g0 != l0 || g1 != l1 || gc != lc))
                    deltas_.push_back({row.boundary,
                                       static_cast<std::int16_t>(g0 - l0),
                                       static_cast<std::int16_t>(g1 - l1),
                                       static_cast<std::int16_t>(gc - lc)});
            } else {  // boundary 0: the high side everywhere
                c0 += g0;
                c1 += g1;
                cdelta += gc;
            }
        }
        // Insertion sort: the delta list is tiny and the supported
        // adversaries share one split boundary, so it is already sorted —
        // std::sort's dispatch overhead would dominate the actual work.
        for (std::size_t a = 1; a < deltas_.size(); ++a) {
            const RowDelta d = deltas_[a];
            std::size_t b = a;
            while (b > 0 && deltas_[b - 1].boundary > d.boundary) {
                deltas_[b] = deltas_[b - 1];
                --b;
            }
            deltas_[b] = d;
        }
        std::size_t dp = 0;

        for (std::size_t i = 0; i < segs_.count(); ++i) {
            const NodeId lo = segs_.lo(i);
            const NodeId hi = segs_.hi(i);
            while (dp < deltas_.size() && deltas_[dp].boundary <= lo) {
                c0 += deltas_[dp].d0;
                c1 += deltas_[dp].d1;
                cdelta += deltas_[dp].dcoin;
                ++dp;
            }
            const Count cnt[2] = {static_cast<Count>(c0), static_cast<Count>(c1)};
            const std::int64_t coin_delta = cdelta;

            if (!round2) {
                ADBA_ENSURES_MSG(!(cnt[0] >= quorum && cnt[1] >= quorum),
                                 "two n-t quorums cannot coexist (t < n/3)");
                if (cnt[0] >= quorum) {
                    t_dec_.mark(lo, hi, bit);
                } else if (cnt[1] >= quorum) {
                    t_dec_.mark(lo, hi, bit);
                    t_val1_.mark(lo, hi, bit);
                }
                continue;
            }

            ADBA_ENSURES_MSG(!(cnt[0] >= supermin && cnt[1] >= supermin),
                             "Lemma 3 violated: decided quorums for both values");
            bool fin = false, dec = false;
            Bit b = 0;
            if (cnt[0] >= quorum) {
                fin = dec = true;
            } else if (cnt[1] >= quorum) {
                fin = dec = true;
                b = 1;
            } else if (cnt[0] >= supermin) {
                dec = true;
            } else if (cnt[1] >= supermin) {
                dec = true;
                b = 1;
            }
            if (dec) {
                t_dec_.mark(lo, hi, bit);
                if (fin) t_fin_.mark(lo, hi, bit);
                if (b != 0) t_val1_.mark(lo, hi, bit);
                continue;
            }
            // Case 3: adopt the phase coin.
            switch (coin_.kind) {
                case FusedCoinSpec::Kind::Committee:
                    if (hcoin[j] + coin_delta >= 0) t_val1_.mark(lo, hi, bit);
                    break;
                case FusedCoinSpec::Kind::Dealer:
                    if (!dealer_drawn) {
                        dealer_bit = coin_.dealer(dealer_seed_[j], p);
                        dealer_drawn = true;
                    }
                    if (dealer_bit != 0) t_val1_.mark(lo, hi, bit);
                    break;
                case FusedCoinSpec::Kind::Local:
                    t_coin_.mark(lo, hi, bit);  // per-cell draw at the write
                    break;
            }
        }
    }

    t_dec_.sweep(m_dec_.data(), n);
    t_val1_.sweep(m_val1_.data(), n);
    if (round2) {
        t_fin_.sweep(m_fin_.data(), n);
        t_coin_.sweep(m_coin_.data(), n);
    }

    const bool last_phase =
        cfg_.mode == AgreementMode::WhpFixedPhases && p + 1 == cfg_.phases;
    for (NodeId v = 0; v < n; ++v) {
        const std::uint64_t act = ~frame.byz[v] & ~halted_[v] & ~flushing_[v];
        if (!round2) {
            // Round 1: val is written only where a quorum decided.
            const std::uint64_t dw = m_dec_[v] & act;
            val_[v] = (val_[v] & ~dw) | (m_val1_[v] & act);
            decided_[v] = (decided_[v] & ~act) | dw;
            continue;
        }
        // Round 2: every active receiver writes val (case 1/2 adopt b,
        // case 3 adopts the coin).
        std::uint64_t v1 = m_val1_[v];
        std::uint64_t cm = m_coin_[v] & act;
        if (cm != 0) {
            for (; cm != 0; cm &= cm - 1) {
                const unsigned j = static_cast<unsigned>(std::countr_zero(cm));
                if (cell_rng(v, j).bit() != 0) v1 |= std::uint64_t{1} << j;
            }
        }
        val_[v] = (val_[v] & ~act) | (v1 & act);
        decided_[v] = (decided_[v] & ~act) | (m_dec_[v] & act);
        const std::uint64_t fin = m_fin_[v] & act;
        finish_[v] |= fin;
        flushing_[v] |= fin;  // apply_phase_end: finishers flush next phase
        if (last_phase) halted_[v] |= act & ~fin;  // fixed-phase exhaustion
    }
}

}  // namespace adba::core
