#include "core/common_coin.hpp"

#include "support/contracts.hpp"

namespace adba::core {

CoinFlipNode::CoinFlipNode(CoinConfig cfg, NodeId self, Xoshiro256 rng)
    : cfg_(cfg), self_(self), rng_(rng) {
    ADBA_EXPECTS(cfg_.n > 0);
    ADBA_EXPECTS(cfg_.designated >= 1 && cfg_.designated <= cfg_.n);
    ADBA_EXPECTS(self_ < cfg_.n);
}

std::optional<net::Message> CoinFlipNode::round_send(Round r) {
    ADBA_EXPECTS(r == 0);
    if (self_ >= cfg_.designated) return std::nullopt;  // only designated flip
    flip_ = rng_.sign();
    net::Message m;
    m.kind = net::MsgKind::Coin;
    m.coin = flip_;
    return m;
}

void CoinFlipNode::round_receive(Round r, const net::ReceiveView& view) {
    ADBA_EXPECTS(r == 0);
    std::int64_t sum = 0;
    for (NodeId u = 0; u < cfg_.designated; ++u) {
        const net::Message* m = view.from(u);
        if (m == nullptr || m->kind != net::MsgKind::Coin) continue;
        if (m->coin > 0)
            ++sum;
        else if (m->coin < 0)
            --sum;
    }
    out_ = sum >= 0 ? Bit{1} : Bit{0};
    halted_ = true;
}

std::vector<std::unique_ptr<net::HonestNode>> make_coin_nodes(const CoinConfig& cfg,
                                                              const SeedTree& seeds) {
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(cfg.n);
    for (NodeId v = 0; v < cfg.n; ++v) {
        nodes.push_back(std::make_unique<CoinFlipNode>(
            cfg, v, seeds.stream(StreamPurpose::NodeProtocol, v)));
    }
    return nodes;
}

}  // namespace adba::core
