#include "core/common_coin.hpp"

#include "support/contracts.hpp"

namespace adba::core {

CoinFlipNode::CoinFlipNode(CoinConfig cfg, NodeId self, Xoshiro256 rng) {
    reinit(cfg, self, rng);  // one initialization body for both paths
}

void CoinFlipNode::reinit(CoinConfig cfg, NodeId self, Xoshiro256 rng) {
    ADBA_EXPECTS(cfg.n > 0);
    ADBA_EXPECTS(cfg.designated >= 1 && cfg.designated <= cfg.n);
    ADBA_EXPECTS(self < cfg.n);
    cfg_ = cfg;
    self_ = self;
    rng_ = rng;
    flip_ = 0;
    out_ = 0;
    halted_ = false;
}

std::optional<net::Message> CoinFlipNode::round_send(Round r) {
    ADBA_EXPECTS(r == 0);
    if (self_ >= cfg_.designated) return std::nullopt;  // only designated flip
    flip_ = rng_.sign();
    net::Message m;
    m.kind = net::MsgKind::Coin;
    m.coin = flip_;
    return m;
}

void CoinFlipNode::round_receive(Round r, const net::ReceiveView& view) {
    ADBA_EXPECTS(r == 0);
    const std::int64_t sum = view.coin_sum(net::MsgKind::Coin, 0,
                                           /*check_phase=*/false, 0, cfg_.designated);
    out_ = sum >= 0 ? Bit{1} : Bit{0};
    halted_ = true;
}

std::vector<std::unique_ptr<net::HonestNode>> make_coin_nodes(const CoinConfig& cfg,
                                                              const SeedTree& seeds) {
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(cfg.n);
    for (NodeId v = 0; v < cfg.n; ++v) {
        nodes.push_back(std::make_unique<CoinFlipNode>(
            cfg, v, seeds.stream(StreamPurpose::NodeProtocol, v)));
    }
    return nodes;
}

void reinit_coin_nodes(const CoinConfig& cfg, const SeedTree& seeds,
                       std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    net::reinit_node_pool<CoinFlipNode>(nodes, cfg.n, [&](CoinFlipNode& nd, NodeId v) {
        nd.reinit(cfg, v, seeds.stream(StreamPurpose::NodeProtocol, v));
    });
}

}  // namespace adba::core
