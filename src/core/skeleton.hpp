// Rabin-style phase skeleton shared by every shared-coin agreement protocol
// in this repository (Algorithm 3, both Chor-Coan baselines, the Rabin
// trusted-dealer reference, and the local-coin ablation).
//
// Each phase has two broadcast rounds (paper §3.2, Algorithm 3):
//   round 1: broadcast (phase, 1, val, decided);
//            if >= n-t identical vals b received: val=b, decided=true
//            else decided=false.
//   round 2: broadcast (phase, 2, val, decided) [+ coin contribution];
//            case 1: >= n-t (b, decided=true)  -> val=b, Finish
//            case 2: >= t+1 (b, decided=true)  -> val=b, decided=true
//            case 3: otherwise                 -> val=coin, decided=false.
//
// Termination ("finish flush"): a node that sets Finish in phase i
// broadcasts its (val, decided=true) in BOTH rounds of phase i+1, then
// halts. Lemma 4's proof requires the finisher's decided=true value to be
// visible in the round-2 tallies of phase i+1 — exiting right after the
// round-1 broadcast (the terser reading of Algorithm 3 lines 9-10) would
// leave remaining honest nodes short of the n-t threshold whenever
// f > h-(n-t) nodes finish simultaneously. One extra broadcast round per
// finishing node preserves the lemma's guarantee (finisher halts in phase
// i+1; everyone else by phase i+2) at identical asymptotic cost. See
// DESIGN.md §5.
//
// Subclasses supply only the coin source:
//   * coin_contribution(p) — this node's ±1 flip piggybacked on its round-2
//     broadcast of phase p (0 = not a flipper this phase);
//   * coin_value(p, view)  — the common-coin bit derived from this round's
//     deliveries (or private/dealer randomness).
#pragma once

#include <cstdint>
#include <optional>

#include "net/engine.hpp"
#include "net/node.hpp"
#include "rand/rng.hpp"
#include "support/types.hpp"

namespace adba::core {

/// Termination mode (paper §3.2 "Las Vegas Byzantine Agreement").
enum class AgreementMode : std::uint8_t {
    /// Run exactly `phases` phases; agreement holds w.h.p. (Theorem 2).
    WhpFixedPhases,
    /// Cycle committees forever; always agree, expected-round bound
    /// (paper §3.2, Las Vegas variant). The engine's max_rounds is the
    /// safety stop.
    LasVegas,
};

struct SkeletonConfig {
    NodeId n = 0;
    Count t = 0;          ///< threshold parameter (n-t / t+1 tallies)
    Count phases = 1;     ///< phase budget in WhpFixedPhases mode
    AgreementMode mode = AgreementMode::WhpFixedPhases;
};

/// Common machinery for two-round-per-phase shared-coin agreement nodes.
class RabinSkeletonNode : public net::HonestNode {
public:
    RabinSkeletonNode(SkeletonConfig cfg, NodeId self, Bit input, Xoshiro256 rng);

    /// Re-arms a pooled node for a fresh trial (same contract as the
    /// constructor); trial runners call this instead of re-allocating.
    void reinit(SkeletonConfig cfg, NodeId self, Bit input, Xoshiro256 rng);

    std::optional<net::Message> round_send(Round r) final;
    void round_receive(Round r, const net::ReceiveView& view) final;
    bool halted() const final { return halted_; }
    Bit current_value() const final { return val_; }
    bool current_decided() const final { return decided_; }

    // --- introspection for tests / full-information adversaries ---
    bool finish_flag() const { return finish_; }
    /// Phase in which this node set Finish (engaged termination), if any.
    std::optional<Phase> finish_phase() const { return finish_phase_; }
    NodeId self() const { return self_; }

protected:
    /// This node's ±1 flip for phase p (0 = does not flip). Called exactly
    /// once per phase at round-2 send time, before any round-2 message is
    /// received — Lemma 5's independence requirement.
    virtual CoinSign coin_contribution(Phase p) = 0;

    /// The phase-p coin this node adopts in case 3, computed from the
    /// round-2 deliveries.
    virtual Bit coin_value(Phase p, const net::ReceiveView& view) = 0;

    const SkeletonConfig& cfg() const { return cfg_; }
    Xoshiro256& rng() { return rng_; }

protected:
    /// For subclasses that construct via their own reinit() (the constructor
    /// and the pooled path then share one initialization body).
    RabinSkeletonNode() = default;

private:
    void receive_round1(Phase p, const net::ReceiveView& view);
    void receive_round2(Phase p, const net::ReceiveView& view);

    SkeletonConfig cfg_;
    NodeId self_ = 0;
    Xoshiro256 rng_;

    Bit val_ = 0;
    bool decided_ = false;
    bool finish_ = false;
    std::optional<Phase> finish_phase_;
    bool flushing_ = false;  ///< in the post-Finish broadcast phase
    bool halted_ = false;
};

/// Sums sanitized coin contributions of a block-committee from round-2
/// deliveries: Byzantine coin fields are clamped to ±1, contributions from
/// outside the committee are ignored (paper §3.2: "messages from byzantine
/// nodes not in the committee are ignored"). Shared by Algorithm 3 and the
/// Chor-Coan baselines. Backed by the view's shared-tally coin prefix, so
/// the honest contribution costs O(1) per receiver.
std::int64_t committee_coin_sum(const net::ReceiveView& view, Phase p, NodeId first,
                                NodeId last);

}  // namespace adba::core
