// Committee sizing for Algorithm 3 (paper §3.2) and block-committee
// bookkeeping shared with the Chor-Coan baselines.
//
// The paper sets
//     c = min( α · ⌈t²/n⌉ · log n ,  3α · t / log n )   committees,
//     s = n / c                                          nodes each,
// nodes grouped by ID blocks: committee k = IDs in [k·s, (k+1)·s).
//
// Finite-n refinements (documented in DESIGN.md §5):
//  * we clamp c to [1, n] and add a w.h.p. phase floor of ⌈γ·log2 n⌉ —
//    the paper's union-bound over good phases needs Ω(log n) phases, which
//    the asymptotic statement supplies implicitly; at small t the raw min
//    would give O(1) phases and only constant success probability. Early
//    termination makes the floor free in measured rounds.
//  * the last committee may be smaller than s (paper ignores this; we
//    handle it exactly).
#pragma once

#include <cstdint>
#include <utility>

#include "support/types.hpp"

namespace adba::core {

/// Partition of [0, n) into ID blocks of size `block` used as committees,
/// cycled across phases (phase p -> committee p mod num_blocks).
struct BlockSchedule {
    NodeId n = 0;
    NodeId block = 1;       ///< target committee size s
    Count num_blocks = 1;   ///< ceil(n / block)

    static BlockSchedule make(NodeId n, NodeId block_size);

    /// Committee index active in phase p.
    Count committee_of_phase(Phase p) const { return static_cast<Count>(p) % num_blocks; }
    /// Half-open ID range [first, last) of committee k.
    std::pair<NodeId, NodeId> range(Count k) const;
    /// True iff node v flips a coin in phase p.
    bool flips_in_phase(NodeId v, Phase p) const;
    /// Size of committee k (the last block may be short).
    NodeId size(Count k) const;
};

/// Tunable analysis constants (paper's α plus our finite-n γ floor and the
/// Chor-Coan group-size β).
///
/// Default α = 4: the paper's analysis wants α - 4·sqrt(α) >= γ (α ≈ 18 for
/// γ = 1), which is very conservative; empirically the protocol needs the
/// total phase-ruin cost  c · ½·sqrt(n/c) = ½·sqrt(c·n)  (the greedy rushing
/// adversary's bill for ruining every phase, which scales with sqrt(α)) to
/// exceed the corruption budget t with margin. α = 2 leaves t = n/3 at
/// n = 64 right at the boundary (~10% measured failure; see EXPERIMENTS.md
/// E9); α = 4 restores w.h.p. behaviour across the measured range while
/// keeping rounds small through early termination.
struct Tuning {
    double alpha = 4.0;  ///< paper's α (committee count multiplier)
    double gamma = 2.0;  ///< w.h.p. phase floor multiplier (finite-n)
    double beta = 1.0;   ///< Chor-Coan classic group size multiplier (β·log2 n)

    friend bool operator==(const Tuning&, const Tuning&) = default;
};

/// Fully resolved parameters for one Algorithm 3 instance.
struct AgreementParams {
    NodeId n = 0;
    Count t = 0;         ///< tolerated Byzantine budget, t < n/3
    Count phases = 1;    ///< c (w.h.p. mode runs exactly this many phases)
    BlockSchedule schedule;

    /// Computes c and s per the paper's formula with the finite-n floor.
    /// Requires n >= 1 and t < n/3 (n >= 3t+1).
    static AgreementParams compute(NodeId n, Count t, const Tuning& tune = {});
};

/// The paper's round budget for the w.h.p. protocol: 2 rounds per phase plus
/// one flush phase for finishers (Lemma 4's "+2 phases").
Round max_rounds_whp(const AgreementParams& p);

/// Number of committees Algorithm 3 uses, before the w.h.p. floor — the raw
/// min(α⌈t²/n⌉log n, 3αt/log n). Exposed for tests and the analysis module.
Count raw_committee_count(NodeId n, Count t, double alpha);

}  // namespace adba::core
