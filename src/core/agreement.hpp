// Algorithm 3 (paper §3.2): committee-based Byzantine agreement under an
// adaptive full-information rushing adversary, t < n/3.
//
// The node is the Rabin skeleton plus the paper's committee coin: phase i's
// coin is produced by committee i (ID block of size s = n/c), each member
// piggybacking a ±1 flip on its round-2 broadcast; every node adopts the
// sign of the committee sum (Algorithm 2 / Corollary 1).
//
// Round complexity: phases = c = min(α⌈t²/n⌉log n, 3αt/log n) (+ the
// finite-n w.h.p. floor, see core/params.hpp), two rounds per phase, early
// termination per Lemma 4.
#pragma once

#include <memory>
#include <vector>

#include "core/params.hpp"
#include "core/skeleton.hpp"
#include "core/skeleton_batch.hpp"
#include "net/node.hpp"
#include "rand/seed_tree.hpp"

namespace adba::core {

/// One node of Algorithm 3.
class Algorithm3Node final : public RabinSkeletonNode {
public:
    Algorithm3Node(const AgreementParams& params, AgreementMode mode, NodeId self,
                   Bit input, Xoshiro256 rng);

    /// Re-arms a pooled node for a fresh trial (constructor contract).
    void reinit(const AgreementParams& params, AgreementMode mode, NodeId self,
                Bit input, Xoshiro256 rng);

    const BlockSchedule& schedule() const { return sched_; }

protected:
    CoinSign coin_contribution(Phase p) override;
    Bit coin_value(Phase p, const net::ReceiveView& view) override;

private:
    BlockSchedule sched_;
};

/// Builds the full node vector for one run: node v gets inputs[v] and an
/// independent protocol stream from the seed tree.
std::vector<std::unique_ptr<net::HonestNode>> make_algorithm3_nodes(
    const AgreementParams& params, AgreementMode mode, const std::vector<Bit>& inputs,
    const SeedTree& seeds);

/// Re-arms a pool previously built by make_algorithm3_nodes for a new trial,
/// with zero allocation. Pool size and node types must match.
void reinit_algorithm3_nodes(const AgreementParams& params, AgreementMode mode,
                             const std::vector<Bit>& inputs, const SeedTree& seeds,
                             std::vector<std::unique_ptr<net::HonestNode>>& nodes);

/// Native SoA batch form of the same protocol (core/skeleton_batch.hpp with
/// the committee coin): bit-identical to the node vector above, one
/// dispatch per engine beat.
std::unique_ptr<net::BatchProtocol> make_algorithm3_batch(
    const AgreementParams& params, AgreementMode mode, const std::vector<Bit>& inputs,
    const SeedTree& seeds);

/// Re-arms a batch built by make_algorithm3_batch for a new trial.
void reinit_algorithm3_batch(const AgreementParams& params, AgreementMode mode,
                             const std::vector<Bit>& inputs, const SeedTree& seeds,
                             net::BatchProtocol& batch);

}  // namespace adba::core
