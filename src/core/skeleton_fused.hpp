// Word-parallel Rabin skeleton over the fused trial plane: 64 independent
// trials of the two-round phase machine per plane word, bit j = trial j.
//
// Semantics are EXACTLY core/skeleton_batch.hpp's SkeletonBatch, lane by
// lane — same thresholds, same finish-flush termination, same per-(node,
// lane) randomness draws in the same order — so lane j of a fused block is
// bit-identical to the scalar trial seeded with lane j's SeedTree. The trick
// that keeps receive word-parallel under Byzantine pressure: supported
// adversaries deliver piecewise-constant split_as patterns, so a lane's
// per-receiver counts are constant on the segments its pattern boundaries
// cut — every threshold decision is evaluated once per (lane, segment) and
// materialized for all receivers with one prefix-XOR sweep (LaneToggles).
//
// The coin hooks become a FusedCoinSpec: Committee sums live in bit-sliced
// LaneAdder columns (honest part) plus per-(lane, segment) Byzantine
// deltas; Dealer coins are a pure per-lane function of the phase; Local
// coins draw from the focused (node, lane) stream exactly where the scalar
// case-3 path would.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/params.hpp"
#include "core/skeleton.hpp"
#include "core/skeleton_batch.hpp"
#include "net/fused_plane.hpp"
#include "rand/rng.hpp"
#include "rand/seed_tree.hpp"

namespace adba::core {

/// Coin source of a FusedSkeleton — BatchCoinSpec with the dealer hook
/// seed-parameterized so each lane evaluates it under its own trial's
/// DealerCoin stream seed.
struct FusedCoinSpec {
    using Kind = BatchCoinSpec::Kind;
    Kind kind = Kind::Local;
    BlockSchedule schedule;  ///< Committee only
    /// Dealer only: pure coin function of (per-lane dealer seed, phase).
    std::function<Bit(std::uint64_t, Phase)> dealer;
};

/// 64-lane Rabin skeleton: one object, n nodes x 64 trials, bit planes.
class FusedSkeleton final : public net::FusedProtocol {
public:
    FusedSkeleton(const SkeletonConfig& cfg, FusedCoinSpec coin);

    NodeId n() const override { return cfg_.n; }
    void rearm(const std::uint64_t* input_plane, const SeedTree* lane_seeds) override;
    void send_round(Round r, net::FusedFrame& frame) override;
    void receive_round(Round r, const net::FusedFrame& frame) override;
    const std::uint64_t* value_plane() const override { return val_.data(); }
    const std::uint64_t* decided_plane() const override { return decided_.data(); }
    const std::uint64_t* halted_plane() const override { return halted_.data(); }

private:
    SkeletonConfig cfg_;
    FusedCoinSpec coin_;
    std::vector<std::uint64_t> val_;
    std::vector<std::uint64_t> decided_;
    std::vector<std::uint64_t> finish_;
    std::vector<std::uint64_t> flushing_;
    std::vector<std::uint64_t> halted_;
    /// Per-(node, lane) protocol streams, lane-major: rng_[v * 64 + j] is
    /// lane j's stream (NodeProtocol, v) — private per cell, so fused
    /// iteration order never perturbs another cell's draws. Streams are
    /// constructed LAZILY at the first draw (rng_live_[v] bit j): under the
    /// Committee coin only committee-member cells ever draw, so eagerly
    /// deriving all n x 64 streams per block would dominate small-n rearm.
    /// Laziness is invisible to determinism — the stream is a pure function
    /// of (lane master, v), whenever it is built.
    std::vector<Xoshiro256> rng_;
    std::vector<std::uint64_t> rng_live_;
    std::uint64_t lane_master_[net::kFusedLanes] = {};
    std::uint64_t dealer_seed_[net::kFusedLanes] = {};

    Xoshiro256& cell_rng(NodeId v, unsigned j) {
        const std::uint64_t bit = std::uint64_t{1} << j;
        Xoshiro256& g = rng_[static_cast<std::size_t>(v) * net::kFusedLanes + j];
        if ((rng_live_[v] & bit) == 0) {
            g = SeedTree(lane_master_[j]).stream(StreamPurpose::NodeProtocol, v);
            rng_live_[v] |= bit;
        }
        return g;
    }

    /// One pattern row's count/coin contribution flip at its boundary: the
    /// incremental form of the per-segment row scan. Evaluating every row
    /// against every segment is O(rows x segments) per lane; since a row's
    /// visible side changes exactly once (at `boundary`), a sorted delta
    /// sweep does the same work in O(rows log rows + segments).
    struct RowDelta {
        NodeId boundary = 0;
        std::int16_t d0 = 0, d1 = 0, dcoin = 0;
    };

    // Recycled receive scratch.
    net::LaneSegments segs_;
    std::vector<RowDelta> deltas_;
    net::LaneToggles t_dec_, t_val1_, t_fin_, t_coin_;
    std::vector<std::uint64_t> m_dec_, m_val1_, m_fin_, m_coin_;
};

}  // namespace adba::core
