// Multi-valued Byzantine agreement via the Turpin-Coan reduction (IPL 1984)
// on top of Algorithm 3 — the extension any adopter of a binary BA library
// asks for first. Two prelude broadcast rounds reduce agreement over an
// arbitrary 32-bit domain to one binary agreement, preserving t < n/3:
//
//   prelude 1: broadcast the input word w_v; if some word reaches the n-t
//              quorum, remember it as the echo candidate, else echo ⊥;
//   prelude 2: broadcast the echo; x* := the most frequent non-⊥ echo,
//              m := its multiplicity; binary input := (m >= n-t).
//   then     : run Algorithm 3 on the binary input; output x* if it decides
//              1, otherwise the fixed fallback word.
//
// Safety sketch (tested, not proved here): two honest nodes cannot echo
// different words (two n-t quorums intersect in an honest node); if the
// binary protocol decides 1, validity forces at least one honest binary
// input 1, so >= n-2t >= t+1 honest echoed x*, which then dominates every
// other word at every honest node — all honest x* agree.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/agreement.hpp"
#include "core/params.hpp"
#include "net/node.hpp"
#include "rand/seed_tree.hpp"

namespace adba::core {

struct MultiValuedParams {
    AgreementParams binary;      ///< inner Algorithm 3 parameters
    net::Word fallback = 0;      ///< output when the binary protocol decides 0
    /// Inner protocol mode; LasVegas gives the always-agree multi-valued
    /// variant (the inner run cycles committees until termination).
    AgreementMode mode = AgreementMode::WhpFixedPhases;

    static MultiValuedParams compute(NodeId n, Count t, const Tuning& tune = {},
                                     net::Word fallback = 0,
                                     AgreementMode mode = AgreementMode::WhpFixedPhases);
};

/// One participant of the Turpin-Coan reduction wrapping Algorithm 3.
class TurpinCoanNode final : public net::HonestNode {
public:
    TurpinCoanNode(const MultiValuedParams& params, NodeId self, net::Word input,
                   Xoshiro256 rng);

    /// Re-arms a pooled node for a fresh trial (constructor contract). The
    /// embedded Algorithm 3 node is kept allocated and re-armed in place.
    void reinit(const MultiValuedParams& params, NodeId self, net::Word input,
                Xoshiro256 rng);

    std::optional<net::Message> round_send(Round r) override;
    void round_receive(Round r, const net::ReceiveView& view) override;
    bool halted() const override;
    /// Binary view (the inner protocol's bit); use output_word() for the
    /// multi-valued result.
    Bit current_value() const override;
    bool current_decided() const override;

    /// The agreed word (valid once halted).
    net::Word output_word() const;
    /// True when the network agreed on a proposed word rather than falling
    /// back (binary outcome 1).
    bool decided_real_value() const;

private:
    MultiValuedParams params_;
    NodeId self_ = 0;
    Xoshiro256 rng_;
    net::Word input_ = 0;
    // Prelude state.
    std::optional<net::Word> echo_;  ///< nullopt = ⊥
    net::Word x_star_ = 0;
    bool x_star_valid_ = false;
    // Inner binary protocol, armed when the prelude fixes its input. The
    // allocation is pooled across trials; inner_live_ marks whether the
    // current trial's prelude has armed it yet.
    std::unique_ptr<Algorithm3Node> inner_;
    bool inner_live_ = false;
};

std::vector<std::unique_ptr<net::HonestNode>> make_turpin_coan_nodes(
    const MultiValuedParams& params, const std::vector<net::Word>& inputs,
    const SeedTree& seeds);

/// Re-arms a pool built by make_turpin_coan_nodes for a new trial.
void reinit_turpin_coan_nodes(const MultiValuedParams& params,
                              const std::vector<net::Word>& inputs,
                              const SeedTree& seeds,
                              std::vector<std::unique_ptr<net::HonestNode>>& nodes);

/// Engine round budget: 2 prelude rounds + the binary budget.
Round max_rounds_whp(const MultiValuedParams& p);

}  // namespace adba::core
