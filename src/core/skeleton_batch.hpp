// SoA batch implementation of the Rabin phase skeleton — the native
// BatchProtocol for every shared-coin agreement protocol in the repository
// (Algorithm 3, both Chor-Coan baselines, the Rabin trusted-dealer
// reference, and the local-coin ablation).
//
// Semantics are EXACTLY core/skeleton.hpp's RabinSkeletonNode — same state
// machine, same thresholds, same finish-flush termination, same per-node
// randomness draws in the same order — but the per-node state lives in flat
// arrays (val / decided / finish / flushing / halted planes plus one RNG
// stream per node in a contiguous vector) and the whole population steps
// under ONE virtual dispatch per engine beat. The receive step hoists the
// receiver-independent work out of the per-node loop entirely: the honest
// val/flag counts and coin prefix are read once per round from the shared
// RoundTally, and the per-receiver Byzantine deltas come from the tally's
// delta planes, so the inner loop is pure arithmetic over contiguous
// arrays. tests/test_batch_plane.cpp pins this class bit-identical to the
// per-node adapter across every compatible registry pair.
//
// The subclass coin hooks of RabinSkeletonNode become a BatchCoinSpec
// value: Committee (Algorithm 3 / Chor-Coan block schedules), Dealer (a
// public coin function of the phase), or Local (private per-node flips).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/params.hpp"
#include "core/skeleton.hpp"
#include "net/batch.hpp"
#include "net/sparse_plane.hpp"
#include "rand/rng.hpp"
#include "rand/seed_tree.hpp"

namespace adba::core {

/// The coin source for a SkeletonBatch — the data-only analogue of the
/// RabinSkeletonNode subclass hooks.
struct BatchCoinSpec {
    enum class Kind : std::uint8_t {
        Committee,  ///< phase-p committee members flip; coin = sign of sum
        Dealer,     ///< public coin: dealer(p), identical at every node
        Local,      ///< private coin: each case-3 node flips its own bit
    };
    Kind kind = Kind::Local;
    BlockSchedule schedule;           ///< Committee only
    std::function<Bit(Phase)> dealer; ///< Dealer only
};

/// Whole-population Rabin skeleton: one object, n nodes, flat planes.
class SkeletonBatch final : public net::BatchProtocol {
public:
    SkeletonBatch(const SkeletonConfig& cfg, BatchCoinSpec coin,
                  const std::vector<Bit>& inputs, const SeedTree& seeds);

    /// Re-arms a pooled batch for a fresh trial (constructor contract);
    /// zero allocation once warm.
    void rearm(const SkeletonConfig& cfg, BatchCoinSpec coin,
               const std::vector<Bit>& inputs, const SeedTree& seeds);

    NodeId n() const override { return cfg_.n; }
    void send_all(Round r, net::RoundBuffer& buf) override;
    void receive_all(Round r, const net::RoundBuffer& buf,
                     const net::RoundTally& tally) override;
    void receive_all(Round r, const net::RoundBuffer& buf,
                     const net::DeliverySource& src) override;
    // Sharded beats: all per-node state (planes, RNG streams) is indexed by
    // node, so ranges write disjointly; every shared tally query — including
    // the committee coin — is hoisted into receive_prepare. Dealer coins must
    // be pure functions of the phase (the registry's are), so they may be
    // invoked from any shard.
    bool shardable() const override { return true; }
    void send_range(Round r, net::RoundBuffer& buf, NodeId lo, NodeId hi) override;
    void receive_prepare(Round r, const net::RoundBuffer& buf,
                         const net::RoundTally& tally) override;
    void receive_range(Round r, const net::RoundBuffer& buf,
                       const net::RoundTally& tally, NodeId lo, NodeId hi) override;
    // Sparse beats: vote counts come from sampled per-receiver estimates;
    // the committee coin stays EXACT (its sender range is the paper's
    // polylog committee — cheap to hear in full), hoisted exactly as in
    // receive_prepare. Dense sampling reproduces the flat integers, so the
    // Lemma 3 assertion stays armed there and relaxes only under real
    // sampling, where two t+1 estimates can statistically coexist.
    bool supports_sparse() const override { return true; }
    void receive_sparse_prepare(Round r, const net::RoundBuffer& buf,
                                const net::RoundTally& tally,
                                const net::SparsePlane& sparse) override;
    void receive_sparse_range(Round r, const net::RoundBuffer& buf,
                              const net::RoundTally& tally,
                              const net::SparsePlane& sparse, NodeId lo,
                              NodeId hi) override;
    const std::uint8_t* halted_plane() const override { return halted_.data(); }
    Bit value(NodeId v) const override { return val_[v]; }
    bool decided(NodeId v) const override { return decided_[v] != 0; }
    Bit output(NodeId v) const override { return val_[v]; }

private:
    /// Round-1 threshold update for node v given its (val 0, val 1) counts.
    void apply_round1(NodeId v, const std::array<Count, 2>& cnt);
    /// Round-2 update; `coin` is invoked only in case 3 (so RNG draws match
    /// the per-node path exactly). `checked` arms the Lemma 3 assertion —
    /// a theorem for exact counts, but not for sub-dense sampled estimates.
    template <typename CoinFn>
    void apply_round2(NodeId v, const std::array<Count, 2>& cnt_dec, bool checked,
                      CoinFn&& coin);
    /// Post-round-2 wrapper logic (finish flush / fixed-phase exhaustion).
    void apply_phase_end(NodeId v, Phase p);

    SkeletonConfig cfg_;
    BatchCoinSpec coin_;
    // receive_prepare → receive_range handoff; valid for one beat only.
    std::array<Count, 2> prep_base_{0, 0};
    const std::array<Count, 2>* prep_delta_ = nullptr;
    std::int64_t prep_honest_coin_ = 0;
    const std::int64_t* prep_coin_delta_ = nullptr;
    net::SparsePlane::Query prep_sparse_query_;  ///< sparse beats only
    std::vector<Bit> val_;
    std::vector<std::uint8_t> decided_;
    std::vector<std::uint8_t> finish_;
    std::vector<std::uint8_t> flushing_;
    std::vector<std::uint8_t> halted_;
    std::vector<Xoshiro256> rng_;  ///< per-node streams, flat
};

/// Factory + pooled-reinit pair mirroring make_*_nodes/reinit_*_nodes;
/// `reinit` checks the batch was built by this factory (type + size).
std::unique_ptr<net::BatchProtocol> make_skeleton_batch(
    const SkeletonConfig& cfg, BatchCoinSpec coin, const std::vector<Bit>& inputs,
    const SeedTree& seeds);
void reinit_skeleton_batch(const SkeletonConfig& cfg, BatchCoinSpec coin,
                           const std::vector<Bit>& inputs, const SeedTree& seeds,
                           net::BatchProtocol& batch);

}  // namespace adba::core
