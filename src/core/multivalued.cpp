#include "core/multivalued.hpp"

#include "support/contracts.hpp"

namespace adba::core {

MultiValuedParams MultiValuedParams::compute(NodeId n, Count t, const Tuning& tune,
                                             net::Word fallback, AgreementMode mode) {
    MultiValuedParams p;
    p.binary = AgreementParams::compute(n, t, tune);
    p.fallback = fallback;
    p.mode = mode;
    return p;
}

TurpinCoanNode::TurpinCoanNode(const MultiValuedParams& params, NodeId self,
                               net::Word input, Xoshiro256 rng) {
    reinit(params, self, input, rng);  // one initialization body for both paths
}

void TurpinCoanNode::reinit(const MultiValuedParams& params, NodeId self,
                            net::Word input, Xoshiro256 rng) {
    ADBA_EXPECTS(self < params.binary.n);
    params_ = params;
    self_ = self;
    rng_ = rng;
    input_ = input;
    echo_.reset();
    x_star_ = 0;
    x_star_valid_ = false;
    inner_live_ = false;  // the pooled inner node is re-armed by the prelude
}

std::optional<net::Message> TurpinCoanNode::round_send(Round r) {
    ADBA_EXPECTS(!halted());
    if (r == 0) {
        net::Message m;
        m.kind = net::MsgKind::TCValue;
        m.word = input_;
        return m;
    }
    if (r == 1) {
        net::Message m;
        m.kind = net::MsgKind::TCEcho;
        m.flag = echo_.has_value() ? 1 : 0;
        m.word = echo_.value_or(0);
        return m;
    }
    ADBA_ENSURES_MSG(inner_live_, "prelude must have armed the inner protocol");
    return inner_->round_send(r - 2);
}

void TurpinCoanNode::round_receive(Round r, const net::ReceiveView& view) {
    ADBA_EXPECTS(!halted());
    const NodeId n = params_.binary.n;
    const Count quorum = n - params_.binary.t;

    if (r == 0) {
        // The quorum uniqueness contract (two n-t quorums would intersect in
        // an honest double-voter) is enforced inside quorum_word.
        echo_ = view.quorum_word(net::MsgKind::TCValue, /*require_flag=*/false, quorum);
        return;
    }

    if (r == 1) {
        const auto plur =
            view.plurality_word(net::MsgKind::TCEcho, /*require_flag=*/true);
        Count best = 0;
        if (plur) {
            x_star_ = plur->first;  // ties broke to the smallest word
            best = plur->second;
        }
        x_star_valid_ = best > 0;
        const Bit binary_input = best >= quorum ? Bit{1} : Bit{0};
        if (inner_) {
            inner_->reinit(params_.binary, params_.mode, self_, binary_input, rng_);
        } else {
            inner_ = std::make_unique<Algorithm3Node>(params_.binary, params_.mode,
                                                      self_, binary_input, rng_);
        }
        inner_live_ = true;
        return;
    }

    ADBA_ENSURES_MSG(inner_live_, "prelude must have armed the inner protocol");
    inner_->round_receive(r - 2, view);
}

bool TurpinCoanNode::halted() const { return inner_live_ && inner_->halted(); }

Bit TurpinCoanNode::current_value() const {
    return inner_live_ ? inner_->current_value() : Bit{0};
}

bool TurpinCoanNode::current_decided() const {
    return inner_live_ && inner_->current_decided();
}

bool TurpinCoanNode::decided_real_value() const {
    return inner_live_ && inner_->output() == 1;
}

net::Word TurpinCoanNode::output_word() const {
    if (!decided_real_value()) return params_.fallback;
    // Binary outcome 1 implies some honest node saw a quorum of echoes, so
    // every honest x_star_ is defined and equal (header sketch).
    ADBA_ENSURES_MSG(x_star_valid_, "binary 1 without any echoed word");
    return x_star_;
}

std::vector<std::unique_ptr<net::HonestNode>> make_turpin_coan_nodes(
    const MultiValuedParams& params, const std::vector<net::Word>& inputs,
    const SeedTree& seeds) {
    ADBA_EXPECTS(inputs.size() == params.binary.n);
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    nodes.reserve(params.binary.n);
    for (NodeId v = 0; v < params.binary.n; ++v) {
        nodes.push_back(std::make_unique<TurpinCoanNode>(
            params, v, inputs[v], seeds.stream(StreamPurpose::NodeProtocol, v)));
    }
    return nodes;
}

void reinit_turpin_coan_nodes(const MultiValuedParams& params,
                              const std::vector<net::Word>& inputs,
                              const SeedTree& seeds,
                              std::vector<std::unique_ptr<net::HonestNode>>& nodes) {
    ADBA_EXPECTS(inputs.size() == params.binary.n);
    net::reinit_node_pool<TurpinCoanNode>(
        nodes, params.binary.n, [&](TurpinCoanNode& nd, NodeId v) {
            nd.reinit(params, v, inputs[v],
                      seeds.stream(StreamPurpose::NodeProtocol, v));
        });
}

Round max_rounds_whp(const MultiValuedParams& p) {
    return 2 + max_rounds_whp(p.binary);
}

}  // namespace adba::core
