#include "rand/rng.hpp"

#include "support/contracts.hpp"

namespace adba {

std::uint64_t splitmix64_next(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
    std::uint64_t s = x;
    return splitmix64_next(s);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
    // xoshiro must not be seeded with the all-zero state; splitmix expansion
    // of any seed (including 0) avoids that with probability 1 in practice,
    // and we guard explicitly regardless.
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64_next(sm);
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Xoshiro256::result_type Xoshiro256::operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
    ADBA_EXPECTS(bound > 0);
    if ((bound & (bound - 1)) == 0) return (*this)() & (bound - 1);  // power of two
    // Classic rejection sampling: draw from the largest multiple of `bound`
    // below 2^64 so the modulo is exactly uniform.
    const std::uint64_t limit = (~0ULL / bound) * bound;
    std::uint64_t x = (*this)();
    while (x >= limit) x = (*this)();
    return x % bound;
}

double Xoshiro256::uniform01() {
    // 53 high-quality bits into the mantissa.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Bit Xoshiro256::bit() { return static_cast<Bit>((*this)() >> 63); }

CoinSign Xoshiro256::sign() { return bit() ? CoinSign{1} : CoinSign{-1}; }

bool Xoshiro256::bernoulli(double p) {
    ADBA_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform01() < p;
}

}  // namespace adba
