#include "rand/seed_tree.hpp"

namespace adba {

std::uint64_t SeedTree::seed(StreamPurpose purpose, std::uint64_t index) const {
    // Two rounds of avalanche mixing over (master, purpose, index). A single
    // round already decorrelates, the second guards against the structured
    // (small-integer) inputs used here.
    std::uint64_t h = master_;
    h = mix64(h ^ (static_cast<std::uint64_t>(purpose) * 0xd1342543de82ef95ULL));
    h = mix64(h ^ (index * 0xaf251af3b0f025b5ULL));
    return h;
}

Xoshiro256 SeedTree::stream(StreamPurpose purpose, std::uint64_t index) const {
    return Xoshiro256(seed(purpose, index));
}

}  // namespace adba
