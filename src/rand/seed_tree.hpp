// Hierarchical seed derivation: one master seed per trial fans out into
// statistically independent streams for every (purpose, index) pair.
//
// This is the keystone of reproducibility: a simulation trial is a pure
// function of (scenario, master seed). Nodes, the adversary, and the input
// generator each get their own child stream, so adding randomness to one
// component never perturbs another component's draws.
#pragma once

#include <cstdint>

#include "rand/rng.hpp"

namespace adba {

/// Well-known stream purposes. Fixed numeric tags keep derivations stable
/// across refactors (the tag, not source order, enters the hash).
enum class StreamPurpose : std::uint64_t {
    NodeProtocol = 1,   ///< honest node's protocol randomness (coin flips)
    Adversary = 2,      ///< adversarial strategy randomness
    InputAssignment = 3,///< initial input bit generation
    DealerCoin = 4,     ///< Rabin baseline's trusted dealer coin per phase
    Harness = 5,        ///< trial orchestration (e.g. shuffles)
    SparseTopology = 6, ///< sparse delivery plane's per-receiver edge samples
};

/// Derives independent child seeds/generators from a master seed.
class SeedTree {
public:
    explicit SeedTree(std::uint64_t master) : master_(master) {}

    /// Child seed for (purpose, index); deterministic avalanche mix.
    std::uint64_t seed(StreamPurpose purpose, std::uint64_t index = 0) const;

    /// Convenience: a generator seeded for (purpose, index).
    Xoshiro256 stream(StreamPurpose purpose, std::uint64_t index = 0) const;

    std::uint64_t master() const { return master_; }

private:
    std::uint64_t master_;
};

}  // namespace adba
