// Deterministic pseudo-randomness for reproducible simulation.
//
// The paper's protocols need only unbiased coin flips (Algorithm 1 line 1),
// but the simulator, adversaries, and workload generators need general
// deterministic streams. We implement:
//  * splitmix64 — seed expansion / hashing (Steele et al.), used to derive
//    independent stream seeds,
//  * xoshiro256** — the working generator (Blackman & Vigna), fast and
//    well-distributed, one independent instance per (node, purpose).
//
// Nothing here is cryptographic — the full-information model explicitly
// grants the adversary knowledge of all random choices, so the simulator
// hands them over; secrecy would be pointless (paper §1.1).
#pragma once

#include <array>
#include <cstdint>

#include "support/types.hpp"

namespace adba {

/// splitmix64 step: advances the state and returns a 64-bit output.
/// Standard constants from the reference implementation.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// One-shot avalanche hash of a 64-bit value (splitmix64 finalizer).
std::uint64_t mix64(std::uint64_t x);

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
public:
    using result_type = std::uint64_t;

    /// Seeds the four words via splitmix64 from a single seed, per the
    /// generator authors' recommendation.
    explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    result_type operator()();

    /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
    std::uint64_t below(std::uint64_t bound);

    /// Uniform double in [0, 1).
    double uniform01();

    /// Fair bit: 0 or 1 with probability 1/2 each.
    Bit bit();

    /// Fair sign: -1 or +1 with probability 1/2 each (Algorithm 1 line 1).
    CoinSign sign();

    /// Bernoulli(p).
    bool bernoulli(double p);

    const std::array<std::uint64_t, 4>& state() const { return s_; }

private:
    std::array<std::uint64_t, 4> s_;
};

}  // namespace adba
