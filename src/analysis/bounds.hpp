// Closed-form bound curves from the paper, used as the "theory" columns of
// every experiment table (constants set to 1 unless the paper names one —
// we compare growth shapes, not constants; DESIGN.md §2).
#pragma once

#include <cstdint>

namespace adba::an {

/// Theorem 2: O(min(t^2 log n / n, t / log n)) rounds (our protocol).
double rounds_ours(double n, double t);

/// Chor-Coan 1985: O(t / log n) expected rounds.
double rounds_chor_coan(double n, double t);

/// Deterministic protocols: t + 1 rounds (Fischer-Lynch lower bound, matched
/// by Dolev et al. / Garay-Moses; Phase-King measures 2(t+1)).
double rounds_deterministic(double t);

/// Bar-Joseph & Ben-Or: Omega(t / sqrt(n log n)) rounds (Theorem 1).
double rounds_lower_bound(double n, double t);

/// The t below which Theorem 2 strictly improves on Chor-Coan:
/// t^2 log n / n < t / log n  <=>  t < n / log^2 n.
double crossover_t(double n);

/// Theorem 3's proof-level lower bound on P(all honest output the same bit)
/// for Algorithm 1 with g >= n - f honest nodes and f <= ½ sqrt(n) corrupted:
/// applying Paley-Zygmund to X^2 gives
///   P(X > ½ sqrt(n)) >= (1-θ)^2 g^2 / (3g^2 - 2g),  θ = n / (4g),
/// and commonness holds on either tail, so P(common) >= 2 * that bound
/// (>= 1/6 for g >= n/2; the paper quotes 1/12 per tail).
double coin_common_prob_lower(double n, double f);

/// Paley-Zygmund right-hand side for a nonnegative variable:
/// (1-θ)^2 E[X]^2 / E[X^2].
double paley_zygmund(double theta, double ex, double ex2);

}  // namespace adba::an
