// Percentile-bootstrap confidence intervals for the experiment tables.
//
// Benches report means over a few dozen stochastic trials; a CI column
// makes "who wins" claims honest (EXPERIMENTS.md quotes them). Plain
// percentile bootstrap: resample with replacement B times, take the
// empirical quantiles of the resampled means.
#pragma once

#include <cstdint>
#include <vector>

#include "support/stats.hpp"

namespace adba::an {

struct ConfidenceInterval {
    double lo = 0.0;
    double hi = 0.0;
    double point = 0.0;  ///< sample mean
};

/// (1 - alpha) percentile-bootstrap CI for the mean of `samples`.
/// Deterministic given `seed`; B resamples (default 2000).
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     double alpha = 0.05, std::uint32_t resamples = 2000,
                                     std::uint64_t seed = 0x0C1);

/// CI for mean(a) - mean(b) (independent samples); excludes 0 => the
/// difference is significant at level alpha.
ConfidenceInterval bootstrap_mean_diff_ci(const std::vector<double>& a,
                                          const std::vector<double>& b,
                                          double alpha = 0.05,
                                          std::uint32_t resamples = 2000,
                                          std::uint64_t seed = 0x0C2);

}  // namespace adba::an
