#include "analysis/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "support/math.hpp"

namespace adba::an {

double rounds_ours(double n, double t) {
    ADBA_EXPECTS(n >= 1.0 && t >= 0.0);
    const double l = safe_log2(n);
    return std::min(t * t * l / n, t / l);
}

double rounds_chor_coan(double n, double t) {
    ADBA_EXPECTS(n >= 1.0 && t >= 0.0);
    return t / safe_log2(n);
}

double rounds_deterministic(double t) { return t + 1.0; }

double rounds_lower_bound(double n, double t) {
    ADBA_EXPECTS(n >= 1.0 && t >= 0.0);
    return t / std::sqrt(n * safe_log2(n));
}

double crossover_t(double n) {
    ADBA_EXPECTS(n >= 1.0);
    const double l = safe_log2(n);
    return n / (l * l);
}

double paley_zygmund(double theta, double ex, double ex2) {
    ADBA_EXPECTS(theta >= 0.0 && theta <= 1.0);
    ADBA_EXPECTS(ex2 > 0.0);
    const double one_minus = 1.0 - theta;
    return one_minus * one_minus * ex * ex / ex2;
}

double coin_common_prob_lower(double n, double f) {
    ADBA_EXPECTS(n >= 4.0);
    ADBA_EXPECTS(f >= 0.0);
    if (f > 0.5 * std::sqrt(n)) return 0.0;  // theorem precondition
    const double g = n - f;  // honest nodes
    // X = sum of g fair ±1 flips: E[X^2] = g, E[X^4] = 3g^2 - 2g.
    const double theta = n / (4.0 * g);
    if (theta >= 1.0) return 0.0;
    const double per_tail = paley_zygmund(theta, g, 3.0 * g * g - 2.0 * g);
    return std::min(1.0, 2.0 * per_tail);
}

}  // namespace adba::an
