#include "analysis/bootstrap.hpp"

#include <algorithm>

#include "rand/rng.hpp"
#include "support/contracts.hpp"

namespace adba::an {

namespace {

double resampled_mean(const std::vector<double>& xs, Xoshiro256& rng) {
    double sum = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) sum += xs[rng.below(xs.size())];
    return sum / static_cast<double>(xs.size());
}

double plain_mean(const std::vector<double>& xs) {
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
}

ConfidenceInterval percentile_ci(std::vector<double> boot, double point, double alpha) {
    std::sort(boot.begin(), boot.end());
    const auto idx = [&](double q) {
        const auto i = static_cast<std::size_t>(q * static_cast<double>(boot.size() - 1));
        return boot[i];
    };
    ConfidenceInterval ci;
    ci.point = point;
    ci.lo = idx(alpha / 2.0);
    ci.hi = idx(1.0 - alpha / 2.0);
    return ci;
}

}  // namespace

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples, double alpha,
                                     std::uint32_t resamples, std::uint64_t seed) {
    ADBA_EXPECTS(!samples.empty());
    ADBA_EXPECTS(alpha > 0.0 && alpha < 1.0);
    ADBA_EXPECTS(resamples >= 10);
    Xoshiro256 rng(seed);
    std::vector<double> boot;
    boot.reserve(resamples);
    for (std::uint32_t b = 0; b < resamples; ++b) boot.push_back(resampled_mean(samples, rng));
    return percentile_ci(std::move(boot), plain_mean(samples), alpha);
}

ConfidenceInterval bootstrap_mean_diff_ci(const std::vector<double>& a,
                                          const std::vector<double>& b, double alpha,
                                          std::uint32_t resamples, std::uint64_t seed) {
    ADBA_EXPECTS(!a.empty() && !b.empty());
    ADBA_EXPECTS(alpha > 0.0 && alpha < 1.0);
    Xoshiro256 rng(seed);
    std::vector<double> boot;
    boot.reserve(resamples);
    for (std::uint32_t r = 0; r < resamples; ++r)
        boot.push_back(resampled_mean(a, rng) - resampled_mean(b, rng));
    return percentile_ci(std::move(boot), plain_mean(a) - plain_mean(b), alpha);
}

}  // namespace adba::an
