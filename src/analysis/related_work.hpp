// The paper's §1 narrative as a machine-readable comparison: every protocol
// and bound it cites, with model assumptions and round complexity. Printed
// by bench_e3 as context and cross-checked by tests (each row's formula
// evaluates through bounds.hpp where applicable).
#pragma once

#include <string>
#include <vector>

#include "support/table.hpp"

namespace adba::an {

struct RelatedWorkRow {
    std::string name;        ///< protocol or bound
    std::string reference;   ///< venue/year as cited by the paper
    std::string adversary;   ///< static / adaptive, rushing?
    std::string model;       ///< full information? deterministic?
    std::string rounds;      ///< round complexity as claimed
    std::string resilience;  ///< max t
    bool implemented_here;   ///< reproduced in this repository
};

/// Rows in the order the paper's introduction develops them.
const std::vector<RelatedWorkRow>& related_work();

/// The comparison rendered as a table (bench_e3 prints it).
Table related_work_table();

}  // namespace adba::an
