#include "analysis/related_work.hpp"

namespace adba::an {

const std::vector<RelatedWorkRow>& related_work() {
    static const std::vector<RelatedWorkRow> rows = {
        {"deterministic lower bound", "Fischer-Lynch, IPL 1982", "any", "deterministic",
         "t + 1", "t < n/3", false},
        {"Dolev et al. / Garay-Moses", "Inf&Ctrl 1982 / STOC 1993", "any (determinism)",
         "full information, deterministic", "O(t)", "t < n/3", false},
        {"Phase-King (simple variant)", "Berman-Garay-Perry", "any (determinism)",
         "full information, deterministic", "2(t+1)", "t < n/4", true},
        {"Ben-Or", "PODC 1983", "adaptive", "full information, private coins",
         "expected 2^Θ(n) from split", "t < n/5", true},
        {"Rabin", "FOCS 1983", "adaptive (non-rushing dealer)",
         "trusted external dealer coin", "expected O(1)", "t < n/3 (skeleton)", true},
        {"Chor-Coan", "IEEE TSE 1985", "adaptive (non-rushing)", "full information",
         "expected O(t / log n)", "t < n/3", true},
        {"GPV / Ben-Or-Pavlov-Vaikuntanathan", "FOCS 2006 / STOC 2006", "STATIC rushing",
         "full information", "O(log n)", "t < n/(3+eps)", false},
        {"Bar-Joseph & Ben-Or lower bound", "PODC 1998", "adaptive rushing (crash!)",
         "full information", "Omega(t / sqrt(n log n))", "t < n/3", true},
        {"Augustine-Pandurangan-Robinson", "PODC 2013", "adaptive",
         "dynamic/sparse networks, sampling", "polylog(n)", "O(sqrt n / polylog n)",
         true},
        {"THIS PAPER (Algorithm 3)", "PODC 2025", "adaptive rushing", "full information",
         "O(min(t^2 log n / n, t / log n))", "t < n/3", true},
    };
    return rows;
}

Table related_work_table() {
    Table t("Paper §1 context: prior protocols and bounds (implemented = reproduced in this repo)");
    t.set_header({"protocol / bound", "reference", "adversary", "rounds", "resilience",
                  "here?"});
    for (const auto& r : related_work()) {
        t.add_row({r.name, r.reference, r.adversary, r.rounds, r.resilience,
                   r.implemented_here ? "yes" : "-"});
    }
    return t;
}

}  // namespace adba::an
