// Workload-kernel tests: the ordering contract of the ONE pooled-arena
// executor loop (sim/workload.hpp), pinned as a prefix-split/merge property
// over all four workloads — running [0, N) as chunks [0, k), [k, 2k), ...
// at any thread count merges bit-identically to the serial aggregate — plus
// the multi-valued scenario parity added with the kernel (parse/describe
// round-trips, the hoisted MvScenarioPlan, the q cap, engine toggles) and
// the workload directory behind `adba_sim --workload=...`.
#include <gtest/gtest.h>

#include "sim/macro.hpp"
#include "sim/registry.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "sim/workload.hpp"
#include "support/contracts.hpp"

namespace adba::sim {
namespace {

void expect_samples_identical(const Samples& a, const Samples& b) {
    ASSERT_EQ(a.count(), b.count());
    const auto& xa = a.values();
    const auto& xb = b.values();
    for (std::size_t i = 0; i < xa.size(); ++i) EXPECT_EQ(xa[i], xb[i]) << "i=" << i;
}

// ------------------------------------------- prefix-split/merge properties
//
// For each workload: the serial aggregate over N trials must be reproduced
// bit-identically by every prefix split k (chunk size k forces the kernel
// to produce partials A[0,k), A[k,2k), ... and merge them in chunk order)
// at every thread count. This pins the kernel's ordering contract: seeds
// are index-derived, chunks run in index order, merges happen in chunk
// order — for ALL four workloads, not just the binary one.

constexpr Count kTrials = 12;
constexpr Count kSplits[] = {1, 2, 3, 5, 7, 11};
constexpr unsigned kThreads[] = {2, 4, 8};

TEST(WorkloadKernel, BinaryPrefixSplitMergeMatchesSerial) {
    Scenario s;
    s.n = 24;
    s.t = 6;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Split;
    const Aggregate serial = run_trials(s, 0x51AB, kTrials, ExecutorConfig{1});
    for (unsigned threads : kThreads) {
        for (Count k : kSplits) {
            const Aggregate part =
                run_trials(s, 0x51AB, kTrials, ExecutorConfig{threads, k});
            EXPECT_EQ(part.trials, serial.trials) << threads << "x" << k;
            EXPECT_EQ(part.agreement_failures, serial.agreement_failures);
            EXPECT_EQ(part.validity_failures, serial.validity_failures);
            EXPECT_EQ(part.not_halted, serial.not_halted);
            expect_samples_identical(part.rounds, serial.rounds);
            expect_samples_identical(part.messages, serial.messages);
            expect_samples_identical(part.bits, serial.bits);
            expect_samples_identical(part.corruptions, serial.corruptions);
        }
    }
}

TEST(WorkloadKernel, CoinPrefixSplitMergeMatchesSerial) {
    const CoinScenario s{64, 64, 4, adv::CoinAttack::Split, 0};
    const CoinAggregate serial = run_coin_trials(s, 0xC0, 60, ExecutorConfig{1});
    for (unsigned threads : kThreads) {
        for (Count k : kSplits) {
            const CoinAggregate part =
                run_coin_trials(s, 0xC0, 60, ExecutorConfig{threads, k});
            EXPECT_EQ(part.trials, serial.trials) << threads << "x" << k;
            EXPECT_EQ(part.common, serial.common);
            EXPECT_EQ(part.common_ones, serial.common_ones);
            EXPECT_EQ(part.attack_feasible, serial.attack_feasible);
        }
    }
}

TEST(WorkloadKernel, MvPrefixSplitMergeMatchesSerial) {
    MvScenario s;
    s.n = 16;
    s.t = 5;
    s.inputs = MvInputPattern::TwoBlocks;
    s.adversary = MvAdversaryKind::WorstCaseInner;
    const MvAggregate serial = run_mv_trials(s, 0x3D5, 8, ExecutorConfig{1});
    for (unsigned threads : kThreads) {
        for (Count k : {1u, 3u, 5u}) {
            const MvAggregate part =
                run_mv_trials(s, 0x3D5, 8, ExecutorConfig{threads, k});
            EXPECT_EQ(part.trials, serial.trials) << threads << "x" << k;
            EXPECT_EQ(part.agreement_failures, serial.agreement_failures);
            EXPECT_EQ(part.validity_failures, serial.validity_failures);
            EXPECT_EQ(part.not_halted, serial.not_halted);
            EXPECT_EQ(part.decided_real, serial.decided_real);
            expect_samples_identical(part.rounds, serial.rounds);
        }
    }
}

TEST(WorkloadKernel, MacroPrefixSplitMergeMatchesSerial) {
    MacroScenario m;
    m.n = 4096;
    m.t = 300;
    m.q = 300;
    const MacroAggregate serial = run_macro_trials(m, 0xA51, 32, ExecutorConfig{1});
    for (unsigned threads : kThreads) {
        for (Count k : kSplits) {
            const MacroAggregate part =
                run_macro_trials(m, 0xA51, 32, ExecutorConfig{threads, k});
            EXPECT_EQ(part.trials, serial.trials) << threads << "x" << k;
            EXPECT_EQ(part.agreement_failures, serial.agreement_failures);
            expect_samples_identical(part.rounds, serial.rounds);
            expect_samples_identical(part.phases, serial.phases);
            expect_samples_identical(part.corruptions, serial.corruptions);
        }
    }
}

// One-shot paths agree with the kernel at matching seeds: trial i of a
// pooled run equals run_*_trial at the workload's index-derived seed.
TEST(WorkloadKernel, OneShotTrialMatchesPooledIndexSeed) {
    Scenario s;
    s.n = 24;
    s.t = 6;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Split;
    const Aggregate agg = run_trials(s, 0xF00, 4, ExecutorConfig{1});
    for (Count i = 0; i < 4; ++i) {
        const TrialResult r =
            run_trial(s, mix64(0xF00 + BinaryWorkload::kSeedStride * i));
        EXPECT_EQ(static_cast<double>(r.rounds), agg.rounds.values()[i]) << i;
    }
}

// ------------------------------------------------------ mv scenario parity

TEST(MvScenario, DescribeParseRoundTripsDefaults) {
    MvScenario s;
    s.n = 64;
    s.t = 21;
    EXPECT_EQ(MvScenario::parse(s.describe()), s);
}

TEST(MvScenario, DescribeParseRoundTripsEveryField) {
    MvScenario s;
    s.n = 96;
    s.t = 31;
    s.q = 10;
    s.inputs = MvInputPattern::NearQuorum;
    s.adversary = MvAdversaryKind::PreludePlusWorstCase;
    s.tuning.alpha = 7.5;
    s.tuning.gamma = 2.25;
    s.tuning.beta = 1.125;
    s.fallback = 0xBEEF;
    s.las_vegas = true;
    s.reference_delivery = true;
    s.use_batch = false;
    const std::string spec = s.describe();
    EXPECT_EQ(MvScenario::parse(spec), s) << spec;
}

TEST(MvScenario, RoundTripsForEveryInputAndAdversary) {
    for (const auto* e : MvAdversaryRegistry::instance().list()) {
        for (const MvInputPattern p :
             {MvInputPattern::AllSame, MvInputPattern::TwoBlocks,
              MvInputPattern::Distinct, MvInputPattern::RandomTiny,
              MvInputPattern::NearQuorum}) {
            MvScenario s;
            s.n = 32;
            s.t = 9;
            s.inputs = p;
            s.adversary = e->kind;
            EXPECT_EQ(MvScenario::parse(s.describe()), s) << s.describe();
        }
    }
}

TEST(MvScenario, ParseRejectsUnknownKeysAndNames) {
    EXPECT_THROW(MvScenario::parse("protocol=ours"), ContractViolation);
    EXPECT_THROW(MvScenario::parse("adversary=worst-case"), ContractViolation);
    EXPECT_THROW(MvScenario::parse("inputs=split"), ContractViolation);
}

TEST(MvScenario, QAboveBudgetIsRejected) {
    MvScenario s;
    s.n = 32;
    s.t = 9;
    s.q = 10;
    EXPECT_FALSE(compatible(s));
    EXPECT_THROW(validate(s), ContractViolation);
    s.q = 9;
    EXPECT_TRUE(compatible(s));
}

TEST(MvScenario, ResilienceBoundIsRejected) {
    MvScenario s;
    s.n = 30;
    s.t = 10;  // 3t == n
    EXPECT_FALSE(compatible(s));
    const auto why = why_incompatible(s);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("t < n/3"), std::string::npos);
}

// q defaults to t, so setting q = t explicitly must not change the run.
TEST(MvScenario, QDefaultMatchesExplicitFullBudget) {
    MvScenario a;
    a.n = 16;
    a.t = 5;
    a.inputs = MvInputPattern::NearQuorum;
    a.adversary = MvAdversaryKind::PreludePlusWorstCase;
    MvScenario b = a;
    b.q = a.t;
    const MvAggregate ra = run_mv_trials(a, 7, 6, ExecutorConfig{1});
    const MvAggregate rb = run_mv_trials(b, 7, 6, ExecutorConfig{1});
    EXPECT_EQ(ra.agreement_failures, rb.agreement_failures);
    EXPECT_EQ(ra.decided_real, rb.decided_real);
    expect_samples_identical(ra.rounds, rb.rounds);
}

// q=0 disarms even the prelude+worst-case adversary: honest-only run.
TEST(MvScenario, QZeroDisarmsAdversary) {
    MvScenario armed;
    armed.n = 24;
    armed.t = 7;
    armed.inputs = MvInputPattern::NearQuorum;
    armed.adversary = MvAdversaryKind::PreludePlusWorstCase;
    MvScenario disarmed = armed;
    disarmed.q = 0;
    MvScenario honest = armed;
    honest.adversary = MvAdversaryKind::None;
    const MvAggregate rd = run_mv_trials(disarmed, 11, 5, ExecutorConfig{1});
    const MvAggregate rh = run_mv_trials(honest, 11, 5, ExecutorConfig{1});
    EXPECT_EQ(rd.agreement_failures, 0u);
    expect_samples_identical(rd.rounds, rh.rounds);
}

// The reference delivery oracle must agree with the flat plane, mv included.
TEST(MvScenario, ReferenceDeliveryMatchesFlatPlane) {
    MvScenario flat;
    flat.n = 16;
    flat.t = 5;
    flat.inputs = MvInputPattern::NearQuorum;
    flat.adversary = MvAdversaryKind::PreludePlusWorstCase;
    MvScenario ref = flat;
    ref.reference_delivery = true;
    const MvAggregate rf = run_mv_trials(flat, 13, 5, ExecutorConfig{1});
    const MvAggregate rr = run_mv_trials(ref, 13, 5, ExecutorConfig{1});
    EXPECT_EQ(rf.agreement_failures, rr.agreement_failures);
    EXPECT_EQ(rf.decided_real, rr.decided_real);
    expect_samples_identical(rf.rounds, rr.rounds);
}

// The hoisted plan path is the one-shot path.
TEST(MvScenario, PlanPathMatchesScenarioPath) {
    MvScenario s;
    s.n = 16;
    s.t = 5;
    s.inputs = MvInputPattern::TwoBlocks;
    const MvScenarioPlan plan = validate(s);
    for (std::uint64_t seed : {1ull, 99ull}) {
        const MvTrialResult a = run_mv_trial(plan, seed);
        const MvTrialResult b = run_mv_trial(s, seed);
        EXPECT_EQ(a.rounds, b.rounds);
        EXPECT_EQ(a.agreement, b.agreement);
        EXPECT_EQ(a.agreed_word, b.agreed_word);
    }
}

// ---------------------------------------------- coin/macro feasibility

TEST(CoinScenarioChecks, InfeasibleCommitteeIsActionable) {
    const CoinScenario s{64, 100, 2, adv::CoinAttack::Split, 0};
    EXPECT_FALSE(compatible(s));
    const auto why = why_incompatible(s);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("1 <= k <= n"), std::string::npos);
    EXPECT_THROW(run_coin_trials(s, 1, 5), ContractViolation);
    EXPECT_THROW(run_coin_trial(s, 1), ContractViolation);
    EXPECT_TRUE(compatible(CoinScenario{64, 64, 2, adv::CoinAttack::Split, 0}));
}

TEST(MacroScenarioChecks, InfeasibleParametersAreActionable) {
    MacroScenario m;
    m.n = 4096;
    m.t = 2000;  // 3t >= n
    m.q = 100;
    EXPECT_FALSE(compatible(m));
    EXPECT_NE(why_incompatible(m)->find("t < n/3"), std::string::npos);
    m.t = 300;
    m.q = 400;  // q > t
    EXPECT_FALSE(compatible(m));
    EXPECT_NE(why_incompatible(m)->find("q must not exceed"), std::string::npos);
    EXPECT_THROW(run_macro_trials(m, 1, 4), ContractViolation);
    m.q = 300;
    EXPECT_TRUE(compatible(m));
}

// ------------------------------------------------------ workload directory

TEST(WorkloadDirectory, ListsAllFourWorkloads) {
    const auto& all = workloads();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].name, "binary");
    EXPECT_EQ(all[1].name, "coin");
    EXPECT_EQ(all[2].name, "mv");
    EXPECT_EQ(all[3].name, "macro");
}

TEST(WorkloadDirectory, FindsByAliasCaseInsensitive) {
    EXPECT_EQ(workload_at("Turpin-Coan").name, "mv");
    EXPECT_EQ(workload_at("multivalued").name, "mv");
    EXPECT_EQ(workload_at("BIN").name, "binary");
    EXPECT_EQ(workload_at("asymptotic").name, "macro");
    EXPECT_EQ(find_workload("no-such-thing"), nullptr);
}

TEST(WorkloadDirectory, UnknownNameGetsDidYouMean) {
    try {
        workload_at("macor");
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("did you mean 'macro'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("binary"), std::string::npos) << msg;
    }
}

// ------------------------------------------------------ uniform CSV schema

TEST(Report, SweepCsvTablesShareTheLabelColumnAndWorkloadSchema) {
    SweepGrid g;
    g.base.n = 24;
    g.base.t = 6;
    g.ts = {4, 6};
    const Table bt = sweep_csv_table("b", run_sweep(g, 1, 3, ExecutorConfig{1}));
    EXPECT_EQ(bt.rows(), 2u);
    EXPECT_NE(bt.to_csv().find("label,trials,agree_pct"), std::string::npos);

    CoinSweepGrid cg;
    cg.ns = {32};
    cg.fs = {0, 2};
    const Table ct = sweep_csv_table("c", run_coin_sweep(cg, 1, 40, ExecutorConfig{1}));
    EXPECT_EQ(ct.rows(), 2u);
    EXPECT_NE(ct.to_csv().find("label,trials,faulted,p_common"), std::string::npos);

    MvSweepGrid mg;
    mg.base.n = 16;
    mg.base.t = 5;
    mg.adversaries = {MvAdversaryKind::None, MvAdversaryKind::WorstCaseInner};
    const Table mt = sweep_csv_table("m", run_mv_sweep(mg, 1, 3, ExecutorConfig{1}));
    EXPECT_EQ(mt.rows(), 2u);
    EXPECT_NE(mt.to_csv().find("label,trials,agree_pct"), std::string::npos);

    MacroScenario ms;
    ms.n = 1 << 12;
    ms.t = 64;
    ms.q = 64;
    const Table at = csv_table(
        "a", {{"n=4096", run_macro_trials(ms, 1, 8, ExecutorConfig{1})}});
    EXPECT_EQ(at.rows(), 1u);
    EXPECT_NE(at.to_csv().find("label,trials,agree_pct"), std::string::npos);
}

}  // namespace
}  // namespace adba::sim
