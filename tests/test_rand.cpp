// Unit and statistical tests for src/rand: splitmix64 reference values,
// xoshiro256** behaviour, bounded sampling, and seed-tree independence.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "rand/rng.hpp"
#include "rand/seed_tree.hpp"
#include "support/contracts.hpp"

namespace adba {
namespace {

TEST(SplitMix, ReferenceSequenceFromSeedZero) {
    // Published reference outputs of splitmix64 seeded with 0.
    std::uint64_t s = 0;
    EXPECT_EQ(splitmix64_next(s), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(splitmix64_next(s), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(splitmix64_next(s), 0x06c45d188009454fULL);
}

TEST(SplitMix, Mix64IsStateless) {
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

TEST(Xoshiro, DeterministicForSameSeed) {
    Xoshiro256 a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b()) ++same;
    EXPECT_LE(same, 1);
}

TEST(Xoshiro, BelowStaysInRange) {
    Xoshiro256 r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 33) + 7}) {
        for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Xoshiro, BelowOneIsAlwaysZero) {
    Xoshiro256 r(9);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Xoshiro, BelowZeroRejected) {
    Xoshiro256 r(9);
    EXPECT_THROW(r.below(0), ContractViolation);
}

TEST(Xoshiro, BelowCoversAllResidues) {
    Xoshiro256 r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) seen.insert(r.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro, BelowRoughlyUniform) {
    Xoshiro256 r(13);
    constexpr int kBuckets = 8;
    constexpr int kDraws = 80000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBuckets)];
    // Each bucket expectation 10000, sd ~ 94; allow 6 sigma.
    for (int c : counts) EXPECT_NEAR(c, kDraws / kBuckets, 600);
}

TEST(Xoshiro, Uniform01Bounds) {
    Xoshiro256 r(17);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double x = r.uniform01();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Xoshiro, FairBit) {
    Xoshiro256 r(19);
    int ones = 0;
    constexpr int kDraws = 40000;
    for (int i = 0; i < kDraws; ++i) ones += r.bit();
    EXPECT_NEAR(ones, kDraws / 2, 700);  // ~7 sigma
}

TEST(Xoshiro, FairSign) {
    Xoshiro256 r(23);
    std::int64_t sum = 0;
    constexpr int kDraws = 40000;
    for (int i = 0; i < kDraws; ++i) sum += r.sign();
    EXPECT_NEAR(static_cast<double>(sum), 0.0, 1400.0);
    // Signs are exactly ±1.
    for (int i = 0; i < 100; ++i) {
        const auto s = r.sign();
        EXPECT_TRUE(s == 1 || s == -1);
    }
}

TEST(Xoshiro, BernoulliEdgeCases) {
    Xoshiro256 r(29);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
    EXPECT_THROW(r.bernoulli(-0.1), ContractViolation);
    EXPECT_THROW(r.bernoulli(1.1), ContractViolation);
}

TEST(Xoshiro, BernoulliRate) {
    Xoshiro256 r(31);
    int hits = 0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits, 15000, 700);
}

// ---------------------------------------------------------------- seed tree

TEST(SeedTree, DeterministicDerivation) {
    SeedTree a(99), b(99);
    EXPECT_EQ(a.seed(StreamPurpose::NodeProtocol, 5),
              b.seed(StreamPurpose::NodeProtocol, 5));
}

TEST(SeedTree, PurposesAreIndependent) {
    SeedTree t(1);
    EXPECT_NE(t.seed(StreamPurpose::NodeProtocol, 0),
              t.seed(StreamPurpose::Adversary, 0));
    EXPECT_NE(t.seed(StreamPurpose::NodeProtocol, 0),
              t.seed(StreamPurpose::InputAssignment, 0));
}

TEST(SeedTree, IndicesAreIndependent) {
    SeedTree t(1);
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seeds.insert(t.seed(StreamPurpose::NodeProtocol, i));
    EXPECT_EQ(seeds.size(), 1000u);  // no collisions among small indices
}

TEST(SeedTree, MastersAreIndependent) {
    std::set<std::uint64_t> seeds;
    for (std::uint64_t m = 0; m < 1000; ++m)
        seeds.insert(SeedTree(m).seed(StreamPurpose::NodeProtocol, 0));
    EXPECT_EQ(seeds.size(), 1000u);
}

TEST(SeedTree, StreamsDecorrelated) {
    // Adjacent node streams must not produce correlated sign sequences.
    SeedTree t(7);
    auto a = t.stream(StreamPurpose::NodeProtocol, 0);
    auto b = t.stream(StreamPurpose::NodeProtocol, 1);
    int match = 0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) match += (a.bit() == b.bit()) ? 1 : 0;
    EXPECT_NEAR(match, kDraws / 2, 600);
}

}  // namespace
}  // namespace adba
