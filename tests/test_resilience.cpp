// Run-resilience tests: the fault-injection matrix over the ShardPool and
// the trial kernel's chunk-retry/degrade recovery ladder, the trial outcome
// taxonomy (Decided / RoundCapExhausted / WatchdogTimeout / Faulted) through
// all four workloads, the chunk-granular checkpoint journal (format pin,
// kill-at-arbitrary-boundary resume, meta mismatch refusal), the memory
// budget's flat->sparse degradation, and the crash-atomic CSV writer.
//
// The load-bearing property everywhere: an injected fault always ends in a
// DEFINED state — retried, degraded-to-serial, or a cleanly counted
// TrialOutcome — and transient faults leave aggregates bit-identical to an
// unarmed run at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/checkpoint.hpp"
#include "sim/coin_runner.hpp"
#include "sim/faults.hpp"
#include "sim/macro.hpp"
#include "sim/multivalued_runner.hpp"
#include "sim/registry.hpp"
#include "sim/workload.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace adba::sim {
namespace {

void expect_samples_identical(const Samples& a, const Samples& b) {
    ASSERT_EQ(a.count(), b.count());
    const auto& xa = a.values();
    const auto& xb = b.values();
    for (std::size_t i = 0; i < xa.size(); ++i) EXPECT_EQ(xa[i], xb[i]) << "i=" << i;
}

void expect_aggregates_identical(const Aggregate& a, const Aggregate& b) {
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.agreement_failures, b.agreement_failures);
    EXPECT_EQ(a.validity_failures, b.validity_failures);
    EXPECT_EQ(a.not_halted, b.not_halted);
    EXPECT_EQ(a.cap_exhausted, b.cap_exhausted);
    EXPECT_EQ(a.watchdog_timeouts, b.watchdog_timeouts);
    EXPECT_EQ(a.faulted, b.faulted);
    expect_samples_identical(a.rounds, b.rounds);
    expect_samples_identical(a.messages, b.messages);
    expect_samples_identical(a.bits, b.bits);
    expect_samples_identical(a.corruptions, b.corruptions);
}

Scenario small_scenario() {
    Scenario s;
    s.n = 24;
    s.t = 6;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::Static;
    s.inputs = InputPattern::Split;
    return s;
}

std::string temp_path(const std::string& name) {
    return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// ------------------------------------------------ outcome taxonomy

TEST(OutcomeTaxonomy, RoundCapExhaustionIsFlaggedNeverSilent) {
    // A one-round cap against the worst-case adversary cannot decide: the
    // old kernel silently clamped rounds to the cap and counted the trial
    // like any other; now every such trial must land in cap_exhausted with
    // all_halted false.
    Scenario s = small_scenario();
    s.adversary = AdversaryKind::WorstCase;
    s.max_rounds_override = 1;
    const Count trials = 4;
    const Aggregate agg = run_trials(s, 0xCAFE, trials, ExecutorConfig{1});
    EXPECT_EQ(agg.trials, trials);
    EXPECT_EQ(agg.cap_exhausted, trials);
    EXPECT_EQ(agg.not_halted, trials);
    EXPECT_EQ(agg.watchdog_timeouts, 0u);
    EXPECT_EQ(agg.faulted, 0u);
    // Exhausted trials still paid for their rounds: samples are present and
    // the recorded round count is the cap, not a clamp artifact.
    ASSERT_EQ(agg.rounds.count(), trials);
    EXPECT_EQ(agg.rounds.max(), 1.0);

    const TrialResult one = run_trial(s, 1);
    EXPECT_EQ(one.outcome, TrialOutcome::RoundCapExhausted);
    EXPECT_FALSE(one.all_halted);
}

TEST(OutcomeTaxonomy, WatchdogTimeoutStopsTheTrial) {
    // Every round beat sleeps 25 ms against a 1 ms deadline, so the engine
    // must stop after its first deadline check with WatchdogTimeout — the
    // no-hang guarantee, not a timing measurement.
    FaultConfig fc;
    fc.beat_delay_rate = 1.0;
    fc.beat_delay_ms = 25;
    const ScopedFaultInjection arm(fc);

    Scenario s = small_scenario();
    s.adversary = AdversaryKind::WorstCase;
    s.watchdog_ms = 1;
    const TrialResult r = run_trial(s, 1);
    EXPECT_EQ(r.outcome, TrialOutcome::WatchdogTimeout);
    EXPECT_FALSE(r.all_halted);
    EXPECT_GE(r.rounds, 1u);
    EXPECT_GT(FaultInjector::stats().beat_delays, 0u);
}

TEST(OutcomeTaxonomy, WatchdogKeyRoundTripsThroughScenarioSpecs) {
    Scenario s = small_scenario();
    s.watchdog_ms = 250;
    EXPECT_EQ(Scenario::parse(s.describe()), s);

    MvScenario mv;
    mv.n = 16;
    mv.t = 5;
    mv.watchdog_ms = 250;
    EXPECT_EQ(MvScenario::parse(mv.describe()), mv);
}

TEST(OutcomeTaxonomy, PermanentTrialFaultsAreThreadCountInvariant) {
    FaultConfig fc;
    fc.seed = 9;
    fc.trial_rate = 0.5;
    const ScopedFaultInjection arm(fc);

    // The injector decides per trial INDEX, so the expected faulted set is
    // computable up front and must be reproduced at every thread count.
    const Count trials = 16;
    Count expected_faulted = 0;
    for (Count i = 0; i < trials; ++i)
        if (FaultInjector::active()->trial_faulted(i)) ++expected_faulted;
    ASSERT_GT(expected_faulted, 0u);
    ASSERT_LT(expected_faulted, trials);

    const Scenario s = small_scenario();
    const Aggregate serial = run_trials(s, 0xFA1, trials, ExecutorConfig{1, 3});
    EXPECT_EQ(serial.faulted, expected_faulted);
    // Faulted trials ran nothing: no samples, no agreement bookkeeping.
    EXPECT_EQ(serial.rounds.count(), trials - expected_faulted);
    EXPECT_EQ(serial.cap_exhausted + serial.watchdog_timeouts + serial.faulted +
                  serial.rounds.count(),
              trials);

    for (unsigned threads : {2u, 4u, 8u}) {
        const Aggregate agg = run_trials(s, 0xFA1, trials, ExecutorConfig{threads, 3});
        expect_aggregates_identical(agg, serial);
    }
}

TEST(OutcomeTaxonomy, FaultedColumnFlowsThroughEveryWorkloadCsv) {
    FaultConfig fc;
    fc.trial_rate = 1.0;  // every trial faults: the all-faulted edge case
    const ScopedFaultInjection arm(fc);
    const Count trials = 3;

    const auto faulted_cell = [](const std::vector<std::string>& header,
                                 const std::vector<std::string>& row) {
        EXPECT_EQ(row.size(), header.size());
        for (std::size_t c = 0; c < header.size(); ++c)
            if (header[c] == "faulted") return row[c];
        ADD_FAILURE() << "no faulted column";
        return std::string();
    };

    const Aggregate ba = run_trials(small_scenario(), 1, trials, ExecutorConfig{1});
    EXPECT_EQ(ba.faulted, trials);
    EXPECT_EQ(faulted_cell(BinaryWorkload::csv_header(), BinaryWorkload::csv_row(ba)),
              std::to_string(trials));

    MvScenario mv;
    mv.n = 16;
    mv.t = 5;
    const MvAggregate ma = run_mv_trials(mv, 1, trials, ExecutorConfig{1});
    EXPECT_EQ(ma.faulted, trials);
    EXPECT_EQ(faulted_cell(MvWorkload::csv_header(), MvWorkload::csv_row(ma)),
              std::to_string(trials));

    CoinScenario cs;
    cs.n = 16;
    cs.designated = 16;
    const CoinAggregate ca = run_coin_trials(cs, 1, trials, ExecutorConfig{1});
    EXPECT_EQ(ca.faulted, trials);
    EXPECT_EQ(faulted_cell(CoinWorkload::csv_header(), CoinWorkload::csv_row(ca)),
              std::to_string(trials));
    EXPECT_EQ(ca.p_common(), 0.0);  // faulted trials leave the estimate empty

    MacroScenario ms;
    ms.n = 64;
    ms.t = 12;
    ms.q = 12;
    const MacroAggregate xa = run_macro_trials(ms, 1, trials, ExecutorConfig{1});
    EXPECT_EQ(xa.faulted, trials);
    EXPECT_EQ(faulted_cell(MacroWorkload::csv_header(), MacroWorkload::csv_row(xa)),
              std::to_string(trials));
}

// ------------------------------------------------ fault-injection matrix

TEST(FaultMatrix, ShardPoolPropagatesInjectedFaultAndStaysUsable) {
    ShardPool pool(4, 1);
    EXPECT_THROW(
        pool.run_shards(256,
                        [](unsigned shard, NodeId, NodeId) {
                            if (shard == 2)
                                throw InjectedFault(InjectedFault::Site::ShardTask,
                                                    "injected shard death");
                        }),
        InjectedFault);
    // The pool must come back quiescent and reusable after the unwound
    // generation — a hung worker here is exactly the failure mode the
    // quiescence handshake exists to prevent.
    std::atomic<unsigned> ran{0};
    pool.run_shards(256, [&](unsigned, NodeId, NodeId) { ++ran; });
    EXPECT_EQ(ran.load(), 4u);
}

// Armed transient faults must be recovered by the chunk retry/degrade
// ladder without changing a single aggregate bit vs the unarmed run.
// Returns the stats captured while armed (disarm zeroes them).
FaultStats expect_transparent_recovery(const FaultConfig& fc, Count intra_shards) {
    Scenario s = small_scenario();
    s.intra_threads = intra_shards;
    const Count trials = 6;
    const Aggregate unarmed = run_trials(s, 0xDEAD, trials, ExecutorConfig{1, 3});

    const ScopedFaultInjection arm(fc);
    const Aggregate armed = run_trials(s, 0xDEAD, trials, ExecutorConfig{1, 3});
    expect_aggregates_identical(armed, unarmed);
    return FaultInjector::stats();
}

TEST(FaultMatrix, ShardDeathEveryTaskRecoversBitIdentical) {
    FaultConfig fc;
    fc.shard_death = 1.0;  // every shard task of every regular attempt dies
    fc.max_attempts = 2;
    const FaultStats st = expect_transparent_recovery(fc, 4);
    EXPECT_GT(st.shard_deaths, 0u);
    EXPECT_GT(st.chunk_retries, 0u);
    EXPECT_GT(st.degraded_chunks, 0u);  // rate 1 defeats every retry
}

TEST(FaultMatrix, TargetedFirstAndLastShardDeathRecoverBitIdentical) {
    for (const std::int64_t target : {std::int64_t{0}, std::int64_t{3}}) {
        FaultConfig fc;
        fc.shard_death = 1.0;
        fc.shard_death_shard = target;
        fc.max_attempts = 2;
        const FaultStats st = expect_transparent_recovery(fc, 4);
        EXPECT_GT(st.shard_deaths, 0u) << "shard " << target;
    }
}

TEST(FaultMatrix, ArenaAllocationFailureDegradesToSerialBitIdentical) {
    FaultConfig fc;
    fc.alloc_rate = 1.0;  // every regular attempt's arena fails to pool
    fc.max_attempts = 3;
    const FaultStats st = expect_transparent_recovery(fc, 0);
    EXPECT_GT(st.alloc_failures, 0u);
    EXPECT_GT(st.degraded_chunks, 0u);
}

TEST(FaultMatrix, StallsDelayButNeverChangeResults) {
    FaultConfig fc;
    fc.stall_rate = 1.0;
    fc.stall_ms = 1;
    const FaultStats st = expect_transparent_recovery(fc, 4);
    EXPECT_GT(st.stalls, 0u);
}

TEST(FaultMatrix, StalledShardsUnderWatchdogEndInDefinedStates) {
    // Stalled shard tasks + a tight per-trial watchdog: the run must finish
    // (no hang) with every trial accounted for in exactly one taxonomy
    // bucket. Wall-clock dependent by design, so only accounting is pinned.
    FaultConfig fc;
    fc.stall_rate = 1.0;
    fc.stall_ms = 2;
    const ScopedFaultInjection arm(fc);

    Scenario s = small_scenario();
    s.adversary = AdversaryKind::WorstCase;
    s.intra_threads = 4;
    s.watchdog_ms = 1;
    const Count trials = 4;
    const Aggregate agg = run_trials(s, 7, trials, ExecutorConfig{1, 2});
    EXPECT_EQ(agg.trials, trials);
    EXPECT_EQ(agg.faulted, 0u);
    EXPECT_EQ(agg.rounds.count(), trials);  // timed-out trials keep samples
    const Count decided =
        trials - agg.cap_exhausted - agg.watchdog_timeouts - agg.faulted;
    EXPECT_LE(decided, trials);
}

TEST(FaultMatrix, ConfigSpecRoundTripsAndRejectsUnknownKeys) {
    FaultConfig fc;
    fc.seed = 42;
    fc.shard_death = 0.25;
    fc.shard_death_shard = 2;
    fc.stall_rate = 0.125;
    fc.stall_ms = 3;
    fc.alloc_rate = 0.5;
    fc.trial_rate = 0.0625;
    fc.beat_delay_rate = 1.0;
    fc.beat_delay_ms = 7;
    fc.max_attempts = 5;
    EXPECT_EQ(FaultConfig::parse(fc.describe()), fc);
    EXPECT_THROW(FaultConfig::parse("shard_deth=1"), ContractViolation);
    EXPECT_THROW(FaultConfig::parse("trial_rate=1.5"), ContractViolation);
}

// ------------------------------------------------ checkpoint/resume

struct JournalImage {
    std::string bytes;
    std::size_t header_end = 0;
    std::vector<std::size_t> record_ends;  // absolute offsets, in file order
};

JournalImage parse_journal(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    JournalImage img;
    img.bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());

    const auto u32_at = [&](std::size_t at) {
        std::uint32_t v = 0;
        std::memcpy(&v, img.bytes.data() + at, sizeof v);
        return v;
    };
    // Header: magic | u64 seed | u64 stride | u32 trials | u32 chunk
    //         | u32 len + workload | u32 len + scope   (the frozen format)
    EXPECT_EQ(img.bytes.substr(0, 8), "ADBACKP1");
    std::size_t at = 8 + 8 + 8 + 4 + 4;
    const std::uint32_t wl_len = u32_at(at);
    at += 4 + wl_len;
    const std::uint32_t scope_len = u32_at(at);
    at += 4 + scope_len;
    img.header_end = at;
    // Records: u32 "RKCA" | u32 chunk_index | u32 payload_len | u64 checksum
    //          | payload
    while (at + 20 <= img.bytes.size()) {
        EXPECT_EQ(u32_at(at), 0x41434b52u) << "record magic at " << at;
        const std::uint32_t payload_len = u32_at(at + 8);
        at += 20 + payload_len;
        EXPECT_LE(at, img.bytes.size());
        img.record_ends.push_back(at);
    }
    EXPECT_EQ(at, img.bytes.size());
    return img;
}

TEST(Checkpoint, JournalFormatIsPinnedAndRunIsUnchanged) {
    const std::string path = temp_path("ck_format.bin");
    std::filesystem::remove(path);
    const Scenario s = small_scenario();
    const Count trials = 10;

    const Aggregate plain = run_trials(s, 0xBEEF, trials, ExecutorConfig{1, 3});
    const Aggregate journaled =
        run_trials(s, 0xBEEF, trials, ExecutorConfig{1, 3, path, false});
    expect_aggregates_identical(journaled, plain);

    const JournalImage img = parse_journal(path);
    ASSERT_EQ(img.record_ends.size(), 4u);  // ceil(10 / 3) chunks

    std::uint64_t seed = 0, stride = 0;
    std::uint32_t t = 0, c = 0, wl_len = 0;
    std::memcpy(&seed, img.bytes.data() + 8, 8);
    std::memcpy(&stride, img.bytes.data() + 16, 8);
    std::memcpy(&t, img.bytes.data() + 24, 4);
    std::memcpy(&c, img.bytes.data() + 28, 4);
    std::memcpy(&wl_len, img.bytes.data() + 32, 4);
    EXPECT_EQ(seed, 0xBEEFu);
    EXPECT_EQ(stride, BinaryWorkload::kSeedStride);
    EXPECT_EQ(t, trials);
    EXPECT_EQ(c, 3u);
    EXPECT_EQ(img.bytes.substr(36, wl_len), "binary");
}

TEST(Checkpoint, KillAtAnyChunkBoundaryResumesBitIdentical) {
    const std::string full_path = temp_path("ck_full.bin");
    std::filesystem::remove(full_path);
    const Scenario s = small_scenario();
    const Count trials = 10;
    const Aggregate expected = run_trials(s, 0x5EED, trials, ExecutorConfig{1, 3});
    (void)run_trials(s, 0x5EED, trials, ExecutorConfig{1, 3, full_path, false});
    const JournalImage img = parse_journal(full_path);
    ASSERT_EQ(img.record_ends.size(), 4u);

    // Simulate a SIGKILL after k completed chunks — including mid-append: a
    // torn half-record tail rides along and must be truncated, not trusted.
    for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
        for (const bool torn_tail : {false, true}) {
            const std::string path = temp_path("ck_cut.bin");
            std::filesystem::remove(path);
            const std::size_t cut = k == 0 ? img.header_end : img.record_ends[k - 1];
            std::string prefix = img.bytes.substr(0, cut);
            if (torn_tail) prefix += std::string("RKCA\x02\x00\x00\x00garbage", 15);
            {
                std::ofstream out(path, std::ios::binary | std::ios::trunc);
                out << prefix;
            }
            for (unsigned threads : {1u, 8u}) {
                std::string run_path = temp_path("ck_run.bin");
                std::filesystem::remove(run_path);
                std::filesystem::copy_file(path, run_path);
                const Aggregate resumed = run_trials(
                    s, 0x5EED, trials, ExecutorConfig{threads, 3, run_path, true});
                expect_aggregates_identical(resumed, expected);
                // The resumed journal is complete again: all 4 records, no
                // leftover torn bytes.
                EXPECT_EQ(parse_journal(run_path).record_ends.size(), 4u)
                    << "k=" << k << " torn=" << torn_tail << " threads=" << threads;
            }
        }
    }
}

TEST(Checkpoint, ResumeRefusesMismatchedMeta) {
    const std::string path = temp_path("ck_meta.bin");
    std::filesystem::remove(path);
    const Scenario s = small_scenario();
    (void)run_trials(s, 11, 6, ExecutorConfig{1, 3, path, false});

    // Different base seed, chunking, or scenario: the journaled partials
    // belong to another sweep and must be refused, not merged.
    EXPECT_THROW((void)run_trials(s, 12, 6, ExecutorConfig{1, 3, path, true}),
                 ContractViolation);
    EXPECT_THROW((void)run_trials(s, 11, 6, ExecutorConfig{1, 2, path, true}),
                 ContractViolation);
    Scenario other = s;
    other.n = 32;
    other.t = 9;
    EXPECT_THROW((void)run_trials(other, 11, 6, ExecutorConfig{1, 3, path, true}),
                 ContractViolation);
    // The matching meta still resumes cleanly after all those refusals.
    (void)run_trials(s, 11, 6, ExecutorConfig{1, 3, path, true});
}

TEST(Checkpoint, EncodeDecodeRoundTripsEveryWorkloadAggregate) {
    const Scenario s = small_scenario();
    const Aggregate agg = run_trials(s, 3, 5, ExecutorConfig{1});
    std::string payload;
    BinaryWorkload::checkpoint_encode(agg, payload);
    Aggregate back;
    BinaryWorkload::checkpoint_decode(payload, back);
    expect_aggregates_identical(back, agg);
    EXPECT_THROW(
        {
            Aggregate bad;
            BinaryWorkload::checkpoint_decode(payload + "x", bad);
        },
        ContractViolation);

    MacroScenario ms;
    ms.n = 64;
    ms.t = 12;
    ms.q = 12;
    const MacroAggregate magg = run_macro_trials(ms, 3, 5, ExecutorConfig{1});
    payload.clear();
    MacroWorkload::checkpoint_encode(magg, payload);
    MacroAggregate mback;
    MacroWorkload::checkpoint_decode(payload, mback);
    EXPECT_EQ(mback.trials, magg.trials);
    EXPECT_EQ(mback.agreement_failures, magg.agreement_failures);
    expect_samples_identical(mback.rounds, magg.rounds);
    expect_samples_identical(mback.phases, magg.phases);
    expect_samples_identical(mback.corruptions, magg.corruptions);
}

TEST(Checkpoint, JournaledFaultyRunStillMatchesUnarmedResult) {
    // Transient faults + checkpointing together: the journal records the
    // RECOVERED partials, so even a resume of a faulty run reproduces the
    // unarmed aggregate bit-for-bit.
    const Scenario s = small_scenario();
    const Count trials = 6;
    const Aggregate unarmed = run_trials(s, 0xAB, trials, ExecutorConfig{1, 2});

    FaultConfig fc;
    fc.alloc_rate = 0.5;
    fc.max_attempts = 2;
    const ScopedFaultInjection arm(fc);
    const std::string path = temp_path("ck_faulty.bin");
    std::filesystem::remove(path);
    const Aggregate armed =
        run_trials(s, 0xAB, trials, ExecutorConfig{1, 2, path, false});
    expect_aggregates_identical(armed, unarmed);
    const Aggregate resumed =
        run_trials(s, 0xAB, trials, ExecutorConfig{4, 2, path, true});
    expect_aggregates_identical(resumed, unarmed);
}

// ------------------------------------------------ memory budget

TEST(MemoryBudget, FlatPlaneFallsBackToSparseWithinBudget) {
    // n=32768 flat needs ~3 MiB (> 2 MiB budget); sparse ~1.75 MiB fits.
    const ScopedMemBudget budget(2);
    Scenario s = small_scenario();
    s.n = 32768;
    s.t = 3000;
    s.q = 256;
    Scenario adjusted = s;
    const auto warning = apply_memory_budget(adjusted);
    ASSERT_TRUE(warning.has_value());
    EXPECT_NE(warning->find("plane=sparse"), std::string::npos);
    EXPECT_TRUE(adjusted.sparse_plane);
    Scenario unchanged = adjusted;  // already sparse: fits, no second warning
    EXPECT_FALSE(apply_memory_budget(unchanged).has_value());
}

TEST(MemoryBudget, RejectsWhenNoFallbackExists) {
    const ScopedMemBudget budget(2);
    Scenario s = small_scenario();
    s.n = 32768;
    s.use_batch = false;  // per-node path: not sparse-capable
    Scenario adjusted = s;
    EXPECT_THROW((void)apply_memory_budget(adjusted), ContractViolation);

    MvScenario mv;  // Turpin-Coan has no sparse fallback at all
    mv.n = 32768;
    mv.t = 3000;
    EXPECT_THROW(enforce_memory_budget(mv), ContractViolation);
}

TEST(MemoryBudget, SmallScenariosPassUntouched) {
    const ScopedMemBudget budget(2);
    Scenario s = small_scenario();
    Scenario adjusted = s;
    EXPECT_FALSE(apply_memory_budget(adjusted).has_value());
    EXPECT_EQ(adjusted, s);
    // And the estimate itself is monotone in n and cheaper under sparse.
    EXPECT_LT(estimate_trial_arena_bytes(1024, false),
              estimate_trial_arena_bytes(2048, false));
    EXPECT_LT(estimate_trial_arena_bytes(1 << 20, true),
              estimate_trial_arena_bytes(1 << 20, false));
}

// ------------------------------------------------ crash-atomic CSV

TEST(AtomicCsv, WriteLeavesNoTempFileAndCompleteContent) {
    const std::string dir = temp_path("csv_out");
    std::filesystem::remove_all(dir);
    Table t("atomic");
    t.set_header({"a", "b"});
    t.add_row({"1", "2"});
    const std::string path = write_csv(t, dir, "atomic_test");
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "a,b\n1,2\n");
}

}  // namespace
}  // namespace adba::sim
