// Experiment-harness tests: runner reproducibility, aggregation, input
// patterns, and calibration of the macro-scale simulator against the
// full-fidelity engine.
#include <gtest/gtest.h>

#include "sim/inputs.hpp"
#include "sim/macro.hpp"
#include "sim/runner.hpp"
#include "support/contracts.hpp"

namespace adba::sim {
namespace {

TEST(Inputs, Patterns) {
    const SeedTree seeds(1);
    const auto zero = make_inputs(InputPattern::AllZero, 8, seeds);
    const auto one = make_inputs(InputPattern::AllOne, 8, seeds);
    const auto split = make_inputs(InputPattern::Split, 8, seeds);
    EXPECT_TRUE(unanimous(zero));
    EXPECT_TRUE(unanimous(one));
    EXPECT_FALSE(unanimous(split));
    int ones = 0;
    for (Bit b : split) ones += b;
    EXPECT_EQ(ones, 4);  // alternating = perfectly balanced
}

TEST(Inputs, RandomIsSeedDeterministic) {
    const SeedTree a(7), b(7), c(8);
    EXPECT_EQ(make_inputs(InputPattern::Random, 64, a),
              make_inputs(InputPattern::Random, 64, b));
    EXPECT_NE(make_inputs(InputPattern::Random, 64, a),
              make_inputs(InputPattern::Random, 64, c));
}

TEST(Runner, QDefaultsToTAndIsValidated) {
    Scenario s;
    s.n = 16;
    s.t = 5;
    s.q = 6;  // q > t is a contract violation
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::WorstCase;
    EXPECT_THROW(run_trial(s, 1), ContractViolation);
}

TEST(Runner, WorstCaseRequiresCommitteeProtocol) {
    Scenario s;
    s.n = 17;
    s.t = 4;
    s.protocol = ProtocolKind::PhaseKing;
    s.adversary = AdversaryKind::WorstCase;
    EXPECT_THROW(run_trial(s, 1), ContractViolation);
}

TEST(Runner, KingKillerRequiresPhaseKing) {
    Scenario s;
    s.n = 16;
    s.t = 3;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::KingKiller;
    EXPECT_THROW(run_trial(s, 1), ContractViolation);
}

TEST(Runner, AggregateCountsConsistent) {
    Scenario s;
    s.n = 32;
    s.t = 8;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Split;
    const Aggregate agg = run_trials(s, 3, 17);
    EXPECT_EQ(agg.trials, 17u);
    EXPECT_EQ(agg.rounds.count(), 17u);
    EXPECT_EQ(agg.messages.count(), 17u);
    EXPECT_EQ(agg.agreement_failures, 0u);
}

TEST(Runner, ScheduleOfMatchesProtocol) {
    Scenario s;
    s.n = 64;
    s.t = 10;
    s.protocol = ProtocolKind::Ours;
    const auto sched = schedule_of(s);
    ASSERT_TRUE(sched.has_value());
    EXPECT_EQ(sched->n, 64u);
    s.protocol = ProtocolKind::RabinDealer;
    EXPECT_FALSE(schedule_of(s).has_value());
}

TEST(Runner, ToStringCoverage) {
    EXPECT_EQ(to_string(ProtocolKind::Ours), "ours(alg3)");
    EXPECT_EQ(to_string(ProtocolKind::PhaseKing), "phase-king");
    EXPECT_EQ(to_string(AdversaryKind::WorstCase), "worst-case");
    EXPECT_EQ(to_string(AdversaryKind::CrashTargetedCoin), "crash(targeted)");
    EXPECT_EQ(to_string(InputPattern::Split), "split");
}

// -------------------------------------------------------------------- macro

TEST(Macro, DeterministicPerSeed) {
    MacroScenario m;
    m.n = 1024;
    m.t = 100;
    m.q = 100;
    const auto a = run_macro_trial(m, 5);
    const auto b = run_macro_trial(m, 5);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.corruptions, b.corruptions);
}

TEST(Macro, ZeroCorruptionsEndsInThreePhases) {
    MacroScenario m;
    m.n = 4096;
    m.t = 300;
    m.q = 0;
    const auto r = run_macro_trial(m, 9);
    EXPECT_TRUE(r.agreement);
    EXPECT_EQ(r.rounds, 6u);  // good phase 0 -> decide 1 -> flush 2
    EXPECT_EQ(r.corruptions, 0u);
}

TEST(Macro, RoundsGrowWithQ) {
    MacroScenario m;
    m.n = 4096;
    m.t = 1000;
    double prev = 0.0;
    for (std::uint64_t q : {0ull, 100ull, 400ull, 1000ull}) {
        m.q = q;
        double mean = 0.0;
        const int trials = 10;
        for (int i = 0; i < trials; ++i)
            mean += static_cast<double>(run_macro_trial(m, 100 + static_cast<std::uint64_t>(i)).rounds);
        mean /= trials;
        EXPECT_GE(mean, prev) << "q=" << q;
        prev = mean;
    }
}

TEST(Macro, CalibratedAgainstMicroEngine) {
    // The macro simulator must track the full engine's measured mean rounds
    // under the same (n, t, worst-case adversary, split inputs) — within a
    // modest tolerance, since the two draw different randomness.
    for (const auto& [n, t] : std::vector<std::pair<NodeId, Count>>{
             {128, 20}, {128, 40}, {256, 40}}) {
        Scenario micro;
        micro.n = n;
        micro.t = t;
        micro.protocol = ProtocolKind::Ours;
        micro.adversary = AdversaryKind::WorstCase;
        micro.inputs = InputPattern::Split;
        const Aggregate micro_agg = run_trials(micro, 0x5151, 30);

        MacroScenario macro;
        macro.n = n;
        macro.t = t;
        macro.q = t;
        double macro_mean = 0.0;
        const int trials = 60;
        for (int i = 0; i < trials; ++i)
            macro_mean += static_cast<double>(run_macro_trial(macro, 0x7171 + static_cast<std::uint64_t>(i)).rounds);
        macro_mean /= trials;

        const double micro_mean = micro_agg.rounds.mean();
        EXPECT_NEAR(macro_mean / micro_mean, 1.0, 0.25)
            << "n=" << n << " t=" << t << " micro=" << micro_mean
            << " macro=" << macro_mean;
    }
}

TEST(Macro, SchedulesDiffer) {
    // Ours vs Chor-Coan rushing at the same scale must use different phase
    // budgets when the min picks the t^2/n term.
    MacroScenario ours;
    ours.n = 1 << 16;
    ours.t = 256;  // = sqrt(n): firmly in the paper's improvement regime
    ours.q = ours.t;
    ours.schedule = MacroScheduleKind::Ours;
    MacroScenario cc = ours;
    cc.schedule = MacroScheduleKind::ChorCoanRushing;
    const auto ro = run_macro_trial(ours, 3);
    const auto rc = run_macro_trial(cc, 3);
    EXPECT_LT(ro.phase_budget, rc.phase_budget);
    EXPECT_GT(ro.committee_size, rc.committee_size);
}

TEST(Macro, ContractChecks) {
    MacroScenario m;
    m.n = 9;
    m.t = 3;
    m.q = 3;
    EXPECT_THROW(run_macro_trial(m, 1), ContractViolation);  // 3t = n
    m.n = 10;
    m.q = 4;
    EXPECT_THROW(run_macro_trial(m, 1), ContractViolation);  // q > t
}

}  // namespace
}  // namespace adba::sim
