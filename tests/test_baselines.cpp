// Baseline protocol tests: Chor-Coan (both variants), Rabin dealer coin,
// local-coin ablation, Phase-King (+ king-killer adversary).
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/chor_coan.hpp"
#include "baselines/phase_king.hpp"
#include "baselines/rabin_dealer.hpp"
#include "sim/runner.hpp"
#include "support/contracts.hpp"
#include "support/math.hpp"

namespace adba::sim {
namespace {

// ---------------------------------------------------------------- ChorCoan

TEST(ChorCoanParams, RushingScheduleMatchesFormula) {
    // n=1024 (log2=10), t=100, alpha=1, gamma=1:
    // c = max(ceil(300/10), 10) = 30, s = ceil(1024/30) = 35.
    const auto p = base::ChorCoanParams::compute_rushing(1024, 100,
                                                         core::Tuning{1.0, 1.0, 1.0});
    EXPECT_EQ(p.phases, 30u);
    EXPECT_EQ(p.schedule.block, 35u);
}

TEST(ChorCoanParams, ClassicUsesLogSizeGroups) {
    const auto p = base::ChorCoanParams::compute_classic(1024, 100,
                                                         core::Tuning{1.0, 1.0, 1.0});
    EXPECT_EQ(p.schedule.block, 10u);  // beta * log2(1024)
    // Phase budget covers the rushing ruin cost 2t/(½ sqrt(g)) plus floor.
    EXPECT_GE(p.phases, 100u);
}

TEST(ChorCoanParams, RejectsBadT) {
    EXPECT_THROW(base::ChorCoanParams::compute_rushing(9, 3), ContractViolation);
    EXPECT_THROW(base::ChorCoanParams::compute_classic(9, 3), ContractViolation);
}

using CcParam = std::tuple<NodeId, Count, AdversaryKind, InputPattern>;

class ChorCoanSweep : public ::testing::TestWithParam<CcParam> {};

TEST_P(ChorCoanSweep, RushingVariantAgreesUnderAllAdversaries) {
    const auto [n, t, adversary, inputs] = GetParam();
    Scenario s;
    s.n = n;
    s.t = t;
    s.protocol = ProtocolKind::ChorCoanRushing;
    s.adversary = adversary;
    s.inputs = inputs;
    const Aggregate agg = run_trials(s, 0xCC00 + n + t, 5);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.validity_failures, 0u);
    EXPECT_EQ(agg.not_halted, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChorCoanSweep,
    ::testing::Combine(::testing::Values<NodeId>(32, 64),
                       ::testing::Values<Count>(1, 9),
                       ::testing::Values(AdversaryKind::None, AdversaryKind::SplitVote,
                                         AdversaryKind::CrashTargetedCoin,
                                         AdversaryKind::WorstCase),
                       ::testing::Values(InputPattern::AllOne, InputPattern::Split)));

TEST(ChorCoanClassic, AgreesUnderWorstCaseWithModerateT) {
    Scenario s;
    s.n = 64;
    s.t = 10;
    s.protocol = ProtocolKind::ChorCoanClassic;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Split;
    const Aggregate agg = run_trials(s, 0xCC1, 10);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.not_halted, 0u);
}

TEST(ChorCoanClassic, GroupSizeIsLogNIndependentOfT) {
    // Structural contrast with the rushing-hardened variant: classic groups
    // are Θ(log2 n) regardless of t, while the rushing variant's committees
    // grow as ~n·log n/(3αt). (The measured consequence — classic degrading
    // toward Θ(t/sqrt(log n)) rounds under a rushing adversary — separates
    // only at larger n and is reported by bench_e8, not asserted here.)
    for (NodeId n : {64u, 256u, 1024u}) {
        for (Count t : {4u, n / 8, n / 4}) {
            const auto classic = base::ChorCoanParams::compute_classic(n, t);
            EXPECT_EQ(classic.schedule.block, ceil_log2(n)) << n;
        }
        const auto small_t = base::ChorCoanParams::compute_rushing(n, 4);
        const auto big_t = base::ChorCoanParams::compute_rushing(n, n / 4);
        EXPECT_GE(small_t.schedule.block, big_t.schedule.block);
    }
}

// ------------------------------------------------------------- RabinDealer

TEST(RabinDealer, DealerCoinIsDeterministicPerPhase) {
    const std::uint64_t seed = 77;
    EXPECT_EQ(base::RabinDealerNode::dealer_coin(seed, 3),
              base::RabinDealerNode::dealer_coin(seed, 3));
    int ones = 0;
    for (Phase p = 0; p < 1000; ++p) ones += base::RabinDealerNode::dealer_coin(seed, p);
    EXPECT_NEAR(ones, 500, 80);  // fair across phases
}

TEST(RabinDealer, FastAgreementUnderWorstCase) {
    // A perfect shared coin ends the protocol in O(1) expected phases even
    // against the schedule-aware adversary (there is no committee to bribe).
    Scenario s;
    s.n = 64;
    s.t = 21;
    s.protocol = ProtocolKind::RabinDealer;
    s.adversary = AdversaryKind::SplitVote;  // worst-case needs a schedule
    s.inputs = InputPattern::Split;
    const Aggregate agg = run_trials(s, 0xAB, 20);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.not_halted, 0u);
    EXPECT_LE(agg.rounds.mean(), 14.0);  // ~2-3 phases + flush typical
}

TEST(RabinDealer, ValidityHoldsUnderCrash) {
    Scenario s;
    s.n = 32;
    s.t = 10;
    s.protocol = ProtocolKind::RabinDealer;
    s.adversary = AdversaryKind::CrashRandom;
    s.inputs = InputPattern::AllZero;
    const Aggregate agg = run_trials(s, 0xAC, 10);
    EXPECT_EQ(agg.validity_failures, 0u);
}

// --------------------------------------------------------------- LocalCoin

TEST(LocalCoin, SafetyHoldsEvenWhenLivenessCrawls) {
    // Private coins: agreement may need many phases from a split start, but
    // safety (validity + no disagreement among decided outputs) must hold.
    Scenario s;
    s.n = 16;
    s.t = 5;
    s.protocol = ProtocolKind::LocalCoin;
    s.adversary = AdversaryKind::SplitVote;
    s.inputs = InputPattern::AllOne;  // validity path
    const Aggregate agg = run_trials(s, 0x7C, 10);
    EXPECT_EQ(agg.validity_failures, 0u);
    EXPECT_EQ(agg.agreement_failures, 0u);
}

TEST(LocalCoin, EventuallyAgreesAtSmallN) {
    // With u undecided nodes a phase unifies w.p. ~2^-u: n=8 converges
    // quickly; this is the "why common coins matter" control at small scale.
    Scenario s;
    s.n = 8;
    s.t = 2;
    s.q = 0;
    s.protocol = ProtocolKind::LocalCoin;
    s.adversary = AdversaryKind::None;
    s.inputs = InputPattern::Split;
    s.local_coin_phases = 256;
    const Aggregate agg = run_trials(s, 0x1C, 10);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.not_halted, 0u);
}

TEST(LocalCoin, SlowerThanCommonCoinFromSplitStart) {
    Scenario local;
    local.n = 16;
    local.t = 5;
    local.q = 0;
    local.protocol = ProtocolKind::LocalCoin;
    local.adversary = AdversaryKind::None;
    local.inputs = InputPattern::Split;
    local.local_coin_phases = 512;
    Scenario ours = local;
    ours.protocol = ProtocolKind::Ours;
    const auto agg_local = run_trials(local, 0x1D, 10);
    const auto agg_ours = run_trials(ours, 0x1D, 10);
    EXPECT_GT(agg_local.rounds.mean(), agg_ours.rounds.mean());
}

// --------------------------------------------------------------- PhaseKing

TEST(PhaseKing, ParamsRejectQuarterBound) {
    EXPECT_THROW(base::PhaseKingNode({8, 2}, 0, 0), ContractViolation);  // 4t = n
    EXPECT_NO_THROW(base::PhaseKingNode({9, 2}, 0, 0));
}

TEST(PhaseKing, DeterministicRoundCount) {
    // Always exactly 2(t+1) rounds, adversary or not.
    for (Count t : {0u, 3u, 7u}) {
        Scenario s;
        s.n = 64;
        s.t = t;
        s.protocol = ProtocolKind::PhaseKing;
        s.adversary = AdversaryKind::KingKiller;
        s.inputs = InputPattern::Split;
        const TrialResult r = run_trial(s, 0xF0 + t);
        EXPECT_TRUE(r.agreement) << "t=" << t;
        EXPECT_EQ(r.rounds, 2 * (t + 1)) << "t=" << t;
        EXPECT_TRUE(r.all_halted);
    }
}

using PkParam = std::tuple<NodeId, Count, AdversaryKind, InputPattern>;

class PhaseKingSweep : public ::testing::TestWithParam<PkParam> {};

TEST_P(PhaseKingSweep, AgreementAndValidity) {
    const auto [n, t, adversary, inputs] = GetParam();
    Scenario s;
    s.n = n;
    s.t = t;
    s.protocol = ProtocolKind::PhaseKing;
    s.adversary = adversary;
    s.inputs = inputs;
    const Aggregate agg = run_trials(s, 0xFACE + n * 31 + t, 5);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.validity_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PhaseKingSweep,
    ::testing::Combine(::testing::Values<NodeId>(17, 33, 64),
                       ::testing::Values<Count>(1, 3),
                       ::testing::Values(AdversaryKind::None, AdversaryKind::Static,
                                         AdversaryKind::SplitVote,
                                         AdversaryKind::CrashRandom,
                                         AdversaryKind::KingKiller),
                       ::testing::Values(InputPattern::AllZero, InputPattern::AllOne,
                                         InputPattern::Split, InputPattern::Random)));

TEST(PhaseKing, HonestKingUnifiesImmediately) {
    // t=0: the single phase's king is honest; 2 rounds total.
    Scenario s;
    s.n = 15;
    s.t = 0;
    s.protocol = ProtocolKind::PhaseKing;
    s.adversary = AdversaryKind::None;
    s.inputs = InputPattern::Split;
    const TrialResult r = run_trial(s, 1);
    EXPECT_TRUE(r.agreement);
    EXPECT_EQ(r.rounds, 2u);
}

TEST(PhaseKing, MaxToleratedFaults) {
    // t just under n/4 with the king-killer: last king must save the day.
    const NodeId n = 33;
    const Count t = 8;  // 4t = 32 < 33
    Scenario s;
    s.n = n;
    s.t = t;
    s.protocol = ProtocolKind::PhaseKing;
    s.adversary = AdversaryKind::KingKiller;
    s.inputs = InputPattern::Random;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const TrialResult r = run_trial(s, seed);
        EXPECT_TRUE(r.agreement) << seed;
        EXPECT_TRUE(r.validity_ok) << seed;
    }
}

}  // namespace
}  // namespace adba::sim
