// Engine semantics tests: delivery, rushing corruption, equivocation,
// budget enforcement, halting, metrics, transcripts.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "net/engine.hpp"
#include "support/contracts.hpp"

namespace adba::net {
namespace {

/// Test node: broadcasts Vote1{val = own id % 2} every round, records every
/// delivery, halts after `live_rounds` rounds.
class EchoNode final : public HonestNode {
public:
    EchoNode(NodeId self, Round live_rounds) : self_(self), live_(live_rounds) {}

    std::optional<Message> round_send(Round r) override {
        Message m;
        m.kind = MsgKind::Vote1;
        m.val = static_cast<Bit>(self_ % 2);
        m.phase = r;
        return m;
    }

    void round_receive(Round r, const ReceiveView& view) override {
        received_.emplace_back();
        auto& row = received_.back();
        row.resize(view.n());
        for (NodeId u = 0; u < view.n(); ++u) {
            const Message* m = view.from(u);
            row[u] = m ? std::optional<Message>(*m) : std::nullopt;
        }
        if (r + 1 >= live_) halted_ = true;
    }

    bool halted() const override { return halted_; }
    Bit current_value() const override { return static_cast<Bit>(self_ % 2); }

    std::vector<std::vector<std::optional<Message>>> received_;

private:
    NodeId self_;
    Round live_;
    bool halted_ = false;
};

/// Inline scriptable adversary.
class ScriptAdversary final : public Adversary {
public:
    using Fn = std::function<void(RoundControl&)>;
    explicit ScriptAdversary(Fn fn) : fn_(std::move(fn)) {}
    void act(RoundControl& ctl) override { fn_(ctl); }

private:
    Fn fn_;
};

std::vector<std::unique_ptr<HonestNode>> make_echo_nodes(NodeId n, Round live,
                                                         std::vector<EchoNode*>* raw) {
    std::vector<std::unique_ptr<HonestNode>> nodes;
    for (NodeId v = 0; v < n; ++v) {
        auto p = std::make_unique<EchoNode>(v, live);
        if (raw) raw->push_back(p.get());
        nodes.push_back(std::move(p));
    }
    return nodes;
}

TEST(Engine, HonestBroadcastReachesEveryoneIncludingSelf) {
    std::vector<EchoNode*> raw;
    NullAdversary adv;
    Engine eng({4, 0, 1, false}, make_echo_nodes(4, 1, &raw), adv);
    const RunResult res = eng.run();
    EXPECT_TRUE(res.all_halted);
    EXPECT_EQ(res.rounds, 1u);
    for (EchoNode* node : raw) {
        ASSERT_EQ(node->received_.size(), 1u);
        for (NodeId u = 0; u < 4; ++u) {
            ASSERT_TRUE(node->received_[0][u].has_value()) << "missing from " << u;
            EXPECT_EQ(node->received_[0][u]->val, u % 2);
            EXPECT_EQ(node->received_[0][u]->kind, MsgKind::Vote1);
        }
    }
}

TEST(Engine, CorruptionDiscardsBroadcastAndAllowsEquivocation) {
    std::vector<EchoNode*> raw;
    ScriptAdversary adv([](RoundControl& ctl) {
        if (ctl.round() != 0) return;
        const auto discarded = ctl.corrupt(2);
        ASSERT_TRUE(discarded.has_value());
        EXPECT_EQ(discarded->val, 0);  // node 2's honest intent
        Message m0;
        m0.kind = MsgKind::Vote1;
        m0.val = 0;
        Message m1 = m0;
        m1.val = 1;
        ctl.deliver_as(2, 0, m0);
        ctl.deliver_as(2, 1, m1);
        // receivers 2,3 get silence from the corrupted node
    });
    Engine eng({4, 1, 2, false}, make_echo_nodes(4, 2, &raw), adv);
    const RunResult res = eng.run();
    EXPECT_FALSE(res.honest[2]);
    EXPECT_TRUE(res.honest[0] && res.honest[1] && res.honest[3]);
    // Equivocated deliveries in round 0:
    EXPECT_EQ(raw[0]->received_[0][2]->val, 0);
    EXPECT_EQ(raw[1]->received_[0][2]->val, 1);
    EXPECT_FALSE(raw[3]->received_[0][2].has_value());
    // Round 1: corrupted node silent by default.
    EXPECT_FALSE(raw[0]->received_[1][2].has_value());
}

TEST(Engine, BudgetIsEnforced) {
    ScriptAdversary adv([](RoundControl& ctl) {
        if (ctl.round() != 0) return;
        EXPECT_EQ(ctl.budget_left(), 1u);
        ctl.corrupt(0);
        EXPECT_EQ(ctl.budget_left(), 0u);
        EXPECT_THROW(ctl.corrupt(1), ContractViolation);
    });
    Engine eng({4, 1, 1, false}, make_echo_nodes(4, 1, nullptr), adv);
    const RunResult res = eng.run();
    EXPECT_EQ(res.metrics.corruptions, 1u);
}

TEST(Engine, CannotCorruptTwice) {
    ScriptAdversary adv([](RoundControl& ctl) {
        if (ctl.round() != 0) return;
        ctl.corrupt(0);
        EXPECT_THROW(ctl.corrupt(0), ContractViolation);
    });
    Engine eng({4, 3, 1, false}, make_echo_nodes(4, 1, nullptr), adv);
    eng.run();
}

TEST(Engine, DeliverAsRequiresCorruptedSender) {
    ScriptAdversary adv([](RoundControl& ctl) {
        Message m;
        m.kind = MsgKind::Vote1;
        EXPECT_THROW(ctl.deliver_as(1, 0, m), ContractViolation);
    });
    Engine eng({3, 1, 1, false}, make_echo_nodes(3, 1, nullptr), adv);
    eng.run();
}

TEST(Engine, CannotCorruptHaltedNode) {
    ScriptAdversary adv([](RoundControl& ctl) {
        if (ctl.round() == 1) {
            // Every node halted after round 0 (live=1)... engine stops, so
            // this never runs; exercised instead via is_halted below.
            FAIL();
        }
        EXPECT_FALSE(ctl.is_halted(0));  // round 0: still live
    });
    Engine eng({3, 1, 4, false}, make_echo_nodes(3, 1, nullptr), adv);
    const RunResult res = eng.run();
    EXPECT_TRUE(res.all_halted);
    EXPECT_EQ(res.rounds, 1u);
}

TEST(Engine, StopsAtMaxRoundsWhenNodesNeverHalt) {
    NullAdversary adv;
    Engine eng({3, 0, 5, false}, make_echo_nodes(3, 100, nullptr), adv);
    const RunResult res = eng.run();
    EXPECT_FALSE(res.all_halted);
    EXPECT_EQ(res.rounds, 5u);
}

TEST(Engine, MetricsCountHonestTraffic) {
    NullAdversary adv;
    const NodeId n = 5;
    Engine eng({n, 0, 3, false}, make_echo_nodes(n, 3, nullptr), adv);
    const RunResult res = eng.run();
    // 3 rounds, 5 senders, fanout n-1 = 4.
    EXPECT_EQ(res.metrics.honest_messages, 3u * 5u * 4u);
    EXPECT_EQ(res.metrics.byzantine_messages, 0u);
    EXPECT_EQ(res.metrics.rounds, 3u);
    EXPECT_GT(res.metrics.honest_bits, res.metrics.honest_messages);  // >1 bit each
}

TEST(Engine, CorruptedSenderTrafficNotChargedToProtocol) {
    ScriptAdversary adv([](RoundControl& ctl) {
        if (ctl.round() == 0) {
            ctl.corrupt(0);
            Message m;
            m.kind = MsgKind::Vote1;
            ctl.broadcast_as(0, m);
        }
    });
    const NodeId n = 4;
    Engine eng({n, 1, 2, false}, make_echo_nodes(n, 2, nullptr), adv);
    const RunResult res = eng.run();
    // Round 0: 3 honest broadcast; round 1: 3 honest broadcast.
    EXPECT_EQ(res.metrics.honest_messages, (3u + 3u) * (n - 1));
    EXPECT_EQ(res.metrics.byzantine_messages, n);  // one broadcast_as
}

TEST(Engine, AgreementEvaluation) {
    NullAdversary adv;
    Engine eng({4, 0, 1, false}, make_echo_nodes(4, 1, nullptr), adv);
    RunResult res = eng.run();
    // EchoNode outputs id%2 -> no agreement.
    EXPECT_FALSE(res.agreement());
    EXPECT_FALSE(res.agreed_value().has_value());
    // Force agreement by editing outputs.
    res.outputs.assign(4, 1);
    EXPECT_TRUE(res.agreement());
    ASSERT_TRUE(res.agreed_value().has_value());
    EXPECT_EQ(*res.agreed_value(), 1);
    EXPECT_EQ(res.honest_count(), 4u);
}

TEST(Engine, AgreementIgnoresCorruptedNodes) {
    ScriptAdversary adv([](RoundControl& ctl) {
        if (ctl.round() == 0) ctl.corrupt(1);  // the only odd-valued node
    });
    Engine eng({3, 1, 1, false}, make_echo_nodes(3, 1, nullptr), adv);
    const RunResult res = eng.run();
    // Survivors are 0 and 2, both output 0.
    EXPECT_TRUE(res.agreement());
    EXPECT_EQ(res.honest_count(), 2u);
    EXPECT_EQ(*res.agreed_value(), 0);
}

TEST(Engine, TranscriptRecordsSendsAndCorruptions) {
    ScriptAdversary adv([](RoundControl& ctl) {
        if (ctl.round() == 1) ctl.corrupt(2);
    });
    Engine eng({3, 1, 2, true}, make_echo_nodes(3, 2, nullptr), adv);
    const RunResult res = eng.run();
    ASSERT_TRUE(res.transcript.has_value());
    const auto& tr = *res.transcript;
    ASSERT_EQ(tr.rounds().size(), 2u);
    EXPECT_TRUE(tr.round(0).sends[2].honest);
    EXPECT_TRUE(tr.round(0).sends[2].broadcast.has_value());
    EXPECT_FALSE(tr.round(1).sends[2].honest);
    ASSERT_EQ(tr.round(1).new_corruptions.size(), 1u);
    EXPECT_EQ(tr.round(1).new_corruptions[0], 2u);
}

TEST(Engine, RoundObserverSeesEveryRound) {
    NullAdversary adv;
    Engine eng({3, 0, 4, false}, make_echo_nodes(3, 4, nullptr), adv);
    std::vector<Round> seen;
    eng.set_round_observer([&](Round r, const auto& nodes, const auto& honest) {
        seen.push_back(r);
        EXPECT_EQ(nodes.size(), 3u);
        EXPECT_EQ(honest.size(), 3u);
    });
    eng.run();
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen.front(), 0u);
    EXPECT_EQ(seen.back(), 3u);
}

TEST(Engine, RunIsSingleShot) {
    NullAdversary adv;
    Engine eng({2, 0, 1, false}, make_echo_nodes(2, 1, nullptr), adv);
    eng.run();
    EXPECT_THROW(eng.run(), ContractViolation);
}

TEST(Engine, ConfigValidation) {
    NullAdversary adv;
    EXPECT_THROW(Engine({0, 0, 1, false},
                        std::vector<std::unique_ptr<HonestNode>>{}, adv),
                 ContractViolation);
    EXPECT_THROW(Engine({2, 0, 0, false}, make_echo_nodes(2, 1, nullptr), adv),
                 ContractViolation);
    EXPECT_THROW(Engine({3, 0, 1, false}, make_echo_nodes(2, 1, nullptr), adv),
                 ContractViolation);
}

TEST(Engine, WireBitsScaleWithLogN) {
    Message m;
    m.kind = MsgKind::Vote1;
    EXPECT_EQ(wire_bits(m, 2), 8u + 2u);
    EXPECT_EQ(wire_bits(m, 1024), 8u + ceil_log2(1025));
    EXPECT_LT(wire_bits(m, 1 << 20), 40u);  // CONGEST: O(log n) bits
    // Multi-valued prelude messages carry the word payload.
    Message tc;
    tc.kind = MsgKind::TCValue;
    EXPECT_EQ(wire_bits(tc, 1024), wire_bits(m, 1024) + 32u);
}

}  // namespace
}  // namespace adba::net
