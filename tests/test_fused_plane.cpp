// Fused trial plane tests: 64-trials-per-word execution (scenario fused=true)
// must be BIT-IDENTICAL to the scalar path — same aggregates, sample order
// included — for every fused-capable (protocol, adversary) registry pair, at
// any thread count, through partial blocks (trials % 64 != 0), per-lane
// early-decide divergence, and checkpoint kill/resume. Plus the feasibility
// rules (why_incompatible must name every rejected combination), the
// scenario key round trip, and a LaneAdder unit check against popcount.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/fused_plane.hpp"
#include "net/tally_kernels.hpp"
#include "rand/rng.hpp"
#include "sim/multivalued_runner.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "support/contracts.hpp"

namespace adba {
namespace {

void expect_samples_eq(const Samples& a, const Samples& b, const char* what) {
    ASSERT_EQ(a.count(), b.count()) << what;
    const auto& xs = a.values();
    const auto& ys = b.values();
    for (std::size_t i = 0; i < xs.size(); ++i)
        ASSERT_EQ(xs[i], ys[i]) << what << " sample " << i;
}

void expect_aggregate_eq(const sim::Aggregate& a, const sim::Aggregate& b) {
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.agreement_failures, b.agreement_failures);
    EXPECT_EQ(a.validity_failures, b.validity_failures);
    EXPECT_EQ(a.not_halted, b.not_halted);
    EXPECT_EQ(a.cap_exhausted, b.cap_exhausted);
    EXPECT_EQ(a.watchdog_timeouts, b.watchdog_timeouts);
    EXPECT_EQ(a.faulted, b.faulted);
    expect_samples_eq(a.rounds, b.rounds, "rounds");
    expect_samples_eq(a.messages, b.messages, "messages");
    expect_samples_eq(a.bits, b.bits, "bits");
    expect_samples_eq(a.corruptions, b.corruptions, "corruptions");
}

/// Largest t the protocol's resilience predicate admits at n (0 if none).
Count max_t(const sim::ProtocolEntry& p, NodeId n) {
    Count t = (n - 1) / 3;
    while (t > 0 && !p.supports(n, t)) --t;
    return t;
}

std::string temp_path(const char* name) {
    return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// LaneAdder: bit-sliced column counts must equal per-lane popcounts.

TEST(FusedPlane, LaneAdderMatchesPerLanePopcount) {
    Xoshiro256 rng(0xADDE);
    for (int iter = 0; iter < 20; ++iter) {
        const unsigned rows = 1 + static_cast<unsigned>(rng.below(300));
        net::kern::LaneAdder adder;
        Count expect[net::kFusedLanes] = {};
        for (unsigned r = 0; r < rows; ++r) {
            const std::uint64_t w = rng();
            adder.add(w);
            for (unsigned j = 0; j < net::kFusedLanes; ++j)
                expect[j] += static_cast<Count>((w >> j) & 1u);
        }
        Count got[net::kFusedLanes];
        adder.counts(got);
        for (unsigned j = 0; j < net::kFusedLanes; ++j)
            ASSERT_EQ(got[j], expect[j]) << "rows=" << rows << " lane=" << j;
    }
}

// ---------------------------------------------------------------------------
// Every fused-capable registry pair: fused == scalar, bit for bit, through
// one whole block plus a partial remainder, serial and threaded.

TEST(FusedPlaneEquivalence, AllRegistryPairsFusedMatchesScalar) {
    const NodeId n = 25;
    const Count trials = 70;  // one 64-lane block + 6 scalar-remainder trials
    Count covered = 0;
    for (const sim::ProtocolEntry* p : sim::ProtocolRegistry::instance().list()) {
        if (p->make_fused == nullptr) continue;
        for (const sim::AdversaryEntry* a : sim::AdversaryRegistry::instance().list()) {
            if (!a->supports_fused) continue;
            sim::Scenario s;
            s.protocol = p->kind;
            s.adversary = a->kind;
            s.n = n;
            s.t = max_t(*p, n);
            s.inputs = sim::InputPattern::Split;
            s.local_coin_phases = 12;  // keep the private-coin runs bounded
            s.use_fused = true;
            if (!sim::compatible(s)) continue;
            ++covered;
            SCOPED_TRACE(p->name + " vs " + a->name);

            sim::Scenario scalar = s;
            scalar.use_fused = false;

            // One chunk holding the whole range: the fused path runs one
            // block plus the scalar remainder inside it.
            const sim::ExecutorConfig serial{1, trials};
            const sim::Aggregate fused = sim::run_trials(s, 0xBA7C5, trials, serial);
            const sim::Aggregate ref = sim::run_trials(scalar, 0xBA7C5, trials, serial);
            expect_aggregate_eq(fused, ref);

            // Thread/chunk invariance of the fused path: chunks below 64
            // trials degrade to all-scalar, at 64+ they fuse — either way
            // the merged aggregate is the same object.
            const sim::Aggregate par = sim::run_trials(s, 0xBA7C5, trials, {8, 64});
            expect_aggregate_eq(fused, par);
        }
    }
    // 8 fused protocols x 5 fused adversaries, minus the schedule
    // constraint (crash-targeted-coin needs a committee schedule: only
    // ours / ours-lv / chor-coan x2 qualify) = 8*4 + 4.
    EXPECT_GE(covered, 36u) << "fused registry coverage unexpectedly low";
}

// ---------------------------------------------------------------------------
// Divergence fuzz: random (protocol, adversary, inputs, n, seed) tuples at
// exactly one block, so lanes that decide in different rounds (early-decide
// divergence) exercise the active-mask retirement path.

TEST(FusedPlaneEquivalence, FuzzDivergentLanesMatchBitIdentically) {
    const NodeId sizes[] = {4, 7, 26, 61};
    const sim::InputPattern patterns[] = {
        sim::InputPattern::AllZero, sim::InputPattern::AllOne,
        sim::InputPattern::Split, sim::InputPattern::Random};
    const auto protocols = sim::ProtocolRegistry::instance().list();
    const auto adversaries = sim::AdversaryRegistry::instance().list();

    Xoshiro256 rng(0xF05ED);
    Count checked = 0;
    for (int iter = 0; iter < 300 && checked < 24; ++iter) {
        const auto* p = protocols[rng.below(protocols.size())];
        if (p->make_fused == nullptr) continue;
        const auto* a = adversaries[rng.below(adversaries.size())];
        if (!a->supports_fused) continue;
        sim::Scenario s;
        s.protocol = p->kind;
        s.adversary = a->kind;
        s.n = sizes[rng.below(4)];
        s.t = max_t(*p, s.n);
        if (s.t > 0 && rng.bernoulli(0.3)) s.q = static_cast<Count>(rng.below(s.t + 1));
        s.inputs = patterns[rng.below(4)];
        s.local_coin_phases = 10;
        s.use_fused = true;
        if (!sim::compatible(s)) continue;
        ++checked;
        const std::uint64_t seed = rng();
        SCOPED_TRACE(p->name + " vs " + a->name + " n=" + std::to_string(s.n) +
                     " seed=" + std::to_string(seed));

        sim::Scenario scalar = s;
        scalar.use_fused = false;
        const sim::ExecutorConfig serial{1, 64};
        expect_aggregate_eq(sim::run_trials(s, seed, 64, serial),
                            sim::run_trials(scalar, seed, 64, serial));
    }
    EXPECT_GE(checked, 16u) << "fuzz sweep sampled too few fused scenarios";
}

// ---------------------------------------------------------------------------
// Partial blocks: every remainder class around the 64-lane boundary runs
// the right mix of fused blocks and scalar tail trials.

TEST(FusedPlaneEquivalence, PartialBlockRemaindersMatchScalar) {
    sim::Scenario s;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::Static;
    s.n = 24;
    s.t = 7;
    s.inputs = sim::InputPattern::Split;
    s.use_fused = true;
    sim::Scenario scalar = s;
    scalar.use_fused = false;

    for (Count trials : {Count{1}, Count{63}, Count{64}, Count{65}, Count{130}}) {
        SCOPED_TRACE("trials=" + std::to_string(trials));
        const sim::ExecutorConfig serial{1, trials};
        expect_aggregate_eq(sim::run_trials(s, 0xFEED, trials, serial),
                            sim::run_trials(scalar, 0xFEED, trials, serial));
    }
}

// ---------------------------------------------------------------------------
// Checkpoint kill/resume: a fused journal cut after k chunks resumes to the
// same bytes the scalar path produces, at 1 and 8 threads.

TEST(FusedPlaneEquivalence, CheckpointResumeIsBitIdentical) {
    sim::Scenario s;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::SplitVote;
    s.n = 22;
    s.t = 7;
    s.inputs = sim::InputPattern::Random;
    s.use_fused = true;
    sim::Scenario scalar = s;
    scalar.use_fused = false;
    const Count trials = 192;  // 3 chunks of 64, each one whole fused block

    const sim::Aggregate expected =
        sim::run_trials(scalar, 0xC4E5, trials, sim::ExecutorConfig{1, 64});

    const std::string full = temp_path("fused_ck_full.bin");
    std::filesystem::remove(full);
    expect_aggregate_eq(
        sim::run_trials(s, 0xC4E5, trials, sim::ExecutorConfig{1, 64, full, false}),
        expected);

    // Cut the journal after its first record (header + one chunk) and
    // resume: recovered partial + freshly fused chunks must still equal the
    // scalar aggregate byte for byte.
    std::ifstream in(full, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_EQ(bytes.substr(0, 8), "ADBACKP1");
    // Header: magic | u64 | u64 | u32 | u32 | u32+len | u32+len, then
    // records of 20 bytes + payload (the frozen ADBACKP1 layout).
    const auto u32_at = [&](std::size_t at) {
        std::uint32_t v = 0;
        std::memcpy(&v, bytes.data() + at, sizeof v);
        return v;
    };
    std::size_t at = 8 + 8 + 8 + 4 + 4;
    at += 4 + u32_at(at);
    at += 4 + u32_at(at);
    const std::size_t first_record_end = at + 20 + u32_at(at + 8);

    for (unsigned threads : {1u, 8u}) {
        const std::string cut = temp_path("fused_ck_cut.bin");
        std::filesystem::remove(cut);
        {
            std::ofstream out(cut, std::ios::binary | std::ios::trunc);
            out << bytes.substr(0, first_record_end);
        }
        const sim::Aggregate resumed =
            sim::run_trials(s, 0xC4E5, trials, sim::ExecutorConfig{threads, 64, cut, true});
        expect_aggregate_eq(resumed, expected);
    }
}

// ---------------------------------------------------------------------------
// Feasibility: every rejected combination states why, by name.

TEST(FusedPlaneRegistry, WhyIncompatibleNamesEveryRejection) {
    const auto why = [](sim::Scenario s) {
        const auto msg = sim::why_incompatible(s);
        return msg ? *msg : std::string{};
    };

    sim::Scenario base;
    base.protocol = sim::ProtocolKind::Ours;
    base.adversary = sim::AdversaryKind::Static;
    base.n = 16;
    base.t = 5;
    base.use_fused = true;
    ASSERT_TRUE(sim::compatible(base));

    // Protocol without a fused form (t set to its own resilience bound so
    // the fused rule, not the resilience rule, is what fires).
    sim::Scenario s = base;
    s.protocol = sim::ProtocolKind::SamplingMajority;
    s.t = max_t(sim::ProtocolRegistry::instance().at(s.protocol), s.n);
    EXPECT_NE(why(s).find("fused-capable protocol"), std::string::npos) << why(s);
    EXPECT_NE(why(s).find("ours"), std::string::npos) << why(s);

    // Adversaries outside the lane-masked split_as bridge. (Balancer and
    // king-killer carry requires_protocol rules that fire first, so the
    // generic sweep uses the unrestricted ones and king-killer is paired
    // with its own protocol below.)
    for (const auto kind :
         {sim::AdversaryKind::Chaos, sim::AdversaryKind::WorstCase}) {
        s = base;
        s.adversary = kind;
        EXPECT_NE(why(s).find("fused plane"), std::string::npos) << why(s);
        EXPECT_NE(why(s).find("static"), std::string::npos)
            << "rejection should list the fused-capable alternatives: " << why(s);
    }
    s = base;
    s.protocol = sim::ProtocolKind::PhaseKing;
    s.t = 3;
    s.adversary = sim::AdversaryKind::KingKiller;
    EXPECT_NE(why(s).find("fused plane"), std::string::npos) << why(s);

    // Plane/oracle/transcript/batch/watchdog conflicts.
    s = base;
    s.sparse_plane = true;
    EXPECT_NE(why(s).find("plane=sparse"), std::string::npos) << why(s);
    s = base;
    s.reference_delivery = true;
    EXPECT_NE(why(s).find("reference"), std::string::npos) << why(s);
    s = base;
    s.record_transcript = true;
    EXPECT_NE(why(s).find("transcript"), std::string::npos) << why(s);
    s = base;
    s.use_batch = false;
    EXPECT_NE(why(s).find("batch=false"), std::string::npos) << why(s);
    s = base;
    s.watchdog_ms = 5;
    EXPECT_NE(why(s).find("watchdog"), std::string::npos) << why(s);

    // The multi-valued stack has no fused key at all.
    EXPECT_THROW((void)sim::MvScenario::parse("n=16 t=5 fused=true"),
                 ContractViolation);
}

TEST(FusedPlaneRegistry, ScenarioFusedKeyRoundTrips) {
    sim::Scenario s;
    s.n = 16;
    s.t = 5;
    s.use_fused = true;
    EXPECT_NE(s.describe().find("fused=true"), std::string::npos);
    EXPECT_EQ(sim::Scenario::parse(s.describe()), s);
    EXPECT_FALSE(sim::Scenario::parse("n=16 t=5").use_fused);
    EXPECT_TRUE(sim::Scenario::parse("n=16 t=5 fused=on").use_fused);
    EXPECT_FALSE(sim::Scenario::parse("n=16 t=5 fused=off").use_fused);
}

TEST(FusedPlaneRegistry, FusedCapabilityFlagsMatchThePlan) {
    const auto& protocols = sim::ProtocolRegistry::instance();
    for (const char* name : {"ours", "ours-las-vegas", "chor-coan-rushing",
                             "chor-coan-classic", "rabin-dealer", "local-coin",
                             "ben-or", "phase-king"})
        EXPECT_TRUE(protocols.at(std::string(name)).make_fused != nullptr) << name;
    EXPECT_TRUE(protocols.at("sampling-majority").make_fused == nullptr);

    const auto& adversaries = sim::AdversaryRegistry::instance();
    for (const char* name :
         {"none", "static", "split-vote", "crash-random", "crash-targeted-coin"})
        EXPECT_TRUE(adversaries.at(std::string(name)).supports_fused) << name;
    for (const char* name : {"chaos", "worst-case", "king-killer", "balancer"})
        EXPECT_FALSE(adversaries.at(std::string(name)).supports_fused) << name;
}

}  // namespace
}  // namespace adba
