// Executor tests: chunked parallel reduction correctness, exception
// propagation, and the headline determinism guarantee — aggregates are
// bit-identical at 1, 2, and 8 threads for a fixed (scenario, base seed).
#include <gtest/gtest.h>

#include <vector>

#include "sim/coin_runner.hpp"
#include "sim/executor.hpp"
#include "sim/macro.hpp"
#include "sim/multivalued_runner.hpp"
#include "sim/runner.hpp"
#include "support/contracts.hpp"

namespace adba::sim {
namespace {

// Toy aggregate recording the observed trial indices in merge order.
struct OrderAgg {
    std::vector<Count> order;

    void merge(const OrderAgg& other) {
        order.insert(order.end(), other.order.begin(), other.order.end());
    }
};

OrderAgg run_order(Count trials, const ExecutorConfig& cfg) {
    return parallel_reduce<OrderAgg>(trials, cfg, [](Count begin, Count end) {
        OrderAgg part;
        for (Count i = begin; i < end; ++i) part.order.push_back(i);
        return part;
    });
}

TEST(Executor, ReducePreservesIndexOrder) {
    for (unsigned threads : {1u, 2u, 3u, 8u}) {
        for (Count chunk : {1u, 3u, 7u, 100u}) {
            const OrderAgg agg = run_order(25, ExecutorConfig{threads, chunk});
            ASSERT_EQ(agg.order.size(), 25u) << threads << "x" << chunk;
            for (Count i = 0; i < 25; ++i) EXPECT_EQ(agg.order[i], i);
        }
    }
}

TEST(Executor, ZeroTrialsYieldsEmptyAggregate) {
    const OrderAgg agg = run_order(0, ExecutorConfig{8, 2});
    EXPECT_TRUE(agg.order.empty());
}

TEST(Executor, ExceptionsPropagateFromWorkers) {
    const auto boom = [](Count begin, Count end) -> OrderAgg {
        for (Count i = begin; i < end; ++i)
            ADBA_EXPECTS_MSG(i != 13, "fault injected at trial 13");
        return {};
    };
    EXPECT_THROW(parallel_reduce<OrderAgg>(20, ExecutorConfig{4, 1}, boom),
                 ContractViolation);
    EXPECT_THROW(parallel_reduce<OrderAgg>(20, ExecutorConfig{1, 1}, boom),
                 ContractViolation);
}

TEST(Executor, DefaultThreadsIsSettable) {
    const unsigned before = default_threads();
    set_default_threads(3);
    EXPECT_EQ(default_threads(), 3u);
    set_default_threads(0);  // back to hardware
    EXPECT_EQ(default_threads(), hardware_threads());
    EXPECT_GE(hardware_threads(), 1u);
    set_default_threads(before == hardware_threads() ? 0 : before);
}

// ------------------------------------------------- thread-count invariance

void expect_samples_identical(const Samples& a, const Samples& b) {
    ASSERT_EQ(a.count(), b.count());
    // Compare raw buffers and the order-sensitive statistics only; min()/max()
    // would lazily SORT the shared serial aggregate and poison the comparison
    // for the next thread count (extrema are implied by buffer equality).
    const auto& xa = a.values();
    const auto& xb = b.values();
    for (std::size_t i = 0; i < xa.size(); ++i) EXPECT_EQ(xa[i], xb[i]) << "i=" << i;
    if (!xa.empty()) {
        EXPECT_EQ(a.mean(), b.mean());
        EXPECT_EQ(a.stddev(), b.stddev());
    }
}

TEST(Executor, RunTrialsBitIdenticalAcrossThreadCounts) {
    Scenario s;
    s.n = 32;
    s.t = 8;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Split;

    const Aggregate serial = run_trials(s, 0xD1CE, 12, ExecutorConfig{1});
    for (unsigned threads : {2u, 8u}) {
        const Aggregate par = run_trials(s, 0xD1CE, 12, ExecutorConfig{threads});
        EXPECT_EQ(par.trials, serial.trials);
        EXPECT_EQ(par.agreement_failures, serial.agreement_failures);
        EXPECT_EQ(par.validity_failures, serial.validity_failures);
        EXPECT_EQ(par.not_halted, serial.not_halted);
        expect_samples_identical(par.rounds, serial.rounds);
        expect_samples_identical(par.messages, serial.messages);
        expect_samples_identical(par.bits, serial.bits);
        expect_samples_identical(par.corruptions, serial.corruptions);
    }
}

TEST(Executor, RunCoinTrialsBitIdenticalAcrossThreadCounts) {
    const CoinScenario s{64, 64, 4, adv::CoinAttack::Split, 0};
    const CoinAggregate serial = run_coin_trials(s, 0xC0FFEE, 200, ExecutorConfig{1});
    for (unsigned threads : {2u, 8u}) {
        const CoinAggregate par = run_coin_trials(s, 0xC0FFEE, 200,
                                                  ExecutorConfig{threads});
        EXPECT_EQ(par.trials, serial.trials);
        EXPECT_EQ(par.common, serial.common);
        EXPECT_EQ(par.common_ones, serial.common_ones);
        EXPECT_EQ(par.attack_feasible, serial.attack_feasible);
    }
}

TEST(Executor, RunMvTrialsBitIdenticalAcrossThreadCounts) {
    MvScenario s;
    s.n = 16;
    s.t = 5;
    s.inputs = MvInputPattern::TwoBlocks;
    s.adversary = MvAdversaryKind::WorstCaseInner;
    const MvAggregate serial = run_mv_trials(s, 0x3D3D, 6, ExecutorConfig{1});
    for (unsigned threads : {2u, 8u}) {
        const MvAggregate par = run_mv_trials(s, 0x3D3D, 6, ExecutorConfig{threads});
        EXPECT_EQ(par.trials, serial.trials);
        EXPECT_EQ(par.agreement_failures, serial.agreement_failures);
        EXPECT_EQ(par.validity_failures, serial.validity_failures);
        EXPECT_EQ(par.decided_real, serial.decided_real);
        expect_samples_identical(par.rounds, serial.rounds);
    }
}

TEST(Executor, RunMacroTrialsBitIdenticalAcrossThreadCounts) {
    MacroScenario m;
    m.n = 4096;
    m.t = 300;
    m.q = 300;
    const MacroAggregate serial = run_macro_trials(m, 0xAAA, 32, ExecutorConfig{1});
    for (unsigned threads : {2u, 8u}) {
        const MacroAggregate par = run_macro_trials(m, 0xAAA, 32,
                                                    ExecutorConfig{threads});
        EXPECT_EQ(par.trials, serial.trials);
        EXPECT_EQ(par.agreement_failures, serial.agreement_failures);
        expect_samples_identical(par.rounds, serial.rounds);
        expect_samples_identical(par.phases, serial.phases);
        expect_samples_identical(par.corruptions, serial.corruptions);
    }
}

TEST(Executor, ChunkSizeDoesNotChangeResults) {
    Scenario s;
    s.n = 24;
    s.t = 6;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Split;
    const Aggregate serial = run_trials(s, 7, 10, ExecutorConfig{1});
    for (Count chunk : {1u, 2u, 3u, 64u}) {
        const Aggregate par = run_trials(s, 7, 10, ExecutorConfig{4, chunk});
        expect_samples_identical(par.rounds, serial.rounds);
        EXPECT_EQ(par.agreement_failures, serial.agreement_failures);
    }
}

// The exact per-trial seed derivation is the contract that keeps old results
// reproducible; a run at trials=K must be a prefix of a run at trials>K.
TEST(Executor, LongerRunExtendsShorterRun) {
    Scenario s;
    s.n = 24;
    s.t = 6;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Split;
    const Aggregate small = run_trials(s, 99, 5, ExecutorConfig{2});
    const Aggregate big = run_trials(s, 99, 9, ExecutorConfig{8});
    for (std::size_t i = 0; i < small.rounds.values().size(); ++i)
        EXPECT_EQ(small.rounds.values()[i], big.rounds.values()[i]);
}

}  // namespace
}  // namespace adba::sim
