// Unit tests for src/support: contracts, math helpers, statistics, table
// rendering, CLI parsing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/cli.hpp"
#include "support/contracts.hpp"
#include "support/math.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace adba {
namespace {

// ---------------------------------------------------------------- contracts

TEST(Contracts, ExpectsThrowsContractViolation) {
    EXPECT_THROW(ADBA_EXPECTS(1 == 2), ContractViolation);
}

TEST(Contracts, ExpectsPassesOnTrue) {
    EXPECT_NO_THROW(ADBA_EXPECTS(2 + 2 == 4));
}

TEST(Contracts, MessageIsPreserved) {
    try {
        ADBA_EXPECTS_MSG(false, "the reason");
        FAIL() << "should have thrown";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("the reason"), std::string::npos);
    }
}

TEST(Contracts, EnsuresThrows) { EXPECT_THROW(ADBA_ENSURES(false), ContractViolation); }

// --------------------------------------------------------------------- math

TEST(Math, CeilDiv) {
    EXPECT_EQ(ceil_div(10, 3), 4u);
    EXPECT_EQ(ceil_div(9, 3), 3u);
    EXPECT_EQ(ceil_div(1, 1), 1u);
    EXPECT_EQ(ceil_div(0, 5), 0u);
    EXPECT_EQ(ceil_div(1000001, 1000), 1001u);
}

TEST(Math, CeilLog2) {
    EXPECT_EQ(ceil_log2(1), 0u);
    EXPECT_EQ(ceil_log2(2), 1u);
    EXPECT_EQ(ceil_log2(3), 2u);
    EXPECT_EQ(ceil_log2(4), 2u);
    EXPECT_EQ(ceil_log2(5), 3u);
    EXPECT_EQ(ceil_log2(1024), 10u);
    EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Math, FloorLog2) {
    EXPECT_EQ(floor_log2(1), 0u);
    EXPECT_EQ(floor_log2(2), 1u);
    EXPECT_EQ(floor_log2(3), 1u);
    EXPECT_EQ(floor_log2(1024), 10u);
    EXPECT_EQ(floor_log2(1535), 10u);
}

TEST(Math, Isqrt) {
    EXPECT_EQ(isqrt(0), 0u);
    EXPECT_EQ(isqrt(1), 1u);
    EXPECT_EQ(isqrt(3), 1u);
    EXPECT_EQ(isqrt(4), 2u);
    EXPECT_EQ(isqrt(15), 3u);
    EXPECT_EQ(isqrt(16), 4u);
    EXPECT_EQ(isqrt(1ULL << 40), 1ULL << 20);
    EXPECT_EQ(isqrt((1ULL << 40) - 1), (1ULL << 20) - 1);
}

TEST(Math, IsqrtIsMonotone) {
    std::uint64_t prev = 0;
    for (std::uint64_t x = 0; x < 5000; ++x) {
        const auto r = isqrt(x);
        EXPECT_GE(r, prev);
        EXPECT_LE(r * r, x);
        EXPECT_GT((r + 1) * (r + 1), x);
        prev = r;
    }
}

TEST(Math, SafeLog2ClampsToOne) {
    EXPECT_DOUBLE_EQ(safe_log2(1.0), 1.0);
    EXPECT_DOUBLE_EQ(safe_log2(2.0), 1.0);
    EXPECT_DOUBLE_EQ(safe_log2(1024.0), 10.0);
    EXPECT_THROW(safe_log2(0.5), ContractViolation);
}

// -------------------------------------------------------------------- stats

TEST(RunningStats, MeanAndVariance) {
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
    RunningStats s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, EmptyMinThrows) {
    RunningStats s;
    EXPECT_THROW(s.min(), ContractViolation);
}

TEST(Samples, QuantilesExactOnSmallSet) {
    Samples s;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Samples, QuantileInterpolates) {
    Samples s;
    s.add(0.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.35), 3.5);
}

TEST(Samples, StatsMatchRunningStats) {
    RunningStats r;
    Samples s;
    for (int i = 0; i < 100; ++i) {
        const double x = static_cast<double>((i * 37) % 101);
        r.add(x);
        s.add(x);
    }
    EXPECT_NEAR(r.mean(), s.mean(), 1e-9);
    EXPECT_NEAR(r.stddev(), s.stddev(), 1e-9);
    EXPECT_DOUBLE_EQ(r.min(), s.min());
    EXPECT_DOUBLE_EQ(r.max(), s.max());
}

TEST(Samples, AddAfterQuantileKeepsConsistency) {
    Samples s;
    s.add(5.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    s.add(0.5);  // must re-sort lazily
    EXPECT_DOUBLE_EQ(s.min(), 0.5);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Samples, MergeMatchesSingleStream) {
    // Splitting one observation stream into consecutive chunks and merging
    // the chunk Samples in order must reproduce the single-stream statistics
    // EXACTLY (same buffer, same summation order) — the executor relies on it.
    const std::vector<double> xs = {3.0, 1.5, 4.25, 1.0, 5.5, 9.0, 2.75, 6.0, 5.0};
    Samples single;
    for (double x : xs) single.add(x);

    Samples merged, chunk_a, chunk_b, chunk_c;
    for (std::size_t i = 0; i < 3; ++i) chunk_a.add(xs[i]);
    for (std::size_t i = 3; i < 7; ++i) chunk_b.add(xs[i]);
    for (std::size_t i = 7; i < xs.size(); ++i) chunk_c.add(xs[i]);
    merged.merge(chunk_a);
    merged.merge(chunk_b);
    merged.merge(chunk_c);

    ASSERT_EQ(merged.count(), single.count());
    EXPECT_EQ(merged.values(), single.values());
    EXPECT_EQ(merged.mean(), single.mean());
    EXPECT_EQ(merged.stddev(), single.stddev());
    EXPECT_EQ(merged.min(), single.min());
    EXPECT_EQ(merged.max(), single.max());
    EXPECT_EQ(merged.quantile(0.9), single.quantile(0.9));
    EXPECT_EQ(merged.median(), single.median());
}

TEST(Samples, MergeWithEmptySidesIsIdentity) {
    Samples a;
    a.add(2.0);
    a.add(7.0);
    Samples empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 4.5);
}

TEST(RunningStats, MergeMatchesSingleStream) {
    RunningStats single, left, right;
    for (int i = 0; i < 40; ++i) {
        const double x = static_cast<double>((i * 53) % 97) / 3.0;
        single.add(x);
        (i < 17 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), single.count());
    EXPECT_NEAR(left.mean(), single.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), single.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), single.min());
    EXPECT_DOUBLE_EQ(left.max(), single.max());
    EXPECT_NEAR(left.sum(), single.sum(), 1e-12);
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
    RunningStats a, empty;
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

// -------------------------------------------------------------------- table

TEST(Table, MarkdownShape) {
    Table t("Demo");
    t.set_header({"a", "long-column"});
    t.add_row({"1", "x"});
    t.add_row({"22", "yy"});
    const std::string md = t.to_markdown();
    EXPECT_NE(md.find("### Demo"), std::string::npos);
    EXPECT_NE(md.find("| a "), std::string::npos);
    EXPECT_NE(md.find("long-column"), std::string::npos);
    // Header separator present.
    EXPECT_NE(md.find("|--"), std::string::npos);
}

TEST(Table, RowArityEnforced) {
    Table t("x");
    t.set_header({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, HeaderAfterRowsRejected) {
    Table t("x");
    t.set_header({"a"});
    t.add_row({"1"});
    EXPECT_THROW(t.set_header({"b"}), ContractViolation);
}

TEST(Table, CsvEscaping) {
    Table t("x");
    t.set_header({"name", "value"});
    t.add_row({"with,comma", "with\"quote"});
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, NumFormatting) {
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
    EXPECT_EQ(Table::num(1.0, 0), "1");
}

TEST(Table, WriteCsvCreatesMissingDirectories) {
    const auto dir = std::filesystem::temp_directory_path() /
                     "adba_csv_test" / "nested";
    std::filesystem::remove_all(dir.parent_path());
    Table t("x");
    t.set_header({"a", "b"});
    t.add_row({"1", "2"});
    const std::string path = write_csv(t, dir.string(), "demo");
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "a,b");
    std::filesystem::remove_all(dir.parent_path());
}

TEST(Table, WriteCsvFailsLoudlyWhenDirectoryIsAFile) {
    const auto blocker = std::filesystem::temp_directory_path() / "adba_csv_blocker";
    std::ofstream(blocker.string()) << "not a directory";
    Table t("x");
    t.set_header({"a"});
    t.add_row({"1"});
    // The target "directory" is a regular file: creation must throw, not
    // silently drop the table.
    EXPECT_THROW(write_csv(t, (blocker / "sub").string(), "demo"), ContractViolation);
    std::filesystem::remove(blocker);
}

// ---------------------------------------------------------------------- cli

TEST(Cli, ParsesEqualsForm) {
    const char* argv[] = {"prog", "--n=256", "--alpha=2.5", "--verbose"};
    Cli cli(4, const_cast<char**>(argv));
    EXPECT_EQ(cli.get_int("n", 0), 256);
    EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 2.5);
    EXPECT_TRUE(cli.get_bool("verbose", false));
    EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, ParsesSpaceForm) {
    const char* argv[] = {"prog", "--trials", "50"};
    Cli cli(3, const_cast<char**>(argv));
    EXPECT_EQ(cli.get_int("trials", 0), 50);
}

TEST(Cli, IntList) {
    const char* argv[] = {"prog", "--t=1,2,30"};
    Cli cli(2, const_cast<char**>(argv));
    const auto xs = cli.get_int_list("t", {});
    ASSERT_EQ(xs.size(), 3u);
    EXPECT_EQ(xs[0], 1);
    EXPECT_EQ(xs[1], 2);
    EXPECT_EQ(xs[2], 30);
}

TEST(Cli, BenchmarkFlagsPassThrough) {
    const char* argv[] = {"prog", "--benchmark_filter=all", "--n=4"};
    Cli cli(3, const_cast<char**>(argv));
    EXPECT_EQ(cli.get_int("n", 0), 4);
    ASSERT_EQ(cli.passthrough().size(), 2u);
    EXPECT_EQ(cli.passthrough()[1], "--benchmark_filter=all");
}

TEST(Cli, CheckUnusedPassesWhenEveryFlagWasQueried) {
    const char* argv[] = {"prog", "--n=4", "--trials=9"};
    Cli cli(3, const_cast<char**>(argv));
    cli.get_int("n", 0);
    cli.get_int("trials", 0);
    cli.get_int("threads", 1);  // queried-but-absent flags are fine
    EXPECT_NO_THROW(cli.check_unused());
}

TEST(Cli, CheckUnusedFailsLoudlyOnTypo) {
    const char* argv[] = {"prog", "--trails=50"};
    Cli cli(2, const_cast<char**>(argv));
    cli.get_int("trials", 20);
    try {
        cli.check_unused();
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("--trails"), std::string::npos) << msg;
        EXPECT_NE(msg.find("did you mean --trials?"), std::string::npos) << msg;
    }
}

TEST(Cli, CheckUnusedIgnoresPassthrough) {
    const char* argv[] = {"prog", "--benchmark_filter=all", "positional"};
    Cli cli(3, const_cast<char**>(argv));
    EXPECT_NO_THROW(cli.check_unused());
}

TEST(Cli, CheckUnusedListsAllOffenders) {
    const char* argv[] = {"prog", "--alpha=1", "--bogus=2", "--wrong=3"};
    Cli cli(4, const_cast<char**>(argv));
    cli.get_double("alpha", 0.0);
    try {
        cli.check_unused();
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("--bogus"), std::string::npos) << msg;
        EXPECT_NE(msg.find("--wrong"), std::string::npos) << msg;
        EXPECT_EQ(msg.find("--alpha=1"), std::string::npos) << msg;
    }
}

}  // namespace
}  // namespace adba
