// Sweep-layer tests: grid enumeration order, labels, derived axes, filters
// (with stable row seeds), and equivalence of run_sweep with direct runner
// calls at the row's seed.
#include <gtest/gtest.h>

#include "sim/macro.hpp"
#include "sim/sweep.hpp"
#include "support/contracts.hpp"

namespace adba::sim {
namespace {

TEST(SweepGrid, EmptyAxesYieldSingleBaseRow) {
    SweepGrid g;
    g.base.n = 32;
    g.base.t = 8;
    const auto rows = g.rows();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].scenario.n, 32u);
    EXPECT_EQ(rows[0].scenario.t, 8u);
    EXPECT_EQ(rows[0].index, 0u);
    EXPECT_TRUE(rows[0].label.empty());  // nothing swept, nothing to say
}

TEST(SweepGrid, CrossProductOrderAndLabels) {
    SweepGrid g;
    g.ns = {16, 32};
    g.ts = {2, 4};
    g.protocols = {ProtocolKind::Ours};
    const auto rows = g.rows();
    ASSERT_EQ(rows.size(), 4u);
    // n is the outer axis, t the inner one.
    EXPECT_EQ(rows[0].scenario.n, 16u);
    EXPECT_EQ(rows[0].scenario.t, 2u);
    EXPECT_EQ(rows[1].scenario.n, 16u);
    EXPECT_EQ(rows[1].scenario.t, 4u);
    EXPECT_EQ(rows[3].scenario.n, 32u);
    EXPECT_EQ(rows[3].scenario.t, 4u);
    EXPECT_EQ(rows[0].label, "n=16 t=2 ours(alg3)");
    EXPECT_EQ(rows[3].label, "n=32 t=4 ours(alg3)");
    for (std::size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(rows[i].index, i);
}

TEST(SweepGrid, TOfNDerivesThePerNBudget) {
    SweepGrid g;
    g.ns = {30, 90};
    g.t_of_n = [](NodeId n) { return static_cast<Count>(n / 3 - 1); };
    const auto rows = g.rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].scenario.t, 9u);
    EXPECT_EQ(rows[1].scenario.t, 29u);
}

TEST(SweepGrid, AdversaryOfPairsEachProtocol) {
    SweepGrid g;
    g.protocols = {ProtocolKind::Ours, ProtocolKind::PhaseKing,
                   ProtocolKind::RabinDealer};
    g.adversary_of = strongest_adversary;
    const auto rows = g.rows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].scenario.adversary, AdversaryKind::WorstCase);
    EXPECT_EQ(rows[1].scenario.adversary, AdversaryKind::KingKiller);
    EXPECT_EQ(rows[2].scenario.adversary, AdversaryKind::SplitVote);
}

TEST(SweepGrid, FilterDropsRowsWithoutShiftingIndices) {
    SweepGrid g;
    g.ts = {1, 2, 3, 4};
    const auto all = g.rows();
    ASSERT_EQ(all.size(), 4u);

    g.filter = [](const Scenario& s) { return s.t % 2 == 0; };
    const auto filtered = g.rows();
    ASSERT_EQ(filtered.size(), 2u);
    // Surviving rows keep their position in the FULL enumeration, so their
    // row seeds (and the other rows' seeds) are unchanged by the filter.
    EXPECT_EQ(filtered[0].scenario.t, 2u);
    EXPECT_EQ(filtered[0].index, 1u);
    EXPECT_EQ(filtered[1].scenario.t, 4u);
    EXPECT_EQ(filtered[1].index, 3u);
    EXPECT_EQ(row_seed(5, filtered[0].index), row_seed(5, all[1].index));
}

TEST(SweepGrid, QAxisSetsActualCorruptions) {
    SweepGrid g;
    g.base.t = 10;
    g.qs = {0, 4};
    const auto rows = g.rows();
    ASSERT_EQ(rows.size(), 2u);
    ASSERT_TRUE(rows[0].scenario.q.has_value());
    EXPECT_EQ(*rows[0].scenario.q, 0u);
    EXPECT_EQ(*rows[1].scenario.q, 4u);
    EXPECT_EQ(rows[1].label, "q=4");
}

TEST(Sweep, RunSweepMatchesDirectRunnerCall) {
    SweepGrid g;
    g.base.n = 24;
    g.base.t = 6;
    g.base.protocol = ProtocolKind::Ours;
    g.base.adversary = AdversaryKind::WorstCase;
    g.base.inputs = InputPattern::Split;
    g.ts = {4, 6};
    const auto outcomes = run_sweep(g, 0xABCD, 5);
    ASSERT_EQ(outcomes.size(), 2u);
    for (const auto& o : outcomes) {
        const Aggregate direct =
            run_trials(o.row.scenario, row_seed(0xABCD, o.row.index), 5);
        EXPECT_EQ(o.agg.rounds.values(), direct.rounds.values());
        EXPECT_EQ(o.agg.agreement_failures, direct.agreement_failures);
    }
}

// ----------------------------------------------------------------- coin grid

TEST(CoinSweepGrid, RatioBudgetsScaleWithCommitteeSqrt) {
    CoinSweepGrid g;
    g.ns = {256};
    g.ks = {16, 64};
    g.f_ratios = {0.0, 0.5};
    const auto rows = g.rows();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].scenario.f, 0u);
    EXPECT_EQ(rows[1].scenario.f, 2u);  // 0.5 * sqrt(16)
    EXPECT_EQ(rows[3].scenario.f, 4u);  // 0.5 * sqrt(64)
    EXPECT_EQ(rows[1].scenario.designated, 16u);
    EXPECT_EQ(rows[1].scenario.n, 256u);
}

TEST(CoinSweepGrid, CommitteesLargerThanNAreSkipped) {
    CoinSweepGrid g;
    g.ns = {64};
    g.ks = {16, 128};
    g.f_ratios = {0.0};
    const auto rows = g.rows();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].scenario.designated, 16u);
    EXPECT_EQ(rows[0].index, 0u);
}

TEST(CoinSweepGrid, KDefaultsToNAndExplicitBudgetsWork) {
    CoinSweepGrid g;
    g.ns = {64, 100};
    g.fs = {0, 3};
    const auto rows = g.rows();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].scenario.designated, 64u);
    EXPECT_EQ(rows[1].scenario.f, 3u);
    EXPECT_EQ(rows[2].scenario.designated, 100u);
}

TEST(CoinSweepGrid, RejectsBothBudgetAxes) {
    CoinSweepGrid g;
    g.ns = {64};
    g.f_ratios = {0.5};
    g.fs = {2};
    EXPECT_THROW(g.rows(), ContractViolation);
}

TEST(CoinSweepGrid, RejectsMissingBudgetAxis) {
    // Forgetting both budget axes must fail loudly, not yield zero rows.
    CoinSweepGrid g;
    g.ns = {64};
    EXPECT_THROW(g.rows(), ContractViolation);
}

TEST(CoinSweep, RunCoinSweepMatchesDirectCall) {
    CoinSweepGrid g;
    g.ns = {64};
    g.f_ratios = {0.5};
    const auto outcomes = run_coin_sweep(g, 0x11, 50);
    ASSERT_EQ(outcomes.size(), 1u);
    const CoinAggregate direct =
        run_coin_trials(outcomes[0].row.scenario, row_seed(0x11, 0), 50);
    EXPECT_EQ(outcomes[0].agg.common, direct.common);
    EXPECT_EQ(outcomes[0].agg.common_ones, direct.common_ones);
}

// ------------------------------------------------------------------- mv grid

TEST(MvSweepGrid, CrossProductAndLabels) {
    MvSweepGrid g;
    g.base.n = 16;
    g.base.t = 5;
    g.inputs = {MvInputPattern::AllSame, MvInputPattern::TwoBlocks};
    g.adversaries = {MvAdversaryKind::None, MvAdversaryKind::WorstCaseInner};
    const auto rows = g.rows();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].label, "all-same none");
    EXPECT_EQ(rows[3].label, "two-blocks worst-case(inner)");
    EXPECT_EQ(rows[3].scenario.inputs, MvInputPattern::TwoBlocks);
    EXPECT_EQ(rows[3].scenario.adversary, MvAdversaryKind::WorstCaseInner);
}

TEST(MvSweep, ToStringCoverage) {
    EXPECT_EQ(to_string(MvInputPattern::NearQuorum), "near-quorum(60%)");
    EXPECT_EQ(to_string(MvAdversaryKind::PreludePlusWorstCase), "prelude+worst-case");
    EXPECT_EQ(to_string(MacroScheduleKind::ChorCoanRushing), "cc-rushing(macro)");
}

}  // namespace
}  // namespace adba::sim
