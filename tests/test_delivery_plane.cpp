// Delivery-plane tests: the flat RoundBuffer/RoundTally path must be
// BIT-IDENTICAL to the reference virtual-dispatch path (per-sender loops
// over a DeliverySource) for every compatible (protocol, adversary) registry
// pair, at any thread count; plus pattern-row mechanics and the halted-
// receiver message-accounting contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "net/engine.hpp"
#include "net/round_buffer.hpp"
#include "rand/rng.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "support/contracts.hpp"

namespace adba {
namespace {

using net::Message;
using net::MsgKind;

// ---------------------------------------------------------------------------
// Old-vs-new equivalence over the full registry cross product.

void expect_samples_eq(const Samples& a, const Samples& b, const char* what) {
    ASSERT_EQ(a.count(), b.count()) << what;
    const auto& xs = a.values();
    const auto& ys = b.values();
    for (std::size_t i = 0; i < xs.size(); ++i)
        ASSERT_EQ(xs[i], ys[i]) << what << " sample " << i;
}

void expect_aggregate_eq(const sim::Aggregate& a, const sim::Aggregate& b) {
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.agreement_failures, b.agreement_failures);
    EXPECT_EQ(a.validity_failures, b.validity_failures);
    EXPECT_EQ(a.not_halted, b.not_halted);
    expect_samples_eq(a.rounds, b.rounds, "rounds");
    expect_samples_eq(a.messages, b.messages, "messages");
    expect_samples_eq(a.bits, b.bits, "bits");
    expect_samples_eq(a.corruptions, b.corruptions, "corruptions");
}

/// Largest t the protocol's resilience predicate admits at n (0 if none).
Count max_t(const sim::ProtocolEntry& p, NodeId n) {
    Count t = (n - 1) / 3;
    while (t > 0 && !p.supports(n, t)) --t;
    return t;
}

TEST(DeliveryPlaneEquivalence, AllRegistryPairsFlatMatchesReference) {
    const NodeId n = 25;
    // ADBA_FORCE_SPARSE=1 (the sanitizer CI pass) reruns the cross product
    // with the sparse plane in dense oracle mode: the reference comparison
    // below then pins sparse == reference through an entirely different
    // receive path, under ASan/UBSan.
    const bool force_sparse = std::getenv("ADBA_FORCE_SPARSE") != nullptr;
    Count covered = 0;
    for (const sim::ProtocolEntry* p : sim::ProtocolRegistry::instance().list()) {
        for (const sim::AdversaryEntry* a : sim::AdversaryRegistry::instance().list()) {
            sim::Scenario s;
            s.protocol = p->kind;
            s.adversary = a->kind;
            s.n = n;
            s.t = max_t(*p, n);
            s.inputs = sim::InputPattern::Split;
            s.local_coin_phases = 12;  // keep the private-coin runs bounded
            if (force_sparse) {
                s.sparse_plane = true;
                s.sample_degree = n;  // dense: bit-identical to flat
            }
            if (!sim::compatible(s)) continue;
            ++covered;
            SCOPED_TRACE(p->name + " vs " + a->name);

            const sim::ExecutorConfig serial{1, 0};
            const sim::Aggregate flat = sim::run_trials(s, 0xD1CE, 6, serial);

            sim::Scenario ref = s;
            ref.sparse_plane = false;  // sparse has no reference form
            ref.sample_degree = 0;
            ref.reference_delivery = true;
            const sim::Aggregate oracle = sim::run_trials(ref, 0xD1CE, 6, serial);
            expect_aggregate_eq(flat, oracle);

            // Thread-count invariance of the flat path (arena re-arming must
            // be exact across any chunking).
            const sim::Aggregate par = sim::run_trials(s, 0xD1CE, 6, {8, 2});
            expect_aggregate_eq(flat, par);
        }
    }
    // 9 protocols x 9 adversaries minus the schedule/targeting constraints
    // (8 sparse-capable protocols when the force flag drops sampling-majority).
    EXPECT_GE(covered, force_sparse ? 45u : 50u) << "registry coverage unexpectedly low";
}

TEST(DeliveryPlaneEquivalence, ArenaReuseMatchesFreshTrials) {
    sim::Scenario s;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.n = 28;
    s.t = 9;
    s.inputs = sim::InputPattern::Random;

    const Count trials = 10;
    const sim::Aggregate pooled = sim::run_trials(s, 0xABBA, trials, {1, 0});
    ASSERT_EQ(pooled.rounds.count(), trials);
    for (Count i = 0; i < trials; ++i) {
        // run_trial builds everything from scratch; the pooled arena must
        // reproduce it bit for bit at every index.
        const sim::TrialResult fresh =
            sim::run_trial(s, mix64(0xABBA + 0x100000001b3ULL * i));
        EXPECT_EQ(pooled.rounds.values()[i], static_cast<double>(fresh.rounds)) << i;
        EXPECT_EQ(pooled.messages.values()[i],
                  static_cast<double>(fresh.metrics.honest_messages))
            << i;
        EXPECT_EQ(pooled.corruptions.values()[i],
                  static_cast<double>(fresh.metrics.corruptions))
            << i;
    }
}

TEST(DeliveryPlaneEquivalence, ScenarioReferenceKeyRoundTrips) {
    sim::Scenario s;
    s.n = 16;
    s.t = 5;
    s.reference_delivery = true;
    const sim::Scenario parsed = sim::Scenario::parse(s.describe());
    EXPECT_EQ(parsed, s);
    EXPECT_FALSE(sim::Scenario::parse("n=16 t=5").reference_delivery);
}

// ---------------------------------------------------------------------------
// Tally queries: flat answers vs the per-sender executable spec, under
// randomized buffer contents (dense rows, pattern rows, garbage kinds).

TEST(DeliveryPlaneTally, RandomizedBufferMatchesAdapterSpec) {
    Xoshiro256 rng(2024);
    for (int iter = 0; iter < 50; ++iter) {
        const NodeId n = 6 + static_cast<NodeId>(rng.below(20));
        net::RoundBuffer buf;
        buf.reset(n);
        buf.begin_round();
        for (NodeId v = 0; v < n; ++v) {
            if (rng.bernoulli(0.2)) {  // Byzantine sender
                buf.corrupt(v);
                const double shape = rng.uniform01();
                Message m;
                m.kind = static_cast<MsgKind>(rng.below(8));
                m.phase = static_cast<Phase>(rng.below(3));
                m.val = static_cast<Bit>(rng.below(2));
                m.flag = static_cast<std::uint8_t>(rng.below(2));
                m.coin = static_cast<CoinSign>(static_cast<std::int64_t>(rng.below(5)) - 2);
                m.word = static_cast<net::Word>(rng.below(4));
                if (shape < 0.4) {  // pattern row
                    Message m2 = m;
                    m2.val = static_cast<Bit>(rng.below(2));
                    m2.coin = static_cast<CoinSign>(rng.below(3)) - 1;
                    m2.word = static_cast<net::Word>(rng.below(4));
                    buf.apply_pattern(v, &m, rng.bernoulli(0.7) ? &m2 : nullptr,
                                      static_cast<NodeId>(rng.below(n + 1)));
                } else if (shape < 0.8) {  // dense row
                    for (NodeId to = 0; to < n; ++to) {
                        if (!rng.bernoulli(0.6)) continue;
                        Message cell = m;
                        cell.val = static_cast<Bit>(rng.below(2));
                        cell.phase = static_cast<Phase>(rng.below(3));
                        buf.deliver(v, to, cell);
                    }
                }  // else: silent Byzantine
            } else if (rng.bernoulli(0.8)) {  // honest broadcast
                Message m;
                m.kind = rng.bernoulli(0.5) ? MsgKind::Vote2 : MsgKind::TCEcho;
                // Mixed phases per kind: exercises the multi-bucket merge in
                // the word queries (never produced by lockstep protocols).
                m.phase = static_cast<Phase>(rng.below(2));
                m.val = static_cast<Bit>(rng.below(2));
                m.flag = static_cast<std::uint8_t>(rng.below(2));
                m.coin = static_cast<CoinSign>(static_cast<std::int64_t>(rng.below(3)) - 1);
                m.word = static_cast<net::Word>(rng.below(4));
                buf.set_broadcast(v, m);
            }
        }

        net::RoundTally tally;
        tally.rebuild(buf);
        const net::RoundBufferSource src(buf);
        for (NodeId recv = 0; recv < n; ++recv) {
            const net::ReceiveView flat(buf, tally, recv);
            const net::ReceiveView spec(src, recv);
            for (NodeId u = 0; u < n; ++u) {
                const Message* a = flat.from(u);
                const Message* b = spec.from(u);
                ASSERT_EQ(a == nullptr, b == nullptr);
                if (a) ASSERT_EQ(*a, *b);
            }
            // Bulk iteration must visit exactly the non-silent senders, in
            // order, on both backends.
            std::vector<std::pair<NodeId, Message>> bulk_flat, bulk_spec;
            flat.for_each_delivery(
                [&](NodeId u, const Message& m) { bulk_flat.emplace_back(u, m); });
            spec.for_each_delivery(
                [&](NodeId u, const Message& m) { bulk_spec.emplace_back(u, m); });
            ASSERT_EQ(bulk_flat, bulk_spec);
            for (const MsgKind kind : {MsgKind::Vote1, MsgKind::Vote2, MsgKind::TCEcho}) {
                for (const Phase ph : {Phase{0}, Phase{1}}) {
                    ASSERT_EQ(flat.val_counts(kind, ph, false),
                              spec.val_counts(kind, ph, false));
                    ASSERT_EQ(flat.val_counts(kind, ph, true),
                              spec.val_counts(kind, ph, true));
                    const NodeId first = static_cast<NodeId>(rng.below(n));
                    const NodeId last =
                        first + static_cast<NodeId>(rng.below(n - first + 1));
                    ASSERT_EQ(flat.coin_sum(kind, ph, true, first, last),
                              spec.coin_sum(kind, ph, true, first, last));
                    ASSERT_EQ(flat.coin_sum(kind, ph, false, 0, n),
                              spec.coin_sum(kind, ph, false, 0, n));
                }
                ASSERT_EQ(flat.plurality_word(kind, false),
                          spec.plurality_word(kind, false));
                ASSERT_EQ(flat.plurality_word(kind, true),
                          spec.plurality_word(kind, true));
                // Quorum above n/2: two quorum words would need > n messages,
                // so the uniqueness contract cannot fire on random content.
                const Count q = n / 2 + 2;
                ASSERT_EQ(flat.quorum_word(kind, true, q), spec.quorum_word(kind, true, q));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pattern-row mechanics through the engine.

class InboxNode final : public net::HonestNode {
public:
    InboxNode(NodeId self, Round live) : self_(self), live_(live) {}

    std::optional<Message> round_send(Round r) override {
        Message m;
        m.kind = MsgKind::Vote1;
        m.val = static_cast<Bit>(self_ % 2);
        m.phase = r;
        return m;
    }
    void round_receive(Round r, const net::ReceiveView& view) override {
        inbox_.assign(view.n(), std::nullopt);
        for (NodeId u = 0; u < view.n(); ++u)
            if (const Message* m = view.from(u)) inbox_[u] = *m;
        if (r + 1 >= live_) halted_ = true;
    }
    bool halted() const override { return halted_; }
    Bit current_value() const override { return static_cast<Bit>(self_ % 2); }

    std::vector<std::optional<Message>> inbox_;

private:
    NodeId self_;
    Round live_;
    bool halted_ = false;
};

class ScriptAdversary final : public net::Adversary {
public:
    using Fn = std::function<void(net::RoundControl&)>;
    explicit ScriptAdversary(Fn fn) : fn_(std::move(fn)) {}
    void act(net::RoundControl& ctl) override { fn_(ctl); }

private:
    Fn fn_;
};

std::vector<std::unique_ptr<net::HonestNode>> inbox_nodes(NodeId n, Round live,
                                                          std::vector<InboxNode*>* raw) {
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    for (NodeId v = 0; v < n; ++v) {
        auto p = std::make_unique<InboxNode>(v, live);
        if (raw) raw->push_back(p.get());
        nodes.push_back(std::move(p));
    }
    return nodes;
}

TEST(DeliveryPlanePatterns, SplitAsDeliversThresholdEquivocation) {
    std::vector<InboxNode*> raw;
    ScriptAdversary adv([](net::RoundControl& ctl) {
        if (ctl.round() != 0) return;
        ctl.corrupt(3);
        Message low;
        low.kind = MsgKind::Vote2;
        low.val = 0;
        Message high = low;
        high.val = 1;
        ctl.split_as(3, low, high, 2);
    });
    net::Engine eng({5, 1, 1, false}, inbox_nodes(5, 1, &raw), adv);
    const net::RunResult res = eng.run();
    EXPECT_EQ(res.metrics.byzantine_messages, 5u);
    for (NodeId v = 0; v < 5; ++v) {
        if (v == 3) continue;  // the corrupted node takes no deliveries
        ASSERT_TRUE(raw[v]->inbox_[3].has_value());
        EXPECT_EQ(raw[v]->inbox_[3]->val, v < 2 ? 0 : 1) << "receiver " << v;
    }
}

TEST(DeliveryPlanePatterns, SplitWithSilentSideAndDenseMerge) {
    std::vector<InboxNode*> raw;
    ScriptAdversary adv([](net::RoundControl& ctl) {
        if (ctl.round() != 0) return;
        ctl.corrupt(0);
        Message m;
        m.kind = MsgKind::Vote1;
        m.val = 1;
        // Prefix-only delivery (crash shape): receivers 0..2 get m.
        ctl.split_as(0, m, std::nullopt, 3);
        // Dense overwrite on top of a pattern row must merge, not reset.
        Message late;
        late.kind = MsgKind::Vote2;
        late.val = 0;
        ctl.deliver_as(0, 4, late);
    });
    net::Engine eng({6, 1, 1, false}, inbox_nodes(6, 1, &raw), adv);
    const net::RunResult res = eng.run();
    EXPECT_EQ(res.metrics.byzantine_messages, 4u);  // 3 prefix + 1 late
    EXPECT_TRUE(raw[2]->inbox_[0].has_value());
    EXPECT_FALSE(raw[3]->inbox_[0].has_value());
    ASSERT_TRUE(raw[4]->inbox_[0].has_value());
    EXPECT_EQ(raw[4]->inbox_[0]->kind, MsgKind::Vote2);
}

TEST(DeliveryPlanePatterns, BroadcastAsCountsOnlyFreshSlots) {
    ScriptAdversary adv([](net::RoundControl& ctl) {
        if (ctl.round() != 0) return;
        ctl.corrupt(0);
        Message m;
        m.kind = MsgKind::Vote1;
        ctl.broadcast_as(0, m);
        ctl.broadcast_as(0, m);  // second blanket covers nothing new
    });
    net::Engine eng({4, 1, 1, false}, inbox_nodes(4, 1, nullptr), adv);
    const net::RunResult res = eng.run();
    EXPECT_EQ(res.metrics.byzantine_messages, 4u);
}

// ---------------------------------------------------------------------------
// Metrics: honest fanout excludes receivers that already terminated.

TEST(DeliveryPlaneMetrics, FanoutExcludesHaltedReceivers) {
    // Node v halts after round v+1's deliveries, so round r has (4 - r) live
    // senders and r halted receivers: fanout per sender is 3 - r.
    //   round 0: 4 senders x 3 = 12      round 2: 2 x 1 = 2
    //   round 1: 3 senders x 2 = 6       round 3: 1 x 0 = 0
    net::NullAdversary adv;
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    for (NodeId v = 0; v < 4; ++v) nodes.push_back(std::make_unique<InboxNode>(v, v + 1));
    net::Engine eng({4, 0, 8, false}, std::move(nodes), adv);
    const net::RunResult res = eng.run();
    EXPECT_TRUE(res.all_halted);
    EXPECT_EQ(res.rounds, 4u);
    EXPECT_EQ(res.metrics.honest_messages, 20u);
    // Vote1 at n=4 is 8 + ceil(log2 5) = 11 bits on the wire.
    EXPECT_EQ(res.metrics.honest_bits, 20u * 11u);
}

TEST(DeliveryPlaneMetrics, UniformLifetimesKeepFullFanout) {
    // No one halts before the last delivery beat: accounting must match the
    // classic n*(n-1) per round exactly (regression guard for the halted-
    // receiver fix not over-subtracting).
    net::NullAdversary adv;
    net::Engine eng({5, 0, 3, false}, inbox_nodes(5, 3, nullptr), adv);
    const net::RunResult res = eng.run();
    EXPECT_EQ(res.metrics.honest_messages, 3u * 5u * 4u);
}

// ---------------------------------------------------------------------------
// Engine reuse: reset() + take_nodes() must reproduce a fresh engine's run.

TEST(DeliveryPlaneReuse, ResetDropsTheObserver) {
    net::NullAdversary adv;
    net::Engine eng({3, 0, 2, false}, inbox_nodes(3, 2, nullptr), adv);
    int fired = 0;
    eng.set_round_observer([&](Round, const auto&, const auto&) { ++fired; });
    eng.run();
    EXPECT_EQ(fired, 2);
    // A pooled engine must not replay run-A's observer on run-B's state.
    eng.reset({3, 0, 2, false}, inbox_nodes(3, 2, nullptr), adv);
    eng.run();
    EXPECT_EQ(fired, 2);
}

TEST(DeliveryPlaneReuse, EngineResetReproducesFreshRun) {
    const auto mk = [] {
        sim::Scenario s;
        s.protocol = sim::ProtocolKind::Ours;
        s.adversary = sim::AdversaryKind::Static;
        s.n = 20;
        s.t = 6;
        return s;
    };
    // Two one-shot runs with the same seed agree...
    const sim::TrialResult a = sim::run_trial(mk(), 99);
    const sim::TrialResult b = sim::run_trial(mk(), 99);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.metrics.honest_messages, b.metrics.honest_messages);
    // ...and a pooled sequence seeded identically at index 0 matches too
    // (run_trials routes through Engine::reset + reinit_nodes).
    const sim::Aggregate agg = sim::run_trials(mk(), 99, 3, {1, 0});
    EXPECT_EQ(agg.rounds.values()[0],
              static_cast<double>(sim::run_trial(mk(), mix64(99)).rounds));
}

}  // namespace
}  // namespace adba
