// Algorithm 3 (paper §3.2) end-to-end properties:
//   * Agreement + Validity + termination across a parameterized sweep of
//     (n, t, adversary, input pattern) — the w.h.p. claims of Theorem 2
//     checked as zero failures over fixed seeds;
//   * Lemma 3 invariant (all decided honest nodes share one value, checked
//     every round via the engine observer);
//   * Lemma 4 (a finisher in phase i forces global termination by i+2);
//   * early termination scaling in the actual corruption count q (Theorem 2
//     second clause);
//   * determinism of (scenario, seed).
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <tuple>

#include "adversary/worst_case.hpp"
#include "core/agreement.hpp"
#include "core/skeleton.hpp"
#include "net/engine.hpp"
#include "sim/runner.hpp"

namespace adba::sim {
namespace {

using SweepParam = std::tuple<NodeId, Count, AdversaryKind, InputPattern>;

class AgreementSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AgreementSweep, AgreementValidityTermination) {
    const auto [n, t, adversary, inputs] = GetParam();
    Scenario s;
    s.n = n;
    s.t = t;
    s.protocol = ProtocolKind::Ours;
    s.adversary = adversary;
    s.inputs = inputs;
    const Count trials = 5;
    const Aggregate agg = run_trials(s, /*base_seed=*/0xA93ull + n * 1315423911ull + t,
                                     trials);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.validity_failures, 0u);
    EXPECT_EQ(agg.not_halted, 0u);
}

constexpr Count max_t(NodeId n) { return (n - 1) / 3; }

INSTANTIATE_TEST_SUITE_P(
    GridSmall, AgreementSweep,
    ::testing::Combine(::testing::Values<NodeId>(16, 32),
                       ::testing::Values<Count>(0, 1, 5),
                       ::testing::Values(AdversaryKind::None, AdversaryKind::Static,
                                         AdversaryKind::SplitVote, AdversaryKind::Chaos,
                                         AdversaryKind::CrashRandom,
                                         AdversaryKind::CrashTargetedCoin,
                                         AdversaryKind::WorstCase),
                       ::testing::Values(InputPattern::AllZero, InputPattern::AllOne,
                                         InputPattern::Split, InputPattern::Random)));

INSTANTIATE_TEST_SUITE_P(
    GridMedium, AgreementSweep,
    ::testing::Combine(::testing::Values<NodeId>(64),
                       ::testing::Values<Count>(1, 8, max_t(64)),
                       ::testing::Values(AdversaryKind::SplitVote,
                                         AdversaryKind::CrashTargetedCoin,
                                         AdversaryKind::WorstCase),
                       ::testing::Values(InputPattern::AllOne, InputPattern::Split,
                                         InputPattern::Random)));

INSTANTIATE_TEST_SUITE_P(
    GridLargeWorstCase, AgreementSweep,
    ::testing::Combine(::testing::Values<NodeId>(128),
                       ::testing::Values<Count>(12, max_t(128)),
                       ::testing::Values(AdversaryKind::WorstCase),
                       ::testing::Values(InputPattern::Split)));

// --------------------------------------------------------------- Las Vegas

class LasVegasSweep : public ::testing::TestWithParam<std::tuple<NodeId, Count>> {};

TEST_P(LasVegasSweep, AlwaysAgreesAndTerminates) {
    const auto [n, t] = GetParam();
    Scenario s;
    s.n = n;
    s.t = t;
    s.protocol = ProtocolKind::OursLasVegas;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Split;
    const Aggregate agg = run_trials(s, 0xBEEF, 8);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.not_halted, 0u) << "Las Vegas must self-terminate";
}

INSTANTIATE_TEST_SUITE_P(Grid, LasVegasSweep,
                         ::testing::Combine(::testing::Values<NodeId>(32, 64, 96),
                                            ::testing::Values<Count>(2, 10)));

// ------------------------------------------------------- Lemma-level tests

/// Runs one trial with an observer asserting the global decided-value
/// invariant (Lemma 3 closure): at every round boundary, all decided honest
/// nodes hold the same value.
void run_with_lemma3_observer(NodeId n, Count t, std::uint64_t seed) {
    const SeedTree seeds(seed);
    const auto params = core::AgreementParams::compute(n, t);
    const auto inputs = make_inputs(InputPattern::Split, n, seeds);
    auto nodes = core::make_algorithm3_nodes(params, core::AgreementMode::WhpFixedPhases,
                                             inputs, seeds);
    adv::WorstCaseAdversary adversary({t, t, params.schedule, true});
    net::Engine engine({n, t, core::max_rounds_whp(params), false}, std::move(nodes),
                       adversary);

    engine.set_round_observer([&](Round, const auto& live_nodes, const auto& honest) {
        std::optional<Bit> decided_value;
        for (NodeId v = 0; v < live_nodes.size(); ++v) {
            if (!honest[v]) continue;
            const auto* node =
                dynamic_cast<const core::RabinSkeletonNode*>(live_nodes[v].get());
            ASSERT_NE(node, nullptr);
            if (node->current_decided()) {
                if (!decided_value) {
                    decided_value = node->current_value();
                } else {
                    ASSERT_EQ(*decided_value, node->current_value())
                        << "Lemma 3 violated: two honest decided values";
                }
            }
        }
    });
    engine.run();
}

TEST(Lemma3, DecidedHonestNodesAlwaysShareValue) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        run_with_lemma3_observer(64, 21, 0x33 + seed);
        run_with_lemma3_observer(32, 10, 0x55 + seed);
    }
}

TEST(Lemma4, FinisherForcesTerminationWithinTwoPhases) {
    // Track the earliest finish phase; every honest node must halt by the
    // end of phase i+2 (engine round 2*(i+3)) with the same output.
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
        const NodeId n = 48;
        const Count t = 15;
        const SeedTree seeds(0x77 + seed);
        const auto params = core::AgreementParams::compute(n, t);
        const auto inputs = make_inputs(InputPattern::Random, n, seeds);
        auto nodes = core::make_algorithm3_nodes(
            params, core::AgreementMode::WhpFixedPhases, inputs, seeds);
        std::vector<const core::RabinSkeletonNode*> raw;
        for (const auto& p : nodes)
            raw.push_back(dynamic_cast<const core::RabinSkeletonNode*>(p.get()));
        adv::WorstCaseAdversary adversary({t, t, params.schedule, true});
        net::Engine engine({n, t, core::max_rounds_whp(params), false}, std::move(nodes),
                           adversary);
        const auto res = engine.run();

        std::optional<Phase> first_finish;
        for (NodeId v = 0; v < n; ++v) {
            if (!res.honest[v]) continue;
            if (const auto fp = raw[v]->finish_phase()) {
                if (!first_finish || *fp < *first_finish) first_finish = *fp;
            }
        }
        if (first_finish) {
            EXPECT_TRUE(res.all_halted);
            EXPECT_LE(res.rounds, 2 * (*first_finish + 3));
            EXPECT_TRUE(res.agreement());
            // Every finisher agrees with the global output.
            for (NodeId v = 0; v < n; ++v) {
                if (!res.honest[v]) continue;
                if (raw[v]->finish_phase()) {
                    EXPECT_EQ(res.outputs[v], *res.agreed_value());
                }
            }
        }
    }
}

TEST(Lemma2, UnanimousHonestInputLocksInOnePhaseRegardlessOfAdversary) {
    // All inputs b: every honest node decides b in phase 0 and the protocol
    // finishes within the first three phases — the adversary cannot block
    // the n-t quorum (blocking costs t+1 corruptions).
    for (AdversaryKind adv : {AdversaryKind::WorstCase, AdversaryKind::SplitVote,
                              AdversaryKind::CrashTargetedCoin}) {
        Scenario s;
        s.n = 64;
        s.t = 21;
        s.protocol = ProtocolKind::Ours;
        s.adversary = adv;
        s.inputs = InputPattern::AllOne;
        for (std::uint64_t seed = 0; seed < 5; ++seed) {
            const TrialResult r = run_trial(s, 0x99 + seed);
            EXPECT_TRUE(r.agreement);
            EXPECT_TRUE(r.validity_ok);
            EXPECT_LE(r.rounds, 8u) << "unanimous input must lock immediately";
        }
    }
}

// ------------------------------------------------------- early termination

TEST(EarlyTermination, RoundsScaleWithActualCorruptionsQ) {
    // Theorem 2, second clause: q < t actual corruptions give
    // O(min(q^2 log n / n, q / log n)) rounds — measured as monotone growth
    // in q and quick termination at q=0, with budget t fixed.
    const NodeId n = 128;
    const Count t = 42;
    Samples by_q[4];
    const Count qs[4] = {0, 4, 12, 30};
    for (int qi = 0; qi < 4; ++qi) {
        Scenario s;
        s.n = n;
        s.t = t;
        s.q = qs[qi];
        s.protocol = ProtocolKind::Ours;
        s.adversary = AdversaryKind::WorstCase;
        s.inputs = InputPattern::Split;
        const Aggregate agg = run_trials(s, 0xE1, 12);
        EXPECT_EQ(agg.agreement_failures, 0u) << "q=" << qs[qi];
        by_q[qi] = agg.rounds;
    }
    // q=0: first phase is good -> terminate in 6 rounds flat.
    EXPECT_LE(by_q[0].max(), 6.0);
    // Monotone in expectation (generous noise margin).
    EXPECT_LE(by_q[0].mean(), by_q[2].mean());
    EXPECT_LE(by_q[1].mean(), by_q[3].mean() + 2.0);
    // The adversary cannot stretch the run beyond ~2 phases per corruption.
    EXPECT_LE(by_q[3].max(), 2.0 * (2 * 30 + 8));
}

// ------------------------------------------------------------- determinism

TEST(Determinism, SameSeedSameTrajectory) {
    Scenario s;
    s.n = 64;
    s.t = 20;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Random;
    for (std::uint64_t seed : {1ull, 42ull, 0xDEADull}) {
        const TrialResult a = run_trial(s, seed);
        const TrialResult b = run_trial(s, seed);
        EXPECT_EQ(a.rounds, b.rounds);
        EXPECT_EQ(a.agreement, b.agreement);
        EXPECT_EQ(a.agreed_value, b.agreed_value);
        EXPECT_EQ(a.metrics.honest_messages, b.metrics.honest_messages);
        EXPECT_EQ(a.metrics.honest_bits, b.metrics.honest_bits);
        EXPECT_EQ(a.metrics.corruptions, b.metrics.corruptions);
    }
}

TEST(Determinism, DifferentSeedsDifferentCoinOutcomes) {
    Scenario s;
    s.n = 64;
    s.t = 20;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Split;
    std::set<Round> rounds_seen;
    for (std::uint64_t seed = 0; seed < 12; ++seed)
        rounds_seen.insert(run_trial(s, seed).rounds);
    EXPECT_GE(rounds_seen.size(), 2u) << "trials should not be degenerate";
}

// ----------------------------------------------------- resource accounting

TEST(Accounting, MessageCountBoundedByBroadcasts) {
    Scenario s;
    s.n = 64;
    s.t = 10;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Split;
    const TrialResult r = run_trial(s, 5);
    const std::uint64_t per_round_cap =
        static_cast<std::uint64_t>(s.n) * (s.n - 1);
    EXPECT_LE(r.metrics.honest_messages, per_round_cap * r.rounds);
    EXPECT_GT(r.metrics.honest_messages, 0u);
    EXPECT_GE(r.metrics.honest_bits, r.metrics.honest_messages * 8);
}

TEST(Accounting, CorruptionsNeverExceedQ) {
    Scenario s;
    s.n = 96;
    s.t = 30;
    s.q = 7;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Split;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const TrialResult r = run_trial(s, seed);
        EXPECT_LE(r.metrics.corruptions, 7u);
        EXPECT_TRUE(r.agreement);
    }
}

}  // namespace
}  // namespace adba::sim
