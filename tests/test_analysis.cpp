// Closed-form bound curve tests (the "theory" columns of the experiment
// tables).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "support/contracts.hpp"

namespace adba::an {
namespace {

TEST(Bounds, OursIsMinOfTwoTerms) {
    // n = 2^16, log2 = 16.
    const double n = 65536.0;
    // Small t: t^2 log n / n term wins.
    EXPECT_NEAR(rounds_ours(n, 128.0), 128.0 * 128.0 * 16.0 / n, 1e-9);
    // Large t: t / log n term wins.
    EXPECT_NEAR(rounds_ours(n, 20000.0), 20000.0 / 16.0, 1e-9);
}

TEST(Bounds, OursNeverExceedsChorCoan) {
    for (double n : {256.0, 4096.0, 1e6}) {
        for (double t = 1; t < n / 3; t *= 2) {
            EXPECT_LE(rounds_ours(n, t), rounds_chor_coan(n, t) + 1e-12)
                << "n=" << n << " t=" << t;
        }
    }
}

TEST(Bounds, StrictImprovementBelowCrossover) {
    const double n = 1 << 20;
    const double cross = crossover_t(n);
    EXPECT_NEAR(cross, n / 400.0, 1e-6);  // log2^2 = 400
    const double t = cross / 4.0;
    EXPECT_LT(rounds_ours(n, t), 0.5 * rounds_chor_coan(n, t));
}

TEST(Bounds, MatchesChorCoanAboveCrossover) {
    const double n = 1 << 20;
    const double t = 2.0 * crossover_t(n);
    EXPECT_DOUBLE_EQ(rounds_ours(n, t), rounds_chor_coan(n, t));
}

TEST(Bounds, PaperHeadlineExampleIsAsymptotic) {
    // Paper §1.2's example: at t = n^0.75 ours is Õ(n^0.5) vs Chor-Coan
    // Õ(n^0.75). WITH the hidden log factors spelled out, the separation
    // n^0.5·log n < n^0.75/log n requires log^2 n < n^0.25, i.e. n ≳ 2^56 —
    // at any simulable n the min() saturates at the Chor-Coan term. The
    // log-FREE polynomial parts separate at every n; both facts are
    // documented in EXPERIMENTS.md E4.
    const double n = 1 << 20;
    const double t = std::pow(n, 0.75);
    // min() saturates: ours == Chor-Coan at this (n, t).
    EXPECT_DOUBLE_EQ(rounds_ours(n, t), rounds_chor_coan(n, t));
    // Log-free polynomial parts: t^2/n = n^0.5 << t = n^0.75.
    EXPECT_LT(t * t / n, t / 8.0);
    // And at truly asymptotic n the log-laden separation appears:
    const double big_n = std::pow(2.0, 60);
    const double big_t = std::pow(big_n, 0.75);
    EXPECT_LT(big_t * big_t / big_n * 60.0, big_t / 60.0);
}

TEST(Bounds, ApproachesLowerBoundAtSqrtN) {
    // At t = sqrt(n): ours = log n rounds, lower bound = 1/sqrt(log n) —
    // a polylog gap only (paper: near-optimal up to log factors).
    const double n = 1 << 20;
    const double t = std::sqrt(n);
    const double ratio = rounds_ours(n, t) / rounds_lower_bound(n, t);
    EXPECT_LT(ratio, 20.0 * 20.0 * std::sqrt(20.0) + 1.0);  // polylog(n)
    EXPECT_GE(ratio, 1.0);
}

TEST(Bounds, LowerBoundBelowEverything) {
    // The constant-free curves only order correctly for t >= sqrt(n) —
    // below that both bounds are o(1) "rounds" and the comparison is
    // meaningless (the protocol's real floor is the gamma·log n phase
    // budget). Theorem 1's regime of interest is t >= sqrt(n).
    for (double n : {1024.0, 1e6}) {
        for (double t = std::sqrt(n); t < n / 3; t *= 2) {
            EXPECT_LE(rounds_lower_bound(n, t), rounds_ours(n, t) + 1e-9)
                << "n=" << n << " t=" << t;
            EXPECT_LE(rounds_lower_bound(n, t), rounds_deterministic(t));
        }
    }
}

TEST(Bounds, DeterministicIsLinear) {
    EXPECT_DOUBLE_EQ(rounds_deterministic(0.0), 1.0);
    EXPECT_DOUBLE_EQ(rounds_deterministic(100.0), 101.0);
}

TEST(Bounds, MonotoneInT) {
    const double n = 4096.0;
    double prev = 0.0;
    for (double t = 0; t < n / 3; t += 50) {
        const double r = rounds_ours(n, t);
        EXPECT_GE(r, prev);
        prev = r;
    }
}

TEST(Bounds, ContractsOnDomain) {
    EXPECT_THROW(rounds_ours(0.5, 1.0), ContractViolation);
    EXPECT_THROW(rounds_ours(10.0, -1.0), ContractViolation);
    EXPECT_THROW(crossover_t(0.0), ContractViolation);
    EXPECT_THROW(paley_zygmund(1.5, 1.0, 1.0), ContractViolation);
    EXPECT_THROW(paley_zygmund(0.5, 1.0, 0.0), ContractViolation);
}

TEST(Bounds, CoinCommonLowerBoundMonotoneInF) {
    // More corruptions -> weaker guarantee.
    const double n = 1024.0;
    double prev = 1.0;
    for (double f = 0; f <= 16.0; f += 2.0) {
        const double p = coin_common_prob_lower(n, f);
        EXPECT_LE(p, prev + 1e-12) << f;
        prev = p;
    }
}

}  // namespace
}  // namespace adba::an
