// Intra-trial sharding + packed-tally tests: the sharded beat execution
// (scenario `shard=`, EngineConfig::intra) and the word-packed popcount
// tally (scenario `simd=`, EngineConfig::simd_tally) must be BIT-IDENTICAL
// to the serial scalar byte-plane oracle — for every compatible registry
// pair, at any logical shard count, at sizes that straddle 64-bit word
// boundaries, with halted and corrupted nodes landing on the straddle.
// Plus the nested-parallelism policy (plan_intra_shards / intra_worker_cap)
// and the ShardPool dispatch contract (tiling, reuse, exception propagation,
// quiescence).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/round_buffer.hpp"
#include "net/tally_kernels.hpp"
#include "rand/rng.hpp"
#include "sim/executor.hpp"
#include "sim/multivalued_runner.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "support/contracts.hpp"

namespace adba {
namespace {

void expect_samples_eq(const Samples& a, const Samples& b, const char* what) {
    ASSERT_EQ(a.count(), b.count()) << what;
    const auto& xs = a.values();
    const auto& ys = b.values();
    for (std::size_t i = 0; i < xs.size(); ++i)
        ASSERT_EQ(xs[i], ys[i]) << what << " sample " << i;
}

void expect_aggregate_eq(const sim::Aggregate& a, const sim::Aggregate& b) {
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.agreement_failures, b.agreement_failures);
    EXPECT_EQ(a.validity_failures, b.validity_failures);
    EXPECT_EQ(a.not_halted, b.not_halted);
    expect_samples_eq(a.rounds, b.rounds, "rounds");
    expect_samples_eq(a.messages, b.messages, "messages");
    expect_samples_eq(a.bits, b.bits, "bits");
    expect_samples_eq(a.corruptions, b.corruptions, "corruptions");
}

/// Largest t the protocol's resilience predicate admits at n (0 if none).
Count max_t(const sim::ProtocolEntry& p, NodeId n) {
    Count t = (n - 1) / 3;
    while (t > 0 && !p.supports(n, t)) --t;
    return t;
}

/// Test-local IntraDispatcher: runs the logical shards serially on the
/// calling thread. Exercises the shard-range/merge contract at any shard
/// count without threads — determinism depends on shard boundaries, never
/// on who executes them.
class SerialShards final : public net::IntraDispatcher {
public:
    explicit SerialShards(unsigned shards) : shards_(shards) {}
    unsigned shards() const override { return shards_; }
    void run_shards(NodeId n,
                    const std::function<void(unsigned, NodeId, NodeId)>& fn) override {
        for (unsigned s = 0; s < shards_; ++s) {
            const auto [lo, hi] = net::kern::shard_node_range(n, s, shards_);
            fn(s, lo, hi);
        }
    }

private:
    unsigned shards_;
};

// ---------------------------------------------------------------------------
// Every compatible registry pair: sharded + packed trials must reproduce the
// serial scalar oracle bit for bit, at logical shard counts 1, 2, and 8.

TEST(IntraShardEquivalence, AllRegistryPairsShardedMatchesScalarSerial) {
    const NodeId n = 33;  // straddles nothing; sizes are swept separately
    Count covered = 0;
    for (const sim::ProtocolEntry* p : sim::ProtocolRegistry::instance().list()) {
        if (p->make_batch == nullptr) continue;  // adapter-only protocol
        for (const sim::AdversaryEntry* a : sim::AdversaryRegistry::instance().list()) {
            sim::Scenario s;
            s.protocol = p->kind;
            s.adversary = a->kind;
            s.n = n;
            s.t = max_t(*p, n);
            s.inputs = sim::InputPattern::Split;
            s.local_coin_phases = 12;  // keep the private-coin runs bounded
            if (!sim::compatible(s)) continue;
            ++covered;
            SCOPED_TRACE(p->name + " vs " + a->name);

            const sim::ExecutorConfig serial{1, 0};
            sim::Scenario oracle = s;  // full scalar path, nothing sharded
            oracle.use_shard = false;
            oracle.use_simd = false;
            const sim::Aggregate ref = sim::run_trials(oracle, 0x54A8D, 4, serial);

            // Packed tally alone (no beat sharding).
            sim::Scenario simd_only = s;
            simd_only.use_shard = false;
            expect_aggregate_eq(sim::run_trials(simd_only, 0x54A8D, 4, serial), ref);

            // Sharded beats + packed tally at 1, 2, and 8 logical shards.
            for (const Count intra : {Count{1}, Count{2}, Count{8}}) {
                SCOPED_TRACE("intra_threads=" + std::to_string(intra));
                sim::Scenario sharded = s;
                sharded.intra_threads = intra;
                expect_aggregate_eq(sim::run_trials(sharded, 0x54A8D, 4, serial), ref);
            }
        }
    }
    // 8 native-batch protocols x 9 adversaries minus constraints.
    EXPECT_GE(covered, 45u) << "shard registry coverage unexpectedly low";
}

// ---------------------------------------------------------------------------
// Size sweep across word-count regimes: n below one word, straddling one,
// multi-word, and the bench's huge-n cell.

TEST(IntraShardEquivalence, SizeSweepShardedMatchesScalarSerial) {
    const sim::ProtocolKind protocols[] = {sim::ProtocolKind::Ours,
                                           sim::ProtocolKind::BenOr,
                                           sim::ProtocolKind::PhaseKing};
    const NodeId sizes[] = {4, 33, 256, 1024};
    const sim::ExecutorConfig serial{1, 0};
    for (const sim::ProtocolKind pk : protocols) {
        const sim::ProtocolEntry& p = sim::ProtocolRegistry::instance().at(pk);
        for (const NodeId n : sizes) {
            sim::Scenario s;
            s.protocol = pk;
            s.adversary = sim::AdversaryKind::WorstCase;
            s.n = n;
            s.t = max_t(p, n);
            s.inputs = sim::InputPattern::Split;
            if (!sim::compatible(s)) continue;
            SCOPED_TRACE(p.name + " n=" + std::to_string(n));

            sim::Scenario oracle = s;
            oracle.use_shard = false;
            oracle.use_simd = false;
            sim::Scenario sharded = s;
            sharded.intra_threads = 8;

            const Count trials = n >= 1024 ? 2 : 4;
            expect_aggregate_eq(sim::run_trials(sharded, 0x512E5, trials, serial),
                                sim::run_trials(oracle, 0x512E5, trials, serial));
        }
    }
}

// ---------------------------------------------------------------------------
// The multi-valued stack's packed word histograms against its scalar build.

TEST(IntraShardEquivalence, MvPackedWordTalliesMatchScalar) {
    sim::MvScenario s;
    s.n = 33;
    s.t = 8;
    s.inputs = sim::MvInputPattern::NearQuorum;
    s.adversary = sim::MvAdversaryKind::PreludePlusWorstCase;
    sim::MvScenario scalar = s;
    scalar.use_simd = false;

    const sim::ExecutorConfig serial{1, 0};
    const sim::MvAggregate fast = sim::run_mv_trials(s, 0x3C0DE, 5, serial);
    const sim::MvAggregate ref = sim::run_mv_trials(scalar, 0x3C0DE, 5, serial);
    EXPECT_EQ(fast.trials, ref.trials);
    EXPECT_EQ(fast.agreement_failures, ref.agreement_failures);
    EXPECT_EQ(fast.validity_failures, ref.validity_failures);
    EXPECT_EQ(fast.not_halted, ref.not_halted);
    EXPECT_EQ(fast.decided_real, ref.decided_real);
    expect_samples_eq(fast.rounds, ref.rounds, "mv rounds");
}

// ---------------------------------------------------------------------------
// Word-boundary fuzz for the bit-packed planes: randomized rounds at sizes
// that are not multiples of 64, with halted and corrupted nodes biased onto
// the word straddle; the packed RoundTally (at several logical shard counts,
// including more shards than words) must answer every query with the same
// integers as the scalar byte-plane build.

net::Message random_msg(Xoshiro256& rng) {
    static constexpr net::MsgKind kKinds[] = {
        net::MsgKind::Vote1, net::MsgKind::Vote2, net::MsgKind::Coin,
        net::MsgKind::BenOrReport, net::MsgKind::TCValue};
    net::Message m;
    m.kind = kKinds[rng.below(5)];
    m.val = static_cast<Bit>(rng.below(2));
    m.flag = static_cast<std::uint8_t>(rng.below(2));
    m.coin = static_cast<CoinSign>(static_cast<int>(rng.below(3)) - 1);
    m.phase = static_cast<Phase>(rng.below(3));
    m.word = static_cast<net::Word>(rng.below(5));
    return m;
}

void expect_tallies_eq(const net::RoundBuffer& buf, const net::RoundTally& scalar,
                       const net::RoundTally& packed, Xoshiro256& rng) {
    const NodeId n = buf.n();
    ASSERT_EQ(scalar.bucket_count(), packed.bucket_count());
    for (std::size_t i = 0; i < scalar.bucket_count(); ++i) {
        const net::TallyBucket& sb = scalar.bucket(i);
        const net::TallyBucket& pb = packed.bucket(i);
        // Same buckets in the same discovery order: the sharded pack merge
        // must preserve ascending-first-sender bucket order.
        ASSERT_EQ(static_cast<int>(sb.kind), static_cast<int>(pb.kind)) << i;
        ASSERT_EQ(sb.phase, pb.phase) << i;
        EXPECT_EQ(sb.total, pb.total);
        EXPECT_EQ(sb.val_cnt, pb.val_cnt);
        EXPECT_EQ(sb.val_flag_cnt, pb.val_flag_cnt);

        // Coin sums over ranges whose endpoints land mid-word.
        EXPECT_EQ(scalar.coin_range_sum(sb, 0, n), packed.coin_range_sum(pb, 0, n));
        for (int probe = 0; probe < 8; ++probe) {
            const auto first = static_cast<NodeId>(rng.below(n + 1));
            const auto last =
                static_cast<NodeId>(first + rng.below(n + 1 - first));
            EXPECT_EQ(scalar.coin_range_sum(sb, first, last),
                      packed.coin_range_sum(pb, first, last))
                << "coin range [" << first << ", " << last << ")";
        }

        // Word histograms (the mv quorum/plurality backing store).
        EXPECT_EQ(scalar.word_counts(sb, false), packed.word_counts(pb, false));
        EXPECT_EQ(scalar.word_counts(sb, true), packed.word_counts(pb, true));
    }

    // Receiver-visible queries (shared Byzantine deltas + honest planes).
    const NodeId receivers[] = {0, static_cast<NodeId>(n / 2),
                                static_cast<NodeId>(n - 1)};
    for (const NodeId r : receivers) {
        const net::ReceiveView vs(buf, scalar, r);
        const net::ReceiveView vp(buf, packed, r);
        for (std::size_t i = 0; i < scalar.bucket_count(); ++i) {
            const net::TallyBucket& b = scalar.bucket(i);
            EXPECT_EQ(vs.val_counts(b.kind, b.phase, false),
                      vp.val_counts(b.kind, b.phase, false));
            EXPECT_EQ(vs.val_counts(b.kind, b.phase, true),
                      vp.val_counts(b.kind, b.phase, true));
            EXPECT_EQ(vs.coin_sum(b.kind, b.phase, true, 0, n),
                      vp.coin_sum(b.kind, b.phase, true, 0, n));
            EXPECT_EQ(vs.plurality_word(b.kind, false),
                      vp.plurality_word(b.kind, false));
        }
        // A signature no broadcast used this round.
        EXPECT_EQ(vs.val_counts(net::MsgKind::PhaseKingRuler, 7, false),
                  vp.val_counts(net::MsgKind::PhaseKingRuler, 7, false));
    }
}

TEST(PackedTallyFuzz, WordBoundaryRoundsMatchScalarBitIdentically) {
    const NodeId sizes[] = {63, 64, 65, 127, 129, 191, 257};
    Xoshiro256 rng(0x5EED5);
    net::RoundBuffer buf;
    net::RoundTally scalar;
    net::RoundTally packed;
    for (const NodeId n : sizes) {
        for (int rep = 0; rep < 5; ++rep) {
            SCOPED_TRACE("n=" + std::to_string(n) + " rep=" + std::to_string(rep));
            buf.reset(n);
            buf.begin_round();

            // Honest sends, with silence (halted nodes) biased onto the
            // positions adjacent to every 64-bit word boundary.
            for (NodeId v = 0; v < n; ++v) {
                const NodeId in_word = v % net::kern::kWordBits;
                const double silent_p =
                    (in_word >= net::kern::kWordBits - 2 || in_word <= 1) ? 0.5
                                                                          : 0.15;
                if (!rng.bernoulli(silent_p)) buf.set_broadcast(v, random_msg(rng));
            }

            // Corruptions: always hit the word straddle, plus random picks.
            std::vector<NodeId> byz = {static_cast<NodeId>(net::kern::kWordBits - 1),
                                       static_cast<NodeId>(net::kern::kWordBits),
                                       static_cast<NodeId>(n - 1)};
            for (int k = 0; k < 4; ++k)
                byz.push_back(static_cast<NodeId>(rng.below(n)));
            for (const NodeId v : byz) {
                if (v >= n || !buf.is_honest(v)) continue;
                buf.corrupt(v);
                if (rng.bernoulli(0.5)) {
                    const net::Message low = random_msg(rng);
                    const net::Message high = random_msg(rng);
                    buf.apply_pattern(v, rng.bernoulli(0.8) ? &low : nullptr,
                                      rng.bernoulli(0.8) ? &high : nullptr,
                                      static_cast<NodeId>(rng.below(n + 1)));
                } else {
                    for (std::uint64_t k = rng.below(4); k-- > 0;)
                        buf.deliver(v, static_cast<NodeId>(rng.below(n)),
                                    random_msg(rng));
                }
            }

            scalar.rebuild(buf);
            // Shard counts beyond the word count force empty tail ranges.
            for (const unsigned shards : {1u, 2u, 3u, 5u}) {
                SCOPED_TRACE("shards=" + std::to_string(shards));
                SerialShards intra(shards);
                packed.rebuild(buf, true, &intra);
                EXPECT_TRUE(packed.packed());
                expect_tallies_eq(buf, scalar, packed, rng);
            }
            // Null dispatcher: packed build over one full-range "shard".
            packed.rebuild(buf, true, nullptr);
            expect_tallies_eq(buf, scalar, packed, rng);
        }
    }
}

// ---------------------------------------------------------------------------
// Shard-range geometry: word-aligned interior boundaries tiling [0, n).

TEST(ShardPolicy, ShardNodeRangeTilesWordAligned) {
    for (const NodeId n : {NodeId{1}, NodeId{63}, NodeId{64}, NodeId{65},
                           NodeId{1000}, NodeId{4096}}) {
        for (const unsigned shards : {1u, 2u, 3u, 7u, 8u}) {
            SCOPED_TRACE("n=" + std::to_string(n) +
                         " shards=" + std::to_string(shards));
            NodeId expect_lo = 0;
            for (unsigned s = 0; s < shards; ++s) {
                const auto [lo, hi] = net::kern::shard_node_range(n, s, shards);
                EXPECT_EQ(lo, expect_lo) << "shard " << s << " not contiguous";
                EXPECT_LE(lo, hi);
                EXPECT_LE(hi, n);
                if (s + 1 < shards && hi < n)
                    EXPECT_EQ(hi % net::kern::kWordBits, 0u)
                        << "interior boundary off word alignment";
                expect_lo = hi;
            }
            EXPECT_EQ(expect_lo, n) << "shards do not cover [0, n)";
        }
    }
}

TEST(ShardPolicy, PlanIntraShardsPrecedence) {
    const unsigned saved = sim::default_intra_threads();
    // Explicit scenario request wins verbatim.
    EXPECT_EQ(sim::plan_intra_shards(5, 10), 5u);
    EXPECT_EQ(sim::plan_intra_shards(1, 1 << 20), 1u);
    // A non-zero process default wins over auto.
    sim::set_default_intra_threads(3);
    EXPECT_EQ(sim::plan_intra_shards(0, 10), 3u);
    EXPECT_EQ(sim::plan_intra_shards(7, 10), 7u);
    // Auto: never shards small n; bounded by 8 when it does fire.
    sim::set_default_intra_threads(0);
    EXPECT_EQ(sim::plan_intra_shards(0, 100), 1u);
    const unsigned huge = sim::plan_intra_shards(0, 1 << 20);
    EXPECT_GE(huge, 1u);
    EXPECT_LE(huge, 8u);
    sim::set_default_intra_threads(saved);
}

TEST(ShardPolicy, AbsurdRequestsAreClamped) {
    // A scenario can request any Count; the resolved logical shard count
    // must stay bounded by max(word_count(n), 8 * hardware) so the pool's
    // per-beat claim loop never iterates billions of empty ranges.
    const Count absurd = std::numeric_limits<Count>::max();
    const unsigned cap = std::max<unsigned>(
        static_cast<unsigned>(net::kern::word_count(10)),
        8u * sim::hardware_threads());
    EXPECT_EQ(sim::plan_intra_shards(absurd, 10), cap);
    // The same ceiling applies to a process-wide default.
    const unsigned saved = sim::default_intra_threads();
    sim::set_default_intra_threads(1u << 30);
    EXPECT_LE(sim::plan_intra_shards(0, 10), cap);
    sim::set_default_intra_threads(saved);
}

TEST(ShardPolicy, IntraWorkerCapNeverOversubscribes) {
    const unsigned hw = sim::hardware_threads();
    EXPECT_EQ(sim::intra_worker_cap(1), hw);
    EXPECT_EQ(sim::intra_worker_cap(hw), 1u);
    EXPECT_EQ(sim::intra_worker_cap(2 * hw), 1u);
    EXPECT_EQ(sim::intra_worker_cap(1000 * hw), 1u);
    // pool_width x intra cap never exceeds the machine (beyond the one
    // worker per trial thread the pool already runs): the executor's
    // no-oversubscription invariant.
    for (unsigned pool = 1; pool <= 2 * hw; ++pool)
        EXPECT_LE(pool * sim::intra_worker_cap(pool), std::max(pool, hw));
}

// ---------------------------------------------------------------------------
// ShardPool dispatch contract.

TEST(ShardPoolDispatch, RangesTileAndReuseAcrossDispatches) {
    sim::ShardPool pool(4, 1);
    EXPECT_EQ(pool.shards(), 4u);
    EXPECT_GE(pool.workers(), 1u);
    for (const NodeId n : {NodeId{130}, NodeId{64}, NodeId{1}}) {
        for (int dispatch = 0; dispatch < 3; ++dispatch) {
            std::vector<std::pair<NodeId, NodeId>> got(4, {0, 0});
            std::vector<int> hits(4, 0);
            pool.run_shards(n, [&](unsigned s, NodeId lo, NodeId hi) {
                got[s] = {lo, hi};  // disjoint slots: no synchronization needed
                ++hits[s];
            });
            NodeId expect_lo = 0;
            for (unsigned s = 0; s < 4; ++s) {
                EXPECT_EQ(hits[s], 1) << "shard " << s << " ran " << hits[s]
                                      << " times";
                EXPECT_EQ(got[s].first, expect_lo);
                expect_lo = got[s].second;
            }
            EXPECT_EQ(expect_lo, n);
        }
    }
}

TEST(ShardPoolDispatch, ExceptionPropagatesAndPoolStaysUsable) {
    sim::ShardPool pool(3, 1);
    EXPECT_THROW(pool.run_shards(100,
                                 [&](unsigned s, NodeId, NodeId) {
                                     if (s == 1) throw std::runtime_error("boom");
                                 }),
                 std::runtime_error);
    // Quiescence barrier: the failed dispatch left no stale worker behind,
    // so the next dispatch runs clean.
    std::vector<int> hits(3, 0);
    pool.run_shards(100, [&](unsigned s, NodeId, NodeId) { ++hits[s]; });
    for (unsigned s = 0; s < 3; ++s) EXPECT_EQ(hits[s], 1);
}

TEST(ShardPoolDispatch, RapidDispatchesNeverWakeStaleWorkers) {
    // Regression: with trivial per-shard work the calling thread routinely
    // drains an entire generation before a notified worker acquires the
    // mutex. Such a stale worker must park until the next generation is
    // armed — not bind a disarmed (null) job or consume a shard of a
    // generation it never saw. Hammer back-to-back dispatches and check
    // every shard of every generation ran exactly once.
    sim::ShardPool pool(4, 1);
    for (int gen = 0; gen < 2000; ++gen) {
        std::atomic<int> ran{0};
        std::atomic<int> bad{0};
        pool.run_shards(1, [&](unsigned s, NodeId, NodeId) {
            if (s >= 4) bad.fetch_add(1, std::memory_order_relaxed);
            ran.fetch_add(1, std::memory_order_relaxed);
        });
        ASSERT_EQ(ran.load(), 4) << "generation " << gen;
        ASSERT_EQ(bad.load(), 0) << "generation " << gen;
    }
}

// ---------------------------------------------------------------------------
// Scenario plumbing for the new keys.

TEST(ShardScenarioKeys, BinaryKeysRoundTrip) {
    sim::Scenario s;
    s.n = 16;
    s.t = 5;
    s.use_shard = false;
    s.use_simd = false;
    s.intra_threads = 3;
    EXPECT_EQ(sim::Scenario::parse(s.describe()), s);

    EXPECT_TRUE(sim::Scenario::parse("n=16 t=5").use_shard);
    EXPECT_TRUE(sim::Scenario::parse("n=16 t=5").use_simd);
    EXPECT_EQ(sim::Scenario::parse("n=16 t=5").intra_threads, 0u);
    EXPECT_FALSE(sim::Scenario::parse("n=16 t=5 shard=off").use_shard);
    EXPECT_FALSE(sim::Scenario::parse("n=16 t=5 simd=off").use_simd);
    EXPECT_TRUE(sim::Scenario::parse("n=16 t=5 shard=on simd=on").use_simd);
    EXPECT_EQ(sim::Scenario::parse("n=16 t=5 intra_threads=4").intra_threads, 4u);
}

TEST(ShardScenarioKeys, MvSimdKeyRoundTrips) {
    sim::MvScenario s;
    s.n = 16;
    s.t = 5;
    s.use_simd = false;
    EXPECT_EQ(sim::MvScenario::parse(s.describe()), s);
    EXPECT_TRUE(sim::MvScenario::parse("n=16 t=5").use_simd);
    EXPECT_FALSE(sim::MvScenario::parse("n=16 t=5 simd=off").use_simd);
}

}  // namespace
}  // namespace adba
