// Common-coin tests (paper §3.1): Theorem 3 and Corollary 1 as measurable
// properties, plus the rushing coin-ruin adversary's mechanics.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "rand/rng.hpp"
#include "sim/coin_runner.hpp"
#include "support/math.hpp"

namespace adba::sim {
namespace {

CoinScenario alg1(NodeId n, Count f, adv::CoinAttack attack = adv::CoinAttack::Split,
                  Bit forced = 0) {
    return CoinScenario{n, n, f, attack, forced};
}

TEST(CommonCoin, NoAdversaryAlwaysCommon) {
    for (NodeId n : {4u, 5u, 64u, 129u}) {
        const auto agg = run_coin_trials(alg1(n, 0), /*base_seed=*/1, /*trials=*/200);
        EXPECT_EQ(agg.common, agg.trials) << "n=" << n;
    }
}

TEST(CommonCoin, NoAdversaryValueIsFair) {
    const auto agg = run_coin_trials(alg1(101, 0), 2, 4000);
    // Odd n: no ties, so P(1) should be ~1/2. 4000 trials, sd ~ 0.0079.
    EXPECT_NEAR(agg.p_one_given_common(), 0.5, 0.05);
}

TEST(CommonCoin, TieBreaksToOne) {
    // n=2: sum is -2, 0, or +2; sum 0 (prob 1/2) -> both output 1 by the
    // >= 0 rule; sum ±2 -> unanimous anyway. Always common.
    const auto agg = run_coin_trials(alg1(2, 0), 3, 500);
    EXPECT_EQ(agg.common, agg.trials);
    // P(value=1) = P(sum>=0) = 3/4 for two fair ±1 flips.
    EXPECT_NEAR(agg.p_one_given_common(), 0.75, 0.06);
}

TEST(CommonCoin, Theorem3CommonnessUnderHalfSqrtN) {
    // f = ½ sqrt(n) adaptive rushing corruptions: P(common) must stay above
    // a constant (Definition 2(A)). The paper's proof-level constant is 1/6
    // (1/12 per tail); the measured value against the OPTIMAL greedy rushing
    // adversary converges to 2·Φ̄(1) ≈ 0.317, since each corruption both
    // removes a majority flip and adds an equivocator (margin 2 per
    // corruption), so commonness needs |S| >= 2f ≈ sqrt(n) ≈ one stddev.
    // See EXPERIMENTS.md E1 for the adaptivity discussion.
    for (NodeId n : {64u, 256u, 1024u}) {
        const auto f = static_cast<Count>(isqrt(n) / 2);
        const auto agg = run_coin_trials(alg1(n, f), 5, 1000);
        EXPECT_GE(agg.p_common(), 1.0 / 6.0) << "n=" << n << " f=" << f;
        EXPECT_NEAR(agg.p_common(), 0.317, 0.08) << "n=" << n << " f=" << f;
    }
}

TEST(CommonCoin, PaleyZygmundTailBoundHolds) {
    // Validates the anti-concentration math itself (Theorem 3's engine) on
    // the exact event it bounds: |sum of g fair ±1 flips| > ½ sqrt(n),
    // with g = n - f honest flippers.
    for (NodeId n : {64u, 256u, 1024u}) {
        const auto f = static_cast<Count>(isqrt(n) / 2);
        const NodeId g = n - f;
        const double threshold = 0.5 * std::sqrt(static_cast<double>(n));
        Xoshiro256 rng(n * 977u + 5);
        int hits = 0;
        const int trials = 4000;
        for (int i = 0; i < trials; ++i) {
            std::int64_t s = 0;
            for (NodeId j = 0; j < g; ++j) s += rng.sign();
            if (std::abs(static_cast<double>(s)) > threshold) ++hits;
        }
        const double measured = static_cast<double>(hits) / trials;
        EXPECT_GE(measured, an::coin_common_prob_lower(static_cast<double>(n), f))
            << "n=" << n;
    }
}

TEST(CommonCoin, ConditionalValueBoundedAwayFromZeroOne) {
    // Definition 2(B): epsilon <= P(b=0 | Comm) <= 1-epsilon even under the
    // biasing (ForceBit) attack with f = ½ sqrt(n).
    const NodeId n = 256;
    const Count f = 8;
    for (Bit target : {Bit{0}, Bit{1}}) {
        const auto agg =
            run_coin_trials(alg1(n, f, adv::CoinAttack::ForceBit, target), 7, 1500);
        const double p1 = agg.p_one_given_common();
        EXPECT_GE(p1, 0.05) << "target=" << int(target);
        EXPECT_LE(p1, 0.95) << "target=" << int(target);
    }
}

TEST(CommonCoin, LargeBudgetBreaksCommonness) {
    // With f >> sqrt(n) the rushing split attack almost always succeeds —
    // the theorem's precondition is tight in spirit.
    const NodeId n = 256;
    const auto agg = run_coin_trials(alg1(n, 64), 9, 500);  // f = 4*sqrt(n)
    EXPECT_LE(agg.p_common(), 0.05);
}

TEST(CommonCoin, SuccessDegradesMonotonicallyInBudget) {
    const NodeId n = 400;
    double prev = 1.1;
    for (Count f : {0u, 5u, 10u, 20u, 40u, 80u}) {
        const auto agg = run_coin_trials(alg1(n, f), 11, 600);
        EXPECT_LE(agg.p_common(), prev + 0.06) << "f=" << f;  // noise slack
        prev = agg.p_common();
    }
}

TEST(CommonCoin, AttackFeasibilityPredictsRuin) {
    // When the adversary's own feasibility math says "ruined", the trial
    // must indeed be non-common (the executed attack matches the plan).
    const NodeId n = 196;
    Count feasible_and_common = 0;
    for (std::uint64_t s = 0; s < 400; ++s) {
        const auto t = run_coin_trial(alg1(n, 7), 1000 + s);
        if (t.attack_feasible && t.common) ++feasible_and_common;
    }
    EXPECT_EQ(feasible_and_common, 0u);
}

// ------------------------------------------------------ designated variant

TEST(DesignatedCoin, NonDesignatedNodesStaySilentButAgree) {
    // k designated of n: everyone (including non-flippers) outputs the
    // common value.
    const CoinScenario s{100, 16, 0, adv::CoinAttack::Split, 0};
    const auto agg = run_coin_trials(s, 13, 300);
    EXPECT_EQ(agg.common, agg.trials);
}

TEST(DesignatedCoin, Corollary1HalfSqrtK) {
    // At most ½ sqrt(k) Byzantine among k designated -> common coin.
    const NodeId n = 512;
    for (NodeId k : {16u, 64u, 256u}) {
        const auto f = static_cast<Count>(isqrt(k) / 2);
        const CoinScenario s{n, k, f, adv::CoinAttack::Split, 0};
        const auto agg = run_coin_trials(s, 17, 1500);
        EXPECT_GE(agg.p_common(), 1.0 / 6.0) << "k=" << k;
    }
}

TEST(DesignatedCoin, RuinBudgetScalesWithSqrtKNotSqrtN) {
    // Corrupting ~2 sqrt(k) designated nodes ruins the coin even when n is
    // huge — the committee, not the network, is the defense perimeter.
    const NodeId n = 1024, k = 64;
    const CoinScenario s{n, k, 16, adv::CoinAttack::Split, 0};
    const auto agg = run_coin_trials(s, 19, 400);
    EXPECT_LE(agg.p_common(), 0.1);
}

TEST(DesignatedCoin, SingleDesignatedNodeIsADictatorCoin) {
    // k=1: the lone flipper's value is the coin; still "common" with f=0.
    const CoinScenario s{16, 1, 0, adv::CoinAttack::Split, 0};
    const auto agg = run_coin_trials(s, 23, 300);
    EXPECT_EQ(agg.common, agg.trials);
    EXPECT_NEAR(agg.p_one_given_common(), 0.5, 0.1);
}

// --------------------------------------------------------- theory formulas

TEST(CoinTheory, PaleyZygmundBoundSane) {
    // theta=0 gives E[X]^2/E[X^2]; theta=1 gives 0.
    EXPECT_NEAR(an::paley_zygmund(0.0, 2.0, 8.0), 0.5, 1e-12);
    EXPECT_NEAR(an::paley_zygmund(1.0, 2.0, 8.0), 0.0, 1e-12);
}

TEST(CoinTheory, CommonProbLowerBoundMatchesPaper) {
    // Paper: for g >= n/2, per-tail bound >= 1/12, so total >= 1/6.
    for (double n : {64.0, 1024.0, 65536.0}) {
        const double f = 0.5 * std::sqrt(n);
        const double p = an::coin_common_prob_lower(n, f);
        EXPECT_GE(p, 1.0 / 6.0 - 1e-9) << n;
        EXPECT_LE(p, 1.0) << n;
    }
}

TEST(CoinTheory, BoundZeroBeyondPrecondition) {
    EXPECT_EQ(an::coin_common_prob_lower(100.0, 6.0), 0.0);  // f > sqrt(100)/2
}

}  // namespace
}  // namespace adba::sim
