// Registry tests: every name and alias resolves to the right entry,
// Scenario::parse/describe round-trips through the registries, and unknown
// or incompatible selections fail with actionable messages.
#include <gtest/gtest.h>

#include <string>

#include "sim/registry.hpp"
#include "sim/sweep.hpp"
#include "support/contracts.hpp"

namespace adba::sim {
namespace {

std::string thrown_message(const std::function<void()>& f) {
    try {
        f();
    } catch (const ContractViolation& e) {
        return e.what();
    }
    return "";
}

// --------------------------------------------------------------- resolution

TEST(Registry, EveryProtocolKindRegistered) {
    const auto& reg = ProtocolRegistry::instance();
    EXPECT_EQ(reg.list().size(), 9u);
    for (const auto kind :
         {ProtocolKind::Ours, ProtocolKind::OursLasVegas, ProtocolKind::ChorCoanRushing,
          ProtocolKind::ChorCoanClassic, ProtocolKind::RabinDealer,
          ProtocolKind::LocalCoin, ProtocolKind::BenOr, ProtocolKind::PhaseKing,
          ProtocolKind::SamplingMajority}) {
        const ProtocolEntry& e = reg.at(kind);
        EXPECT_EQ(e.kind, kind);
        EXPECT_TRUE(e.supports) << e.name;
        EXPECT_TRUE(e.make_nodes) << e.name;
        EXPECT_TRUE(e.budgets) << e.name;
        EXPECT_FALSE(e.resilience.empty()) << e.name;
    }
}

TEST(Registry, EveryAdversaryKindRegistered) {
    const auto& reg = AdversaryRegistry::instance();
    EXPECT_EQ(reg.list().size(), 9u);
    for (const auto kind :
         {AdversaryKind::None, AdversaryKind::Static, AdversaryKind::SplitVote,
          AdversaryKind::Chaos, AdversaryKind::CrashRandom,
          AdversaryKind::CrashTargetedCoin, AdversaryKind::WorstCase,
          AdversaryKind::KingKiller, AdversaryKind::Balancer}) {
        const AdversaryEntry& e = reg.at(kind);
        EXPECT_EQ(e.kind, kind);
        EXPECT_TRUE(e.make_adversary) << e.name;
    }
}

TEST(Registry, NamesAndAliasesResolveToSameEntry) {
    const auto& reg = ProtocolRegistry::instance();
    for (const ProtocolEntry* e : reg.list()) {
        EXPECT_EQ(&reg.at(e->name), e);
        for (const auto& alias : e->aliases)
            EXPECT_EQ(&reg.at(alias), e) << alias;
    }
    const auto& areg = AdversaryRegistry::instance();
    for (const AdversaryEntry* e : areg.list()) {
        EXPECT_EQ(&areg.at(e->name), e);
        for (const auto& alias : e->aliases)
            EXPECT_EQ(&areg.at(alias), e) << alias;
    }
    const auto& mreg = MvAdversaryRegistry::instance();
    for (const MvAdversaryEntry* e : mreg.list()) {
        EXPECT_EQ(&mreg.at(e->name), e);
        for (const auto& alias : e->aliases)
            EXPECT_EQ(&mreg.at(alias), e) << alias;
    }
}

TEST(Registry, LookupIsCaseInsensitive) {
    EXPECT_EQ(ProtocolRegistry::instance().at("OURS").kind, ProtocolKind::Ours);
    EXPECT_EQ(AdversaryRegistry::instance().at("Worst-Case").kind,
              AdversaryKind::WorstCase);
}

TEST(Registry, DisplayNamesMatchToString) {
    for (const ProtocolEntry* e : ProtocolRegistry::instance().list())
        EXPECT_EQ(to_string(e->kind), e->display);
    for (const AdversaryEntry* e : AdversaryRegistry::instance().list())
        EXPECT_EQ(to_string(e->kind), e->display);
    for (const MvAdversaryEntry* e : MvAdversaryRegistry::instance().list())
        EXPECT_EQ(to_string(e->kind), e->display);
}

TEST(Registry, UnknownNameThrowsWithKnownList) {
    const std::string msg = thrown_message(
        [] { ProtocolRegistry::instance().at("paxos"); });
    EXPECT_NE(msg.find("unknown protocol 'paxos'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ours"), std::string::npos) << msg;
    EXPECT_NE(msg.find("phase-king"), std::string::npos) << msg;
    EXPECT_EQ(AdversaryRegistry::instance().find("paxos"), nullptr);
}

TEST(Registry, StrongestAdversaryComesFromMetadata) {
    for (const ProtocolEntry* e : ProtocolRegistry::instance().list())
        EXPECT_EQ(strongest_adversary(e->kind), e->strongest) << e->name;
    // The pairing itself must be compatible at a feasible (n, t).
    for (const ProtocolEntry* e : ProtocolRegistry::instance().list()) {
        Scenario s;
        s.n = 64;
        s.t = 12;  // feasible for every registered resilience class
        s.protocol = e->kind;
        s.adversary = e->strongest;
        EXPECT_TRUE(compatible(s)) << e->name;
    }
}

// ------------------------------------------------------------- feasibility

TEST(Registry, SupportsMatchesResilienceBounds) {
    const auto& reg = ProtocolRegistry::instance();
    EXPECT_TRUE(reg.at("phase-king").supports(17, 4));
    EXPECT_FALSE(reg.at("phase-king").supports(16, 4));
    EXPECT_TRUE(reg.at("ben-or").supports(16, 3));
    EXPECT_FALSE(reg.at("ben-or").supports(15, 3));
    EXPECT_TRUE(reg.at("ours").supports(10, 3));
    EXPECT_FALSE(reg.at("ours").supports(9, 3));
}

TEST(Registry, IncompatiblePairsThrowActionably) {
    Scenario s;
    s.n = 64;
    s.t = 12;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::KingKiller;
    const std::string msg = thrown_message([&] { validate(s); });
    EXPECT_NE(msg.find("king-killer"), std::string::npos) << msg;
    EXPECT_NE(msg.find("phase-king"), std::string::npos) << msg;
    EXPECT_FALSE(compatible(s));

    s.protocol = ProtocolKind::PhaseKing;
    s.adversary = AdversaryKind::WorstCase;
    const std::string msg2 = thrown_message([&] { validate(s); });
    EXPECT_NE(msg2.find("committee-schedule"), std::string::npos) << msg2;
    EXPECT_NE(msg2.find("ours"), std::string::npos) << msg2;  // names the fix
    EXPECT_FALSE(compatible(s));
}

TEST(Registry, ResilienceViolationThrowsActionably) {
    Scenario s;
    s.n = 20;
    s.t = 5;  // 4t = n: outside phase-king's bound
    s.protocol = ProtocolKind::PhaseKing;
    s.adversary = AdversaryKind::KingKiller;
    const std::string msg = thrown_message([&] { validate(s); });
    EXPECT_NE(msg.find("t < n/4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("n=20"), std::string::npos) << msg;
    s.t = 4;
    EXPECT_TRUE(compatible(s));
}

TEST(Registry, QExceedingTIsIncompatible) {
    Scenario s;
    s.n = 16;
    s.t = 5;
    s.q = 6;
    EXPECT_FALSE(compatible(s));
    EXPECT_THROW(validate(s), ContractViolation);
}

// ------------------------------------------------------- parse / describe

TEST(ScenarioSpec, ParseDescribeRoundTripsEveryCompatiblePair) {
    for (const ProtocolEntry* p : ProtocolRegistry::instance().list()) {
        for (const AdversaryEntry* a : AdversaryRegistry::instance().list()) {
            Scenario s;
            s.n = 64;
            s.t = 12;
            s.protocol = p->kind;
            s.adversary = a->kind;
            if (!compatible(s)) continue;
            EXPECT_EQ(Scenario::parse(s.describe()), s)
                << p->name << " vs " << a->name << ": " << s.describe();
        }
    }
}

TEST(ScenarioSpec, ParseDescribeRoundTripsNonDefaultFields) {
    Scenario s;
    s.n = 96;
    s.t = 21;
    s.q = 7;
    s.protocol = ProtocolKind::BenOr;
    s.adversary = AdversaryKind::SplitVote;
    s.inputs = InputPattern::Random;
    s.tuning.alpha = 2.5;
    s.tuning.gamma = 1.25;
    s.tuning.beta = 0.5;
    s.local_coin_phases = 17;
    s.sampling_kappa = 3.75;
    s.max_rounds_override = 99;
    s.record_transcript = true;
    const Scenario back = Scenario::parse(s.describe());
    EXPECT_EQ(back, s) << s.describe();
}

TEST(ScenarioSpec, ParseResolvesAliasesAndSeparators) {
    const Scenario s =
        Scenario::parse("protocol=alg3, adversary=rushing; inputs=all-one n=32 t=5");
    EXPECT_EQ(s.protocol, ProtocolKind::Ours);
    EXPECT_EQ(s.adversary, AdversaryKind::WorstCase);
    EXPECT_EQ(s.inputs, InputPattern::AllOne);
    EXPECT_EQ(s.n, 32u);
    EXPECT_EQ(s.t, 5u);
}

TEST(ScenarioSpec, UnknownKeysAndValuesThrowActionably) {
    const std::string msg =
        thrown_message([] { Scenario::parse("protcol=ours n=8"); });
    EXPECT_NE(msg.find("unknown scenario key 'protcol'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("protocol"), std::string::npos) << msg;

    EXPECT_THROW(Scenario::parse("protocol=raft n=8"), ContractViolation);
    EXPECT_THROW(Scenario::parse("n=eight"), ContractViolation);
    EXPECT_THROW(Scenario::parse("inputs=zebra"), ContractViolation);
    EXPECT_THROW(Scenario::parse("just-a-token"), ContractViolation);
}

TEST(ScenarioSpec, ParsedScenarioRunsByName) {
    const Scenario s = Scenario::parse(
        "protocol=phase-king adversary=king-killer n=17 t=4 inputs=split");
    const TrialResult r = run_trial(s, 7);
    EXPECT_TRUE(r.agreement);
    EXPECT_TRUE(r.validity_ok);
}

TEST(ScenarioSpec, MvInputPatternsParse) {
    EXPECT_EQ(parse_mv_input_pattern("near-quorum"), MvInputPattern::NearQuorum);
    EXPECT_EQ(parse_mv_input_pattern("all-same"), MvInputPattern::AllSame);
    EXPECT_THROW(parse_mv_input_pattern("nope"), ContractViolation);
    EXPECT_EQ(parse_input_pattern("split"), InputPattern::Split);
    EXPECT_THROW(parse_input_pattern("nope"), ContractViolation);
}

// ---------------------------------------------------------------- plug-ins

TEST(Registry, DuplicateRegistrationThrows) {
    // A plug-in must not silently shadow an existing name or alias.
    AdversaryEntry dup;
    dup.kind = AdversaryKind::Chaos;
    dup.name = "chaos";
    dup.display = "chaos";
    dup.make_adversary = [](const Scenario&, const ProtocolBundle&, const SeedTree&)
        -> std::unique_ptr<net::Adversary> {
        return std::make_unique<net::NullAdversary>();
    };
    EXPECT_THROW(AdversaryRegistry::instance().add(std::move(dup)), ContractViolation);
}

TEST(Registry, BudgetsMatchTrialConfiguration) {
    Scenario s;
    s.n = 64;
    s.t = 12;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::None;
    const BudgetHint hint = ProtocolRegistry::instance().at(s.protocol).budgets(s);
    const TrialResult r = run_trial(s, 3);
    EXPECT_EQ(hint.phases, r.phases_configured);
    EXPECT_GE(hint.max_rounds, r.rounds);
}

}  // namespace
}  // namespace adba::sim
