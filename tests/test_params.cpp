// Committee sizing (paper §3.2) and block-schedule tests.
#include <gtest/gtest.h>

#include "core/params.hpp"
#include "support/contracts.hpp"
#include "support/math.hpp"

namespace adba::core {
namespace {

TEST(BlockSchedule, EvenPartition) {
    const auto s = BlockSchedule::make(12, 3);
    EXPECT_EQ(s.num_blocks, 4u);
    EXPECT_EQ(s.range(0), (std::pair<NodeId, NodeId>{0, 3}));
    EXPECT_EQ(s.range(3), (std::pair<NodeId, NodeId>{9, 12}));
    EXPECT_EQ(s.size(0), 3u);
    EXPECT_EQ(s.size(3), 3u);
}

TEST(BlockSchedule, ShortLastBlock) {
    // Paper: "the last committee may not be of size s" — handled exactly.
    const auto s = BlockSchedule::make(10, 3);
    EXPECT_EQ(s.num_blocks, 4u);
    EXPECT_EQ(s.size(3), 1u);
    EXPECT_EQ(s.range(3), (std::pair<NodeId, NodeId>{9, 10}));
}

TEST(BlockSchedule, MembershipMatchesRanges) {
    const auto s = BlockSchedule::make(10, 3);
    for (Count k = 0; k < s.num_blocks; ++k) {
        const auto [first, last] = s.range(k);
        for (NodeId v = 0; v < s.n; ++v) {
            const bool inside = v >= first && v < last;
            // flips_in_phase(v, p) with p == k (first cycle).
            EXPECT_EQ(s.flips_in_phase(v, k), inside);
        }
    }
}

TEST(BlockSchedule, PhasesCycleThroughCommittees) {
    const auto s = BlockSchedule::make(8, 2);  // 4 committees
    EXPECT_EQ(s.committee_of_phase(0), 0u);
    EXPECT_EQ(s.committee_of_phase(3), 3u);
    EXPECT_EQ(s.committee_of_phase(4), 0u);
    EXPECT_EQ(s.committee_of_phase(11), 3u);
}

TEST(BlockSchedule, BlockSizeClamped) {
    const auto s = BlockSchedule::make(5, 100);
    EXPECT_EQ(s.block, 5u);
    EXPECT_EQ(s.num_blocks, 1u);
    const auto s2 = BlockSchedule::make(5, 0);
    EXPECT_EQ(s2.block, 1u);
    EXPECT_EQ(s2.num_blocks, 5u);
}

TEST(RawCommitteeCount, MatchesPaperFormula) {
    // n=1024, log2 n = 10, alpha=1:
    //   c1 = ceil(t^2/n) * 10, c2 = 3t/10.
    EXPECT_EQ(raw_committee_count(1024, 10, 1.0), 3u);     // min(10, 3)
    EXPECT_EQ(raw_committee_count(1024, 32, 1.0), 10u);    // min(10, 9.6->10)... c2=9.6 -> ceil 10
    EXPECT_EQ(raw_committee_count(1024, 100, 1.0), 30u);   // min(100, 30)
    EXPECT_EQ(raw_committee_count(1024, 341, 1.0), 103u);  // min(1140, 102.3->103)
}

TEST(RawCommitteeCount, TZeroGivesOneCommittee) {
    EXPECT_EQ(raw_committee_count(64, 0, 2.0), 1u);
}

TEST(RawCommitteeCount, ClampedToN) {
    // Large alpha can push c above n; must clamp.
    EXPECT_LE(raw_committee_count(16, 5, 64.0), 16u);
}

TEST(AgreementParams, WhpFloorApplies) {
    // Small t: raw count would be tiny, but the w.h.p. floor gives
    // gamma*log2(n) phases.
    const auto p = AgreementParams::compute(256, 1, Tuning{2.0, 2.0, 1.0});
    EXPECT_EQ(p.phases, 16u);  // gamma * log2(256) = 2*8
    EXPECT_EQ(p.schedule.block, 16u);
}

TEST(AgreementParams, SecondRegimeMatchesChorCoanTerm) {
    // t near n/3: min picks 3*alpha*t/log n.
    const NodeId n = 1024;
    const Count t = 341;
    const auto p = AgreementParams::compute(n, t, Tuning{1.0, 1.0, 1.0});
    EXPECT_EQ(p.phases, 103u);
    EXPECT_EQ(p.schedule.block, ceil_div(n, 103));
}

TEST(AgreementParams, CommitteeSizeTimesCountCoversN) {
    for (NodeId n : {16u, 64u, 100u, 256u, 1000u, 4096u}) {
        for (Count t : {0u, 1u, n / 10, n / 4, (n - 1) / 3}) {
            const auto p = AgreementParams::compute(n, t);
            EXPECT_GE(static_cast<std::uint64_t>(p.schedule.block) * p.schedule.num_blocks,
                      n);
            EXPECT_GE(p.phases, 1u);
            // Every node belongs to exactly one committee.
            for (NodeId v = 0; v < n; v += std::max<NodeId>(1, n / 17)) {
                Count owner = 0, found = 0;
                for (Count k = 0; k < p.schedule.num_blocks; ++k) {
                    const auto [a, b] = p.schedule.range(k);
                    if (v >= a && v < b) {
                        ++found;
                        owner = k;
                    }
                }
                EXPECT_EQ(found, 1u);
                EXPECT_EQ(v / p.schedule.block, owner);
            }
        }
    }
}

TEST(AgreementParams, RejectsTooManyByzantine) {
    EXPECT_THROW(AgreementParams::compute(9, 3), ContractViolation);   // 3t = n
    EXPECT_NO_THROW(AgreementParams::compute(10, 3));                  // 3t < n
}

TEST(AgreementParams, MonotoneInT) {
    // More tolerated faults never means fewer phases (for fixed n, alpha).
    const NodeId n = 512;
    Count prev = 0;
    for (Count t = 0; t < n / 3; t += 7) {
        const auto p = AgreementParams::compute(n, t);
        EXPECT_GE(p.phases, prev);
        prev = p.phases;
    }
}

TEST(AgreementParams, MaxRoundsCoversFlushPhase) {
    const auto p = AgreementParams::compute(128, 20);
    EXPECT_GE(max_rounds_whp(p), 2 * p.phases + 2);
}

TEST(AgreementParams, MinPicksSmallerTerm) {
    // Both regimes must be reachable: at t = sqrt(n) the t^2/n term is ~1 so
    // c1 = alpha*log n; deep in the second regime c2 < c1.
    const NodeId n = 4096;  // log2 = 12
    const auto small_t = AgreementParams::compute(n, 64, Tuning{1.0, 1.0, 1.0});
    // c1 = ceil(4096/4096)*12 = 12, c2 = ceil(3*64/12) = 16 -> min 12.
    EXPECT_EQ(small_t.phases, 12u);
    const auto big_t = AgreementParams::compute(n, 1200, Tuning{1.0, 1.0, 1.0});
    // c1 = ceil(1200^2/4096)*12 = 352*12 = 4224 -> clamped later; c2 = 300.
    EXPECT_EQ(big_t.phases, 300u);
}

}  // namespace
}  // namespace adba::core
