// Randomized scenario fuzzing: safety must hold on configurations nobody
// hand-picked. Each seed derives a random (n, t, q, protocol, adversary,
// input) cell within each protocol's contract and asserts the safety
// invariants. Deterministic per seed, so failures reproduce exactly.
#include <gtest/gtest.h>

#include "rand/rng.hpp"
#include "sim/multivalued_runner.hpp"
#include "sim/runner.hpp"
#include "support/math.hpp"

namespace adba::sim {
namespace {

struct FuzzCell {
    Scenario scenario;
    std::string describe;
};

FuzzCell random_cell(std::uint64_t seed) {
    Xoshiro256 rng(mix64(seed ^ 0xF022));
    FuzzCell cell;
    Scenario& s = cell.scenario;
    // n in [8, 128]; protocols with tighter bounds clamp t accordingly.
    s.n = static_cast<NodeId>(8 + rng.below(121));

    const ProtocolKind protocols[] = {
        ProtocolKind::Ours,       ProtocolKind::OursLasVegas,
        ProtocolKind::ChorCoanRushing, ProtocolKind::ChorCoanClassic,
        ProtocolKind::RabinDealer,     ProtocolKind::PhaseKing,
        ProtocolKind::BenOr,           ProtocolKind::SamplingMajority,
    };
    s.protocol = protocols[rng.below(std::size(protocols))];

    Count t_max = (s.n - 1) / 3;
    if (s.protocol == ProtocolKind::PhaseKing) t_max = (s.n - 1) / 4;
    if (s.protocol == ProtocolKind::BenOr) t_max = (s.n - 1) / 5;
    s.t = static_cast<Count>(rng.below(t_max + 1));
    s.q = static_cast<Count>(rng.below(s.t + 1));

    // Adversary: respect per-adversary protocol requirements.
    const bool has_schedule = s.protocol == ProtocolKind::Ours ||
                              s.protocol == ProtocolKind::OursLasVegas ||
                              s.protocol == ProtocolKind::ChorCoanRushing ||
                              s.protocol == ProtocolKind::ChorCoanClassic;
    std::vector<AdversaryKind> kinds = {AdversaryKind::None, AdversaryKind::Static,
                                        AdversaryKind::SplitVote, AdversaryKind::Chaos,
                                        AdversaryKind::CrashRandom,
                                        AdversaryKind::Balancer};
    if (has_schedule) {
        kinds.push_back(AdversaryKind::CrashTargetedCoin);
        kinds.push_back(AdversaryKind::WorstCase);
    }
    if (s.protocol == ProtocolKind::PhaseKing) kinds.push_back(AdversaryKind::KingKiller);
    s.adversary = kinds[rng.below(kinds.size())];

    const InputPattern inputs[] = {InputPattern::AllZero, InputPattern::AllOne,
                                   InputPattern::Split, InputPattern::Random};
    s.inputs = inputs[rng.below(std::size(inputs))];

    // Keep the exponential-expected protocols on generous budgets so the
    // liveness check below stays meaningful.
    s.local_coin_phases = 1024;

    cell.describe = to_string(s.protocol) + " vs " + to_string(s.adversary) + " n=" +
                    std::to_string(s.n) + " t=" + std::to_string(s.t) + " q=" +
                    std::to_string(*s.q) + " in=" + to_string(s.inputs);
    return cell;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, SafetyInvariantsHold) {
    const FuzzCell cell = random_cell(GetParam());
    const TrialResult r = run_trial(cell.scenario, mix64(GetParam()));
    // Validity is unconditional; agreement is w.h.p. for the randomized
    // protocols but the private-coin ones may stall within their budget —
    // in that case nodes still must never violate validity, and the trial
    // must at least have executed.
    EXPECT_TRUE(r.validity_ok) << cell.describe;
    EXPECT_GT(r.rounds, 0u) << cell.describe;
    EXPECT_LE(r.metrics.corruptions, *cell.scenario.q) << cell.describe;
    const bool exponential = cell.scenario.protocol == ProtocolKind::BenOr ||
                             cell.scenario.protocol == ProtocolKind::LocalCoin;
    const bool drift = cell.scenario.protocol == ProtocolKind::SamplingMajority;
    if (!exponential && !drift) {
        EXPECT_TRUE(r.agreement) << cell.describe;
        EXPECT_TRUE(r.all_halted) << cell.describe;
    }
}

INSTANTIATE_TEST_SUITE_P(Random200, FuzzSweep, ::testing::Range<std::uint64_t>(0, 200));

class MvFuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MvFuzzSweep, MultiValuedSafetyHolds) {
    Xoshiro256 rng(mix64(GetParam() ^ 0xF123));
    MvScenario s;
    s.n = static_cast<NodeId>(10 + rng.below(87));
    s.t = static_cast<Count>(rng.below((s.n - 1) / 3 + 1));
    const MvInputPattern inputs[] = {MvInputPattern::AllSame, MvInputPattern::TwoBlocks,
                                     MvInputPattern::Distinct, MvInputPattern::RandomTiny,
                                     MvInputPattern::NearQuorum};
    s.inputs = inputs[rng.below(std::size(inputs))];
    const MvAdversaryKind kinds[] = {MvAdversaryKind::None, MvAdversaryKind::Chaos,
                                     MvAdversaryKind::WorstCaseInner,
                                     MvAdversaryKind::PreludePlusWorstCase};
    s.adversary = kinds[rng.below(std::size(kinds))];
    const MvTrialResult r = run_mv_trial(s, mix64(GetParam()));
    EXPECT_TRUE(r.agreement) << "n=" << s.n << " t=" << s.t;
    EXPECT_TRUE(r.validity_ok) << "n=" << s.n << " t=" << s.t;
    EXPECT_TRUE(r.all_halted) << "n=" << s.n << " t=" << s.t;
}

INSTANTIATE_TEST_SUITE_P(Random120, MvFuzzSweep, ::testing::Range<std::uint64_t>(0, 120));

}  // namespace
}  // namespace adba::sim
